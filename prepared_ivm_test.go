package pyquery

import (
	"context"
	"errors"
	"testing"
	"time"

	"pyquery/internal/leakcheck"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

func pathCQ() *CQ {
	return &CQ{
		Head: []query.Term{query.V(0), query.V(2)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(2)),
		},
	}
}

// White-box: writes to relations the query does not mention must leave the
// compiled state untouched — the per-relation epoch check.
func TestPreparedEpochIgnoresUnrelatedWrites(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2, []Value{1, 2}, []Value{2, 3}))
	db.Set("Other", query.Table(1, []Value{9}))
	p, err := Prepare(pathCQ(), db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := p.state.Load()
	db.Set("Other", query.Table(1, []Value{10}))
	db.Insert("Other", []Value{11})
	if _, err := p.Exec(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.state.Load() != before {
		t.Fatal("unrelated Set/Insert invalidated the compiled state")
	}
	// A write to a mentioned relation must still invalidate.
	db.Insert("E", []Value{3, 4})
	res, err := p.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p.state.Load() == before {
		t.Fatal("related Insert did not invalidate the compiled state")
	}
	if !res.Contains([]Value{2, 4}) {
		t.Fatalf("stale result after related insert: %v", res)
	}
}

func TestPreparedRefreshMatchesExec(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2, []Value{1, 2}, []Value{2, 3}))
	p, err := Prepare(pathCQ(), db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	view := query.NewTable(2)
	apply := func() {
		t.Helper()
		added, removed, err := p.Refresh(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		next := query.NewTable(2)
		for i := 0; i < view.Len(); i++ {
			if !removed.Contains(view.Row(i)) {
				next.Append(view.Row(i)...)
			}
		}
		for i := 0; i < added.Len(); i++ {
			next.Append(added.Row(i)...)
		}
		view = next
		want, err := p.Exec(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !relation.EqualSet(view.Sort(), want.Sort()) {
			t.Fatalf("view %v != exec %v", view, want)
		}
	}
	apply()
	db.Insert("E", []Value{3, 4}, []Value{4, 1})
	apply()
	db.Delete("E", []Value{2, 3})
	apply()
	db.Set("E", query.Table(2, []Value{5, 6}, []Value{6, 7}))
	apply()
}

// The re-execute-and-diff fallback must serve shapes the maintainer
// rejects — here a zero-atom constant head.
func TestPreparedRefreshFallbackShape(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2, []Value{1, 2}))
	q := &CQ{Head: []query.Term{query.C(7)}}
	p, err := Prepare(q, db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	added, removed, err := p.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if added.Len() != 1 || removed.Len() != 0 {
		t.Fatalf("first refresh: %d/%d, want 1/0", added.Len(), removed.Len())
	}
	added, removed, err = p.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if added.Len() != 0 || removed.Len() != 0 {
		t.Fatalf("second refresh: %d/%d, want 0/0", added.Len(), removed.Len())
	}
}

func TestPreparedRefreshParamsRejected(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2, []Value{1, 2}))
	q := &CQ{
		Head:  []query.Term{query.V(1)},
		Atoms: []query.Atom{query.NewAtom("E", P("src"), query.V(1))},
	}
	p, err := Prepare(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Refresh(context.Background()); !errors.Is(err, ErrNotMaintainable) {
		t.Fatalf("err = %v, want ErrNotMaintainable", err)
	}
}

// Subscribe must deliver the initial snapshot, then exactly the changed
// tuples per mutation, and leave no goroutines behind on cancellation.
func TestPreparedSubscribe(t *testing.T) {
	leakcheck.Check(t)
	db := query.NewDB()
	db.Set("E", query.Table(2, []Value{1, 2}, []Value{2, 3}))
	p, err := Prepare(pathCQ(), db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []Change
	for ch, err := range p.Subscribe(ctx) {
		if err != nil {
			t.Fatalf("subscribe error: %v", err)
		}
		got = append(got, ch)
		switch len(got) {
		case 1:
			if ch.Added.Len() != 1 || !ch.Added.Contains([]Value{1, 3}) {
				t.Fatalf("initial snapshot wrong: %v", ch.Added)
			}
			// The DB contract forbids writes concurrent with reads; the
			// iterator is suspended at this yield, so writing here is safe.
			db.Insert("E", []Value{3, 4})
		case 2:
			if !ch.Added.Contains([]Value{2, 4}) || ch.Removed.Len() != 0 {
				t.Fatalf("second change wrong: +%v -%v", ch.Added, ch.Removed)
			}
			db.Delete("E", []Value{1, 2})
		case 3:
			if !ch.Removed.Contains([]Value{1, 3}) || ch.Added.Len() != 0 {
				t.Fatalf("third change wrong: +%v -%v", ch.Added, ch.Removed)
			}
			cancel()
		}
	}
	if len(got) != 3 {
		t.Fatalf("got %d changes, want 3", len(got))
	}
}

// A canceled subscription ends silently even when cancellation races the
// wait; a pre-canceled context yields nothing.
func TestPreparedSubscribeCancel(t *testing.T) {
	leakcheck.Check(t)
	db := query.NewDB()
	db.Set("E", query.Table(2, []Value{1, 2}))
	p, err := Prepare(pathCQ(), db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, err := range p.Subscribe(ctx) {
		if err != nil {
			t.Fatalf("pre-canceled subscribe yielded error: %v", err)
		}
		t.Fatal("pre-canceled subscribe yielded a change")
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	n := 0
	for _, err := range p.Subscribe(ctx2) {
		if err != nil {
			t.Fatalf("subscribe error: %v", err)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("expected only the initial snapshot before timeout, got %d", n)
	}
}
