package pyquery_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pyquery"
	"pyquery/internal/datalog"
	"pyquery/internal/decomp"
	"pyquery/internal/relation"
	"pyquery/internal/wcoj"
	"pyquery/internal/workload"
)

// Determinism contract: for every engine and every query class,
// Parallelism: N must be set-equal to Parallelism: 1 (the serial engine).
// The suite drives the facade with randomized databases and queries from
// each planner class so all four engines are exercised.

// randEdges builds a random binary relation over a small domain.
func randEdges(rnd *rand.Rand, rows, domain int) *pyquery.Relation {
	r := pyquery.NewTable(2)
	for i := 0; i < rows; i++ {
		r.Append(pyquery.Value(rnd.Intn(domain)), pyquery.Value(rnd.Intn(domain)))
	}
	return r.Dedup()
}

// pathDB holds relations R0…R2 for three-step path queries.
func pathDB(rnd *rand.Rand) *pyquery.DB {
	db := pyquery.NewDB()
	for i := 0; i < 3; i++ {
		db.Set(fmt.Sprintf("R%d", i), randEdges(rnd, 20+rnd.Intn(60), 6+rnd.Intn(6)))
	}
	return db
}

// pathQuery is the acyclic chain R0(x0,x1), R1(x1,x2), R2(x2,x3).
func pathQuery() *pyquery.CQ {
	return &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(3)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("R0", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("R1", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("R2", pyquery.V(2), pyquery.V(3)),
		},
	}
}

func assertParallelAgrees(t *testing.T, tag string, q *pyquery.CQ, db *pyquery.DB, wantEngine pyquery.Engine) {
	t.Helper()
	if got := pyquery.Plan(q); got != wantEngine {
		t.Fatalf("%s: planned %v, want %v", tag, got, wantEngine)
	}
	serial, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("%s serial: %v", tag, err)
	}
	serialOK, err := pyquery.EvaluateBoolOpts(q, db, pyquery.Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("%s serial bool: %v", tag, err)
	}
	for _, par := range []int{2, 3, 4} {
		got, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: par})
		if err != nil {
			t.Fatalf("%s par=%d: %v", tag, par, err)
		}
		if !relation.EqualSet(got, serial) {
			t.Fatalf("%s: Parallelism=%d answer differs from serial\nserial: %v\npar:    %v",
				tag, par, serial, got)
		}
		gotOK, err := pyquery.EvaluateBoolOpts(q, db, pyquery.Options{Parallelism: par})
		if err != nil {
			t.Fatalf("%s par=%d bool: %v", tag, par, err)
		}
		if gotOK != serialOK {
			t.Fatalf("%s: Parallelism=%d bool %v, serial %v", tag, par, gotOK, serialOK)
		}
	}
}

func TestParallelDeterminismYannakakis(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		assertParallelAgrees(t, fmt.Sprintf("yannakakis/seed=%d", seed),
			pathQuery(), pathDB(rnd), pyquery.EngineYannakakis)
	}
}

func TestParallelDeterminismColorCoding(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		q := pathQuery()
		// x0 and x3 never share an atom, so the ≠ lands in I₁ and the hash
		// family actually runs.
		q.Ineqs = []pyquery.Ineq{pyquery.NeqVars(0, 3)}
		assertParallelAgrees(t, fmt.Sprintf("colorcoding/seed=%d", seed),
			q, pathDB(rnd), pyquery.EngineColorCoding)
	}
}

func TestParallelDeterminismComparisons(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		q := pathQuery()
		q.Cmps = []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.V(3))}
		assertParallelAgrees(t, fmt.Sprintf("comparisons/seed=%d", seed),
			q, pathDB(rnd), pyquery.EngineComparisons)
	}
}

func TestParallelDeterminismGeneric(t *testing.T) {
	for seed := int64(300); seed < 325; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := pyquery.NewDB()
		// Big enough that the 3-atom plan clears the backtracker's
		// minFanWork gate and the fan-out genuinely runs. The ≠ atom keeps
		// the cyclic query with the backtracker (pure low-width cyclic
		// queries route to the decomposition engine since PR 4).
		db.Set("E", randEdges(rnd, 400+rnd.Intn(200), 25+rnd.Intn(10)))
		tri := &pyquery.CQ{
			Head: []pyquery.Term{pyquery.V(0), pyquery.V(1), pyquery.V(2)},
			Atoms: []pyquery.Atom{
				pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
				pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
				pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
			},
			Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 1)},
		}
		assertParallelAgrees(t, fmt.Sprintf("generic/seed=%d", seed),
			tri, db, pyquery.EngineGeneric)
	}
}

// TestParallelDeterminismDecomp drives the decomposition engine both
// through the facade (routing + cost gate) and directly, so the bag
// materialization fan-out and the shared Yannakakis passes run under every
// worker budget regardless of where the gate lands on a given seed.
func TestParallelDeterminismDecomp(t *testing.T) {
	for seed := int64(500); seed < 520; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := pyquery.NewDB()
		db.Set("E", randEdges(rnd, 300+rnd.Intn(200), 20+rnd.Intn(10)))
		cyc := workload.CycleQuery(4 + int(seed%2)*2) // 4- and 6-cycles
		tag := fmt.Sprintf("decomp/seed=%d", seed)
		assertParallelAgrees(t, tag, cyc, db, pyquery.EngineDecomp)

		serial, err := decomp.EvaluateOpts(cyc, db, decomp.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s direct serial: %v", tag, err)
		}
		for _, par := range []int{2, 4} {
			got, err := decomp.EvaluateOpts(cyc, db, decomp.Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s direct par=%d: %v", tag, par, err)
			}
			if !relation.EqualSet(got, serial) {
				t.Fatalf("%s: direct decomp Parallelism=%d differs from serial", tag, par)
			}
		}
	}
}

// TestParallelDeterminismWCOJ drives the leapfrog engine through the facade
// on skewed hub graphs (the routing is database-dependent, so PlanDB — not
// Plan — pins the class) and directly, so the top-level domain sharding
// runs at several worker budgets.
func TestParallelDeterminismWCOJ(t *testing.T) {
	for i, q := range []*pyquery.CQ{workload.TriangleQuery(), workload.CliqueQuery(4)} {
		db := workload.HubGraphDB(100+30*i, 6)
		tag := fmt.Sprintf("wcoj/case=%d", i)
		r, err := pyquery.PlanDB(q, db)
		if err != nil {
			t.Fatalf("%s plan: %v", tag, err)
		}
		if r.Engine != pyquery.EngineWCOJ {
			t.Fatalf("%s: routed to %v, want wcoj", tag, r.Engine)
		}
		serial, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", tag, err)
		}
		if serial.Len() == 0 {
			t.Fatalf("%s: workload should have answers", tag)
		}
		for _, par := range []int{2, 3, 4} {
			got, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s par=%d: %v", tag, par, err)
			}
			if !relation.EqualSet(got, serial) {
				t.Fatalf("%s: Parallelism=%d answer differs from serial", tag, par)
			}
			direct, err := wcoj.Evaluate(q, db, par)
			if err != nil {
				t.Fatalf("%s direct par=%d: %v", tag, par, err)
			}
			if !relation.EqualSet(direct, serial) {
				t.Fatalf("%s: direct wcoj Parallelism=%d differs from serial", tag, par)
			}
		}
	}
}

// The generic parallel evaluator must also agree on queries with ground
// atoms before the fan-out step and constraints attached mid-plan.
func TestParallelDeterminismGroundAtoms(t *testing.T) {
	db := pyquery.NewDB()
	db.Set("E", pyquery.Table(2,
		[]pyquery.Value{1, 2}, []pyquery.Value{2, 3}, []pyquery.Value{3, 1},
		[]pyquery.Value{1, 3}))
	q := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(1)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.C(1), pyquery.C(2)), // ground
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 1)},
	}
	assertParallelAgrees(t, "ground", q, db, pyquery.EngineGeneric)
}

func TestParallelDeterminismDatalog(t *testing.T) {
	progs := map[string]*datalog.Program{
		"reach":   datalog.Reachability(),
		"vardi2":  datalog.VardiFamily(2),
		"samegen": nil, // filled below; needs Par EDB
	}
	for seed := int64(400); seed < 412; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		for name, p := range progs {
			db := pyquery.NewDB()
			if name == "samegen" {
				p = datalog.SameGeneration()
				db.Set("Par", randEdges(rnd, 25, 10))
			} else {
				db.Set("E", randEdges(rnd, 25, 8))
			}
			for _, naive := range []bool{false, true} {
				serial, _, err := datalog.Eval(p, db, datalog.Options{Naive: naive, Parallelism: 1})
				if err != nil {
					t.Fatalf("%s serial: %v", name, err)
				}
				par, _, err := datalog.Eval(p, db, datalog.Options{Naive: naive, Parallelism: 4})
				if err != nil {
					t.Fatalf("%s par: %v", name, err)
				}
				for rel, want := range serial {
					if !relation.EqualSet(par[rel], want) {
						t.Fatalf("%s naive=%v seed=%d: IDB %q differs at Parallelism=4",
							name, naive, seed, rel)
					}
				}
			}
		}
	}
}
