package pyquery

import (
	"fmt"
	"runtime/debug"

	"pyquery/internal/governor"
	"pyquery/internal/parallel"
	"pyquery/internal/query"
)

// The typed failure taxonomy. Every governed execution that fails returns
// an error matching exactly one of these sentinels (dispatch with
// errors.Is); the concrete error is a *LimitError carrying the engine, the
// checkpoint step, and the charged totals at the trip.
var (
	// ErrRowLimit: the execution materialized more than Options.MaxRows
	// rows (answer rows, intermediate pass relations, and decomposition
	// bags all count).
	ErrRowLimit = governor.ErrRowLimit
	// ErrMemoryLimit: the execution's approximate materialized bytes
	// exceeded Options.MemoryLimit.
	ErrMemoryLimit = governor.ErrMemoryLimit
	// ErrTimeout: the context deadline passed (Options.Timeout or a
	// caller-supplied deadline). The error also matches
	// context.DeadlineExceeded.
	ErrTimeout = governor.ErrTimeout
	// ErrCanceled: the execution context was canceled mid-run. The error
	// also matches context.Canceled.
	ErrCanceled = governor.ErrCanceled
	// ErrUnknownRelation: a query names a relation the database does not
	// hold; surfaced by validation at Prepare/Evaluate time.
	ErrUnknownRelation = query.ErrUnknownRelation
)

// LimitError is the detailed governor trip: which limit (Kind, one of the
// sentinels above), in which engine, at which checkpoint step, and the
// charged row/byte totals at that moment. Retrieve with errors.As.
type LimitError = governor.Error

// InternalError is a panic converted at the facade boundary: an engine
// invariant failed mid-execution (on any worker goroutine — the parallel
// pools forward worker panics to the caller). The prepared statement, the
// plan cache, and the database remain valid; only this execution's result
// is lost. It unwraps to the panic value when that value is an error, so
// errors.Is sees through it.
type InternalError struct {
	// Engine labels where the panic surfaced (an engine label, "prepare",
	// or "decide").
	Engine string
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("pyquery: internal error [engine=%s]: %v", e.Engine, e.Value)
}

// Unwrap exposes a panic value that was itself an error (e.g. the typed
// ErrUnknownRelation panic of DB.MustRel).
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recoverInternal is the facade's panic boundary: deferred by every public
// entry point, it converts a panic — including worker panics the parallel
// pools re-raised on the caller — into a *InternalError on the named error
// return, leaving prepared state and caches intact.
func recoverInternal(engine string, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	var stack []byte
	if wp, ok := r.(*parallel.WorkerPanic); ok {
		stack, r = wp.Stack, wp.Value
	} else {
		stack = debug.Stack()
	}
	*errp = &InternalError{Engine: engine, Value: r, Stack: stack}
}

// engineLabel is the short engine name trips and internal errors carry.
func engineLabel(e Engine) string {
	switch e {
	case EngineYannakakis:
		return "yannakakis"
	case EngineColorCoding:
		return "colorcoding"
	case EngineComparisons:
		return "comparisons"
	case EngineDecomp:
		return "decomp"
	case EngineWCOJ:
		return "wcoj"
	default:
		return "generic"
	}
}
