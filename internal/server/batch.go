package server

import (
	"context"
	"sync"
	"time"

	"pyquery"
)

// batcher coalesces identical requests — same statement, same parameter
// bindings — onto one execution of the shared frozen plan, the same shape
// as request batching in an inference server. The first request of a key
// becomes the leader: it waits one batch window for identical requests to
// pile on, then executes once; every rider shares the (read-only) result
// relation. Coalescing happens BEFORE admission, so a flood of identical
// point lookups costs one queue slot and one execution, not N.
//
// Semantics: all requests of one flight observe the database snapshot the
// leader's execution reads. Requests that need their own deadline or
// their own snapshot opt out per request (ExecOpts) or server-wide
// (Config.NoBatch).
type batcher struct {
	window  time.Duration
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done chan struct{} // closed once res/err are set
	res  *pyquery.Relation
	err  error
}

func newBatcher(window time.Duration) *batcher {
	return &batcher{window: window, flights: make(map[string]*flight)}
}

// do returns the result of exec for key, either by running it (leader) or
// by riding an in-progress flight (shared=true). A rider whose ctx
// expires before the flight lands returns the ctx error.
func (b *batcher) do(ctx context.Context, key string, exec func() (*pyquery.Relation, error)) (res *pyquery.Relation, shared bool, err error) {
	b.mu.Lock()
	if f, ok := b.flights[key]; ok {
		b.mu.Unlock()
		select {
		case <-f.done:
			return f.res, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	b.flights[key] = f
	b.mu.Unlock()

	// Leader: hold the window open so identical requests can join, then
	// run once. The window is a sleep on the request goroutine — no
	// background timer goroutines to leak on drain.
	if b.window > 0 {
		time.Sleep(b.window)
	}
	f.res, f.err = exec()
	b.mu.Lock()
	delete(b.flights, key)
	b.mu.Unlock()
	close(f.done)
	return f.res, false, f.err
}
