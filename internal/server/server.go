// Package server is the query service layer: a long-running process
// wrapping one shared query.DB and a named prepared-statement registry
// behind the facade's compile-once/execute-many contract. The split
// mirrors the paper's complexity structure — registration pays the
// query-dependent cost (classification, decomposition search, index
// construction) exactly once, and every subsequent request is data
// complexity only — which is exactly the amortization a service makes
// profitable: the same frozen plan serves many requests, and requests
// that are literally identical coalesce onto one execution (batch.go).
//
// Concurrency contract: executions share the database under a read lock;
// mutations (Insert/Delete/CSV load) take the write lock, so they never
// overlap an execution — the DB's one-writer rule lifted to the service.
// Admission control (admission.go) bounds how many executions run at
// once, with a typed fast-reject (ErrOverloaded) once the queue is full.
// Symbol interning is serialized by its own lock; parser.Symbols is not
// goroutine-safe.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pyquery"
	"pyquery/internal/parallel"
	"pyquery/internal/parser"
)

// Typed service errors. Handlers map these onto HTTP statuses
// (protocol.go); embedded callers test them with errors.Is.
var (
	// ErrOverloaded rejects a request the admission queue cannot hold:
	// every execution slot is busy and the queue is full (or the queue
	// wait deadline passed). Clients should back off and retry.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrDraining rejects requests arriving after shutdown began.
	ErrDraining = errors.New("server: draining")
	// ErrUnknownStmt names a statement that was never registered (or was
	// dropped).
	ErrUnknownStmt = errors.New("server: unknown statement")
	// ErrUnknownRel names a relation the database does not hold.
	ErrUnknownRel = errors.New("server: unknown relation")
)

// Config sizes the service. Zero values mean defaults: execution
// parallelism and the in-flight budget resolve through parallel.Workers
// (GOMAXPROCS), the queue holds 4× the in-flight budget for up to 100ms,
// and batching is on with a 200µs window.
type Config struct {
	// Parallelism is the per-execution worker budget frozen into every
	// registered plan (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// MaxInflight bounds concurrently running executions. 0 resolves
	// through parallel.Workers(Parallelism): with intra-query parallelism
	// the engines already saturate the cores, so the default admits as
	// many executions as workers.
	MaxInflight int
	// QueueDepth bounds requests waiting for an execution slot
	// (0 = 4×MaxInflight; negative = no queue, reject when slots busy).
	QueueDepth int
	// QueueWait bounds time spent waiting for a slot (0 = 100ms).
	QueueWait time.Duration
	// BatchWindow is how long the first request of a batch waits for
	// identical requests to coalesce onto its execution
	// (0 = 200µs; negative = batching off).
	BatchWindow time.Duration
	// NoBatch disables same-fingerprint coalescing entirely.
	NoBatch bool

	// Governor limits frozen into every registered statement.
	Timeout     time.Duration
	MaxRows     int64
	MemoryLimit int64
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = parallel.Workers(c.Parallelism)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxInflight
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.BatchWindow < 0 || c.NoBatch {
		c.BatchWindow = 0
	}
	return c
}

func (c Config) options() pyquery.Options {
	return pyquery.Options{
		Parallelism: c.Parallelism,
		Timeout:     c.Timeout,
		MaxRows:     c.MaxRows,
		MemoryLimit: c.MemoryLimit,
	}
}

// Server is one service instance over one database. All methods are safe
// for concurrent use.
type Server struct {
	cfg Config

	dbMu sync.RWMutex // executions read-lock; mutations write-lock
	db   *pyquery.DB

	symMu sync.Mutex // parser.Symbols and the shared Parser are not goroutine-safe
	syms  *parser.Symbols
	prs   *parser.Parser

	reg *registry
	adm *admission
	bat *batcher

	inflight sync.WaitGroup // requests between admission and response
	draining atomic.Bool
	drained  chan struct{}
	drainOne sync.Once
}

// New builds a server over db (nil starts an empty database) with cfg's
// knobs resolved to their defaults.
func New(db *pyquery.DB, cfg Config) *Server {
	if db == nil {
		db = pyquery.NewDB()
	}
	cfg = cfg.withDefaults()
	syms := parser.NewSymbols()
	return &Server{
		cfg:     cfg,
		db:      db,
		syms:    syms,
		prs:     parser.NewWithSymbols(syms),
		reg:     newRegistry(),
		adm:     newAdmission(cfg.MaxInflight, cfg.QueueDepth, cfg.QueueWait),
		bat:     newBatcher(cfg.BatchWindow),
		drained: make(chan struct{}),
	}
}

// DB exposes the served database for embedded callers (tests, the
// benchrunner). HTTP clients go through the /rel endpoints, which take the
// server's locks; direct DB mutation bypasses them and is only safe
// before the server starts taking traffic.
func (s *Server) DB() *pyquery.DB { return s.db }

// Register parses src as a conjunctive query in rule syntax, compiles it
// against the current database snapshot, and installs it under name,
// replacing any previous statement of that name.
func (s *Server) Register(name, src string) (*StmtInfo, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.symMu.Lock()
	q, err := s.prs.ParseCQ(src)
	s.symMu.Unlock()
	if err != nil {
		return nil, err
	}
	s.dbMu.RLock()
	prep, err := pyquery.Prepare(q, s.db, s.cfg.options())
	s.dbMu.RUnlock()
	if err != nil {
		return nil, err
	}
	st := &stmt{name: name, src: src, prep: prep, met: newStmtMetrics()}
	s.reg.put(st)
	return st.info(), nil
}

// Drop removes a named statement. Executions already holding it finish.
func (s *Server) Drop(name string) error {
	if !s.reg.drop(name) {
		return fmt.Errorf("%w: %q", ErrUnknownStmt, name)
	}
	return nil
}

// Stmts lists the registered statements, sorted by name.
func (s *Server) Stmts() []*StmtInfo { return s.reg.list() }

// ExecOpts tunes one execution.
type ExecOpts struct {
	// Timeout caps this request's execution (on top of the server-wide
	// governor Timeout). A request with its own deadline never batches —
	// batched executions share one run and one budget.
	Timeout time.Duration
	// NoBatch opts this request out of same-fingerprint coalescing.
	NoBatch bool
}

// ExecMeta describes how one request was served.
type ExecMeta struct {
	Engine  pyquery.Engine
	Rows    int
	Batched bool // served by another request's execution (shared flight)
	Dur     time.Duration
}

// Exec runs the named statement with the given parameter bindings and
// returns its result relation. The relation may be shared with coalesced
// requests — callers must treat it as read-only.
func (s *Server) Exec(ctx context.Context, name string, params map[string]pyquery.Value, o ExecOpts) (*pyquery.Relation, ExecMeta, error) {
	var meta ExecMeta
	if s.draining.Load() {
		return nil, meta, ErrDraining
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	st, ok := s.reg.get(name)
	if !ok {
		return nil, meta, fmt.Errorf("%w: %q", ErrUnknownStmt, name)
	}
	args, key, err := bindArgs(st, params)
	if err != nil {
		return nil, meta, err
	}
	meta.Engine = st.prep.Engine()

	start := time.Now()
	var res *pyquery.Relation
	if s.bat.window > 0 && !o.NoBatch && o.Timeout <= 0 {
		// Coalesce before admission: a flood of identical requests takes
		// one queue slot and runs once; followers ride the leader's run.
		// The leader executes under a server-owned context so one rider's
		// disconnect cannot poison the shared result — the governor
		// Timeout frozen into the statement still bounds the run.
		var shared bool
		res, shared, err = s.bat.do(ctx, key, func() (*pyquery.Relation, error) {
			return s.execAdmitted(context.WithoutCancel(ctx), st, args)
		})
		meta.Batched = shared
	} else {
		ectx := ctx
		if o.Timeout > 0 {
			var cancel context.CancelFunc
			ectx, cancel = context.WithTimeout(ctx, o.Timeout)
			defer cancel()
		}
		res, err = s.execAdmitted(ectx, st, args)
	}
	meta.Dur = time.Since(start)
	if err != nil {
		st.met.record(meta.Dur, 0, meta.Batched, err)
		return nil, meta, err
	}
	meta.Rows = res.Len()
	st.met.record(meta.Dur, res.Len(), meta.Batched, nil)
	return res, meta, nil
}

// execAdmitted waits for an execution slot, then runs the frozen plan
// under the database read lock.
func (s *Server) execAdmitted(ctx context.Context, st *stmt, args []pyquery.Arg) (*pyquery.Relation, error) {
	release, err := s.adm.acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			st.met.overload()
		}
		return nil, err
	}
	defer release()
	s.dbMu.RLock()
	defer s.dbMu.RUnlock()
	return st.prep.Exec(ctx, args...)
}

// Refresh incrementally brings the named statement's materialized result
// up to date with the database (PR 8 semantics) and returns the tuple
// deltas.
func (s *Server) Refresh(ctx context.Context, name string) (added, removed *pyquery.Relation, err error) {
	if s.draining.Load() {
		return nil, nil, ErrDraining
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	st, ok := s.reg.get(name)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownStmt, name)
	}
	s.dbMu.RLock()
	defer s.dbMu.RUnlock()
	return st.prep.Refresh(ctx)
}

// LoadCSV replaces the named relation with the CSV stream's rows
// (integers stay numeric, other fields intern through the server's symbol
// table).
func (s *Server) LoadCSV(name string, r io.Reader) error {
	if s.draining.Load() {
		return ErrDraining
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.symMu.Lock()
	defer s.symMu.Unlock()
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	return parser.LoadCSV(s.db, name, r, s.syms)
}

// Insert adds rows to the named relation through the changelog, so
// registered statements can Refresh in O(Δ). It returns how many rows
// were actually new.
func (s *Server) Insert(name string, rows [][]pyquery.Value) (int, error) {
	return s.mutate(name, rows, (*pyquery.DB).Insert)
}

// Delete removes rows from the named relation through the changelog and
// returns how many were present.
func (s *Server) Delete(name string, rows [][]pyquery.Value) (int, error) {
	return s.mutate(name, rows, (*pyquery.DB).Delete)
}

func (s *Server) mutate(name string, rows [][]pyquery.Value, op func(*pyquery.DB, string, ...[]pyquery.Value) int) (int, error) {
	if s.draining.Load() {
		return 0, ErrDraining
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	rel, ok := s.db.Rel(name)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownRel, name)
	}
	for _, row := range rows {
		if len(row) != rel.Width() {
			return 0, fmt.Errorf("server: %s: row has %d values, want %d", name, len(row), rel.Width())
		}
	}
	return op(s.db, name, rows...), nil
}

// Shutdown drains the server: new requests are rejected with ErrDraining,
// and it returns once every in-flight request has finished or ctx
// expires. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.drainOne.Do(func() {
		go func() {
			s.inflight.Wait()
			close(s.drained)
		}()
	})
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// bindArgs turns the parameter map into the facade's Arg list (sorted by
// name for determinism) plus the batching key: statement name and bound
// values — two requests with equal keys run the same frozen plan on the
// same bindings, so they may share one execution.
func bindArgs(st *stmt, params map[string]pyquery.Value) ([]pyquery.Arg, string, error) {
	want := st.prep.Params()
	if len(params) != len(want) {
		return nil, "", fmt.Errorf("server: %s: got %d parameter(s), want %d (%s)",
			st.name, len(params), len(want), strings.Join(want, ", "))
	}
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	args := make([]pyquery.Arg, 0, len(names))
	var key strings.Builder
	key.WriteString(st.name)
	for _, n := range names {
		args = append(args, pyquery.Bind(n, params[n]))
		key.WriteByte(0)
		key.WriteString(n)
		key.WriteByte('=')
		key.WriteString(strconv.FormatInt(int64(params[n]), 10))
	}
	return args, key.String(), nil
}
