package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pyquery"
	"pyquery/internal/parser"
)

// The line protocol: every request and response body is one JSON object.
// Values travel as JSON integers (numeric domain) or strings (interned
// through the server's symbol table, so "paris" on the wire and paris in
// a CSV load name the same constant). Errors are {"error": "...",
// "kind": "..."} with the HTTP status carrying the class:
//
//	400 malformed request / parse error     404 unknown statement or relation
//	408 client deadline while queued        422 governor limit trip
//	429 admission overload (retryable)      503 draining
//
// Endpoints (Go 1.22 pattern syntax):
//
//	PUT    /stmt/{name}          {"query": "Q(x) :- E(x,y)."} → statement info
//	GET    /stmt                 list registered statements
//	DELETE /stmt/{name}          drop a statement
//	POST   /stmt/{name}/exec     {"params": {...}, "timeout_ms": n, "no_batch": b}
//	POST   /stmt/{name}/refresh  incremental view refresh → {"added": .., "removed": ..}
//	POST   /rel/{name}           CSV body → (re)load a relation
//	POST   /rel/{name}/insert    {"rows": [[..], ..]} → {"changed": n}
//	POST   /rel/{name}/delete    {"rows": [[..], ..]} → {"changed": n}
//	GET    /stats                metrics snapshot
//	GET    /healthz              "ok" (503 once draining)
type protoError struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

type execRequest struct {
	Params    map[string]json.RawMessage `json:"params"`
	TimeoutMS int64                      `json:"timeout_ms"`
	NoBatch   bool                       `json:"no_batch"`
}

type execResponse struct {
	Rows    [][]any `json:"rows"`
	N       int     `json:"n"`
	Width   int     `json:"width"`
	Bool    bool    `json:"bool"` // nonempty result (the decision-problem answer)
	Engine  string  `json:"engine"`
	Batched bool    `json:"batched,omitempty"`
	Micros  int64   `json:"us"`
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /stmt/{name}", s.handleRegister)
	mux.HandleFunc("GET /stmt", s.handleList)
	mux.HandleFunc("DELETE /stmt/{name}", s.handleDrop)
	mux.HandleFunc("POST /stmt/{name}/exec", s.handleExec)
	mux.HandleFunc("POST /stmt/{name}/refresh", s.handleRefresh)
	mux.HandleFunc("POST /rel/{name}", s.handleLoadCSV)
	mux.HandleFunc("POST /rel/{name}/insert", s.handleMutate)
	mux.HandleFunc("POST /rel/{name}/delete", s.handleMutate)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Query string `json:"query"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Query == "" {
		writeError(w, fmt.Errorf("body must be {\"query\": \"...\"}"))
		return
	}
	info, err := s.Register(r.PathValue("name"), req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"stmts": s.Stmts()})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	if err := s.Drop(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": r.PathValue("name")})
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req execRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("bad exec body: %w", err))
			return
		}
	}
	params := make(map[string]pyquery.Value, len(req.Params))
	for name, raw := range req.Params {
		v, err := s.decodeValue(raw)
		if err != nil {
			writeError(w, fmt.Errorf("param %q: %w", name, err))
			return
		}
		params[name] = v
	}
	res, meta, err := s.Exec(r.Context(), r.PathValue("name"), params, ExecOpts{
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		NoBatch: req.NoBatch,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, execResponse{
		Rows: s.renderRows(res), N: res.Len(), Width: res.Width(), Bool: res.Bool(),
		Engine: meta.Engine.String(), Batched: meta.Batched,
		Micros: meta.Dur.Microseconds(),
	})
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	added, removed, err := s.Refresh(r.Context(), r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"added": s.renderRows(added), "removed": s.renderRows(removed),
	})
}

func (s *Server) handleLoadCSV(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.LoadCSV(name, r.Body); err != nil {
		writeError(w, err)
		return
	}
	s.dbMu.RLock()
	rel, _ := s.db.Rel(name)
	n := rel.Len()
	s.dbMu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"rel": name, "rows": n})
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Rows [][]json.RawMessage `json:"rows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad mutation body: %w", err))
		return
	}
	rows := make([][]pyquery.Value, len(req.Rows))
	for i, raw := range req.Rows {
		rows[i] = make([]pyquery.Value, len(raw))
		for j, f := range raw {
			v, err := s.decodeValue(f)
			if err != nil {
				writeError(w, fmt.Errorf("row %d: %w", i, err))
				return
			}
			rows[i][j] = v
		}
	}
	name := r.PathValue("name")
	var changed int
	var err error
	if r.URL.Path == "/rel/"+name+"/insert" {
		changed, err = s.Insert(name, rows)
	} else {
		changed, err = s.Delete(name, rows)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"changed": changed})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// decodeValue maps one JSON value onto the engine's numeric domain: JSON
// integers pass through, JSON strings intern through the symbol table
// with parser.Literal semantics ("7" is the number 7, "paris" an interned
// symbol — matching the CSV loader, so wire values and loaded values
// always agree).
func (s *Server) decodeValue(raw json.RawMessage) (pyquery.Value, error) {
	var n int64
	if err := json.Unmarshal(raw, &n); err == nil {
		return pyquery.Value(n), nil
	}
	var str string
	if err := json.Unmarshal(raw, &str); err != nil {
		return 0, fmt.Errorf("want an integer or a string, got %s", raw)
	}
	s.symMu.Lock()
	v, err := s.syms.Literal(str)
	s.symMu.Unlock()
	return v, err
}

// renderRows materializes a result for the wire, converting interned
// symbols back to strings. The whole render holds the symbol lock once.
func (s *Server) renderRows(rel *pyquery.Relation) [][]any {
	out := make([][]any, rel.Len())
	buf := make([]pyquery.Value, rel.Width())
	s.symMu.Lock()
	defer s.symMu.Unlock()
	for i := 0; i < rel.Len(); i++ {
		rel.RowTo(buf, i)
		row := make([]any, len(buf))
		for j, v := range buf {
			if v >= parser.StringBase {
				row[j] = s.syms.String(v)
			} else {
				row[j] = int64(v)
			}
		}
		out[i] = row
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError maps a service error onto the protocol's status classes.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	kind := ""
	var le *pyquery.LimitError
	switch {
	case errors.Is(err, ErrOverloaded):
		status, kind = http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, ErrDraining):
		status, kind = http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrUnknownStmt), errors.Is(err, ErrUnknownRel):
		status, kind = http.StatusNotFound, "unknown"
	case errors.As(err, &le):
		if errors.Is(err, pyquery.ErrTimeout) || errors.Is(err, pyquery.ErrCanceled) {
			status, kind = http.StatusRequestTimeout, le.Kind.Error()
		} else {
			status, kind = http.StatusUnprocessableEntity, le.Kind.Error()
		}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status, kind = http.StatusRequestTimeout, "deadline"
	}
	var ie *pyquery.InternalError
	if errors.As(err, &ie) {
		status, kind = http.StatusInternalServerError, "internal"
	}
	writeJSON(w, status, protoError{Error: err.Error(), Kind: kind})
}
