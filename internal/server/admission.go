package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// admission is the execution gate: a fixed pool of slots plus a bounded
// wait queue. A request either takes a free slot immediately, waits in
// the queue (up to the wait deadline), or is rejected fast with a typed
// OverloadError — the server never builds an unbounded backlog, it sheds
// load the moment the queue is full, which keeps p99 bounded under
// overload instead of collapsing into queueing delay.
type admission struct {
	slots     chan struct{}
	depth     int           // max waiters beyond the slots
	wait      time.Duration // max time a waiter queues
	waiting   atomic.Int64
	running   atomic.Int64
	overloads atomic.Int64
}

// OverloadError reports why admission rejected a request. It unwraps to
// ErrOverloaded so callers can errors.Is against the sentinel.
type OverloadError struct {
	// QueueFull is true when the wait queue had no room; false when the
	// request queued but its wait deadline expired.
	QueueFull bool
	Waited    time.Duration
}

func (e *OverloadError) Error() string {
	if e.QueueFull {
		return "server: overloaded (admission queue full)"
	}
	return fmt.Sprintf("server: overloaded (no execution slot within %v)", e.Waited)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

func newAdmission(inflight, depth int, wait time.Duration) *admission {
	a := &admission{
		slots: make(chan struct{}, inflight),
		depth: depth,
		wait:  wait,
	}
	for i := 0; i < inflight; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire obtains an execution slot, queueing up to the wait deadline.
// The returned release must be called exactly once. Errors are either a
// typed *OverloadError or the context's own error.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case <-a.slots:
		a.running.Add(1)
		return a.release, nil
	default:
	}
	// No free slot: join the queue if it has room.
	if a.waiting.Add(1) > int64(a.depth) {
		a.waiting.Add(-1)
		a.overloads.Add(1)
		return nil, &OverloadError{QueueFull: true}
	}
	defer a.waiting.Add(-1)
	t := time.NewTimer(a.wait)
	defer t.Stop()
	select {
	case <-a.slots:
		a.running.Add(1)
		return a.release, nil
	case <-t.C:
		a.overloads.Add(1)
		return nil, &OverloadError{Waited: a.wait}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() {
	a.running.Add(-1)
	a.slots <- struct{}{}
}
