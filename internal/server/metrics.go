package server

import (
	"errors"
	"sort"
	"sync"
	"time"

	"pyquery"
)

// latRing is how many recent latencies each statement retains for the
// percentile estimates — a fixed window so /stats reflects current
// behavior, not the lifetime average.
const latRing = 512

// stmtMetrics accumulates one statement's counters and a ring of recent
// latencies. A plain mutex is fine at service request rates; the lock is
// held for a few stores per request.
type stmtMetrics struct {
	mu        sync.Mutex
	execs     int64 // requests served (including batched riders)
	batched   int64 // of those, served by another request's execution
	errs      int64
	govTrips  int64 // errors that were governor limit trips
	overloads int64 // admission rejections attributed to this statement
	rows      int64 // total result rows returned
	lat       [latRing]time.Duration
	latN      int // valid entries
	latIdx    int // next write position
}

func newStmtMetrics() *stmtMetrics { return &stmtMetrics{} }

func (m *stmtMetrics) record(d time.Duration, rows int, batched bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.execs++
	if batched {
		m.batched++
	}
	if err != nil {
		m.errs++
		var le *pyquery.LimitError
		if errors.As(err, &le) {
			m.govTrips++
		}
		return
	}
	m.rows += int64(rows)
	m.lat[m.latIdx] = d
	m.latIdx = (m.latIdx + 1) % latRing
	if m.latN < latRing {
		m.latN++
	}
}

func (m *stmtMetrics) overload() {
	m.mu.Lock()
	m.overloads++
	m.mu.Unlock()
}

// StmtStats is one statement's /stats entry. Latency quantiles are over
// the last latRing successful requests (batched riders included — a rider
// 's latency is what its client saw, wait and all).
type StmtStats struct {
	Execs     int64 `json:"execs"`
	Batched   int64 `json:"batched"`
	Errs      int64 `json:"errs"`
	GovTrips  int64 `json:"gov_trips"`
	Overloads int64 `json:"overloads"`
	Rows      int64 `json:"rows"`
	P50Micros int64 `json:"p50_us"`
	P99Micros int64 `json:"p99_us"`
}

func (m *stmtMetrics) snapshot() StmtStats {
	m.mu.Lock()
	st := StmtStats{
		Execs: m.execs, Batched: m.batched, Errs: m.errs,
		GovTrips: m.govTrips, Overloads: m.overloads, Rows: m.rows,
	}
	lats := make([]time.Duration, m.latN)
	copy(lats, m.lat[:m.latN])
	m.mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.P50Micros = lats[len(lats)/2].Microseconds()
		st.P99Micros = lats[len(lats)*99/100].Microseconds()
	}
	return st
}

// Stats is the whole-server /stats snapshot.
type Stats struct {
	Stmts      map[string]StmtStats `json:"stmts"`
	QueueDepth int64                `json:"queue_depth"` // requests waiting for a slot now
	Inflight   int64                `json:"inflight"`    // executions running now
	Overloads  int64                `json:"overloads"`   // admission rejections, lifetime
}

// Stats snapshots the service metrics.
func (s *Server) Stats() Stats {
	out := Stats{
		Stmts:      make(map[string]StmtStats),
		QueueDepth: s.adm.waiting.Load(),
		Inflight:   s.adm.running.Load(),
		Overloads:  s.adm.overloads.Load(),
	}
	s.reg.each(func(st *stmt) {
		out.Stmts[st.name] = st.met.snapshot()
	})
	return out
}
