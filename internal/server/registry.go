package server

import (
	"sort"
	"sync"

	"pyquery"
)

// stmt is one registered statement: the source text, the compiled
// template, and its metrics. The Prepared inside is safe for concurrent
// executions and revalidates its frozen snapshot itself; the registry
// only guards the name → statement map.
type stmt struct {
	name string
	src  string
	prep *pyquery.Prepared
	met  *stmtMetrics
}

// StmtInfo is the externally visible description of a registered
// statement.
type StmtInfo struct {
	Name        string   `json:"name"`
	Query       string   `json:"query"`
	Params      []string `json:"params,omitempty"`
	Engine      string   `json:"engine"`
	Fingerprint string   `json:"fingerprint"`
}

func (st *stmt) info() *StmtInfo {
	return &StmtInfo{
		Name:        st.name,
		Query:       st.src,
		Params:      st.prep.Params(),
		Engine:      st.prep.Engine().String(),
		Fingerprint: st.prep.Fingerprint(),
	}
}

// registry is the named prepared-statement table. Registration replaces
// atomically; executions that already resolved the old statement finish
// on its (still valid) frozen plan.
type registry struct {
	mu    sync.RWMutex
	stmts map[string]*stmt
}

func newRegistry() *registry {
	return &registry{stmts: make(map[string]*stmt)}
}

func (r *registry) put(st *stmt) {
	r.mu.Lock()
	// Re-registration keeps the existing metrics so /stats survives a
	// statement being redefined under the same name.
	if old, ok := r.stmts[st.name]; ok {
		st.met = old.met
	}
	r.stmts[st.name] = st
	r.mu.Unlock()
}

func (r *registry) get(name string) (*stmt, bool) {
	r.mu.RLock()
	st, ok := r.stmts[name]
	r.mu.RUnlock()
	return st, ok
}

func (r *registry) drop(name string) bool {
	r.mu.Lock()
	_, ok := r.stmts[name]
	delete(r.stmts, name)
	r.mu.Unlock()
	return ok
}

func (r *registry) list() []*StmtInfo {
	r.mu.RLock()
	infos := make([]*StmtInfo, 0, len(r.stmts))
	for _, st := range r.stmts {
		infos = append(infos, st.info())
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// each visits every statement (read-locked) — the /stats snapshot.
func (r *registry) each(fn func(*stmt)) {
	r.mu.RLock()
	for _, st := range r.stmts {
		fn(st)
	}
	r.mu.RUnlock()
}
