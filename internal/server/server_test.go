package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pyquery"
	"pyquery/internal/leakcheck"
	"pyquery/internal/parser"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

// directExec is the ground truth: parse src exactly like the server does
// and run the facade's prepared path directly.
func directExec(t *testing.T, src string, db *pyquery.DB, opts pyquery.Options, args ...pyquery.Arg) *pyquery.Relation {
	t.Helper()
	q, err := parser.New().ParseCQ(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	p, err := pyquery.Prepare(q, db, opts)
	if err != nil {
		t.Fatalf("prepare %q: %v", src, err)
	}
	res, err := p.Exec(context.Background(), args...)
	if err != nil {
		t.Fatalf("direct exec %q: %v", src, err)
	}
	return res
}

// TestRegistryExecEquivalence pins registry exec ≡ direct Prepared.Exec
// set-equality across all six engine classes.
func TestRegistryExecEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		db     *pyquery.DB
		engine pyquery.Engine
	}{
		{"yannakakis", "Q(x, z) :- E(x, y), E(y, z).",
			workload.GraphDB(200, 900, 1), pyquery.EngineYannakakis},
		{"colorcoding", "Q(x, z) :- E(x, y), E(y, z), x != z.",
			workload.GraphDB(200, 900, 2), pyquery.EngineColorCoding},
		{"comparisons", "Q(x, z) :- E(x, y), E(y, z), x < z.",
			workload.GraphDB(200, 900, 3), pyquery.EngineComparisons},
		{"generic", "T(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y.",
			workload.GraphDB(150, 700, 4), pyquery.EngineGeneric},
		{"decomp", workload.CycleQuery(4).String(),
			workload.GraphDB(250, 1100, 5), pyquery.EngineDecomp},
		{"wcoj", workload.TriangleQuery().String(),
			workload.HubGraphDB(140, 5), pyquery.EngineWCOJ},
	}
	covered := make(map[pyquery.Engine]bool)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.db, Config{Parallelism: 1})
			info, err := s.Register(tc.name, tc.src)
			if err != nil {
				t.Fatalf("register: %v", err)
			}
			// The decomposition class is structural; the database-dependent
			// cost gate may still keep the backtracker, and the direct path
			// below gates identically — so assert the query-level class for
			// decomp and the frozen engine for everything else.
			if tc.engine == pyquery.EngineDecomp {
				q, err := parser.New().ParseCQ(tc.src)
				if err != nil {
					t.Fatal(err)
				}
				if got := pyquery.Plan(q); got != pyquery.EngineDecomp {
					t.Fatalf("Plan = %v, want decomp class", got)
				}
			} else if info.Engine != tc.engine.String() {
				t.Fatalf("engine %q, want %q", info.Engine, tc.engine.String())
			}
			covered[tc.engine] = true
			got, meta, err := s.Exec(context.Background(), tc.name, nil, ExecOpts{})
			if err != nil {
				t.Fatalf("server exec: %v", err)
			}
			want := directExec(t, tc.src, tc.db, s.cfg.options())
			if !relation.EqualSet(got, want) {
				t.Fatalf("server result (%d rows) differs from direct exec (%d rows)",
					got.Len(), want.Len())
			}
			if meta.Rows != want.Len() {
				t.Fatalf("meta.Rows = %d, want %d", meta.Rows, want.Len())
			}
		})
	}
	if len(covered) != 6 {
		t.Fatalf("engine classes covered: %d, want all 6", len(covered))
	}
}

// TestParamExecEquivalence pins parameterized registry execution against
// direct Bind+Exec, across distinct bindings.
func TestParamExecEquivalence(t *testing.T) {
	db := workload.GraphDB(100, 500, 7)
	s := New(db, Config{Parallelism: 1})
	src := "Q(y) :- E($src, y)."
	if _, err := s.Register("adj", src); err != nil {
		t.Fatalf("register: %v", err)
	}
	for v := pyquery.Value(0); v < 20; v++ {
		got, _, err := s.Exec(context.Background(), "adj",
			map[string]pyquery.Value{"src": v}, ExecOpts{})
		if err != nil {
			t.Fatalf("exec src=%d: %v", v, err)
		}
		want := directExec(t, src, db, s.cfg.options(), pyquery.Bind("src", v))
		if !relation.EqualSet(got, want) {
			t.Fatalf("src=%d: server %d rows, direct %d rows", v, got.Len(), want.Len())
		}
	}
	// Wrong parameter sets are typed errors, not panics.
	if _, _, err := s.Exec(context.Background(), "adj", nil, ExecOpts{}); err == nil {
		t.Fatal("exec with missing params succeeded")
	}
	if _, _, err := s.Exec(context.Background(), "adj",
		map[string]pyquery.Value{"src": 1, "extra": 2}, ExecOpts{}); err == nil {
		t.Fatal("exec with extra params succeeded")
	}
}

// TestBatchedMatchesUnbatched runs a concurrent flood of identical and
// opted-out requests and requires every response to equal the direct
// answer; under -race this also exercises the flight sharing.
func TestBatchedMatchesUnbatched(t *testing.T) {
	leakcheck.Check(t)
	db := workload.GraphDB(150, 700, 11)
	s := New(db, Config{Parallelism: 1, BatchWindow: 2 * time.Millisecond,
		QueueDepth: 64, QueueWait: 5 * time.Second})
	src := "Q(x, z) :- E(x, y), E(y, z)."
	if _, err := s.Register("hop", src); err != nil {
		t.Fatal(err)
	}
	want := directExec(t, src, db, s.cfg.options())

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	sawBatched := make(chan bool, clients)
	for i := 0; i < clients; i++ {
		noBatch := i%4 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, meta, err := s.Exec(context.Background(), "hop", nil, ExecOpts{NoBatch: noBatch})
			if err != nil {
				errs <- err
				return
			}
			if noBatch && meta.Batched {
				errs <- errors.New("NoBatch request reported batched")
				return
			}
			if !relation.EqualSet(res, want) {
				errs <- fmt.Errorf("concurrent result drifted (%d rows, want %d)", res.Len(), want.Len())
				return
			}
			sawBatched <- meta.Batched
		}()
	}
	wg.Wait()
	close(errs)
	close(sawBatched)
	for err := range errs {
		t.Fatal(err)
	}
	batched := 0
	for b := range sawBatched {
		if b {
			batched++
		}
	}
	if batched == 0 {
		t.Fatal("no request coalesced despite the batch window")
	}
	st := s.Stats().Stmts["hop"]
	if st.Batched != int64(batched) || st.Execs != clients {
		t.Fatalf("stats: execs=%d batched=%d, want execs=%d batched=%d",
			st.Execs, st.Batched, clients, batched)
	}
}

// TestOverloadTyped pins the admission queue's fast rejection: with one
// slot held and no queue, execution returns the typed sentinel (and the
// HTTP layer maps it to 429).
func TestOverloadTyped(t *testing.T) {
	leakcheck.Check(t)
	db := workload.GraphDB(50, 200, 13)
	s := New(db, Config{Parallelism: 1, MaxInflight: 1, QueueDepth: -1, NoBatch: true})
	if _, err := s.Register("hop", "Q(x, z) :- E(x, y), E(y, z)."); err != nil {
		t.Fatal(err)
	}
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Exec(context.Background(), "hop", nil, ExecOpts{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exec under full admission: %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || !oe.QueueFull {
		t.Fatalf("want *OverloadError with QueueFull, got %#v", err)
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/stmt/hop/exec", strings.NewReader("{}"))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("http status %d, want 429", rec.Code)
	}
	release()

	// With a queue but a tiny wait deadline, the waiter times out typed.
	s2 := New(db, Config{Parallelism: 1, MaxInflight: 1, QueueDepth: 4,
		QueueWait: time.Millisecond, NoBatch: true})
	if _, err := s2.Register("hop", "Q(x, z) :- E(x, y), E(y, z)."); err != nil {
		t.Fatal(err)
	}
	release2, err := s2.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s2.Exec(context.Background(), "hop", nil, ExecOpts{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued exec: %v, want ErrOverloaded after wait deadline", err)
	}
	release2()
	if s2.Stats().Overloads == 0 {
		t.Fatal("overload not counted")
	}
}

// TestMutationRefresh drives the session loop: mutate through the server,
// refresh the registered statement, and check the view converges to a
// from-scratch execution.
func TestMutationRefresh(t *testing.T) {
	db := workload.GraphDB(80, 300, 17)
	s := New(db, Config{Parallelism: 1})
	src := "Q(x, z) :- E(x, y), E(y, z)."
	if _, err := s.Register("hop", src); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Refresh(context.Background(), "hop"); err != nil {
		t.Fatal(err)
	}
	n, err := s.Insert("E", [][]pyquery.Value{{9001, 9002}, {9002, 9003}})
	if err != nil || n != 2 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	added, removed, err := s.Refresh(context.Background(), "hop")
	if err != nil {
		t.Fatal(err)
	}
	if added.Len() == 0 || removed.Len() != 0 {
		t.Fatalf("refresh after insert: added=%d removed=%d", added.Len(), removed.Len())
	}
	if _, err := s.Delete("E", [][]pyquery.Value{{9001, 9002}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Refresh(context.Background(), "hop"); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Exec(context.Background(), "hop", nil, ExecOpts{NoBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	want := directExec(t, src, db, s.cfg.options())
	if !relation.EqualSet(got, want) {
		t.Fatal("post-mutation exec differs from direct exec")
	}
	// Typed errors for unknown names and arity mismatches.
	if _, err := s.Insert("nosuch", nil); !errors.Is(err, ErrUnknownRel) {
		t.Fatalf("insert unknown rel: %v", err)
	}
	if _, err := s.Insert("E", [][]pyquery.Value{{1}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, _, err := s.Exec(context.Background(), "nosuch", nil, ExecOpts{}); !errors.Is(err, ErrUnknownStmt) {
		t.Fatalf("exec unknown stmt: %v", err)
	}
}

// TestHTTPSessionDrain runs the whole line protocol over a real listener —
// CSV load, registration, parameterized exec with symbolic constants,
// mutation, refresh, stats — then drains; leakcheck requires the server
// to leave no goroutines behind.
func TestHTTPSessionDrain(t *testing.T) {
	leakcheck.Check(t)
	s := New(nil, Config{Parallelism: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d %s", path, resp.StatusCode, raw)
		}
		var out map[string]any
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("POST %s: bad json %q", path, raw)
		}
		return out
	}

	// Load a relation whose values are interned symbols.
	if out := post("/rel/City", "paris,france\nlyon,france\nberlin,germany"); out["rows"].(float64) != 3 {
		t.Fatalf("csv load: %v", out)
	}
	req, _ := http.NewRequest("PUT", ts.URL+"/stmt/in",
		strings.NewReader(`{"query": "Q(c) :- City(c, $country)."}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d", resp.StatusCode)
	}

	out := post("/stmt/in/exec", `{"params": {"country": "france"}}`)
	rows := out["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("exec rows: %v", out)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.([]any)[0].(string)] = true
	}
	if !seen["paris"] || !seen["lyon"] {
		t.Fatalf("symbol round-trip failed: %v", rows)
	}

	// A parameterized template is not incrementally maintainable, so the
	// refresh leg uses a constant-free statement over the same relation.
	req2, _ := http.NewRequest("PUT", ts.URL+"/stmt/pairs",
		strings.NewReader(`{"query": "Q(c, k) :- City(c, k)."}`))
	resp, err = http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register pairs: %d", resp.StatusCode)
	}
	post("/stmt/pairs/refresh", "")

	post("/rel/City/insert", `{"rows": [["marseille", "france"]]}`)
	ref := post("/stmt/pairs/refresh", "")
	if len(ref["added"].([]any)) == 0 {
		t.Fatalf("refresh after insert: %v", ref)
	}
	out = post("/stmt/in/exec", `{"params": {"country": "france"}}`)
	if out["n"].(float64) != 3 {
		t.Fatalf("post-insert exec: %v", out)
	}

	// Stats reflect the traffic.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Stmts["in"].Execs < 2 {
		t.Fatalf("stats: %+v", stats.Stmts["in"])
	}

	// Drain: subsequent requests are rejected as draining (503), and
	// Shutdown returns once in-flight work is done.
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp2, err := http.Post(ts.URL+"/stmt/in/exec", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exec after drain: %d, want 503", resp2.StatusCode)
	}
	if _, _, err := s.Exec(context.Background(), "in", nil, ExecOpts{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("core exec after drain: %v", err)
	}
}

// TestConcurrentMixedTraffic hammers one server with concurrent execs,
// mutations, and refreshes — the RWMutex exclusion contract under -race.
func TestConcurrentMixedTraffic(t *testing.T) {
	leakcheck.Check(t)
	db := workload.GraphDB(100, 400, 23)
	s := New(db, Config{Parallelism: 1, BatchWindow: 500 * time.Microsecond})
	if _, err := s.Register("hop", "Q(x, z) :- E(x, y), E(y, z)."); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("tri", workload.TriangleQuery().String()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (w + i) % 4 {
				case 0, 1:
					name := "hop"
					if i%2 == 0 {
						name = "tri"
					}
					if _, _, err := s.Exec(context.Background(), name, nil, ExecOpts{}); err != nil && !errors.Is(err, ErrOverloaded) {
						errc <- err
						return
					}
				case 2:
					v := pyquery.Value(10000 + w*100 + i)
					if _, err := s.Insert("E", [][]pyquery.Value{{v, v + 1}}); err != nil {
						errc <- err
						return
					}
				case 3:
					if _, _, err := s.Refresh(context.Background(), "hop"); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
