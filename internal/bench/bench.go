// Package bench provides the experiment harness shared by cmd/benchrunner
// and bench_test.go: wall-clock measurement, series collection, log–log
// slope estimation (the empirical scaling exponent that experiments E1/E3/
// E4/E7 report), and plain-text table rendering.
package bench

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Point is one measurement: X is the swept parameter (n, k, …), Y the
// measured quantity (seconds, tuples, …).
type Point struct {
	X, Y float64
}

// Series is a named sequence of measurements.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a measurement.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{x, y})
}

// Slope returns the least-squares slope of log Y against log X — the
// empirical exponent b in Y ≈ a·X^b. Points with non-positive coordinates
// are skipped; fewer than two usable points yield NaN.
func (s *Series) Slope() float64 {
	var xs, ys []float64
	for _, p := range s.Points {
		if p.X > 0 && p.Y > 0 {
			xs = append(xs, math.Log(p.X))
			ys = append(ys, math.Log(p.Y))
		}
	}
	n := float64(len(xs))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// GrowthRatio returns the mean ratio Y_{i+1}/Y_i — the per-step
// multiplicative growth, useful for exponential-in-k series where a log-log
// slope is the wrong model.
func (s *Series) GrowthRatio() float64 {
	var ratios []float64
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i-1].Y > 0 {
			ratios = append(ratios, s.Points[i].Y/s.Points[i-1].Y)
		}
	}
	if len(ratios) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, r := range ratios {
		sum += r
	}
	return sum / float64(len(ratios))
}

// Seconds measures the wall-clock seconds of f, running it at least once
// and repeating until minDuration is reached for stable small measurements;
// the mean per-run time is returned.
func Seconds(minDuration time.Duration, f func()) float64 {
	start := time.Now()
	runs := 0
	for {
		f()
		runs++
		if time.Since(start) >= minDuration {
			break
		}
	}
	return time.Since(start).Seconds() / float64(runs)
}

// Table renders a fixed-width text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// FmtSeconds renders a duration in engineering style.
func FmtSeconds(s float64) string {
	switch {
	case s < 1e-6:
		return fmt.Sprintf("%.0fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// FmtFloat renders a float compactly.
func FmtFloat(f float64) string {
	if math.IsNaN(f) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", f)
}
