package bench

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSlopeRecoversExponent(t *testing.T) {
	// Y = 3·X² → slope 2.
	var s Series
	for _, x := range []float64{10, 20, 40, 80} {
		s.Add(x, 3*x*x)
	}
	if got := s.Slope(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("slope = %v, want 2", got)
	}
	// Linear.
	var l Series
	for _, x := range []float64{10, 100, 1000} {
		l.Add(x, 5*x)
	}
	if got := l.Slope(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("slope = %v, want 1", got)
	}
}

func TestSlopeDegenerate(t *testing.T) {
	var s Series
	if !math.IsNaN(s.Slope()) {
		t.Fatal("empty series must be NaN")
	}
	s.Add(1, 1)
	if !math.IsNaN(s.Slope()) {
		t.Fatal("single point must be NaN")
	}
	s.Add(-1, 5) // skipped
	if !math.IsNaN(s.Slope()) {
		t.Fatal("non-positive points must be skipped")
	}
	s.Add(1, 7) // same X twice → zero denominator
	if !math.IsNaN(s.Slope()) {
		t.Fatal("vertical series must be NaN")
	}
}

func TestGrowthRatio(t *testing.T) {
	var s Series
	for k := 1; k <= 5; k++ {
		s.Add(float64(k), math.Pow(3, float64(k)))
	}
	if got := s.GrowthRatio(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("growth = %v, want 3", got)
	}
	var empty Series
	if !math.IsNaN(empty.GrowthRatio()) {
		t.Fatal("empty growth must be NaN")
	}
}

func TestSecondsRepeatsShortFunctions(t *testing.T) {
	calls := 0
	got := Seconds(5*time.Millisecond, func() {
		calls++
		time.Sleep(200 * time.Microsecond)
	})
	if calls < 2 {
		t.Fatalf("short function should repeat, ran %d times", calls)
	}
	if got <= 0 {
		t.Fatalf("mean seconds = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"n", "time"}, [][]string{{"10", "1ms"}, {"100000", "2ms"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines: %q", out)
	}
	if !strings.HasPrefix(lines[0], "n ") || !strings.Contains(lines[0], "time") {
		t.Fatalf("header: %q", lines[0])
	}
	// Column alignment: all rows same prefix width before "time" column.
	if len(lines[2]) < len("100000") {
		t.Fatalf("row too short: %q", lines[2])
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		5e-9:  "5ns",
		5e-6:  "5.0µs",
		5e-3:  "5.00ms",
		5.123: "5.123s",
	}
	for in, want := range cases {
		if got := FmtSeconds(in); got != want {
			t.Errorf("FmtSeconds(%v) = %q, want %q", in, got, want)
		}
	}
	if FmtFloat(math.NaN()) != "n/a" || FmtFloat(2.345) != "2.35" {
		t.Fatal("FmtFloat")
	}
}
