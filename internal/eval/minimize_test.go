package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

func TestMinimizeRemovesFoldableAtoms(t *testing.T) {
	// G(x0) :- E(x0,x1), E(x0,x2): the second atom folds onto the first.
	q := &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(0), query.V(2)),
		},
	}
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Fatalf("minimized to %d atoms, want 1: %v", len(m.Atoms), m)
	}
	eq, err := Equivalent(q, m)
	if err != nil || !eq {
		t.Fatalf("minimization changed semantics: %v %v", eq, err)
	}
}

func TestMinimizeKeepsCore(t *testing.T) {
	// The triangle query is its own core: nothing removable.
	q := &query.CQ{Atoms: []query.Atom{
		query.NewAtom("E", query.V(0), query.V(1)),
		query.NewAtom("E", query.V(1), query.V(2)),
		query.NewAtom("E", query.V(2), query.V(0)),
	}}
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 3 {
		t.Fatalf("triangle core shrank: %v", m)
	}
	// Triangle plus a pendant edge from the triangle: the pendant folds.
	q2 := q.Clone()
	q2.Atoms = append(q2.Atoms, query.NewAtom("E", query.V(0), query.V(3)))
	m2, err := Minimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Atoms) != 3 {
		t.Fatalf("pendant atom should fold into the triangle: %v", m2)
	}
}

func TestMinimizeRespectsHeadSafety(t *testing.T) {
	// G(x1) :- E(x0,x1), E(x0,x2): only the x2 atom may go — x1 is in the head.
	q := &query.CQ{
		Head: []query.Term{query.V(1)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(0), query.V(2)),
		},
	}
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 || !m.Atoms[0].Args[1].Equal(query.V(1)) {
		t.Fatalf("wrong atom survived: %v", m)
	}
}

func TestMinimizeRejectsConstraints(t *testing.T) {
	q := &query.CQ{
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))},
		Ineqs: []query.Ineq{query.NeqVars(0, 1)},
	}
	if _, err := Minimize(q); err == nil {
		t.Fatal("≠ atoms accepted by Minimize")
	}
}

// Property: minimization preserves the answer on random instances.
func TestQuickMinimizePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, db := randCQInstance(rnd)
		q.Ineqs, q.Cmps = nil, nil
		if err := q.Validate(db); err != nil {
			return true
		}
		m, err := Minimize(q)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(m.Atoms) > len(q.Atoms) {
			t.Logf("seed %d: minimization grew the query", seed)
			return false
		}
		want, err := Conjunctive(q, db)
		if err != nil {
			return true
		}
		got, err := Conjunctive(m, db)
		if err != nil {
			t.Logf("seed %d: minimized query fails to evaluate: %v", seed, err)
			return false
		}
		if !relation.EqualSet(got, want) {
			t.Logf("seed %d: answers differ after minimization:\n%v\n%v", seed, q, m)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(131))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
