package eval

import (
	"math/rand"
	"testing"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// forceFanout lowers the fan-out work gate for the duration of a test so
// small randomized instances exercise the parallel backtracker (chunked
// first-step fan-out, per-worker cursors, global-seen merge, Bool early
// stop) rather than silently comparing serial to serial.
func forceFanout(t *testing.T) {
	t.Helper()
	old := minFanWork
	minFanWork = 0
	t.Cleanup(func() { minFanWork = old })
}

func randRel(rnd *rand.Rand, arity, rows, domain int) *relation.Relation {
	r := query.NewTable(arity)
	row := make([]relation.Value, arity)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = relation.Value(rnd.Intn(domain))
		}
		r.Append(row...)
	}
	return r.Dedup()
}

// The parallel backtracker must emit exactly the serial evaluator's output
// (same tuples, same order) and agree on the Boolean decision, including on
// queries with ≠/comparison constraints and ground atoms.
func TestParallelBacktrackerMatchesSerial(t *testing.T) {
	forceFanout(t)
	for seed := int64(0); seed < 40; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := query.NewDB()
		db.Set("E", randRel(rnd, 2, 15+rnd.Intn(40), 5+rnd.Intn(5)))
		db.Set("L", randRel(rnd, 1, 1+rnd.Intn(6), 5))
		q := &query.CQ{
			Head: []query.Term{query.V(0), query.V(2)},
			Atoms: []query.Atom{
				query.NewAtom("E", query.V(0), query.V(1)),
				query.NewAtom("E", query.V(1), query.V(2)),
				query.NewAtom("E", query.V(2), query.V(0)), // cyclic
				query.NewAtom("L", query.V(0)),
			},
			Ineqs: []query.Ineq{query.NeqVars(0, 2)},
			Cmps:  []query.Cmp{query.Le(query.V(1), query.V(2))},
		}
		serial, err := ConjunctiveOpts(q, db, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		serialOK, err := ConjunctiveBoolOpts(q, db, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 3, 8} {
			got, err := ConjunctiveOpts(q, db, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != serial.Len() {
				t.Fatalf("seed %d par %d: %d tuples, serial %d", seed, par, got.Len(), serial.Len())
			}
			for i := 0; i < got.Len(); i++ {
				for c, v := range got.Row(i) {
					if serial.Row(i)[c] != v {
						t.Fatalf("seed %d par %d: row %d differs from serial (order must match)", seed, par, i)
					}
				}
			}
			gotOK, err := ConjunctiveBoolOpts(q, db, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != serialOK {
				t.Fatalf("seed %d par %d: bool %v, serial %v", seed, par, gotOK, serialOK)
			}
		}
	}
}

// Ground atoms ahead of the fan-out step: the fan step is the first
// binding step, and preceding tautologies must not break the split.
func TestParallelBacktrackerGroundPrefix(t *testing.T) {
	forceFanout(t)
	db := query.NewDB()
	e := query.NewTable(2)
	for i := 0; i < 30; i++ {
		e.Append(relation.Value(i%6), relation.Value((i+1)%6))
	}
	db.Set("E", e.Dedup())
	q := &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.C(0), query.C(1)), // ground → tautology step
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(0)),
		},
	}
	serial, err := ConjunctiveOpts(q, db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ConjunctiveOpts(q, db, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(serial, par) {
		t.Fatalf("ground-prefix fan-out diverges: %v vs %v", serial, par)
	}
}
