package eval

import (
	"testing"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// pathDB is a little directed graph: E = {(0,1),(1,2),(2,3),(1,4)}.
func pathDB() *query.DB {
	db := query.NewDB()
	db.Set("E", query.Table(2,
		[]relation.Value{0, 1}, []relation.Value{1, 2},
		[]relation.Value{2, 3}, []relation.Value{1, 4}))
	return db
}

func TestConjunctivePathQuery(t *testing.T) {
	// G(x0,x2) :- E(x0,x1), E(x1,x2): pairs at distance 2.
	q := &query.CQ{
		Head:  []query.Term{query.V(0), query.V(2)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1)), query.NewAtom("E", query.V(1), query.V(2))},
	}
	res, err := Conjunctive(q, pathDB())
	if err != nil {
		t.Fatal(err)
	}
	want := query.Table(2,
		[]relation.Value{0, 2}, []relation.Value{0, 4},
		[]relation.Value{1, 3})
	if !relation.EqualSet(res, want) {
		t.Fatalf("distance-2 pairs = %v, want %v", res, want)
	}
}

func TestConjunctiveBooleanAndConstants(t *testing.T) {
	db := pathDB()
	// Boolean: is there an edge out of 2?
	q := &query.CQ{Atoms: []query.Atom{query.NewAtom("E", query.C(2), query.V(0))}}
	ok, err := ConjunctiveBool(q, db)
	if err != nil || !ok {
		t.Fatalf("edge out of 2 exists: %v %v", ok, err)
	}
	q2 := &query.CQ{Atoms: []query.Atom{query.NewAtom("E", query.C(3), query.V(0))}}
	ok, err = ConjunctiveBool(q2, db)
	if err != nil || ok {
		t.Fatalf("no edge out of 3: %v %v", ok, err)
	}
}

func TestConjunctiveRepeatedVariable(t *testing.T) {
	db := query.NewDB()
	db.Set("R", query.Table(2,
		[]relation.Value{1, 1}, []relation.Value{1, 2}, []relation.Value{3, 3}))
	// G(x0) :- R(x0,x0): diagonal.
	q := &query.CQ{
		Head:  []query.Term{query.V(0)},
		Atoms: []query.Atom{query.NewAtom("R", query.V(0), query.V(0))},
	}
	res, err := Conjunctive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := query.Table(1, []relation.Value{1}, []relation.Value{3})
	if !relation.EqualSet(res, want) {
		t.Fatalf("diagonal = %v", res)
	}
}

func TestConjunctiveWithIneqAndCmp(t *testing.T) {
	db := pathDB()
	// Distance-2 pairs with endpoints distinct and increasing.
	q := &query.CQ{
		Head: []query.Term{query.V(0), query.V(2)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(2)),
		},
		Ineqs: []query.Ineq{query.NeqVars(0, 2)},
		Cmps:  []query.Cmp{query.Lt(query.V(0), query.V(2))},
	}
	res, err := Conjunctive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := query.Table(2,
		[]relation.Value{0, 2}, []relation.Value{0, 4}, []relation.Value{1, 3})
	if !relation.EqualSet(res, want) {
		t.Fatalf("constrained pairs = %v", res)
	}
	// Now exclude via x2 ≠ 2 and x0 > 0 … i.e. 0 < x0.
	q.Ineqs = append(q.Ineqs, query.NeqConst(2, 2))
	q.Cmps = append(q.Cmps, query.Lt(query.C(0), query.V(0)))
	res, err = Conjunctive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want = query.Table(2, []relation.Value{1, 3})
	if !relation.EqualSet(res, want) {
		t.Fatalf("doubly constrained pairs = %v", res)
	}
}

func TestConjunctiveNoAtoms(t *testing.T) {
	db := pathDB()
	q := &query.CQ{Head: []query.Term{query.C(7)}}
	res, err := Conjunctive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Row(0)[0] != 7 {
		t.Fatalf("constant head query = %v", res)
	}
	// Ground false comparison makes it empty.
	q.Cmps = []query.Cmp{query.Lt(query.C(1), query.C(0))}
	res, err = Conjunctive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("ground-false query returned %v", res)
	}
}

func TestConjunctiveCrossProductComponents(t *testing.T) {
	db := query.NewDB()
	db.Set("A", query.Table(1, []relation.Value{1}, []relation.Value{2}))
	db.Set("B", query.Table(1, []relation.Value{10}, []relation.Value{20}))
	q := &query.CQ{
		Head:  []query.Term{query.V(0), query.V(1)},
		Atoms: []query.Atom{query.NewAtom("A", query.V(0)), query.NewAtom("B", query.V(1))},
	}
	res, err := Conjunctive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("cross product size %d, want 4", res.Len())
	}
}

func TestConjunctiveEmptyRelationShortCircuits(t *testing.T) {
	db := pathDB()
	db.Set("Z", query.NewTable(1))
	q := &query.CQ{
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1)), query.NewAtom("Z", query.V(0))},
	}
	ok, err := ConjunctiveBool(q, db)
	if err != nil || ok {
		t.Fatalf("empty atom must falsify query: %v %v", ok, err)
	}
}

func TestNoReorderOptionGivesSameAnswers(t *testing.T) {
	db := pathDB()
	q := &query.CQ{
		Head: []query.Term{query.V(0), query.V(2)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(1), query.V(2)),
			query.NewAtom("E", query.V(0), query.V(1)),
		},
	}
	a, err := ConjunctiveOpts(q, db, Options{NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConjunctiveOpts(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(a, b) {
		t.Fatalf("reorder changed the answer: %v vs %v", a, b)
	}
}

func TestReduceAtom(t *testing.T) {
	db := query.NewDB()
	db.Set("R", query.Table(3,
		[]relation.Value{1, 1, 5}, []relation.Value{1, 2, 5},
		[]relation.Value{2, 2, 5}, []relation.Value{2, 2, 6}))
	// R(x0, x0, 5): rows with col0==col1 and col2==5 → {1,2}... only (1,1,5) and (2,2,5).
	s, vars := ReduceAtom(query.NewAtom("R", query.V(0), query.V(0), query.C(5)), db)
	if len(vars) != 1 || vars[0] != 0 {
		t.Fatalf("vars = %v", vars)
	}
	if s.Len() != 2 || s.Width() != 1 {
		t.Fatalf("reduced = %v", s)
	}
	if !s.Contains([]relation.Value{1}) || !s.Contains([]relation.Value{2}) {
		t.Fatalf("reduced contents wrong: %v", s)
	}
}

func TestFirstOrderNegationAndForall(t *testing.T) {
	db := pathDB()
	// Sinks: x0 with no outgoing edge: ∀x1 ¬E(x0,x1).
	q := &query.FOQuery{
		Head: []query.Term{query.V(0)},
		Body: query.Forall{V: 1, Sub: query.Not{Sub: query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(1))}}},
	}
	res, err := FirstOrder(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Active domain {0,1,2,3,4}; sinks are 3 and 4.
	want := query.Table(1, []relation.Value{3}, []relation.Value{4})
	if !relation.EqualSet(res, want) {
		t.Fatalf("sinks = %v, want %v", res, want)
	}
}

func TestFirstOrderShadowing(t *testing.T) {
	db := pathDB()
	// ∃x0 (E(x0, x1) ∧ ∃x1 E(x1, x0)) — inner x1 shadows; free var x1.
	body := query.Exists{V: 0, Sub: query.Conj(
		query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(1))},
		query.Exists{V: 1, Sub: query.FAtom{Atom: query.NewAtom("E", query.V(1), query.V(0))}},
	)}
	q := &query.FOQuery{Head: []query.Term{query.V(1)}, Body: body}
	res, err := FirstOrder(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// x1 such that some x0 has edge x0→x1 and x0 has an in-edge:
	// x0=1 (in-edge from 0): x1 ∈ {2,4}; x0=2 (in-edge 1): x1=3.
	want := query.Table(1, []relation.Value{2}, []relation.Value{3}, []relation.Value{4})
	if !relation.EqualSet(res, want) {
		t.Fatalf("shadowed query = %v, want %v", res, want)
	}
}

func TestFirstOrderBool(t *testing.T) {
	db := pathDB()
	// ∃x0∃x1∃x2: path of length 2.
	body := query.Exists{V: 0, Sub: query.Exists{V: 1, Sub: query.Exists{V: 2, Sub: query.Conj(
		query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(1))},
		query.FAtom{Atom: query.NewAtom("E", query.V(1), query.V(2))},
	)}}}
	ok, err := FirstOrderBool(&query.FOQuery{Body: body}, db)
	if err != nil || !ok {
		t.Fatalf("2-path exists: %v %v", ok, err)
	}
}

func TestPositiveRejectsNegation(t *testing.T) {
	db := pathDB()
	q := &query.FOQuery{Body: query.Not{Sub: query.FAtom{Atom: query.NewAtom("E", query.C(0), query.C(1))}}}
	if _, err := Positive(q, db); err == nil {
		t.Fatal("negation accepted by Positive")
	}
	if _, err := PositiveBool(q, db); err == nil {
		t.Fatal("negation accepted by PositiveBool")
	}
}

func TestPositiveDisjunction(t *testing.T) {
	db := pathDB()
	// x0 reachable from 0 in one or two steps.
	body := query.Disj(
		query.FAtom{Atom: query.NewAtom("E", query.C(0), query.V(0))},
		query.Exists{V: 1, Sub: query.Conj(
			query.FAtom{Atom: query.NewAtom("E", query.C(0), query.V(1))},
			query.FAtom{Atom: query.NewAtom("E", query.V(1), query.V(0))},
		)},
	)
	res, err := Positive(&query.FOQuery{Head: []query.Term{query.V(0)}, Body: body}, db)
	if err != nil {
		t.Fatal(err)
	}
	want := query.Table(1, []relation.Value{1}, []relation.Value{2}, []relation.Value{4})
	if !relation.EqualSet(res, want) {
		t.Fatalf("reachable≤2 = %v, want %v", res, want)
	}
}

func TestContainment(t *testing.T) {
	// Q2: G(x0) :- E(x0,x1),E(x1,x2)  (2-path from x0)
	// Q1: G(x0) :- E(x0,x1)           (1-path from x0)
	// Q2 ⊆ Q1 (having a 2-path implies having a 1-path).
	q1 := &query.CQ{Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))}}
	q2 := &query.CQ{Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1)), query.NewAtom("E", query.V(1), query.V(2))}}
	ok, err := Contained(q2, q1)
	if err != nil || !ok {
		t.Fatalf("2-path ⊆ 1-path: %v %v", ok, err)
	}
	ok, err = Contained(q1, q2)
	if err != nil || ok {
		t.Fatalf("1-path ⊄ 2-path: %v %v", ok, err)
	}
	// Equivalence under variable renaming.
	q1r := &query.CQ{Head: []query.Term{query.V(5)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(5), query.V(9))}}
	eq, err := Equivalent(q1, q1r)
	if err != nil || !eq {
		t.Fatalf("renamed queries must be equivalent: %v %v", eq, err)
	}
}

func TestContainmentWithConstantsAndErrors(t *testing.T) {
	qc := &query.CQ{Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.C(3))}}
	qv := &query.CQ{Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))}}
	// qc ⊆ qv (an edge to 3 is an edge).
	ok, err := Contained(qc, qv)
	if err != nil || !ok {
		t.Fatalf("constant query containment: %v %v", ok, err)
	}
	ok, err = Contained(qv, qc)
	if err != nil || ok {
		t.Fatalf("reverse containment should fail: %v %v", ok, err)
	}
	// Arity mismatch across queries → just "not contained".
	qarity := &query.CQ{Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1), query.V(2))}}
	ok, err = Contained(qv, qarity)
	if err != nil || ok {
		t.Fatalf("arity-mismatched containment should be false: %v %v", ok, err)
	}
	// Head arity mismatch is an error.
	if _, err := Contained(qv, &query.CQ{}); err == nil {
		t.Fatal("head arity mismatch accepted")
	}
	// Ineqs unsupported.
	if _, err := Contained(&query.CQ{Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))},
		Ineqs: []query.Ineq{query.NeqVars(0, 1)}}, qv); err == nil {
		t.Fatal("≠ atoms accepted in containment")
	}
}

func TestValidationErrorsPropagate(t *testing.T) {
	db := pathDB()
	bad := &query.CQ{Atoms: []query.Atom{query.NewAtom("Nope", query.V(0))}}
	if _, err := Conjunctive(bad, db); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := ConjunctiveBrute(bad, db); err == nil {
		t.Fatal("unknown relation accepted by brute")
	}
	if _, err := ConjunctiveBool(bad, db); err == nil {
		t.Fatal("unknown relation accepted by bool")
	}
}
