package eval

import (
	"fmt"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// CanonicalDB builds the canonical (frozen) database of a pure conjunctive
// query: each variable becomes a fresh constant disjoint from the query's
// real constants, each atom becomes a tuple. It returns the database and
// the frozen head tuple. This is the Chandra–Merlin device behind
// containment testing ([5] in the paper).
func CanonicalDB(q *query.CQ) (*query.DB, []relation.Value, error) {
	if len(q.Ineqs) > 0 || len(q.Cmps) > 0 {
		return nil, nil, fmt.Errorf("eval: canonical database requires a pure conjunctive query")
	}
	// Fresh constants start above every constant in the query.
	var maxConst relation.Value
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if !t.IsVar && t.Const > maxConst {
				maxConst = t.Const
			}
		}
	}
	for _, t := range q.Head {
		if !t.IsVar && t.Const > maxConst {
			maxConst = t.Const
		}
	}
	frozen := func(v query.Var) relation.Value { return maxConst + 1 + relation.Value(v) }

	db := query.NewDB()
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		if prev, ok := arity[a.Rel]; ok && prev != len(a.Args) {
			return nil, nil, fmt.Errorf("eval: relation %q used with arities %d and %d", a.Rel, prev, len(a.Args))
		}
		arity[a.Rel] = len(a.Args)
	}
	for name, ar := range arity {
		db.Set(name, query.NewTable(ar))
	}
	for _, a := range q.Atoms {
		r := db.MustRel(a.Rel)
		row := make([]relation.Value, len(a.Args))
		for i, t := range a.Args {
			if t.IsVar {
				row[i] = frozen(t.Var)
			} else {
				row[i] = t.Const
			}
		}
		r.Append(row...)
	}
	head := make([]relation.Value, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar {
			head[i] = frozen(t.Var)
		} else {
			head[i] = t.Const
		}
	}
	return db, head, nil
}

// Contained reports whether sub ⊆ super holds for every database — i.e.
// whether there is a homomorphism from super to sub mapping head to head.
// Both queries must be pure CQs with heads of equal arity.
func Contained(sub, super *query.CQ) (bool, error) {
	if len(sub.Head) != len(super.Head) {
		return false, fmt.Errorf("eval: containment of queries with different head arities (%d vs %d)",
			len(sub.Head), len(super.Head))
	}
	if len(super.Ineqs) > 0 || len(super.Cmps) > 0 || len(sub.Ineqs) > 0 || len(sub.Cmps) > 0 {
		return false, fmt.Errorf("eval: containment implemented for pure conjunctive queries only")
	}
	db, frozenHead, err := CanonicalDB(sub)
	if err != nil {
		return false, err
	}
	// super may mention relations absent from sub's canonical database; any
	// such atom is unsatisfiable there, so containment fails — but we must
	// install empty relations so validation passes.
	for _, a := range super.Atoms {
		if r, ok := db.Rel(a.Rel); !ok {
			db.Set(a.Rel, query.NewTable(len(a.Args)))
		} else if r.Width() != len(a.Args) {
			return false, nil // arity mismatch: the atom can never match sub's relation
		}
	}
	bound, err := super.BindHead(frozenHead)
	if query.IsTrivialMismatch(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return ConjunctiveBool(bound, db)
}

// Equivalent reports whether the two pure CQs are semantically equivalent
// (mutual containment).
func Equivalent(a, b *query.CQ) (bool, error) {
	ab, err := Contained(a, b)
	if err != nil {
		return false, err
	}
	if !ab {
		return false, nil
	}
	return Contained(b, a)
}

// Minimize returns an equivalent pure conjunctive query with a minimal
// number of atoms — the Chandra–Merlin core ([5] in the paper): atoms are
// removed greedily as long as the smaller query stays equivalent to the
// original. The result is unique up to isomorphism by the classical core
// theorem.
func Minimize(q *query.CQ) (*query.CQ, error) {
	if len(q.Ineqs) > 0 || len(q.Cmps) > 0 {
		return nil, fmt.Errorf("eval: minimization requires a pure conjunctive query")
	}
	cur := q.Clone()
	for {
		removed := false
		for i := 0; i < len(cur.Atoms); i++ {
			cand := cur.Clone()
			cand.Atoms = append(cand.Atoms[:i], cand.Atoms[i+1:]...)
			// Removing an atom can only grow the query (fewer constraints),
			// so cand ⊇ cur always; equivalence needs cand ⊆ cur. It also
			// must stay safe (head variables still in the body).
			if err := safeHead(cand); err != nil {
				continue
			}
			ok, err := Contained(cand, cur)
			if err != nil {
				return nil, err
			}
			if ok {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur, nil
		}
	}
}

// safeHead checks the range restriction after atom removal.
func safeHead(q *query.CQ) error {
	body := make(map[query.Var]bool)
	for _, v := range q.BodyVars() {
		body[v] = true
	}
	for _, t := range q.Head {
		if t.IsVar && !body[t.Var] {
			return fmt.Errorf("eval: unsafe head after removal")
		}
	}
	return nil
}
