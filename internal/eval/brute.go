package eval

import (
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// ConjunctiveBrute evaluates a conjunctive query (with ≠ and comparisons)
// by enumerating every assignment of its variables over the active domain —
// |D|^v work. It is the reference oracle every faster engine is
// property-tested against.
func ConjunctiveBrute(q *query.CQ, db *query.DB) (*relation.Relation, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	domain := db.ActiveDomain()
	vars := q.BodyVars()
	slot := make(map[query.Var]int, len(vars))
	for i, v := range vars {
		slot[v] = i
	}
	assign := make([]relation.Value, len(vars))

	// Membership sets per relation for O(1) atom checks.
	member := makeMemberSets(db)

	buf := make([]relation.Value, 0, 8)
	holds := func() bool {
		for _, a := range q.Atoms {
			buf = buf[:0]
			for _, t := range a.Args {
				if t.IsVar {
					buf = append(buf, assign[slot[t.Var]])
				} else {
					buf = append(buf, t.Const)
				}
			}
			if !member[a.Rel].Contains(buf) {
				return false
			}
		}
		for _, iq := range q.Ineqs {
			x := assign[slot[iq.X]]
			if iq.YIsVar {
				if x == assign[slot[iq.Y]] {
					return false
				}
			} else if x == iq.C {
				return false
			}
		}
		for _, c := range q.Cmps {
			l, r := c.Left.Const, c.Right.Const
			if c.Left.IsVar {
				l = assign[slot[c.Left.Var]]
			}
			if c.Right.IsVar {
				r = assign[slot[c.Right.Var]]
			}
			if !c.Holds(l, r) {
				return false
			}
		}
		return true
	}

	out := query.NewTable(len(q.Head))
	seen := relation.NewTupleSet(len(q.Head))
	tuple := make([]relation.Value, len(q.Head))
	emit := func() {
		for i, t := range q.Head {
			if t.IsVar {
				tuple[i] = assign[slot[t.Var]]
			} else {
				tuple[i] = t.Const
			}
		}
		if seen.Add(tuple) {
			out.Append(tuple...)
		}
	}

	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			if holds() {
				emit()
			}
			return
		}
		for _, v := range domain {
			assign[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out, nil
}
