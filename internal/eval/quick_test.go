package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// RandCQInstance builds a random database plus a random conjunctive query
// with ≠ and comparison atoms over it, sized for brute-force oracles.
func randCQInstance(rnd *rand.Rand) (*query.CQ, *query.DB) {
	db := query.NewDB()
	names := []string{"R", "S", "T"}
	arities := []int{1 + rnd.Intn(2), 1 + rnd.Intn(3), 2}
	domain := 2 + rnd.Intn(4)
	for i, name := range names {
		r := query.NewTable(arities[i])
		rows := rnd.Intn(10)
		row := make([]relation.Value, arities[i])
		for j := 0; j < rows; j++ {
			for c := range row {
				row[c] = relation.Value(rnd.Intn(domain))
			}
			r.Append(row...)
		}
		r.Dedup()
		db.Set(name, r)
	}

	nvars := 1 + rnd.Intn(4)
	natoms := 1 + rnd.Intn(4)
	q := &query.CQ{}
	usedVars := make(map[query.Var]bool)
	for i := 0; i < natoms; i++ {
		ri := rnd.Intn(len(names))
		args := make([]query.Term, arities[ri])
		for j := range args {
			if rnd.Intn(5) == 0 {
				args[j] = query.C(relation.Value(rnd.Intn(domain)))
			} else {
				v := query.Var(rnd.Intn(nvars))
				usedVars[v] = true
				args[j] = query.V(v)
			}
		}
		q.Atoms = append(q.Atoms, query.Atom{Rel: names[ri], Args: args})
	}
	var used []query.Var
	for v := range usedVars {
		used = append(used, v)
	}
	if len(used) > 0 {
		// Head: up to two used variables.
		for i := 0; i < 1+rnd.Intn(2); i++ {
			q.Head = append(q.Head, query.V(used[rnd.Intn(len(used))]))
		}
		// Sprinkle constraints over used variables.
		for i := 0; i < rnd.Intn(3); i++ {
			x := used[rnd.Intn(len(used))]
			switch rnd.Intn(3) {
			case 0:
				y := used[rnd.Intn(len(used))]
				if x != y {
					q.Ineqs = append(q.Ineqs, query.NeqVars(x, y))
				}
			case 1:
				q.Ineqs = append(q.Ineqs, query.NeqConst(x, relation.Value(rnd.Intn(domain))))
			default:
				y := used[rnd.Intn(len(used))]
				q.Cmps = append(q.Cmps, query.Cmp{Left: query.V(x), Right: query.V(y), Strict: rnd.Intn(2) == 0})
			}
		}
	}
	return q, db
}

// Property: the backtracking evaluator agrees with brute-force enumeration
// on random instances, with and without the join-order heuristic.
func TestQuickConjunctiveAgreesWithBrute(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, db := randCQInstance(rnd)
		want, err := ConjunctiveBrute(q, db)
		if err != nil {
			return true // invalid instance; nothing to compare
		}
		got, err := Conjunctive(q, db)
		if err != nil {
			t.Logf("seed %d: evaluator error %v on %v", seed, err, q)
			return false
		}
		if !relation.EqualSet(got, want) {
			t.Logf("seed %d: mismatch on %v:\n got %v\nwant %v", seed, q, got, want)
			return false
		}
		got2, err := ConjunctiveOpts(q, db, Options{NoReorder: true})
		if err != nil || !relation.EqualSet(got2, want) {
			t.Logf("seed %d: NoReorder mismatch", seed)
			return false
		}
		okWant := want.Bool()
		okGot, err := ConjunctiveBool(q, db)
		if err != nil || okGot != okWant {
			t.Logf("seed %d: bool mismatch", seed)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(51))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: a CQ and its formula translation agree under FO evaluation.
func TestQuickCQMatchesFOTranslation(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, db := randCQInstance(rnd)
		q.Ineqs, q.Cmps = nil, nil // pure CQ only
		if err := q.Validate(db); err != nil {
			return true
		}
		body, err := query.CQToFormula(q)
		if err != nil {
			return true
		}
		fo := &query.FOQuery{Head: q.Head, Body: body}
		want, err := Conjunctive(q, db)
		if err != nil {
			return true
		}
		got, err := FirstOrder(fo, db)
		if err != nil {
			// Head terms with constants: FO validation may reject when the
			// head var set mismatches; skip those shapes.
			return true
		}
		if !relation.EqualSet(got, want) {
			t.Logf("seed %d: FO translation mismatch on %v", seed, q)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(52))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: containment is reflexive, and adding atoms only shrinks queries.
func TestQuickContainmentLaws(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, _ := randCQInstance(rnd)
		q.Ineqs, q.Cmps = nil, nil
		if len(q.Atoms) == 0 {
			return true
		}
		if ok, err := Contained(q, q); err != nil || !ok {
			t.Logf("seed %d: reflexivity failed: %v", seed, err)
			return false
		}
		// q ∧ extra-atom ⊆ q.
		bigger := q.Clone()
		bigger.Atoms = append(bigger.Atoms, q.Atoms[rnd.Intn(len(q.Atoms))])
		if ok, err := Contained(bigger, q); err != nil || !ok {
			t.Logf("seed %d: monotonicity failed: %v", seed, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
