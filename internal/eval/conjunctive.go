// Package eval implements the paper's baseline evaluators: generic
// backtracking conjunctive-query evaluation (data complexity n^{O(q)} —
// exactly the exponent Theorem 1 argues is inherent), brute-force
// enumeration oracles, recursive first-order evaluation over the active
// domain, and Chandra–Merlin homomorphism/containment checks.
package eval

import (
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// Options controls the conjunctive evaluator.
type Options struct {
	// NoReorder disables the greedy join-order heuristic and evaluates the
	// atoms in the order written (ablation A3).
	NoReorder bool
}

// Conjunctive evaluates a conjunctive query (with optional ≠ and comparison
// atoms) by backtracking search, returning the answer relation over the
// positional schema 0…len(head)−1. This is the generic evaluator whose
// running time is n^{O(q)}; it exists both as a baseline and as a general
// fallback for cyclic queries.
func Conjunctive(q *query.CQ, db *query.DB) (*relation.Relation, error) {
	return ConjunctiveOpts(q, db, Options{})
}

// ConjunctiveOpts is Conjunctive with explicit options.
func ConjunctiveOpts(q *query.CQ, db *query.DB, opts Options) (*relation.Relation, error) {
	e, err := newBacktracker(q, db, opts)
	if err != nil {
		return nil, err
	}
	out := query.NewTable(len(q.Head))
	if e.trivialFalse {
		return out, nil
	}
	// Head extraction plan: tuple starts as the constant template, and
	// headSlots names the assign slot feeding each variable position.
	tuple := make([]relation.Value, len(q.Head))
	headSlots := make([]int, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar {
			headSlots[i] = e.slot[t.Var]
		} else {
			headSlots[i] = -1
			tuple[i] = t.Const
		}
	}
	seen := relation.NewTupleSet(len(q.Head))
	e.run(func() bool {
		for i, s := range headSlots {
			if s >= 0 {
				tuple[i] = e.assign[s]
			}
		}
		if seen.Add(tuple) {
			out.Append(tuple...)
		}
		return true // keep searching
	})
	return out, nil
}

// ConjunctiveBool decides whether Q(d) is nonempty, stopping at the first
// witness. For the decision problem t ∈ Q(d), bind the head first with
// CQ.BindHead.
func ConjunctiveBool(q *query.CQ, db *query.DB) (bool, error) {
	return ConjunctiveBoolOpts(q, db, Options{})
}

// ConjunctiveBoolOpts is ConjunctiveBool with explicit options.
func ConjunctiveBoolOpts(q *query.CQ, db *query.DB, opts Options) (bool, error) {
	e, err := newBacktracker(q, db, opts)
	if err != nil {
		return false, err
	}
	if e.trivialFalse {
		return false, nil
	}
	found := false
	e.run(func() bool {
		found = true
		return false // stop
	})
	return found, nil
}

// backtracker holds the compiled plan for one (query, database) pair.
type backtracker struct {
	q    *query.CQ
	db   *query.DB
	opts Options

	vars []query.Var       // dense variable universe (body vars)
	slot map[query.Var]int // var → index into assign
	mark []bool            // assigned?
	// assign[slot] is the current value of each variable.
	assign []relation.Value

	plan         []planStep
	trivialFalse bool
}

type planStep struct {
	rel       *relation.Relation // S_j over distinct vars of the atom
	vars      []query.Var        // S_j's columns, as variables
	keyVars   []query.Var        // vars bound before this step
	newVars   []query.Var        // vars this step binds
	keyPos    []int              // positions of keyVars in S_j's schema
	newPos    []int              // positions of newVars
	keySlots  []int              // assign slots of keyVars (hoisted e.slot lookups)
	newSlots  []int              // assign slots of newVars
	index     *relation.Index
	ineqs     []ineqCheck // ≠ checks that become ready after this step
	cmps      []cmpCheck  // comparison checks that become ready after this step
	tautology bool        // ground atom already verified; skip at run time
}

// ineqCheck is a compiled ≠ constraint: assign[xSlot] must differ from
// assign[ySlot] (variable form) or from c (ySlot < 0).
type ineqCheck struct {
	xSlot int
	ySlot int
	c     relation.Value
}

// cmpCheck is a compiled </≤ constraint; a negative slot selects the
// constant operand instead.
type cmpCheck struct {
	lSlot, rSlot   int
	lConst, rConst relation.Value
	strict         bool
}

func newBacktracker(q *query.CQ, db *query.DB, opts Options) (*backtracker, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	e := &backtracker{q: q, db: db, opts: opts, slot: make(map[query.Var]int)}
	for _, v := range q.BodyVars() {
		e.slot[v] = len(e.vars)
		e.vars = append(e.vars, v)
	}
	e.assign = make([]relation.Value, len(e.vars))
	e.mark = make([]bool, len(e.vars))

	// Reduce each atom to S_j = π_{U_j} σ_{F_j}(R_j) over its distinct vars.
	type reduced struct {
		rel  *relation.Relation
		vars []query.Var
	}
	reds := make([]reduced, len(q.Atoms))
	for i, a := range q.Atoms {
		s, vars := ReduceAtom(a, db)
		if s.Empty() {
			e.trivialFalse = true
			return e, nil
		}
		reds[i] = reduced{rel: s, vars: vars}
	}

	// Ground comparisons (markers from substitution, or user-written).
	for _, c := range q.Cmps {
		if !c.Left.IsVar && !c.Right.IsVar {
			if !c.Holds(c.Left.Const, c.Right.Const) {
				e.trivialFalse = true
				return e, nil
			}
		}
	}

	// Order atoms: greedily pick the atom with the fewest unbound variables,
	// breaking ties by relation size.
	order := make([]int, 0, len(q.Atoms))
	used := make([]bool, len(q.Atoms))
	bound := make(map[query.Var]bool)
	for len(order) < len(q.Atoms) {
		best, bestUnbound, bestSize := -1, 0, 0
		for i := range q.Atoms {
			if used[i] {
				continue
			}
			if opts.NoReorder {
				best = i
				break
			}
			unbound := 0
			for _, v := range reds[i].vars {
				if !bound[v] {
					unbound++
				}
			}
			size := reds[i].rel.Len()
			if best == -1 || unbound < bestUnbound ||
				(unbound == bestUnbound && size < bestSize) {
				best, bestUnbound, bestSize = i, unbound, size
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range reds[best].vars {
			bound[v] = true
		}
	}

	// Build plan steps.
	bound = make(map[query.Var]bool)
	for _, ai := range order {
		rd := reds[ai]
		step := planStep{rel: rd.rel, vars: rd.vars}
		for _, v := range rd.vars {
			p := rd.rel.Pos(relation.Attr(v))
			if bound[v] {
				step.keyVars = append(step.keyVars, v)
				step.keyPos = append(step.keyPos, p)
				step.keySlots = append(step.keySlots, e.slot[v])
			} else {
				step.newVars = append(step.newVars, v)
				step.newPos = append(step.newPos, p)
				step.newSlots = append(step.newSlots, e.slot[v])
				bound[v] = true
			}
		}
		if len(rd.vars) == 0 {
			step.tautology = true // ground atom, already checked nonempty
		} else {
			keySchema := make(relation.Schema, len(step.keyVars))
			for i, v := range step.keyVars {
				keySchema[i] = relation.Attr(v)
			}
			step.index = relation.NewIndex(rd.rel, keySchema)
		}
		e.plan = append(e.plan, step)
	}

	// Attach each ≠/comparison, compiled down to assign slots, to the
	// earliest step after which all its variables are bound.
	readyAt := func(vs []query.Var) int {
		last := -1
		pos := make(map[query.Var]int)
		for si, st := range e.plan {
			for _, v := range st.newVars {
				pos[v] = si
			}
		}
		for _, v := range vs {
			p, ok := pos[v]
			if !ok {
				return -1
			}
			if p > last {
				last = p
			}
		}
		return last
	}
	for _, iq := range q.Ineqs {
		chk := ineqCheck{xSlot: e.slot[iq.X], ySlot: -1, c: iq.C}
		vs := []query.Var{iq.X}
		if iq.YIsVar {
			vs = append(vs, iq.Y)
			chk.ySlot = e.slot[iq.Y]
		}
		at := readyAt(vs)
		e.plan[at].ineqs = append(e.plan[at].ineqs, chk)
	}
	for _, c := range q.Cmps {
		chk := cmpCheck{lSlot: -1, rSlot: -1, lConst: c.Left.Const, rConst: c.Right.Const, strict: c.Strict}
		var vs []query.Var
		if c.Left.IsVar {
			vs = append(vs, c.Left.Var)
			chk.lSlot = e.slot[c.Left.Var]
		}
		if c.Right.IsVar {
			vs = append(vs, c.Right.Var)
			chk.rSlot = e.slot[c.Right.Var]
		}
		if len(vs) == 0 {
			continue // ground, already checked
		}
		at := readyAt(vs)
		e.plan[at].cmps = append(e.plan[at].cmps, chk)
	}
	return e, nil
}

// run backtracks through the plan, invoking emit at every full solution.
// emit returns false to stop the search.
func (e *backtracker) run(emit func() bool) {
	if len(e.plan) == 0 {
		// No atoms: validation guarantees no variables anywhere.
		emit()
		return
	}
	var rec func(step int) bool
	key := make([][]relation.Value, len(e.plan))
	for i, st := range e.plan {
		key[i] = make([]relation.Value, len(st.keyVars))
	}
	rec = func(step int) bool {
		if step == len(e.plan) {
			return emit()
		}
		st := &e.plan[step]
		if st.tautology {
			return rec(step + 1)
		}
		for i, s := range st.keySlots {
			key[step][i] = e.assign[s]
		}
		cont := true
		st.index.Each(key[step], func(row []relation.Value) bool {
			for i, s := range st.newSlots {
				e.assign[s] = row[st.newPos[i]]
			}
			if !e.checkStep(st) {
				return true // constraint failed; next tuple
			}
			cont = rec(step + 1)
			return cont
		})
		return cont
	}
	rec(0)
}

func (e *backtracker) checkStep(st *planStep) bool {
	for _, iq := range st.ineqs {
		x := e.assign[iq.xSlot]
		if iq.ySlot >= 0 {
			if x == e.assign[iq.ySlot] {
				return false
			}
		} else if x == iq.c {
			return false
		}
	}
	for _, c := range st.cmps {
		l, r := c.lConst, c.rConst
		if c.lSlot >= 0 {
			l = e.assign[c.lSlot]
		}
		if c.rSlot >= 0 {
			r = e.assign[c.rSlot]
		}
		if c.strict {
			if l >= r {
				return false
			}
		} else if l > r {
			return false
		}
	}
	return true
}

// ReduceAtom computes S = π_U σ_F (R) for one atom: F selects the tuples
// matching the atom's constants and repeated variables, and the projection
// keeps one column per distinct variable, keyed by variable id (attribute
// Attr(v)). The returned vars list is the atom's distinct variables in
// first-occurrence order, matching S's schema.
func ReduceAtom(a query.Atom, db *query.DB) (*relation.Relation, []query.Var) {
	r := db.MustRel(a.Rel)
	vars := a.Vars()
	firstPos := make(map[query.Var]int)
	for i, t := range a.Args {
		if t.IsVar {
			if _, ok := firstPos[t.Var]; !ok {
				firstPos[t.Var] = i
			}
		}
	}
	schema := make(relation.Schema, len(vars))
	for i, v := range vars {
		schema[i] = relation.Attr(v)
	}
	out := relation.New(schema)
	seen := relation.NewTupleSet(len(vars))
	buf := make([]relation.Value, len(vars))
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		ok := true
		for j, t := range a.Args {
			if t.IsVar {
				if row[firstPos[t.Var]] != row[j] {
					ok = false
					break
				}
			} else if row[j] != t.Const {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for j, v := range vars {
			buf[j] = row[firstPos[v]]
		}
		if seen.Add(buf) {
			out.Append(buf...)
		}
	}
	return out, vars
}
