// Package eval implements the paper's baseline evaluators: generic
// backtracking conjunctive-query evaluation (data complexity n^{O(q)} —
// exactly the exponent Theorem 1 argues is inherent), brute-force
// enumeration oracles, recursive first-order evaluation over the active
// domain, and Chandra–Merlin homomorphism/containment checks.
package eval

import (
	"sync/atomic"

	"pyquery/internal/parallel"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/stats"
)

// Options controls the conjunctive evaluator.
type Options struct {
	// NoReorder disables join ordering entirely and evaluates the atoms in
	// the order written (ablation A3).
	NoReorder bool
	// LegacyGreedy restores the pre-planner ordering heuristic — fewest
	// unbound variables, ties by raw relation size — instead of the
	// cost-based order from internal/plan (ablation A5).
	LegacyGreedy bool
	// Parallelism is the worker count for the first-step fan-out: the rows
	// matched by the first plan step are split into contiguous chunks and
	// each worker backtracks through the remaining steps independently.
	// 0 means GOMAXPROCS; 1 is the serial evaluator.
	Parallelism int
}

// Conjunctive evaluates a conjunctive query (with optional ≠ and comparison
// atoms) by backtracking search, returning the answer relation over the
// positional schema 0…len(head)−1. This is the generic evaluator whose
// running time is n^{O(q)}; it exists both as a baseline and as a general
// fallback for cyclic queries.
func Conjunctive(q *query.CQ, db *query.DB) (*relation.Relation, error) {
	return ConjunctiveOpts(q, db, Options{})
}

// ConjunctiveOpts is Conjunctive with explicit options.
func ConjunctiveOpts(q *query.CQ, db *query.DB, opts Options) (*relation.Relation, error) {
	e, err := newBacktracker(q, db, opts, nil)
	if err != nil {
		return nil, err
	}
	out := query.NewTable(len(q.Head))
	if e.trivialFalse {
		return out, nil
	}
	workers := e.fanWidth(parallel.Workers(opts.Parallelism))
	if workers <= 1 {
		c := e.newCursor()
		c.run(e.collector(c, out, relation.NewTupleSet(len(q.Head))))
		return out, nil
	}
	// Fan out over the first binding step's rows. Each worker owns a cursor,
	// an output buffer, and a seen-set; buffers are merged in worker order
	// with a global dedup, so because chunks are contiguous and in order the
	// emission order matches the serial evaluator's exactly.
	fs := e.fanStep
	st := &e.plan[fs]
	outs := make([]*relation.Relation, workers)
	parallel.Chunks(workers, st.rel.Len(), func(w, lo, hi int) {
		c := e.newCursor()
		local := query.NewTable(len(e.q.Head))
		emit := e.collector(c, local, relation.NewTupleSet(len(e.q.Head)))
		for i := lo; i < hi; i++ {
			if !c.bindRowID(st, i) {
				continue
			}
			c.rec(fs+1, emit)
		}
		outs[w] = local
	})
	seen := relation.NewTupleSet(len(q.Head))
	for _, local := range outs {
		if local == nil {
			continue
		}
		for i := 0; i < local.Len(); i++ {
			if seen.AddRelRow(local, i) {
				out.AppendRowOf(local, i)
			}
		}
	}
	return out, nil
}

// collector returns an emit callback extracting the head tuple from the
// cursor's assignment into out, deduplicated through seen.
func (e *backtracker) collector(c *cursor, out *relation.Relation, seen *relation.TupleSet) func() bool {
	// Head extraction plan: tuple starts as the constant template, and
	// headSlots names the assign slot feeding each variable position.
	tuple := make([]relation.Value, len(e.q.Head))
	headSlots := make([]int, len(e.q.Head))
	for i, t := range e.q.Head {
		if t.IsVar {
			headSlots[i] = e.slot[t.Var]
		} else {
			headSlots[i] = -1
			tuple[i] = t.Const
		}
	}
	return func() bool {
		for i, s := range headSlots {
			if s >= 0 {
				tuple[i] = c.assign[s]
			}
		}
		if seen.Add(tuple) {
			out.Append(tuple...)
		}
		return true // keep searching
	}
}

// ConjunctiveBool decides whether Q(d) is nonempty, stopping at the first
// witness. For the decision problem t ∈ Q(d), bind the head first with
// CQ.BindHead.
func ConjunctiveBool(q *query.CQ, db *query.DB) (bool, error) {
	return ConjunctiveBoolOpts(q, db, Options{})
}

// ConjunctiveBoolOpts is ConjunctiveBool with explicit options.
func ConjunctiveBoolOpts(q *query.CQ, db *query.DB, opts Options) (bool, error) {
	e, err := newBacktracker(q, db, opts, nil)
	if err != nil {
		return false, err
	}
	if e.trivialFalse {
		return false, nil
	}
	workers := e.fanWidth(parallel.Workers(opts.Parallelism))
	if workers <= 1 {
		found := false
		c := e.newCursor()
		c.run(func() bool {
			found = true
			return false // stop
		})
		return found, nil
	}
	fs := e.fanStep
	st := &e.plan[fs]
	var found atomic.Bool
	parallel.Chunks(workers, st.rel.Len(), func(_, lo, hi int) {
		c := e.newCursor()
		c.stop = &found // another worker's witness halts this search tree
		emit := func() bool {
			found.Store(true)
			return false // stop this worker
		}
		for i := lo; i < hi && !found.Load(); i++ {
			if !c.bindRowID(st, i) {
				continue
			}
			if !c.rec(fs+1, emit) {
				return
			}
		}
	})
	return found.Load(), nil
}

// backtracker holds the compiled plan for one (query, database) pair. The
// plan (steps, frozen indexes, reduced relations) is immutable after
// construction and safely shared by concurrent cursors; all mutable search
// state lives in a cursor.
type backtracker struct {
	q    *query.CQ
	db   *query.DB
	opts Options

	vars []query.Var       // dense variable universe (body vars)
	slot map[query.Var]int // var → index into assign

	plan []planStep
	// fanStep is the first step that binds variables (earlier steps are
	// ground-atom tautologies); the parallel evaluator fans out over its
	// rows. −1 when no step binds anything — or when the first binding step
	// probes pre-bound (parameter) slots, whose keys a fan-out would skip.
	fanStep      int
	trivialFalse bool

	// preBound are the externally bound variables (parameter slots and the
	// prepared Decide path's head bindings), in the order Compiled.bind
	// receives their values; immediateIneqs/immediateCmps are the compiled
	// constraints over pre-bound variables only, checked once per execution
	// right after binding.
	preBound       []query.Var
	immediateIneqs []ineqCheck
	immediateCmps  []cmpCheck
}

// minFanWork gates the fan-out: below this many total plan rows (summed
// over the reduced step relations — a cheap proxy for search work) the
// goroutine, cursor, and merge overhead outweighs the win and the serial
// evaluator runs instead. A variable so tests can force the parallel path
// on small instances.
var minFanWork = 1024

// fanWidth caps the requested worker count by what the plan supports: a
// fan-out needs a binding first step with at least two rows to split, and
// enough total work to amortize per-worker setup.
func (e *backtracker) fanWidth(workers int) int {
	if workers <= 1 || e.fanStep < 0 || e.plan[e.fanStep].rel.Len() < 2 {
		return 1
	}
	work := 0
	for i := range e.plan {
		work += e.plan[i].rel.Len()
	}
	if work < minFanWork {
		return 1
	}
	return workers
}

type planStep struct {
	rel       *relation.Relation // S_j over distinct vars of the atom
	vars      []query.Var        // S_j's columns, as variables
	keyVars   []query.Var        // vars bound before this step
	newVars   []query.Var        // vars this step binds
	keyPos    []int              // positions of keyVars in S_j's schema
	newPos    []int              // positions of newVars
	keySlots  []int              // assign slots of keyVars (hoisted e.slot lookups)
	newSlots  []int              // assign slots of newVars
	index     *relation.Index
	ineqs     []ineqCheck // ≠ checks that become ready after this step
	cmps      []cmpCheck  // comparison checks that become ready after this step
	tautology bool        // ground atom already verified; skip at run time
}

// ineqCheck is a compiled ≠ constraint: assign[xSlot] must differ from
// assign[ySlot] (variable form) or from c (ySlot < 0).
type ineqCheck struct {
	xSlot int
	ySlot int
	c     relation.Value
}

// cmpCheck is a compiled </≤ constraint; a negative slot selects the
// constant operand instead.
type cmpCheck struct {
	lSlot, rSlot   int
	lConst, rConst relation.Value
	strict         bool
}

// newBacktracker compiles the plan for one (query, database) pair. preBound
// lists variables whose values arrive from outside the search before it
// starts (the prepared layer's parameter slots and decision-head bindings);
// they count as bound for ordering, index keys, constraint placement, and
// safety, and nil reproduces the classic self-contained evaluator.
func newBacktracker(q *query.CQ, db *query.DB, opts Options, preBound []query.Var) (*backtracker, error) {
	pre := make(map[query.Var]bool, len(preBound))
	for _, v := range preBound {
		pre[v] = true
	}
	if err := q.ValidateBound(db, pre); err != nil {
		return nil, err
	}
	e := &backtracker{q: q, db: db, opts: opts, slot: make(map[query.Var]int), fanStep: -1, preBound: preBound}
	for _, v := range preBound {
		if _, ok := e.slot[v]; !ok {
			e.slot[v] = len(e.vars)
			e.vars = append(e.vars, v)
		}
	}
	for _, v := range q.BodyVars() {
		if _, ok := e.slot[v]; !ok {
			e.slot[v] = len(e.vars)
			e.vars = append(e.vars, v)
		}
	}

	// Reduce each atom to S_j = π_{U_j} σ_{F_j}(R_j) over its distinct vars.
	reds := make([]reduced, len(q.Atoms))
	for i, a := range q.Atoms {
		s, vars := ReduceAtom(a, db)
		if s.Empty() {
			e.trivialFalse = true
			return e, nil
		}
		reds[i] = reduced{rel: s, vars: vars}
	}

	// Ground comparisons (markers from substitution, or user-written).
	for _, c := range q.Cmps {
		if !c.Left.IsVar && !c.Right.IsVar {
			if !c.Holds(c.Left.Const, c.Right.Const) {
				e.trivialFalse = true
				return e, nil
			}
		}
	}

	// Order the atoms. The default is the cost-based order of internal/plan
	// (estimated intermediate cardinalities from exact reduced sizes plus
	// cached base-table distinct counts); because the working database's
	// statistics are consulted on every construction, Datalog's per-round
	// firings re-plan against the current IDB sizes for free. LegacyGreedy
	// and NoReorder are the ablation paths.
	var order []int
	switch {
	case opts.NoReorder:
		order = make([]int, len(q.Atoms))
		for i := range order {
			order[i] = i
		}
	case opts.LegacyGreedy:
		order = legacyGreedyOrder(reds)
	default:
		order = plan.BuildBound(planInputs(q, db, reds), q.HeadVars(), preBound).Order()
	}

	// Build plan steps.
	bound := make(map[query.Var]bool)
	for _, v := range preBound {
		bound[v] = true
	}
	for _, ai := range order {
		rd := reds[ai]
		step := planStep{rel: rd.rel, vars: rd.vars}
		for _, v := range rd.vars {
			p := rd.rel.Pos(relation.Attr(v))
			if bound[v] {
				step.keyVars = append(step.keyVars, v)
				step.keyPos = append(step.keyPos, p)
				step.keySlots = append(step.keySlots, e.slot[v])
			} else {
				step.newVars = append(step.newVars, v)
				step.newPos = append(step.newPos, p)
				step.newSlots = append(step.newSlots, e.slot[v])
				bound[v] = true
			}
		}
		if len(rd.vars) == 0 {
			step.tautology = true // ground atom, already checked nonempty
		} else {
			keySchema := make(relation.Schema, len(step.keyVars))
			for i, v := range step.keyVars {
				keySchema[i] = relation.Attr(v)
			}
			step.index = relation.NewIndex(rd.rel, keySchema)
		}
		e.plan = append(e.plan, step)
	}

	// Attach each ≠/comparison, compiled down to assign slots, to the
	// earliest step after which all its variables are bound. Pre-bound
	// variables are ready before step 0; a constraint over pre-bound
	// variables only is checked once per execution, right after binding.
	readyAt := func(vs []query.Var) int {
		last := -1
		pos := make(map[query.Var]int)
		for si, st := range e.plan {
			for _, v := range st.newVars {
				pos[v] = si
			}
		}
		for _, v := range vs {
			if pre[v] {
				continue
			}
			if p := pos[v]; p > last {
				last = p
			}
		}
		return last
	}
	for _, iq := range q.Ineqs {
		chk := ineqCheck{xSlot: e.slot[iq.X], ySlot: -1, c: iq.C}
		vs := []query.Var{iq.X}
		if iq.YIsVar {
			vs = append(vs, iq.Y)
			chk.ySlot = e.slot[iq.Y]
		}
		if at := readyAt(vs); at >= 0 {
			e.plan[at].ineqs = append(e.plan[at].ineqs, chk)
		} else {
			e.immediateIneqs = append(e.immediateIneqs, chk)
		}
	}
	for _, c := range q.Cmps {
		chk := cmpCheck{lSlot: -1, rSlot: -1, lConst: c.Left.Const, rConst: c.Right.Const, strict: c.Strict}
		var vs []query.Var
		if c.Left.IsVar {
			vs = append(vs, c.Left.Var)
			chk.lSlot = e.slot[c.Left.Var]
		}
		if c.Right.IsVar {
			vs = append(vs, c.Right.Var)
			chk.rSlot = e.slot[c.Right.Var]
		}
		if len(vs) == 0 {
			continue // ground, already checked
		}
		if at := readyAt(vs); at >= 0 {
			e.plan[at].cmps = append(e.plan[at].cmps, chk)
		} else {
			e.immediateCmps = append(e.immediateCmps, chk)
		}
	}
	for si := range e.plan {
		if !e.plan[si].tautology {
			// A first binding step that probes pre-bound keys cannot fan out
			// (the row split would bypass its key match); execute serially.
			if len(e.plan[si].keyVars) == 0 {
				e.fanStep = si
			}
			break
		}
	}
	return e, nil
}

// reduced pairs one atom's reduced relation S_j with its distinct
// variables (matching S_j's schema order).
type reduced struct {
	rel  *relation.Relation
	vars []query.Var
}

// planInputs assembles the cost-model inputs for the query's reduced
// atoms: exact reduced cardinalities plus per-variable distinct counts
// taken from the base table's cached statistics (stats.For — computed once
// per relation snapshot, so repeated evaluations pay nothing) and capped by
// the reduced size. Labels are the bare relation names; PlanFor upgrades
// them to full atom notation for reports, keeping the per-evaluation path
// free of formatting allocations.
func planInputs(q *query.CQ, db *query.DB, reds []reduced) []plan.Input {
	inputs := make([]plan.Input, len(reds))
	for i, a := range q.Atoms {
		rd := reds[i]
		base := stats.For(db, a.Rel)
		dist := make([]int, len(rd.vars))
		freq := make([]int, len(rd.vars))
		for k, v := range rd.vars {
			for j, t := range a.Args {
				if t.IsVar && t.Var == v {
					dist[k] = base.Cols[j].Distinct
					freq[k] = base.Cols[j].MaxFreq
					break
				}
			}
		}
		inputs[i] = plan.Input{Label: a.Rel, Rows: rd.rel.Len(), Vars: rd.vars, Distinct: dist, MaxFreq: freq}
	}
	return inputs
}

// legacyGreedyOrder is the pre-planner heuristic (ablation A5): pick the
// atom with the fewest unbound variables, breaking ties by relation size.
func legacyGreedyOrder(reds []reduced) []int {
	order := make([]int, 0, len(reds))
	used := make([]bool, len(reds))
	bound := make(map[query.Var]bool)
	for len(order) < len(reds) {
		best, bestUnbound, bestSize := -1, 0, 0
		for i := range reds {
			if used[i] {
				continue
			}
			unbound := 0
			for _, v := range reds[i].vars {
				if !bound[v] {
					unbound++
				}
			}
			size := reds[i].rel.Len()
			if best == -1 || unbound < bestUnbound ||
				(unbound == bestUnbound && size < bestSize) {
				best, bestUnbound, bestSize = i, unbound, size
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range reds[best].vars {
			bound[v] = true
		}
	}
	return order
}

// PlanFor builds, without evaluating, the cost-based logical plan the
// backtracking evaluator would execute for q on db — the structured form
// behind the facade's PlanReport. Atoms are reduced (a linear scan, not an
// evaluation) so the reported cardinalities match what the engine will
// actually order by; an atom that reduces to the empty relation simply
// contributes Rows=0 and drives the estimates to zero.
func PlanFor(q *query.CQ, db *query.DB) (*plan.Plan, error) {
	inputs, _, err := PlanInputs(q, db)
	if err != nil {
		return nil, err
	}
	for i, a := range q.Atoms {
		inputs[i].Label = a.String() // full atom notation, for the report
	}
	return plan.Build(inputs, q.HeadVars()), nil
}

// PlanInputs reduces q's atoms against db and assembles the shared
// cost-model inputs (exact reduced cardinalities plus cached distinct
// counts, bare relation names as labels). The reduced relations are
// returned alongside, in atom order, so callers that go on to evaluate —
// the decomposition engine materializes bags from them — pay for the
// reduction once.
func PlanInputs(q *query.CQ, db *query.DB) ([]plan.Input, []*relation.Relation, error) {
	if err := q.Validate(db); err != nil {
		return nil, nil, err
	}
	reds := make([]reduced, len(q.Atoms))
	rels := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		s, vars := ReduceAtom(a, db)
		reds[i] = reduced{rel: s, vars: vars}
		rels[i] = s
	}
	return planInputs(q, db, reds), rels, nil
}

// cursor is the mutable search state of one backtracking traversal. Every
// worker of a parallel evaluation owns its own cursor; the underlying plan
// is shared and read-only.
type cursor struct {
	e      *backtracker
	assign []relation.Value // assign[slot] is the current value per variable
	key    [][]relation.Value
	// stop, when set, is polled once per search node so a worker abandons
	// its subtree soon after another worker ends the search (Bool queries).
	stop *atomic.Bool
}

func (e *backtracker) newCursor() *cursor {
	c := &cursor{e: e, assign: make([]relation.Value, len(e.vars))}
	c.key = make([][]relation.Value, len(e.plan))
	for i, st := range e.plan {
		c.key[i] = make([]relation.Value, len(st.keyVars))
	}
	return c
}

// bindRowID binds row i of a zero-key step into the assignment by direct
// column reads, reporting whether the step's attached constraints hold.
func (c *cursor) bindRowID(st *planStep, i int) bool {
	for k, s := range st.newSlots {
		c.assign[s] = st.rel.At(st.newPos[k], i)
	}
	return c.checkStep(st)
}

// run backtracks through the whole plan, invoking emit at every full
// solution. emit returns false to stop the search.
func (c *cursor) run(emit func() bool) {
	if len(c.e.plan) == 0 {
		// No atoms: validation guarantees no variables anywhere.
		emit()
		return
	}
	c.rec(0, emit)
}

// rec backtracks from the given step onward; it returns false when emit
// asked the search to stop.
func (c *cursor) rec(step int, emit func() bool) bool {
	if step == len(c.e.plan) {
		return emit()
	}
	if c.stop != nil && c.stop.Load() {
		return false
	}
	st := &c.e.plan[step]
	if st.tautology {
		return c.rec(step+1, emit)
	}
	for i, s := range st.keySlots {
		c.key[step][i] = c.assign[s]
	}
	// Probe the frozen index and read matched rows straight off the
	// relation's columns — no row view is materialized per match.
	for _, ri := range st.index.Lookup(c.key[step]) {
		i := int(ri)
		for k, s := range st.newSlots {
			c.assign[s] = st.rel.At(st.newPos[k], i)
		}
		if !c.checkStep(st) {
			continue
		}
		if !c.rec(step+1, emit) {
			return false
		}
	}
	return true
}

func (c *cursor) checkStep(st *planStep) bool {
	for _, iq := range st.ineqs {
		x := c.assign[iq.xSlot]
		if iq.ySlot >= 0 {
			if x == c.assign[iq.ySlot] {
				return false
			}
		} else if x == iq.c {
			return false
		}
	}
	for _, cc := range st.cmps {
		l, r := cc.lConst, cc.rConst
		if cc.lSlot >= 0 {
			l = c.assign[cc.lSlot]
		}
		if cc.rSlot >= 0 {
			r = c.assign[cc.rSlot]
		}
		if cc.strict {
			if l >= r {
				return false
			}
		} else if l > r {
			return false
		}
	}
	return true
}

// ReduceAtom computes S = π_U σ_F (R) for one atom: F selects the tuples
// matching the atom's constants and repeated variables, and the projection
// keeps one column per distinct variable, keyed by variable id (attribute
// Attr(v)). The returned vars list is the atom's distinct variables in
// first-occurrence order, matching S's schema.
func ReduceAtom(a query.Atom, db *query.DB) (*relation.Relation, []query.Var) {
	r := db.MustRel(a.Rel)
	vars := a.Vars()
	firstPos := make(map[query.Var]int)
	for i, t := range a.Args {
		if t.IsVar {
			if _, ok := firstPos[t.Var]; !ok {
				firstPos[t.Var] = i
			}
		}
	}
	schema := make(relation.Schema, len(vars))
	for i, v := range vars {
		schema[i] = relation.Attr(v)
	}
	pcols := make([]int, len(vars))
	for j, v := range vars {
		pcols[j] = firstPos[v]
	}
	seen := relation.NewTupleSet(len(vars))
	sel := make([]int32, 0, r.Len())
	for i := 0; i < r.Len(); i++ {
		ok := true
		for j, t := range a.Args {
			if t.IsVar {
				if r.At(firstPos[t.Var], i) != r.At(j, i) {
					ok = false
					break
				}
			} else if r.At(j, i) != t.Const {
				ok = false
				break
			}
		}
		if ok && seen.AddRel(r, i, pcols) {
			sel = append(sel, int32(i))
		}
	}
	return r.GatherCols(schema, pcols, sel), vars
}
