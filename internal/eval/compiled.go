package eval

import (
	"context"
	"fmt"
	"sync/atomic"

	"pyquery/internal/parallel"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// Compiled is a reusable compiled backtracking plan for one (query,
// database) snapshot: atoms reduced, indexes frozen, the join order fixed
// by internal/plan, and constraint checks compiled to assignment slots —
// everything data- and query-dependent that Conjunctive recomputes per
// call. Executions only probe the frozen indexes, so a Compiled is the
// serving form behind the facade's prepared statements: build once, Exec
// many times, concurrently if desired (the compiled state is read-only
// after Compile; each execution owns its cursors and output).
//
// Parameters: every $name placeholder of the query becomes a pre-bound
// variable slot, as does each extra variable in bind (the prepared Decide
// path passes the head variables here). Exec receives their values in
// Binds() order — parameters in first-occurrence order, then the bind
// variables — and the search starts from the already-bound slots, turning
// e.g. a point-lookup template into pure index probes.
type Compiled struct {
	e *backtracker
	// params are the template's parameter names, in binding order.
	params []string
	// bindSlots[i] is the assignment slot of the i-th bound value.
	bindSlots []int
}

// Compile compiles q against db for repeated execution. bind lists extra
// query variables to pre-bind at execution time (beyond the query's own
// parameters); Options.Parallelism is frozen into the compiled plan.
func Compile(q *query.CQ, db *query.DB, opts Options, bind []query.Var) (*Compiled, error) {
	params := q.Params()
	qc := q
	var paramVars []query.Var
	if len(params) > 0 {
		qc, paramVars = rewriteParams(q, params)
	}
	preBound := make([]query.Var, 0, len(paramVars)+len(bind))
	preBound = append(preBound, paramVars...)
	preBound = append(preBound, bind...)
	e, err := newBacktracker(qc, db, opts, preBound)
	if err != nil {
		return nil, err
	}
	c := &Compiled{e: e, params: params}
	c.bindSlots = make([]int, len(preBound))
	for i, v := range preBound {
		c.bindSlots[i] = e.slot[v]
	}
	return c, nil
}

// Params returns the template's parameter names in binding order.
func (c *Compiled) Params() []string { return c.params }

// Binds returns the total number of values Exec expects: one per parameter,
// then one per extra bind variable passed to Compile.
func (c *Compiled) Binds() int { return len(c.bindSlots) }

// rewriteParams replaces each $name placeholder with a fresh variable
// (above every existing variable id), returning the rewritten query and the
// fresh variables in params order.
func rewriteParams(q *query.CQ, params []string) (*query.CQ, []query.Var) {
	next := query.Var(0)
	for _, v := range q.Vars() {
		if v >= next {
			next = v + 1
		}
	}
	paramVar := make(map[string]query.Var, len(params))
	paramVars := make([]query.Var, len(params))
	for i, name := range params {
		paramVar[name] = next
		paramVars[i] = next
		next++
	}
	mapTerm := func(t query.Term) query.Term {
		if t.ParamName != "" {
			return query.V(paramVar[t.ParamName])
		}
		return t
	}
	out := q.Clone()
	for i, t := range out.Head {
		out.Head[i] = mapTerm(t)
	}
	for i := range out.Atoms {
		for j, t := range out.Atoms[i].Args {
			out.Atoms[i].Args[j] = mapTerm(t)
		}
	}
	for i, cm := range out.Cmps {
		out.Cmps[i] = query.Cmp{Left: mapTerm(cm.Left), Right: mapTerm(cm.Right), Strict: cm.Strict}
	}
	return out, paramVars
}

// stopFlag adapts a context to the cursors' per-node atomic polling: the
// returned flag flips when ctx is canceled, and release detaches the
// watcher. A nil or non-cancelable context costs nothing.
func stopFlag(ctx context.Context) (*atomic.Bool, func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	var f atomic.Bool
	detach := context.AfterFunc(ctx, func() { f.Store(true) })
	return &f, func() { detach() }
}

// bind installs the pre-bound values into the cursor and evaluates the
// constraints that involve pre-bound variables only; false means the
// bindings alone falsify the query.
func (c *Compiled) bind(cur *cursor, vals []relation.Value) bool {
	for i, s := range c.bindSlots {
		cur.assign[s] = vals[i]
	}
	e := c.e
	for _, iq := range e.immediateIneqs {
		x := cur.assign[iq.xSlot]
		if iq.ySlot >= 0 {
			if x == cur.assign[iq.ySlot] {
				return false
			}
		} else if x == iq.c {
			return false
		}
	}
	for _, cc := range e.immediateCmps {
		l, r := cc.lConst, cc.rConst
		if cc.lSlot >= 0 {
			l = cur.assign[cc.lSlot]
		}
		if cc.rSlot >= 0 {
			r = cur.assign[cc.rSlot]
		}
		if cc.strict {
			if l >= r {
				return false
			}
		} else if l > r {
			return false
		}
	}
	return true
}

func (c *Compiled) checkVals(vals []relation.Value) error {
	if len(vals) != len(c.bindSlots) {
		return fmt.Errorf("eval: got %d bound values, want %d", len(vals), len(c.bindSlots))
	}
	return nil
}

// Exec runs the compiled plan and returns the deduplicated answer relation
// over the positional head schema. vals supplies the pre-bound values in
// Binds() order; ctx cancels the search at node granularity.
func (c *Compiled) Exec(ctx context.Context, vals []relation.Value) (*relation.Relation, error) {
	e := c.e
	out := query.NewTable(len(e.q.Head))
	if err := parallel.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := c.checkVals(vals); err != nil {
		return nil, err
	}
	if e.trivialFalse {
		return out, nil
	}
	stop, release := stopFlag(ctx)
	defer release()
	workers := e.fanWidth(parallel.Workers(e.opts.Parallelism))
	if workers <= 1 {
		cur := e.newCursor()
		cur.stop = stop
		if c.bind(cur, vals) {
			cur.run(e.collector(cur, out, relation.NewTupleSet(len(e.q.Head))))
		}
		if err := parallel.CtxErr(ctx); err != nil {
			return nil, err
		}
		return out, nil
	}
	fs := e.fanStep
	st := &e.plan[fs]
	outs := make([]*relation.Relation, workers)
	parallel.Chunks(workers, st.rel.Len(), func(w, lo, hi int) {
		cur := e.newCursor()
		cur.stop = stop
		local := query.NewTable(len(e.q.Head))
		if !c.bind(cur, vals) {
			outs[w] = local
			return
		}
		emit := e.collector(cur, local, relation.NewTupleSet(len(e.q.Head)))
		for i := lo; i < hi; i++ {
			if stop != nil && stop.Load() {
				break
			}
			if !cur.bindRow(st, st.rel.Row(i)) {
				continue
			}
			cur.rec(fs+1, emit)
		}
		outs[w] = local
	})
	if err := parallel.CtxErr(ctx); err != nil {
		return nil, err
	}
	seen := relation.NewTupleSet(len(e.q.Head))
	for _, local := range outs {
		if local == nil {
			continue
		}
		for i := 0; i < local.Len(); i++ {
			row := local.Row(i)
			if seen.Add(row) {
				out.Append(row...)
			}
		}
	}
	return out, nil
}

// ExecBool decides emptiness with the compiled plan, stopping at the first
// witness.
func (c *Compiled) ExecBool(ctx context.Context, vals []relation.Value) (bool, error) {
	e := c.e
	if err := parallel.CtxErr(ctx); err != nil {
		return false, err
	}
	if err := c.checkVals(vals); err != nil {
		return false, err
	}
	if e.trivialFalse {
		return false, nil
	}
	// halt stops every worker on cancellation or on the first witness;
	// found records which of the two it was.
	var halt atomic.Bool
	var found atomic.Bool
	if ctx != nil && ctx.Done() != nil {
		detach := context.AfterFunc(ctx, func() { halt.Store(true) })
		defer detach()
	}
	workers := e.fanWidth(parallel.Workers(e.opts.Parallelism))
	if workers <= 1 {
		cur := e.newCursor()
		cur.stop = &halt
		if c.bind(cur, vals) {
			cur.run(func() bool {
				found.Store(true)
				halt.Store(true)
				return false
			})
		}
		if err := parallel.CtxErr(ctx); err != nil {
			return false, err
		}
		return found.Load(), nil
	}
	fs := e.fanStep
	st := &e.plan[fs]
	parallel.Chunks(workers, st.rel.Len(), func(_, lo, hi int) {
		cur := e.newCursor()
		cur.stop = &halt
		if !c.bind(cur, vals) {
			return
		}
		emit := func() bool {
			found.Store(true)
			halt.Store(true)
			return false
		}
		for i := lo; i < hi && !halt.Load(); i++ {
			if !cur.bindRow(st, st.rel.Row(i)) {
				continue
			}
			if !cur.rec(fs+1, emit) {
				return
			}
		}
	})
	if err := parallel.CtxErr(ctx); err != nil {
		return false, err
	}
	return found.Load(), nil
}

// ForEach streams the deduplicated answer tuples to fn in the serial
// evaluator's emission order, without materializing the answer relation.
// fn returning false stops the enumeration early (no error). The tuple
// slice is reused between calls — copy it to retain it. Streaming always
// runs the serial search regardless of the compiled Parallelism.
func (c *Compiled) ForEach(ctx context.Context, vals []relation.Value, fn func(tuple []relation.Value) bool) error {
	e := c.e
	if err := parallel.CtxErr(ctx); err != nil {
		return err
	}
	if err := c.checkVals(vals); err != nil {
		return err
	}
	if e.trivialFalse {
		return nil
	}
	stop, release := stopFlag(ctx)
	defer release()
	cur := e.newCursor()
	cur.stop = stop
	if !c.bind(cur, vals) {
		return nil
	}
	seen := relation.NewTupleSet(len(e.q.Head))
	tuple := make([]relation.Value, len(e.q.Head))
	headSlots := make([]int, len(e.q.Head))
	for i, t := range e.q.Head {
		if t.IsVar {
			headSlots[i] = e.slot[t.Var]
		} else {
			headSlots[i] = -1
			tuple[i] = t.Const
		}
	}
	cur.run(func() bool {
		for i, s := range headSlots {
			if s >= 0 {
				tuple[i] = cur.assign[s]
			}
		}
		if !seen.Add(tuple) {
			return true
		}
		return fn(tuple)
	})
	return parallel.CtxErr(ctx)
}
