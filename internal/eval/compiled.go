package eval

import (
	"context"
	"fmt"
	"sync/atomic"

	"pyquery/internal/governor"
	"pyquery/internal/parallel"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// Compiled is a reusable compiled backtracking plan for one (query,
// database) snapshot: atoms reduced, indexes frozen, the join order fixed
// by internal/plan, and constraint checks compiled to assignment slots —
// everything data- and query-dependent that Conjunctive recomputes per
// call. Executions only probe the frozen indexes, so a Compiled is the
// serving form behind the facade's prepared statements: build once, Exec
// many times, concurrently if desired (the compiled state is read-only
// after Compile; each execution owns its cursors and output).
//
// Parameters: every $name placeholder of the query becomes a pre-bound
// variable slot, as does each extra variable in bind (the prepared Decide
// path passes the head variables here). Exec receives their values in
// Binds() order — parameters in first-occurrence order, then the bind
// variables — and the search starts from the already-bound slots, turning
// e.g. a point-lookup template into pure index probes.
type Compiled struct {
	e *backtracker
	// params are the template's parameter names, in binding order.
	params []string
	// bindSlots[i] is the assignment slot of the i-th bound value.
	bindSlots []int
}

// Compile compiles q against db for repeated execution. bind lists extra
// query variables to pre-bind at execution time (beyond the query's own
// parameters); Options.Parallelism is frozen into the compiled plan.
func Compile(q *query.CQ, db *query.DB, opts Options, bind []query.Var) (*Compiled, error) {
	params := q.Params()
	qc := q
	var paramVars []query.Var
	if len(params) > 0 {
		qc, paramVars = rewriteParams(q, params)
	}
	preBound := make([]query.Var, 0, len(paramVars)+len(bind))
	preBound = append(preBound, paramVars...)
	preBound = append(preBound, bind...)
	e, err := newBacktracker(qc, db, opts, preBound)
	if err != nil {
		return nil, err
	}
	c := &Compiled{e: e, params: params}
	c.bindSlots = make([]int, len(preBound))
	for i, v := range preBound {
		c.bindSlots[i] = e.slot[v]
	}
	return c, nil
}

// Params returns the template's parameter names in binding order.
func (c *Compiled) Params() []string { return c.params }

// Binds returns the total number of values Exec expects: one per parameter,
// then one per extra bind variable passed to Compile.
func (c *Compiled) Binds() int { return len(c.bindSlots) }

// rewriteParams replaces each $name placeholder with a fresh variable
// (above every existing variable id), returning the rewritten query and the
// fresh variables in params order.
func rewriteParams(q *query.CQ, params []string) (*query.CQ, []query.Var) {
	next := query.Var(0)
	for _, v := range q.Vars() {
		if v >= next {
			next = v + 1
		}
	}
	paramVar := make(map[string]query.Var, len(params))
	paramVars := make([]query.Var, len(params))
	for i, name := range params {
		paramVar[name] = next
		paramVars[i] = next
		next++
	}
	mapTerm := func(t query.Term) query.Term {
		if t.ParamName != "" {
			return query.V(paramVar[t.ParamName])
		}
		return t
	}
	out := q.Clone()
	for i, t := range out.Head {
		out.Head[i] = mapTerm(t)
	}
	for i := range out.Atoms {
		for j, t := range out.Atoms[i].Args {
			out.Atoms[i].Args[j] = mapTerm(t)
		}
	}
	for i, cm := range out.Cmps {
		out.Cmps[i] = query.Cmp{Left: mapTerm(cm.Left), Right: mapTerm(cm.Right), Strict: cm.Strict}
	}
	return out, paramVars
}

// stopFlag adapts a context to the cursors' per-node atomic polling: the
// returned flag flips when ctx is canceled, and release detaches the
// watcher. A nil or non-cancelable context costs nothing.
func stopFlag(ctx context.Context) (*atomic.Bool, func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	var f atomic.Bool
	detach := context.AfterFunc(ctx, func() { f.Store(true) })
	return &f, func() { detach() }
}

// stopMeter is stopFlag under a governor meter: the meter's own stop flag
// (flipped by every trip) doubles as the cursor poll flag, and a cancelable
// context flips the same flag, so the per-node hot path stays a single
// atomic load no matter how many stop sources exist.
func stopMeter(ctx context.Context, m *governor.Meter) (*atomic.Bool, func()) {
	if m == nil {
		return stopFlag(ctx)
	}
	f := m.StopFlag()
	if ctx != nil && ctx.Done() != nil {
		detach := context.AfterFunc(ctx, func() { f.Store(true) })
		return f, func() { detach() }
	}
	return f, func() {}
}

// enter and finish are the execution-boundary checkpoints: typed through
// the meter when one is threaded, the plain ctx poll otherwise.
func enter(ctx context.Context, m *governor.Meter) error {
	if m != nil {
		return m.Check("start")
	}
	return parallel.CtxErr(ctx)
}

func finish(ctx context.Context, m *governor.Meter) error {
	if m != nil {
		return m.Check("finish")
	}
	return parallel.CtxErr(ctx)
}

// emitBatch is how many emitted rows a worker accumulates locally before
// charging the meter: the emission hot path pays a local counter increment
// and branch, with one pair of atomic adds per batch.
const emitBatch = 64

// rowMeter batches per-worker row charges. Each worker owns one; flush
// charges the remainder when the worker's search ends.
type rowMeter struct {
	m        *governor.Meter
	rowBytes int64
	pend     int64
}

// add records one emitted row; false means the meter tripped and the
// search should stop.
func (rm *rowMeter) add() bool {
	rm.pend++
	if rm.pend < emitBatch {
		return true
	}
	err := rm.m.Charge(rm.pend, rm.pend*rm.rowBytes, "emit")
	rm.pend = 0
	return err == nil
}

func (rm *rowMeter) flush() {
	if rm.pend > 0 {
		rm.m.Charge(rm.pend, rm.pend*rm.rowBytes, "emit")
		rm.pend = 0
	}
}

// meteredEmit wraps a collector emission with the row meter; the returned
// flush must run after the worker's search drains.
func meteredEmit(emit func() bool, m *governor.Meter, width int) (func() bool, func()) {
	rm := &rowMeter{m: m, rowBytes: governor.RelBytes(1, width)}
	return func() bool {
		if !emit() {
			return false
		}
		return rm.add()
	}, rm.flush
}

// bind installs the pre-bound values into the cursor and evaluates the
// constraints that involve pre-bound variables only; false means the
// bindings alone falsify the query.
func (c *Compiled) bind(cur *cursor, vals []relation.Value) bool {
	for i, s := range c.bindSlots {
		cur.assign[s] = vals[i]
	}
	e := c.e
	for _, iq := range e.immediateIneqs {
		x := cur.assign[iq.xSlot]
		if iq.ySlot >= 0 {
			if x == cur.assign[iq.ySlot] {
				return false
			}
		} else if x == iq.c {
			return false
		}
	}
	for _, cc := range e.immediateCmps {
		l, r := cc.lConst, cc.rConst
		if cc.lSlot >= 0 {
			l = cur.assign[cc.lSlot]
		}
		if cc.rSlot >= 0 {
			r = cur.assign[cc.rSlot]
		}
		if cc.strict {
			if l >= r {
				return false
			}
		} else if l > r {
			return false
		}
	}
	return true
}

func (c *Compiled) checkVals(vals []relation.Value) error {
	if len(vals) != len(c.bindSlots) {
		return fmt.Errorf("eval: got %d bound values, want %d", len(vals), len(c.bindSlots))
	}
	return nil
}

// Exec runs the compiled plan and returns the deduplicated answer relation
// over the positional head schema. vals supplies the pre-bound values in
// Binds() order; ctx cancels the search at node granularity. m, when
// non-nil, is the execution's resource meter: emitted rows are charged in
// per-worker batches, and a trip (row/byte budget, timeout, injected
// fault) flips the shared stop flag the cursors already poll.
func (c *Compiled) Exec(ctx context.Context, vals []relation.Value, m *governor.Meter) (*relation.Relation, error) {
	e := c.e
	out := query.NewTable(len(e.q.Head))
	if err := enter(ctx, m); err != nil {
		return nil, err
	}
	if err := c.checkVals(vals); err != nil {
		return nil, err
	}
	if e.trivialFalse {
		return out, nil
	}
	stop, release := stopMeter(ctx, m)
	defer release()
	workers := e.fanWidth(parallel.Workers(e.opts.Parallelism))
	if workers <= 1 {
		cur := e.newCursor()
		cur.stop = stop
		if c.bind(cur, vals) {
			emit := e.collector(cur, out, relation.NewTupleSet(len(e.q.Head)))
			var flush func()
			if m != nil {
				emit, flush = meteredEmit(emit, m, len(e.q.Head))
			}
			cur.run(emit)
			if flush != nil {
				flush() // charge the partial batch before the finish check
			}
		}
		if err := finish(ctx, m); err != nil {
			return nil, err
		}
		return out, nil
	}
	fs := e.fanStep
	st := &e.plan[fs]
	outs := make([]*relation.Relation, workers)
	parallel.Chunks(workers, st.rel.Len(), func(w, lo, hi int) {
		cur := e.newCursor()
		cur.stop = stop
		local := query.NewTable(len(e.q.Head))
		if !c.bind(cur, vals) {
			outs[w] = local
			return
		}
		emit := e.collector(cur, local, relation.NewTupleSet(len(e.q.Head)))
		if m != nil {
			var flush func()
			emit, flush = meteredEmit(emit, m, len(e.q.Head))
			defer flush()
		}
		for i := lo; i < hi; i++ {
			if stop != nil && stop.Load() {
				break
			}
			if !cur.bindRowID(st, i) {
				continue
			}
			cur.rec(fs+1, emit)
		}
		outs[w] = local
	})
	if err := finish(ctx, m); err != nil {
		return nil, err
	}
	seen := relation.NewTupleSet(len(e.q.Head))
	for _, local := range outs {
		if local == nil {
			continue
		}
		for i := 0; i < local.Len(); i++ {
			if seen.AddRelRow(local, i) {
				out.AppendRowOf(local, i)
			}
		}
	}
	return out, nil
}

// ExecBool decides emptiness with the compiled plan, stopping at the first
// witness. A meter adds the typed checkpoint at entry and exit; the
// decision search materializes nothing, so no rows are charged.
func (c *Compiled) ExecBool(ctx context.Context, vals []relation.Value, m *governor.Meter) (bool, error) {
	e := c.e
	if err := enter(ctx, m); err != nil {
		return false, err
	}
	if err := c.checkVals(vals); err != nil {
		return false, err
	}
	if e.trivialFalse {
		return false, nil
	}
	// halt stops every worker on cancellation, a meter trip, or the first
	// witness; found records whether a witness was seen. With a meter the
	// meter's stop flag is halt, so a trip anywhere stops the search.
	var halt *atomic.Bool
	var found atomic.Bool
	if m != nil {
		halt = m.StopFlag()
	} else {
		halt = new(atomic.Bool)
	}
	if ctx != nil && ctx.Done() != nil {
		detach := context.AfterFunc(ctx, func() { halt.Store(true) })
		defer detach()
	}
	workers := e.fanWidth(parallel.Workers(e.opts.Parallelism))
	if workers <= 1 {
		cur := e.newCursor()
		cur.stop = halt
		if c.bind(cur, vals) {
			cur.run(func() bool {
				found.Store(true)
				halt.Store(true)
				return false
			})
		}
		if !found.Load() {
			if err := finish(ctx, m); err != nil {
				return false, err
			}
		}
		return found.Load(), nil
	}
	fs := e.fanStep
	st := &e.plan[fs]
	parallel.Chunks(workers, st.rel.Len(), func(_, lo, hi int) {
		cur := e.newCursor()
		cur.stop = halt
		if !c.bind(cur, vals) {
			return
		}
		emit := func() bool {
			found.Store(true)
			halt.Store(true)
			return false
		}
		for i := lo; i < hi && !halt.Load(); i++ {
			if !cur.bindRowID(st, i) {
				continue
			}
			if !cur.rec(fs+1, emit) {
				return
			}
		}
	})
	if !found.Load() {
		if err := finish(ctx, m); err != nil {
			return false, err
		}
	}
	return found.Load(), nil
}

// ForEach streams the deduplicated answer tuples to fn in the serial
// evaluator's emission order, without materializing the answer relation.
// fn returning false stops the enumeration early (no error). The tuple
// slice is reused between calls — copy it to retain it. Streaming always
// runs the serial search regardless of the compiled Parallelism.
func (c *Compiled) ForEach(ctx context.Context, vals []relation.Value, m *governor.Meter, fn func(tuple []relation.Value) bool) error {
	e := c.e
	if err := enter(ctx, m); err != nil {
		return err
	}
	if err := c.checkVals(vals); err != nil {
		return err
	}
	if e.trivialFalse {
		return nil
	}
	stop, release := stopMeter(ctx, m)
	defer release()
	cur := e.newCursor()
	cur.stop = stop
	if !c.bind(cur, vals) {
		return nil
	}
	seen := relation.NewTupleSet(len(e.q.Head))
	tuple := make([]relation.Value, len(e.q.Head))
	headSlots := make([]int, len(e.q.Head))
	for i, t := range e.q.Head {
		if t.IsVar {
			headSlots[i] = e.slot[t.Var]
		} else {
			headSlots[i] = -1
			tuple[i] = t.Const
		}
	}
	// stopped distinguishes the consumer ending the stream (fn → false,
	// not an error) from a trip/cancellation ending it (typed error).
	consumerStop := false
	cur.run(func() bool {
		for i, s := range headSlots {
			if s >= 0 {
				tuple[i] = cur.assign[s]
			}
		}
		if !seen.Add(tuple) {
			return true
		}
		if m != nil {
			// Streamed tuples live only for the callback, but they still
			// count toward the row budget: the dedup set grows with each.
			if m.Charge(1, governor.RelBytes(1, len(tuple)), "stream") != nil {
				return false
			}
		}
		if !fn(tuple) {
			consumerStop = true
			return false
		}
		return true
	})
	if consumerStop {
		return nil
	}
	return finish(ctx, m)
}
