package eval

import (
	"errors"
	"fmt"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// ErrUnboundVariable is returned when formula evaluation reaches an atom
// with an unbound variable — a formula that escaped validation (every
// public entry point validates first, so user queries get the specific
// validation message; this sentinel is the evaluator's own backstop).
var ErrUnboundVariable = errors.New("eval: unbound variable in atom")

// FirstOrder evaluates a first-order query under active-domain semantics:
// quantifiers range over the set of values occurring in the database. The
// evaluator is the direct recursive one — data complexity n^{O(v)} — and
// serves as the oracle for the W[P]-hardness reduction and as the paper's
// first-order baseline.
func FirstOrder(q *query.FOQuery, db *query.DB) (*relation.Relation, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	ev := newFOEvaluator(db)
	out := query.NewTable(len(q.Head))

	headVars := make([]query.Var, 0, len(q.Head))
	seenVar := make(map[query.Var]bool)
	for _, t := range q.Head {
		if t.IsVar && !seenVar[t.Var] {
			seenVar[t.Var] = true
			headVars = append(headVars, t.Var)
		}
	}

	seen := relation.NewTupleSet(len(q.Head))
	tuple := make([]relation.Value, len(q.Head))
	var rec func(i int)
	rec = func(i int) {
		if i == len(headVars) {
			if ev.eval(q.Body) {
				for j, t := range q.Head {
					if t.IsVar {
						tuple[j] = ev.env[t.Var]
					} else {
						tuple[j] = t.Const
					}
				}
				if seen.Add(tuple) {
					out.Append(tuple...)
				}
			}
			return
		}
		v := headVars[i]
		for _, c := range ev.domain {
			ev.bind(v, c)
			rec(i + 1)
			ev.unbind(v)
		}
	}
	rec(0)
	if ev.err != nil {
		return nil, ev.err
	}
	return out, nil
}

// FirstOrderBool evaluates a Boolean first-order query.
func FirstOrderBool(q *query.FOQuery, db *query.DB) (bool, error) {
	if len(q.Head) != 0 {
		res, err := FirstOrder(q, db)
		if err != nil {
			return false, err
		}
		return res.Bool(), nil
	}
	if err := q.Validate(db); err != nil {
		return false, err
	}
	ev := newFOEvaluator(db)
	ok := ev.eval(q.Body)
	if ev.err != nil {
		return false, ev.err
	}
	return ok, nil
}

// Positive evaluates a positive query (no ¬, no ∀) — it is the same
// recursive evaluator with a front-door check, kept separate because the
// paper classifies the two languages differently.
func Positive(q *query.FOQuery, db *query.DB) (*relation.Relation, error) {
	if !query.IsPositive(q.Body) {
		return nil, errNotPositive
	}
	return FirstOrder(q, db)
}

// PositiveBool evaluates a Boolean positive query.
func PositiveBool(q *query.FOQuery, db *query.DB) (bool, error) {
	if !query.IsPositive(q.Body) {
		return false, errNotPositive
	}
	return FirstOrderBool(q, db)
}

var errNotPositive = errorString("eval: query body is not positive (contains ¬ or ∀)")

type errorString string

func (e errorString) Error() string { return string(e) }

type foEvaluator struct {
	domain []relation.Value
	member map[string]*relation.TupleSet
	env    map[query.Var]relation.Value
	// shadow stacks restore outer bindings on quantifier exit.
	saved map[query.Var][]binding
	// scratch holds atom arguments during membership checks (max EDB
	// arity), so atom evaluation does not allocate.
	scratch []relation.Value
	// err records the first structural failure (unbound variable, unknown
	// node) instead of panicking; once set, eval short-circuits to false
	// and the caller returns err instead of the garbage result.
	err error
}

type binding struct {
	val relation.Value
	ok  bool
}

func newFOEvaluator(db *query.DB) *foEvaluator {
	member := makeMemberSets(db)
	scratch := 0
	for _, set := range member {
		if w := set.Width(); w > scratch {
			scratch = w
		}
	}
	return &foEvaluator{
		domain:  db.ActiveDomain(),
		member:  member,
		env:     make(map[query.Var]relation.Value),
		saved:   make(map[query.Var][]binding),
		scratch: make([]relation.Value, scratch),
	}
}

// makeMemberSets builds one membership TupleSet per database relation —
// the O(1) atom-check structure shared by the FO and brute evaluators.
func makeMemberSets(db *query.DB) map[string]*relation.TupleSet {
	member := make(map[string]*relation.TupleSet)
	for _, name := range db.Names() {
		r := db.MustRel(name)
		set := relation.NewTupleSetSized(r.Width(), r.Len())
		for i := 0; i < r.Len(); i++ {
			set.AddRelRow(r, i)
		}
		member[name] = set
	}
	return member
}

func (ev *foEvaluator) bind(v query.Var, c relation.Value) {
	old, ok := ev.env[v]
	ev.saved[v] = append(ev.saved[v], binding{old, ok})
	ev.env[v] = c
}

func (ev *foEvaluator) unbind(v query.Var) {
	st := ev.saved[v]
	b := st[len(st)-1]
	ev.saved[v] = st[:len(st)-1]
	if b.ok {
		ev.env[v] = b.val
	} else {
		delete(ev.env, v)
	}
}

func (ev *foEvaluator) eval(f query.Formula) bool {
	if ev.err != nil {
		return false
	}
	switch g := f.(type) {
	case query.FAtom:
		buf := ev.scratch[:len(g.Atom.Args)]
		for i, t := range g.Atom.Args {
			if t.IsVar {
				val, ok := ev.env[t.Var]
				if !ok {
					ev.err = fmt.Errorf("%w: variable x%d in atom %s (query not validated?)",
						ErrUnboundVariable, t.Var, g.Atom.Rel)
					return false
				}
				buf[i] = val
			} else {
				buf[i] = t.Const
			}
		}
		return ev.member[g.Atom.Rel].Contains(buf)
	case query.And:
		for _, s := range g.Subs {
			if !ev.eval(s) {
				return false
			}
		}
		return true
	case query.Or:
		for _, s := range g.Subs {
			if ev.eval(s) {
				return true
			}
		}
		return false
	case query.Not:
		return !ev.eval(g.Sub)
	case query.Exists:
		for _, c := range ev.domain {
			ev.bind(g.V, c)
			ok := ev.eval(g.Sub)
			ev.unbind(g.V)
			if ok {
				return true
			}
		}
		return false
	case query.Forall:
		for _, c := range ev.domain {
			ev.bind(g.V, c)
			ok := ev.eval(g.Sub)
			ev.unbind(g.V)
			if !ok {
				return false
			}
		}
		return true
	}
	ev.err = fmt.Errorf("eval: unknown formula node %T", f)
	return false
}
