package boolcirc

import "fmt"

// Formula is a Boolean formula tree (a fan-out-1 circuit) over variables
// 0…n−1 — the object of the weighted formula satisfiability
// problem that defines W[SAT] and that Theorem 1(2) reduces to positive
// queries. Negations are permitted anywhere; NNF pushes them onto leaves,
// which is the form the W[SAT]→positive-query reduction consumes.
type Formula interface {
	isFormula()
	String() string
}

// FVar is a literal leaf: variable V, possibly negated.
type FVar struct {
	V   int
	Neg bool
}

// FAnd is a conjunction.
type FAnd struct{ Subs []Formula }

// FOr is a disjunction.
type FOr struct{ Subs []Formula }

// FNot is a negation.
type FNot struct{ Sub Formula }

func (FVar) isFormula() {}
func (FAnd) isFormula() {}
func (FOr) isFormula()  {}
func (FNot) isFormula() {}

func (f FVar) String() string {
	if f.Neg {
		return fmt.Sprintf("~x%d", f.V)
	}
	return fmt.Sprintf("x%d", f.V)
}

func (f FAnd) String() string { return nary("&", f.Subs) }
func (f FOr) String() string  { return nary("|", f.Subs) }
func (f FNot) String() string { return "~" + f.Sub.String() }

func nary(op string, subs []Formula) string {
	s := "("
	for i, sub := range subs {
		if i > 0 {
			s += " " + op + " "
		}
		s += sub.String()
	}
	return s + ")"
}

// EvalFormula evaluates f under assign.
func EvalFormula(f Formula, assign []bool) bool {
	switch g := f.(type) {
	case FVar:
		return assign[g.V] != g.Neg
	case FAnd:
		for _, s := range g.Subs {
			if !EvalFormula(s, assign) {
				return false
			}
		}
		return true
	case FOr:
		for _, s := range g.Subs {
			if EvalFormula(s, assign) {
				return true
			}
		}
		return false
	case FNot:
		return !EvalFormula(g.Sub, assign)
	}
	panic(fmt.Sprintf("boolcirc: unknown formula node %T", f))
}

// NNF pushes negations down to the leaves (negation normal form).
func NNF(f Formula) Formula {
	return nnf(f, false)
}

func nnf(f Formula, neg bool) Formula {
	switch g := f.(type) {
	case FVar:
		return FVar{V: g.V, Neg: g.Neg != neg}
	case FNot:
		return nnf(g.Sub, !neg)
	case FAnd:
		subs := make([]Formula, len(g.Subs))
		for i, s := range g.Subs {
			subs[i] = nnf(s, neg)
		}
		if neg {
			return FOr{Subs: subs}
		}
		return FAnd{Subs: subs}
	case FOr:
		subs := make([]Formula, len(g.Subs))
		for i, s := range g.Subs {
			subs[i] = nnf(s, neg)
		}
		if neg {
			return FAnd{Subs: subs}
		}
		return FOr{Subs: subs}
	}
	panic(fmt.Sprintf("boolcirc: unknown formula node %T", f))
}

// IsNNF reports whether f contains no FNot nodes.
func IsNNF(f Formula) bool {
	switch g := f.(type) {
	case FVar:
		return true
	case FNot:
		return false
	case FAnd:
		for _, s := range g.Subs {
			if !IsNNF(s) {
				return false
			}
		}
		return true
	case FOr:
		for _, s := range g.Subs {
			if !IsNNF(s) {
				return false
			}
		}
		return true
	}
	return false
}

// FormulaVars returns the number of variables: 1 + the largest variable id
// occurring in f (0 for a variable-free formula, which cannot exist here
// since leaves are variables).
func FormulaVars(f Formula) int {
	max := -1
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case FVar:
			if g.V > max {
				max = g.V
			}
		case FNot:
			walk(g.Sub)
		case FAnd:
			for _, s := range g.Subs {
				walk(s)
			}
		case FOr:
			for _, s := range g.Subs {
				walk(s)
			}
		}
	}
	walk(f)
	return max + 1
}

// WeightedSatFormula reports whether f has a satisfying assignment over n
// variables with exactly k true, returning one if so (subset enumeration).
func WeightedSatFormula(f Formula, n, k int) ([]bool, bool) {
	if k < 0 || k > n {
		return nil, false
	}
	assign := make([]bool, n)
	var rec func(pos, start int) bool
	rec = func(pos, start int) bool {
		if pos == k {
			return EvalFormula(f, assign)
		}
		for v := start; v <= n-(k-pos); v++ {
			assign[v] = true
			if rec(pos+1, v+1) {
				return true
			}
			assign[v] = false
		}
		return false
	}
	if rec(0, 0) {
		return assign, true
	}
	return nil, false
}
