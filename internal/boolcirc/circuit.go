// Package boolcirc implements Boolean formulas and circuits with the
// operations the paper's reductions need: evaluation, monotonicity and
// depth checks (NOT gates on inputs are not counted, per the W-hierarchy
// convention), weighted satisfiability solvers, and the alternating-level
// normalization that the W[P]-hardness reduction to first-order queries
// assumes ("the circuit alternates between OR and AND gates and the output
// is an OR gate at level 2t").
package boolcirc

import "fmt"

// Kind is a gate kind.
type Kind int8

// Gate kinds.
const (
	Input Kind = iota
	And
	Or
	Not
)

func (k Kind) String() string {
	switch k {
	case Input:
		return "in"
	case And:
		return "and"
	case Or:
		return "or"
	case Not:
		return "not"
	}
	return "?"
}

// Gate is one node of a circuit. In refers to earlier gates only, so every
// circuit is a DAG by construction.
type Gate struct {
	Kind Kind
	In   []int
}

// Circuit is a Boolean circuit with unbounded fan-in AND/OR and optional
// NOT gates. Gates 0…NumInputs−1 are the inputs.
type Circuit struct {
	Gates     []Gate
	NumInputs int
	Output    int
}

// New returns a circuit with n input gates and no output set.
func New(n int) *Circuit {
	c := &Circuit{NumInputs: n, Output: -1}
	for i := 0; i < n; i++ {
		c.Gates = append(c.Gates, Gate{Kind: Input})
	}
	return c
}

// AddGate appends a gate of the given kind over the given earlier gates and
// returns its id. NOT gates take exactly one input; AND/OR at least one.
func (c *Circuit) AddGate(kind Kind, in ...int) int {
	if kind == Input {
		panic("boolcirc: cannot add inputs after construction")
	}
	if kind == Not && len(in) != 1 {
		panic("boolcirc: NOT takes exactly one input")
	}
	if kind != Not && len(in) == 0 {
		panic("boolcirc: AND/OR need at least one input")
	}
	id := len(c.Gates)
	for _, g := range in {
		if g < 0 || g >= id {
			panic(fmt.Sprintf("boolcirc: gate input %d out of range [0,%d)", g, id))
		}
	}
	c.Gates = append(c.Gates, Gate{Kind: kind, In: append([]int(nil), in...)})
	return id
}

// SetOutput designates the output gate.
func (c *Circuit) SetOutput(g int) {
	if g < 0 || g >= len(c.Gates) {
		panic("boolcirc: output gate out of range")
	}
	c.Output = g
}

// Eval evaluates the circuit on the given input assignment.
func (c *Circuit) Eval(input []bool) bool {
	if len(input) != c.NumInputs {
		panic(fmt.Sprintf("boolcirc: %d inputs given, circuit has %d", len(input), c.NumInputs))
	}
	val := make([]bool, len(c.Gates))
	copy(val, input)
	for i := c.NumInputs; i < len(c.Gates); i++ {
		g := c.Gates[i]
		switch g.Kind {
		case And:
			v := true
			for _, in := range g.In {
				v = v && val[in]
			}
			val[i] = v
		case Or:
			v := false
			for _, in := range g.In {
				v = v || val[in]
			}
			val[i] = v
		case Not:
			val[i] = !val[g.In[0]]
		}
	}
	return val[c.Output]
}

// IsMonotone reports whether the circuit has no NOT gates.
func (c *Circuit) IsMonotone() bool {
	for _, g := range c.Gates {
		if g.Kind == Not {
			return false
		}
	}
	return true
}

// Depth returns the number of gates on the longest input→output path, not
// counting NOT gates applied directly to inputs (the paper's convention).
func (c *Circuit) Depth() int {
	d := make([]int, len(c.Gates))
	for i := c.NumInputs; i < len(c.Gates); i++ {
		g := c.Gates[i]
		max := 0
		for _, in := range g.In {
			if d[in] > max {
				max = d[in]
			}
		}
		if g.Kind == Not && g.In[0] < c.NumInputs {
			d[i] = max // uncounted input-level NOT
		} else {
			d[i] = max + 1
		}
	}
	return d[c.Output]
}

// WeightedSatisfiable reports whether some input assignment with exactly k
// true inputs satisfies the circuit, returning one if so. It enumerates
// k-subsets of the inputs — an exact exponential oracle for validating the
// W[P] reductions.
func (c *Circuit) WeightedSatisfiable(k int) ([]bool, bool) {
	if k < 0 || k > c.NumInputs {
		return nil, false
	}
	assign := make([]bool, c.NumInputs)
	var rec func(pos, start int) bool
	rec = func(pos, start int) bool {
		if pos == k {
			return c.Eval(assign)
		}
		for v := start; v <= c.NumInputs-(k-pos); v++ {
			assign[v] = true
			if rec(pos+1, v+1) {
				return true
			}
			assign[v] = false
		}
		return false
	}
	if rec(0, 0) {
		return assign, true
	}
	return nil, false
}

func (c *Circuit) String() string {
	return fmt.Sprintf("circuit{inputs=%d gates=%d out=%d}", c.NumInputs, len(c.Gates), c.Output)
}
