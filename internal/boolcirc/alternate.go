package boolcirc

import "fmt"

// Leveled is a strictly alternating monotone circuit: level 0 holds the
// inputs, odd levels hold AND gates, even levels ≥ 2 hold OR gates, every
// gate reads only from the level directly below, and the output is the
// unique gate at the (even) top level. This is the exact normal form the
// paper assumes in the W[P]-hardness reduction of Theorem 1(3).
type Leveled struct {
	Circuit *Circuit
	Level   []int // Level[g] for every gate of Circuit
	Top     int   // the even top level 2t
}

// Alternate converts a monotone circuit into an equivalent Leveled circuit.
// Each original gate g with gate-depth d(g) is placed at level 2·d(g)
// (OR gates) or 2·d(g)−1 (AND gates); pass-through chains of single-input
// gates lift each wire to the level directly below its reader. Pass-through
// gates are shared, so the output has O(gates × depth) size.
func Alternate(c *Circuit) *Leveled {
	if !c.IsMonotone() {
		panic("boolcirc: Alternate requires a monotone circuit")
	}
	if c.Output < 0 {
		panic("boolcirc: circuit has no output")
	}

	// Gate-depth of each original gate (inputs at 0).
	depth := make([]int, len(c.Gates))
	for i := c.NumInputs; i < len(c.Gates); i++ {
		max := 0
		for _, in := range c.Gates[i].In {
			if depth[in] > max {
				max = depth[in]
			}
		}
		depth[i] = max + 1
	}

	// Natural level of each original gate.
	level := func(g int) int {
		switch c.Gates[g].Kind {
		case Input:
			return 0
		case And:
			return 2*depth[g] - 1
		default: // Or
			return 2 * depth[g]
		}
	}

	out := New(c.NumInputs)
	lvl := make([]int, c.NumInputs) // level per new gate
	newID := make([]int, len(c.Gates))
	for i := 0; i < c.NumInputs; i++ {
		newID[i] = i
	}

	kindAt := func(l int) Kind {
		if l%2 == 1 {
			return And
		}
		return Or
	}

	// lift[g][l] caches the pass-through of new gate g at level l.
	lift := make(map[[2]int]int)
	var liftTo func(g, l int) int
	liftTo = func(g, l int) int {
		if lvl[g] == l {
			return g
		}
		if lvl[g] > l {
			panic("boolcirc: cannot lower a gate")
		}
		key := [2]int{g, l}
		if id, ok := lift[key]; ok {
			return id
		}
		below := liftTo(g, l-1)
		id := out.AddGate(kindAt(l), below)
		lvl = append(lvl, l)
		lift[key] = id
		return id
	}

	// Rebuild original gates in order (inputs already placed).
	for g := c.NumInputs; g < len(c.Gates); g++ {
		l := level(g)
		in := make([]int, len(c.Gates[g].In))
		for i, src := range c.Gates[g].In {
			in[i] = liftTo(newID[src], l-1)
		}
		newID[g] = out.AddGate(kindAt(l), in...)
		lvl = append(lvl, l)
	}

	top := lvl[newID[c.Output]]
	outGate := newID[c.Output]
	if top == 0 {
		// The output is an input gate: wrap in AND then OR pass-throughs.
		outGate = liftTo(outGate, 2)
		top = 2
	} else if top%2 == 1 {
		// AND output: one OR pass-through above.
		outGate = liftTo(outGate, top+1)
		top++
	}
	out.SetOutput(outGate)
	return &Leveled{Circuit: out, Level: lvl, Top: top}
}

// Check verifies the Leveled invariants: parity/kind agreement, strict
// level-(l−1) wiring, even top with the output there. It is used by tests
// and by consumers that want a hard guarantee before reducing.
func (lc *Leveled) Check() error {
	c := lc.Circuit
	if len(lc.Level) != len(c.Gates) {
		return fmt.Errorf("boolcirc: level table has %d entries for %d gates", len(lc.Level), len(c.Gates))
	}
	if lc.Top%2 != 0 || lc.Top < 2 {
		return fmt.Errorf("boolcirc: top level %d is not an even level ≥ 2", lc.Top)
	}
	if lc.Level[c.Output] != lc.Top {
		return fmt.Errorf("boolcirc: output at level %d, top is %d", lc.Level[c.Output], lc.Top)
	}
	if c.Gates[c.Output].Kind != Or {
		return fmt.Errorf("boolcirc: output gate is %v, want or", c.Gates[c.Output].Kind)
	}
	for g, gate := range c.Gates {
		l := lc.Level[g]
		switch gate.Kind {
		case Input:
			if l != 0 {
				return fmt.Errorf("boolcirc: input %d at level %d", g, l)
			}
		case And:
			if l%2 != 1 {
				return fmt.Errorf("boolcirc: AND gate %d at even level %d", g, l)
			}
		case Or:
			if l%2 != 0 || l == 0 {
				return fmt.Errorf("boolcirc: OR gate %d at level %d", g, l)
			}
		case Not:
			return fmt.Errorf("boolcirc: NOT gate %d in monotone normal form", g)
		}
		for _, in := range gate.In {
			if lc.Level[in] != l-1 {
				return fmt.Errorf("boolcirc: gate %d at level %d reads gate %d at level %d",
					g, l, in, lc.Level[in])
			}
		}
	}
	return nil
}
