package boolcirc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// xorCircuit builds x0 XOR x1 with NOT gates.
func xorCircuit() *Circuit {
	c := New(2)
	n0 := c.AddGate(Not, 0)
	n1 := c.AddGate(Not, 1)
	a := c.AddGate(And, 0, n1)
	b := c.AddGate(And, n0, 1)
	c.SetOutput(c.AddGate(Or, a, b))
	return c
}

func TestEvalXor(t *testing.T) {
	c := xorCircuit()
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{false, false}, false},
		{[]bool{true, false}, true},
		{[]bool{false, true}, true},
		{[]bool{true, true}, false},
	}
	for _, tc := range cases {
		if got := c.Eval(tc.in); got != tc.want {
			t.Fatalf("xor(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestMonotoneAndDepth(t *testing.T) {
	c := xorCircuit()
	if c.IsMonotone() {
		t.Fatal("xor circuit has NOTs")
	}
	// Depth: NOTs on inputs are free; AND then OR → depth 2.
	if d := c.Depth(); d != 2 {
		t.Fatalf("Depth = %d, want 2", d)
	}
	m := New(3)
	a := m.AddGate(And, 0, 1)
	m.SetOutput(m.AddGate(Or, a, 2))
	if !m.IsMonotone() {
		t.Fatal("AND/OR circuit is monotone")
	}
	if m.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", m.Depth())
	}
	// NOT above a gate counts.
	n := New(2)
	g := n.AddGate(And, 0, 1)
	n.SetOutput(n.AddGate(Not, g))
	if n.Depth() != 2 {
		t.Fatalf("internal NOT should count: depth = %d", n.Depth())
	}
}

func TestGateValidation(t *testing.T) {
	c := New(1)
	mustPanic(t, func() { c.AddGate(Input) })
	mustPanic(t, func() { c.AddGate(Not, 0, 0) })
	mustPanic(t, func() { c.AddGate(And) })
	mustPanic(t, func() { c.AddGate(And, 5) })
	mustPanic(t, func() { c.SetOutput(9) })
	mustPanic(t, func() { c.Eval([]bool{true, false}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestWeightedSatisfiableCircuit(t *testing.T) {
	// AND(x0,x1,x2): only weight 3 works.
	c := New(3)
	c.SetOutput(c.AddGate(And, 0, 1, 2))
	for k := 0; k <= 3; k++ {
		_, ok := c.WeightedSatisfiable(k)
		if ok != (k == 3) {
			t.Fatalf("weight %d: got %v", k, ok)
		}
	}
	if _, ok := c.WeightedSatisfiable(4); ok {
		t.Fatal("weight beyond inputs")
	}
	a, ok := c.WeightedSatisfiable(3)
	if !ok || !c.Eval(a) {
		t.Fatal("witness invalid")
	}
}

func TestAlternateRequiresMonotone(t *testing.T) {
	mustPanic(t, func() { Alternate(xorCircuit()) })
	mustPanic(t, func() { Alternate(New(2)) }) // no output
}

func TestAlternateSimple(t *testing.T) {
	// OR(AND(x0,x1), x2)
	c := New(3)
	a := c.AddGate(And, 0, 1)
	c.SetOutput(c.AddGate(Or, a, 2))
	lc := Alternate(c)
	if err := lc.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// Equivalence on all inputs.
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		if c.Eval(in) != lc.Circuit.Eval(in) {
			t.Fatalf("alternate changed semantics on %v", in)
		}
	}
}

func TestAlternateAndOutput(t *testing.T) {
	// Output is an AND: must gain an OR pass-through on top.
	c := New(2)
	c.SetOutput(c.AddGate(And, 0, 1))
	lc := Alternate(c)
	if err := lc.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	for mask := 0; mask < 4; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0}
		if c.Eval(in) != lc.Circuit.Eval(in) {
			t.Fatalf("semantics changed on %v", in)
		}
	}
}

func TestAlternateInputOutput(t *testing.T) {
	// Output is a bare input: needs lifting to level 2.
	c := New(1)
	c.SetOutput(0)
	lc := Alternate(c)
	if err := lc.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if lc.Circuit.Eval([]bool{true}) != true || lc.Circuit.Eval([]bool{false}) != false {
		t.Fatal("identity semantics broken")
	}
}

// randMonotone builds a random monotone circuit.
func randMonotone(rnd *rand.Rand, inputs, extra int) *Circuit {
	c := New(inputs)
	for i := 0; i < extra; i++ {
		kind := And
		if rnd.Intn(2) == 0 {
			kind = Or
		}
		fanin := 1 + rnd.Intn(3)
		in := make([]int, fanin)
		for j := range in {
			in[j] = rnd.Intn(len(c.Gates))
		}
		c.AddGate(kind, in...)
	}
	c.SetOutput(len(c.Gates) - 1)
	return c
}

// Property: Alternate preserves semantics on every input and always yields
// a structure passing Check.
func TestQuickAlternateEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		inputs := 1 + rnd.Intn(4)
		c := randMonotone(rnd, inputs, 1+rnd.Intn(6))
		lc := Alternate(c)
		if err := lc.Check(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for mask := 0; mask < 1<<inputs; mask++ {
			in := make([]bool, inputs)
			for b := range in {
				in[b] = mask&(1<<b) != 0
			}
			if c.Eval(in) != lc.Circuit.Eval(in) {
				t.Logf("seed %d mask %d: semantics differ", seed, mask)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFormulaEvalAndNNF(t *testing.T) {
	// ~( (x0 | ~x1) & x2 )
	f := FNot{Sub: FAnd{Subs: []Formula{
		FOr{Subs: []Formula{FVar{V: 0}, FVar{V: 1, Neg: true}}},
		FVar{V: 2},
	}}}
	g := NNF(f)
	if !IsNNF(g) {
		t.Fatal("NNF left a negation")
	}
	if IsNNF(f) {
		t.Fatal("IsNNF missed the top-level negation")
	}
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		if EvalFormula(f, in) != EvalFormula(g, in) {
			t.Fatalf("NNF changed semantics on %v", in)
		}
	}
	if FormulaVars(f) != 3 {
		t.Fatalf("FormulaVars = %d", FormulaVars(f))
	}
}

func TestWeightedSatFormula(t *testing.T) {
	// (x0 | x1) & (x2 | x3) needs ≥... with weight exactly 1 it is unsat;
	// weight 2 sat (one from each pair).
	f := FAnd{Subs: []Formula{
		FOr{Subs: []Formula{FVar{V: 0}, FVar{V: 1}}},
		FOr{Subs: []Formula{FVar{V: 2}, FVar{V: 3}}},
	}}
	if _, ok := WeightedSatFormula(f, 4, 1); ok {
		t.Fatal("weight 1 should fail")
	}
	a, ok := WeightedSatFormula(f, 4, 2)
	if !ok || !EvalFormula(f, a) {
		t.Fatal("weight 2 should succeed")
	}
	if _, ok := WeightedSatFormula(f, 4, 5); ok {
		t.Fatal("weight beyond n")
	}
}

// Property: NNF is semantics-preserving on random formulas.
func TestQuickNNF(t *testing.T) {
	var build func(rnd *rand.Rand, depth, vars int) Formula
	build = func(rnd *rand.Rand, depth, vars int) Formula {
		if depth == 0 || rnd.Intn(3) == 0 {
			return FVar{V: rnd.Intn(vars), Neg: rnd.Intn(2) == 0}
		}
		switch rnd.Intn(3) {
		case 0:
			return FNot{Sub: build(rnd, depth-1, vars)}
		case 1:
			return FAnd{Subs: []Formula{build(rnd, depth-1, vars), build(rnd, depth-1, vars)}}
		default:
			return FOr{Subs: []Formula{build(rnd, depth-1, vars), build(rnd, depth-1, vars)}}
		}
	}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		vars := 1 + rnd.Intn(4)
		fm := build(rnd, 4, vars)
		g := NNF(fm)
		if !IsNNF(g) {
			return false
		}
		for mask := 0; mask < 1<<vars; mask++ {
			in := make([]bool, vars)
			for b := range in {
				in[b] = mask&(1<<b) != 0
			}
			if EvalFormula(fm, in) != EvalFormula(g, in) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(33))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
