// Package leakcheck is a shared test helper that fails a test when it
// leaves goroutines behind. The engines' contract is that every execution —
// completed, canceled, or tripped by the governor — drains its worker pool
// before returning; cancellation and fault-injection tests register Check
// to enforce it.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the goroutine count and registers a cleanup that waits
// for the count to settle back to (at most) the snapshot. Short-lived
// runtime goroutines (context.AfterFunc callbacks, finished pool workers)
// get a grace period; a count still above the baseline after the deadline
// fails the test with a full stack dump.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Errorf("leakcheck: %d goroutines before, %d after settle; stacks:\n%s",
					before, runtime.NumGoroutine(), buf)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}
