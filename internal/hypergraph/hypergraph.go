// Package hypergraph implements query hypergraphs and the two classical
// acyclicity algorithms the paper relies on: GYO ear reduction (for the
// acyclicity test) and maximal-weight spanning forests over the atom
// intersection graph (Bernstein–Goodman/Maier), which directly yield the
// join forest consumed by the Yannakakis and Theorem 2 engines.
package hypergraph

import (
	"fmt"
	"sort"
)

// Hypergraph has vertices 0…NumVertices−1 and a list of hyperedges, each a
// set of vertices. In query terms: vertices are variables, edges are the
// variable sets of the relational atoms. Edges may be empty (ground atoms)
// and may repeat.
type Hypergraph struct {
	NumVertices int
	Edges       [][]int
}

// New builds a hypergraph, normalizing each edge to a sorted duplicate-free
// vertex list and validating vertex bounds.
func New(numVertices int, edges [][]int) *Hypergraph {
	h := &Hypergraph{NumVertices: numVertices, Edges: make([][]int, len(edges))}
	for i, e := range edges {
		seen := make(map[int]bool, len(e))
		var norm []int
		for _, v := range e {
			if v < 0 || v >= numVertices {
				panic(fmt.Sprintf("hypergraph: vertex %d out of range [0,%d)", v, numVertices))
			}
			if !seen[v] {
				seen[v] = true
				norm = append(norm, v)
			}
		}
		sort.Ints(norm)
		h.Edges[i] = norm
	}
	return h
}

// occurrences returns, per vertex, the indices of edges containing it.
func (h *Hypergraph) occurrences() [][]int {
	occ := make([][]int, h.NumVertices)
	for ei, e := range h.Edges {
		for _, v := range e {
			occ[v] = append(occ[v], ei)
		}
	}
	return occ
}

// IsAcyclicGYO runs the GYO ear-reduction algorithm: repeatedly delete
// vertices occurring in exactly one edge and edges contained in another
// edge; the hypergraph is α-acyclic iff everything reduces away (at most
// one, empty, edge survives per component — equivalently, all edges become
// empty).
func (h *Hypergraph) IsAcyclicGYO() bool {
	// Work on copies of edge sets.
	edges := make([]map[int]bool, 0, len(h.Edges))
	for _, e := range h.Edges {
		m := make(map[int]bool, len(e))
		for _, v := range e {
			m[v] = true
		}
		edges = append(edges, m)
	}
	alive := make([]bool, len(edges))
	for i := range alive {
		alive[i] = true
	}
	for {
		changed := false
		// Count vertex occurrences among live edges.
		occ := make(map[int]int)
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			for v := range e {
				occ[v]++
			}
		}
		// Rule 1: delete vertices in exactly one edge.
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			for v := range e {
				if occ[v] == 1 {
					delete(e, v)
					changed = true
				}
			}
		}
		// Rule 2: delete edges contained in another live edge.
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			for j, f := range edges {
				if i == j || !alive[j] {
					continue
				}
				if containsAll(f, e) {
					// Tie-break so exactly one of two equal edges dies.
					if len(e) == len(f) && i < j {
						continue
					}
					alive[i] = false
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	for i, e := range edges {
		if alive[i] && len(e) > 0 {
			return false
		}
	}
	return true
}

func containsAll(super, sub map[int]bool) bool {
	if len(sub) > len(super) {
		return false
	}
	for v := range sub {
		if !super[v] {
			return false
		}
	}
	return true
}

// Forest is a join forest over the hyperedges: Parent[i] is the parent edge
// of edge i (−1 for roots), Order lists edges children-before-parents, and
// Children is the inverse adjacency.
type Forest struct {
	Parent   []int
	Children [][]int
	Roots    []int
	Order    []int // bottom-up: every edge appears after all its descendants? (children first)
}

// JoinForest computes a join forest via Kruskal's algorithm on the edge
// intersection graph with weights |eᵢ ∩ eⱼ|, keeping only positive-weight
// links. By the Bernstein–Goodman/Maier theorem the hypergraph is acyclic
// iff the resulting maximal spanning forest achieves total weight
// Σ_v (occ(v) − 1); in that case the forest is a join forest (for every
// vertex the edges containing it form a connected subtree). Returns ok =
// false for cyclic hypergraphs.
func (h *Hypergraph) JoinForest() (*Forest, bool) {
	m := len(h.Edges)
	type link struct {
		a, b, w int
	}
	var links []link
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			w := intersectSize(h.Edges[i], h.Edges[j])
			if w > 0 {
				links = append(links, link{i, j, w})
			}
		}
	}
	sort.Slice(links, func(a, b int) bool { return links[a].w > links[b].w })

	parentDS := make([]int, m) // union-find
	for i := range parentDS {
		parentDS[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parentDS[x] != x {
			parentDS[x] = parentDS[parentDS[x]]
			x = parentDS[x]
		}
		return x
	}

	adj := make([][]int, m)
	total := 0
	for _, l := range links {
		ra, rb := find(l.a), find(l.b)
		if ra == rb {
			continue
		}
		parentDS[ra] = rb
		adj[l.a] = append(adj[l.a], l.b)
		adj[l.b] = append(adj[l.b], l.a)
		total += l.w
	}

	want := 0
	for _, occ := range h.occurrences() {
		if len(occ) > 0 {
			want += len(occ) - 1
		}
	}
	if total != want {
		return nil, false
	}

	// Root each component at its smallest edge index and orient.
	f := &Forest{
		Parent:   make([]int, m),
		Children: make([][]int, m),
	}
	for i := range f.Parent {
		f.Parent[i] = -2 // unvisited
	}
	for i := 0; i < m; i++ {
		if f.Parent[i] != -2 {
			continue
		}
		f.Roots = append(f.Roots, i)
		f.Parent[i] = -1
		// Iterative DFS; record post-order (children before parents).
		type frame struct{ node, next int }
		stack := []frame{{i, 0}}
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.next < len(adj[fr.node]) {
				nb := adj[fr.node][fr.next]
				fr.next++
				if f.Parent[nb] == -2 {
					f.Parent[nb] = fr.node
					f.Children[fr.node] = append(f.Children[fr.node], nb)
					stack = append(stack, frame{nb, 0})
				}
				continue
			}
			f.Order = append(f.Order, fr.node)
			stack = stack[:len(stack)-1]
		}
	}
	return f, true
}

// JoinForestWeighted is JoinForest followed by RerootedBy: the structural
// spanning forest is computed as usual (weights play no role in acyclicity),
// then each component is re-rooted and its children reordered by the given
// per-edge weights. This is the variant the cost-based planner
// (internal/plan) feeds with estimated relation cardinalities.
func (h *Hypergraph) JoinForestWeighted(weight []float64) (*Forest, bool) {
	f, ok := h.JoinForest()
	if !ok {
		return nil, false
	}
	return f.RerootedBy(weight), true
}

// RerootedBy returns a copy of the forest in which every component is
// re-rooted at its maximum-weight edge (ties: lowest index) and every
// children list is sorted by ascending weight (ties: lowest index), with
// Order recomputed children-first. The underlying undirected forest is
// unchanged, so the join-forest property is preserved — only the
// orientation and visit order move. weight must have one entry per edge.
func (f *Forest) RerootedBy(weight []float64) *Forest {
	m := len(f.Parent)
	if len(weight) != m {
		panic(fmt.Sprintf("hypergraph: %d weights for %d edges", len(weight), m))
	}
	adj := make([][]int, m)
	for j, u := range f.Parent {
		if u >= 0 {
			adj[j] = append(adj[j], u)
			adj[u] = append(adj[u], j)
		}
	}
	out := &Forest{Parent: make([]int, m), Children: make([][]int, m)}
	for i := range out.Parent {
		out.Parent[i] = -2 // unvisited
	}
	heavier := func(a, b int) bool { // should a root over b?
		return weight[a] > weight[b] || (weight[a] == weight[b] && a < b)
	}
	lighter := func(a, b int) bool { // should a be visited before b?
		return weight[a] < weight[b] || (weight[a] == weight[b] && a < b)
	}
	// Walk components in the original root order for deterministic Roots.
	for _, r := range f.Roots {
		// Collect the component and pick the heaviest edge as its root.
		comp := []int{r}
		out.Parent[r] = -3 // collected
		for i := 0; i < len(comp); i++ {
			for _, nb := range adj[comp[i]] {
				if out.Parent[nb] == -2 {
					out.Parent[nb] = -3
					comp = append(comp, nb)
				}
			}
		}
		root := comp[0]
		for _, j := range comp[1:] {
			if heavier(j, root) {
				root = j
			}
		}
		out.Roots = append(out.Roots, root)
		out.Parent[root] = -1
		// Orient away from the new root, children sorted lightest-first;
		// record post-order (children before parents).
		type frame struct{ node, next int }
		stack := []frame{{root, 0}}
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.next == 0 {
				for _, nb := range adj[fr.node] {
					if out.Parent[nb] == -3 {
						out.Children[fr.node] = append(out.Children[fr.node], nb)
					}
				}
				kids := out.Children[fr.node]
				sort.Slice(kids, func(a, b int) bool { return lighter(kids[a], kids[b]) })
				for _, c := range kids {
					out.Parent[c] = fr.node
				}
			}
			if fr.next < len(out.Children[fr.node]) {
				nb := out.Children[fr.node][fr.next]
				fr.next++
				stack = append(stack, frame{nb, 0})
				continue
			}
			out.Order = append(out.Order, fr.node)
			stack = stack[:len(stack)-1]
		}
	}
	return out
}

// JoinTree links the forest into a single tree by attaching every root
// after the first as a child of the first root (the paper: "we can add
// additional edges to form a tree"). The cross links share no vertices, so
// downstream joins across them are cross products, which the Theorem 2
// engine requires in order to check inequalities spanning components.
func (f *Forest) JoinTree() *Forest {
	if len(f.Roots) <= 1 {
		return f
	}
	out := &Forest{
		Parent:   append([]int(nil), f.Parent...),
		Children: make([][]int, len(f.Children)),
		Roots:    []int{f.Roots[0]},
	}
	for i, c := range f.Children {
		out.Children[i] = append([]int(nil), c...)
	}
	r0 := f.Roots[0]
	for _, r := range f.Roots[1:] {
		out.Parent[r] = r0
		out.Children[r0] = append(out.Children[r0], r)
	}
	// Recompute a children-first order: process roots last.
	out.Order = nil
	var post func(int)
	post = func(u int) {
		for _, c := range out.Children[u] {
			post(c)
		}
		out.Order = append(out.Order, u)
	}
	post(r0)
	return out
}

// IsJoinForest verifies the defining property directly: for every vertex,
// the set of edges containing it induces a connected subgraph of the
// forest. Used to cross-check JoinForest in tests.
func (h *Hypergraph) IsJoinForest(f *Forest) bool {
	if len(f.Parent) != len(h.Edges) {
		return false
	}
	for v := 0; v < h.NumVertices; v++ {
		var holders []int
		for ei, e := range h.Edges {
			if contains(e, v) {
				holders = append(holders, ei)
			}
		}
		if len(holders) <= 1 {
			continue
		}
		inSet := make(map[int]bool, len(holders))
		for _, ei := range holders {
			inSet[ei] = true
		}
		// BFS within the holder set via forest adjacency.
		seen := map[int]bool{holders[0]: true}
		queue := []int{holders[0]}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			var nbrs []int
			if p := f.Parent[u]; p >= 0 {
				nbrs = append(nbrs, p)
			}
			nbrs = append(nbrs, f.Children[u]...)
			for _, w := range nbrs {
				if inSet[w] && !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if len(seen) != len(holders) {
			return false
		}
	}
	return true
}

// SubtreeVertices returns, for each edge index, the union of vertices over
// its subtree (the paper's at(T[j])).
func (h *Hypergraph) SubtreeVertices(f *Forest) []map[int]bool {
	out := make([]map[int]bool, len(h.Edges))
	for _, j := range f.Order { // children first
		s := make(map[int]bool, len(h.Edges[j]))
		for _, v := range h.Edges[j] {
			s[v] = true
		}
		for _, c := range f.Children[j] {
			for v := range out[c] {
				s[v] = true
			}
		}
		out[j] = s
	}
	return out
}

func intersectSize(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func contains(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}
