package hypergraph

import (
	"math/rand"
	"testing"
)

// cycleHG builds the n-cycle hypergraph: edges {i, i+1 mod n}.
func cycleHG(n int) *Hypergraph {
	edges := make([][]int, n)
	for i := 0; i < n; i++ {
		edges[i] = []int{i, (i + 1) % n}
	}
	return New(n, edges)
}

// cliqueHG builds the complete graph K_n as binary edges.
func cliqueHG(n int) *Hypergraph {
	var edges [][]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, []int{i, j})
		}
	}
	return New(n, edges)
}

func TestDecomposeCyclesWidth2(t *testing.T) {
	for n := 3; n <= 16; n++ { // n ≥ 11 exceeds the exact cap → min-fill path
		h := cycleHG(n)
		d, ok := h.Decompose(2, nil)
		if !ok {
			t.Fatalf("%d-cycle: no width-2 decomposition found", n)
		}
		if d.Width > 2 {
			t.Fatalf("%d-cycle: width %d > 2", n, d.Width)
		}
		if err := h.ValidateDecomposition(d); err != nil {
			t.Fatalf("%d-cycle: %v", n, err)
		}
	}
}

func TestDecomposeAcyclicWidth1(t *testing.T) {
	// Path P_5 and a star: acyclic hypergraphs decompose at width 1.
	path := New(6, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	star := New(5, [][]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	for name, h := range map[string]*Hypergraph{"path": path, "star": star} {
		d, ok := h.Decompose(3, nil)
		if !ok {
			t.Fatalf("%s: no decomposition", name)
		}
		if d.Width != 1 {
			t.Fatalf("%s: width %d, want 1", name, d.Width)
		}
		if err := h.ValidateDecomposition(d); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestDecomposeCliqueBounds(t *testing.T) {
	// K6 needs 3 edges to cover its single top bag (width 3); K8 needs 4 —
	// beyond the engine's bound, so Decompose must refuse.
	if d, ok := cliqueHG(6).Decompose(3, nil); !ok || d.Width != 3 {
		t.Fatalf("K6: ok=%v width=%v, want width 3", ok, d)
	}
	if _, ok := cliqueHG(8).Decompose(3, nil); ok {
		t.Fatal("K8: found a width-≤3 decomposition (ghw is 4)")
	}
}

func TestDecomposeGroundAndDisconnected(t *testing.T) {
	// Two disjoint triangles plus a ground (empty) edge: per-component
	// trees, ground edge as its own bag.
	h := New(6, [][]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {}})
	d, ok := h.Decompose(2, nil)
	if !ok {
		t.Fatal("disconnected: no decomposition")
	}
	if err := h.ValidateDecomposition(d); err != nil {
		t.Fatal(err)
	}
	if len(d.Forest.Roots) < 3 {
		t.Fatalf("expected ≥3 roots (two components + ground), got %v", d.Forest.Roots)
	}
}

// TestDecomposeRandomValidates cross-checks every decomposition the search
// produces against the property checker, and pins two invariants: acyclic
// hypergraphs always decompose (width 1 suffices edge-locally at k=3), and
// the cost callback never changes feasibility, only shape.
func TestDecomposeRandomValidates(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		nv := 2 + rnd.Intn(8)
		ne := 1 + rnd.Intn(9)
		edges := make([][]int, ne)
		for i := range edges {
			k := 1 + rnd.Intn(3)
			for j := 0; j < k; j++ {
				edges[i] = append(edges[i], rnd.Intn(nv))
			}
		}
		h := New(nv, edges)
		d, ok := h.Decompose(3, nil)
		dc, okc := h.Decompose(3, func(guards, covered []int) float64 { return 1 })
		if ok != okc {
			t.Fatalf("seed %d: cost callback changed feasibility (%v vs %v)", seed, ok, okc)
		}
		if _, acyclic := h.JoinForest(); acyclic && !ok {
			t.Fatalf("seed %d: acyclic hypergraph failed to decompose", seed)
		}
		if ok {
			if err := h.ValidateDecomposition(d); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := h.ValidateDecomposition(dc); err != nil {
				t.Fatalf("seed %d (cost): %v", seed, err)
			}
		}
	}
}

// TestDecomposeMinFillLargeValidates forces the min-fill path (edge count
// above the exact cap) on structured low-width inputs.
func TestDecomposeMinFillLargeValidates(t *testing.T) {
	// Long cycle with pendant edges: 24 edges, still width 2.
	var edges [][]int
	n := 12
	for i := 0; i < n; i++ {
		edges = append(edges, []int{i, (i + 1) % n})
		edges = append(edges, []int{i, n + i}) // pendant
	}
	h := New(2*n, edges)
	d, ok := h.Decompose(2, nil)
	if !ok {
		t.Fatal("pendant cycle: no width-2 decomposition")
	}
	if err := h.ValidateDecomposition(d); err != nil {
		t.Fatal(err)
	}
	if d.Width > 2 {
		t.Fatalf("width %d > 2", d.Width)
	}
}
