// Generalized hypertree decompositions: the bounded-width machinery that
// extends the tractable frontier beyond α-acyclicity. A decomposition is a
// tree of bags; each bag is guarded by at most k hyperedges, its vertex set
// is covered by those guards, and every vertex's bags form a connected
// subtree. Joining each bag's guards and running Yannakakis over the bag
// tree evaluates a width-k query in time polynomial for fixed k — the
// engine in internal/decomp.
//
// Two constructions are provided behind Decompose: an exact DFS over
// GYO-style separator choices (bags = unions of ≤ k component edges,
// memoized on (component, interface), minimizing a caller-supplied bag
// cost), and a greedy min-fill elimination fallback for hypergraphs too
// large for the exact search. Both satisfy ValidateDecomposition, which
// tests use to cross-check every produced tree.
package hypergraph

import (
	"fmt"
	"math/bits"
	"sort"
)

// maxExactEdges and maxExactVertices bound the exact decomposition search;
// beyond either, Decompose falls back to min-fill elimination. The exact
// search enumerates guard subsets per component and memoizes on bitmasks,
// so both bounds keep it query-size-exponential only on small queries.
const (
	maxExactEdges    = 10
	maxExactVertices = 64
)

// CostFunc estimates the cost of materializing one bag: joining the guard
// edges plus enforcing the covered edges (semijoined after the guard
// join). Decompose minimizes the summed bag cost over all decompositions
// it can reach; nil means cost = guards², preferring many small bags over
// few wide ones (so acyclic hypergraphs keep width 1 and cross-product
// guard sets are a last resort). The planner (internal/plan, via
// internal/decomp) supplies the statistics-driven estimate — no width or
// cost policy lives in this package. Feasibility never depends on the
// callback, only the chosen shape does.
type CostFunc func(guards, covered []int) float64

// Bag is one node of a decomposition. Guards are the covering hyperedges
// (λ in the literature, at most k of them); Vertices is the bag's vertex
// set χ, always a subset of the guards' union; Covered lists hyperedges
// that are fully contained in Vertices and assigned to this bag for
// enforcement without being guards (the evaluator semijoin-filters them
// after materializing the guard join).
type Bag struct {
	Guards   []int
	Covered  []int
	Vertices []int
}

// Decomposition is a generalized hypertree decomposition: bags arranged on
// a forest (one tree per connected component of the hypergraph). Width is
// the maximum guard count over the bags.
type Decomposition struct {
	Bags   []Bag
	Forest *Forest
	Width  int
}

// Decompose searches for a width-≤ k generalized hypertree decomposition,
// minimizing total bag cost under costOf (see CostFunc). It returns ok =
// false when no decomposition within width k was found: the exact search is
// complete over component-local guard choices (which covers every cycle,
// theta and chordal low-width shape); hypergraphs beyond its size bounds
// get the greedy min-fill construction, accepted only if its width fits.
func (h *Hypergraph) Decompose(k int, costOf CostFunc) (*Decomposition, bool) {
	if len(h.Edges) == 0 || k < 1 {
		return nil, false
	}
	if costOf == nil {
		costOf = func(guards, _ []int) float64 { return float64(len(guards) * len(guards)) }
	}
	if len(h.Edges) <= maxExactEdges && h.NumVertices <= maxExactVertices {
		if d, ok := h.decomposeExact(k, costOf); ok {
			return d, true
		}
	}
	d := h.decomposeMinFill()
	if d.Width <= k {
		return d, true
	}
	return nil, false
}

// dnode is one bag of a candidate decomposition during the exact search.
type dnode struct {
	guards   []int
	covered  []int
	verts    uint64
	cost     float64 // bag cost + Σ children cost
	children []*dnode
}

type exactSearch struct {
	h        *Hypergraph
	k        int
	costOf   CostFunc
	edgeMask []uint64
	memo     map[[2]uint64]*dnode // nil entry = infeasible
}

// decomposeExact runs the separator DFS per connected component: choose a
// guard set λ (≤ k component edges) whose vertex union covers the
// component's interface to its parent bag, drop the edges it fully covers,
// split the rest into connected sub-components, and recurse — the GYO ear
// reduction generalized from single ears to width-k separators. Memoized
// on (component, interface) bitmasks, minimizing summed bag cost.
func (h *Hypergraph) decomposeExact(k int, costOf CostFunc) (*Decomposition, bool) {
	s := &exactSearch{h: h, k: k, costOf: costOf,
		edgeMask: make([]uint64, len(h.Edges)),
		memo:     make(map[[2]uint64]*dnode)}
	for i, e := range h.Edges {
		for _, v := range e {
			s.edgeMask[i] |= 1 << uint(v)
		}
	}
	var roots []*dnode
	for _, comp := range s.components(allEdges(len(h.Edges)), ^uint64(0)) {
		n := s.solve(edgeSetMask(comp), 0)
		if n == nil {
			return nil, false
		}
		roots = append(roots, n)
	}
	return h.flatten(roots), true
}

func allEdges(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

func edgeSetMask(edges []int) uint64 {
	var m uint64
	for _, e := range edges {
		m |= 1 << uint(e)
	}
	return m
}

// components splits the given edges into connected components, linking two
// edges when they share a vertex inside the "via" vertex mask. Components
// are ordered by lowest edge index, edges ascending.
func (s *exactSearch) components(edges []int, via uint64) [][]int {
	parent := make(map[int]int, len(edges))
	for _, e := range edges {
		parent[e] = e
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, e := range edges {
		for _, f := range edges[i+1:] {
			if s.edgeMask[e]&s.edgeMask[f]&via != 0 {
				parent[find(e)] = find(f)
			}
		}
	}
	groups := make(map[int][]int)
	var order []int
	for _, e := range edges { // edges is ascending, so groups fill ascending
		r := find(e)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], e)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// solve returns the cheapest bag subtree decomposing the component (an edge
// bitmask) whose root bag covers the interface vertex mask, or nil when no
// width-≤ k subtree exists.
func (s *exactSearch) solve(comp, iface uint64) *dnode {
	key := [2]uint64{comp, iface}
	if n, ok := s.memo[key]; ok {
		return n
	}
	s.memo[key] = nil // cuts accidental re-entry; overwritten below
	edges := maskEdges(comp)
	var best *dnode
	forEachSubset(edges, s.k, func(guards []int) {
		var chi uint64
		for _, g := range guards {
			chi |= s.edgeMask[g]
		}
		if iface&^chi != 0 {
			return
		}
		guardSet := edgeSetMask(guards)
		var rest, covered []int
		for _, e := range edges {
			if guardSet&(1<<uint(e)) != 0 {
				continue
			}
			if s.edgeMask[e]&^chi == 0 {
				covered = append(covered, e)
			} else {
				rest = append(rest, e)
			}
		}
		total := s.costOf(guards, covered)
		if best != nil && total >= best.cost {
			return // children only add cost
		}
		var children []*dnode
		for _, sub := range s.components(rest, ^chi) {
			var subVerts uint64
			for _, e := range sub {
				subVerts |= s.edgeMask[e]
			}
			ch := s.solve(edgeSetMask(sub), subVerts&chi)
			if ch == nil {
				return
			}
			total += ch.cost
			if best != nil && total >= best.cost {
				return
			}
			children = append(children, ch)
		}
		best = &dnode{
			guards:   append([]int(nil), guards...),
			covered:  covered,
			verts:    chi,
			cost:     total,
			children: children,
		}
	})
	s.memo[key] = best
	return best
}

func maskEdges(m uint64) []int {
	out := make([]int, 0, bits.OnesCount64(m))
	for m != 0 {
		e := bits.TrailingZeros64(m)
		out = append(out, e)
		m &^= 1 << uint(e)
	}
	return out
}

// forEachSubset enumerates the nonempty subsets of edges with at most k
// elements, sizes ascending and lexicographic within a size, so candidate
// order (and therefore tie-breaking) is deterministic.
func forEachSubset(edges []int, k int, fn func([]int)) {
	n := len(edges)
	if k > n {
		k = n
	}
	pick := make([]int, 0, k)
	var rec func(start, size int)
	rec = func(start, size int) {
		if len(pick) == size {
			fn(pick)
			return
		}
		for i := start; i <= n-(size-len(pick)); i++ {
			pick = append(pick, edges[i])
			rec(i+1, size)
			pick = pick[:len(pick)-1]
		}
	}
	for size := 1; size <= k; size++ {
		rec(0, size)
	}
}

// flatten assigns bag indices in DFS preorder across the component roots
// and assembles the Decomposition with its Forest (Order children-first).
func (h *Hypergraph) flatten(roots []*dnode) *Decomposition {
	d := &Decomposition{Forest: &Forest{}}
	var walk func(n *dnode, parent int)
	walk = func(n *dnode, parent int) {
		id := len(d.Bags)
		d.Bags = append(d.Bags, Bag{Guards: n.guards, Covered: n.covered, Vertices: maskEdges(n.verts)})
		d.Forest.Parent = append(d.Forest.Parent, parent)
		d.Forest.Children = append(d.Forest.Children, nil)
		if parent < 0 {
			d.Forest.Roots = append(d.Forest.Roots, id)
		} else {
			d.Forest.Children[parent] = append(d.Forest.Children[parent], id)
		}
		if len(n.guards) > d.Width {
			d.Width = len(n.guards)
		}
		for _, c := range n.children {
			walk(c, id)
		}
		d.Forest.Order = append(d.Forest.Order, id) // post-order: children first
	}
	for _, r := range roots {
		walk(r, -1)
	}
	return d
}

// decomposeMinFill builds a tree decomposition of the primal graph by
// min-fill elimination (bags χ = eliminated vertex + live neighbors,
// parent = bag of the earliest-eliminated other member), prunes bags
// subsumed by their parent, and covers each bag greedily with hyperedges.
// Width is whatever the greedy cover yields — the caller decides whether it
// fits. Hyperedges land as guards where chosen and every edge is assigned
// to the first bag fully containing it for enforcement.
func (h *Hypergraph) decomposeMinFill() *Decomposition {
	n := h.NumVertices
	adj := make([]map[int]bool, n)
	present := make([]bool, n)
	link := func(u, v int) {
		if adj[u] == nil {
			adj[u] = make(map[int]bool)
		}
		adj[u][v] = true
	}
	var emptyEdges []int
	for ei, e := range h.Edges {
		if len(e) == 0 {
			emptyEdges = append(emptyEdges, ei)
			continue
		}
		for _, v := range e {
			present[v] = true
		}
		for i, u := range e {
			for _, v := range e[i+1:] {
				link(u, v)
				link(v, u)
			}
		}
	}

	live := make([]bool, n)
	remaining := 0
	for v := 0; v < n; v++ {
		if present[v] {
			live[v] = true
			remaining++
		}
	}
	fillIn := func(v int) int {
		var nb []int
		for u := range adj[v] {
			if live[u] {
				nb = append(nb, u)
			}
		}
		f := 0
		for i, a := range nb {
			for _, b := range nb[i+1:] {
				if !adj[a][b] {
					f++
				}
			}
		}
		return f
	}

	var chis [][]int // per elimination step, sorted χ
	var elim []int
	elimIdx := make([]int, n)
	for remaining > 0 {
		best, bestFill := -1, 0
		for v := 0; v < n; v++ {
			if !live[v] {
				continue
			}
			f := fillIn(v)
			if best == -1 || f < bestFill {
				best, bestFill = v, f
			}
		}
		chi := []int{best}
		var nb []int
		for u := range adj[best] {
			if live[u] {
				nb = append(nb, u)
			}
		}
		sort.Ints(nb)
		chi = append(chi, nb...)
		sort.Ints(chi)
		for i, a := range nb {
			for _, b := range nb[i+1:] {
				link(a, b)
				link(b, a)
			}
		}
		elimIdx[best] = len(elim)
		elim = append(elim, best)
		chis = append(chis, chi)
		live[best] = false
		remaining--
	}

	// Parent: the bag of the earliest-eliminated other χ member (all are
	// eliminated later than this bag's vertex, so edges point forward).
	parent := make([]int, len(chis))
	for i, chi := range chis {
		parent[i] = -1
		for _, u := range chi {
			if u == elim[i] {
				continue
			}
			if parent[i] == -1 || elimIdx[u] < parent[i] {
				parent[i] = elimIdx[u]
			}
		}
	}

	// Prune bags subsumed by their (transitively live) parent.
	dead := make([]bool, len(chis))
	for i := range chis {
		if parent[i] >= 0 && vertexSubset(chis[i], chis[parent[i]]) {
			dead[i] = true
		}
	}
	liveParent := func(i int) int {
		p := parent[i]
		for p >= 0 && dead[p] {
			p = parent[p]
		}
		return p
	}

	d := &Decomposition{Forest: &Forest{}}
	remap := make([]int, len(chis))
	for i := range chis {
		remap[i] = -1
		if dead[i] {
			continue
		}
		id := len(d.Bags)
		remap[i] = id
		d.Bags = append(d.Bags, Bag{Vertices: chis[i]})
		d.Forest.Parent = append(d.Forest.Parent, -1)
		d.Forest.Children = append(d.Forest.Children, nil)
	}
	for i := range chis {
		if dead[i] {
			continue
		}
		id := remap[i]
		if p := liveParent(i); p >= 0 {
			pid := remap[p]
			d.Forest.Parent[id] = pid
			d.Forest.Children[pid] = append(d.Forest.Children[pid], id)
		} else {
			d.Forest.Roots = append(d.Forest.Roots, id)
		}
	}

	// Ground atoms (empty edges) become their own root bags.
	for _, ei := range emptyEdges {
		id := len(d.Bags)
		d.Bags = append(d.Bags, Bag{Guards: []int{ei}})
		d.Forest.Parent = append(d.Forest.Parent, -1)
		d.Forest.Children = append(d.Forest.Children, nil)
		d.Forest.Roots = append(d.Forest.Roots, id)
	}

	// Greedy guard cover per bag, then enforcement assignment per edge.
	for bi := range d.Bags {
		b := &d.Bags[bi]
		if len(b.Guards) > 0 { // ground-atom bag
			continue
		}
		uncovered := make(map[int]bool, len(b.Vertices))
		for _, v := range b.Vertices {
			uncovered[v] = true
		}
		for len(uncovered) > 0 {
			best, gain := -1, 0
			for ei, e := range h.Edges {
				g := 0
				for _, v := range e {
					if uncovered[v] {
						g++
					}
				}
				if g > gain {
					best, gain = ei, g
				}
			}
			b.Guards = append(b.Guards, best)
			for _, v := range h.Edges[best] {
				delete(uncovered, v)
			}
		}
		sort.Ints(b.Guards)
	}
	for ei, e := range h.Edges {
		if len(e) == 0 {
			continue
		}
		for bi := range d.Bags {
			b := &d.Bags[bi]
			if !vertexSubset(e, b.Vertices) {
				continue
			}
			if !intSliceHas(b.Guards, ei) {
				b.Covered = append(b.Covered, ei)
			}
			break
		}
	}
	for _, b := range d.Bags {
		if len(b.Guards) > d.Width {
			d.Width = len(b.Guards)
		}
	}

	// Children-first order.
	var post func(int)
	post = func(u int) {
		for _, c := range d.Forest.Children[u] {
			post(c)
		}
		d.Forest.Order = append(d.Forest.Order, u)
	}
	for _, r := range d.Forest.Roots {
		post(r)
	}
	return d
}

// vertexSubset reports sub ⊆ super for sorted int slices.
func vertexSubset(sub, super []int) bool {
	i := 0
	for _, v := range sub {
		for i < len(super) && super[i] < v {
			i++
		}
		if i == len(super) || super[i] != v {
			return false
		}
	}
	return true
}

func intSliceHas(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ValidateDecomposition checks the defining properties the evaluator's
// correctness rests on: forest well-formedness, every bag's vertex set
// covered by its guards, every hyperedge both contained in some bag and
// assigned (guard or covered) to a bag that fully contains it, and the
// connectedness condition (each vertex's bags induce a connected subtree).
func (h *Hypergraph) ValidateDecomposition(d *Decomposition) error {
	f := d.Forest
	nb := len(d.Bags)
	if len(f.Parent) != nb || len(f.Children) != nb || len(f.Order) != nb {
		return fmt.Errorf("hypergraph: decomposition forest shape mismatch (%d bags)", nb)
	}
	seen := make([]bool, nb)
	for _, j := range f.Order {
		for _, c := range f.Children[j] {
			if !seen[c] {
				return fmt.Errorf("hypergraph: Order visits bag %d before child %d", j, c)
			}
			if f.Parent[c] != j {
				return fmt.Errorf("hypergraph: bag %d parent mismatch", c)
			}
		}
		seen[j] = true
	}
	width := 0
	for bi, b := range d.Bags {
		if len(b.Guards) == 0 {
			return fmt.Errorf("hypergraph: bag %d has no guards", bi)
		}
		if len(b.Guards) > width {
			width = len(b.Guards)
		}
		union := make(map[int]bool)
		for _, g := range b.Guards {
			if g < 0 || g >= len(h.Edges) {
				return fmt.Errorf("hypergraph: bag %d guard %d out of range", bi, g)
			}
			for _, v := range h.Edges[g] {
				union[v] = true
			}
		}
		for _, v := range b.Vertices {
			if !union[v] {
				return fmt.Errorf("hypergraph: bag %d vertex %d not covered by guards", bi, v)
			}
		}
		for _, ci := range b.Covered {
			if !vertexSubset(h.Edges[ci], b.Vertices) {
				return fmt.Errorf("hypergraph: bag %d covered edge %d exceeds χ", bi, ci)
			}
		}
	}
	if width != d.Width {
		return fmt.Errorf("hypergraph: declared width %d, actual %d", d.Width, width)
	}
	for ei, e := range h.Edges {
		contained, enforced := false, false
		for bi, b := range d.Bags {
			if vertexSubset(e, b.Vertices) || (len(e) == 0 && intSliceHas(b.Guards, ei)) {
				contained = true
				if intSliceHas(b.Guards, ei) || intSliceHas(b.Covered, ei) {
					enforced = true
				}
			} else if intSliceHas(b.Covered, ei) {
				return fmt.Errorf("hypergraph: edge %d covered at bag %d without containment", ei, bi)
			}
		}
		if !contained {
			return fmt.Errorf("hypergraph: edge %d contained in no bag", ei)
		}
		if !enforced {
			return fmt.Errorf("hypergraph: edge %d enforced at no containing bag", ei)
		}
	}
	// Connectedness, via BFS over the bag forest restricted to holders.
	for v := 0; v < h.NumVertices; v++ {
		var holders []int
		for bi, b := range d.Bags {
			if intSliceHas(b.Vertices, v) {
				holders = append(holders, bi)
			}
		}
		if len(holders) <= 1 {
			continue
		}
		inSet := make(map[int]bool, len(holders))
		for _, bi := range holders {
			inSet[bi] = true
		}
		reach := map[int]bool{holders[0]: true}
		queue := []int{holders[0]}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			nbrs := append([]int(nil), f.Children[u]...)
			if p := f.Parent[u]; p >= 0 {
				nbrs = append(nbrs, p)
			}
			for _, w := range nbrs {
				if inSet[w] && !reach[w] {
					reach[w] = true
					queue = append(queue, w)
				}
			}
		}
		if len(reach) != len(holders) {
			return fmt.Errorf("hypergraph: vertex %d bags are disconnected", v)
		}
	}
	return nil
}
