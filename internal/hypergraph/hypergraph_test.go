package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPathIsAcyclic(t *testing.T) {
	// R(x0,x1), R(x1,x2), R(x2,x3) — a path query.
	h := New(4, [][]int{{0, 1}, {1, 2}, {2, 3}})
	if !h.IsAcyclicGYO() {
		t.Fatal("path hypergraph should be acyclic (GYO)")
	}
	f, ok := h.JoinForest()
	if !ok {
		t.Fatal("path hypergraph should be acyclic (MST)")
	}
	if !h.IsJoinForest(f) {
		t.Fatal("returned forest violates the join property")
	}
	if len(f.Roots) != 1 {
		t.Fatalf("path should be one component, got %d roots", len(f.Roots))
	}
}

func TestTriangleIsCyclic(t *testing.T) {
	h := New(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if h.IsAcyclicGYO() {
		t.Fatal("triangle should be cyclic (GYO)")
	}
	if _, ok := h.JoinForest(); ok {
		t.Fatal("triangle should be cyclic (MST)")
	}
}

func TestStarIsAcyclic(t *testing.T) {
	h := New(4, [][]int{{0, 1}, {0, 2}, {0, 3}})
	if !h.IsAcyclicGYO() {
		t.Fatal("star should be acyclic")
	}
	if _, ok := h.JoinForest(); !ok {
		t.Fatal("star should be acyclic (MST)")
	}
}

func TestBigHyperedgeCoversCycle(t *testing.T) {
	// Triangle plus an edge covering it: acyclic (the big edge absorbs it).
	h := New(3, [][]int{{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}})
	if !h.IsAcyclicGYO() {
		t.Fatal("covered triangle should be acyclic (GYO)")
	}
	f, ok := h.JoinForest()
	if !ok {
		t.Fatal("covered triangle should be acyclic (MST)")
	}
	if !h.IsJoinForest(f) {
		t.Fatal("forest violates join property")
	}
}

func TestCycleFourIsCyclic(t *testing.T) {
	h := New(4, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if h.IsAcyclicGYO() {
		t.Fatal("4-cycle should be cyclic")
	}
	if _, ok := h.JoinForest(); ok {
		t.Fatal("4-cycle should be cyclic (MST)")
	}
}

func TestDuplicateAndEmptyEdges(t *testing.T) {
	h := New(2, [][]int{{0, 1}, {0, 1}, {}, {1}})
	if !h.IsAcyclicGYO() {
		t.Fatal("duplicates/empties should stay acyclic")
	}
	f, ok := h.JoinForest()
	if !ok {
		t.Fatal("duplicates/empties should stay acyclic (MST)")
	}
	if !h.IsJoinForest(f) {
		t.Fatal("forest violates join property")
	}
}

func TestDisconnectedComponentsAndJoinTree(t *testing.T) {
	h := New(4, [][]int{{0, 1}, {2, 3}})
	f, ok := h.JoinForest()
	if !ok {
		t.Fatal("two disjoint edges are acyclic")
	}
	if len(f.Roots) != 2 {
		t.Fatalf("want 2 roots, got %d", len(f.Roots))
	}
	tr := f.JoinTree()
	if len(tr.Roots) != 1 {
		t.Fatalf("JoinTree should leave one root, got %d", len(tr.Roots))
	}
	if !h.IsJoinForest(tr) {
		t.Fatal("linking roots must not break the join property")
	}
	// Order must list children before parents.
	pos := make(map[int]int)
	for i, e := range tr.Order {
		pos[e] = i
	}
	for e, p := range tr.Parent {
		if p >= 0 && pos[e] > pos[p] {
			t.Fatalf("order is not children-first: %v parents %v", tr.Order, tr.Parent)
		}
	}
}

func TestSubtreeVertices(t *testing.T) {
	h := New(4, [][]int{{0, 1}, {1, 2}, {2, 3}})
	f, ok := h.JoinForest()
	if !ok {
		t.Fatal("acyclic expected")
	}
	sub := h.SubtreeVertices(f)
	// The root's subtree must contain all vertices of its component.
	root := f.Roots[0]
	if len(sub[root]) != 4 {
		t.Fatalf("root subtree has %d vertices, want 4", len(sub[root]))
	}
	// Each edge's own vertices are in its subtree set.
	for ei, e := range h.Edges {
		for _, v := range e {
			if !sub[ei][v] {
				t.Fatalf("edge %d subtree missing own vertex %d", ei, v)
			}
		}
	}
	// A leaf's subtree is exactly its own vertex set.
	for ei := range h.Edges {
		if len(f.Children[ei]) == 0 && len(sub[ei]) != len(h.Edges[ei]) {
			t.Fatalf("leaf %d subtree %v != own edge %v", ei, sub[ei], h.Edges[ei])
		}
	}
}

func TestVertexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, [][]int{{0, 5}})
}

// randHypergraph generates a small random hypergraph.
func randHypergraph(rnd *rand.Rand) *Hypergraph {
	n := 1 + rnd.Intn(6)
	m := 1 + rnd.Intn(6)
	edges := make([][]int, m)
	for i := range edges {
		sz := rnd.Intn(4)
		for j := 0; j < sz; j++ {
			edges[i] = append(edges[i], rnd.Intn(n))
		}
	}
	return New(n, edges)
}

// Property: the two acyclicity algorithms agree, and when acyclic the
// produced forest satisfies the join property.
func TestQuickGYOAgreesWithMST(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		h := randHypergraph(rnd)
		gyo := h.IsAcyclicGYO()
		forest, mst := h.JoinForest()
		if gyo != mst {
			t.Logf("disagreement on %v: gyo=%v mst=%v", h.Edges, gyo, mst)
			return false
		}
		if mst && !h.IsJoinForest(forest) {
			t.Logf("forest for %v violates join property", h.Edges)
			return false
		}
		if mst {
			tr := forest.JoinTree()
			if len(tr.Roots) != 1 || !h.IsJoinForest(tr) {
				t.Logf("JoinTree for %v broken", h.Edges)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: RerootedBy preserves the undirected forest (same join-forest
// property, same components), roots each component at its max-weight edge,
// sorts children ascending by weight, and keeps Order children-first.
func TestQuickRerootedBy(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		h := randHypergraph(rnd)
		forest, ok := h.JoinForest()
		if !ok {
			return true
		}
		w := make([]float64, len(h.Edges))
		for i := range w {
			w[i] = float64(rnd.Intn(5))
		}
		re, ok := h.JoinForestWeighted(w)
		if !ok || !h.IsJoinForest(re) {
			t.Logf("rerooted forest for %v violates join property", h.Edges)
			return false
		}
		if len(re.Roots) != len(forest.Roots) || len(re.Order) != len(forest.Order) {
			t.Logf("component or order count changed: %v vs %v", re.Roots, forest.Roots)
			return false
		}
		// Undirected edge sets must match.
		type und struct{ a, b int }
		norm := func(a, b int) und {
			if a > b {
				a, b = b, a
			}
			return und{a, b}
		}
		old := map[und]bool{}
		for j, u := range forest.Parent {
			if u >= 0 {
				old[norm(j, u)] = true
			}
		}
		for j, u := range re.Parent {
			if u >= 0 && !old[norm(j, u)] {
				t.Logf("new link %d-%d not in original forest", j, u)
				return false
			}
			if u >= 0 {
				delete(old, norm(j, u))
			}
		}
		if len(old) != 0 {
			t.Logf("links lost in reroot: %v", old)
			return false
		}
		// Each root must be a max-weight edge of its component; children
		// sorted ascending; Order children-first.
		seen := make([]bool, len(re.Parent))
		for _, j := range re.Order {
			for _, c := range re.Children[j] {
				if !seen[c] {
					t.Logf("Order not children-first at %d", j)
					return false
				}
			}
			seen[j] = true
			kids := re.Children[j]
			for i := 0; i+1 < len(kids); i++ {
				if w[kids[i]] > w[kids[i+1]] {
					t.Logf("children of %d not ascending by weight: %v", j, kids)
					return false
				}
			}
		}
		for _, r := range re.Roots {
			for j := range re.Parent {
				if sameComponent(re, r, j) && w[j] > w[r] {
					t.Logf("root %d (w=%v) lighter than member %d (w=%v)", r, w[r], j, w[j])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// sameComponent walks j's parent chain to see whether it reaches root r.
func sameComponent(f *Forest, r, j int) bool {
	for j >= 0 {
		if j == r {
			return true
		}
		j = f.Parent[j]
	}
	return false
}
