package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"pyquery/internal/leakcheck"
)

func TestForEachCtxRunsAllWhenLive(t *testing.T) {
	leakcheck.Check(t)
	for _, workers := range []int{1, 4} {
		var n atomic.Int64
		if err := ForEachCtx(context.Background(), workers, 100, func(int) { n.Add(1) }); err != nil {
			t.Fatal(err)
		}
		if n.Load() != 100 {
			t.Fatalf("workers=%d: ran %d tasks, want 100", workers, n.Load())
		}
	}
}

func TestForEachCtxStopsWhenCanceled(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var n atomic.Int64
		err := ForEachCtx(ctx, workers, 1000, func(int) { n.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n.Load() != 0 {
			t.Fatalf("workers=%d: %d tasks ran on a pre-canceled context", workers, n.Load())
		}
	}
}

func TestForEachCtxMidRunCancel(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	err := ForEachCtx(ctx, 2, 10_000, func(i int) {
		if n.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := n.Load(); got >= 10_000 {
		t.Fatalf("cancellation did not cut the loop short (%d tasks ran)", got)
	}
}

func TestForEachCtxNilContext(t *testing.T) {
	leakcheck.Check(t)
	var n atomic.Int64
	if err := ForEachCtx(nil, 3, 10, func(int) { n.Add(1) }); err != nil || n.Load() != 10 {
		t.Fatalf("nil ctx should degrade to ForEach (err=%v, n=%d)", err, n.Load())
	}
}
