package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
}

func TestDoRunsEveryWorkerOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		seen := make([]int32, workers)
		Do(workers, func(w int) {
			atomic.AddInt32(&seen[w], 1)
		})
		for w, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: worker %d ran %d times", workers, w, c)
			}
		}
	}
}

func TestChunksCoverRangeInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64} {
			covered := make([]int32, n)
			var loByW [101]int
			for i := range loByW {
				loByW[i] = -1
			}
			Chunks(workers, n, func(w, lo, hi int) {
				if lo >= hi {
					t.Errorf("empty chunk delivered: w=%d [%d,%d)", w, lo, hi)
				}
				loByW[w] = lo
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
			// Chunk w's range must precede chunk w+1's.
			prev := -1
			for w := 0; w <= workers && w < len(loByW); w++ {
				if loByW[w] < 0 {
					continue
				}
				if loByW[w] <= prev {
					t.Fatalf("workers=%d n=%d: chunks out of order", workers, n)
				}
				prev = loByW[w]
			}
		}
	}
}

func TestForEachVisitsAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 257
		covered := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&covered[i], 1)
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
	// n = 0 must not call fn.
	ForEach(4, 0, func(i int) { t.Fatal("fn called for n=0") })
}
