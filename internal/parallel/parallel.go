// Package parallel is the worker-pool substrate behind the engines'
// Parallelism option. It is deliberately tiny: resolve a parallelism
// setting (Workers), fan a fixed number of workers out over goroutines
// (Do), split an index range into contiguous per-worker chunks (Chunks),
// and distribute independent tasks with dynamic load balancing (ForEach).
//
// The concurrency contract every caller follows:
//
//   - Workers read shared prepared state (plans, frozen indexes, base
//     relations) but never mutate it. Anything mutable — output relations,
//     seen-sets, statistics — is per-worker and merged serially by the
//     caller after the pool drains (the "per-worker-then-merge" rule; see
//     internal/relation/README.md).
//   - Chunks are contiguous and in order, so callers that concatenate
//     per-worker outputs in worker order reproduce the serial iteration
//     order exactly. This is what keeps the partitioned relational
//     operators byte-identical to their serial counterparts.
//   - workers <= 1 runs inline on the calling goroutine: no goroutines, no
//     channels, no synchronization. Parallelism=1 is exactly the serial
//     engine, which ablations and determinism tests rely on.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// WorkerPanic carries a panic recovered in a pool goroutine back to the
// calling goroutine, preserving the worker's stack. Do and Chunks re-panic
// with it after the pool drains, so a panic anywhere inside a parallel
// engine surfaces on the caller — where the facade's recovery boundary can
// convert it into a typed internal error instead of crashing the process.
// When several workers panic, the first recovered one wins.
type WorkerPanic struct {
	Value any    // the original panic value
	Stack []byte // the panicking worker's stack
}

func (p *WorkerPanic) String() string {
	return fmt.Sprintf("panic in parallel worker: %v\n%s", p.Value, p.Stack)
}

// guard wraps a worker body so a panic is captured instead of crashing the
// process; the pool re-raises the first captured panic on the caller.
func guard(captured *atomic.Pointer[WorkerPanic], body func()) {
	defer func() {
		if r := recover(); r != nil {
			if wp, ok := r.(*WorkerPanic); ok {
				captured.CompareAndSwap(nil, wp)
				return
			}
			captured.CompareAndSwap(nil, &WorkerPanic{Value: r, Stack: debug.Stack()})
		}
	}()
	body()
}

// Workers resolves a Parallelism option value: n > 0 means n workers,
// anything else (the zero value) means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Split divides a worker budget between a task loop and the parallel
// kernel inside each task: outer = min(workers, tasks) workers run tasks
// concurrently, and each task may spend inner = ⌈workers/outer⌉ more in
// nested parallel operators. inner rounds up so a budget that tasks do not
// divide evenly is not stranded (8 workers over 3 tasks → 3×3, a slight
// oversubscription, rather than 3×2 with two idle cores). Every engine
// that layers task-level over kernel-level parallelism (color trials,
// join-tree levels, Datalog rule firings) splits its budget through here.
func Split(workers, tasks int) (outer, inner int) {
	outer = workers
	if outer > tasks {
		outer = tasks
	}
	if outer < 1 {
		outer = 1
	}
	return outer, (workers + outer - 1) / outer
}

// Do runs fn(w) for every worker id w in [0, workers) and waits for all of
// them. With workers <= 1 it calls fn(0) inline.
func Do(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	var panicked atomic.Pointer[WorkerPanic]
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			guard(&panicked, func() { fn(w) })
		}(w)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// Chunks splits the index range [0, n) into at most workers contiguous
// chunks and runs fn(w, lo, hi) for each nonempty chunk concurrently.
// Chunk w always precedes chunk w+1 in index order, so concatenating
// per-worker outputs in worker order preserves the serial iteration order.
// With workers <= 1 it calls fn(0, 0, n) inline.
func Chunks(workers, n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		fn(0, 0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	var panicked atomic.Pointer[WorkerPanic]
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			if lo < hi {
				guard(&panicked, func() { fn(w, lo, hi) })
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// ForEach runs fn(i) for every i in [0, n), distributing indices to workers
// dynamically (an atomic ticket counter), which balances load when task
// costs are skewed — e.g. color-coding trials or Datalog rule firings of
// very different sizes. Order of execution is unspecified; callers needing
// deterministic merges must collect into per-index (not per-worker) slots.
// With workers <= 1 it loops inline.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next int64
	Do(workers, func(int) {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	})
}

// CtxErr is the nil-tolerant ctx.Err(): engines accept a nil context on
// their prepared/one-shot paths, and every cancellation point funnels
// through this check.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ForEachCtx is ForEach with cooperative cancellation: the context is
// checked before each task is issued, so workers stop claiming new indices
// once ctx is done (a task already running finishes — tasks are the
// cancellation granularity, matching the engines' chunk/round boundaries).
// It returns ctx.Err() whenever the context ended — even if it expired
// just as the final task completed — so callers treat any non-nil return
// as an abort; nil means the context was live throughout. A nil or
// non-cancelable context degrades to plain ForEach.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if ctx == nil || ctx.Done() == nil {
		ForEach(workers, n, fn)
		return nil
	}
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	var next int64
	Do(workers, func(int) {
		for ctx.Err() == nil {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	})
	return ctx.Err()
}
