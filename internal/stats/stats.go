// Package stats computes per-relation column statistics — cardinality,
// per-column distinct counts, and value ranges — and caches them on the
// database. They are the inputs to the cost model in internal/plan: every
// engine's join-order and join-tree decision is driven by these numbers
// instead of per-engine ad-hoc heuristics.
//
// Distinct counts go through the width-1 fast path of the existing
// relation.TupleSet machinery (a map keyed by Value directly), so no string
// keys and no per-tuple allocation. Relations larger than sampleCap rows
// are summarized from a deterministic prefix sample — a column whose
// distinct sample is half-saturated or more (mostly-unique values)
// extrapolates linearly, anything else is treated as saturated and keeps
// the sample count, and Min/Max bound the sampled prefix. The planner only
// needs relative magnitudes, and bounding the whole scan by the sample
// keeps statistics collection O(1) per relation regardless of size.
package stats

import (
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// sampleCap bounds the number of rows scanned per relation. All statistics
// are exact at or below the cap; above it, Distinct extrapolates and
// Min/Max bound the sampled prefix.
const sampleCap = 1024

// Col holds the statistics of one column.
type Col struct {
	// Distinct is the (estimated) number of distinct values; exact when the
	// relation has at most sampleCap rows.
	Distinct int
	// MaxFreq is the (estimated) multiplicity of the column's most frequent
	// value — the worst-case fanout of an index probe on this column alone.
	// Exact at or below sampleCap rows; extrapolated like Distinct above it.
	// It feeds plan.WorstCost, the skew-aware backtracker bound the
	// worst-case-optimal join gate compares against the AGM estimate.
	MaxFreq int
	// Min and Max bound the column's values over the sampled prefix (exact
	// when the relation has at most sampleCap rows; both zero for empty
	// relations). No engine consumes them yet — they are part of the stats
	// surface for range-based selectivity (comparison atoms) and cost two
	// comparisons per sampled value to maintain.
	Min, Max relation.Value
}

// Rel holds the statistics of one relation snapshot.
type Rel struct {
	Rows int
	Cols []Col
}

// Of computes statistics for r with a single pass over at most sampleCap
// tuples.
func Of(r *relation.Relation) *Rel {
	w := r.Width()
	s := &Rel{Rows: r.Len(), Cols: make([]Col, w)}
	if r.Len() == 0 || w == 0 {
		return s
	}
	sample := r.Len()
	if sample > sampleCap {
		sample = sampleCap
	}
	sets := make([]*relation.TupleSet, w)
	counts := make([]map[relation.Value]int, w)
	for c := range sets {
		sets[c] = relation.NewTupleSetSized(1, sample)
		counts[c] = make(map[relation.Value]int, sample)
	}
	first := r.Row(0)
	for c := range s.Cols {
		s.Cols[c].Min, s.Cols[c].Max = first[c], first[c]
	}
	buf := make([]relation.Value, 1)
	for i := 0; i < sample; i++ {
		row := r.Row(i)
		for c, v := range row {
			if v < s.Cols[c].Min {
				s.Cols[c].Min = v
			}
			if v > s.Cols[c].Max {
				s.Cols[c].Max = v
			}
			buf[0] = v
			sets[c].Add(buf)
			counts[c][v]++
		}
	}
	for c := range s.Cols {
		d := sets[c].Len()
		if r.Len() > sample && d*2 >= sample {
			// High-cardinality column: extrapolate the sample density.
			d = int(float64(d) * float64(r.Len()) / float64(sample))
			if d > r.Len() {
				d = r.Len()
			}
		}
		s.Cols[c].Distinct = d
		mf := 0
		for _, n := range counts[c] {
			if n > mf {
				mf = n
			}
		}
		if r.Len() > sample {
			// MaxFreq is a worst-case bound, so extrapolate pessimistically:
			// assume the sampled skew holds across the whole relation.
			mf = int(float64(mf) * float64(r.Len()) / float64(sample))
			if mf > r.Len() {
				mf = r.Len()
			}
		}
		s.Cols[c].MaxFreq = mf
	}
	return s
}

// For returns the statistics of db's relation name, cached on the database.
// DB.Set invalidates the cache; a relation grown in place (Datalog's
// append-only IDB tables and swapped deltas) is revalidated against its
// current row count, so each semi-naive round recomputes against current
// sizes. Safe for concurrent callers (the memo is mutex-guarded and the
// derivation is deterministic).
func For(db *query.DB, name string) *Rel {
	r := db.MustRel(name)
	if v, ok := db.Memo(name); ok {
		if s, ok := v.(*Rel); ok && s.Rows == r.Len() {
			return s
		}
	}
	s := Of(r)
	db.SetMemo(name, s)
	return s
}
