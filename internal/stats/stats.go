// Package stats computes per-relation column statistics — cardinality,
// per-column distinct counts, and value ranges — and caches them on the
// database. They are the inputs to the cost model in internal/plan: every
// engine's join-order and join-tree decision is driven by these numbers
// instead of per-engine ad-hoc heuristics.
//
// Each column is scanned in place through the relation's columnar views
// (ColNarrow/ColWide) — a contiguous slice of 4-byte codes or 8-byte
// values, counted in a map keyed by the value directly, so no string keys,
// no row materialization, and no per-tuple allocation beyond the count
// maps. Relations larger than sampleCap rows
// are summarized from a deterministic prefix sample — a column whose
// distinct sample is half-saturated or more (mostly-unique values)
// extrapolates linearly, anything else is treated as saturated and keeps
// the sample count, and Min/Max bound the sampled prefix. The planner only
// needs relative magnitudes, and bounding the whole scan by the sample
// keeps statistics collection O(1) per relation regardless of size.
package stats

import (
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// sampleCap bounds the number of rows scanned per relation. All statistics
// are exact at or below the cap; above it, Distinct extrapolates and
// Min/Max bound the sampled prefix.
const sampleCap = 1024

// Col holds the statistics of one column.
type Col struct {
	// Distinct is the (estimated) number of distinct values; exact when the
	// relation has at most sampleCap rows.
	Distinct int
	// MaxFreq is the (estimated) multiplicity of the column's most frequent
	// value — the worst-case fanout of an index probe on this column alone.
	// Exact at or below sampleCap rows; extrapolated like Distinct above it.
	// It feeds plan.WorstCost, the skew-aware backtracker bound the
	// worst-case-optimal join gate compares against the AGM estimate.
	MaxFreq int
	// Min and Max bound the column's values over the sampled prefix (exact
	// when the relation has at most sampleCap rows; both zero for empty
	// relations). No engine consumes them yet — they are part of the stats
	// surface for range-based selectivity (comparison atoms) and cost two
	// comparisons per sampled value to maintain.
	Min, Max relation.Value
}

// Rel holds the statistics of one relation snapshot.
type Rel struct {
	Rows int
	Cols []Col
}

// Of computes statistics for r one column at a time: each column is a
// contiguous slice (4-byte codes when narrow), so the sampled prefix is
// scanned in place with no row materialization. Semantics are unchanged
// from the row-at-a-time version — same sampleCap, same extrapolation.
func Of(r *relation.Relation) *Rel {
	w := r.Width()
	s := &Rel{Rows: r.Len(), Cols: make([]Col, w)}
	if r.Len() == 0 || w == 0 {
		return s
	}
	sample := r.Len()
	if sample > sampleCap {
		sample = sampleCap
	}
	for c := 0; c < w; c++ {
		col := &s.Cols[c]
		var distinct, maxFreq int
		if nv := r.ColNarrow(c); nv != nil {
			counts := make(map[int32]int, sample)
			col.Min, col.Max = relation.Value(nv[0]), relation.Value(nv[0])
			for _, code := range nv[:sample] {
				v := relation.Value(code)
				if v < col.Min {
					col.Min = v
				}
				if v > col.Max {
					col.Max = v
				}
				counts[code]++
			}
			distinct = len(counts)
			for _, n := range counts {
				if n > maxFreq {
					maxFreq = n
				}
			}
		} else {
			wv := r.ColWide(c)
			counts := make(map[relation.Value]int, sample)
			col.Min, col.Max = wv[0], wv[0]
			for _, v := range wv[:sample] {
				if v < col.Min {
					col.Min = v
				}
				if v > col.Max {
					col.Max = v
				}
				counts[v]++
			}
			distinct = len(counts)
			for _, n := range counts {
				if n > maxFreq {
					maxFreq = n
				}
			}
		}
		if r.Len() > sample && distinct*2 >= sample {
			// High-cardinality column: extrapolate the sample density.
			distinct = int(float64(distinct) * float64(r.Len()) / float64(sample))
			if distinct > r.Len() {
				distinct = r.Len()
			}
		}
		col.Distinct = distinct
		if r.Len() > sample {
			// MaxFreq is a worst-case bound, so extrapolate pessimistically:
			// assume the sampled skew holds across the whole relation.
			maxFreq = int(float64(maxFreq) * float64(r.Len()) / float64(sample))
			if maxFreq > r.Len() {
				maxFreq = r.Len()
			}
		}
		col.MaxFreq = maxFreq
	}
	return s
}

// For returns the statistics of db's relation name, cached on the database.
// DB.Set invalidates the cache; a relation grown in place (Datalog's
// append-only IDB tables and swapped deltas) is revalidated against its
// current row count, so each semi-naive round recomputes against current
// sizes. Safe for concurrent callers (the memo is mutex-guarded and the
// derivation is deterministic).
func For(db *query.DB, name string) *Rel {
	r := db.MustRel(name)
	if v, ok := db.Memo(name); ok {
		if s, ok := v.(*Rel); ok && s.Rows == r.Len() {
			return s
		}
	}
	s := Of(r)
	db.SetMemo(name, s)
	return s
}
