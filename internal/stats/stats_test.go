package stats

import (
	"testing"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

func TestOfExactSmall(t *testing.T) {
	r := query.Table(2,
		[]relation.Value{1, 10},
		[]relation.Value{2, 10},
		[]relation.Value{3, 20},
		[]relation.Value{1, 30},
	)
	s := Of(r)
	if s.Rows != 4 {
		t.Fatalf("Rows = %d, want 4", s.Rows)
	}
	if s.Cols[0].Distinct != 3 || s.Cols[1].Distinct != 3 {
		t.Fatalf("Distinct = %d/%d, want 3/3", s.Cols[0].Distinct, s.Cols[1].Distinct)
	}
	if s.Cols[0].Min != 1 || s.Cols[0].Max != 3 {
		t.Fatalf("col0 range = [%d,%d], want [1,3]", s.Cols[0].Min, s.Cols[0].Max)
	}
	if s.Cols[1].Min != 10 || s.Cols[1].Max != 30 {
		t.Fatalf("col1 range = [%d,%d], want [10,30]", s.Cols[1].Min, s.Cols[1].Max)
	}
}

func TestOfEmptyAndZeroWidth(t *testing.T) {
	if s := Of(query.NewTable(2)); s.Rows != 0 || len(s.Cols) != 2 {
		t.Fatalf("empty: %+v", s)
	}
	if s := Of(relation.NewBool(true)); s.Rows != 1 || len(s.Cols) != 0 {
		t.Fatalf("bool: %+v", s)
	}
}

// Above the sample cap, a mostly-unique column must extrapolate to roughly
// its true cardinality and a low-cardinality column must stay near its true
// (small) count; both stay within [sample count, Rows].
func TestOfSampledEstimates(t *testing.T) {
	n := 8 * sampleCap
	r := query.NewTable(2)
	for i := 0; i < n; i++ {
		r.Append(relation.Value(i), relation.Value(i%7))
	}
	s := Of(r)
	if s.Rows != n {
		t.Fatalf("Rows = %d, want %d", s.Rows, n)
	}
	if got := s.Cols[0].Distinct; got != n {
		t.Fatalf("unique column estimate = %d, want %d (linear extrapolation)", got, n)
	}
	if got := s.Cols[1].Distinct; got != 7 {
		t.Fatalf("7-value column estimate = %d, want 7 (saturated sample)", got)
	}
	// The scan is bounded by the sample, so Min/Max bound the prefix only.
	if s.Cols[0].Min != 0 || s.Cols[0].Max != relation.Value(sampleCap-1) {
		t.Fatalf("min/max must bound the sampled prefix: [%d,%d]", s.Cols[0].Min, s.Cols[0].Max)
	}
}

// Pins the sampled-vs-exact contract on a relation above the cap, on both
// column representations: the narrow (int32-coded) column and a wide column
// (values past the int32 range) must produce the same estimates they would
// row-at-a-time — exact distinct for a saturated low-cardinality column,
// linear extrapolation for a mostly-unique one — and the exact counts are
// recomputed here by brute force rather than trusted from Of.
func TestOfSampledVsExactDistinct(t *testing.T) {
	const wideBase = relation.Value(1) << 40 // force the wide representation
	n := 3*sampleCap + 17                    // >1024 rows, not a cap multiple
	r := query.NewTable(3)
	for i := 0; i < n; i++ {
		r.Append(
			relation.Value(i%13),          // narrow, low cardinality
			relation.Value(i),             // narrow, unique
			wideBase+relation.Value(i%13), // wide, low cardinality
		)
	}
	exact := make([]map[relation.Value]bool, 3)
	for c := range exact {
		exact[c] = make(map[relation.Value]bool)
		for i := 0; i < r.Len(); i++ {
			exact[c][r.At(c, i)] = true
		}
	}
	if r.ColNarrow(0) == nil || r.ColNarrow(2) != nil {
		t.Fatalf("representation: col0 narrow=%v col2 narrow=%v, want true/false",
			r.ColNarrow(0) != nil, r.ColNarrow(2) != nil)
	}
	s := Of(r)
	// Low-cardinality columns saturate the sample: sampled == exact.
	if got := s.Cols[0].Distinct; got != len(exact[0]) {
		t.Fatalf("narrow low-card sampled distinct = %d, exact = %d", got, len(exact[0]))
	}
	if got := s.Cols[2].Distinct; got != len(exact[2]) {
		t.Fatalf("wide low-card sampled distinct = %d, exact = %d", got, len(exact[2]))
	}
	// The unique column extrapolates linearly: sample density 1 scales to
	// Rows, matching the exact count here.
	if got := s.Cols[1].Distinct; got != len(exact[1]) {
		t.Fatalf("unique column sampled distinct = %d, exact = %d", got, len(exact[1]))
	}
	// Cross-check against an exact computation on the full relation (no
	// sampling path: trim to the cap).
	small := r.Gather(func() []int32 {
		sel := make([]int32, sampleCap)
		for i := range sel {
			sel[i] = int32(i)
		}
		return sel
	}())
	se := Of(small)
	for c := 0; c < 3; c++ {
		ex := make(map[relation.Value]bool)
		for i := 0; i < small.Len(); i++ {
			ex[small.At(c, i)] = true
		}
		if se.Cols[c].Distinct != len(ex) {
			t.Fatalf("col %d at-cap distinct = %d, exact = %d", c, se.Cols[c].Distinct, len(ex))
		}
	}
}

func TestForCachesAndInvalidates(t *testing.T) {
	db := query.NewDB()
	db.Set("R", query.Table(1, []relation.Value{1}, []relation.Value{2}))
	s1 := For(db, "R")
	if s1.Rows != 2 || s1.Cols[0].Distinct != 2 {
		t.Fatalf("initial stats: %+v", s1)
	}
	if s2 := For(db, "R"); s2 != s1 {
		t.Fatal("second For must return the cached pointer")
	}
	// Set invalidates.
	db.Set("R", query.Table(1, []relation.Value{1}, []relation.Value{2}, []relation.Value{2}))
	if s3 := For(db, "R"); s3 == s1 || s3.Rows != 3 || s3.Cols[0].Distinct != 2 {
		t.Fatalf("stats after Set: %+v", s3)
	}
	// In-place growth (the Datalog pattern) revalidates by row count.
	db.MustRel("R").Append(relation.Value(5))
	if s4 := For(db, "R"); s4.Rows != 4 || s4.Cols[0].Distinct != 3 {
		t.Fatalf("stats after in-place Append: %+v", s4)
	}
}

// MaxFreq is the worst-case probe fanout: exact below the cap, and
// extrapolated pessimistically (sampled skew assumed global) above it.
func TestOfMaxFreq(t *testing.T) {
	r := query.Table(2,
		[]relation.Value{1, 10},
		[]relation.Value{2, 10},
		[]relation.Value{3, 20},
		[]relation.Value{1, 10},
	)
	s := Of(r)
	if s.Cols[0].MaxFreq != 2 {
		t.Fatalf("col0 MaxFreq = %d, want 2 (value 1 twice)", s.Cols[0].MaxFreq)
	}
	if s.Cols[1].MaxFreq != 3 {
		t.Fatalf("col1 MaxFreq = %d, want 3 (value 10 thrice)", s.Cols[1].MaxFreq)
	}

	// Above the cap: a hub column whose sampled half is one value must
	// extrapolate to about half the relation; a unique column to about
	// Rows/sample.
	n := sampleCap * 4
	big := query.NewTable(2)
	for i := 0; i < n; i++ {
		hub := relation.Value(0)
		if i%2 == 1 {
			hub = relation.Value(i)
		}
		big.Append(hub, relation.Value(i))
	}
	s = Of(big)
	if got := s.Cols[0].MaxFreq; got < n/3 || got > n {
		t.Fatalf("hub column MaxFreq = %d, want about %d", got, n/2)
	}
	if got := s.Cols[1].MaxFreq; got != n/sampleCap {
		t.Fatalf("unique column MaxFreq = %d, want %d (1 scaled by Rows/sample)", got, n/sampleCap)
	}
}
