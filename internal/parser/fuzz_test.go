package parser

import (
	"testing"
)

// FuzzParseQuery: the rule-syntax parser must never panic on arbitrary
// input, and any input it accepts must survive a render/re-parse loop —
// the rendered text (the plan cache's fingerprint, CQ.String) re-parses to
// a structurally identical query, and rendering is a fixpoint after one
// round trip (the first re-parse canonicalizes variable numbering to
// first-occurrence order; after that the text must be stable).
func FuzzParseQuery(f *testing.F) {
	f.Add("G(x) :- E(x,y).")
	f.Add("G(e) :- EP(e,p), EP(e,q), p != q.")
	f.Add("G(x,z) :- R0(x,y), R1(y,z), x != z, y < 7.")
	f.Add("G() :- E(x,x).")
	f.Add("G(7,x) :- E(x,\"sym\"), x <= 3.")
	f.Add("G(x) :- E(x,y), E(y,z), E(z,x), x != 0.")
	f.Add("G(x) :- ")
	f.Add("G(x :- E(x)")
	f.Add("((((((((")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		q, err := New().ParseCQ(src) // must not panic, whatever the input
		if err != nil {
			return
		}
		s1 := q.String()
		q2, err := New().ParseCQ(s1)
		if err != nil {
			t.Fatalf("accepted input %q rendered to %q, which does not re-parse: %v", src, s1, err)
		}
		if len(q2.Head) != len(q.Head) || len(q2.Atoms) != len(q.Atoms) ||
			len(q2.Ineqs) != len(q.Ineqs) || len(q2.Cmps) != len(q.Cmps) {
			t.Fatalf("round trip of %q changed structure: %q -> head %d/%d atoms %d/%d ineqs %d/%d cmps %d/%d",
				src, s1, len(q.Head), len(q2.Head), len(q.Atoms), len(q2.Atoms),
				len(q.Ineqs), len(q2.Ineqs), len(q.Cmps), len(q2.Cmps))
		}
		for i := range q.Atoms {
			if q2.Atoms[i].Rel != q.Atoms[i].Rel || len(q2.Atoms[i].Args) != len(q.Atoms[i].Args) {
				t.Fatalf("round trip of %q changed atom %d: %v vs %v", src, i, q.Atoms[i], q2.Atoms[i])
			}
		}
		s2 := q2.String()
		q3, err := New().ParseCQ(s2)
		if err != nil {
			t.Fatalf("canonical render %q does not re-parse: %v", s2, err)
		}
		if s3 := q3.String(); s3 != s2 {
			t.Fatalf("render is not a fixpoint: %q -> %q", s2, s3)
		}
	})
}
