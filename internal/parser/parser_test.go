package parser

import (
	"strings"
	"testing"

	"pyquery/internal/datalog"
	"pyquery/internal/eval"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

func TestParseCQBasic(t *testing.T) {
	p := New()
	q, err := p.ParseCQ(`G(x, y) :- R(x, z), S(z, y).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 2 || len(q.Atoms) != 2 {
		t.Fatalf("shape: %v", q)
	}
	if q.Atoms[0].Rel != "R" || q.Atoms[1].Rel != "S" {
		t.Fatalf("relations: %v", q)
	}
	// x, y, z get ids 0, 1, 2 in order of appearance.
	if !q.Head[0].Equal(query.V(0)) || !q.Head[1].Equal(query.V(1)) {
		t.Fatalf("head vars: %v", q.Head)
	}
	if q.VarNames[2] != "z" {
		t.Fatalf("var names: %v", q.VarNames)
	}
}

func TestParseCQConstraintsAndConstants(t *testing.T) {
	p := New()
	q, err := p.ParseCQ(`G(e) :- EP(e, p), EP(e, q), p != q, e != "bob", p < 100, 5 <= q`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ineqs) != 2 || len(q.Cmps) != 2 {
		t.Fatalf("constraints: %v / %v", q.Ineqs, q.Cmps)
	}
	if !q.Ineqs[0].YIsVar || q.Ineqs[1].YIsVar {
		t.Fatalf("ineq forms: %v", q.Ineqs)
	}
	if q.Ineqs[1].C < StringBase {
		t.Fatal("string constant must intern above StringBase")
	}
	if q.Cmps[0].Right.Const != 100 || !q.Cmps[0].Strict {
		t.Fatalf("cmp1: %v", q.Cmps[0])
	}
	if q.Cmps[1].Left.Const != 5 || q.Cmps[1].Strict {
		t.Fatalf("cmp2: %v", q.Cmps[1])
	}
}

func TestParseCQBooleanAndNegatives(t *testing.T) {
	p := New()
	q, err := p.ParseCQ(`G() :- E(x, -3).`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsBoolean() || q.Atoms[0].Args[1].Const != -3 {
		t.Fatalf("boolean/negative: %v", q)
	}
}

func TestParseCQErrors(t *testing.T) {
	p := New()
	for _, src := range []string{
		``,
		`G(x)`,               // no body
		`G(x) :- R(x`,        // unclosed paren
		`G(x) :- R(x), y !`,  // bad operator
		`G(x) :- exists(x)`,  // reserved word as relation
		`G(x) :- R(x) extra`, // trailing garbage
		`G(x) :- R(x), "a" < `,
		`G(x) :- R(:)`,
	} {
		if _, err := p.ParseCQ(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestGroundIneqBecomesMarker(t *testing.T) {
	p := New()
	q, err := p.ParseCQ(`G() :- R(x), 3 != 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Cmps) != 1 || q.Cmps[0].Holds(0, 0) {
		t.Fatalf("ground-false ≠ should become unsatisfiable marker: %v", q)
	}
	// Ground-true ≠ becomes a trivially-true ground comparison (3 < 4): it
	// cannot vanish, or a body holding only ground-true constraints would
	// render empty and stop re-parsing.
	q2, err := p.ParseCQ(`G() :- R(x), 3 != 4`)
	if err != nil || len(q2.Ineqs) != 0 || len(q2.Cmps) != 1 {
		t.Fatalf("ground-true ≠ should become a comparison: %v %v", q2, err)
	}
	if c := q2.Cmps[0]; c.Left.Const != 3 || c.Right.Const != 4 || !c.Strict {
		t.Fatalf("want trivially-true 3 < 4 marker, got %v", c)
	}
	// A body consisting only of a ground-true ≠ must stay renderable and
	// re-parseable (it is the plan-cache fingerprint).
	q3, err := p.ParseCQ(`G(0) :- 0 != 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().ParseCQ(q3.String()); err != nil {
		t.Fatalf("render %q does not re-parse: %v", q3.String(), err)
	}
}

func TestParseFOQuery(t *testing.T) {
	p := New()
	q, err := p.ParseFOQuery(`{ (x) | forall y (!E(x, y) | exists z E(y, z)) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 1 {
		t.Fatalf("head: %v", q.Head)
	}
	if _, ok := q.Body.(query.Forall); !ok {
		t.Fatalf("body shape: %T", q.Body)
	}
	// Evaluate to make sure it is well-formed end to end.
	db := query.NewDB()
	db.Set("E", query.Table(2, []relation.Value{0, 1}, []relation.Value{1, 0}))
	res, err := eval.FirstOrder(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("eval: %v", res)
	}
}

func TestParseFOPrecedence(t *testing.T) {
	p := New()
	// & binds tighter than |: a|b&c = a | (b&c).
	q, err := p.ParseFOQuery(`{ () | E(1,1) | E(2,2) & E(3,3) }`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.Body.(query.Or)
	if !ok || len(or.Subs) != 2 {
		t.Fatalf("precedence: %v", q.Body)
	}
	if _, ok := or.Subs[1].(query.And); !ok {
		t.Fatalf("precedence: second disjunct should be a conjunction: %v", or.Subs[1])
	}
	// true/false literals.
	q2, err := p.ParseFOQuery(`{ () | true & !false }`)
	if err != nil {
		t.Fatal(err)
	}
	db := query.NewDB()
	ok2, err := eval.FirstOrderBool(q2, db)
	if err != nil || !ok2 {
		t.Fatalf("true & !false: %v %v", ok2, err)
	}
}

func TestParseFOErrors(t *testing.T) {
	p := New()
	for _, src := range []string{
		`{ x | E(x) }`,        // head must be parenthesized
		`{ (x) | }`,           // empty body
		`{ (x) | E(x) `,       // unclosed brace
		`{ (x) | E(x) } junk`, // trailing
		`{ (x) | exists E(x) }`,
	} {
		if _, err := p.ParseFOQuery(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseProgram(t *testing.T) {
	p := New()
	prog, db, err := p.ParseProgram(`
		% a little graph
		E(1,2). E(2,3). E(3,4).
		Reach(x,y) :- E(x,y).
		Reach(x,z) :- Reach(x,y), E(y,z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Goal != "Reach" || len(prog.Rules) != 2 {
		t.Fatalf("program: %+v", prog)
	}
	if db.MustRel("E").Len() != 3 {
		t.Fatalf("facts: %v", db.MustRel("E"))
	}
	goal, _, err := datalog.EvalGoal(prog, db, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if goal.Len() != 6 {
		t.Fatalf("closure size: %d", goal.Len())
	}
}

func TestParseProgramGoalDirectiveAndErrors(t *testing.T) {
	p := New()
	prog, _, err := p.ParseProgram(`
		T(x) :- E(x, y).
		U(x) :- T(x).
		goal U.
	`)
	if err != nil || prog.Goal != "U" {
		t.Fatalf("goal directive: %v %v", prog, err)
	}
	for _, src := range []string{
		`E(x).`,         // fact with variable
		`E(1). E(1,2).`, // arity conflict
		`T(x) :- .`,     // empty body
		`T(x)`,          // missing period
	} {
		if _, _, err := p.ParseProgram(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestSymbolsRoundTrip(t *testing.T) {
	s := NewSymbols()
	a := s.Value("alice")
	n := s.Value("42")
	if n != 42 {
		t.Fatalf("numeric token: %d", n)
	}
	if a < StringBase {
		t.Fatal("symbol below StringBase")
	}
	if s.String(a) != "alice" || s.String(n) != "42" {
		t.Fatalf("round trip: %q %q", s.String(a), s.String(n))
	}
	if s.Value("alice") != a {
		t.Fatal("interning unstable")
	}
}

func TestLoadCSV(t *testing.T) {
	db := query.NewDB()
	syms := NewSymbols()
	err := LoadCSV(db, "EP", strings.NewReader("alice,100\nbob,100\nalice,101\nalice,100\n"), syms)
	if err != nil {
		t.Fatal(err)
	}
	r := db.MustRel("EP")
	if r.Len() != 3 || r.Width() != 2 {
		t.Fatalf("csv: %v", r)
	}
	alice, _ := syms.d.Lookup("alice")
	if !r.Contains([]relation.Value{StringBase + alice, 100}) {
		t.Fatalf("mixed symbol/number row missing: %v", r)
	}
	out := FormatRelation(r, syms)
	if !strings.Contains(out, "alice,100") {
		t.Fatalf("format: %q", out)
	}
	// Ragged rows rejected.
	if err := LoadCSV(db, "Bad", strings.NewReader("a,b\nc\n"), syms); err == nil {
		t.Fatal("ragged csv accepted")
	}
	// Empty CSV → empty 0-ary relation.
	if err := LoadCSV(db, "Empty", strings.NewReader(""), syms); err != nil {
		t.Fatal(err)
	}
	if db.MustRel("Empty").Len() != 0 {
		t.Fatal("empty csv should make empty relation")
	}
}

// Integer fields that land inside the symbol-interning band must be
// rejected at load time: they would render back as symbol names (or offset
// by StringBase), the long-documented silent collision.
func TestLoadCSVCollidingLiteral(t *testing.T) {
	db := query.NewDB()
	syms := NewSymbols()
	in := "alice,1099511627777\n" // 2^40 + 1
	err := LoadCSV(db, "EP", strings.NewReader(in), syms)
	if err == nil || !strings.Contains(err.Error(), "collides with the symbol-interning range") {
		t.Fatalf("colliding literal accepted: %v", err)
	}
	// Just below the band still loads.
	if err := LoadCSV(db, "OK", strings.NewReader("alice,1099511627775\n"), syms); err != nil {
		t.Fatal(err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	p := New()
	q, err := p.ParseCQ(`
		G(x) :- % head comment
			R(x, y),   // C-style comment
			x != y.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 1 || len(q.Ineqs) != 1 {
		t.Fatalf("comment handling: %v", q)
	}
}

func TestParsedQueryRunsThroughEngines(t *testing.T) {
	p := New()
	q, err := p.ParseCQ(`G(e) :- EP(e, p1), EP(e, p2), p1 != p2.`)
	if err != nil {
		t.Fatal(err)
	}
	db := query.NewDB()
	db.Set("EP", query.Table(2,
		[]relation.Value{1, 100}, []relation.Value{1, 101}, []relation.Value{2, 100}))
	res, err := eval.Conjunctive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Row(0)[0] != 1 {
		t.Fatalf("parsed query answer: %v", res)
	}
}

// TestRoundTripCQ checks that a query printed by CQ.String parses back to a
// structurally identical query (variable names xN map to the same ids).
func TestRoundTripCQ(t *testing.T) {
	p := New()
	q, err := p.ParseCQ(`G(a, b) :- R(a, c), S(c, b), a != b, c != 5, a < b, 3 <= c.`)
	if err != nil {
		t.Fatal(err)
	}
	p2 := New()
	q2, err := p2.ParseCQ(q.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip unstable:\n%q\n%q", q.String(), q2.String())
	}
	if len(q2.Atoms) != len(q.Atoms) || len(q2.Ineqs) != len(q.Ineqs) || len(q2.Cmps) != len(q.Cmps) {
		t.Fatalf("shape changed: %v vs %v", q, q2)
	}
}
