package parser

import (
	"fmt"
	"strconv"
	"strings"

	"pyquery/internal/datalog"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// StringBase is where interned symbolic constants live in the value space;
// numeric literals stay below it, so "42" the number and "alice" the symbol
// can never collide and numeric comparisons keep their meaning.
const StringBase = relation.Value(1) << 40

// Symbols interns symbolic constants for one database/query universe.
type Symbols struct{ d *relation.Dict }

// NewSymbols returns an empty symbol table. The underlying dictionary is
// banded to [0, StringBase) so interned ids can never overflow past
// 2·StringBase into undefined territory.
func NewSymbols() *Symbols {
	d := relation.NewDict()
	d.SetMax(StringBase)
	return &Symbols{d: d}
}

// Value converts a literal token: integers map to themselves, anything else
// is interned above StringBase. Integer literals that land inside the
// symbol band would be rendered back as unrelated symbols; Literal detects
// them — Value keeps the historical silent behaviour for callers that
// guarantee small literals.
func (s *Symbols) Value(tok string) relation.Value {
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return relation.Value(n)
	}
	return StringBase + s.d.ID(tok)
}

// Literal is Value with the strict collision guard for data loading: an
// integer field ≥ StringBase shares the value space with interned symbols
// (it would render back as a symbol name, or offset by StringBase), so it
// is rejected instead of silently misrendering. Symbolic round trips are
// unaffected — FormatRelation renders symbols by name, never as in-band
// numbers.
func (s *Symbols) Literal(tok string) (relation.Value, error) {
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		if relation.Value(n) >= StringBase {
			return 0, fmt.Errorf("parser: integer literal %s collides with the symbol-interning range [%d,∞) — rescale the data or quote it as a symbol", tok, StringBase)
		}
		return relation.Value(n), nil
	}
	return StringBase + s.d.ID(tok), nil
}

// String renders a value: interned symbols by name, numbers numerically.
func (s *Symbols) String(v relation.Value) string {
	if v >= StringBase {
		return s.d.String(v - StringBase)
	}
	return strconv.FormatInt(int64(v), 10)
}

// Parser parses queries and programs, accumulating a variable-name table
// shared across calls so that multi-query sessions agree on ids.
type Parser struct {
	Syms *Symbols
	vars map[string]query.Var
	// names[v] is the source name of variable v.
	names []string
}

// New returns a parser with a fresh symbol table.
func New() *Parser { return NewWithSymbols(NewSymbols()) }

// NewWithSymbols returns a parser sharing an existing symbol table.
func NewWithSymbols(s *Symbols) *Parser {
	return &Parser{Syms: s, vars: make(map[string]query.Var)}
}

// VarNames returns the variable-name table accumulated so far.
func (p *Parser) VarNames() []string { return p.names }

func (p *Parser) varID(name string) query.Var {
	if v, ok := p.vars[name]; ok {
		return v
	}
	v := query.Var(len(p.names))
	p.vars[name] = v
	p.names = append(p.names, name)
	return v
}

type tokenStream struct {
	toks []token
	i    int
}

func (ts *tokenStream) peek() token { return ts.toks[ts.i] }
func (ts *tokenStream) next() token {
	t := ts.toks[ts.i]
	if t.kind != tokEOF {
		ts.i++
	}
	return t
}

func (ts *tokenStream) expect(k tokenKind) (token, error) {
	t := ts.next()
	if t.kind != k {
		return t, fmt.Errorf("parser: expected %v, found %v %q at offset %d", k, t.kind, t.text, t.pos)
	}
	return t, nil
}

// ParseCQ parses rule notation:
//
//	G(x, y) :- R(x, z), S(z, y), x != y, z != "lyon", x < 10, x <= y.
//
// Identifiers are variables; numbers and quoted strings are constants. The
// head may be empty — G() — for Boolean queries. The trailing period is
// optional.
func (p *Parser) ParseCQ(src string) (*query.CQ, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	ts := &tokenStream{toks: toks}
	q := &query.CQ{}

	// Head.
	if _, err := ts.expect(tokIdent); err != nil {
		return nil, err
	}
	if _, err := ts.expect(tokLParen); err != nil {
		return nil, err
	}
	if ts.peek().kind != tokRParen {
		for {
			t, err := p.parseTerm(ts)
			if err != nil {
				return nil, err
			}
			q.Head = append(q.Head, t)
			if ts.peek().kind != tokComma {
				break
			}
			ts.next()
		}
	}
	if _, err := ts.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := ts.expect(tokTurnstile); err != nil {
		return nil, err
	}

	// Body: comma-separated atoms / constraints.
	for {
		if err := p.parseBodyItem(ts, q); err != nil {
			return nil, err
		}
		if ts.peek().kind == tokComma {
			ts.next()
			continue
		}
		break
	}
	if ts.peek().kind == tokDot {
		ts.next()
	}
	if t := ts.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("parser: trailing input %q at offset %d", t.text, t.pos)
	}
	q.VarNames = p.names
	return q, nil
}

func (p *Parser) parseBodyItem(ts *tokenStream, q *query.CQ) error {
	first, err := p.parseTermOrAtomStart(ts, q)
	if err != nil {
		return err
	}
	if first == nil {
		return nil // it was a relational atom, already appended
	}
	// Constraint: term op term.
	op := ts.next()
	switch op.kind {
	case tokNeq:
		second, err := p.parseTerm(ts)
		if err != nil {
			return err
		}
		return appendIneq(q, *first, second)
	case tokLt, tokLe:
		second, err := p.parseTerm(ts)
		if err != nil {
			return err
		}
		q.Cmps = append(q.Cmps, query.Cmp{Left: *first, Right: second, Strict: op.kind == tokLt})
		return nil
	}
	return fmt.Errorf("parser: expected '!=', '<' or '<=' after term, found %v at offset %d", op.kind, op.pos)
}

// parseTermOrAtomStart distinguishes a relational atom R(…) from the left
// term of a constraint. It returns (nil, nil) after consuming an atom, or
// the parsed left-hand term.
func (p *Parser) parseTermOrAtomStart(ts *tokenStream, q *query.CQ) (*query.Term, error) {
	t := ts.peek()
	if t.kind == tokIdent && ts.toks[ts.i+1].kind == tokLParen {
		atom, err := p.parseAtom(ts)
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, atom)
		return nil, nil
	}
	term, err := p.parseTerm(ts)
	if err != nil {
		return nil, err
	}
	return &term, nil
}

func appendIneq(q *query.CQ, l, r query.Term) error {
	if l.IsParam() || r.IsParam() {
		// Ineq atoms carry variables and constants only (query.Ineq);
		// reject rather than miscompile a placeholder as the constant 0.
		return fmt.Errorf("parser: parameters are not supported in '!=' atoms (use them in relational atoms, the head, or comparisons)")
	}
	switch {
	case l.IsVar && r.IsVar:
		q.Ineqs = append(q.Ineqs, query.NeqVars(l.Var, r.Var))
	case l.IsVar:
		q.Ineqs = append(q.Ineqs, query.NeqConst(l.Var, r.Const))
	case r.IsVar:
		q.Ineqs = append(q.Ineqs, query.NeqConst(r.Var, l.Const))
	default:
		if l.Const == r.Const {
			// Ground-false inequality: encode as unsatisfiable comparison.
			q.Cmps = append(q.Cmps, query.Lt(query.C(0), query.C(0)))
		} else {
			// Ground-true inequality: keep a trivially-true comparison
			// rather than dropping the item — a body consisting only of
			// ground-true constraints must stay non-empty so the rendered
			// rule (the plan-cache fingerprint) re-parses.
			lo, hi := l.Const, r.Const
			if hi < lo {
				lo, hi = hi, lo
			}
			q.Cmps = append(q.Cmps, query.Lt(query.C(lo), query.C(hi)))
		}
	}
	return nil
}

func (p *Parser) parseAtom(ts *tokenStream) (query.Atom, error) {
	name, err := ts.expect(tokIdent)
	if err != nil {
		return query.Atom{}, err
	}
	if isKeyword(name.text) {
		return query.Atom{}, fmt.Errorf("parser: %q is a reserved word (offset %d)", name.text, name.pos)
	}
	if _, err := ts.expect(tokLParen); err != nil {
		return query.Atom{}, err
	}
	atom := query.Atom{Rel: name.text}
	if ts.peek().kind != tokRParen {
		for {
			t, err := p.parseTerm(ts)
			if err != nil {
				return query.Atom{}, err
			}
			atom.Args = append(atom.Args, t)
			if ts.peek().kind != tokComma {
				break
			}
			ts.next()
		}
	}
	if _, err := ts.expect(tokRParen); err != nil {
		return query.Atom{}, err
	}
	return atom, nil
}

func (p *Parser) parseTerm(ts *tokenStream) (query.Term, error) {
	t := ts.next()
	switch t.kind {
	case tokIdent:
		if isKeyword(t.text) {
			return query.Term{}, fmt.Errorf("parser: %q is a reserved word (offset %d)", t.text, t.pos)
		}
		return query.V(p.varID(t.text)), nil
	case tokNumber:
		// In-band integers are accepted here on purpose: CQ.String renders
		// symbol constants numerically and that fingerprint must re-parse
		// against any symbol table (plan-cache key round trip). The collision
		// guard runs where raw data enters — Literal in the CSV loader.
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return query.Term{}, fmt.Errorf("parser: bad number %q: %v", t.text, err)
		}
		return query.C(relation.Value(n)), nil
	case tokString:
		return query.C(p.Syms.Value(t.text)), nil
	case tokParam:
		// $name placeholders make the rule a prepared-statement template;
		// they bind to constants at execution time (query.P).
		return query.P(t.text), nil
	}
	return query.Term{}, fmt.Errorf("parser: expected a term, found %v at offset %d", t.kind, t.pos)
}

// ParseFOQuery parses { (t, …) | formula } with the grammar
//
//	formula := "exists" var formula | "forall" var formula | disj
//	disj    := conj ('|' conj)*
//	conj    := unary ('&' unary)*
//	unary   := '!' unary | atom | '(' formula ')' | "true" | "false"
//
// For Boolean queries the head is ().
func (p *Parser) ParseFOQuery(src string) (*query.FOQuery, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	ts := &tokenStream{toks: toks}
	if _, err := ts.expect(tokLBrace); err != nil {
		return nil, err
	}
	q := &query.FOQuery{}
	if _, err := ts.expect(tokLParen); err != nil {
		return nil, err
	}
	if ts.peek().kind != tokRParen {
		for {
			t, err := p.parseTerm(ts)
			if err != nil {
				return nil, err
			}
			q.Head = append(q.Head, t)
			if ts.peek().kind != tokComma {
				break
			}
			ts.next()
		}
	}
	if _, err := ts.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := ts.expect(tokOr); err != nil { // the separating '|'
		return nil, err
	}
	body, err := p.parseFormula(ts)
	if err != nil {
		return nil, err
	}
	if _, err := ts.expect(tokRBrace); err != nil {
		return nil, err
	}
	if t := ts.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("parser: trailing input %q at offset %d", t.text, t.pos)
	}
	q.Body = body
	q.VarNames = p.names
	return q, nil
}

func (p *Parser) parseFormula(ts *tokenStream) (query.Formula, error) {
	t := ts.peek()
	if t.kind == tokIdent {
		switch strings.ToLower(t.text) {
		case "exists", "forall":
			ts.next()
			v, err := ts.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			sub, err := p.parseFormula(ts)
			if err != nil {
				return nil, err
			}
			if strings.ToLower(t.text) == "exists" {
				return query.Exists{V: p.varID(v.text), Sub: sub}, nil
			}
			return query.Forall{V: p.varID(v.text), Sub: sub}, nil
		}
	}
	return p.parseDisj(ts)
}

func (p *Parser) parseDisj(ts *tokenStream) (query.Formula, error) {
	left, err := p.parseConj(ts)
	if err != nil {
		return nil, err
	}
	subs := []query.Formula{left}
	for ts.peek().kind == tokOr {
		ts.next()
		next, err := p.parseConj(ts)
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return query.Or{Subs: subs}, nil
}

func (p *Parser) parseConj(ts *tokenStream) (query.Formula, error) {
	left, err := p.parseUnary(ts)
	if err != nil {
		return nil, err
	}
	subs := []query.Formula{left}
	for ts.peek().kind == tokAnd {
		ts.next()
		next, err := p.parseUnary(ts)
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return query.And{Subs: subs}, nil
}

func (p *Parser) parseUnary(ts *tokenStream) (query.Formula, error) {
	t := ts.peek()
	switch t.kind {
	case tokNot:
		ts.next()
		sub, err := p.parseUnary(ts)
		if err != nil {
			return nil, err
		}
		return query.Not{Sub: sub}, nil
	case tokLParen:
		ts.next()
		sub, err := p.parseFormula(ts)
		if err != nil {
			return nil, err
		}
		if _, err := ts.expect(tokRParen); err != nil {
			return nil, err
		}
		return sub, nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			ts.next()
			return query.And{}, nil
		case "false":
			ts.next()
			return query.Or{}, nil
		case "exists", "forall":
			return p.parseFormula(ts)
		}
		atom, err := p.parseAtom(ts)
		if err != nil {
			return nil, err
		}
		return query.FAtom{Atom: atom}, nil
	}
	return nil, fmt.Errorf("parser: expected a formula, found %v at offset %d", t.kind, t.pos)
}

// ParseProgram parses a Datalog program: a sequence of rules and ground
// facts, each terminated by a period. The goal is the head relation of the
// first rule unless a line "goal Name." appears.
//
//	E(1,2).  E(2,3).
//	Reach(x,y) :- E(x,y).
//	Reach(x,z) :- Reach(x,y), E(y,z).
//	goal Reach.
//
// Facts populate the EDB database returned alongside the program.
func (p *Parser) ParseProgram(src string) (*datalog.Program, *query.DB, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	ts := &tokenStream{toks: toks}
	prog := &datalog.Program{}
	db := query.NewDB()
	db.Dict = p.Syms.d

	for ts.peek().kind != tokEOF {
		// goal directive?
		if t := ts.peek(); t.kind == tokIdent && strings.ToLower(t.text) == "goal" &&
			ts.toks[ts.i+1].kind == tokIdent {
			ts.next()
			name, _ := ts.expect(tokIdent)
			prog.Goal = name.text
			if _, err := ts.expect(tokDot); err != nil {
				return nil, nil, err
			}
			continue
		}
		head, err := p.parseAtom(ts)
		if err != nil {
			return nil, nil, err
		}
		switch ts.peek().kind {
		case tokDot: // ground fact
			ts.next()
			row := make([]relation.Value, len(head.Args))
			for i, t := range head.Args {
				if t.IsVar {
					return nil, nil, fmt.Errorf("parser: fact %v has a variable", head)
				}
				row[i] = t.Const
			}
			rel, ok := db.Rel(head.Rel)
			if !ok {
				rel = query.NewTable(len(row))
				db.Set(head.Rel, rel)
			}
			if rel.Width() != len(row) {
				return nil, nil, fmt.Errorf("parser: fact %v conflicts with arity %d", head, rel.Width())
			}
			rel.Append(row...)
		case tokTurnstile:
			ts.next()
			rule := datalog.Rule{Head: head}
			for {
				atom, err := p.parseAtom(ts)
				if err != nil {
					return nil, nil, err
				}
				rule.Body = append(rule.Body, atom)
				if ts.peek().kind == tokComma {
					ts.next()
					continue
				}
				break
			}
			if _, err := ts.expect(tokDot); err != nil {
				return nil, nil, err
			}
			prog.Rules = append(prog.Rules, rule)
			if prog.Goal == "" {
				prog.Goal = rule.Head.Rel
			}
		default:
			t := ts.peek()
			return nil, nil, fmt.Errorf("parser: expected '.' or ':-' after %v, found %v at offset %d",
				head, t.kind, t.pos)
		}
	}
	// Dedup fact relations.
	for _, name := range db.Names() {
		db.MustRel(name).Dedup()
	}
	return prog, db, nil
}
