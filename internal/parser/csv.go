package parser

import (
	"encoding/csv"
	"fmt"
	"io"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// LoadCSV reads comma-separated rows into a relation and installs it in the
// database under name. Integer fields become numeric values; everything
// else is interned through the symbol table. All rows must have the same
// width; duplicates are removed.
func LoadCSV(db *query.DB, name string, r io.Reader, syms *Symbols) error {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	var rel *relation.Relation
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("parser: csv %q: %w", name, err)
		}
		if rel == nil {
			rel = query.NewTable(len(record))
		}
		if len(record) != rel.Width() {
			return fmt.Errorf("parser: csv %q: row with %d fields, want %d", name, len(record), rel.Width())
		}
		row := make([]relation.Value, len(record))
		for i, f := range record {
			v, err := syms.Literal(f)
			if err != nil {
				return fmt.Errorf("parser: csv %q: %w", name, err)
			}
			row[i] = v
		}
		rel.Append(row...)
	}
	if rel == nil {
		rel = query.NewTable(0)
	}
	rel.Dedup()
	db.Set(name, rel)
	return nil
}

// FormatRelation renders a relation using the symbol table, one row per
// line, for the CLIs.
func FormatRelation(r *relation.Relation, syms *Symbols) string {
	out := ""
	buf := make([]relation.Value, r.Width())
	for i := 0; i < r.Len(); i++ {
		row := r.RowTo(buf, i)
		line := ""
		for j, v := range row {
			if j > 0 {
				line += ","
			}
			line += syms.String(v)
		}
		out += line + "\n"
	}
	return out
}
