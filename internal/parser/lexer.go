// Package parser provides the textual front end: a rule-notation parser for
// conjunctive queries with ≠ and comparison atoms, a first-order formula
// parser, a Datalog program parser, and a CSV relation loader. Symbolic
// constants are interned into the numeric value space above StringBase so
// they can never collide with numeric literals (whose order the comparison
// atoms must respect).
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokParam // $name — prepared-statement placeholder
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokTurnstile // :-
	tokNeq       // !=
	tokLt        // <
	tokLe        // <=
	tokAnd       // &
	tokOr        // |
	tokNot       // !
	tokPipe      // | inside {h | body} — contextual, same as tokOr
	tokLBrace
	tokRBrace
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokParam:
		return "parameter"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokTurnstile:
		return "':-'"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokAnd:
		return "'&'"
	case tokOr, tokPipe:
		return "'|'"
	case tokNot:
		return "'!'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '%' || (c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/'):
			// Comment to end of line.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '.':
			l.emit(tokDot, ".")
		case c == '{':
			l.emit(tokLBrace, "{")
		case c == '}':
			l.emit(tokRBrace, "}")
		case c == '&':
			l.emit(tokAnd, "&")
		case c == '|':
			l.emit(tokOr, "|")
		case c == ':':
			if l.peek(1) != '-' {
				return nil, fmt.Errorf("parser: stray ':' at offset %d", l.pos)
			}
			l.emitN(tokTurnstile, ":-", 2)
		case c == '!':
			if l.peek(1) == '=' {
				l.emitN(tokNeq, "!=", 2)
			} else {
				l.emit(tokNot, "!")
			}
		case c == '<':
			if l.peek(1) == '=' {
				l.emitN(tokLe, "<=", 2)
			} else {
				l.emit(tokLt, "<")
			}
		case c == '"' || c == '\'':
			quote := c
			end := l.pos + 1
			for end < len(l.src) && l.src[end] != quote {
				end++
			}
			if end >= len(l.src) {
				return nil, fmt.Errorf("parser: unterminated string at offset %d", l.pos)
			}
			l.toks = append(l.toks, token{tokString, l.src[l.pos+1 : end], l.pos})
			l.pos = end + 1
		case c == '-' || (c >= '0' && c <= '9'):
			end := l.pos
			if c == '-' {
				end++
				if end >= len(l.src) || l.src[end] < '0' || l.src[end] > '9' {
					return nil, fmt.Errorf("parser: stray '-' at offset %d", l.pos)
				}
			}
			for end < len(l.src) && l.src[end] >= '0' && l.src[end] <= '9' {
				end++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[l.pos:end], l.pos})
			l.pos = end
		case c == '$':
			end := l.pos + 1
			if end >= len(l.src) || !isIdentStart(rune(l.src[end])) {
				return nil, fmt.Errorf("parser: '$' must start a parameter name at offset %d", l.pos)
			}
			for end < len(l.src) && isIdentPart(rune(l.src[end])) {
				end++
			}
			// The token text is the bare name; Term.String re-adds the '$'.
			l.toks = append(l.toks, token{tokParam, l.src[l.pos+1 : end], l.pos})
			l.pos = end
		case isIdentStart(rune(c)):
			end := l.pos
			for end < len(l.src) && isIdentPart(rune(l.src[end])) {
				end++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[l.pos:end], l.pos})
			l.pos = end
		default:
			return nil, fmt.Errorf("parser: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func (l *lexer) emit(k tokenKind, text string) { l.emitN(k, text, 1) }
func (l *lexer) emitN(k tokenKind, text string, n int) {
	l.toks = append(l.toks, token{k, text, l.pos})
	l.pos += n
}

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// isKeyword reports reserved identifiers of the formula syntax.
func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "exists", "forall", "true", "false":
		return true
	}
	return false
}
