package order

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pyquery/internal/eval"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

func TestConsistentChain(t *testing.T) {
	// x0 < x1 ≤ x2: consistent.
	sys := NewSystem([]query.Cmp{
		query.Lt(query.V(0), query.V(1)),
		query.Le(query.V(1), query.V(2)),
	})
	if !sys.Consistent() {
		t.Fatal("chain should be consistent")
	}
	v2v, v2c, ok := sys.ImpliedEqualities()
	if !ok || len(v2v) != 0 || len(v2c) != 0 {
		t.Fatalf("chain implies no equalities: %v %v", v2v, v2c)
	}
}

func TestStrictCycleInconsistent(t *testing.T) {
	sys := NewSystem([]query.Cmp{
		query.Lt(query.V(0), query.V(1)),
		query.Le(query.V(1), query.V(0)),
	})
	if sys.Consistent() {
		t.Fatal("x0<x1≤x0 is inconsistent")
	}
	if _, _, ok := sys.ImpliedEqualities(); ok {
		t.Fatal("inconsistent system must report !ok")
	}
}

func TestWeakCycleImpliesEquality(t *testing.T) {
	// x0 ≤ x1 ≤ x2 ≤ x0: all equal; x2,x1 collapse to x0.
	sys := NewSystem([]query.Cmp{
		query.Le(query.V(0), query.V(1)),
		query.Le(query.V(1), query.V(2)),
		query.Le(query.V(2), query.V(0)),
	})
	if !sys.Consistent() {
		t.Fatal("weak cycle is consistent")
	}
	v2v, v2c, ok := sys.ImpliedEqualities()
	if !ok || len(v2c) != 0 {
		t.Fatalf("no constants involved: %v", v2c)
	}
	if v2v[1] != 0 || v2v[2] != 0 {
		t.Fatalf("all must map to x0: %v", v2v)
	}
}

func TestEqualityWithConstant(t *testing.T) {
	// 5 ≤ x0 ≤ 5 forces x0 = 5.
	sys := NewSystem([]query.Cmp{
		query.Le(query.C(5), query.V(0)),
		query.Le(query.V(0), query.C(5)),
	})
	v2v, v2c, ok := sys.ImpliedEqualities()
	if !ok || len(v2v) != 0 {
		t.Fatalf("unexpected var equalities %v", v2v)
	}
	if v2c[0] != 5 {
		t.Fatalf("x0 must equal 5: %v", v2c)
	}
}

func TestTwoConstantsForcedEqualInconsistent(t *testing.T) {
	// 1 ≤ x0 ≤ 1 and 2 ≤ x0: then 2 ≤ x0 ≤ 1, but also implicit 1 < 2 → cycle with strict arc.
	sys := NewSystem([]query.Cmp{
		query.Le(query.C(1), query.V(0)),
		query.Le(query.V(0), query.C(1)),
		query.Le(query.C(2), query.V(0)),
	})
	if sys.Consistent() {
		t.Fatal("x0=1 ∧ x0≥2 is inconsistent")
	}
}

func TestImplicitConstantOrder(t *testing.T) {
	// x0 ≤ 1 and 2 ≤ x0 is inconsistent purely through the constant chain.
	sys := NewSystem([]query.Cmp{
		query.Le(query.V(0), query.C(1)),
		query.Le(query.C(2), query.V(0)),
	})
	if sys.Consistent() {
		t.Fatal("x0≤1 ∧ x0≥2 inconsistent")
	}
}

func TestCollapseRewritesQuery(t *testing.T) {
	// G(x0,x2) :- R(x0,x1), S(x1,x2), x0 ≤ x1, x1 ≤ x0, x2 ≠ x0.
	// Collapse: x1 := x0.
	q := &query.CQ{
		Head: []query.Term{query.V(0), query.V(2)},
		Atoms: []query.Atom{
			query.NewAtom("R", query.V(0), query.V(1)),
			query.NewAtom("S", query.V(1), query.V(2)),
		},
		Cmps:  []query.Cmp{query.Le(query.V(0), query.V(1)), query.Le(query.V(1), query.V(0))},
		Ineqs: []query.Ineq{query.NeqVars(2, 0)},
	}
	qc, err := Collapse(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(qc.Cmps) != 0 {
		t.Fatalf("weak pair should vanish: %v", qc.Cmps)
	}
	if !qc.Atoms[0].Args[1].Equal(query.V(0)) || !qc.Atoms[1].Args[0].Equal(query.V(0)) {
		t.Fatalf("x1 not collapsed into x0: %v", qc)
	}
	if len(qc.Ineqs) != 1 {
		t.Fatalf("ineq lost: %v", qc.Ineqs)
	}
}

func TestCollapseDetectsIneqContradiction(t *testing.T) {
	// x0 ≤ x1 ≤ x0 collapses x1→x0; x0 ≠ x1 then is x0≠x0.
	q := &query.CQ{
		Atoms: []query.Atom{query.NewAtom("R", query.V(0), query.V(1))},
		Cmps:  []query.Cmp{query.Le(query.V(0), query.V(1)), query.Le(query.V(1), query.V(0))},
		Ineqs: []query.Ineq{query.NeqVars(0, 1)},
	}
	if _, err := Collapse(q); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("want ErrInconsistent, got %v", err)
	}
}

func TestIsAcyclicWithComparisons(t *testing.T) {
	// Cyclic triangle becomes acyclic after x2→x0 collapse? Build one:
	// R(x0,x1), R(x1,x2), R(x2,x0) with x0≤x2≤x0 → collapse x2:=x0 gives
	// R(x0,x1), R(x1,x0), R(x0,x0): edges {0,1},{0,1},{0} — acyclic.
	q := &query.CQ{
		Atoms: []query.Atom{
			query.NewAtom("R", query.V(0), query.V(1)),
			query.NewAtom("R", query.V(1), query.V(2)),
			query.NewAtom("R", query.V(2), query.V(0)),
		},
		Cmps: []query.Cmp{query.Le(query.V(0), query.V(2)), query.Le(query.V(2), query.V(0))},
	}
	if !IsAcyclicWithComparisons(q) {
		t.Fatal("collapsed triangle should be acyclic")
	}
	q.Cmps = nil
	if IsAcyclicWithComparisons(q) {
		t.Fatal("uncollapsed triangle is cyclic")
	}
}

func TestEvaluateWithComparisons(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2,
		[]relation.Value{1, 2}, []relation.Value{2, 1}, []relation.Value{2, 3}))
	// Increasing 2-paths: E(x0,x1), E(x1,x2), x0<x1<x2.
	q := &query.CQ{
		Head: []query.Term{query.V(0), query.V(2)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(2)),
		},
		Cmps: []query.Cmp{query.Lt(query.V(0), query.V(1)), query.Lt(query.V(1), query.V(2))},
	}
	got, err := Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := query.Table(2, []relation.Value{1, 3})
	if !relation.EqualSet(got, want) {
		t.Fatalf("increasing paths = %v, want %v", got, want)
	}
	ok, err := EvaluateBool(q, db)
	if err != nil || !ok {
		t.Fatalf("bool: %v %v", ok, err)
	}
}

func TestEvaluateInconsistentIsEmpty(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2, []relation.Value{1, 2}))
	q := &query.CQ{
		Head:  []query.Term{query.V(0)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))},
		Cmps:  []query.Cmp{query.Lt(query.V(0), query.V(1)), query.Lt(query.V(1), query.V(0))},
	}
	got, err := Evaluate(q, db)
	if err != nil || got.Bool() {
		t.Fatalf("inconsistent query must be empty: %v %v", got, err)
	}
	ok, err := EvaluateBool(q, db)
	if err != nil || ok {
		t.Fatalf("inconsistent bool: %v %v", ok, err)
	}
}

// Property: Collapse preserves semantics — the collapsed query evaluates to
// the same answer as the original, on random instances (via the generic
// evaluator, which handles comparisons directly).
func TestQuickCollapsePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		db := query.NewDB()
		domain := 3 + rnd.Intn(3)
		r := query.NewTable(2)
		for i := 0; i < 2+rnd.Intn(10); i++ {
			r.Append(relation.Value(rnd.Intn(domain)), relation.Value(rnd.Intn(domain)))
		}
		r.Dedup()
		db.Set("E", r)
		nv := 3
		q := &query.CQ{
			Head: []query.Term{query.V(0)},
			Atoms: []query.Atom{
				query.NewAtom("E", query.V(0), query.V(1)),
				query.NewAtom("E", query.V(1), query.V(2)),
			},
		}
		for i := 0; i < 1+rnd.Intn(3); i++ {
			x, y := query.Var(rnd.Intn(nv)), query.Var(rnd.Intn(nv))
			var l, r query.Term
			if rnd.Intn(4) == 0 {
				l = query.C(relation.Value(rnd.Intn(domain)))
			} else {
				l = query.V(x)
			}
			if rnd.Intn(4) == 0 {
				r = query.C(relation.Value(rnd.Intn(domain)))
			} else {
				r = query.V(y)
			}
			q.Cmps = append(q.Cmps, query.Cmp{Left: l, Right: r, Strict: rnd.Intn(2) == 0})
		}
		want, err := eval.ConjunctiveBrute(q, db)
		if err != nil {
			return true
		}
		got, err := Evaluate(q, db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !relation.EqualSet(got, want) {
			t.Logf("seed %d: mismatch on %v:\n got %v\nwant %v", seed, q, got, want)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(81))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
