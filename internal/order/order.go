// Package order implements comparison-constraint reasoning for conjunctive
// queries with < and ≤ atoms, following Klug ([10] in the paper): the
// constraints form a directed graph over variables and constants; the
// system is consistent (over a dense order) iff no strongly connected
// component contains a strict arc, and all members of a strong component
// are implied equal and may be collapsed. This is the preprocessing
// Theorem 3 assumes before asking whether the collapsed query is acyclic.
package order

import (
	"fmt"
	"sort"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// node identifies a variable or a constant in the constraint graph.
type node struct {
	isConst bool
	v       query.Var
	c       relation.Value
}

func varNode(v query.Var) node        { return node{v: v} }
func constNode(c relation.Value) node { return node{isConst: true, c: c} }
func (n node) String() string {
	if n.isConst {
		return fmt.Sprintf("%d", n.c)
	}
	return fmt.Sprintf("x%d", n.v)
}

// System is a set of comparison constraints closed for analysis.
type System struct {
	nodes []node
	index map[node]int
	// arcs[u] = list of (v, strict): u < v or u ≤ v.
	arcs [][]arc
}

type arc struct {
	to     int
	strict bool
}

// NewSystem builds the constraint graph from comparison atoms, adding the
// implicit order between every pair of constants mentioned.
func NewSystem(cmps []query.Cmp) *System {
	s := &System{index: make(map[node]int)}
	id := func(n node) int {
		if i, ok := s.index[n]; ok {
			return i
		}
		i := len(s.nodes)
		s.index[n] = i
		s.nodes = append(s.nodes, n)
		s.arcs = append(s.arcs, nil)
		return i
	}
	termNode := func(t query.Term) int {
		if t.IsVar {
			return id(varNode(t.Var))
		}
		return id(constNode(t.Const))
	}
	for _, c := range cmps {
		u, v := termNode(c.Left), termNode(c.Right)
		s.arcs[u] = append(s.arcs[u], arc{to: v, strict: c.Strict})
	}
	// Implicit constant order: c < c′ for mentioned constants.
	var consts []int
	for i, n := range s.nodes {
		if n.isConst {
			consts = append(consts, i)
		}
	}
	sort.Slice(consts, func(a, b int) bool { return s.nodes[consts[a]].c < s.nodes[consts[b]].c })
	for i := 0; i+1 < len(consts); i++ {
		s.arcs[consts[i]] = append(s.arcs[consts[i]], arc{to: consts[i+1], strict: true})
	}
	return s
}

// sccs computes strongly connected components (Tarjan, iterative).
func (s *System) sccs() [][]int {
	n := len(s.nodes)
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range indexOf {
		indexOf[i] = -1
	}
	var compStack []int
	var comps [][]int
	next := 0

	type frame struct{ v, ai int }
	for start := 0; start < n; start++ {
		if indexOf[start] != -1 {
			continue
		}
		frames := []frame{{start, 0}}
		indexOf[start] = next
		low[start] = next
		next++
		compStack = append(compStack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ai < len(s.arcs[f.v]) {
				w := s.arcs[f.v][f.ai].to
				f.ai++
				if indexOf[w] == -1 {
					indexOf[w] = next
					low[w] = next
					next++
					compStack = append(compStack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && indexOf[w] < low[f.v] {
					low[f.v] = indexOf[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == indexOf[v] {
				var comp []int
				for {
					w := compStack[len(compStack)-1]
					compStack = compStack[:len(compStack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// Consistent reports whether the system has a solution over a dense order:
// no strongly connected component may contain a strict arc, and no
// component may identify two distinct constants.
func (s *System) Consistent() bool {
	comp := make([]int, len(s.nodes))
	comps := s.sccs()
	for ci, c := range comps {
		for _, v := range c {
			comp[v] = ci
		}
	}
	for ci, c := range comps {
		var sawConst bool
		var constVal relation.Value
		for _, v := range c {
			n := s.nodes[v]
			if n.isConst {
				if sawConst && n.c != constVal {
					return false
				}
				sawConst = true
				constVal = n.c
			}
			for _, a := range s.arcs[v] {
				if a.strict && comp[a.to] == ci {
					return false
				}
			}
		}
	}
	return true
}

// ImpliedEqualities returns, for each variable that the constraints force
// equal to another node, its canonical representative: a constant when its
// component contains one, otherwise the smallest variable of the component.
// Inconsistent systems yield ok = false.
func (s *System) ImpliedEqualities() (varToVar map[query.Var]query.Var, varToConst map[query.Var]relation.Value, ok bool) {
	if !s.Consistent() {
		return nil, nil, false
	}
	varToVar = make(map[query.Var]query.Var)
	varToConst = make(map[query.Var]relation.Value)
	for _, c := range s.sccs() {
		if len(c) <= 1 {
			continue
		}
		var constVal relation.Value
		hasConst := false
		var minVar query.Var
		hasVar := false
		for _, v := range c {
			n := s.nodes[v]
			if n.isConst {
				hasConst = true
				constVal = n.c
			} else if !hasVar || n.v < minVar {
				hasVar = true
				minVar = n.v
			}
		}
		for _, v := range c {
			n := s.nodes[v]
			if n.isConst {
				continue
			}
			if hasConst {
				varToConst[n.v] = constVal
			} else if n.v != minVar {
				varToVar[n.v] = minVar
			}
		}
	}
	return varToVar, varToConst, true
}
