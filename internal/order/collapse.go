package order

import (
	"errors"

	"pyquery/internal/eval"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// ErrInconsistent is returned when the comparison constraints have no
// solution (a strict cycle, or two constants forced equal).
var ErrInconsistent = errors.New("order: comparison constraints are inconsistent")

// Collapse checks the consistency of a query's comparison atoms and
// collapses the implied equalities, returning Q′ per Theorem 3's
// preprocessing: variables forced equal are merged (smallest id wins),
// variables forced equal to a constant are substituted, and comparisons
// that become ground-true are dropped. The inequality (≠) atoms, head, and
// relational atoms are rewritten consistently.
func Collapse(q *query.CQ) (*query.CQ, error) {
	if len(q.Cmps) == 0 {
		return q.Clone(), nil
	}
	sys := NewSystem(q.Cmps)
	varToVar, varToConst, ok := sys.ImpliedEqualities()
	if !ok {
		return nil, ErrInconsistent
	}
	mapVar := func(v query.Var) query.Term {
		if c, isC := varToConst[v]; isC {
			return query.C(c)
		}
		if w, isV := varToVar[v]; isV {
			return query.V(w)
		}
		return query.V(v)
	}
	mapTerm := func(t query.Term) query.Term {
		if t.IsVar {
			return mapVar(t.Var)
		}
		return t
	}

	out := &query.CQ{VarNames: q.VarNames}
	for _, t := range q.Head {
		out.Head = append(out.Head, mapTerm(t))
	}
	for _, a := range q.Atoms {
		args := make([]query.Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = mapTerm(t)
		}
		out.Atoms = append(out.Atoms, query.Atom{Rel: a.Rel, Args: args})
	}
	for _, iq := range q.Ineqs {
		x := mapVar(iq.X)
		var y query.Term
		if iq.YIsVar {
			y = mapVar(iq.Y)
		} else {
			y = query.C(iq.C)
		}
		switch {
		case x.IsVar && y.IsVar:
			if x.Var == y.Var {
				return nil, ErrInconsistent // x≠x after collapse
			}
			out.Ineqs = append(out.Ineqs, query.NeqVars(x.Var, y.Var))
		case x.IsVar:
			out.Ineqs = append(out.Ineqs, query.NeqConst(x.Var, y.Const))
		case y.IsVar:
			out.Ineqs = append(out.Ineqs, query.NeqConst(y.Var, x.Const))
		default:
			if x.Const == y.Const {
				return nil, ErrInconsistent
			}
		}
	}
	for _, c := range q.Cmps {
		l, r := mapTerm(c.Left), mapTerm(c.Right)
		if !l.IsVar && !r.IsVar {
			if !c.Holds(l.Const, r.Const) {
				return nil, ErrInconsistent
			}
			continue // ground-true: drop
		}
		if l.IsVar && r.IsVar && l.Var == r.Var {
			if c.Strict {
				return nil, ErrInconsistent // x < x
			}
			continue // x ≤ x: drop
		}
		out.Cmps = append(out.Cmps, query.Cmp{Left: l, Right: r, Strict: c.Strict})
	}
	return out, nil
}

// IsAcyclicWithComparisons reports whether q is an acyclic conjunctive
// query with comparisons in Theorem 3's sense: after consistency checking
// and equality collapsing, the hypergraph of the relational atoms is
// α-acyclic. Inconsistent systems report false.
func IsAcyclicWithComparisons(q *query.CQ) bool {
	qc, err := Collapse(q)
	if err != nil {
		return false
	}
	return acyclicAtoms(qc)
}

// acyclicAtoms tests α-acyclicity of the relational-atom hypergraph.
func acyclicAtoms(q *query.CQ) bool {
	h, _ := plan.AtomHypergraph(q)
	_, ok := h.JoinForest()
	return ok
}

// Evaluate evaluates a conjunctive query with comparisons: collapse first
// (ErrInconsistent yields the empty answer), then run the generic
// backtracking evaluator — per Theorem 3 no fixed-parameter algorithm is
// expected, even for acyclic queries. The collapsed query inherits the
// cost-based join order of internal/plan through the generic evaluator's
// options.
func Evaluate(q *query.CQ, db *query.DB) (*relation.Relation, error) {
	return EvaluateOpts(q, db, eval.Options{})
}

// EvaluateOpts is Evaluate with explicit options for the generic evaluator
// that runs after the collapse (join-order heuristic, parallelism).
func EvaluateOpts(q *query.CQ, db *query.DB, opts eval.Options) (*relation.Relation, error) {
	qc, err := Collapse(q)
	if errors.Is(err, ErrInconsistent) {
		return query.NewTable(len(q.Head)), nil
	}
	if err != nil {
		return nil, err
	}
	return eval.ConjunctiveOpts(qc, db, opts)
}

// EvaluateBool decides Q(d) ≠ ∅ for a query with comparisons.
func EvaluateBool(q *query.CQ, db *query.DB) (bool, error) {
	return EvaluateBoolOpts(q, db, eval.Options{})
}

// EvaluateBoolOpts is EvaluateBool with explicit generic-evaluator options.
func EvaluateBoolOpts(q *query.CQ, db *query.DB, opts eval.Options) (bool, error) {
	qc, err := Collapse(q)
	if errors.Is(err, ErrInconsistent) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return eval.ConjunctiveBoolOpts(qc, db, opts)
}
