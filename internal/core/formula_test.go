package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

func TestIneqFormulaValues(t *testing.T) {
	// (x0≠x1 ∨ x0≠5) ∧ x1≠x2
	f := IneqAnd{Subs: []IneqFormula{
		IneqOr{Subs: []IneqFormula{
			IneqAtom{Ineq: query.NeqVars(0, 1)},
			IneqAtom{Ineq: query.NeqConst(0, 5)},
		}},
		IneqAtom{Ineq: query.NeqVars(1, 2)},
	}}
	get := func(vals map[query.Var]relation.Value) func(query.Var) relation.Value {
		return func(v query.Var) relation.Value { return vals[v] }
	}
	if !EvalIneqFormulaValues(f, get(map[query.Var]relation.Value{0: 1, 1: 2, 2: 3})) {
		t.Fatal("all-distinct should satisfy")
	}
	if EvalIneqFormulaValues(f, get(map[query.Var]relation.Value{0: 5, 1: 5, 2: 3})) {
		t.Fatal("x0=x1=5 falsifies both disjuncts")
	}
	if EvalIneqFormulaValues(f, get(map[query.Var]relation.Value{0: 1, 1: 2, 2: 2})) {
		t.Fatal("x1=x2 falsifies the second conjunct")
	}
	if (IneqAnd{}).String() != "()" && !EvalIneqFormulaValues(IneqAnd{}, nil) {
		t.Fatal("empty conjunction is true")
	}
	if EvalIneqFormulaValues(IneqOr{}, nil) {
		t.Fatal("empty disjunction is false")
	}
}

func TestFromConjunctionMatchesEvaluate(t *testing.T) {
	// The formula path with a pure conjunction must agree with the
	// conjunction engine on the Section 5 example.
	db := orgDB()
	q := multiProjectQuery()
	want, err := Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	pure := q.Clone()
	phi := FromConjunction(pure.Ineqs)
	pure.Ineqs = nil
	got, err := EvaluateIneqFormula(pure, phi, db, Options{Strategy: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(got, want) {
		t.Fatalf("formula path disagrees: %v vs %v", got, want)
	}
}

func TestEvaluateIneqFormulaDisjunction(t *testing.T) {
	// G(e) ← EP(e,p), EP(e,p2), (p≠p2 ∨ e≠1): every employee except those
	// equal to 1 qualifies trivially; employee 1 qualifies iff on >1
	// project. Over orgDB: employees {1 (two projects), 2, 3, 4} all pass
	// except... everyone passes: e≠1 covers 2,3,4 and p≠p2 covers 1.
	q := &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("EP", query.V(0), query.V(1)),
			query.NewAtom("EP", query.V(0), query.V(2)),
		},
	}
	phi := IneqOr{Subs: []IneqFormula{
		IneqAtom{Ineq: query.NeqVars(1, 2)},
		IneqAtom{Ineq: query.NeqConst(0, 1)},
	}}
	got, err := EvaluateIneqFormula(q, phi, orgDB(), Options{Strategy: Exact})
	if err != nil {
		t.Fatal(err)
	}
	want := query.Table(1,
		[]relation.Value{1}, []relation.Value{2}, []relation.Value{3}, []relation.Value{4})
	if !relation.EqualSet(got, want) {
		t.Fatalf("disjunctive φ = %v, want %v", got, want)
	}
}

func TestEvaluateIneqFormulaRejections(t *testing.T) {
	db := orgDB()
	q := multiProjectQuery() // still carries its own ≠ atoms
	if _, err := EvaluateIneqFormula(q, IneqAnd{}, db, Options{}); err == nil {
		t.Fatal("query-side ≠ atoms must be rejected")
	}
	pure := &query.CQ{Atoms: []query.Atom{query.NewAtom("EP", query.V(0), query.V(1))}}
	badVar := IneqAtom{Ineq: query.NeqVars(0, 9)}
	if _, err := EvaluateIneqFormula(pure, badVar, db, Options{}); err == nil {
		t.Fatal("φ variable outside the body must be rejected")
	}
	cyc := &query.CQ{Atoms: []query.Atom{
		query.NewAtom("EP", query.V(0), query.V(1)),
		query.NewAtom("EP", query.V(1), query.V(2)),
		query.NewAtom("EP", query.V(2), query.V(0)),
	}}
	if _, err := EvaluateIneqFormula(cyc, IneqAnd{}, db, Options{}); err == nil {
		t.Fatal("cyclic query must be rejected")
	}
}

// bruteIneqFormula enumerates assignments over the active domain.
func bruteIneqFormula(q *query.CQ, phi IneqFormula, db *query.DB) *relation.Relation {
	domain := db.ActiveDomain()
	vars := q.BodyVars()
	slot := make(map[query.Var]int)
	for i, v := range vars {
		slot[v] = i
	}
	assign := make([]relation.Value, len(vars))
	out := query.NewTable(len(q.Head))
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			for _, a := range q.Atoms {
				row := make([]relation.Value, len(a.Args))
				for j, t := range a.Args {
					if t.IsVar {
						row[j] = assign[slot[t.Var]]
					} else {
						row[j] = t.Const
					}
				}
				if !db.MustRel(a.Rel).Contains(row) {
					return
				}
			}
			if !EvalIneqFormulaValues(phi, func(v query.Var) relation.Value {
				return assign[slot[v]]
			}) {
				return
			}
			tuple := make([]relation.Value, len(q.Head))
			for j, t := range q.Head {
				if t.IsVar {
					tuple[j] = assign[slot[t.Var]]
				} else {
					tuple[j] = t.Const
				}
			}
			out.Append(tuple...)
			return
		}
		for _, c := range domain {
			assign[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return out.Dedup()
}

// Property: the formula engine agrees with brute force on random acyclic
// queries with random ∧/∨ inequality formulas.
func TestQuickIneqFormulaAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, db := randAcyclicIneqInstance(rnd)
		q.Ineqs = nil // constraints live in φ here
		vars := q.BodyVars()
		if len(vars) == 0 {
			return true
		}
		var buildPhi func(depth int) IneqFormula
		buildPhi = func(depth int) IneqFormula {
			if depth == 0 || rnd.Intn(3) == 0 {
				x := vars[rnd.Intn(len(vars))]
				if rnd.Intn(4) == 0 {
					return IneqAtom{Ineq: query.NeqConst(x, relation.Value(rnd.Intn(4)))}
				}
				y := vars[rnd.Intn(len(vars))]
				if x == y {
					return IneqAtom{Ineq: query.NeqConst(x, relation.Value(rnd.Intn(4)))}
				}
				return IneqAtom{Ineq: query.NeqVars(x, y)}
			}
			if rnd.Intn(2) == 0 {
				return IneqAnd{Subs: []IneqFormula{buildPhi(depth - 1), buildPhi(depth - 1)}}
			}
			return IneqOr{Subs: []IneqFormula{buildPhi(depth - 1), buildPhi(depth - 1)}}
		}
		phi := buildPhi(2)
		pv, pc := ineqFormulaVars(phi)
		if len(pv)+len(pc) > 6 {
			return true // keep the exact family enumerable
		}
		want := bruteIneqFormula(q, phi, db)
		got, err := EvaluateIneqFormula(q, phi, db, Options{Strategy: Exact})
		if err != nil {
			t.Logf("seed %d: %v (φ=%v, q=%v)", seed, err, phi, q)
			return false
		}
		if !relation.EqualSet(got, want) {
			t.Logf("seed %d: mismatch on φ=%v q=%v:\n got %v\nwant %v", seed, phi, q, got, want)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(121))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
