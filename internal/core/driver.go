package core

import (
	"fmt"

	"pyquery/internal/colorcoding"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// Evaluate computes Q(d) for an acyclic conjunctive query with inequalities
// using the default (Auto) deterministic hash family. The result uses the
// positional schema 0…len(head)−1.
func Evaluate(q *query.CQ, db *query.DB) (*relation.Relation, error) {
	res, _, err := EvaluateStats(q, db, Options{})
	return res, err
}

// EvaluateOpts is Evaluate with explicit options.
func EvaluateOpts(q *query.CQ, db *query.DB, opts Options) (*relation.Relation, error) {
	res, _, err := EvaluateStats(q, db, opts)
	return res, err
}

// EvaluateStats evaluates and reports run statistics.
func EvaluateStats(q *query.CQ, db *query.DB, opts Options) (*relation.Relation, Stats, error) {
	opts = opts.withDefaults()
	p, err := prepare(q, db, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{K: p.k, I1: len(p.i1), I2: len(p.i2)}
	if p.trivialEmpty {
		return query.NewTable(len(q.Head)), stats, nil
	}
	fam, err := family(p, opts)
	if err != nil {
		return nil, stats, err
	}
	stats.FamilySize = len(fam)

	// Union of Q_h over the family, deduplicated on head-variable tuples.
	var acc *relation.Relation
	for _, h := range fam {
		pstar, ok := p.runHash(h, true)
		if !ok {
			continue
		}
		stats.Successes++
		if acc == nil {
			acc = pstar
		} else {
			acc = relation.Union(acc, pstar)
		}
	}
	if acc == nil {
		return query.NewTable(len(q.Head)), stats, nil
	}
	return p.headTuples(acc), stats, nil
}

// EvaluateBool decides Q(d) ≠ ∅ (Algorithm 1 only), stopping at the first
// hash function that succeeds.
func EvaluateBool(q *query.CQ, db *query.DB) (bool, error) {
	ok, _, err := EvaluateBoolStats(q, db, Options{})
	return ok, err
}

// EvaluateBoolOpts is EvaluateBool with explicit options.
func EvaluateBoolOpts(q *query.CQ, db *query.DB, opts Options) (bool, error) {
	ok, _, err := EvaluateBoolStats(q, db, opts)
	return ok, err
}

// EvaluateBoolStats decides emptiness and reports run statistics.
func EvaluateBoolStats(q *query.CQ, db *query.DB, opts Options) (bool, Stats, error) {
	opts = opts.withDefaults()
	p, err := prepare(q, db, opts)
	if err != nil {
		return false, Stats{}, err
	}
	stats := Stats{K: p.k, I1: len(p.i1), I2: len(p.i2)}
	if p.trivialEmpty {
		return false, stats, nil
	}
	fam, err := family(p, opts)
	if err != nil {
		return false, stats, err
	}
	stats.FamilySize = len(fam)
	for _, h := range fam {
		if _, ok := p.runHash(h, false); ok {
			stats.Successes = 1
			return true, stats, nil
		}
	}
	return false, stats, nil
}

// family constructs the hash family for a prepared query per the options.
func family(p *prepared, opts Options) ([]colorcoding.Func, error) {
	k := p.k
	switch opts.Strategy {
	case MonteCarlo:
		return colorcoding.Trials(k, opts.C, opts.Seed), nil
	case Exact:
		return colorcoding.ExactPerfect(p.relevant, k)
	case WHP:
		return colorcoding.WHPPerfect(len(p.relevant), k, opts.Delta, opts.Seed), nil
	case Auto:
		// Keep the exact family for genuinely small instances; beyond the
		// budget its construction cost dwarfs the evaluation.
		const autoBudget = 50_000
		if colorcoding.ExactFeasible(len(p.relevant), k, autoBudget) {
			return colorcoding.ExactPerfect(p.relevant, k)
		}
		return colorcoding.WHPPerfect(len(p.relevant), k, opts.Delta, opts.Seed), nil
	}
	return nil, fmt.Errorf("core: unknown strategy %d", opts.Strategy)
}

// RunSingleHash runs Algorithm 1 with exactly one hash function h and
// reports whether Q_h(d) ≠ ∅. The function's color count should equal the
// query's hash range (|V₁|, from Partition). This is the probe behind the
// Monte-Carlo success-rate experiments (E3c, A4): the paper guarantees a
// single random h succeeds with probability > e^{−k} on satisfiable
// instances.
func RunSingleHash(q *query.CQ, db *query.DB, h colorcoding.Func) (bool, error) {
	p, err := prepare(q, db, Options{}.withDefaults())
	if err != nil {
		return false, err
	}
	if p.trivialEmpty {
		return false, nil
	}
	_, ok := p.runHash(h, false)
	return ok, nil
}

// Decide answers the decision problem t ∈ Q(d) in the paper's sense:
// substitute the constants of t into the body, then run the emptiness test.
func Decide(q *query.CQ, db *query.DB, t []relation.Value, opts Options) (bool, error) {
	bound, err := q.BindHead(t)
	if query.IsTrivialMismatch(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return EvaluateBoolOpts(bound, db, opts)
}
