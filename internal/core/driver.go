package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"pyquery/internal/colorcoding"
	"pyquery/internal/governor"
	"pyquery/internal/parallel"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// check is the engine's governed checkpoint: through the meter when one is
// threaded (typed trips, fault hook), the plain nil-tolerant ctx poll
// otherwise.
func check(ctx context.Context, m *governor.Meter, step string) error {
	if m != nil {
		return m.Check(step)
	}
	return parallel.CtxErr(ctx)
}

// Program is a compiled Theorem 2 query: the hash-independent prepared
// state (reduced relations with the I₂ pushdown applied, the join tree, the
// Y-sets of Lemma 1) plus the hash family for the query's k. Everything is
// read-only after Compile, so one Program may execute concurrently; each
// execution re-runs only the per-hash passes. This is the serving form the
// facade's prepared statements freeze for the color-coding class.
type Program struct {
	p   *prepared
	fam []colorcoding.Func
}

// Compile prepares q against db for repeated execution: partition the
// inequalities, reduce the atoms (with the I₂ pushdown), build the join
// tree, and construct the hash family the options select.
func Compile(q *query.CQ, db *query.DB, opts Options) (*Program, error) {
	opts = opts.withDefaults()
	p, err := prepare(q, db, opts)
	if err != nil {
		return nil, err
	}
	pr := &Program{p: p}
	if p.trivialEmpty {
		return pr, nil
	}
	if pr.fam, err = family(p, opts); err != nil {
		return nil, err
	}
	return pr, nil
}

// Stats returns the compile-time statistics (K, I1, I2, FamilySize);
// Successes is zero until an execution fills its own copy.
func (pr *Program) Stats() Stats {
	return Stats{K: pr.p.k, I1: len(pr.p.i1), I2: len(pr.p.i2), FamilySize: len(pr.fam)}
}

// Exec computes Q(d) = ⋃_h Q_h(d) over the compiled family. The context is
// checked between trial batches (the color-coding round boundary).
func (pr *Program) Exec(ctx context.Context) (*relation.Relation, error) {
	res, _, err := pr.ExecStats(ctx)
	return res, err
}

// ExecStats is Exec with run statistics.
func (pr *Program) ExecStats(ctx context.Context) (*relation.Relation, Stats, error) {
	return pr.execStats(ctx, nil)
}

// ExecMeter is Exec under a resource meter: the meter is checked at every
// trial-batch boundary and charged for each trial's materialized result, so
// a row/byte budget (or an injected fault) trips between color-coding
// rounds with the typed governor error.
func (pr *Program) ExecMeter(ctx context.Context, m *governor.Meter) (*relation.Relation, error) {
	res, _, err := pr.execStats(ctx, m)
	return res, err
}

func (pr *Program) execStats(ctx context.Context, m *governor.Meter) (*relation.Relation, Stats, error) {
	p := pr.p
	stats := pr.Stats()
	if err := check(ctx, m, "start"); err != nil {
		return nil, stats, err
	}
	if p.trivialEmpty {
		return query.NewTable(len(p.q.Head)), stats, nil
	}
	outer, inner := parallel.Split(parallel.Workers(p.opts.Parallelism), len(pr.fam))
	acc, err := batchedUnion(ctx, m, outer, len(pr.fam), func(i int) *relation.Relation {
		pstar, ok := p.runHash(pr.fam[i], true, inner)
		if !ok {
			return nil
		}
		return pstar
	}, func() { stats.Successes++ })
	if err != nil {
		return nil, stats, err
	}
	if acc == nil {
		return query.NewTable(len(p.q.Head)), stats, nil
	}
	return p.headTuples(acc), stats, nil
}

// ExecBool decides Q(d) ≠ ∅ (Algorithm 1 only), stopping at the first hash
// function that succeeds.
func (pr *Program) ExecBool(ctx context.Context) (bool, error) {
	ok, _, err := pr.ExecBoolStats(ctx)
	return ok, err
}

// ExecBoolStats is ExecBool with run statistics.
func (pr *Program) ExecBoolStats(ctx context.Context) (bool, Stats, error) {
	return pr.execBoolStats(ctx, nil)
}

// ExecBoolMeter is ExecBool under a resource meter (checked between
// trials; the decision pass materializes no output, so only checkpoint
// trips — context, injected faults — can fire).
func (pr *Program) ExecBoolMeter(ctx context.Context, m *governor.Meter) (bool, error) {
	ok, _, err := pr.execBoolStats(ctx, m)
	return ok, err
}

func (pr *Program) execBoolStats(ctx context.Context, m *governor.Meter) (bool, Stats, error) {
	p := pr.p
	stats := pr.Stats()
	if err := check(ctx, m, "start"); err != nil {
		return false, stats, err
	}
	if p.trivialEmpty {
		return false, stats, nil
	}
	outer, inner := parallel.Split(parallel.Workers(p.opts.Parallelism), len(pr.fam))
	if outer <= 1 {
		for _, h := range pr.fam {
			if err := check(ctx, m, "trial"); err != nil {
				return false, stats, err
			}
			if _, ok := p.runHash(h, false, inner); ok {
				stats.Successes = 1
				return true, stats, nil
			}
		}
		return false, stats, nil
	}
	var found atomic.Bool
	err := parallel.ForEachCtx(ctx, outer, len(pr.fam), func(i int) {
		if found.Load() || m.Tripped() {
			return
		}
		if m.Check("trial") != nil {
			return
		}
		if _, ok := p.runHash(pr.fam[i], false, inner); ok {
			found.Store(true)
		}
	})
	if err != nil {
		return false, stats, err
	}
	if err := m.Err(); err != nil {
		return false, stats, err
	}
	if found.Load() {
		stats.Successes = 1
		return true, stats, nil
	}
	return false, stats, nil
}

// Evaluate computes Q(d) for an acyclic conjunctive query with inequalities
// using the default (Auto) deterministic hash family. The result uses the
// positional schema 0…len(head)−1.
func Evaluate(q *query.CQ, db *query.DB) (*relation.Relation, error) {
	res, _, err := EvaluateStats(q, db, Options{})
	return res, err
}

// EvaluateOpts is Evaluate with explicit options.
func EvaluateOpts(q *query.CQ, db *query.DB, opts Options) (*relation.Relation, error) {
	res, _, err := EvaluateStats(q, db, opts)
	return res, err
}

// EvaluateStats evaluates and reports run statistics. One-shot evaluation
// is Compile followed by a single execution.
func EvaluateStats(q *query.CQ, db *query.DB, opts Options) (*relation.Relation, Stats, error) {
	pr, err := Compile(q, db, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return pr.ExecStats(nil)
}

// batchedUnion runs the independent trials run(0)…run(n−1) across the
// worker budget in batches of the outer width, unioning each batch's
// non-nil results in trial order (deduplicated by Union). The merge order
// makes the result identical to a serial loop at any parallelism, and peak
// memory stays O(outer·|result|) instead of buffering all n results.
// onSuccess, if non-nil, is called once per non-nil result, in order. The
// context/meter is checked between batches (the color-coding round
// boundary) and the meter is charged per materialized trial result; a
// canceled or tripped run returns the corresponding error.
func batchedUnion(ctx context.Context, m *governor.Meter, outer, n int, run func(i int) *relation.Relation, onSuccess func()) (*relation.Relation, error) {
	var acc *relation.Relation
	results := make([]*relation.Relation, outer)
	for start := 0; start < n; start += outer {
		if err := check(ctx, m, "trial-batch"); err != nil {
			return nil, err
		}
		k := n - start
		if k > outer {
			k = outer
		}
		batch := results[:k]
		for i := range batch {
			batch[i] = nil // reset: run may leave slots untouched
		}
		parallel.ForEach(outer, k, func(i int) {
			batch[i] = run(start + i)
		})
		for _, pstar := range batch {
			if pstar == nil {
				continue
			}
			if err := m.Charge(int64(pstar.Len()), governor.RelBytes(pstar.Len(), pstar.Width()), "trial-result"); err != nil {
				return nil, err
			}
			if onSuccess != nil {
				onSuccess()
			}
			if acc == nil {
				acc = pstar
			} else {
				acc = relation.Union(acc, pstar)
			}
		}
	}
	return acc, nil
}

// EvaluateBool decides Q(d) ≠ ∅ (Algorithm 1 only), stopping at the first
// hash function that succeeds.
func EvaluateBool(q *query.CQ, db *query.DB) (bool, error) {
	ok, _, err := EvaluateBoolStats(q, db, Options{})
	return ok, err
}

// EvaluateBoolOpts is EvaluateBool with explicit options.
func EvaluateBoolOpts(q *query.CQ, db *query.DB, opts Options) (bool, error) {
	ok, _, err := EvaluateBoolStats(q, db, opts)
	return ok, err
}

// EvaluateBoolStats decides emptiness and reports run statistics.
func EvaluateBoolStats(q *query.CQ, db *query.DB, opts Options) (bool, Stats, error) {
	pr, err := Compile(q, db, opts)
	if err != nil {
		return false, Stats{}, err
	}
	return pr.ExecBoolStats(nil)
}

// family constructs the hash family for a prepared query per the options.
func family(p *prepared, opts Options) ([]colorcoding.Func, error) {
	k := p.k
	switch opts.Strategy {
	case MonteCarlo:
		return colorcoding.Trials(k, opts.C, opts.Seed), nil
	case Exact:
		return colorcoding.ExactPerfect(p.relevant, k)
	case WHP:
		return colorcoding.WHPPerfect(len(p.relevant), k, opts.Delta, opts.Seed), nil
	case Auto:
		// Keep the exact family for genuinely small instances; beyond the
		// budget its construction cost dwarfs the evaluation.
		const autoBudget = 50_000
		if colorcoding.ExactFeasible(len(p.relevant), k, autoBudget) {
			return colorcoding.ExactPerfect(p.relevant, k)
		}
		return colorcoding.WHPPerfect(len(p.relevant), k, opts.Delta, opts.Seed), nil
	}
	return nil, fmt.Errorf("core: unknown strategy %d", opts.Strategy)
}

// RunSingleHash runs Algorithm 1 with exactly one hash function h and
// reports whether Q_h(d) ≠ ∅. The function's color count should equal the
// query's hash range (|V₁|, from Partition). This is the probe behind the
// Monte-Carlo success-rate experiments (E3c, A4): the paper guarantees a
// single random h succeeds with probability > e^{−k} on satisfiable
// instances.
func RunSingleHash(q *query.CQ, db *query.DB, h colorcoding.Func) (bool, error) {
	p, err := prepare(q, db, Options{}.withDefaults())
	if err != nil {
		return false, err
	}
	if p.trivialEmpty {
		return false, nil
	}
	_, ok := p.runHash(h, false, 1)
	return ok, nil
}

// Decide answers the decision problem t ∈ Q(d) in the paper's sense:
// substitute the constants of t into the body, then run the emptiness test.
func Decide(q *query.CQ, db *query.DB, t []relation.Value, opts Options) (bool, error) {
	bound, err := q.BindHead(t)
	if query.IsTrivialMismatch(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return EvaluateBoolOpts(bound, db, opts)
}
