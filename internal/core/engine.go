// Package core implements the paper's algorithmic contribution (Theorem 2):
// fixed-parameter tractable evaluation of acyclic conjunctive queries with
// inequality (≠) atoms.
//
// The structure follows Section 5 exactly:
//
//   - The inequality atoms are partitioned into I₂ — x≠c atoms and x≠y atoms
//     whose variables share a hyperedge, which are pushed into the per-atom
//     selections σ_Fⱼ — and I₁, the x≠y atoms whose variables never co-occur.
//   - V₁ is the set of variables in I₁ and k = |V₁|. For a hash function
//     h: D → {1,…,k}, every relation Sⱼ is extended with hashed color columns
//     x′ = h(x), and Algorithm 1 runs a bottom-up pass over a join tree,
//     merging each node into its parent with σ_F(Pᵤ ⋈ π_{Yⱼ∩Yᵤ}(Pⱼ)) where F
//     checks color-distinctness of I₁ pairs. The attribute sets Yⱼ =
//     UⱼU′ⱼW′ⱼ (Lemma 1) route each color column from its subtree up to the
//     lowest common ancestor of its inequality partners.
//   - Algorithm 2 (top-down semijoins, then bottom-up join-project) computes
//     Q_h(d) output-sensitively, and Q(d) = ⋃_h Q_h(d) over a hash family:
//     Monte-Carlo trials (⌈c·eᵏ⌉), a certified exact k-perfect family, or a
//     whp-perfect family of the paper's 2^{O(k)}·log|D| size shape.
package core

import (
	"errors"
	"time"

	"pyquery/internal/colorcoding"
	"pyquery/internal/eval"
	"pyquery/internal/hypergraph"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// ErrCyclic is returned when the relational-atom hypergraph is cyclic.
var ErrCyclic = errors.New("core: query hypergraph is cyclic")

// ErrComparisons is returned for queries with order comparisons, which are
// W[1]-complete even for acyclic queries (Theorem 3) and are not handled by
// this engine.
var ErrComparisons = errors.New("core: comparison atoms are not fixed-parameter tractable here (Theorem 3); use eval.Conjunctive")

// Strategy selects the hash family driving the color-coding loop.
type Strategy int

// Strategies.
const (
	// Auto uses the certified exact family when the relevant domain is
	// small enough to enumerate, and the whp-perfect family otherwise.
	Auto Strategy = iota
	// Exact forces the certified k-perfect family (errors when infeasible).
	Exact
	// WHP forces the seeded whp-perfect family.
	WHP
	// MonteCarlo uses ⌈c·eᵏ⌉ random trials: one-sided error — reported
	// tuples are always correct, and every true answer is found with
	// probability ≥ 1 − e^{−c}.
	MonteCarlo
)

// Options configures the engine.
type Options struct {
	Strategy Strategy
	// C is the Monte-Carlo confidence multiplier (default 3).
	C float64
	// Delta is the whp-family failure bound (default 1e-9).
	Delta float64
	// Seed drives every randomized choice; runs are reproducible.
	Seed int64
	// NoPushdown disables the I₂ selection pushdown (ablation A1): every
	// x≠y inequality is treated as I₁ and checked through color columns,
	// and x≠c atoms are checked on colors too, with the constants added to
	// the hash range — the paper's q-parameter extension. k grows, so the
	// exponential factor grows; answers are identical.
	NoPushdown bool
	// NoDecomp disables the hypertree-decomposition engine (ablation A6):
	// cyclic low-width queries fall back to the generic backtracker. It is
	// consumed by the facade's routing (pyquery.EvaluateOpts); this engine
	// ignores it.
	NoDecomp bool
	// NoWCOJ disables the worst-case-optimal leapfrog-triejoin engine
	// (ablation A7): dense cyclic queries that would route there fall back
	// to the generic backtracker (or the decomposition engine when its own
	// gate fires first). It is consumed by the facade's routing
	// (pyquery.EvaluateOpts); this engine ignores it.
	NoWCOJ bool
	// NoCache makes the facade's Evaluate* free functions plan from scratch
	// instead of consulting the per-database prepared-plan cache — the
	// pre-PR-5 one-shot behavior, kept for benchmarking the amortization
	// (experiment E9) and for callers that never repeat a query. This
	// engine ignores it.
	NoCache bool
	// Parallelism is the worker count. The independent hash-function trials
	// of the color-coding loop run across workers; leftover budget flows
	// into the partitioned join/semijoin kernel inside each trial. 0 means
	// GOMAXPROCS; 1 is the serial engine. Results are set-equal at every
	// setting (trials commute under union).
	Parallelism int

	// The resource governor (enforced by the facade's prepared layer; this
	// engine receives the resulting meter, not the raw limits). All four
	// fields are comparable, so Options stays usable as a plan-cache key.

	// MaxRows caps the total materialized rows of one execution (answer
	// rows, per-worker intermediates, tree-pass results, decomposition
	// bags). 0 means unlimited. Exceeding it surfaces governor.ErrRowLimit.
	MaxRows int64
	// MemoryLimit caps the approximate materialized bytes of one execution
	// (rows × width × 8; see governor.RelBytes). 0 means unlimited.
	// Exceeding it surfaces governor.ErrMemoryLimit.
	MemoryLimit int64
	// Timeout, when positive, derives a per-execution deadline from the
	// caller's context — sugar over the existing ctx plumbing. Expiry
	// surfaces governor.ErrTimeout (which also matches
	// context.DeadlineExceeded).
	Timeout time.Duration
	// Degrade softens a decomposition budget trip: when materializing the
	// bags exceeds MaxRows/MemoryLimit, the bags are released (their charge
	// refunded) and the query falls back to the generic backtracker under
	// the remaining budget instead of failing.
	Degrade bool
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 3
	}
	if o.Delta == 0 {
		o.Delta = 1e-9
	}
	return o
}

// Stats reports what a run did.
type Stats struct {
	K          int // |V₁| (plus inequality constants under NoPushdown)
	I1, I2     int // partition sizes
	FamilySize int // hash functions tried
	Successes  int // hash functions with nonempty Q_h
}

// Partition splits the query's inequality atoms into I₁ (variables never
// co-occurring in a relational atom) and I₂ (the rest, including all x≠c
// atoms), and returns V₁ sorted. Duplicate and reversed pairs are
// deduplicated; an x≠x atom yields ok=false (the query is unsatisfiable).
func Partition(q *query.CQ) (i1, i2 []query.Ineq, v1 []query.Var, ok bool) {
	coOccur := make(map[[2]query.Var]bool)
	for _, a := range q.Atoms {
		vars := a.Vars()
		for i := 0; i < len(vars); i++ {
			for j := 0; j < len(vars); j++ {
				coOccur[[2]query.Var{vars[i], vars[j]}] = true
			}
		}
	}
	seenPair := make(map[[2]query.Var]bool)
	seenConst := make(map[query.Ineq]bool)
	v1set := make(map[query.Var]bool)
	for _, iq := range q.Ineqs {
		if !iq.YIsVar {
			key := query.Ineq{X: iq.X, C: iq.C}
			if !seenConst[key] {
				seenConst[key] = true
				i2 = append(i2, iq)
			}
			continue
		}
		if iq.X == iq.Y {
			return nil, nil, nil, false
		}
		a, b := iq.X, iq.Y
		if a > b {
			a, b = b, a
		}
		pair := [2]query.Var{a, b}
		if seenPair[pair] {
			continue
		}
		seenPair[pair] = true
		if coOccur[pair] {
			i2 = append(i2, query.NeqVars(a, b))
		} else {
			i1 = append(i1, query.NeqVars(a, b))
			v1set[a] = true
			v1set[b] = true
		}
	}
	for v := range v1set {
		v1 = append(v1, v)
	}
	sortVarSlice(v1)
	return i1, i2, v1, true
}

func sortVarSlice(vs []query.Var) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// prepared holds everything independent of the hash function. After
// prepare returns it is read-only, so concurrent runHash calls (one per
// color trial) may share it freely.
type prepared struct {
	q    *query.CQ
	opts Options

	i1 []query.Ineq
	i2 []query.Ineq
	v1 []query.Var
	// constColors lists the distinct constants that must be separated by
	// the hash range under NoPushdown (empty otherwise).
	constColors []relation.Value
	k           int

	tree *hypergraph.Forest
	// base[j] = S_j with the I₂ selections applied (schema: var attrs).
	base []*relation.Relation
	// uj[j] = the distinct variables of atom j.
	uj [][]query.Var
	// yset[j] = Y_j as an attribute schema (original + hashed attributes).
	yset []relation.Schema
	// occursIn[j] = variables occurring anywhere in T[j].
	occursIn []map[query.Var]bool

	headAttrs relation.Schema
	hOff      int32 // hashed-attribute offset: hashed(x) = Attr(hOff + x)

	// relevant is the domain the hash family must separate: every value in
	// a V₁-variable column, plus inequality constants under NoPushdown.
	relevant []relation.Value

	trivialEmpty bool
}

func (p *prepared) hattr(v query.Var) relation.Attr {
	return relation.Attr(p.hOff + int32(v))
}

// IsAcyclicWithIneqs reports whether the query is an acyclic query with
// inequalities in the paper's sense: the hypergraph of the relational atoms
// alone (inequality edges excluded!) is α-acyclic.
func IsAcyclicWithIneqs(q *query.CQ) bool {
	h, _ := plan.AtomHypergraph(q)
	_, ok := h.JoinForest()
	return ok
}

func prepare(q *query.CQ, db *query.DB, opts Options) (*prepared, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	p := &prepared{q: q, opts: opts}
	// Ground comparisons appear as unsatisfiability markers from BindHead;
	// anything with a variable is genuine Theorem 3 territory.
	for _, c := range q.Cmps {
		if c.Left.IsVar || c.Right.IsVar {
			return nil, ErrComparisons
		}
		if !c.Holds(c.Left.Const, c.Right.Const) {
			p.trivialEmpty = true
			return p, nil
		}
	}

	i1, i2, v1, ok := Partition(q)
	if !ok {
		p.trivialEmpty = true
		return p, nil
	}
	if opts.NoPushdown {
		// Reclassify every x≠y pair as I₁ and route x≠c through colors.
		i1 = i1[:0:0]
		v1set := make(map[query.Var]bool)
		constSet := make(map[relation.Value]bool)
		var i2c []query.Ineq
		seen := make(map[[2]query.Var]bool)
		for _, iq := range q.Ineqs {
			if iq.YIsVar {
				if iq.X == iq.Y {
					p.trivialEmpty = true
					return p, nil
				}
				a, b := iq.X, iq.Y
				if a > b {
					a, b = b, a
				}
				if seen[[2]query.Var{a, b}] {
					continue
				}
				seen[[2]query.Var{a, b}] = true
				i1 = append(i1, query.NeqVars(a, b))
				v1set[a] = true
				v1set[b] = true
			} else {
				i2c = append(i2c, iq)
				v1set[iq.X] = true
				constSet[iq.C] = true
			}
		}
		i2 = i2c
		v1 = v1[:0:0]
		for v := range v1set {
			v1 = append(v1, v)
		}
		sortVarSlice(v1)
		for c := range constSet {
			p.constColors = append(p.constColors, c)
		}
		sortValues(p.constColors)
	}
	p.i1, p.i2, p.v1 = i1, i2, v1
	p.k = len(v1) + len(p.constColors)

	// Hashed-attribute offset above every variable id.
	var maxVar query.Var
	for _, v := range q.Vars() {
		if v > maxVar {
			maxVar = v
		}
	}
	p.hOff = int32(maxVar) + 1

	// Join tree over the relational atoms.
	h, _ := plan.AtomHypergraph(q)
	forest, acyclic := h.JoinForest()
	if !acyclic {
		return nil, ErrCyclic
	}
	if len(q.Atoms) == 0 {
		// Constant-head query with no atoms (and hence no inequalities).
		hg := hypergraph.New(0, [][]int{{}})
		f, _ := hg.JoinForest()
		p.tree = f.JoinTree()
		p.base = []*relation.Relation{relation.NewBool(true)}
		p.uj = [][]query.Var{nil}
		p.yset = []relation.Schema{nil}
		p.occursIn = []map[query.Var]bool{{}}
		p.finishHead()
		return p, nil
	}

	// Reduce atoms and apply the I₂ pushdown.
	inV1 := make(map[query.Var]bool, len(v1))
	for _, v := range v1 {
		inV1[v] = true
	}
	p.base = make([]*relation.Relation, len(q.Atoms))
	p.uj = make([][]query.Var, len(q.Atoms))
	inputs := make([]plan.Input, len(q.Atoms))
	relevantSet := make(map[relation.Value]bool)
	for j, a := range q.Atoms {
		s, vars := eval.ReduceAtom(a, db)
		p.uj[j] = vars
		if !opts.NoPushdown {
			s = p.pushdownI2(s, vars)
		}
		if s.Empty() {
			p.trivialEmpty = true
			return p, nil
		}
		p.base[j] = s
		inputs[j] = plan.Input{Label: a.Rel, Rows: s.Len(), Vars: vars}
		for _, v := range vars {
			if inV1[v] {
				col := s.Pos(relation.Attr(v))
				for r := 0; r < s.Len(); r++ {
					relevantSet[s.At(col, r)] = true
				}
			}
		}
	}
	// Root and order the join tree by the reduced (post-pushdown)
	// cardinalities — same planner policy as the Yannakakis engine; any
	// orientation of the spanning forest is a valid join tree, so Lemma 1's
	// Y-sets below adapt to whichever root minimizes the merge work.
	p.tree = plan.OrderForest(forest, inputs).JoinTree()
	for _, c := range p.constColors {
		relevantSet[c] = true
	}
	p.relevant = make([]relation.Value, 0, len(relevantSet))
	for v := range relevantSet {
		p.relevant = append(p.relevant, v)
	}
	sortValues(p.relevant)

	// Subtree variable sets and the Y_j attribute sets of Lemma 1.
	backTo := q.BodyVars()
	subtreeVerts := h.SubtreeVertices(p.tree)
	p.occursIn = make([]map[query.Var]bool, len(subtreeVerts))
	for j, set := range subtreeVerts {
		m := make(map[query.Var]bool, len(set))
		for vert := range set {
			m[backTo[vert]] = true
		}
		p.occursIn[j] = m
	}
	p.computeYSets(inV1)
	p.finishHead()
	return p, nil
}

func (p *prepared) finishHead() {
	seen := make(map[relation.Attr]bool)
	for _, t := range p.q.Head {
		if t.IsVar {
			a := relation.Attr(t.Var)
			if !seen[a] {
				seen[a] = true
				p.headAttrs = append(p.headAttrs, a)
			}
		}
	}
}

// pushdownI2 applies the I₂ inequalities relevant to an atom's variable set
// directly to its reduced relation — the "(iii) and (iv)" selections of the
// paper's S_j construction.
func (p *prepared) pushdownI2(s *relation.Relation, vars []query.Var) *relation.Relation {
	has := make(map[query.Var]int, len(vars))
	for _, v := range vars {
		has[v] = s.Pos(relation.Attr(v))
	}
	type pairCheck struct{ a, b int }
	type constCheck struct {
		pos int
		c   relation.Value
	}
	var pairs []pairCheck
	var consts []constCheck
	for _, iq := range p.i2 {
		if iq.YIsVar {
			pa, aok := has[iq.X]
			pb, bok := has[iq.Y]
			if aok && bok {
				pairs = append(pairs, pairCheck{pa, pb})
			}
		} else if pos, ok := has[iq.X]; ok {
			consts = append(consts, constCheck{pos, iq.C})
		}
	}
	if len(pairs) == 0 && len(consts) == 0 {
		return s
	}
	return relation.Select(s, func(row []relation.Value) bool {
		for _, pc := range pairs {
			if row[pc.a] == row[pc.b] {
				return false
			}
		}
		for _, cc := range consts {
			if row[cc.pos] == cc.c {
				return false
			}
		}
		return true
	})
}

// computeYSets fills yset[j] = U_j ∪ U′_j ∪ W′_j per the paper: W_j holds
// the V₁ variables that occur strictly below j (in exactly one child
// subtree) and still have an unmet I₁ partner outside that subtree, so
// their color columns must be carried through j.
func (p *prepared) computeYSets(inV1 map[query.Var]bool) {
	partners := make(map[query.Var][]query.Var)
	for _, iq := range p.i1 {
		partners[iq.X] = append(partners[iq.X], iq.Y)
		partners[iq.Y] = append(partners[iq.Y], iq.X)
	}
	p.yset = make([]relation.Schema, len(p.base))
	for j := range p.base {
		var y relation.Schema
		for _, v := range p.uj[j] {
			y = append(y, relation.Attr(v))
		}
		for _, v := range p.uj[j] {
			if inV1[v] {
				y = append(y, p.hattr(v))
			}
		}
		inU := make(map[query.Var]bool, len(p.uj[j]))
		for _, v := range p.uj[j] {
			inU[v] = true
		}
		// W_j: x ∈ V₁ − U_j occurring in T[j] with a partner outside the
		// child subtree holding x.
		for x := range p.occursIn[j] {
			if inU[x] || !inV1[x] {
				continue
			}
			// Find the unique child subtree containing x.
			var childSet map[query.Var]bool
			for _, c := range p.tree.Children[j] {
				if p.occursIn[c][x] {
					childSet = p.occursIn[c]
					break
				}
			}
			if childSet == nil {
				continue // defensive: x ∈ U_j handled above
			}
			needed := false
			for _, l := range partners[x] {
				if !childSet[l] {
					needed = true
					break
				}
			}
			if needed {
				y = append(y, p.hattr(x))
			}
		}
		p.yset[j] = y
	}
}

func sortValues(vs []relation.Value) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// --- per-hash-function passes -------------------------------------------

// extend builds S′_j: S_j plus one color column per V₁ variable of the
// atom, and (under NoPushdown) applies the color checks for x≠c atoms.
func (p *prepared) extend(j int, h colorcoding.Func) *relation.Relation {
	s := p.base[j]
	var hashedVars []query.Var
	inV1 := make(map[query.Var]bool, len(p.v1))
	for _, v := range p.v1 {
		inV1[v] = true
	}
	for _, v := range p.uj[j] {
		if inV1[v] {
			hashedVars = append(hashedVars, v)
		}
	}
	if len(hashedVars) == 0 && len(p.constColors) == 0 {
		return s.Clone()
	}
	schema := s.Schema().Clone()
	srcPos := make([]int, len(hashedVars))
	for i, v := range hashedVars {
		schema = append(schema, p.hattr(v))
		srcPos[i] = s.Pos(relation.Attr(v))
	}
	out := relation.New(schema)

	// NoPushdown: color checks for x≠c atoms over this atom's columns.
	type constCheck struct {
		pos   int
		color int
	}
	var ccs []constCheck
	if p.opts.NoPushdown {
		for _, iq := range p.i2 {
			if iq.YIsVar {
				continue
			}
			if pos := s.Pos(relation.Attr(iq.X)); pos >= 0 {
				ccs = append(ccs, constCheck{pos, h.Color(iq.C)})
			}
		}
	}

	row := make([]relation.Value, len(schema))
	for r := 0; r < s.Len(); r++ {
		skip := false
		for _, cc := range ccs {
			if h.Color(s.At(cc.pos, r)) == cc.color {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		s.RowTo(row[:s.Width()], r)
		for i := range hashedVars {
			row[s.Width()+i] = relation.Value(h.Color(s.At(srcPos[i], r)))
		}
		out.Append(row...)
	}
	return out
}

// filterI1 drops rows whose colors collide on any I₁ pair with both hashed
// attributes present in the relation — the σ_F of Algorithm 1, applied
// whenever both columns have met.
func (p *prepared) filterI1(r *relation.Relation) *relation.Relation {
	type pairCheck struct{ a, b int }
	var pairs []pairCheck
	for _, iq := range p.i1 {
		pa := r.Pos(p.hattr(iq.X))
		pb := r.Pos(p.hattr(iq.Y))
		if pa >= 0 && pb >= 0 {
			pairs = append(pairs, pairCheck{pa, pb})
		}
	}
	if len(pairs) == 0 {
		return r
	}
	return relation.Select(r, func(row []relation.Value) bool {
		for _, pc := range pairs {
			if row[pc.a] == row[pc.b] {
				return false
			}
		}
		return true
	})
}

// runHash executes Algorithm 1 (and, when needOutput, Algorithm 2) for one
// hash function. It returns Q_h's head-variable relation P* (nil unless
// needOutput) and whether Q_h(d) is nonempty. inner is the worker budget
// this trial may spend in the partitioned relational kernel (the driver
// splits the Parallelism budget across trials; ≤ 1 = serial ops); it is a
// parameter, not prepared state, so concurrent executions of one compiled
// Program can run trials under different budgets.
func (p *prepared) runHash(h colorcoding.Func, needOutput bool, inner int) (*relation.Relation, bool) {
	rels := make([]*relation.Relation, len(p.base))
	for j := range p.base {
		rels[j] = p.filterI1(p.extend(j, h))
		if rels[j].Empty() {
			return nil, false
		}
	}

	if inner < 1 {
		inner = 1
	}

	// Algorithm 1: bottom-up merges with color filtering.
	for _, j := range p.tree.Order {
		u := p.tree.Parent[j]
		if u < 0 {
			continue
		}
		proj := relation.Project(rels[j], rels[j].Schema().Intersect(p.yset[u]))
		rels[u] = p.filterI1(relation.NaturalJoinPar(rels[u], proj, inner))
		if rels[u].Empty() {
			return nil, false
		}
	}
	if !needOutput {
		return nil, true
	}

	// Algorithm 2, step 1: top-down semijoins (full consistency).
	for i := len(p.tree.Order) - 1; i >= 0; i-- {
		j := p.tree.Order[i]
		u := p.tree.Parent[j]
		if u < 0 {
			continue
		}
		rels[j] = relation.SemijoinPar(rels[j], rels[u], inner)
	}

	// Algorithm 2, step 2: bottom-up join-project carrying head attributes.
	for _, j := range p.tree.Order {
		u := p.tree.Parent[j]
		if u < 0 {
			continue
		}
		proj := rels[j].Schema().Intersect(rels[u].Schema())
		for _, a := range p.headAttrs {
			if rels[j].Schema().Has(a) && !proj.Has(a) {
				proj = append(proj, a)
			}
		}
		rels[u] = relation.NaturalJoinPar(rels[u], relation.Project(rels[j], proj), inner)
	}
	root := p.tree.Roots[0]
	pstar := relation.Project(rels[root], p.headAttrs)
	return pstar, pstar.Bool()
}

// headTuples maps a head-variable relation onto the positional head layout.
func (p *prepared) headTuples(pstar *relation.Relation) *relation.Relation {
	q := p.q
	out := query.NewTable(len(q.Head))
	if len(q.Head) == 0 {
		if pstar.Bool() {
			out.Append()
		}
		return out
	}
	pos := make([]int, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar {
			pos[i] = pstar.Pos(relation.Attr(t.Var))
		} else {
			pos[i] = -1
		}
	}
	tuple := make([]relation.Value, len(q.Head))
	for r := 0; r < pstar.Len(); r++ {
		for i, t := range q.Head {
			if pos[i] >= 0 {
				tuple[i] = pstar.At(pos[i], r)
			} else {
				tuple[i] = t.Const
			}
		}
		out.Append(tuple...)
	}
	return out.Dedup()
}
