package core

import (
	"errors"
	"testing"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// orgDB is the paper's first Section 5 example: EP(employee, project).
func orgDB() *query.DB {
	db := query.NewDB()
	db.Set("EP", query.Table(2,
		[]relation.Value{1, 100}, // alice → p100
		[]relation.Value{1, 101}, // alice → p101
		[]relation.Value{2, 100}, // bob → p100
		[]relation.Value{3, 101}, // carol → p101
		[]relation.Value{3, 102}, // carol → p102
		[]relation.Value{4, 103}, // dave → p103 only
	))
	return db
}

// multiProjectQuery is G(e) ← EP(e,p), EP(e,p′), p ≠ p′.
func multiProjectQuery() *query.CQ {
	return &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("EP", query.V(0), query.V(1)),
			query.NewAtom("EP", query.V(0), query.V(2)),
		},
		Ineqs: []query.Ineq{query.NeqVars(1, 2)},
	}
}

func TestPaperExampleEmployeesOnTwoProjects(t *testing.T) {
	q := multiProjectQuery()
	if !IsAcyclicWithIneqs(q) {
		t.Fatal("the employee-project query is acyclic with inequalities")
	}
	got, err := Evaluate(q, orgDB())
	if err != nil {
		t.Fatal(err)
	}
	want := query.Table(1, []relation.Value{1}, []relation.Value{3})
	if !relation.EqualSet(got, want) {
		t.Fatalf("employees on >1 project = %v, want %v", got, want)
	}
}

// registrarDB is the paper's second example: SD(student, dept),
// SC(student, course), CD(course, dept).
func registrarDB() *query.DB {
	db := query.NewDB()
	db.Set("SD", query.Table(2,
		[]relation.Value{1, 10}, []relation.Value{2, 10}, []relation.Value{3, 11}))
	db.Set("SC", query.Table(2,
		[]relation.Value{1, 20}, []relation.Value{1, 21},
		[]relation.Value{2, 20}, []relation.Value{3, 22}))
	db.Set("CD", query.Table(2,
		[]relation.Value{20, 10}, []relation.Value{21, 11}, []relation.Value{22, 11}))
	return db
}

func TestPaperExampleStudentsOutsideDept(t *testing.T) {
	// G(s) ← SD(s,d), SC(s,c), CD(c,d′), d ≠ d′.
	q := &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("SD", query.V(0), query.V(1)),
			query.NewAtom("SC", query.V(0), query.V(2)),
			query.NewAtom("CD", query.V(2), query.V(3)),
		},
		Ineqs: []query.Ineq{query.NeqVars(1, 3)},
	}
	if !IsAcyclicWithIneqs(q) {
		t.Fatal("registrar query is acyclic with inequalities")
	}
	got, err := Evaluate(q, registrarDB())
	if err != nil {
		t.Fatal(err)
	}
	// Student 1 takes course 21 (dept 11) while in dept 10 → outside.
	// Student 2 takes only course 20 (dept 10) → inside.
	// Student 3 takes course 22 (dept 11) while in dept 11 → inside.
	want := query.Table(1, []relation.Value{1})
	if !relation.EqualSet(got, want) {
		t.Fatalf("students outside dept = %v, want %v", got, want)
	}
	// The d≠d′ pair makes I₁ nonempty: SD and CD share no hyperedge.
	i1, _, v1, ok := Partition(q)
	if !ok || len(i1) != 1 || len(v1) != 2 {
		t.Fatalf("partition: i1=%v v1=%v ok=%v", i1, v1, ok)
	}
}

func TestPartition(t *testing.T) {
	q := multiProjectQuery()
	// p,p′ co-occur? They do NOT share an atom: EP(e,p) and EP(e,p′) are
	// different atoms — so p≠p′ is I₁.
	i1, i2, v1, ok := Partition(q)
	if !ok || len(i1) != 1 || len(i2) != 0 || len(v1) != 2 {
		t.Fatalf("partition: i1=%v i2=%v v1=%v", i1, i2, v1)
	}
	// Same-atom inequality is I₂.
	q2 := &query.CQ{
		Atoms: []query.Atom{query.NewAtom("EP", query.V(0), query.V(1))},
		Ineqs: []query.Ineq{query.NeqVars(0, 1), query.NeqConst(0, 5)},
	}
	i1, i2, v1, ok = Partition(q2)
	if !ok || len(i1) != 0 || len(i2) != 2 || len(v1) != 0 {
		t.Fatalf("partition2: i1=%v i2=%v v1=%v", i1, i2, v1)
	}
	// Duplicates and reversals collapse.
	q3 := multiProjectQuery()
	q3.Ineqs = append(q3.Ineqs, query.NeqVars(2, 1), query.NeqVars(1, 2))
	i1, _, _, _ = Partition(q3)
	if len(i1) != 1 {
		t.Fatalf("duplicate pairs not collapsed: %v", i1)
	}
	// x ≠ x is unsatisfiable.
	q4 := &query.CQ{
		Atoms: []query.Atom{query.NewAtom("EP", query.V(0), query.V(1))},
		Ineqs: []query.Ineq{query.NeqVars(0, 0)},
	}
	if _, _, _, ok := Partition(q4); ok {
		t.Fatal("x≠x accepted")
	}
	res, err := Evaluate(q4, orgDB())
	if err != nil || res.Bool() {
		t.Fatalf("x≠x query must be empty: %v %v", res, err)
	}
}

func TestComparisonsRejected(t *testing.T) {
	q := &query.CQ{
		Atoms: []query.Atom{query.NewAtom("EP", query.V(0), query.V(1))},
		Cmps:  []query.Cmp{query.Lt(query.V(0), query.V(1))},
	}
	if _, err := Evaluate(q, orgDB()); !errors.Is(err, ErrComparisons) {
		t.Fatalf("want ErrComparisons, got %v", err)
	}
	// Ground-true comparisons are fine; ground-false empty the query.
	qt := &query.CQ{
		Head:  []query.Term{query.V(0)},
		Atoms: []query.Atom{query.NewAtom("EP", query.V(0), query.V(1))},
		Cmps:  []query.Cmp{query.Lt(query.C(0), query.C(1))},
	}
	res, err := Evaluate(qt, orgDB())
	if err != nil || !res.Bool() {
		t.Fatalf("ground-true comparison: %v %v", res, err)
	}
	qf := qt.Clone()
	qf.Cmps = []query.Cmp{query.Lt(query.C(1), query.C(0))}
	res, err = Evaluate(qf, orgDB())
	if err != nil || res.Bool() {
		t.Fatalf("ground-false comparison: %v %v", res, err)
	}
}

func TestCyclicRejected(t *testing.T) {
	q := &query.CQ{
		Atoms: []query.Atom{
			query.NewAtom("EP", query.V(0), query.V(1)),
			query.NewAtom("EP", query.V(1), query.V(2)),
			query.NewAtom("EP", query.V(2), query.V(0)),
		},
		Ineqs: []query.Ineq{query.NeqVars(0, 2)},
	}
	if _, err := Evaluate(q, orgDB()); !errors.Is(err, ErrCyclic) {
		t.Fatalf("want ErrCyclic, got %v", err)
	}
}

func TestDecide(t *testing.T) {
	q := multiProjectQuery()
	ok, err := Decide(q, orgDB(), []relation.Value{1}, Options{})
	if err != nil || !ok {
		t.Fatalf("alice is on two projects: %v %v", ok, err)
	}
	ok, err = Decide(q, orgDB(), []relation.Value{4}, Options{})
	if err != nil || ok {
		t.Fatalf("dave is on one project: %v %v", ok, err)
	}
	// Constant-head mismatch path.
	qc := &query.CQ{Head: []query.Term{query.C(9)},
		Atoms: []query.Atom{query.NewAtom("EP", query.V(0), query.V(1))}}
	ok, err = Decide(qc, orgDB(), []relation.Value{8}, Options{})
	if err != nil || ok {
		t.Fatalf("head-constant mismatch must be false: %v %v", ok, err)
	}
}

func TestStrategiesAgree(t *testing.T) {
	q := multiProjectQuery()
	db := orgDB()
	want, err := Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Exact, WHP, MonteCarlo} {
		got, err := EvaluateOpts(q, db, Options{Strategy: s, C: 6, Seed: 11})
		if err != nil {
			t.Fatalf("strategy %d: %v", s, err)
		}
		if !relation.EqualSet(got, want) {
			t.Fatalf("strategy %d disagrees: %v vs %v", s, got, want)
		}
	}
}

func TestNoPushdownAgrees(t *testing.T) {
	db := orgDB()
	q := multiProjectQuery()
	q.Ineqs = append(q.Ineqs, query.NeqConst(0, 2)) // exclude bob explicitly
	want, err := Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := EvaluateStats(q, db, Options{NoPushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(got, want) {
		t.Fatalf("NoPushdown disagrees: %v vs %v", got, want)
	}
	// Under NoPushdown the constant joins the hash range.
	if stats.K < 3 {
		t.Fatalf("NoPushdown should raise k (vars 1,2 + var 0 + const): k=%d", stats.K)
	}
}

func TestEvaluateBoolAndStats(t *testing.T) {
	q := multiProjectQuery()
	ok, stats, err := EvaluateBoolStats(q, orgDB(), Options{})
	if err != nil || !ok {
		t.Fatalf("bool: %v %v", ok, err)
	}
	if stats.K != 2 || stats.I1 != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.FamilySize < 1 || stats.Successes != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// A query made empty by the inequality.
	db := query.NewDB()
	db.Set("EP", query.Table(2, []relation.Value{1, 100}))
	ok, _, err = EvaluateBoolStats(q, db, Options{})
	if err != nil || ok {
		t.Fatalf("single-project world must be empty: %v %v", ok, err)
	}
}

func TestNoIneqsDegeneratesToYannakakis(t *testing.T) {
	db := orgDB()
	q := &query.CQ{
		Head: []query.Term{query.V(0), query.V(1)},
		Atoms: []query.Atom{
			query.NewAtom("EP", query.V(0), query.V(1)),
		},
	}
	got, stats, err := EvaluateStats(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.K != 0 || stats.FamilySize != 1 {
		t.Fatalf("k=0 run should use the trivial family: %+v", stats)
	}
	if got.Len() != db.MustRel("EP").Len() {
		t.Fatalf("identity query lost tuples: %v", got)
	}
}

func TestDisconnectedComponentsWithCrossIneq(t *testing.T) {
	// G() ← A(x0), B(x1), x0 ≠ x1 — the inequality spans two components
	// linked only through the artificial join-tree root edge.
	db := query.NewDB()
	db.Set("A", query.Table(1, []relation.Value{1}, []relation.Value{2}))
	db.Set("B", query.Table(1, []relation.Value{1}))
	q := &query.CQ{
		Atoms: []query.Atom{query.NewAtom("A", query.V(0)), query.NewAtom("B", query.V(1))},
		Ineqs: []query.Ineq{query.NeqVars(0, 1)},
	}
	ok, err := EvaluateBool(q, db)
	if err != nil || !ok {
		t.Fatalf("A=2,B=1 satisfies x0≠x1: %v %v", ok, err)
	}
	db2 := query.NewDB()
	db2.Set("A", query.Table(1, []relation.Value{1}))
	db2.Set("B", query.Table(1, []relation.Value{1}))
	ok, err = EvaluateBool(q, db2)
	if err != nil || ok {
		t.Fatalf("A=B={1} cannot satisfy x0≠x1: %v %v", ok, err)
	}
}

func TestHeadWithConstantsAndRepeats(t *testing.T) {
	q := &query.CQ{
		Head: []query.Term{query.V(0), query.C(7), query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("EP", query.V(0), query.V(1)),
			query.NewAtom("EP", query.V(0), query.V(2)),
		},
		Ineqs: []query.Ineq{query.NeqVars(1, 2)},
	}
	got, err := Evaluate(q, orgDB())
	if err != nil {
		t.Fatal(err)
	}
	want := query.Table(3, []relation.Value{1, 7, 1}, []relation.Value{3, 7, 3})
	if !relation.EqualSet(got, want) {
		t.Fatalf("head mapping = %v, want %v", got, want)
	}
}
