package core

import (
	"fmt"

	"pyquery/internal/colorcoding"
	"pyquery/internal/eval"
	"pyquery/internal/parallel"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// IneqFormula is a positive Boolean combination (∧/∨) of inequality atoms —
// the Section 5 extension for parameter q: "instead of a conjunction of
// inequalities in the body of the query, we have an arbitrary Boolean
// formula φ built from inequality atoms using ∨ and ∧".
type IneqFormula interface {
	isIneqFormula()
	String() string
}

// IneqAtom is a single x≠y or x≠c atom used as a formula leaf.
type IneqAtom struct{ Ineq query.Ineq }

// IneqAnd is a conjunction; empty means true.
type IneqAnd struct{ Subs []IneqFormula }

// IneqOr is a disjunction; empty means false.
type IneqOr struct{ Subs []IneqFormula }

func (IneqAtom) isIneqFormula() {}
func (IneqAnd) isIneqFormula()  {}
func (IneqOr) isIneqFormula()   {}

func (f IneqAtom) String() string { return f.Ineq.String() }
func (f IneqAnd) String() string  { return nary("&", f.Subs) }
func (f IneqOr) String() string   { return nary("|", f.Subs) }

func nary(op string, subs []IneqFormula) string {
	s := "("
	for i, sub := range subs {
		if i > 0 {
			s += " " + op + " "
		}
		s += sub.String()
	}
	return s + ")"
}

// FromConjunction lifts a plain inequality list into formula form.
func FromConjunction(ineqs []query.Ineq) IneqFormula {
	subs := make([]IneqFormula, len(ineqs))
	for i, iq := range ineqs {
		subs[i] = IneqAtom{Ineq: iq}
	}
	return IneqAnd{Subs: subs}
}

// EvalIneqFormulaValues evaluates φ under a value assignment — the
// reference semantics used by tests and by the final filter's contract.
func EvalIneqFormulaValues(f IneqFormula, get func(query.Var) relation.Value) bool {
	switch g := f.(type) {
	case IneqAtom:
		x := get(g.Ineq.X)
		if g.Ineq.YIsVar {
			return x != get(g.Ineq.Y)
		}
		return x != g.Ineq.C
	case IneqAnd:
		for _, s := range g.Subs {
			if !EvalIneqFormulaValues(s, get) {
				return false
			}
		}
		return true
	case IneqOr:
		for _, s := range g.Subs {
			if EvalIneqFormulaValues(s, get) {
				return true
			}
		}
		return false
	}
	panic(fmt.Sprintf("core: unknown inequality formula node %T", f))
}

// ineqFormulaVars collects the distinct variables and constants of φ.
func ineqFormulaVars(f IneqFormula) (vars []query.Var, consts []relation.Value) {
	vset := map[query.Var]bool{}
	cset := map[relation.Value]bool{}
	var walk func(IneqFormula)
	walk = func(f IneqFormula) {
		switch g := f.(type) {
		case IneqAtom:
			vset[g.Ineq.X] = true
			if g.Ineq.YIsVar {
				vset[g.Ineq.Y] = true
			} else {
				cset[g.Ineq.C] = true
			}
		case IneqAnd:
			for _, s := range g.Subs {
				walk(s)
			}
		case IneqOr:
			for _, s := range g.Subs {
				walk(s)
			}
		}
	}
	walk(f)
	for v := range vset {
		vars = append(vars, v)
	}
	sortVarSlice(vars)
	for c := range cset {
		consts = append(consts, c)
	}
	sortValues(consts)
	return vars, consts
}

// EvaluateIneqFormula evaluates an acyclic pure conjunctive query whose
// inequality constraints form an arbitrary ∧/∨ formula φ (parameter q
// extension of Theorem 2). Unlike the conjunction case, selections cannot
// be pushed down the join tree: every color column rides to the root, φ is
// evaluated there on colors (sound because φ is monotone in its atoms and
// color-distinctness implies value-distinctness; complete over a k-perfect
// family on the φ-relevant values, with k = #vars + #constants of φ).
func EvaluateIneqFormula(q *query.CQ, phi IneqFormula, db *query.DB, opts Options) (*relation.Relation, error) {
	opts = opts.withDefaults()
	if len(q.Ineqs) > 0 || len(q.Cmps) > 0 {
		return nil, fmt.Errorf("core: move the query's inequality atoms into φ")
	}
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	phiVars, phiConsts := ineqFormulaVars(phi)
	bodyVars := map[query.Var]bool{}
	for _, v := range q.BodyVars() {
		bodyVars[v] = true
	}
	for _, v := range phiVars {
		if !bodyVars[v] {
			return nil, fmt.Errorf("core: φ variable x%d does not occur in the query body", v)
		}
	}

	h, _ := plan.AtomHypergraph(q)
	forest, acyclic := h.JoinForest()
	if !acyclic {
		return nil, ErrCyclic
	}
	if len(q.Atoms) == 0 {
		// No atoms ⇒ no variables anywhere; φ is ground.
		out := query.NewTable(len(q.Head))
		ground := EvalIneqFormulaValues(phi, func(query.Var) relation.Value {
			panic("core: ground formula expected")
		})
		if ground {
			row := make([]relation.Value, len(q.Head))
			for i, t := range q.Head {
				row[i] = t.Const
			}
			out.Append(row...)
		}
		return out, nil
	}
	// Reduce atoms; collect the φ-relevant domain.
	inPhi := map[query.Var]bool{}
	for _, v := range phiVars {
		inPhi[v] = true
	}
	base := make([]*relation.Relation, len(q.Atoms))
	uj := make([][]query.Var, len(q.Atoms))
	inputs := make([]plan.Input, len(q.Atoms))
	relevant := map[relation.Value]bool{}
	for j, a := range q.Atoms {
		s, vars := eval.ReduceAtom(a, db)
		if s.Empty() {
			return query.NewTable(len(q.Head)), nil
		}
		base[j] = s
		uj[j] = vars
		inputs[j] = plan.Input{Label: a.Rel, Rows: s.Len(), Vars: vars}
		for _, v := range vars {
			if inPhi[v] {
				col := s.Pos(relation.Attr(v))
				for r := 0; r < s.Len(); r++ {
					relevant[s.At(col, r)] = true
				}
			}
		}
	}
	// Same planner policy as the conjunction path: root at the heaviest
	// reduced relation, lightest children first.
	tree := plan.OrderForest(forest, inputs).JoinTree()
	for _, c := range phiConsts {
		relevant[c] = true
	}
	domain := make([]relation.Value, 0, len(relevant))
	for v := range relevant {
		domain = append(domain, v)
	}
	sortValues(domain)
	k := len(phiVars) + len(phiConsts)

	var maxVar query.Var
	for _, v := range q.Vars() {
		if v > maxVar {
			maxVar = v
		}
	}
	hOff := int32(maxVar) + 1
	hattr := func(v query.Var) relation.Attr { return relation.Attr(hOff + int32(v)) }

	var headAttrs relation.Schema
	seenHead := map[relation.Attr]bool{}
	for _, t := range q.Head {
		if t.IsVar && !seenHead[relation.Attr(t.Var)] {
			seenHead[relation.Attr(t.Var)] = true
			headAttrs = append(headAttrs, relation.Attr(t.Var))
		}
	}

	fam, err := formulaFamily(domain, k, opts)
	if err != nil {
		return nil, err
	}

	// outer trials run concurrently; each trial spends the leftover budget
	// in the partitioned relational kernel.
	outer, inner := parallel.Split(parallel.Workers(opts.Parallelism), len(fam))

	runOne := func(hf colorcoding.Func) *relation.Relation {
		rels := make([]*relation.Relation, len(base))
		for j := range base {
			rels[j] = extendColors(base[j], uj[j], inPhi, hattr, hf)
		}
		// Full reducer on the base join attributes.
		for _, j := range tree.Order {
			u := tree.Parent[j]
			if u < 0 {
				continue
			}
			rels[u] = relation.SemijoinPar(rels[u], rels[j], inner)
			if rels[u].Empty() {
				return nil
			}
		}
		for i := len(tree.Order) - 1; i >= 0; i-- {
			j := tree.Order[i]
			u := tree.Parent[j]
			if u < 0 {
				continue
			}
			rels[j] = relation.SemijoinPar(rels[j], rels[u], inner)
		}
		// Bottom-up joins carrying every color and head column upward.
		for _, j := range tree.Order {
			u := tree.Parent[j]
			if u < 0 {
				continue
			}
			proj := rels[j].Schema().Intersect(rels[u].Schema())
			for _, v := range phiVars {
				a := hattr(v)
				if rels[j].Schema().Has(a) && !proj.Has(a) {
					proj = append(proj, a)
				}
			}
			for _, a := range headAttrs {
				if rels[j].Schema().Has(a) && !proj.Has(a) {
					proj = append(proj, a)
				}
			}
			rels[u] = relation.NaturalJoinPar(rels[u], relation.Project(rels[j], proj), inner)
			if rels[u].Empty() {
				return nil
			}
		}
		root := tree.Roots[0]
		// φ filter on colors: variables read their hashed column, constants
		// hash through hf.
		pos := map[query.Var]int{}
		ok := true
		for _, v := range phiVars {
			p := rels[root].Pos(hattr(v))
			if p < 0 {
				ok = false
				break
			}
			pos[v] = p
		}
		if !ok {
			return nil
		}
		// Rewrite φ's constants into their colors once per hash function,
		// then evaluate φ on the color columns.
		recolored := recolorConsts(phi, hf)
		filtered := relation.Select(rels[root], func(row []relation.Value) bool {
			return EvalIneqFormulaValues(recolored, func(v query.Var) relation.Value {
				return row[pos[v]]
			})
		})
		if filtered.Empty() {
			return nil
		}
		return relation.Project(filtered, headAttrs)
	}

	// Trials are independent; run them across the worker budget in batches,
	// merged in family order (identical result at any parallelism, peak
	// memory bounded by the batch width).
	acc, _ := batchedUnion(nil, nil, outer, len(fam), func(i int) *relation.Relation {
		return runOne(fam[i])
	}, nil)
	if acc == nil {
		return query.NewTable(len(q.Head)), nil
	}
	// Map head-variable rows onto the positional head layout.
	p := &prepared{q: q}
	p.finishHead()
	return p.headTuples(acc), nil
}

// formulaFamily mirrors family() for the formula extension.
func formulaFamily(domain []relation.Value, k int, opts Options) ([]colorcoding.Func, error) {
	switch opts.Strategy {
	case MonteCarlo:
		return colorcoding.Trials(k, opts.C, opts.Seed), nil
	case Exact:
		return colorcoding.ExactPerfect(domain, k)
	case WHP:
		return colorcoding.WHPPerfect(len(domain), k, opts.Delta, opts.Seed), nil
	default:
		const autoBudget = 50_000
		if colorcoding.ExactFeasible(len(domain), k, autoBudget) {
			return colorcoding.ExactPerfect(domain, k)
		}
		return colorcoding.WHPPerfect(len(domain), k, opts.Delta, opts.Seed), nil
	}
}

// extendColors returns s extended with one color column per φ-variable of
// the atom.
func extendColors(s *relation.Relation, vars []query.Var, inPhi map[query.Var]bool,
	hattr func(query.Var) relation.Attr, hf colorcoding.Func) *relation.Relation {
	var hashed []query.Var
	for _, v := range vars {
		if inPhi[v] {
			hashed = append(hashed, v)
		}
	}
	if len(hashed) == 0 {
		return s
	}
	schema := s.Schema().Clone()
	src := make([]int, len(hashed))
	for i, v := range hashed {
		schema = append(schema, hattr(v))
		src[i] = s.Pos(relation.Attr(v))
	}
	out := relation.New(schema)
	row := make([]relation.Value, len(schema))
	for r := 0; r < s.Len(); r++ {
		s.RowTo(row[:s.Width()], r)
		for i := range hashed {
			row[s.Width()+i] = relation.Value(hf.Color(s.At(src[i], r)))
		}
		out.Append(row...)
	}
	return out
}

// recolorConsts maps every x≠c constant of φ through the hash function so
// the root filter compares colors against colors.
func recolorConsts(f IneqFormula, hf colorcoding.Func) IneqFormula {
	switch g := f.(type) {
	case IneqAtom:
		if g.Ineq.YIsVar {
			return g
		}
		return IneqAtom{Ineq: query.NeqConst(g.Ineq.X, relation.Value(hf.Color(g.Ineq.C)))}
	case IneqAnd:
		subs := make([]IneqFormula, len(g.Subs))
		for i, s := range g.Subs {
			subs[i] = recolorConsts(s, hf)
		}
		return IneqAnd{Subs: subs}
	case IneqOr:
		subs := make([]IneqFormula, len(g.Subs))
		for i, s := range g.Subs {
			subs[i] = recolorConsts(s, hf)
		}
		return IneqOr{Subs: subs}
	}
	panic(fmt.Sprintf("core: unknown inequality formula node %T", f))
}
