package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pyquery/internal/eval"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// randAcyclicIneqInstance builds a random acyclic conjunctive query with
// inequalities plus a random database, sized for the brute-force oracle.
// Acyclicity comes from ear construction (each atom shares variables with a
// single earlier atom).
func randAcyclicIneqInstance(rnd *rand.Rand) (*query.CQ, *query.DB) {
	db := query.NewDB()
	domain := 2 + rnd.Intn(4)
	nAtoms := 1 + rnd.Intn(4)

	q := &query.CQ{}
	nextVar := query.Var(0)
	atomVars := make([][]query.Var, 0, nAtoms)
	for i := 0; i < nAtoms; i++ {
		var vars []query.Var
		if i > 0 {
			parent := atomVars[rnd.Intn(len(atomVars))]
			for _, v := range parent {
				if rnd.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
		}
		fresh := 1 + rnd.Intn(2)
		for f := 0; f < fresh; f++ {
			vars = append(vars, nextVar)
			nextVar++
		}
		atomVars = append(atomVars, vars)
	}
	for i, vars := range atomVars {
		name := string(rune('A' + i))
		arity := len(vars)
		r := query.NewTable(arity)
		rows := 1 + rnd.Intn(9)
		row := make([]relation.Value, arity)
		for j := 0; j < rows; j++ {
			for c := range row {
				row[c] = relation.Value(rnd.Intn(domain))
			}
			r.Append(row...)
		}
		r.Dedup()
		db.Set(name, r)
		args := make([]query.Term, arity)
		for j, v := range vars {
			args[j] = query.V(v)
		}
		q.Atoms = append(q.Atoms, query.Atom{Rel: name, Args: args})
	}
	all := q.BodyVars()
	// Head: random subset.
	for _, v := range all {
		if rnd.Intn(3) == 0 {
			q.Head = append(q.Head, query.V(v))
		}
	}
	// Inequalities: a few random pairs and constants — this is the point of
	// the exercise, so be generous. Keep |V1| small for the e^k family.
	nIneq := rnd.Intn(4)
	for i := 0; i < nIneq && len(all) >= 2; i++ {
		x := all[rnd.Intn(len(all))]
		y := all[rnd.Intn(len(all))]
		if x != y {
			q.Ineqs = append(q.Ineqs, query.NeqVars(x, y))
		}
	}
	if rnd.Intn(2) == 0 && len(all) > 0 {
		q.Ineqs = append(q.Ineqs,
			query.NeqConst(all[rnd.Intn(len(all))], relation.Value(rnd.Intn(domain))))
	}
	return q, db
}

// Property: the Theorem 2 engine with the certified exact family computes
// exactly the brute-force answer, for evaluation and decision, with and
// without the I₂ pushdown.
func TestQuickCoreAgreesWithBrute(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, db := randAcyclicIneqInstance(rnd)
		if !IsAcyclicWithIneqs(q) {
			t.Logf("seed %d: generator produced a cyclic query", seed)
			return false
		}
		want, err := eval.ConjunctiveBrute(q, db)
		if err != nil {
			return true
		}
		got, err := EvaluateOpts(q, db, Options{Strategy: Exact})
		if err != nil {
			t.Logf("seed %d: engine error %v on %v", seed, err, q)
			return false
		}
		if !relation.EqualSet(got, want) {
			t.Logf("seed %d: mismatch on %v:\n got %v\nwant %v", seed, q, got, want)
			return false
		}
		ok, err := EvaluateBoolOpts(q, db, Options{Strategy: Exact})
		if err != nil || ok != want.Bool() {
			t.Logf("seed %d: bool mismatch (%v vs %v; err %v)", seed, ok, want.Bool(), err)
			return false
		}
		got2, err := EvaluateOpts(q, db, Options{Strategy: Exact, NoPushdown: true})
		if err != nil {
			t.Logf("seed %d: NoPushdown error %v", seed, err)
			return false
		}
		if !relation.EqualSet(got2, want) {
			t.Logf("seed %d: NoPushdown mismatch on %v:\n got %v\nwant %v", seed, q, got2, want)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Monte-Carlo answers are always sound (⊆ exact) and, at high
// confidence with a fixed seed, complete on these sizes.
func TestQuickMonteCarloSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, db := randAcyclicIneqInstance(rnd)
		exact, err := EvaluateOpts(q, db, Options{Strategy: Exact})
		if err != nil {
			return true
		}
		mc, err := EvaluateOpts(q, db, Options{Strategy: MonteCarlo, C: 2, Seed: seed})
		if err != nil {
			t.Logf("seed %d: MC error %v", seed, err)
			return false
		}
		for i := 0; i < mc.Len(); i++ {
			if !exact.Contains(mc.Row(i)) {
				t.Logf("seed %d: MC emitted a wrong tuple %v", seed, mc.Row(i))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(72))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: WHP family agrees with Exact on small instances.
func TestQuickWHPAgreesWithExact(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, db := randAcyclicIneqInstance(rnd)
		exact, err := EvaluateOpts(q, db, Options{Strategy: Exact})
		if err != nil {
			return true
		}
		whp, err := EvaluateOpts(q, db, Options{Strategy: WHP, Seed: seed})
		if err != nil {
			t.Logf("seed %d: WHP error %v", seed, err)
			return false
		}
		if !relation.EqualSet(whp, exact) {
			t.Logf("seed %d: WHP mismatch", seed)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
