package wcoj

import (
	"math/rand"
	"sort"
	"testing"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// randRelation builds a random relation of the given width, with
// duplicates (the trie must preserve multiplicities).
func randRelation(rnd *rand.Rand, rows, width, domain int) *relation.Relation {
	r := query.NewTable(width)
	row := make([]relation.Value, width)
	for i := 0; i < rows; i++ {
		for c := range row {
			row[c] = relation.Value(rnd.Intn(domain))
		}
		r.Append(row...)
	}
	return r
}

// randPerm is a random permutation of 0…n−1.
func randPerm(rnd *rand.Rand, n int) []int {
	p := rnd.Perm(n)
	return p
}

// TestTriePreservesMultiset: building a trie is a permutation of the rows —
// the multiset of (permuted) tuples is unchanged.
func TestTriePreservesMultiset(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		w := 1 + rnd.Intn(4)
		r := randRelation(rnd, rnd.Intn(50), w, 1+rnd.Intn(8))
		perm := randPerm(rnd, w)
		tr := BuildTrie(r, perm)
		if tr.Len() != r.Len() || tr.Width() != w {
			t.Fatalf("seed=%d: dims %dx%d, want %dx%d", seed, tr.Len(), tr.Width(), r.Len(), w)
		}
		count := func(rows [][]relation.Value) map[string]int {
			m := make(map[string]int)
			for _, row := range rows {
				key := ""
				for _, v := range row {
					key += string(rune(v)) + ","
				}
				m[key]++
			}
			return m
		}
		var orig, got [][]relation.Value
		for i := 0; i < r.Len(); i++ {
			row := r.Row(i)
			p := make([]relation.Value, w)
			for l, c := range perm {
				p[l] = row[c]
			}
			orig = append(orig, p)
			g := make([]relation.Value, w)
			for l := 0; l < w; l++ {
				g[l] = tr.At(l, i)
			}
			got = append(got, g)
		}
		om, gm := count(orig), count(got)
		if len(om) != len(gm) {
			t.Fatalf("seed=%d: multiset size changed", seed)
		}
		for k, n := range om {
			if gm[k] != n {
				t.Fatalf("seed=%d: multiplicity of %q changed %d→%d", seed, k, n, gm[k])
			}
		}
	}
}

// TestTrieSortedPerLevel: rows are sorted lexicographically under the
// permutation, so every level is sorted within its parent's equal-prefix
// range — equivalently, the permuted row sequence is globally
// lexicographically nondecreasing.
func TestTrieSortedPerLevel(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		w := 1 + rnd.Intn(4)
		r := randRelation(rnd, rnd.Intn(60), w, 1+rnd.Intn(6))
		tr := BuildTrie(r, randPerm(rnd, w))
		for i := 1; i < tr.Len(); i++ {
			for l := 0; l < w; l++ {
				a, b := tr.At(l, i-1), tr.At(l, i)
				if a < b {
					break
				}
				if a > b {
					t.Fatalf("seed=%d: rows %d,%d out of order at level %d", seed, i-1, i, l)
				}
			}
		}
	}
}

// TestTrieSeekNextReference: Seek and Next agree with a linear scan on
// every *valid* window — an equal-prefix range of the earlier levels,
// reached by descending the trie the way the engine does (a level is only
// sorted within such ranges, so arbitrary windows are out of contract).
func TestTrieSeekNextReference(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		w := 1 + rnd.Intn(3)
		r := randRelation(rnd, 1+rnd.Intn(60), w, 1+rnd.Intn(10))
		tr := BuildTrie(r, randPerm(rnd, w))
		probe := func(l, lo, hi int) {
			for trial := 0; trial < 20; trial++ {
				v := relation.Value(rnd.Intn(12))
				wantSeek, wantNext := hi, hi
				for i := lo; i < hi; i++ {
					if tr.At(l, i) >= v {
						wantSeek = i
						break
					}
				}
				for i := lo; i < hi; i++ {
					if tr.At(l, i) > v {
						wantNext = i
						break
					}
				}
				if got := tr.Seek(l, lo, hi, v); got != wantSeek {
					t.Fatalf("seed=%d: Seek(%d,[%d,%d),%d)=%d, want %d", seed, l, lo, hi, v, got, wantSeek)
				}
				if got := tr.Next(l, lo, hi, v); got != wantNext {
					t.Fatalf("seed=%d: Next(%d,[%d,%d),%d)=%d, want %d", seed, l, lo, hi, v, got, wantNext)
				}
			}
		}
		var walk func(l, lo, hi int)
		walk = func(l, lo, hi int) {
			if l >= w || lo >= hi {
				return
			}
			probe(l, lo, hi)
			// Descend at a random present value: [Seek, Next) is the child
			// window, exactly how the engine narrows.
			v := tr.At(l, lo+rnd.Intn(hi-lo))
			walk(l+1, tr.Seek(l, lo, hi, v), tr.Next(l, lo, hi, v))
		}
		walk(0, 0, tr.Len())
	}
}

// leapfrogIntersect intersects the level-0 value sets of tries with the
// engine's Seek/At loop — the unit under FuzzTrieIntersect.
func leapfrogIntersect(tries []*Trie) []relation.Value {
	var out []relation.Value
	lo := make([]int, len(tries))
	var v relation.Value
	for i, tr := range tries {
		if tr.Len() == 0 {
			return nil
		}
		if w := tr.At(0, 0); i == 0 || w > v {
			v = w
		}
	}
	for {
		aligned := true
		for i, tr := range tries {
			pos := tr.Seek(0, lo[i], tr.Len(), v)
			if pos == tr.Len() {
				return out
			}
			lo[i] = pos
			if w := tr.At(0, pos); w > v {
				v = w
				aligned = false
				break
			}
		}
		if !aligned {
			continue
		}
		out = append(out, v)
		for i, tr := range tries {
			lo[i] = tr.Next(0, lo[i], tr.Len(), v)
			if lo[i] == tr.Len() {
				return out
			}
		}
		for i, tr := range tries {
			if w := tr.At(0, lo[i]); i == 0 || w > v {
				v = w
			}
		}
	}
}

// refIntersect is the naive reference: sorted distinct values present in
// every list.
func refIntersect(lists [][]relation.Value) []relation.Value {
	counts := make(map[relation.Value]int)
	for _, l := range lists {
		seen := make(map[relation.Value]bool)
		for _, v := range l {
			if !seen[v] {
				seen[v] = true
				counts[v]++
			}
		}
	}
	var out []relation.Value
	for v, n := range counts {
		if n == len(lists) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bytesToColumn(b []byte) (*relation.Relation, []relation.Value) {
	r := query.NewTable(1)
	vals := make([]relation.Value, 0, len(b))
	for _, c := range b {
		v := relation.Value(c)
		r.Append(v)
		vals = append(vals, v)
	}
	return r, vals
}

// FuzzTrieIntersect: the trie-based leapfrog intersection of two (or, with
// the third input, three) unsorted multisets equals the naive sorted
// set-intersection reference.
func FuzzTrieIntersect(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, []byte{})
	f.Add([]byte{5, 5, 5, 1}, []byte{5, 1, 9}, []byte{1, 5})
	f.Add([]byte{}, []byte{1}, []byte{2})
	f.Add([]byte{0, 255, 128, 0}, []byte{255, 0}, []byte{0, 0, 255})
	f.Add([]byte{7}, []byte{7}, []byte{7})
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		inputs := [][]byte{a, b}
		if len(c) > 0 {
			inputs = append(inputs, c)
		}
		tries := make([]*Trie, len(inputs))
		lists := make([][]relation.Value, len(inputs))
		for i, in := range inputs {
			r, vals := bytesToColumn(in)
			tries[i] = BuildTrie(r, []int{0})
			lists[i] = vals
		}
		got := leapfrogIntersect(tries)
		want := refIntersect(lists)
		if len(got) != len(want) {
			t.Fatalf("intersection size %d, want %d (got %v want %v)", len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("intersection[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}
