package wcoj

import (
	"sort"

	"pyquery/internal/relation"
)

// Trie is the sorted, column-major trie view of one reduced relation under
// a column permutation: rows are sorted lexicographically by the permuted
// columns and stored one slice per trie level, so the subtrie below any
// prefix of values is a contiguous row range [lo, hi) and descending a
// level is a pair of binary searches, not a pointer chase. The view is
// read-only after Build, so concurrent cursors share it freely.
type Trie struct {
	n    int
	cols [][]relation.Value
}

// BuildTrie sorts r's rows lexicographically under perm (perm[level] is the
// source column read at trie level `level`) and lays them out column-major.
// Duplicate rows are preserved — the engine's answer dedup happens at
// emission, and multiplicities keep Seek/Next ranges honest about fanout.
func BuildTrie(r *relation.Relation, perm []int) *Trie {
	n := r.Len()
	// Resolve each level's column representation once: the comparator and
	// the gather below read the narrow or wide slice directly instead of
	// paying a branch (or a row materialization) per access.
	narrow := make([][]int32, len(perm))
	wide := make([][]relation.Value, len(perm))
	for l, c := range perm {
		if nv := r.ColNarrow(c); nv != nil {
			narrow[l] = nv
		} else {
			wide[l] = r.ColWide(c)
		}
	}
	at := func(l, i int) relation.Value {
		if nv := narrow[l]; nv != nil {
			return relation.Value(nv[i])
		}
		return wide[l][i]
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for l := range perm {
			va, vb := at(l, ia), at(l, ib)
			if va != vb {
				return va < vb
			}
		}
		return ia < ib // stable for determinism
	})
	t := &Trie{n: n, cols: make([][]relation.Value, len(perm))}
	for l := range perm {
		col := make([]relation.Value, n)
		if nv := narrow[l]; nv != nil {
			for i, ri := range idx {
				col[i] = relation.Value(nv[ri])
			}
		} else {
			wv := wide[l]
			for i, ri := range idx {
				col[i] = wv[ri]
			}
		}
		t.cols[l] = col
	}
	return t
}

// Len returns the number of rows (trie leaves).
func (t *Trie) Len() int { return t.n }

// Width returns the number of levels.
func (t *Trie) Width() int { return len(t.cols) }

// At returns the value at trie level l of sorted row i.
func (t *Trie) At(l, i int) relation.Value { return t.cols[l][i] }

// Seek returns the first row in [lo, hi) whose level-l value is ≥ v, or hi.
func (t *Trie) Seek(l, lo, hi int, v relation.Value) int {
	col := t.cols[l]
	return lo + sort.Search(hi-lo, func(i int) bool { return col[lo+i] >= v })
}

// Next returns the first row in [lo, hi) whose level-l value is > v, or hi.
// It is the dedicated upper bound — Seek(v+1) would overflow at the value
// domain's edge.
func (t *Trie) Next(l, lo, hi int, v relation.Value) int {
	col := t.cols[l]
	return lo + sort.Search(hi-lo, func(i int) bool { return col[lo+i] > v })
}
