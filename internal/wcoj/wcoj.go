// Package wcoj is the worst-case-optimal join engine: a leapfrog-triejoin /
// generic-join evaluator that picks one global variable order from the
// shared planning statistics (plan.VarOrder — no per-engine heuristic) and
// intersects the atoms one variable at a time over sorted trie views, so
// the work is bounded by the AGM fractional-cover output bound instead of
// the pairwise backtracker's intermediate sizes.
//
// Routing is cost-gated like the decomposition engine, but bound against
// bound: Route.Use compares the AGM estimate with plan.WorstCost, the
// skew-aware (max-frequency) worst case of the backtracker's search on the
// same inputs. Trie construction happens at Compile — the prepared layer
// pays it once per epoch — and every execution only binary-searches the
// frozen column slices, polling the shared stop flag per intersection and
// checking the governor meter in batches.
package wcoj

import (
	"context"
	"fmt"
	"sync/atomic"

	"pyquery/internal/eval"
	"pyquery/internal/governor"
	"pyquery/internal/parallel"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// Route is the worst-case-optimal plan for one (query, database) pair: the
// global variable order plus the cost-gate verdict against the worst-case
// backtracker bound.
type Route struct {
	// Order is the global variable order (plan.VarOrder).
	Order []query.Var
	// Cost is the AGM fractional-cover bound on the join's output — the
	// engine's work bound up to logarithmic factors.
	Cost float64
	// WorstCost is the skew-aware worst case of the backtracker's search on
	// the same inputs (plan.WorstCost over plan.Build's order), and Use the
	// gate verdict Cost < WorstCost.
	WorstCost float64
	Use       bool

	inputs []plan.Input
	reds   []*relation.Relation
}

// eligible mirrors the decomposition engine's structural boundary: the
// leapfrog intersection handles pure conjunctive bodies only. Ground
// comparisons are fine — Compile checks them up front.
func eligible(q *query.CQ) error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("wcoj: query has no relational atoms")
	}
	if len(q.Params()) > 0 {
		return fmt.Errorf("wcoj: parameterized templates execute through the compiled backtracker")
	}
	if len(q.Ineqs) > 0 {
		return fmt.Errorf("wcoj: query has ≠ atoms; use the generic engine")
	}
	for _, c := range q.Cmps {
		if c.Left.IsVar || c.Right.IsVar {
			return fmt.Errorf("wcoj: query has variable comparisons; use the comparison engine")
		}
	}
	return nil
}

// PlanFor builds the worst-case-optimal route: reduce the atoms once
// (shared eval.PlanInputs path, cached statistics), compute the AGM bound
// and the worst-case backtracker bound, and pick the global variable
// order. The Route carries the reduced relations so Compile builds tries
// without re-reducing.
func PlanFor(q *query.CQ, db *query.DB) (*Route, error) {
	if err := eligible(q); err != nil {
		return nil, err
	}
	inputs, reds, err := eval.PlanInputs(q, db)
	if err != nil {
		return nil, err
	}
	agm := plan.AGM(inputs)
	worst := plan.WorstCost(inputs, plan.Build(inputs, q.HeadVars()).Order())
	return &Route{
		Order: plan.VarOrder(inputs),
		Cost:  agm,
		// The relative epsilon absorbs the log/exp round-trip inside AGM, so
		// bound ties (a single atom: AGM = the scan) never fire the gate.
		WorstCost: worst,
		Use:       agm*(1+1e-9) < worst,
		inputs:    inputs,
		reds:      reds,
	}, nil
}

// part is one atom's participation at one depth of the variable order: the
// trie level whose variable is that depth's variable.
type part struct {
	atom, level int
}

// Compiled is the frozen leapfrog plan: one trie per relational atom (with
// ≥1 variable), the per-depth participation lists, and the head layout.
// Read-only after Compile; every execution owns its cursors and output.
type Compiled struct {
	head  []query.Term
	order []query.Var
	// depthOf[i] is the order depth of head position i, or -1 for constants.
	depthOf []int
	consts  []relation.Value
	tries   []*Trie
	byDepth [][]part
	// trivial marks plans with an empty reduced atom or a false ground
	// comparison: every execution answers empty/false.
	trivial bool
}

// Compile freezes the leapfrog plan for q under the route: reduced atoms
// are sorted into tries under the global order (the prepared layer's one
// compile-time cost — linear-ish in the input, so it runs unmetered like
// the atom reductions), participation lists are indexed per depth, and the
// head projection is compiled to depth slots.
func Compile(q *query.CQ, rt *Route) (*Compiled, error) {
	if err := eligible(q); err != nil {
		return nil, err
	}
	c := &Compiled{head: q.Head, order: rt.Order}
	for _, cm := range q.Cmps {
		if !cm.Holds(cm.Left.Const, cm.Right.Const) {
			c.trivial = true
			return c, nil
		}
	}
	depth := make(map[query.Var]int, len(rt.Order))
	for d, v := range rt.Order {
		depth[v] = d
	}
	c.byDepth = make([][]part, len(rt.Order))
	for i, in := range rt.inputs {
		r := rt.reds[i]
		if r.Empty() {
			c.trivial = true
			return c, nil
		}
		if len(in.Vars) == 0 {
			continue // ground atom, nonempty: always satisfied
		}
		// perm sorts the atom's columns by global depth: trie level l reads
		// the column of the atom's l-th deepest... shallowest variable.
		perm := make([]int, len(in.Vars))
		for j := range perm {
			perm[j] = j
		}
		for a := 1; a < len(perm); a++ {
			for b := a; b > 0 && depth[in.Vars[perm[b]]] < depth[in.Vars[perm[b-1]]]; b-- {
				perm[b], perm[b-1] = perm[b-1], perm[b]
			}
		}
		k := len(c.tries)
		c.tries = append(c.tries, BuildTrie(r, perm))
		for l, col := range perm {
			d := depth[in.Vars[col]]
			c.byDepth[d] = append(c.byDepth[d], part{atom: k, level: l})
		}
	}
	c.depthOf = make([]int, len(q.Head))
	c.consts = make([]relation.Value, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar {
			c.depthOf[i] = depth[t.Var]
		} else {
			c.depthOf[i] = -1
			c.consts[i] = t.Const
		}
	}
	return c, nil
}

// probeBatch is how many intersection steps a cursor takes between
// governor checkpoints: the hot loop pays a local counter, the meter one
// Check per batch (the governance contract's intersection checkpoint).
const probeBatch = 1024

// cursor is the mutable state of one leapfrog traversal. Every worker owns
// one; the Compiled plan is shared and read-only.
type cursor struct {
	c      *Compiled
	assign []relation.Value
	// lo/hi are each atom's current trie window [lo, hi): narrowed level by
	// level as the traversal binds the atom's variables.
	lo, hi []int
	// Per-depth scratch (entry lo, parent hi, child end per part), so the
	// recursion allocates nothing.
	entryLo, parentHi, ends [][]int
	stop                    *atomic.Bool
	m                       *governor.Meter
	steps                   int
}

func (c *Compiled) newCursor(stop *atomic.Bool, m *governor.Meter) *cursor {
	cu := &cursor{
		c:      c,
		assign: make([]relation.Value, len(c.order)),
		lo:     make([]int, len(c.tries)),
		hi:     make([]int, len(c.tries)),
		stop:   stop,
		m:      m,
	}
	for k, t := range c.tries {
		cu.hi[k] = t.Len()
	}
	cu.entryLo = make([][]int, len(c.byDepth))
	cu.parentHi = make([][]int, len(c.byDepth))
	cu.ends = make([][]int, len(c.byDepth))
	for d, parts := range c.byDepth {
		cu.entryLo[d] = make([]int, len(parts))
		cu.parentHi[d] = make([]int, len(parts))
		cu.ends[d] = make([]int, len(parts))
	}
	return cu
}

// step is the per-intersection checkpoint: a stop-flag load every match and
// a governor Check per probeBatch. false stops the traversal.
func (cu *cursor) step() bool {
	if cu.stop != nil && cu.stop.Load() {
		return false
	}
	cu.steps++
	if cu.steps >= probeBatch {
		cu.steps = 0
		if cu.m.Check("probe") != nil {
			return false
		}
	}
	return true
}

// rec runs the leapfrog intersection at depth d and recurses on every
// matched value; emit fires per full assignment. false propagates a stop
// (cancellation, meter trip, or the consumer ending the search).
func (cu *cursor) rec(d int, emit func() bool) bool {
	c := cu.c
	if d == len(c.order) {
		return emit()
	}
	parts := c.byDepth[d]
	entryLo, parentHi, ends := cu.entryLo[d], cu.parentHi[d], cu.ends[d]
	var v relation.Value
	for i, p := range parts {
		lo, hi := cu.lo[p.atom], cu.hi[p.atom]
		entryLo[i], parentHi[i] = lo, hi
		if lo >= hi {
			return true // an empty window: no value matches at this depth
		}
		if w := c.tries[p.atom].At(p.level, lo); i == 0 || w > v {
			v = w
		}
	}
	ok := true
	for {
		// Leapfrog: seek every part to the candidate; any overshoot raises
		// the candidate and restarts the round. v only grows, so narrowed
		// windows stay valid.
		aligned, exhausted := true, false
		for _, p := range parts {
			t := c.tries[p.atom]
			pos := t.Seek(p.level, cu.lo[p.atom], cu.hi[p.atom], v)
			if pos == cu.hi[p.atom] {
				exhausted = true
				break
			}
			cu.lo[p.atom] = pos
			if w := t.At(p.level, pos); w > v {
				v = w
				aligned = false
				break
			}
		}
		if exhausted {
			break
		}
		if !aligned {
			continue
		}
		if !cu.step() {
			ok = false
			break
		}
		cu.assign[d] = v
		for i, p := range parts {
			ends[i] = c.tries[p.atom].Next(p.level, cu.lo[p.atom], cu.hi[p.atom], v)
			cu.hi[p.atom] = ends[i] // child window [lo, end) for the next level
		}
		ok = cu.rec(d+1, emit)
		exhausted = false
		for i, p := range parts {
			cu.hi[p.atom] = parentHi[i]
			cu.lo[p.atom] = ends[i] // advance past v
			if ends[i] >= parentHi[i] {
				exhausted = true
			}
		}
		if !ok || exhausted {
			break
		}
		for i, p := range parts {
			if w := c.tries[p.atom].At(p.level, cu.lo[p.atom]); i == 0 || w > v {
				v = w
			}
		}
	}
	// Restore entry windows: a re-entry under a different ancestor branch
	// must see the windows its own parent set, not this invocation's final
	// positions.
	for i, p := range parts {
		cu.lo[p.atom], cu.hi[p.atom] = entryLo[i], parentHi[i]
	}
	return ok
}

// enter and finish are the execution-boundary checkpoints, typed through
// the meter when one is threaded.
func enter(ctx context.Context, m *governor.Meter) error {
	if m != nil {
		return m.Check("start")
	}
	return parallel.CtxErr(ctx)
}

func finish(ctx context.Context, m *governor.Meter) error {
	if m != nil {
		return m.Check("finish")
	}
	return parallel.CtxErr(ctx)
}

// stopMeter mirrors the backtracker's single-flag idiom: the meter's stop
// flag (flipped by every trip) doubles as the per-match poll flag, and a
// cancelable context flips the same flag.
func stopMeter(ctx context.Context, m *governor.Meter) (*atomic.Bool, func()) {
	var f *atomic.Bool
	if m != nil {
		f = m.StopFlag()
	}
	if ctx != nil && ctx.Done() != nil {
		if f == nil {
			f = new(atomic.Bool)
		}
		detach := context.AfterFunc(ctx, func() { f.Store(true) })
		return f, func() { detach() }
	}
	return f, func() {}
}

// emitBatch is how many emitted rows a worker accumulates locally before
// charging the meter (the backtracker's batching constant).
const emitBatch = 64

// collector builds the emission callback: project the assignment through
// the head layout, dedup, append, and (under a meter) charge rows in
// batches. flush charges the partial batch and must run before the finish
// checkpoint.
func (c *Compiled) collector(cu *cursor, out *relation.Relation, seen *relation.TupleSet, m *governor.Meter) (emit func() bool, flush func()) {
	tuple := make([]relation.Value, len(c.head))
	copy(tuple, c.consts)
	emit = func() bool {
		for i, d := range c.depthOf {
			if d >= 0 {
				tuple[i] = cu.assign[d]
			}
		}
		if seen.Add(tuple) {
			out.Append(tuple...)
		}
		return true
	}
	if m == nil {
		return emit, func() {}
	}
	rowBytes := governor.RelBytes(1, len(c.head))
	pend := int64(0)
	inner := emit
	emit = func() bool {
		if !inner() {
			return false
		}
		pend++
		if pend < emitBatch {
			return true
		}
		err := m.Charge(pend, pend*rowBytes, "emit")
		pend = 0
		return err == nil
	}
	flush = func() {
		if pend > 0 {
			m.Charge(pend, pend*rowBytes, "emit")
			pend = 0
		}
	}
	return emit, flush
}

// topValues enumerates the matched values of the top-level variable (the
// depth-0 leapfrog, without descending) — the domain the parallel variant
// shards across workers.
func (c *Compiled) topValues() []relation.Value {
	parts := c.byDepth[0]
	var vals []relation.Value
	var v relation.Value
	for i, p := range parts {
		if c.tries[p.atom].Len() == 0 {
			return nil
		}
		if w := c.tries[p.atom].At(p.level, 0); i == 0 || w > v {
			v = w
		}
	}
	lo := make([]int, len(parts))
	for {
		aligned, exhausted := true, false
		for i, p := range parts {
			t := c.tries[p.atom]
			pos := t.Seek(p.level, lo[i], t.Len(), v)
			if pos == t.Len() {
				exhausted = true
				break
			}
			lo[i] = pos
			if w := t.At(p.level, pos); w > v {
				v = w
				aligned = false
				break
			}
		}
		if exhausted {
			return vals
		}
		if !aligned {
			continue
		}
		vals = append(vals, v)
		for i, p := range parts {
			t := c.tries[p.atom]
			lo[i] = t.Next(p.level, lo[i], t.Len(), v)
			if lo[i] == t.Len() {
				exhausted = true
			}
		}
		if exhausted {
			return vals
		}
		for i, p := range parts {
			if w := c.tries[p.atom].At(p.level, lo[i]); i == 0 || w > v {
				v = w
			}
		}
	}
}

// Exec runs the frozen leapfrog plan and returns the deduplicated answer
// relation over the positional head schema. workers shards the top-level
// variable's matched domain (per-worker accumulators, serial dedup merge);
// m, when non-nil, is the execution's resource meter.
func (c *Compiled) Exec(ctx context.Context, workers int, m *governor.Meter) (*relation.Relation, error) {
	out := query.NewTable(len(c.head))
	if err := enter(ctx, m); err != nil {
		return nil, err
	}
	if c.trivial {
		return out, nil
	}
	stop, release := stopMeter(ctx, m)
	defer release()
	if workers <= 1 || len(c.order) == 0 {
		cu := c.newCursor(stop, m)
		emit, flush := c.collector(cu, out, relation.NewTupleSet(len(c.head)), m)
		cu.rec(0, emit)
		flush()
		if err := finish(ctx, m); err != nil {
			return nil, err
		}
		return out, nil
	}
	top := c.topValues()
	if workers > len(top) {
		workers = len(top)
	}
	if len(top) == 0 {
		if err := finish(ctx, m); err != nil {
			return nil, err
		}
		return out, nil
	}
	parts := c.byDepth[0]
	outs := make([]*relation.Relation, workers)
	parallel.Chunks(workers, len(top), func(w, lo, hi int) {
		cu := c.newCursor(stop, m)
		local := query.NewTable(len(c.head))
		emit, flush := c.collector(cu, local, relation.NewTupleSet(len(c.head)), m)
		defer flush()
		for i := lo; i < hi; i++ {
			if stop != nil && stop.Load() {
				break
			}
			v := top[i]
			cu.assign[0] = v
			for _, p := range parts {
				t := c.tries[p.atom]
				pos := t.Seek(p.level, 0, t.Len(), v)
				cu.lo[p.atom] = pos
				cu.hi[p.atom] = t.Next(p.level, pos, t.Len(), v)
			}
			cont := cu.rec(1, emit)
			for _, p := range parts {
				cu.lo[p.atom], cu.hi[p.atom] = 0, c.tries[p.atom].Len()
			}
			if !cont {
				break
			}
		}
		outs[w] = local
	})
	if err := finish(ctx, m); err != nil {
		return nil, err
	}
	seen := relation.NewTupleSet(len(c.head))
	for _, local := range outs {
		if local == nil {
			continue
		}
		for i := 0; i < local.Len(); i++ {
			if seen.AddRelRow(local, i) {
				out.AppendRowOf(local, i)
			}
		}
	}
	return out, nil
}

// ExecBool decides emptiness with the frozen plan, stopping at the first
// witness. The decision search is serial (the first top-level match almost
// always decides) and materializes nothing, so no rows are charged.
func (c *Compiled) ExecBool(ctx context.Context, m *governor.Meter) (bool, error) {
	if err := enter(ctx, m); err != nil {
		return false, err
	}
	if c.trivial {
		return false, nil
	}
	stop, release := stopMeter(ctx, m)
	defer release()
	cu := c.newCursor(stop, m)
	found := false
	cu.rec(0, func() bool {
		found = true
		return false
	})
	if !found {
		if err := finish(ctx, m); err != nil {
			return false, err
		}
	}
	return found, nil
}

// Evaluate forces the worst-case-optimal engine on q regardless of the
// cost gate — the engine-direct entry behind qeval -engine wcoj, the
// equivalence suites, and benchrunner E10. Ungoverned; workers as in
// Options.Parallelism (0 = GOMAXPROCS, 1 = serial).
func Evaluate(q *query.CQ, db *query.DB, workers int) (*relation.Relation, error) {
	rt, err := PlanFor(q, db)
	if err != nil {
		return nil, err
	}
	c, err := Compile(q, rt)
	if err != nil {
		return nil, err
	}
	return c.Exec(context.Background(), parallel.Workers(workers), nil)
}
