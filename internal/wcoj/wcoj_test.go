package wcoj

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pyquery/internal/eval"
	"pyquery/internal/governor"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

// randGraphDB builds {E(·,·)} with the given density.
func randGraphDB(rnd *rand.Rand, rows, domain int) *query.DB {
	db := query.NewDB()
	e := query.NewTable(2)
	for i := 0; i < rows; i++ {
		e.Append(relation.Value(rnd.Intn(domain)), relation.Value(rnd.Intn(domain)))
	}
	db.Set("E", e.Dedup())
	return db
}

// randPureCyclicCQ builds a random pure cyclic query: a 3–6 cycle,
// sometimes with a chord, a constant argument, or a repeated-variable
// atom, plus occasionally a Boolean or constant-bearing head. No ≠ or
// comparison atoms — the engine's eligibility class.
func randPureCyclicCQ(rnd *rand.Rand) *query.CQ {
	n := 3 + rnd.Intn(4)
	q := workload.CycleQuery(n)
	if rnd.Intn(3) == 0 { // chord
		a, b := rnd.Intn(n), rnd.Intn(n)
		if a != b {
			q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(query.Var(a)), query.V(query.Var(b))))
		}
	}
	if rnd.Intn(4) == 0 { // constant argument
		i := rnd.Intn(len(q.Atoms))
		q.Atoms[i].Args[rnd.Intn(2)] = query.C(relation.Value(rnd.Intn(6)))
	}
	if rnd.Intn(5) == 0 { // repeated variable (self-loop atom)
		v := query.Var(rnd.Intn(n))
		q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(v), query.V(v)))
	}
	switch rnd.Intn(4) {
	case 0:
		q.Head = nil // Boolean
	case 1:
		q.Head = append(q.Head, query.C(7)) // constant head column
	}
	return q
}

// TestMatchesBacktracker pins answer-set equality between the leapfrog
// engine and the generic backtracker (written order — no shared planning
// code) on randomized cyclic instances, at several parallelism levels.
func TestMatchesBacktracker(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := randGraphDB(rnd, 20+rnd.Intn(60), 5+rnd.Intn(6))
		q := randPureCyclicCQ(rnd)
		tag := fmt.Sprintf("seed=%d q=%v", seed, q)
		want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true})
		if err != nil {
			t.Fatalf("%s baseline: %v", tag, err)
		}
		for _, par := range []int{1, 3} {
			got, err := Evaluate(q, db, par)
			if err != nil {
				t.Fatalf("%s wcoj par=%d: %v", tag, par, err)
			}
			if !relation.EqualSet(got, want) {
				t.Fatalf("%s: wcoj par=%d disagrees\nwant %v\ngot %v", tag, par, want, got)
			}
		}
	}
}

// TestMatchesBacktrackerMixedArity covers non-graph shapes: a ternary atom
// in a cycle, so trie levels beyond two and interleaved participation
// depths are exercised.
func TestMatchesBacktrackerMixedArity(t *testing.T) {
	q := &query.CQ{
		Head: []query.Term{query.V(0), query.V(3)},
		Atoms: []query.Atom{
			query.NewAtom("R", query.V(0), query.V(1), query.V(2)),
			query.NewAtom("S", query.V(2), query.V(3)),
			query.NewAtom("T", query.V(3), query.V(0)),
		},
	}
	for seed := int64(0); seed < 20; seed++ {
		rnd := rand.New(rand.NewSource(1000 + seed))
		db := query.NewDB()
		r := query.NewTable(3)
		for i := 0; i < 40; i++ {
			r.Append(relation.Value(rnd.Intn(6)), relation.Value(rnd.Intn(6)), relation.Value(rnd.Intn(6)))
		}
		db.Set("R", r.Dedup())
		s := query.NewTable(2)
		tt := query.NewTable(2)
		for i := 0; i < 25; i++ {
			s.Append(relation.Value(rnd.Intn(6)), relation.Value(rnd.Intn(6)))
			tt.Append(relation.Value(rnd.Intn(6)), relation.Value(rnd.Intn(6)))
		}
		db.Set("S", s.Dedup())
		db.Set("T", tt.Dedup())
		want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true})
		if err != nil {
			t.Fatalf("seed=%d baseline: %v", seed, err)
		}
		for _, par := range []int{1, 4} {
			got, err := Evaluate(q, db, par)
			if err != nil {
				t.Fatalf("seed=%d wcoj par=%d: %v", seed, par, err)
			}
			if !relation.EqualSet(got, want) {
				t.Fatalf("seed=%d par=%d: wcoj disagrees\nwant %v\ngot %v", seed, par, want, got)
			}
		}
	}
}

// TestRouteGate pins the bound-vs-bound routing policy: the skewed hub
// graph fires the gate (AGM ≪ worst-case backtracker), a sparse uniform
// graph keeps the backtracker, and a single atom never wins (AGM equals
// the scan).
func TestRouteGate(t *testing.T) {
	tri := workload.TriangleQuery()

	hub := workload.HubGraphDB(200, 4)
	rt, err := PlanFor(tri, hub)
	if err != nil {
		t.Fatalf("hub PlanFor: %v", err)
	}
	if !rt.Use {
		t.Fatalf("hub graph: gate should fire (AGM %g, worst %g)", rt.Cost, rt.WorstCost)
	}
	if len(rt.Order) != 3 {
		t.Fatalf("triangle order covers 3 vars, got %v", rt.Order)
	}

	sparse := workload.GraphDB(400, 800, 7)
	rt, err = PlanFor(tri, sparse)
	if err != nil {
		t.Fatalf("sparse PlanFor: %v", err)
	}
	if rt.Use {
		t.Fatalf("sparse graph: gate should keep the backtracker (AGM %g, worst %g)", rt.Cost, rt.WorstCost)
	}

	single := &query.CQ{
		Head:  []query.Term{query.V(0), query.V(1)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))},
	}
	rt, err = PlanFor(single, sparse)
	if err != nil {
		t.Fatalf("single-atom PlanFor: %v", err)
	}
	if rt.Use {
		t.Fatalf("single atom: AGM %g should not beat the scan %g", rt.Cost, rt.WorstCost)
	}
}

// TestEligibility pins the structural boundary errors.
func TestEligibility(t *testing.T) {
	db := workload.GraphDB(10, 20, 1)
	ineq := workload.TriangleQuery()
	ineq.Ineqs = []query.Ineq{query.NeqVars(0, 1)}
	if _, err := PlanFor(ineq, db); err == nil {
		t.Fatal("≠ atoms must be rejected")
	}
	cmp := workload.TriangleQuery()
	cmp.Cmps = []query.Cmp{query.Lt(query.V(0), query.V(1))}
	if _, err := PlanFor(cmp, db); err == nil {
		t.Fatal("variable comparisons must be rejected")
	}
	if _, err := PlanFor(&query.CQ{}, db); err == nil {
		t.Fatal("atom-free queries must be rejected")
	}
}

// TestTrivialPlans pins the compile-time empty cases: an empty reduced
// atom, a false ground comparison, and a satisfied ground comparison.
func TestTrivialPlans(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.NewTable(2)) // empty
	tri := workload.TriangleQuery()
	res, err := Evaluate(tri, db, 1)
	if err != nil || res.Len() != 0 {
		t.Fatalf("empty relation: want empty answer, got %v err %v", res, err)
	}

	db2 := workload.HubGraphDB(5, 3)
	qf := workload.TriangleQuery()
	qf.Cmps = []query.Cmp{query.Lt(query.C(3), query.C(1))} // ground false
	res, err = Evaluate(qf, db2, 1)
	if err != nil || res.Len() != 0 {
		t.Fatalf("ground-false comparison: want empty answer, got %v err %v", res, err)
	}

	qt := workload.TriangleQuery()
	qt.Cmps = []query.Cmp{query.Lt(query.C(1), query.C(3))} // ground true
	res, err = Evaluate(qt, db2, 1)
	if err != nil || res.Len() == 0 {
		t.Fatalf("ground-true comparison: want nonempty answer, got %v err %v", res, err)
	}
}

// TestBoolAndDecision pins ExecBool against Exec emptiness on both
// outcomes.
func TestBoolAndDecision(t *testing.T) {
	tri := workload.TriangleQuery()
	tri.Head = nil // Boolean
	withTriangles := workload.HubGraphDB(10, 3)
	noTriangles := workload.HubGraphDB(10, 0) // hub-leaf edges only: no cycle of length 3
	for _, tc := range []struct {
		db   *query.DB
		want bool
	}{{withTriangles, true}, {noTriangles, false}} {
		rt, err := PlanFor(tri, tc.db)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(tri, rt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ExecBool(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("ExecBool = %v, want %v", got, tc.want)
		}
	}
}

// TestGovernorTrips pins the typed failure taxonomy at the engine level:
// the row budget trips ErrRowLimit from the emit checkpoint, and a
// canceled context surfaces ErrCanceled from the next checkpoint.
func TestGovernorTrips(t *testing.T) {
	db := workload.HubGraphDB(60, 5)
	tri := workload.TriangleQuery()
	rt, err := PlanFor(tri, db)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(tri, rt)
	if err != nil {
		t.Fatal(err)
	}

	m := governor.New(context.Background(), "wcoj", 3, 0)
	if _, err := c.Exec(context.Background(), 1, m); !errors.Is(err, governor.ErrRowLimit) {
		t.Fatalf("row limit: got %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m = governor.New(ctx, "wcoj", 0, 0)
	if _, err := c.Exec(ctx, 1, m); !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("canceled ctx: got %v", err)
	}
	if _, err := c.Exec(ctx, 4, governor.New(ctx, "wcoj", 0, 0)); !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("canceled ctx (parallel): got %v", err)
	}
}

// TestParallelDeterminism pins answer-set equality across worker counts on
// a workload large enough to shard.
func TestParallelDeterminism(t *testing.T) {
	db := workload.HubGraphDB(80, 6)
	for _, q := range []*query.CQ{workload.TriangleQuery(), workload.CliqueQuery(4)} {
		want, err := Evaluate(q, db, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want.Len() == 0 {
			t.Fatalf("workload should have answers for %v", q)
		}
		for _, par := range []int{2, 3, 8} {
			got, err := Evaluate(q, db, par)
			if err != nil {
				t.Fatal(err)
			}
			if !relation.EqualSet(got, want) {
				t.Fatalf("par=%d disagrees with serial on %v", par, q)
			}
		}
	}
}
