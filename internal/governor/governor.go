// Package governor enforces per-query resource limits across the engines.
// A Meter is created per execution (and per governed compile step) by the
// facade's prepared layer and threaded to the engine alongside the worker
// budget; engines consult it only at their existing cancellation points —
// search-node emission batches for the backtracker, pass steps for the tree
// engines, trial batches for color coding, bag materializations for the
// decomposition engine — so the hot path cost is a branch on a counter, not
// an allocation.
//
// A trip is first-wins and sticky: the first checkpoint that observes an
// exceeded limit (or a canceled context, or an injected fault) records a
// typed *Error and flips the meter's stop flag, which the backtracker's
// cursors poll per node. Every later checkpoint returns the same error, so
// all workers drain promptly and the caller surfaces one coherent failure.
//
// All Meter methods are nil-safe: engine-direct callers that never set
// limits pass a nil *Meter and pay nothing.
package governor

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// The typed failure taxonomy. Every governor trip unwraps to exactly one of
// these sentinels (plus, for the context kinds, the underlying ctx error),
// so callers dispatch with errors.Is.
var (
	// ErrRowLimit trips when the total materialized rows of an execution
	// exceed Options.MaxRows.
	ErrRowLimit = errors.New("governor: materialized row limit exceeded")
	// ErrMemoryLimit trips when the approximate materialized bytes exceed
	// Options.MemoryLimit.
	ErrMemoryLimit = errors.New("governor: memory limit exceeded")
	// ErrTimeout trips when the execution context's deadline passes
	// (Options.Timeout or a caller-supplied deadline).
	ErrTimeout = errors.New("governor: query timed out")
	// ErrCanceled trips when the execution context is canceled.
	ErrCanceled = errors.New("governor: query canceled")
)

// Error is one recorded governor trip: which limit tripped, in which engine,
// at which checkpoint step, and the charged totals at that moment. It
// unwraps to its Kind sentinel and, for context trips, to the underlying
// context error — so errors.Is(err, ErrTimeout) and
// errors.Is(err, context.DeadlineExceeded) both hold.
type Error struct {
	// Kind is one of the package sentinels (or an injected test error).
	Kind error
	// Engine labels the engine that tripped (yannakakis, colorcoding,
	// comparisons, generic, decomp, decide).
	Engine string
	// Step names the checkpoint that observed the trip.
	Step string
	// Rows and Bytes are the charged totals at the trip.
	Rows, Bytes int64
	// Limit is the exceeded budget (rows or bytes; 0 for context trips).
	Limit int64
	// Cause is the underlying context error for timeout/cancel trips.
	Cause error
}

func (e *Error) Error() string {
	s := fmt.Sprintf("%v [engine=%s step=%s rows=%d bytes=%d", e.Kind, e.Engine, e.Step, e.Rows, e.Bytes)
	if e.Limit > 0 {
		s += fmt.Sprintf(" limit=%d", e.Limit)
	}
	return s + "]"
}

// Unwrap exposes the sentinel kind and, when present, the context cause.
func (e *Error) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Kind, e.Cause}
	}
	return []error{e.Kind}
}

// Hook observes every governor checkpoint. n is the meter-local checkpoint
// ordinal (1-based), engine and step identify the checkpoint site. A
// non-nil return forces a trip with that error as the kind — the
// fault-injection harness (internal/faults) uses this to fail any engine at
// its Nth checkpoint. The hook may also panic, which exercises the
// facade's panic recovery.
type Hook func(n int64, engine, step string) error

// testHook is the process-wide fault-injection hook, captured by New into
// each meter. Production code never sets it; the compiled-in cost when
// unset is one atomic load at meter construction.
var testHook atomic.Pointer[Hook]

// SetTestHook installs (or, with nil, removes) the fault-injection hook.
// Meters capture the hook at construction, so tests install it before the
// run under test and remove it after.
func SetTestHook(h Hook) {
	if h == nil {
		testHook.Store(nil)
		return
	}
	testHook.Store(&h)
}

// Meter tracks one execution's materialized rows and approximate bytes
// against its limits, classifies context ends into the typed taxonomy, and
// records the first trip. Charge and Check are safe for concurrent workers.
type Meter struct {
	engine   string
	ctx      context.Context
	maxRows  int64
	maxBytes int64
	hook     Hook

	rows    atomic.Int64
	bytes   atomic.Int64
	nchecks atomic.Int64
	trip    atomic.Pointer[Error]
	stop    atomic.Bool
}

// New returns a meter for one execution, or nil when there is nothing to
// govern: no row/byte limit, no cancelable context, and no installed hook.
// The nil return keeps ungoverned paths at their pre-governor cost — every
// Meter method tolerates a nil receiver.
func New(ctx context.Context, engine string, maxRows, maxBytes int64) *Meter {
	var hook Hook
	if h := testHook.Load(); h != nil {
		hook = *h
	}
	if maxRows <= 0 && maxBytes <= 0 && hook == nil && (ctx == nil || ctx.Done() == nil) {
		return nil
	}
	return &Meter{ctx: ctx, engine: engine, maxRows: maxRows, maxBytes: maxBytes, hook: hook}
}

// Check is a pure checkpoint: it reports the recorded trip, consults the
// fault hook, and classifies a finished context into ErrTimeout or
// ErrCanceled. Engines call it where they previously only polled ctx.
func (m *Meter) Check(step string) error {
	if m == nil {
		return nil
	}
	if t := m.trip.Load(); t != nil {
		return t
	}
	if m.hook != nil {
		if err := m.hook(m.nchecks.Add(1), m.engine, step); err != nil {
			return m.tripNow(err, step, 0, nil)
		}
	}
	if m.ctx != nil {
		if cerr := m.ctx.Err(); cerr != nil {
			kind := ErrCanceled
			if errors.Is(cerr, context.DeadlineExceeded) {
				kind = ErrTimeout
			}
			return m.tripNow(kind, step, 0, cerr)
		}
	}
	return nil
}

// Charge adds rows materialized rows and bytes approximate bytes and trips
// when a budget is exceeded. It is also a hook checkpoint, so the
// fault-injection sweep covers charge sites; it does not poll the context
// (Check does, at coarser boundaries).
func (m *Meter) Charge(rows, bytes int64, step string) error {
	if m == nil {
		return nil
	}
	if t := m.trip.Load(); t != nil {
		return t
	}
	if m.hook != nil {
		if err := m.hook(m.nchecks.Add(1), m.engine, step); err != nil {
			return m.tripNow(err, step, 0, nil)
		}
	}
	if m.maxRows <= 0 && m.maxBytes <= 0 {
		return nil
	}
	r := m.rows.Add(rows)
	b := m.bytes.Add(bytes)
	if m.maxRows > 0 && r > m.maxRows {
		return m.tripNow(ErrRowLimit, step, m.maxRows, nil)
	}
	if m.maxBytes > 0 && b > m.maxBytes {
		return m.tripNow(ErrMemoryLimit, step, m.maxBytes, nil)
	}
	return nil
}

// Release refunds rows/bytes charged for state that has been dropped — the
// decomposition engine's degradation path releases its bags here so the
// backtracker fallback runs under the remaining budget.
func (m *Meter) Release(rows, bytes int64) {
	if m == nil {
		return
	}
	m.rows.Add(-rows)
	m.bytes.Add(-bytes)
}

// Err returns the recorded trip, or nil.
func (m *Meter) Err() error {
	if m == nil {
		return nil
	}
	if t := m.trip.Load(); t != nil {
		return t
	}
	return nil
}

// Tripped reports whether a trip has been recorded.
func (m *Meter) Tripped() bool { return m != nil && m.trip.Load() != nil }

// StopFlag exposes the meter's stop flag for per-node pollers (the
// backtracker's cursors): every trip flips it, and the caller may also
// flip it from a context watcher. Only valid on a non-nil meter.
func (m *Meter) StopFlag() *atomic.Bool { return &m.stop }

// Rows and Bytes report the charged totals (0 on a nil meter).
func (m *Meter) Rows() int64 {
	if m == nil {
		return 0
	}
	return m.rows.Load()
}

// Bytes reports the charged approximate byte total.
func (m *Meter) Bytes() int64 {
	if m == nil {
		return 0
	}
	return m.bytes.Load()
}

// RelBytes approximates the memory footprint of a materialized relation:
// rows × width × 8 bytes (relation.Value is an int64). The estimate ignores
// slice headers and hash-set overhead by design — the budget check must
// stay a pair of atomic adds.
func RelBytes(rows, width int) int64 { return int64(rows) * int64(width) * 8 }

func (m *Meter) tripNow(kind error, step string, limit int64, cause error) *Error {
	e := &Error{Kind: kind, Engine: m.engine, Step: step,
		Rows: m.rows.Load(), Bytes: m.bytes.Load(), Limit: limit, Cause: cause}
	if m.trip.CompareAndSwap(nil, e) {
		m.stop.Store(true)
	}
	return m.trip.Load()
}
