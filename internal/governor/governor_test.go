package governor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNewReturnsNilWhenNothingToGovern(t *testing.T) {
	if m := New(nil, "generic", 0, 0); m != nil {
		t.Fatalf("New with nothing to govern: got %v, want nil", m)
	}
	if m := New(context.Background(), "generic", 0, 0); m != nil {
		t.Fatalf("New with non-cancelable ctx: got %v, want nil", m)
	}
}

func TestNilMeterMethodsAreSafe(t *testing.T) {
	var m *Meter
	if err := m.Check("x"); err != nil {
		t.Fatalf("nil Check: %v", err)
	}
	if err := m.Charge(10, 10, "x"); err != nil {
		t.Fatalf("nil Charge: %v", err)
	}
	m.Release(1, 1)
	if m.Err() != nil || m.Tripped() || m.Rows() != 0 || m.Bytes() != 0 {
		t.Fatal("nil meter reported state")
	}
}

func TestRowLimitTrip(t *testing.T) {
	m := New(nil, "generic", 5, 0)
	if err := m.Charge(5, 40, "emit"); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := m.Charge(1, 8, "emit")
	if !errors.Is(err, ErrRowLimit) {
		t.Fatalf("got %v, want ErrRowLimit", err)
	}
	var ge *Error
	if !errors.As(err, &ge) {
		t.Fatalf("not a *Error: %v", err)
	}
	if ge.Engine != "generic" || ge.Step != "emit" || ge.Limit != 5 || ge.Rows != 6 {
		t.Fatalf("trip detail: %+v", ge)
	}
	// Sticky: later checkpoints return the same trip.
	if err2 := m.Check("finish"); !errors.Is(err2, ErrRowLimit) {
		t.Fatalf("trip not sticky: %v", err2)
	}
	if !m.StopFlag().Load() {
		t.Fatal("trip did not flip the stop flag")
	}
}

func TestMemoryLimitTrip(t *testing.T) {
	m := New(nil, "yannakakis", 0, 100)
	if err := m.Charge(2, 96, "join-project"); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := m.Charge(1, 8, "join-project"); !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("got %v, want ErrMemoryLimit", err)
	}
}

func TestReleaseRefunds(t *testing.T) {
	m := New(nil, "decomp", 100, 0)
	m.Charge(60, 480, "bag")
	m.Release(60, 480)
	if m.Rows() != 0 || m.Bytes() != 0 {
		t.Fatalf("after release: rows=%d bytes=%d", m.Rows(), m.Bytes())
	}
	if err := m.Charge(90, 720, "emit"); err != nil {
		t.Fatalf("budget not restored: %v", err)
	}
}

func TestContextClassification(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := New(ctx, "generic", 0, 0)
	if m == nil {
		t.Fatal("cancelable ctx should produce a meter")
	}
	cancel()
	err := m.Check("start")
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want ErrCanceled wrapping context.Canceled", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	dm := New(dctx, "generic", 0, 0)
	derr := dm.Check("start")
	if !errors.Is(derr, ErrTimeout) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrTimeout wrapping DeadlineExceeded", derr)
	}
}

func TestHookForcedTrip(t *testing.T) {
	boom := errors.New("injected")
	var calls int
	SetTestHook(func(n int64, engine, step string) error {
		calls++
		if n == 3 {
			return boom
		}
		return nil
	})
	defer SetTestHook(nil)
	m := New(nil, "comparisons", 0, 0)
	if m == nil {
		t.Fatal("hook alone should produce a meter")
	}
	if err := m.Check("a"); err != nil {
		t.Fatalf("checkpoint 1: %v", err)
	}
	if err := m.Charge(1, 8, "b"); err != nil {
		t.Fatalf("checkpoint 2: %v", err)
	}
	err := m.Check("c")
	if !errors.Is(err, boom) {
		t.Fatalf("checkpoint 3: got %v, want injected", err)
	}
	if calls != 3 {
		t.Fatalf("hook called %d times, want 3", calls)
	}
}

func TestFirstTripWinsUnderConcurrency(t *testing.T) {
	m := New(nil, "generic", 1, 0)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = m.Charge(2, 16, "emit")
		}(i)
	}
	wg.Wait()
	first := m.Err()
	if first == nil {
		t.Fatal("no trip recorded")
	}
	for i, err := range errs {
		if err == nil {
			continue
		}
		if err != first { //nolint:errorlint // identity check is the point
			t.Fatalf("worker %d saw a different trip: %v vs %v", i, err, first)
		}
	}
}

func TestRelBytes(t *testing.T) {
	if got := RelBytes(10, 3); got != 240 {
		t.Fatalf("RelBytes(10,3) = %d, want 240", got)
	}
	if got := RelBytes(0, 5); got != 0 {
		t.Fatalf("RelBytes(0,5) = %d, want 0", got)
	}
}
