// Package faults is the fault-injection harness behind the governor's
// robustness tests: an Injector counts every governor checkpoint the
// process passes (across all meters — compile-time and execution-time) and
// can force a typed trip, or a panic, at the Nth one. Tests first run with
// a counting-only injector to learn how many checkpoints an operation
// crosses, then sweep N over that range asserting that every engine fails
// cleanly from every checkpoint.
//
// The package is test support: it drives governor.SetTestHook and must not
// be imported by production code.
package faults

import (
	"fmt"
	"sync/atomic"

	"pyquery/internal/governor"
)

// Injector forces a governor trip (or a panic) at a chosen checkpoint.
// The zero value counts checkpoints without injecting anything.
type Injector struct {
	// Kind is the error injected at checkpoint At — typically one of the
	// governor sentinels, so the surfaced error is errors.Is-matchable.
	Kind error
	// At is the 1-based checkpoint ordinal to trip at (0 = never).
	At int64
	// PanicAt is the 1-based checkpoint ordinal to panic at (0 = never);
	// it exercises the facade's panic-recovery boundary.
	PanicAt int64

	n atomic.Int64
}

// Install makes this injector the process-wide governor hook. Meters
// capture the hook at construction, so Install before the run under test
// and Uninstall after.
func (in *Injector) Install() { governor.SetTestHook(in.hook) }

// Uninstall removes any installed governor hook.
func Uninstall() { governor.SetTestHook(nil) }

// Count reports how many checkpoints fired through this injector.
func (in *Injector) Count() int64 { return in.n.Load() }

// hook implements governor.Hook with the injector's own cross-meter
// counter: one operation may create several meters (a governed decomp
// compile plus the execution meter), and the sweep's "Nth checkpoint"
// counts across all of them.
func (in *Injector) hook(_ int64, engine, step string) error {
	n := in.n.Add(1)
	if in.PanicAt > 0 && n == in.PanicAt {
		panic(fmt.Sprintf("faults: injected panic at checkpoint %d (engine=%s step=%s)", n, engine, step))
	}
	if in.At > 0 && n == in.At {
		return in.Kind
	}
	return nil
}
