package query

import (
	"fmt"
	"sort"
	"strings"

	"pyquery/internal/relation"
)

// CQ is a conjunctive query in rule form,
//
//	G(t₀) ← R₁(t₁), …, Rₛ(tₛ), x≠y, …, x<y, …
//
// with optional inequality (≠) and comparison (<, ≤) atoms — the two
// extensions the paper studies in Section 5. A CQ with an empty head is a
// Boolean query. All body variables are implicitly existentially
// quantified.
type CQ struct {
	Head  []Term
	Atoms []Atom
	Ineqs []Ineq
	Cmps  []Cmp
	// VarNames optionally maps Var → source-level name, for printing.
	VarNames []string
}

// IsBoolean reports whether the query has an empty head.
func (q *CQ) IsBoolean() bool { return len(q.Head) == 0 }

// Vars returns all distinct variables appearing anywhere in the query,
// sorted.
func (q *CQ) Vars() []Var {
	seen := make(map[Var]bool)
	add := func(t Term) {
		if t.IsVar {
			seen[t.Var] = true
		}
	}
	for _, t := range q.Head {
		add(t)
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, iq := range q.Ineqs {
		seen[iq.X] = true
		if iq.YIsVar {
			seen[iq.Y] = true
		}
	}
	for _, c := range q.Cmps {
		add(c.Left)
		add(c.Right)
	}
	return sortedVars(seen)
}

// BodyVars returns the distinct variables appearing in relational atoms,
// sorted. Safety requires every other variable occurrence to be among them.
func (q *CQ) BodyVars() []Var {
	seen := make(map[Var]bool)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar {
				seen[t.Var] = true
			}
		}
	}
	return sortedVars(seen)
}

// HeadVars returns the distinct head variables in first-occurrence order.
func (q *CQ) HeadVars() []Var {
	var out []Var
	seen := make(map[Var]bool)
	for _, t := range q.Head {
		if t.IsVar && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// NumVars returns v, the number of distinct variables — one of the paper's
// two parameters.
func (q *CQ) NumVars() int { return len(q.Vars()) }

// Size returns q, a proxy for the query's encoding length — the paper's
// other parameter: one unit per atom plus one per argument, plus the head
// and three per (in)equality or comparison atom.
func (q *CQ) Size() int {
	n := len(q.Head)
	for _, a := range q.Atoms {
		n += 1 + len(a.Args)
	}
	n += 3 * len(q.Ineqs)
	n += 3 * len(q.Cmps)
	return n
}

// Hyperedges returns, per relational atom, its set of distinct variables —
// the hypergraph of the query in the sense of Section 5.
func (q *CQ) Hyperedges() [][]Var {
	out := make([][]Var, len(q.Atoms))
	for i, a := range q.Atoms {
		out[i] = a.Vars()
	}
	return out
}

// Params returns the distinct parameter names of the query in
// first-occurrence order (head, then atoms, then comparisons). A query with
// parameters cannot be evaluated directly — bind them first (BindParams, or
// the facade's prepared-statement API).
func (q *CQ) Params() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(t Term) {
		if t.ParamName != "" && !seen[t.ParamName] {
			seen[t.ParamName] = true
			out = append(out, t.ParamName)
		}
	}
	for _, t := range q.Head {
		add(t)
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range q.Cmps {
		add(c.Left)
		add(c.Right)
	}
	return out
}

// BindParams substitutes constants for every parameter placeholder,
// returning the concrete query. Every parameter of the query must be bound;
// unknown names are rejected.
func (q *CQ) BindParams(vals map[string]relation.Value) (*CQ, error) {
	names := q.Params()
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	for n := range vals {
		if !want[n] {
			return nil, fmt.Errorf("query: unknown parameter $%s", n)
		}
	}
	for _, n := range names {
		if _, ok := vals[n]; !ok {
			return nil, fmt.Errorf("query: parameter $%s is unbound", n)
		}
	}
	mapTerm := func(t Term) Term {
		if t.ParamName != "" {
			return C(vals[t.ParamName])
		}
		return t
	}
	out := q.Clone()
	for i, t := range out.Head {
		out.Head[i] = mapTerm(t)
	}
	for i := range out.Atoms {
		for j, t := range out.Atoms[i].Args {
			out.Atoms[i].Args[j] = mapTerm(t)
		}
	}
	for i, c := range out.Cmps {
		out.Cmps[i] = Cmp{Left: mapTerm(c.Left), Right: mapTerm(c.Right), Strict: c.Strict}
	}
	return out, nil
}

// Validate checks the query against the database: every atom's relation
// must exist with matching arity, head variables must occur in the body
// (range restriction), every ≠/comparison variable must occur in some
// relational atom (safety), and no unbound parameter placeholders remain.
func (q *CQ) Validate(db *DB) error {
	return q.ValidateBound(db, nil)
}

// ValidateBound is Validate for a query executed with the given variables
// pre-bound from outside (the compiled backtracker's parameter and
// decision-head slots): pre-bound variables satisfy range restriction and
// safety even when no relational atom mentions them.
func (q *CQ) ValidateBound(db *DB, preBound map[Var]bool) error {
	if ps := q.Params(); len(ps) > 0 {
		return fmt.Errorf("query: unbound parameter $%s (bind parameters before evaluating, e.g. via Prepare/Exec)", ps[0])
	}
	for _, a := range q.Atoms {
		r, ok := db.Rel(a.Rel)
		if !ok {
			return fmt.Errorf("%w %q", ErrUnknownRelation, a.Rel)
		}
		if r.Width() != len(a.Args) {
			return fmt.Errorf("query: atom %v has %d arguments but relation %q has arity %d",
				a, len(a.Args), a.Rel, r.Width())
		}
	}
	body := make(map[Var]bool)
	for _, v := range q.BodyVars() {
		body[v] = true
	}
	for v := range preBound {
		body[v] = true
	}
	for _, t := range q.Head {
		if t.IsVar && !body[t.Var] {
			return fmt.Errorf("query: head variable %v does not occur in the body", t)
		}
	}
	for _, iq := range q.Ineqs {
		if !body[iq.X] {
			return fmt.Errorf("query: inequality variable x%d does not occur in a relational atom", iq.X)
		}
		if iq.YIsVar && !body[iq.Y] {
			return fmt.Errorf("query: inequality variable x%d does not occur in a relational atom", iq.Y)
		}
	}
	for _, c := range q.Cmps {
		for _, t := range []Term{c.Left, c.Right} {
			if t.IsVar && !body[t.Var] {
				return fmt.Errorf("query: comparison variable %v does not occur in a relational atom", t)
			}
		}
	}
	return nil
}

// BindHead substitutes the constants of tuple for the head terms throughout
// the query, returning the Boolean query that decides t ∈ Q(d). Constant
// head positions must match the tuple; repeated head variables must receive
// equal values.
func (q *CQ) BindHead(tuple []relation.Value) (*CQ, error) {
	if len(tuple) != len(q.Head) {
		return nil, fmt.Errorf("query: tuple arity %d does not match head arity %d", len(tuple), len(q.Head))
	}
	sub := make(map[Var]relation.Value)
	for i, t := range q.Head {
		if !t.IsVar {
			if t.Const != tuple[i] {
				// The decision is trivially false; encode as an
				// unsatisfiable query over an always-empty pattern: an
				// inequality c ≠ c is not expressible, so return a marker.
				return nil, errHeadConstMismatch
			}
			continue
		}
		if prev, ok := sub[t.Var]; ok && prev != tuple[i] {
			return nil, errHeadConstMismatch
		}
		sub[t.Var] = tuple[i]
	}
	out := q.substitute(sub)
	out.Head = nil
	return out, nil
}

var errHeadConstMismatch = fmt.Errorf("query: tuple cannot match head constants")

// IsTrivialMismatch reports whether err is the BindHead marker for a tuple
// that cannot match the head pattern (the decision answer is false).
func IsTrivialMismatch(err error) bool { return err == errHeadConstMismatch }

// substitute replaces variables by constants per sub.
func (q *CQ) substitute(sub map[Var]relation.Value) *CQ {
	mapTerm := func(t Term) Term {
		if t.IsVar {
			if c, ok := sub[t.Var]; ok {
				return C(c)
			}
		}
		return t
	}
	out := &CQ{VarNames: q.VarNames}
	out.Head = make([]Term, len(q.Head))
	for i, t := range q.Head {
		out.Head[i] = mapTerm(t)
	}
	out.Atoms = make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		args := make([]Term, len(a.Args))
		for j, t := range a.Args {
			args[j] = mapTerm(t)
		}
		out.Atoms[i] = Atom{Rel: a.Rel, Args: args}
	}
	// ≠ atoms: substituted variable sides become constant sides; a fully
	// constant ≠ is dropped if true (both sides differ) — a false one is
	// kept as an impossible x≠x marker only when expressible, so instead we
	// keep such queries correct by turning them into an unsatisfiable
	// comparison pair below.
	for _, iq := range q.Ineqs {
		xc, xBound := sub[iq.X]
		if iq.YIsVar {
			yc, yBound := sub[iq.Y]
			switch {
			case !xBound && !yBound:
				out.Ineqs = append(out.Ineqs, iq)
			case xBound && !yBound:
				out.Ineqs = append(out.Ineqs, NeqConst(iq.Y, xc))
			case !xBound && yBound:
				out.Ineqs = append(out.Ineqs, NeqConst(iq.X, yc))
			default:
				if xc == yc {
					out.Cmps = append(out.Cmps, unsatisfiableCmp())
				}
			}
			continue
		}
		if !xBound {
			out.Ineqs = append(out.Ineqs, iq)
		} else if xc == iq.C {
			out.Cmps = append(out.Cmps, unsatisfiableCmp())
		}
	}
	for _, c := range q.Cmps {
		out.Cmps = append(out.Cmps, Cmp{Left: mapTerm(c.Left), Right: mapTerm(c.Right), Strict: c.Strict})
	}
	return out
}

// unsatisfiableCmp is a ground comparison 0 < 0, used to mark queries made
// unsatisfiable by substitution.
func unsatisfiableCmp() Cmp { return Lt(C(0), C(0)) }

// Clone returns a deep copy.
func (q *CQ) Clone() *CQ {
	out := &CQ{VarNames: q.VarNames}
	out.Head = append([]Term(nil), q.Head...)
	out.Atoms = make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		out.Atoms[i] = Atom{Rel: a.Rel, Args: append([]Term(nil), a.Args...)}
	}
	out.Ineqs = append([]Ineq(nil), q.Ineqs...)
	out.Cmps = append([]Cmp(nil), q.Cmps...)
	return out
}

// String renders the query in rule notation.
func (q *CQ) String() string {
	var b strings.Builder
	b.WriteString("G(")
	for i, t := range q.Head {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(t.String())
	}
	b.WriteString(") :- ")
	var parts []string
	for _, a := range q.Atoms {
		parts = append(parts, a.String())
	}
	for _, iq := range q.Ineqs {
		parts = append(parts, iq.String())
	}
	for _, c := range q.Cmps {
		parts = append(parts, c.String())
	}
	b.WriteString(strings.Join(parts, ", "))
	return b.String()
}

func sortedVars(set map[Var]bool) []Var {
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
