package query

import (
	"fmt"
	"sort"
	"strings"
)

// Formula is a first-order formula over relational atoms. Positive queries
// are formulas without Not and Forall; conjunctive queries are additionally
// without Or. Quantifiers may reuse variable ids with the usual shadowing
// semantics — the paper's bounded-variable results (parameter v) depend on
// such reuse.
type Formula interface {
	isFormula()
	String() string
}

// FAtom is a relational atom used as a formula.
type FAtom struct{ Atom Atom }

// And is an n-ary conjunction. An empty conjunction is true.
type And struct{ Subs []Formula }

// Or is an n-ary disjunction. An empty disjunction is false.
type Or struct{ Subs []Formula }

// Not is negation.
type Not struct{ Sub Formula }

// Exists binds V existentially in Sub.
type Exists struct {
	V   Var
	Sub Formula
}

// Forall binds V universally in Sub.
type Forall struct {
	V   Var
	Sub Formula
}

func (FAtom) isFormula()  {}
func (And) isFormula()    {}
func (Or) isFormula()     {}
func (Not) isFormula()    {}
func (Exists) isFormula() {}
func (Forall) isFormula() {}

func (f FAtom) String() string { return f.Atom.String() }

func (f And) String() string {
	if len(f.Subs) == 0 {
		return "true"
	}
	parts := make([]string, len(f.Subs))
	for i, s := range f.Subs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, " & ") + ")"
}

func (f Or) String() string {
	if len(f.Subs) == 0 {
		return "false"
	}
	parts := make([]string, len(f.Subs))
	for i, s := range f.Subs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

func (f Not) String() string    { return "!" + f.Sub.String() }
func (f Exists) String() string { return fmt.Sprintf("exists x%d %v", f.V, f.Sub) }
func (f Forall) String() string { return fmt.Sprintf("forall x%d %v", f.V, f.Sub) }

// Conj builds an And; Disj builds an Or.
func Conj(subs ...Formula) Formula { return And{Subs: subs} }

// Disj builds an Or.
func Disj(subs ...Formula) Formula { return Or{Subs: subs} }

// FreeVars returns the free variables of f, sorted.
func FreeVars(f Formula) []Var {
	seen := make(map[Var]bool)
	var walk func(f Formula, bound map[Var]int)
	walk = func(f Formula, bound map[Var]int) {
		switch g := f.(type) {
		case FAtom:
			for _, t := range g.Atom.Args {
				if t.IsVar && bound[t.Var] == 0 {
					seen[t.Var] = true
				}
			}
		case And:
			for _, s := range g.Subs {
				walk(s, bound)
			}
		case Or:
			for _, s := range g.Subs {
				walk(s, bound)
			}
		case Not:
			walk(g.Sub, bound)
		case Exists:
			bound[g.V]++
			walk(g.Sub, bound)
			bound[g.V]--
		case Forall:
			bound[g.V]++
			walk(g.Sub, bound)
			bound[g.V]--
		default:
			panic(fmt.Sprintf("query: unknown formula node %T", f))
		}
	}
	walk(f, make(map[Var]int))
	return sortedVars(seen)
}

// AllVars returns every variable id mentioned in f (free or bound), sorted.
// Its length is the paper's parameter v for formula queries.
func AllVars(f Formula) []Var {
	seen := make(map[Var]bool)
	var walk func(f Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case FAtom:
			for _, t := range g.Atom.Args {
				if t.IsVar {
					seen[t.Var] = true
				}
			}
		case And:
			for _, s := range g.Subs {
				walk(s)
			}
		case Or:
			for _, s := range g.Subs {
				walk(s)
			}
		case Not:
			walk(g.Sub)
		case Exists:
			seen[g.V] = true
			walk(g.Sub)
		case Forall:
			seen[g.V] = true
			walk(g.Sub)
		}
	}
	walk(f)
	return sortedVars(seen)
}

// FormulaSize returns a proxy for the formula's encoding length (the
// parameter q): one unit per connective, quantifier, and atom argument.
func FormulaSize(f Formula) int {
	switch g := f.(type) {
	case FAtom:
		return 1 + len(g.Atom.Args)
	case And:
		n := 1
		for _, s := range g.Subs {
			n += FormulaSize(s)
		}
		return n
	case Or:
		n := 1
		for _, s := range g.Subs {
			n += FormulaSize(s)
		}
		return n
	case Not:
		return 1 + FormulaSize(g.Sub)
	case Exists:
		return 2 + FormulaSize(g.Sub)
	case Forall:
		return 2 + FormulaSize(g.Sub)
	}
	panic(fmt.Sprintf("query: unknown formula node %T", f))
}

// IsPositive reports whether f uses only atoms, ∧, ∨, and ∃ — the paper's
// positive queries.
func IsPositive(f Formula) bool {
	switch g := f.(type) {
	case FAtom:
		return true
	case And:
		for _, s := range g.Subs {
			if !IsPositive(s) {
				return false
			}
		}
		return true
	case Or:
		for _, s := range g.Subs {
			if !IsPositive(s) {
				return false
			}
		}
		return true
	case Exists:
		return IsPositive(g.Sub)
	default:
		return false
	}
}

// ValidateFormula checks atom arities against the database.
func ValidateFormula(f Formula, db *DB) error {
	switch g := f.(type) {
	case FAtom:
		r, ok := db.Rel(g.Atom.Rel)
		if !ok {
			return fmt.Errorf("%w %q", ErrUnknownRelation, g.Atom.Rel)
		}
		if r.Width() != len(g.Atom.Args) {
			return fmt.Errorf("query: atom %v has %d arguments but relation %q has arity %d",
				g.Atom, len(g.Atom.Args), g.Atom.Rel, r.Width())
		}
		return nil
	case And:
		for _, s := range g.Subs {
			if err := ValidateFormula(s, db); err != nil {
				return err
			}
		}
		return nil
	case Or:
		for _, s := range g.Subs {
			if err := ValidateFormula(s, db); err != nil {
				return err
			}
		}
		return nil
	case Not:
		return ValidateFormula(g.Sub, db)
	case Exists:
		return ValidateFormula(g.Sub, db)
	case Forall:
		return ValidateFormula(g.Sub, db)
	}
	return fmt.Errorf("query: unknown formula node %T", f)
}

// FOQuery is a first-order query {t₀ | φ}: the head lists output terms whose
// variables must be exactly the free variables of the body.
type FOQuery struct {
	Head []Term
	Body Formula
	// VarNames optionally maps Var → source-level name.
	VarNames []string
}

// IsBoolean reports whether the query has an empty head.
func (q *FOQuery) IsBoolean() bool { return len(q.Head) == 0 }

// Validate checks arities and that head variables are exactly the free
// variables of the body.
func (q *FOQuery) Validate(db *DB) error {
	if err := ValidateFormula(q.Body, db); err != nil {
		return err
	}
	free := FreeVars(q.Body)
	headVars := make(map[Var]bool)
	for _, t := range q.Head {
		if t.IsVar {
			headVars[t.Var] = true
		}
	}
	for _, v := range free {
		if !headVars[v] {
			return fmt.Errorf("query: free variable x%d of the body is not in the head", v)
		}
	}
	for v := range headVars {
		if !containsVar(free, v) {
			return fmt.Errorf("query: head variable x%d is not free in the body", v)
		}
	}
	return nil
}

func (q *FOQuery) String() string {
	var parts []string
	for _, t := range q.Head {
		parts = append(parts, t.String())
	}
	return "{(" + strings.Join(parts, ",") + ") | " + q.Body.String() + "}"
}

func containsVar(vs []Var, v Var) bool {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= v })
	return i < len(vs) && vs[i] == v
}

// CQToFormula converts a pure conjunctive query (no ≠, no comparisons) into
// an existentially quantified conjunction — the formula form used by the
// positive/FO machinery.
func CQToFormula(q *CQ) (Formula, error) {
	if len(q.Ineqs) > 0 || len(q.Cmps) > 0 {
		return nil, fmt.Errorf("query: CQ with ≠/comparison atoms has no pure formula form")
	}
	subs := make([]Formula, len(q.Atoms))
	for i, a := range q.Atoms {
		subs[i] = FAtom{Atom: a}
	}
	var f Formula = And{Subs: subs}
	head := make(map[Var]bool)
	for _, v := range q.HeadVars() {
		head[v] = true
	}
	// Quantify body-only variables, in reverse sorted order for stable output.
	body := q.BodyVars()
	for i := len(body) - 1; i >= 0; i-- {
		if !head[body[i]] {
			f = Exists{V: body[i], Sub: f}
		}
	}
	return f, nil
}
