package query

import (
	"strings"
	"testing"

	"pyquery/internal/relation"
)

func TestParamsCollectionAndBinding(t *testing.T) {
	q := &CQ{
		Head: []Term{P("h"), V(0)},
		Atoms: []Atom{
			NewAtom("R", P("a"), V(0)),
			NewAtom("S", V(0), P("a")),
		},
		Cmps: []Cmp{Lt(V(0), P("c"))},
	}
	got := q.Params()
	want := []string{"h", "a", "c"}
	if len(got) != len(want) {
		t.Fatalf("Params() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Params() = %v, want %v (first-occurrence order)", got, want)
		}
	}

	if !strings.Contains(q.String(), "$a") {
		t.Fatalf("String() should render placeholders: %s", q)
	}

	bound, err := q.BindParams(map[string]relation.Value{"h": 1, "a": 2, "c": 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(bound.Params()) != 0 {
		t.Fatalf("BindParams left placeholders: %v", bound.Params())
	}
	if !bound.Head[0].Equal(C(1)) || !bound.Atoms[0].Args[0].Equal(C(2)) || !bound.Cmps[0].Right.Equal(C(3)) {
		t.Fatalf("BindParams substituted wrong constants: %v", bound)
	}
	// The template must be untouched.
	if len(q.Params()) != 3 {
		t.Fatal("BindParams mutated the template")
	}

	if _, err := q.BindParams(map[string]relation.Value{"h": 1, "a": 2}); err == nil {
		t.Fatal("missing binding should error")
	}
	if _, err := q.BindParams(map[string]relation.Value{"h": 1, "a": 2, "c": 3, "zz": 4}); err == nil {
		t.Fatal("unknown binding should error")
	}
}

func TestValidateRejectsUnboundParams(t *testing.T) {
	db := NewDB()
	db.Set("R", Table(2))
	q := &CQ{Atoms: []Atom{NewAtom("R", P("a"), V(0))}}
	if err := q.Validate(db); err == nil {
		t.Fatal("Validate should reject unbound parameters")
	}
}

func TestDBGeneration(t *testing.T) {
	db := NewDB()
	g0 := db.Generation()
	db.Set("R", Table(1))
	if db.Generation() != g0+1 {
		t.Fatalf("Set should bump the generation: %d -> %d", g0, db.Generation())
	}
	db.Set("R", Table(1))
	if db.Generation() != g0+2 {
		t.Fatal("every Set bumps, even for the same name")
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.Add("c", 3) // evicts b (a was just touched)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("a should survive the eviction")
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatal("c should be cached")
	}
	c.Add("a", 10) // refresh in place
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Fatal("Add should refresh an existing key")
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
}
