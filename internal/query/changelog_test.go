package query

import (
	"testing"

	"pyquery/internal/relation"
)

func row(vs ...relation.Value) []relation.Value { return vs }

func TestInsertDeleteSetSemantics(t *testing.T) {
	db := NewDB()
	db.Set("E", Table(2, row(1, 2), row(2, 3)))
	if n := db.Insert("E", row(3, 4), row(1, 2), row(3, 4)); n != 1 {
		t.Fatalf("Insert added %d, want 1 (dups and existing skipped)", n)
	}
	if n := db.MustRel("E").Len(); n != 3 {
		t.Fatalf("E has %d rows, want 3", n)
	}
	if n := db.Delete("E", row(9, 9), row(1, 2)); n != 1 {
		t.Fatalf("Delete removed %d, want 1", n)
	}
	r := db.MustRel("E")
	if r.Len() != 2 || r.Contains([]relation.Value{1, 2}) {
		t.Fatalf("unexpected E after delete: %v", r)
	}
	if !r.Contains([]relation.Value{2, 3}) || !r.Contains([]relation.Value{3, 4}) {
		t.Fatalf("delete dropped the wrong tuple: %v", r)
	}
	// Reinserting a deleted tuple must count as new again.
	if n := db.Insert("E", row(1, 2)); n != 1 {
		t.Fatalf("reinsert added %d, want 1", n)
	}
}

func TestInsertDedupsBaseRelation(t *testing.T) {
	db := NewDB()
	dup := Table(1, row(7), row(7), row(8))
	db.Set("R", dup)
	db.Insert("R", row(9))
	r := db.MustRel("R")
	if r.Len() != 3 {
		t.Fatalf("first tuple-level mutation must dedup in place: %d rows, want 3", r.Len())
	}
	// After dedup, deleting each distinct tuple once empties the relation.
	if n := db.Delete("R", row(7), row(8), row(9)); n != 3 {
		t.Fatalf("Delete removed %d, want 3", n)
	}
	if r.Len() != 0 {
		t.Fatalf("R not empty after deleting all: %v", r)
	}
}

func TestDeltasSinceTracksExactTuples(t *testing.T) {
	db := NewDB()
	db.Set("E", Table(2, row(1, 2)))
	db.Set("F", Table(1, row(5)))
	start := db.Seq()

	db.Insert("E", row(2, 3), row(3, 4))
	db.Insert("F", row(6)) // not tracked below
	db.Delete("E", row(1, 2))

	ds, ok := db.DeltasSince(start, map[string]bool{"E": true})
	if !ok {
		t.Fatal("DeltasSince reported a gap on a live range")
	}
	if len(ds) != 2 {
		t.Fatalf("got %d deltas, want 2 (F filtered out): %v", len(ds), ds)
	}
	if ds[0].Rel != "E" || ds[0].Added == nil || ds[0].Added.Len() != 2 || ds[0].Removed != nil {
		t.Fatalf("first delta wrong: %+v", ds[0])
	}
	if ds[1].Removed == nil || ds[1].Removed.Len() != 1 || !ds[1].Removed.Contains([]relation.Value{1, 2}) {
		t.Fatalf("second delta wrong: %+v", ds[1])
	}
	if ds[0].Seq <= start || ds[1].Seq <= ds[0].Seq {
		t.Fatalf("sequence numbers not increasing: %d, %d (start %d)", ds[0].Seq, ds[1].Seq, start)
	}

	// No-op mutations record nothing.
	seq := db.Seq()
	db.Insert("E", row(2, 3))
	db.Delete("E", row(99, 99))
	if db.Seq() != seq {
		t.Fatal("no-op Insert/Delete must not advance the changelog")
	}
}

func TestSetRecordsReset(t *testing.T) {
	db := NewDB()
	db.Set("E", Table(2, row(1, 2)))
	start := db.Seq()
	db.Insert("E", row(2, 3))
	db.Set("E", Table(2, row(9, 9)))
	if _, ok := db.DeltasSince(start, map[string]bool{"E": true}); ok {
		t.Fatal("Set must poison tuple-level history for the relation")
	}
	// Untracked names are unaffected by E's reset.
	db.Set("F", Table(1))
	db.Insert("F", row(1))
	ds, ok := db.DeltasSince(start, map[string]bool{"G": true})
	if !ok || len(ds) != 0 {
		t.Fatalf("unrelated tracking broken: ds=%v ok=%v", ds, ok)
	}
}

func TestChangelogEviction(t *testing.T) {
	db := NewDB()
	db.Set("E", Table(1))
	start := db.Seq()
	for i := 0; i < changelogCap+10; i++ {
		db.Insert("E", row(relation.Value(i)))
	}
	if _, ok := db.DeltasSince(start, map[string]bool{"E": true}); ok {
		t.Fatal("watermark behind the evicted horizon must report !ok")
	}
	// A fresh watermark still works.
	seq := db.Seq()
	db.Insert("E", row(relation.Value(1<<30)))
	ds, ok := db.DeltasSince(seq, map[string]bool{"E": true})
	if !ok || len(ds) != 1 {
		t.Fatalf("fresh watermark broken: ds=%v ok=%v", ds, ok)
	}
}

func TestChangelogRowCapEviction(t *testing.T) {
	db := NewDB()
	db.Set("E", Table(1))
	start := db.Seq()
	// A few huge batches blow the row cap long before the entry cap.
	batch := make([][]relation.Value, changelogRowCap/2)
	next := 0
	for i := 0; i < 4; i++ {
		for j := range batch {
			batch[j] = row(relation.Value(next))
			next++
		}
		db.Insert("E", batch...)
	}
	if _, ok := db.DeltasSince(start, map[string]bool{"E": true}); ok {
		t.Fatal("row-cap eviction must invalidate old watermarks")
	}
}

func TestRelGenStableAcrossSet(t *testing.T) {
	db := NewDB()
	db.Set("E", Table(1))
	g := db.RelGen("E")
	before := g.Load()
	db.Insert("E", row(1))
	if g.Load() == before {
		t.Fatal("Insert must bump the relation generation")
	}
	mid := g.Load()
	db.Set("E", Table(1, row(2)))
	if db.RelGen("E") != g {
		t.Fatal("generation counter object must be stable across Set")
	}
	if g.Load() == mid {
		t.Fatal("Set must bump the relation generation")
	}
	// Unrelated relations keep their own counters.
	f := db.RelGen("F")
	fBefore := f.Load()
	db.Insert("E", row(3))
	if f.Load() != fBefore {
		t.Fatal("mutating E must not bump F's generation")
	}
}

func TestWatchCoalescesSignals(t *testing.T) {
	db := NewDB()
	db.Set("E", Table(1))
	ch, stop := db.Watch()
	defer stop()
	drain := func() bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
	drain() // the Set above may have signaled
	db.Insert("E", row(1))
	db.Insert("E", row(2))
	if !drain() {
		t.Fatal("mutation did not signal the watcher")
	}
	if drain() {
		t.Fatal("signals must coalesce, not queue")
	}
	stop()
	db.Insert("E", row(3))
	if drain() {
		t.Fatal("stopped watcher still receiving")
	}
}

func TestGrewInPlace(t *testing.T) {
	db := NewDB()
	db.Set("E", Table(1, row(1)))
	seq := db.Seq()
	g := db.RelGen("E")
	before := g.Load()

	r := db.MustRel("E")
	grown := Table(1, row(2), row(3))
	for i := 0; i < grown.Len(); i++ {
		r.Append(grown.Row(i)...)
	}
	db.GrewInPlace("E", grown)

	if g.Load() == before {
		t.Fatal("GrewInPlace must bump the relation generation")
	}
	ds, ok := db.DeltasSince(seq, map[string]bool{"E": true})
	if !ok || len(ds) != 1 || ds[0].Added.Len() != 2 {
		t.Fatalf("GrewInPlace delta wrong: ds=%v ok=%v", ds, ok)
	}
	// The live-row map (if built) must stay honest: delete a grown tuple.
	if n := db.Delete("E", row(3)); n != 1 {
		t.Fatalf("Delete after GrewInPlace removed %d, want 1", n)
	}
	if n := db.Insert("E", row(2)); n != 0 {
		t.Fatalf("grown tuple reinserted as new (%d), live-row map stale", n)
	}
}
