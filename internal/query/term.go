// Package query defines the query abstract syntax shared by every engine:
// terms, relational atoms, conjunctive queries with inequality (≠) and
// comparison (<, ≤) atoms, positive and first-order formulas, and the
// database type they are evaluated against.
//
// The language hierarchy follows the paper exactly: conjunctive queries
// (∃, ∧), positive queries (adds ∨), first-order queries (adds ¬, ∀), and
// the two extensions studied in Section 5: ≠ atoms (Theorem 2) and order
// comparisons (Theorem 3).
package query

import (
	"fmt"

	"pyquery/internal/relation"
)

// Var identifies a query variable. Variables are dense small integers; the
// optional VarNames table on a query maps them back to source names.
type Var int

// Term is a variable, a constant, or a named parameter placeholder. A
// parameter stands for a constant whose value is supplied at execution time
// (Prepared.Exec in the facade); every engine requires parameters to be
// bound before evaluation — CQ.Validate rejects unbound ones.
type Term struct {
	Const relation.Value
	Var   Var
	IsVar bool
	// ParamName, when nonempty, marks the term as the named placeholder
	// $ParamName (and IsVar is false).
	ParamName string
}

// V returns a variable term.
func V(v Var) Term { return Term{Var: v, IsVar: true} }

// C returns a constant term.
func C(c relation.Value) Term { return Term{Const: c} }

// P returns a named parameter placeholder term $name. Parameters may appear
// in atom argument positions, head positions, and comparison sides; they
// are bound to constants at execution time through the prepared-query API.
func P(name string) Term {
	if name == "" {
		panic("query: parameter name must be nonempty")
	}
	return Term{ParamName: name}
}

// IsParam reports whether the term is an unbound parameter placeholder.
func (t Term) IsParam() bool { return t.ParamName != "" }

// Equal reports whether two terms are syntactically identical.
func (t Term) Equal(u Term) bool {
	if t.IsVar != u.IsVar || t.ParamName != u.ParamName {
		return false
	}
	if t.IsVar {
		return t.Var == u.Var
	}
	return t.ParamName != "" || t.Const == u.Const
}

func (t Term) String() string {
	if t.IsVar {
		return fmt.Sprintf("x%d", t.Var)
	}
	if t.ParamName != "" {
		return "$" + t.ParamName
	}
	return fmt.Sprintf("%d", t.Const)
}

// Atom is a relational atom R(t₁,…,tₙ).
type Atom struct {
	Rel  string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(rel string, args ...Term) Atom { return Atom{Rel: rel, Args: args} }

// Vars returns the distinct variables of the atom, in first-occurrence order.
func (a Atom) Vars() []Var {
	var out []Var
	seen := make(map[Var]bool, len(a.Args))
	for _, t := range a.Args {
		if t.IsVar && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

func (a Atom) String() string {
	s := a.Rel + "("
	for i, t := range a.Args {
		if i > 0 {
			s += ","
		}
		s += t.String()
	}
	return s + ")"
}

// Ineq is an inequality atom: x ≠ y (both variables) or x ≠ c.
type Ineq struct {
	X Var
	// Y is the right-hand side; meaningful when YIsVar.
	Y Var
	C relation.Value
	// YIsVar selects between the x≠y and x≠c forms.
	YIsVar bool
}

// NeqVars returns the x ≠ y form.
func NeqVars(x, y Var) Ineq { return Ineq{X: x, Y: y, YIsVar: true} }

// NeqConst returns the x ≠ c form.
func NeqConst(x Var, c relation.Value) Ineq { return Ineq{X: x, C: c} }

func (iq Ineq) String() string {
	if iq.YIsVar {
		return fmt.Sprintf("x%d != x%d", iq.X, iq.Y)
	}
	return fmt.Sprintf("x%d != %d", iq.X, iq.C)
}

// Cmp is a comparison atom between two terms: Left < Right (Strict) or
// Left ≤ Right. Terms may be variables or constants.
type Cmp struct {
	Left, Right Term
	Strict      bool
}

// Lt returns the strict comparison l < r.
func Lt(l, r Term) Cmp { return Cmp{Left: l, Right: r, Strict: true} }

// Le returns the weak comparison l ≤ r.
func Le(l, r Term) Cmp { return Cmp{Left: l, Right: r} }

// Holds evaluates the comparison on concrete values.
func (c Cmp) Holds(l, r relation.Value) bool {
	if c.Strict {
		return l < r
	}
	return l <= r
}

func (c Cmp) String() string {
	op := "<="
	if c.Strict {
		op = "<"
	}
	return fmt.Sprintf("%v %s %v", c.Left, op, c.Right)
}
