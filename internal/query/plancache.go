package query

import (
	"container/list"
	"sync"
)

// defaultPlanCacheCap bounds the per-database prepared-plan cache. Serving
// workloads repeat a small set of query templates, so a modest cap keeps
// the hot set resident while bounding memory for adversarial query streams.
const defaultPlanCacheCap = 128

// PlanCache is a small concurrency-safe LRU keyed by comparable fingerprint
// values. The facade stores compiled prepared statements here; the cache
// itself is value-agnostic (entries are any) so internal/query does not
// depend on the packages that define the compiled forms.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[any]*list.Element
}

type cacheEntry struct {
	key any
	val any
}

// NewPlanCache returns an empty LRU holding at most cap entries (cap ≤ 0
// falls back to the default capacity).
func NewPlanCache(cap int) *PlanCache {
	if cap <= 0 {
		cap = defaultPlanCacheCap
	}
	return &PlanCache{cap: cap, order: list.New(), entries: make(map[any]*list.Element)}
}

// Get returns the cached value for key, marking it most recently used.
func (c *PlanCache) Get(key any) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Add installs (or refreshes) key → val, evicting the least recently used
// entry beyond capacity. Concurrent callers may race to add the same key;
// last write wins, which is safe because compiled plans are deterministic
// functions of (query, options) and self-revalidate against the database
// generation.
func (c *PlanCache) Add(key, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
