package query

import (
	"strings"
	"testing"

	"pyquery/internal/relation"
)

func testDB() *DB {
	db := NewDB()
	db.Set("E", Table(2, []relation.Value{0, 1}, []relation.Value{1, 2}))
	db.Set("L", Table(1, []relation.Value{0}))
	return db
}

func TestTermEqualAndString(t *testing.T) {
	if !V(1).Equal(V(1)) || V(1).Equal(V(2)) || V(1).Equal(C(1)) || !C(3).Equal(C(3)) {
		t.Fatal("Term.Equal misbehaves")
	}
	if V(1).String() != "x1" || C(7).String() != "7" {
		t.Fatalf("Term.String: %q %q", V(1).String(), C(7).String())
	}
}

func TestAtomVarsDistinctInOrder(t *testing.T) {
	a := NewAtom("R", V(2), C(5), V(1), V(2))
	vars := a.Vars()
	if len(vars) != 2 || vars[0] != 2 || vars[1] != 1 {
		t.Fatalf("Atom.Vars = %v, want [2 1]", vars)
	}
}

func TestCQVarsAndParams(t *testing.T) {
	q := &CQ{
		Head:  []Term{V(0)},
		Atoms: []Atom{NewAtom("E", V(0), V(1)), NewAtom("E", V(1), V(2))},
		Ineqs: []Ineq{NeqVars(0, 2)},
		Cmps:  []Cmp{Lt(V(1), C(9))},
	}
	vars := q.Vars()
	if len(vars) != 3 {
		t.Fatalf("Vars = %v, want 3 vars", vars)
	}
	if q.NumVars() != 3 {
		t.Fatalf("NumVars = %d", q.NumVars())
	}
	// size: head 1 + atoms 2*(1+2) + ineq 3 + cmp 3 = 13
	if q.Size() != 13 {
		t.Fatalf("Size = %d, want 13", q.Size())
	}
	if q.IsBoolean() {
		t.Fatal("query with head is not boolean")
	}
}

func TestCQValidate(t *testing.T) {
	db := testDB()
	good := &CQ{Head: []Term{V(0)}, Atoms: []Atom{NewAtom("E", V(0), V(1))}}
	if err := good.Validate(db); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	unknown := &CQ{Atoms: []Atom{NewAtom("Z", V(0))}}
	if err := unknown.Validate(db); err == nil {
		t.Fatal("unknown relation accepted")
	}
	arity := &CQ{Atoms: []Atom{NewAtom("E", V(0))}}
	if err := arity.Validate(db); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	unsafeHead := &CQ{Head: []Term{V(5)}, Atoms: []Atom{NewAtom("E", V(0), V(1))}}
	if err := unsafeHead.Validate(db); err == nil {
		t.Fatal("unsafe head accepted")
	}
	unsafeIneq := &CQ{Atoms: []Atom{NewAtom("E", V(0), V(1))}, Ineqs: []Ineq{NeqVars(0, 9)}}
	if err := unsafeIneq.Validate(db); err == nil {
		t.Fatal("unsafe inequality accepted")
	}
	unsafeCmp := &CQ{Atoms: []Atom{NewAtom("E", V(0), V(1))}, Cmps: []Cmp{Lt(V(9), C(1))}}
	if err := unsafeCmp.Validate(db); err == nil {
		t.Fatal("unsafe comparison accepted")
	}
}

func TestBindHead(t *testing.T) {
	q := &CQ{
		Head:  []Term{V(0), V(1)},
		Atoms: []Atom{NewAtom("E", V(0), V(1))},
		Ineqs: []Ineq{NeqVars(0, 1)},
	}
	b, err := q.BindHead([]relation.Value{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsBoolean() {
		t.Fatal("bound query should be boolean")
	}
	if len(b.Atoms) != 1 || b.Atoms[0].Args[0].IsVar {
		t.Fatalf("constants not substituted: %v", b)
	}
	// x0≠x1 with both bound to distinct values: inequality disappears.
	if len(b.Ineqs) != 0 || len(b.Cmps) != 0 {
		t.Fatalf("satisfied ground inequality should vanish: %v", b)
	}
	// Binding both head vars to equal values makes the ≠ unsatisfiable.
	b2, err := q.BindHead([]relation.Value{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Cmps) != 1 {
		t.Fatalf("unsatisfiable marker missing: %v", b2)
	}
	if b2.Cmps[0].Holds(0, 0) {
		t.Fatal("marker comparison should be unsatisfiable")
	}
}

func TestBindHeadRepeatedVarsAndConsts(t *testing.T) {
	q := &CQ{
		Head:  []Term{V(0), V(0), C(7)},
		Atoms: []Atom{NewAtom("E", V(0), V(0))},
	}
	if _, err := q.BindHead([]relation.Value{1, 2, 7}); !IsTrivialMismatch(err) {
		t.Fatal("repeated head var bound to distinct values must mismatch")
	}
	if _, err := q.BindHead([]relation.Value{1, 1, 8}); !IsTrivialMismatch(err) {
		t.Fatal("head constant mismatch must be detected")
	}
	if _, err := q.BindHead([]relation.Value{1, 1, 7}); err != nil {
		t.Fatalf("valid binding rejected: %v", err)
	}
	if _, err := q.BindHead([]relation.Value{1}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestBindHeadPartialIneqSubstitution(t *testing.T) {
	q := &CQ{
		Head:  []Term{V(0)},
		Atoms: []Atom{NewAtom("E", V(0), V(1))},
		Ineqs: []Ineq{NeqVars(0, 1), NeqConst(0, 5)},
	}
	b, err := q.BindHead([]relation.Value{5})
	if err != nil {
		t.Fatal(err)
	}
	// x0≠x1 becomes x1≠5; x0≠5 becomes ground-false → marker.
	if len(b.Ineqs) != 1 || b.Ineqs[0].YIsVar || b.Ineqs[0].X != 1 || b.Ineqs[0].C != 5 {
		t.Fatalf("partial substitution wrong: %v", b.Ineqs)
	}
	if len(b.Cmps) != 1 {
		t.Fatalf("ground-false x0≠5 under x0=5 should add marker: %v", b)
	}
}

func TestCQString(t *testing.T) {
	q := &CQ{
		Head:  []Term{V(0)},
		Atoms: []Atom{NewAtom("E", V(0), V(1))},
		Ineqs: []Ineq{NeqVars(0, 1)},
		Cmps:  []Cmp{Lt(V(0), V(1))},
	}
	s := q.String()
	for _, want := range []string{"G(x0)", "E(x0,x1)", "x0 != x1", "x0 < x1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestHyperedges(t *testing.T) {
	q := &CQ{Atoms: []Atom{NewAtom("E", V(0), V(1)), NewAtom("L", C(3))}}
	h := q.Hyperedges()
	if len(h) != 2 || len(h[0]) != 2 || len(h[1]) != 0 {
		t.Fatalf("Hyperedges = %v", h)
	}
}

func TestFreeVarsWithShadowing(t *testing.T) {
	// exists x0 (E(x0,x1)) — x1 free, x0 bound.
	f := Exists{V: 0, Sub: FAtom{NewAtom("E", V(0), V(1))}}
	free := FreeVars(f)
	if len(free) != 1 || free[0] != 1 {
		t.Fatalf("FreeVars = %v, want [1]", free)
	}
	// Reuse: E(x0,x0) & exists x0 E(x0,x1): outer x0 free in first conjunct.
	g := Conj(FAtom{NewAtom("E", V(0), V(0))}, Exists{V: 0, Sub: FAtom{NewAtom("E", V(0), V(1))}})
	free = FreeVars(g)
	if len(free) != 2 {
		t.Fatalf("FreeVars with shadowing = %v, want [0 1]", free)
	}
	all := AllVars(g)
	if len(all) != 2 {
		t.Fatalf("AllVars = %v, want [0 1]", all)
	}
}

func TestIsPositive(t *testing.T) {
	pos := Disj(FAtom{NewAtom("E", V(0), V(1))}, Exists{V: 2, Sub: FAtom{NewAtom("L", V(2))}})
	if !IsPositive(pos) {
		t.Fatal("positive formula rejected")
	}
	if IsPositive(Not{Sub: pos}) {
		t.Fatal("negation accepted as positive")
	}
	if IsPositive(Forall{V: 0, Sub: FAtom{NewAtom("L", V(0))}}) {
		t.Fatal("forall accepted as positive")
	}
}

func TestFormulaSizeAndString(t *testing.T) {
	f := Exists{V: 0, Sub: Conj(FAtom{NewAtom("E", V(0), V(1))}, Not{Sub: FAtom{NewAtom("L", V(0))}})}
	if FormulaSize(f) < 6 {
		t.Fatalf("FormulaSize = %d, too small", FormulaSize(f))
	}
	s := f.String()
	for _, want := range []string{"exists x0", "E(x0,x1)", "!L(x0)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if (And{}).String() != "true" || (Or{}).String() != "false" {
		t.Fatal("empty conjunction/disjunction rendering")
	}
}

func TestFOQueryValidate(t *testing.T) {
	db := testDB()
	q := &FOQuery{
		Head: []Term{V(1)},
		Body: Exists{V: 0, Sub: FAtom{NewAtom("E", V(0), V(1))}},
	}
	if err := q.Validate(db); err != nil {
		t.Fatalf("valid FO query rejected: %v", err)
	}
	// Free variable not in head.
	bad := &FOQuery{Head: nil, Body: FAtom{NewAtom("E", V(0), V(1))}}
	if err := bad.Validate(db); err == nil {
		t.Fatal("free variables outside head accepted")
	}
	// Head var not free in body.
	bad2 := &FOQuery{Head: []Term{V(5)}, Body: Exists{V: 0, Sub: Exists{V: 5, Sub: FAtom{NewAtom("E", V(0), V(5))}}}}
	if err := bad2.Validate(db); err == nil {
		t.Fatal("head var not free accepted")
	}
	// Unknown relation.
	bad3 := &FOQuery{Body: FAtom{NewAtom("Z", V(0))}}
	if err := bad3.Validate(db); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestCQToFormula(t *testing.T) {
	q := &CQ{
		Head:  []Term{V(0)},
		Atoms: []Atom{NewAtom("E", V(0), V(1)), NewAtom("E", V(1), V(2))},
	}
	f, err := CQToFormula(q)
	if err != nil {
		t.Fatal(err)
	}
	free := FreeVars(f)
	if len(free) != 1 || free[0] != 0 {
		t.Fatalf("formula free vars = %v, want [0]", free)
	}
	if !IsPositive(f) {
		t.Fatal("CQ formula should be positive")
	}
	if _, err := CQToFormula(&CQ{Ineqs: []Ineq{NeqVars(0, 1)}}); err == nil {
		t.Fatal("CQ with ≠ must not convert")
	}
}

func TestDBBasics(t *testing.T) {
	db := testDB()
	if db.Size() != 3 {
		t.Fatalf("Size = %d, want 3", db.Size())
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "E" || names[1] != "L" {
		t.Fatalf("Names = %v", names)
	}
	dom := db.ActiveDomain()
	if len(dom) != 3 {
		t.Fatalf("ActiveDomain = %v", dom)
	}
	if _, ok := db.Rel("nope"); ok {
		t.Fatal("phantom relation")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRel should panic on missing relation")
		}
	}()
	db.MustRel("nope")
}

func TestCloneIndependence(t *testing.T) {
	q := &CQ{Head: []Term{V(0)}, Atoms: []Atom{NewAtom("E", V(0), V(1))}}
	c := q.Clone()
	c.Atoms[0].Args[0] = C(9)
	if q.Atoms[0].Args[0].IsVar == false {
		t.Fatal("clone aliases atom args")
	}
}
