package query

import (
	"fmt"
	"sync/atomic"

	"pyquery/internal/relation"
)

// Per-relation changelog: the plumbing the incremental-maintenance layer
// (internal/ivm) consumes. Every mutation of a DB bumps the touched
// relation's generation counter and, for tuple-level mutations (Insert,
// Delete, GrewInPlace), appends the exact inserted/deleted tuple sets to a
// bounded in-memory log. Consumers hold a sequence watermark and ask for
// the deltas since it; a wholesale Set (no tuple-level delta) appears as a
// Reset entry, and an evicted watermark reports !ok — both mean "recompute
// from scratch".
//
// Mutations follow the DB contract: one writer, no writes concurrent with
// reads. The changelog bookkeeping itself is guarded by the DB mutex so
// Subscribe-style consumers may register watchers concurrently.

// Delta is one changelog entry: the tuples relation Rel gained and lost at
// sequence number Seq. Added and Removed are disjoint tuple sets (nil when
// empty) owned by the changelog — callers must not modify them. Reset
// marks a wholesale replacement (DB.Set) with no tuple-level delta.
type Delta struct {
	Rel            string
	Seq            uint64
	Added, Removed *relation.Relation
	Reset          bool
}

// rows returns the number of tuples the entry retains.
func (d Delta) rows() int {
	n := 0
	if d.Added != nil {
		n += d.Added.Len()
	}
	if d.Removed != nil {
		n += d.Removed.Len()
	}
	return n
}

const (
	// changelogCap bounds the number of retained entries; changelogRowCap
	// bounds the total tuples they hold. Past either, the oldest entries
	// are evicted and consumers behind them fall back to full recompute.
	changelogCap    = 512
	changelogRowCap = 1 << 16
)

// relLog is the per-relation live-row map: tuple → current row position.
// It enforces set semantics for Insert/Delete and makes deletion O(1) via
// swap-remove.
type relLog struct {
	pos *relation.TupleMap
}

// RelGen returns the named relation's generation counter, creating it on
// first use. The counter object is stable across Sets of the name, so
// consumers may cache the pointer at compile time and revalidate with one
// atomic load per execution — the per-relation half of the prepared-
// statement staleness check.
func (db *DB) RelGen(name string) *atomic.Uint64 {
	db.mu.Lock()
	g := db.relGenLocked(name)
	db.mu.Unlock()
	return g
}

func (db *DB) relGenLocked(name string) *atomic.Uint64 {
	if db.relGens == nil {
		db.relGens = make(map[string]*atomic.Uint64)
	}
	g := db.relGens[name]
	if g == nil {
		g = new(atomic.Uint64)
		db.relGens[name] = g
	}
	return g
}

// Seq returns the changelog's current sequence number: the Seq of the most
// recent entry, 0 when nothing was ever recorded. A consumer that has
// applied every delta up to and including Seq() is up to date.
func (db *DB) Seq() uint64 {
	db.mu.Lock()
	s := db.clogSeq
	db.mu.Unlock()
	return s
}

// DeltasSince returns the changelog entries with sequence numbers above
// since that touch one of the named relations, in order. ok is false when
// the tuple-level history is unusable from that watermark: entries at or
// below the horizon were evicted, or a tracked relation was wholesale
// replaced (Reset) in the range — either way the consumer must recompute
// from scratch and restart from Seq(). The returned entries (and their
// tuple sets) are owned by the changelog and must not be modified.
func (db *DB) DeltasSince(since uint64, names map[string]bool) (ds []Delta, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if since < db.clogEvicted {
		return nil, false
	}
	for _, d := range db.clog {
		if d.Seq <= since || !names[d.Rel] {
			continue
		}
		if d.Reset {
			return nil, false
		}
		ds = append(ds, d)
	}
	return ds, true
}

// Watch registers a mutation watcher: the returned channel receives a
// coalesced signal after every Set/Insert/Delete/GrewInPlace. stop
// unregisters the watcher; it must be called when done.
func (db *DB) Watch() (ch <-chan struct{}, stop func()) {
	c := make(chan struct{}, 1)
	db.mu.Lock()
	if db.watchers == nil {
		db.watchers = make(map[int]chan struct{})
	}
	id := db.watcherSeq
	db.watcherSeq++
	db.watchers[id] = c
	db.mu.Unlock()
	return c, func() {
		db.mu.Lock()
		delete(db.watchers, id)
		db.mu.Unlock()
	}
}

// recordLocked appends a changelog entry, bumps the relation's generation,
// and signals watchers. Caller holds db.mu.
func (db *DB) recordLocked(d Delta) {
	db.clogSeq++
	d.Seq = db.clogSeq
	db.clog = append(db.clog, d)
	db.clogRows += d.rows()
	for len(db.clog) > changelogCap || (db.clogRows > changelogRowCap && len(db.clog) > 1) {
		db.clogEvicted = db.clog[0].Seq
		db.clogRows -= db.clog[0].rows()
		db.clog = db.clog[1:]
	}
	db.relGenLocked(d.Rel).Add(1)
	for _, c := range db.watchers {
		select {
		case c <- struct{}{}:
		default:
		}
	}
}

// logFor returns the relation's live-row map, building it on first use.
// Building dedups the relation in place (set semantics are canonical from
// the first tuple-level mutation on).
func (db *DB) logFor(name string, r *relation.Relation) *relLog {
	if db.logs == nil {
		db.logs = make(map[string]*relLog)
	}
	if l := db.logs[name]; l != nil {
		return l
	}
	pos := relation.NewTupleMapSized(r.Width(), r.Len())
	buf := make([]relation.Value, r.Width())
	for i := 0; i < r.Len(); {
		row := r.RowTo(buf, i)
		if _, dup := pos.Get(row); dup {
			r.SwapRemove(i)
			continue
		}
		pos.Set(row, int32(i))
		i++
	}
	l := &relLog{pos: pos}
	db.logs[name] = l
	return l
}

// Insert adds tuples to the named relation in place under set semantics
// (already-present tuples are skipped) and records the exact inserted set
// in the changelog. It returns the number of tuples actually added.
// Mutations must not run concurrently with reads (the DB contract); frozen
// consumers revalidate through the relation's generation counter.
func (db *DB) Insert(name string, rows ...[]relation.Value) int {
	r := db.MustRel(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	l := db.logFor(name, r)
	var added *relation.Relation
	for _, row := range rows {
		if len(row) != r.Width() {
			panic(fmt.Sprintf("query: Insert(%s): tuple has %d values, want %d", name, len(row), r.Width()))
		}
		if _, ok := l.pos.Get(row); ok {
			continue
		}
		l.pos.Set(row, int32(r.Len()))
		r.Append(row...)
		if added == nil {
			added = relation.New(r.Schema())
		}
		added.Append(row...)
	}
	if added == nil {
		return 0
	}
	db.gen.Add(1)
	delete(db.memo, name)
	db.recordLocked(Delta{Rel: name, Added: added})
	return added.Len()
}

// Delete removes tuples from the named relation in place (swap-remove, so
// row order is not preserved) and records the exact removed set in the
// changelog. Tuples not present are skipped; it returns the number
// actually removed.
func (db *DB) Delete(name string, rows ...[]relation.Value) int {
	r := db.MustRel(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	l := db.logFor(name, r)
	var removed *relation.Relation
	lastBuf := make([]relation.Value, r.Width())
	for _, row := range rows {
		if len(row) != r.Width() {
			panic(fmt.Sprintf("query: Delete(%s): tuple has %d values, want %d", name, len(row), r.Width()))
		}
		p, ok := l.pos.Get(row)
		if !ok {
			continue
		}
		last := r.Len() - 1
		if int(p) != last {
			l.pos.Set(r.RowTo(lastBuf, last), p)
		}
		l.pos.Delete(row)
		r.SwapRemove(int(p))
		if removed == nil {
			removed = relation.New(r.Schema())
		}
		removed.Append(row...)
	}
	if removed == nil {
		return 0
	}
	db.gen.Add(1)
	delete(db.memo, name)
	db.recordLocked(Delta{Rel: name, Removed: removed})
	return removed.Len()
}

// GrewInPlace records that the caller appended the given tuples to the
// named relation in place (append-only Datalog tables): the changelog
// gains an insert entry and the relation's generation moves, without the
// DB copying or re-validating the rows. added is retained by the changelog
// and must not be modified afterwards.
func (db *DB) GrewInPlace(name string, added *relation.Relation) {
	if added == nil || added.Len() == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.memo, name)
	if l := db.logs[name]; l != nil {
		// Keep the live-row map honest if tuple-level mutations were used.
		r := db.MustRel(name)
		base := r.Len() - added.Len()
		buf := make([]relation.Value, added.Width())
		for i := 0; i < added.Len(); i++ {
			l.pos.Set(added.RowTo(buf, i), int32(base+i))
		}
	}
	db.recordLocked(Delta{Rel: name, Added: added})
}
