package query

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pyquery/internal/relation"
)

// ErrUnknownRelation is the typed kind behind every "relation not in the
// database" failure: query validation wraps it (with the relation name),
// and MustRel panics with an error wrapping it. Callers dispatch with
// errors.Is(err, ErrUnknownRelation).
var ErrUnknownRelation = errors.New("query: unknown relation")

// DB is a database instance: a set of named relations over a shared domain.
// Base relations use positional schemas (attributes 0…arity−1); engines
// re-key columns by query variable as they build intermediate relations.
type DB struct {
	rels map[string]*relation.Relation
	// Dict, when set, interns the symbolic constants of this database; the
	// CLIs and parsers use it to print values back as strings.
	Dict *relation.Dict

	// memo caches per-relation derived artifacts (column statistics, see
	// internal/stats), keyed by relation name. Set invalidates the entry;
	// consumers whose relations grow in place (append-only Datalog tables)
	// revalidate against the relation's current Len. Guarded by mu so
	// concurrent evaluations (parallel Datalog rule firings) may share the
	// cache; the relations map itself keeps the existing contract of no
	// writes concurrent with reads.
	mu   sync.Mutex
	memo map[string]any

	// gen counts Set calls — the database generation the prepared-statement
	// layer revalidates against (a moved generation means frozen plans,
	// reductions, and indexes may be stale and must be rebuilt).
	gen atomic.Uint64
	// plans is the lazily created per-database prepared-plan LRU (see
	// PlanCache); guarded by mu for initialization only.
	plans *PlanCache

	// Changelog state (see changelog.go), all guarded by mu: relGens holds
	// the stable per-relation generation counters, clog the bounded delta
	// ring (clogSeq the last assigned sequence number, clogEvicted the
	// highest evicted one, clogRows the retained tuple total), logs the
	// lazily built per-relation live-row maps behind Insert/Delete, and
	// watchers the Subscribe-style mutation channels.
	relGens     map[string]*atomic.Uint64
	clog        []Delta
	clogSeq     uint64
	clogEvicted uint64
	clogRows    int
	logs        map[string]*relLog
	watchers    map[int]chan struct{}
	watcherSeq  int
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{rels: make(map[string]*relation.Relation)} }

// Set installs (or replaces) relation name. The relation should use the
// positional schema produced by NewTable. Any cached derived artifact for
// the name is invalidated, and the changelog records a Reset entry (there
// is no tuple-level delta for a wholesale replacement — incremental
// consumers recompute from scratch).
func (db *DB) Set(name string, r *relation.Relation) {
	db.rels[name] = r
	db.gen.Add(1)
	db.mu.Lock()
	delete(db.memo, name)
	delete(db.logs, name)
	db.recordLocked(Delta{Rel: name, Reset: true})
	db.mu.Unlock()
}

// Generation returns the database generation: a counter bumped by every
// Set. Derived artifacts that froze whole-database state (prepared plans,
// reduced relations, indexes) record the generation they were built at and
// rebuild when it has moved. Relations grown in place (append-only Datalog
// tables) do not bump the generation — consumers additionally revalidate
// the row counts of the relations they froze.
func (db *DB) Generation() uint64 { return db.gen.Load() }

// Plans returns the database's prepared-plan cache, creating it on first
// use. The facade's Evaluate* free functions key compiled prepared
// statements here by query fingerprint, so repeated one-shot evaluations
// amortize planning; entries self-revalidate against Generation, so Set
// never leaves a stale plan observable.
func (db *DB) Plans() *PlanCache {
	db.mu.Lock()
	if db.plans == nil {
		db.plans = NewPlanCache(defaultPlanCacheCap)
	}
	p := db.plans
	db.mu.Unlock()
	return p
}

// Memo returns the cached derived artifact for relation name, if present.
func (db *DB) Memo(name string) (any, bool) {
	db.mu.Lock()
	v, ok := db.memo[name]
	db.mu.Unlock()
	return v, ok
}

// SetMemo caches a derived artifact for relation name. Concurrent callers
// may race to compute the same derivation; last write wins, which is safe
// because derivations are deterministic functions of the relation.
func (db *DB) SetMemo(name string, v any) {
	db.mu.Lock()
	if db.memo == nil {
		db.memo = make(map[string]any)
	}
	db.memo[name] = v
	db.mu.Unlock()
}

// Rel returns the named relation.
func (db *DB) Rel(name string) (*relation.Relation, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// MustRel returns the named relation or panics; for tests and workloads
// where absence is a programming error. The panic value is an error
// wrapping ErrUnknownRelation, so a recovery boundary (the facade's) can
// classify it instead of reporting an opaque string.
func (db *DB) MustRel(name string) *relation.Relation {
	r, ok := db.rels[name]
	if !ok {
		panic(fmt.Errorf("%w: no relation %q in database", ErrUnknownRelation, name))
	}
	return r
}

// Names returns the relation names in sorted order.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the total number of tuples across all relations — the
// paper's n, the size of the database.
func (db *DB) Size() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns the sorted set of values appearing in any relation.
func (db *DB) ActiveDomain() []relation.Value {
	rels := make([]*relation.Relation, 0, len(db.rels))
	for _, r := range db.rels {
		rels = append(rels, r)
	}
	return relation.ActiveDomain(rels...)
}

// NewTable returns an empty base relation of the given arity with the
// positional schema 0…arity−1.
func NewTable(arity int) *relation.Relation {
	schema := make(relation.Schema, arity)
	for i := range schema {
		schema[i] = relation.Attr(i)
	}
	return relation.New(schema)
}

// Table builds a base relation of the given arity from rows.
func Table(arity int, rows ...[]relation.Value) *relation.Relation {
	r := NewTable(arity)
	for _, row := range rows {
		r.Append(row...)
	}
	return r
}
