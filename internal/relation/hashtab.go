package relation

// Open-addressed hash containers for tuples. TupleSet is a set of
// fixed-width tuples (dedup, membership); TupleIndex maps fixed-width key
// tuples to lists of int32 row ids (hash joins, per-atom lookups). Both
// store tuple payloads in flat []Value arenas, key probes by the mixing
// hashes of hash.go, and never build string keys, so the steady-state
// per-probe allocation count is zero.
//
// Width 1 is special-cased onto Go's built-in map keyed by Value directly:
// for a single comparable machine word the runtime map is allocation-free
// per probe and skips our probe loop entirely.
//
// Zero-width tuples are legal (Boolean relations): every empty tuple is the
// same tuple, so a TupleSet holds at most one entry.

// TupleSet is a set of width-w tuples with O(1) expected Add/Contains and
// no per-operation allocation (amortized growth aside).
type TupleSet struct {
	width int
	m1    map[Value]struct{} // width==1 fast path; nil otherwise

	// Open-addressed table: slots hold entry indices into hashes/keys,
	// emptySlot marks a free slot. Entry e's tuple lives at
	// keys[e*width : (e+1)*width].
	slots  []int32
	hashes []uint64
	keys   []Value
	n      int
}

// NewTupleSet returns an empty set of width-w tuples.
func NewTupleSet(width int) *TupleSet { return NewTupleSetSized(width, 0) }

// NewTupleSetSized pre-sizes the set for about capHint tuples.
func NewTupleSetSized(width, capHint int) *TupleSet {
	s := &TupleSet{width: width}
	if width == 1 {
		s.m1 = make(map[Value]struct{}, capHint)
		return s
	}
	s.slots = newSlots(nextPow2(capHint * 4 / 3))
	s.hashes = make([]uint64, 0, capHint)
	s.keys = make([]Value, 0, capHint*width)
	return s
}

func newSlots(n int) []int32 {
	slots := make([]int32, n)
	for i := range slots {
		slots[i] = emptySlot
	}
	return slots
}

// Width returns the tuple width.
func (s *TupleSet) Width() int { return s.width }

// Len returns the number of distinct tuples.
func (s *TupleSet) Len() int {
	if s.m1 != nil {
		return len(s.m1)
	}
	return s.n
}

// Row returns the i-th inserted tuple in insertion order. It is only
// available on widths ≠ 1 (the map fast path does not retain order) and
// exists for containers layered on top of the set.
func (s *TupleSet) row(i int) []Value {
	return s.keys[i*s.width : (i+1)*s.width]
}

// Add inserts the tuple if absent and reports whether it was added. The
// tuple is copied; callers may reuse the slice.
func (s *TupleSet) Add(row []Value) bool {
	if s.m1 != nil {
		if _, ok := s.m1[row[0]]; ok {
			return false
		}
		s.m1[row[0]] = struct{}{}
		return true
	}
	s.maybeGrow()
	h := hashRow(row)
	mask := uint64(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := s.slots[i]
		if e == emptySlot {
			s.slots[i] = int32(s.n)
			s.hashes = append(s.hashes, h)
			s.keys = append(s.keys, row...)
			s.n++
			return true
		}
		if s.hashes[e] == h && rowsEqual(row, s.row(int(e))) {
			return false
		}
	}
}

// AddCols inserts the projection of row onto the column positions cols
// (which must have length Width) without materializing it, reporting
// whether it was new.
func (s *TupleSet) AddCols(row []Value, cols []int) bool {
	if s.m1 != nil {
		v := row[cols[0]]
		if _, ok := s.m1[v]; ok {
			return false
		}
		s.m1[v] = struct{}{}
		return true
	}
	s.maybeGrow()
	h := hashRowCols(row, cols)
	mask := uint64(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := s.slots[i]
		if e == emptySlot {
			s.slots[i] = int32(s.n)
			s.hashes = append(s.hashes, h)
			for _, c := range cols {
				s.keys = append(s.keys, row[c])
			}
			s.n++
			return true
		}
		if s.hashes[e] == h && rowEqualCols(row, cols, s.row(int(e))) {
			return false
		}
	}
}

// AddRel inserts the projection of r's row i onto the column positions
// cols, reading the columns in place — the columnar counterpart of
// AddCols. It reports whether the tuple was new.
func (s *TupleSet) AddRel(r *Relation, i int, cols []int) bool {
	if s.m1 != nil {
		v := r.cols[cols[0]].at(i)
		if _, ok := s.m1[v]; ok {
			return false
		}
		s.m1[v] = struct{}{}
		return true
	}
	s.maybeGrow()
	h := hashRelCols(r, i, cols)
	mask := uint64(len(s.slots) - 1)
	for j := h & mask; ; j = (j + 1) & mask {
		e := s.slots[j]
		if e == emptySlot {
			s.slots[j] = int32(s.n)
			s.hashes = append(s.hashes, h)
			for _, c := range cols {
				s.keys = append(s.keys, r.cols[c].at(i))
			}
			s.n++
			return true
		}
		if s.hashes[e] == h && relEqualCols(r, i, cols, s.row(int(e))) {
			return false
		}
	}
}

// AddRelRow inserts r's full row i (width must equal the set's width),
// reading the columns in place.
func (s *TupleSet) AddRelRow(r *Relation, i int) bool {
	if s.m1 != nil {
		v := r.cols[0].at(i)
		if _, ok := s.m1[v]; ok {
			return false
		}
		s.m1[v] = struct{}{}
		return true
	}
	s.maybeGrow()
	h := hashRelRow(r, i)
	mask := uint64(len(s.slots) - 1)
	for j := h & mask; ; j = (j + 1) & mask {
		e := s.slots[j]
		if e == emptySlot {
			s.slots[j] = int32(s.n)
			s.hashes = append(s.hashes, h)
			for c := range r.cols {
				s.keys = append(s.keys, r.cols[c].at(i))
			}
			s.n++
			return true
		}
		if s.hashes[e] == h && relEqualRow(r, i, s.row(int(e))) {
			return false
		}
	}
}

// ContainsRel reports membership of the projection of r's row i onto cols,
// reading the columns in place.
func (s *TupleSet) ContainsRel(r *Relation, i int, cols []int) bool {
	if s.m1 != nil {
		_, ok := s.m1[r.cols[cols[0]].at(i)]
		return ok
	}
	h := hashRelCols(r, i, cols)
	mask := uint64(len(s.slots) - 1)
	for j := h & mask; ; j = (j + 1) & mask {
		e := s.slots[j]
		if e == emptySlot {
			return false
		}
		if s.hashes[e] == h && relEqualCols(r, i, cols, s.row(int(e))) {
			return true
		}
	}
}

// ContainsRelRow reports membership of r's full row i.
func (s *TupleSet) ContainsRelRow(r *Relation, i int) bool {
	if s.m1 != nil {
		_, ok := s.m1[r.cols[0].at(i)]
		return ok
	}
	h := hashRelRow(r, i)
	mask := uint64(len(s.slots) - 1)
	for j := h & mask; ; j = (j + 1) & mask {
		e := s.slots[j]
		if e == emptySlot {
			return false
		}
		if s.hashes[e] == h && relEqualRow(r, i, s.row(int(e))) {
			return true
		}
	}
}

// Contains reports membership of the tuple.
func (s *TupleSet) Contains(row []Value) bool {
	if s.m1 != nil {
		_, ok := s.m1[row[0]]
		return ok
	}
	h := hashRow(row)
	mask := uint64(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := s.slots[i]
		if e == emptySlot {
			return false
		}
		if s.hashes[e] == h && rowsEqual(row, s.row(int(e))) {
			return true
		}
	}
}

// ContainsCols reports membership of the projection of row onto cols,
// without materializing it.
func (s *TupleSet) ContainsCols(row []Value, cols []int) bool {
	if s.m1 != nil {
		_, ok := s.m1[row[cols[0]]]
		return ok
	}
	h := hashRowCols(row, cols)
	mask := uint64(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := s.slots[i]
		if e == emptySlot {
			return false
		}
		if s.hashes[e] == h && rowEqualCols(row, cols, s.row(int(e))) {
			return true
		}
	}
}

// maybeGrow doubles the slot table when the load factor reaches 3/4.
func (s *TupleSet) maybeGrow() {
	if (s.n+1)*4 <= len(s.slots)*3 {
		return
	}
	slots := newSlots(len(s.slots) * 2)
	mask := uint64(len(slots) - 1)
	for e, h := range s.hashes {
		i := h & mask
		for slots[i] != emptySlot {
			i = (i + 1) & mask
		}
		slots[i] = int32(e)
	}
	s.slots = slots
}

// TupleIndex maps width-w key tuples to the list of int32 ids added under
// them, preserving per-key insertion order. Build with Add, then call
// Freeze (or let IDs do it) to lay every id list out contiguously; after
// that IDs returns a subslice view — no copying, no allocation per lookup.
type TupleIndex struct {
	width int
	m1    map[Value]int32 // width==1 fast path: key value → entry index

	slots  []int32
	hashes []uint64
	keys   []Value

	// Per-entry posting chains while building: head/tail index into the
	// rows/next arenas, count tracks chain length for Freeze.
	head, tail, count []int32
	rows, next        []int32

	frozen  bool
	spanOff []int32 // per-entry offset into spanIDs
	spanIDs []int32
}

// NewTupleIndex returns an empty index over width-w keys.
func NewTupleIndex(width int) *TupleIndex { return NewTupleIndexSized(width, 0) }

// NewTupleIndexSized pre-sizes the index for about capHint total ids.
func NewTupleIndexSized(width, capHint int) *TupleIndex {
	ix := &TupleIndex{width: width}
	if width == 1 {
		ix.m1 = make(map[Value]int32, capHint)
	} else {
		ix.slots = newSlots(nextPow2(capHint * 4 / 3))
	}
	ix.rows = make([]int32, 0, capHint)
	ix.next = make([]int32, 0, capHint)
	return ix
}

// Distinct returns the number of distinct keys.
func (ix *TupleIndex) Distinct() int { return len(ix.count) }

// Width returns the key width.
func (ix *TupleIndex) Width() int { return ix.width }

// Len returns the total number of ids added.
func (ix *TupleIndex) Len() int {
	if ix.frozen {
		return len(ix.spanIDs)
	}
	return len(ix.rows)
}

// find returns the entry index for key, or -1.
func (ix *TupleIndex) find(key []Value) int32 {
	if ix.m1 != nil {
		e, ok := ix.m1[key[0]]
		if !ok {
			return -1
		}
		return e
	}
	h := hashRow(key)
	mask := uint64(len(ix.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := ix.slots[i]
		if e == emptySlot {
			return -1
		}
		if ix.hashes[e] == h && rowsEqual(key, ix.key(int(e))) {
			return e
		}
	}
}

// findCols is find for the projection of row onto cols.
func (ix *TupleIndex) findCols(row []Value, cols []int) int32 {
	if ix.m1 != nil {
		e, ok := ix.m1[row[cols[0]]]
		if !ok {
			return -1
		}
		return e
	}
	h := hashRowCols(row, cols)
	mask := uint64(len(ix.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := ix.slots[i]
		if e == emptySlot {
			return -1
		}
		if ix.hashes[e] == h && rowEqualCols(row, cols, ix.key(int(e))) {
			return e
		}
	}
}

// findRel is find for the projection of r's row i onto cols, reading the
// columns in place.
func (ix *TupleIndex) findRel(r *Relation, i int, cols []int) int32 {
	if ix.m1 != nil {
		e, ok := ix.m1[r.cols[cols[0]].at(i)]
		if !ok {
			return -1
		}
		return e
	}
	h := hashRelCols(r, i, cols)
	mask := uint64(len(ix.slots) - 1)
	for j := h & mask; ; j = (j + 1) & mask {
		e := ix.slots[j]
		if e == emptySlot {
			return -1
		}
		if ix.hashes[e] == h && relEqualCols(r, i, cols, ix.key(int(e))) {
			return e
		}
	}
}

func (ix *TupleIndex) key(e int) []Value {
	return ix.keys[e*ix.width : (e+1)*ix.width]
}

// findOrAdd returns the entry for key, creating it if absent.
func (ix *TupleIndex) findOrAdd(key []Value) int32 {
	if ix.m1 != nil {
		if e, ok := ix.m1[key[0]]; ok {
			return e
		}
		e := int32(len(ix.head))
		ix.m1[key[0]] = e
		ix.addEntry()
		return e
	}
	ix.maybeGrow()
	h := hashRow(key)
	mask := uint64(len(ix.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := ix.slots[i]
		if e == emptySlot {
			e = int32(len(ix.head))
			ix.slots[i] = e
			ix.hashes = append(ix.hashes, h)
			ix.keys = append(ix.keys, key...)
			ix.addEntry()
			return e
		}
		if ix.hashes[e] == h && rowsEqual(key, ix.key(int(e))) {
			return e
		}
	}
}

func (ix *TupleIndex) addEntry() {
	ix.head = append(ix.head, -1)
	ix.tail = append(ix.tail, -1)
	ix.count = append(ix.count, 0)
}

func (ix *TupleIndex) maybeGrow() {
	if (len(ix.head)+1)*4 <= len(ix.slots)*3 {
		return
	}
	slots := newSlots(len(ix.slots) * 2)
	mask := uint64(len(slots) - 1)
	for e, h := range ix.hashes {
		i := h & mask
		for slots[i] != emptySlot {
			i = (i + 1) & mask
		}
		slots[i] = int32(e)
	}
	ix.slots = slots
}

// Add records id under key. The key is copied; callers may reuse the
// slice. Add panics after Freeze.
func (ix *TupleIndex) Add(key []Value, id int32) {
	if ix.frozen {
		panic("relation: TupleIndex.Add after Freeze")
	}
	e := ix.findOrAdd(key)
	p := int32(len(ix.rows))
	ix.rows = append(ix.rows, id)
	ix.next = append(ix.next, -1)
	if ix.tail[e] >= 0 {
		ix.next[ix.tail[e]] = p
	} else {
		ix.head[e] = p
	}
	ix.tail[e] = p
	ix.count[e]++
}

// AddRel records id under the projection of r's row i onto cols, reading
// the columns in place — the columnar counterpart of Add. It panics after
// Freeze.
func (ix *TupleIndex) AddRel(r *Relation, i int, cols []int, id int32) {
	if ix.frozen {
		panic("relation: TupleIndex.AddRel after Freeze")
	}
	var e int32
	if ix.m1 != nil {
		v := r.cols[cols[0]].at(i)
		var ok bool
		if e, ok = ix.m1[v]; !ok {
			e = int32(len(ix.head))
			ix.m1[v] = e
			ix.addEntry()
		}
	} else {
		ix.maybeGrow()
		h := hashRelCols(r, i, cols)
		mask := uint64(len(ix.slots) - 1)
		for j := h & mask; ; j = (j + 1) & mask {
			e = ix.slots[j]
			if e == emptySlot {
				e = int32(len(ix.head))
				ix.slots[j] = e
				ix.hashes = append(ix.hashes, h)
				for _, c := range cols {
					ix.keys = append(ix.keys, r.cols[c].at(i))
				}
				ix.addEntry()
				break
			}
			if ix.hashes[e] == h && relEqualCols(r, i, cols, ix.key(int(e))) {
				break
			}
		}
	}
	p := int32(len(ix.rows))
	ix.rows = append(ix.rows, id)
	ix.next = append(ix.next, -1)
	if ix.tail[e] >= 0 {
		ix.next[ix.tail[e]] = p
	} else {
		ix.head[e] = p
	}
	ix.tail[e] = p
	ix.count[e]++
}

// Freeze lays each key's id list out contiguously so IDs can return
// subslice views. Idempotent; called implicitly by the first IDs.
func (ix *TupleIndex) Freeze() {
	if ix.frozen {
		return
	}
	ix.frozen = true
	ix.spanOff = make([]int32, len(ix.head)+1)
	for e, c := range ix.count {
		ix.spanOff[e+1] = ix.spanOff[e] + c
	}
	ix.spanIDs = make([]int32, len(ix.rows))
	for e := range ix.head {
		w := ix.spanOff[e]
		for p := ix.head[e]; p >= 0; p = ix.next[p] {
			ix.spanIDs[w] = ix.rows[p]
			w++
		}
	}
	// The chain arenas are dead weight once spans exist.
	ix.rows, ix.next, ix.head, ix.tail = nil, nil, nil, nil
}

func (ix *TupleIndex) span(e int32) []int32 {
	if e < 0 {
		return nil
	}
	return ix.spanIDs[ix.spanOff[e]:ix.spanOff[e+1]:ix.spanOff[e+1]]
}

// IDs returns the ids added under key, in insertion order, as a view that
// must not be modified. It freezes the index on first use.
func (ix *TupleIndex) IDs(key []Value) []int32 {
	if !ix.frozen {
		ix.Freeze()
	}
	return ix.span(ix.find(key))
}

// IDsCols is IDs keyed by the projection of row onto cols, without
// materializing the key.
func (ix *TupleIndex) IDsCols(row []Value, cols []int) []int32 {
	if !ix.frozen {
		ix.Freeze()
	}
	return ix.span(ix.findCols(row, cols))
}

// IDsRel is IDs keyed by the projection of r's row i onto cols, reading
// the columns in place.
func (ix *TupleIndex) IDsRel(r *Relation, i int, cols []int) []int32 {
	if !ix.frozen {
		ix.Freeze()
	}
	return ix.span(ix.findRel(r, i, cols))
}

// Each calls fn with every id under key, in insertion order, stopping
// early if fn returns false. It works both before and after Freeze.
func (ix *TupleIndex) Each(key []Value, fn func(id int32) bool) {
	e := ix.find(key)
	if e < 0 {
		return
	}
	if ix.frozen {
		for _, id := range ix.span(e) {
			if !fn(id) {
				return
			}
		}
		return
	}
	for p := ix.head[e]; p >= 0; p = ix.next[p] {
		if !fn(ix.rows[p]) {
			return
		}
	}
}
