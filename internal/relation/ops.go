package relation

import "fmt"

// Select returns the tuples of r satisfying pred. The predicate receives a
// row view and must not retain it.
func Select(r *Relation, pred func(row []Value) bool) *Relation {
	sel := make([]int32, 0, r.n)
	buf := make([]Value, r.width)
	for i := 0; i < r.n; i++ {
		if pred(r.RowTo(buf, i)) {
			sel = append(sel, int32(i))
		}
	}
	return r.Gather(sel)
}

// Project returns the projection of r onto attrs (which must all occur in
// r's schema), deduplicated. The output is built by column gather: a
// selection vector of the first row holding each distinct projected tuple,
// then one bulk copy per projected column.
func Project(r *Relation, attrs Schema) *Relation {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.Pos(a)
		if p < 0 {
			panic(fmt.Sprintf("relation: projection attribute a%d not in schema %v", a, r.schema))
		}
		pos[i] = p
	}
	out := New(attrs)
	if len(attrs) == 0 {
		if r.n > 0 {
			out.Append()
		}
		return out
	}
	seen := NewTupleSetSized(len(attrs), r.n)
	sel := make([]int32, 0, r.n)
	for i := 0; i < r.n; i++ {
		if seen.AddRel(r, i, pos) {
			sel = append(sel, int32(i))
		}
	}
	for j, p := range pos {
		out.cols[j] = r.cols[p].gather(sel)
	}
	out.n = len(sel)
	return out
}

// Rename returns a copy of r with attributes substituted according to m.
// Attributes absent from m are kept. The resulting schema must not repeat
// attributes.
func Rename(r *Relation, m map[Attr]Attr) *Relation {
	schema := make(Schema, r.width)
	for i, a := range r.schema {
		if b, ok := m[a]; ok {
			schema[i] = b
		} else {
			schema[i] = a
		}
	}
	out := New(schema)
	for c := range r.cols {
		out.cols[c] = r.cols[c].clone()
	}
	out.n = r.n
	return out
}

// NaturalJoin returns r ⋈ s: tuples agreeing on all common attributes. With
// no common attributes it is the cross product. The output schema is r's
// schema followed by s's private attributes.
func NaturalJoin(r, s *Relation) *Relation {
	common := r.schema.Intersect(s.schema)
	rc, sc := keyCols(r, s, common)

	// Build a hash index on s keyed by the common attrs; probe with r's rows
	// directly (no key tuple is materialized). Probing with r keeps the
	// output row order stable. Matches accumulate as an (rID, sID) pair
	// vector; the output is materialized by one bulk gather per column.
	idx := newIndexOn(s, sc)
	// Seed the pair vectors at the probe cardinality: joins at least that
	// large skip the early doubling steps, smaller ones waste one slice.
	rIDs := make([]int32, 0, r.n)
	sIDs := make([]int32, 0, r.n)
	for i := 0; i < r.n; i++ {
		for _, si := range idx.lookupRel(r, i, rc) {
			rIDs = append(rIDs, int32(i))
			sIDs = append(sIDs, si)
		}
	}
	return joinGather(r, s, rIDs, sIDs)
}

// joinGather materializes the join output for matched (rID, sID) pairs:
// r's columns gathered by rIDs, s's private columns by sIDs.
func joinGather(r, s *Relation, rIDs, sIDs []int32) *Relation {
	sPrivate := s.schema.Minus(r.schema)
	out := New(r.schema.Union(s.schema))
	for c := range r.cols {
		out.cols[c] = r.cols[c].gather(rIDs)
	}
	for j, a := range sPrivate {
		out.cols[r.width+j] = s.cols[s.Pos(a)].gather(sIDs)
	}
	out.n = len(rIDs)
	return out
}

// SemijoinSel returns the selection vector of r ⋉ s over current selection
// vectors: the ids of r's rows (restricted to rsel; nil means all rows, in
// order) whose common-attribute key matches some s row (restricted to
// ssel). The result is always non-nil, ascending within rsel order, and no
// relation is materialized — this is the unit the Yannakakis passes chain.
// With no common attributes the semijoin degenerates to "keep everything
// iff the s side is nonempty".
func SemijoinSel(r *Relation, rsel []int32, s *Relation, ssel []int32) []int32 {
	common := r.schema.Intersect(s.schema)
	rn := selCount(r, rsel)
	if len(common) == 0 {
		if selCount(s, ssel) == 0 {
			return []int32{}
		}
		return selIdentity(r, rsel)
	}
	rc, sc := keyCols(r, s, common)
	set := semijoinKeySet(s, ssel, sc)
	sel := make([]int32, 0, rn)
	if rsel == nil {
		for i := 0; i < r.n; i++ {
			if set.ContainsRel(r, i, rc) {
				sel = append(sel, int32(i))
			}
		}
		return sel
	}
	for _, i := range rsel {
		if set.ContainsRel(r, int(i), rc) {
			sel = append(sel, i)
		}
	}
	return sel
}

// selCount returns the current cardinality under a selection vector.
func selCount(r *Relation, sel []int32) int {
	if sel == nil {
		return r.n
	}
	return len(sel)
}

// selIdentity materializes the explicit form of a selection vector: sel
// itself, or the identity vector when sel is nil.
func selIdentity(r *Relation, sel []int32) []int32 {
	if sel != nil {
		return sel
	}
	out := make([]int32, r.n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// semijoinKeySet builds the set of s's key tuples over the columns sc,
// restricted to ssel (nil = all rows).
func semijoinKeySet(s *Relation, ssel []int32, sc []int) *TupleSet {
	set := NewTupleSetSized(len(sc), selCount(s, ssel))
	if ssel == nil {
		for i := 0; i < s.n; i++ {
			set.AddRel(s, i, sc)
		}
		return set
	}
	for _, i := range ssel {
		set.AddRel(s, int(i), sc)
	}
	return set
}

// Semijoin returns r ⋉ s: the tuples of r that join with at least one tuple
// of s on their common attributes. With no common attributes, it is r if s
// is nonempty and empty otherwise.
func Semijoin(r, s *Relation) *Relation {
	return r.Gather(SemijoinSel(r, nil, s, nil))
}

// SemijoinInPlace filters r to r ⋉ s in place and returns r. It is the
// operator behind standalone semijoin passes, where rebuilding a fresh
// relation would double the tuple traffic.
func SemijoinInPlace(r, s *Relation) *Relation {
	sel := SemijoinSel(r, nil, s, nil)
	if len(sel) == r.n {
		return r
	}
	return r.Compact(sel)
}

// Union returns r ∪ s, deduplicated. The schemas must contain the same
// attribute set; s's columns are reordered to r's layout.
func Union(r, s *Relation) *Relation {
	if !r.schema.SameSet(s.schema) {
		panic(fmt.Sprintf("relation: union of incompatible schemas %v and %v", r.schema, s.schema))
	}
	out := r.Clone()
	for c, a := range r.schema {
		sc := s.Pos(a)
		for i := 0; i < s.n; i++ {
			out.cols[c].push(s.cols[sc].at(i))
		}
	}
	out.n += s.n
	return out.Dedup()
}

// Difference returns r − s (set difference). The schemas must contain the
// same attribute set.
func Difference(r, s *Relation) *Relation {
	if !r.schema.SameSet(s.schema) {
		panic(fmt.Sprintf("relation: difference of incompatible schemas %v and %v", r.schema, s.schema))
	}
	if r.width == 0 {
		return NewBool(r.n > 0 && s.n == 0)
	}
	// Key s's tuples in r's column order, then keep r's non-members.
	perm := make([]int, r.width)
	for i, a := range r.schema {
		perm[i] = s.Pos(a)
	}
	set := NewTupleSetSized(r.width, s.n)
	for i := 0; i < s.n; i++ {
		set.AddRel(s, i, perm)
	}
	sel := make([]int32, 0, r.n)
	for i := 0; i < r.n; i++ {
		if !set.ContainsRelRow(r, i) {
			sel = append(sel, int32(i))
		}
	}
	return r.Gather(sel).Dedup()
}

// CrossProduct returns r × s. The schemas must be disjoint.
func CrossProduct(r, s *Relation) *Relation {
	if len(r.schema.Intersect(s.schema)) != 0 {
		panic("relation: cross product of overlapping schemas")
	}
	return NaturalJoin(r, s)
}
