package relation

import "fmt"

// Select returns the tuples of r satisfying pred. The predicate receives a
// row view and must not retain it.
func Select(r *Relation, pred func(row []Value) bool) *Relation {
	out := New(r.schema)
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		if pred(row) {
			out.Append(row...)
		}
	}
	return out
}

// Project returns the projection of r onto attrs (which must all occur in
// r's schema), deduplicated.
func Project(r *Relation, attrs Schema) *Relation {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.Pos(a)
		if p < 0 {
			panic(fmt.Sprintf("relation: projection attribute a%d not in schema %v", a, r.schema))
		}
		pos[i] = p
	}
	out := New(attrs)
	if len(attrs) == 0 {
		if r.n > 0 {
			out.Append()
		}
		return out
	}
	seen := make(map[string]bool, r.n)
	buf := make([]Value, len(attrs))
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		for j, p := range pos {
			buf[j] = row[p]
		}
		k := rowKeyFull(buf)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Append(buf...)
	}
	return out
}

// Rename returns a copy of r with attributes substituted according to m.
// Attributes absent from m are kept. The resulting schema must not repeat
// attributes.
func Rename(r *Relation, m map[Attr]Attr) *Relation {
	schema := make(Schema, r.width)
	for i, a := range r.schema {
		if b, ok := m[a]; ok {
			schema[i] = b
		} else {
			schema[i] = a
		}
	}
	out := New(schema)
	out.rows = append(out.rows, r.rows...)
	out.n = r.n
	return out
}

// NaturalJoin returns r ⋈ s: tuples agreeing on all common attributes. With
// no common attributes it is the cross product. The output schema is r's
// schema followed by s's private attributes.
func NaturalJoin(r, s *Relation) *Relation {
	common := r.schema.Intersect(s.schema)
	sPrivate := s.schema.Minus(r.schema)
	out := New(r.schema.Union(s.schema))

	// Positions of common attrs in each side, and of s's private attrs.
	rc := make([]int, len(common))
	sc := make([]int, len(common))
	for i, a := range common {
		rc[i] = r.Pos(a)
		sc[i] = s.Pos(a)
	}
	sp := make([]int, len(sPrivate))
	for i, a := range sPrivate {
		sp[i] = s.Pos(a)
	}

	// Build hash table on the smaller side keyed by common attrs; probe with
	// the other. To keep output column order stable we always probe with r.
	buildIdx := newIndexOn(s, sc)
	keyBuf := make([]Value, len(common))
	outRow := make([]Value, out.width)
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		for j, p := range rc {
			keyBuf[j] = row[p]
		}
		for _, si := range buildIdx.lookup(keyBuf) {
			srow := s.Row(int(si))
			copy(outRow, row)
			for j, p := range sp {
				outRow[r.width+j] = srow[p]
			}
			out.Append(outRow...)
		}
	}
	return out
}

// Semijoin returns r ⋉ s: the tuples of r that join with at least one tuple
// of s on their common attributes. With no common attributes, it is r if s
// is nonempty and empty otherwise.
func Semijoin(r, s *Relation) *Relation {
	common := r.schema.Intersect(s.schema)
	if len(common) == 0 {
		if s.n > 0 {
			return r.Clone()
		}
		return New(r.schema)
	}
	rc := make([]int, len(common))
	sc := make([]int, len(common))
	for i, a := range common {
		rc[i] = r.Pos(a)
		sc[i] = s.Pos(a)
	}
	set := make(map[string]bool, s.n)
	keyBuf := make([]Value, len(common))
	for i := 0; i < s.n; i++ {
		row := s.Row(i)
		for j, p := range sc {
			keyBuf[j] = row[p]
		}
		set[rowKeyFull(keyBuf)] = true
	}
	out := New(r.schema)
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		for j, p := range rc {
			keyBuf[j] = row[p]
		}
		if set[rowKeyFull(keyBuf)] {
			out.Append(row...)
		}
	}
	return out
}

// Union returns r ∪ s, deduplicated. The schemas must contain the same
// attribute set; s's columns are reordered to r's layout.
func Union(r, s *Relation) *Relation {
	if !r.schema.SameSet(s.schema) {
		panic(fmt.Sprintf("relation: union of incompatible schemas %v and %v", r.schema, s.schema))
	}
	out := r.Clone()
	perm := make([]int, r.width)
	for i, a := range r.schema {
		perm[i] = s.Pos(a)
	}
	buf := make([]Value, r.width)
	for i := 0; i < s.n; i++ {
		row := s.Row(i)
		for c := range perm {
			buf[c] = row[perm[c]]
		}
		out.Append(buf...)
	}
	return out.Dedup()
}

// Difference returns r − s (set difference). The schemas must contain the
// same attribute set.
func Difference(r, s *Relation) *Relation {
	if !r.schema.SameSet(s.schema) {
		panic(fmt.Sprintf("relation: difference of incompatible schemas %v and %v", r.schema, s.schema))
	}
	if r.width == 0 {
		return NewBool(r.n > 0 && s.n == 0)
	}
	perm := make([]int, r.width)
	for i, a := range r.schema {
		perm[i] = s.Pos(a)
	}
	set := make(map[string]bool, s.n)
	buf := make([]Value, r.width)
	for i := 0; i < s.n; i++ {
		row := s.Row(i)
		for c := range perm {
			buf[c] = row[perm[c]]
		}
		set[rowKeyFull(buf)] = true
	}
	out := New(r.schema)
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		if !set[rowKeyFull(row)] {
			out.Append(row...)
		}
	}
	return out.Dedup()
}

// CrossProduct returns r × s. The schemas must be disjoint.
func CrossProduct(r, s *Relation) *Relation {
	if len(r.schema.Intersect(s.schema)) != 0 {
		panic("relation: cross product of overlapping schemas")
	}
	return NaturalJoin(r, s)
}
