package relation

import "fmt"

// Select returns the tuples of r satisfying pred. The predicate receives a
// row view and must not retain it.
func Select(r *Relation, pred func(row []Value) bool) *Relation {
	out := New(r.schema)
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		if pred(row) {
			out.Append(row...)
		}
	}
	return out
}

// Project returns the projection of r onto attrs (which must all occur in
// r's schema), deduplicated.
func Project(r *Relation, attrs Schema) *Relation {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.Pos(a)
		if p < 0 {
			panic(fmt.Sprintf("relation: projection attribute a%d not in schema %v", a, r.schema))
		}
		pos[i] = p
	}
	out := New(attrs)
	if len(attrs) == 0 {
		if r.n > 0 {
			out.Append()
		}
		return out
	}
	seen := NewTupleSetSized(len(attrs), r.n)
	buf := make([]Value, len(attrs))
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		if !seen.AddCols(row, pos) {
			continue
		}
		for j, p := range pos {
			buf[j] = row[p]
		}
		out.Append(buf...)
	}
	return out
}

// Rename returns a copy of r with attributes substituted according to m.
// Attributes absent from m are kept. The resulting schema must not repeat
// attributes.
func Rename(r *Relation, m map[Attr]Attr) *Relation {
	schema := make(Schema, r.width)
	for i, a := range r.schema {
		if b, ok := m[a]; ok {
			schema[i] = b
		} else {
			schema[i] = a
		}
	}
	out := New(schema)
	out.rows = append(out.rows, r.rows...)
	out.n = r.n
	return out
}

// NaturalJoin returns r ⋈ s: tuples agreeing on all common attributes. With
// no common attributes it is the cross product. The output schema is r's
// schema followed by s's private attributes.
func NaturalJoin(r, s *Relation) *Relation {
	common := r.schema.Intersect(s.schema)
	sPrivate := s.schema.Minus(r.schema)
	out := New(r.schema.Union(s.schema))

	// Positions of common attrs in each side, and of s's private attrs.
	rc := make([]int, len(common))
	sc := make([]int, len(common))
	for i, a := range common {
		rc[i] = r.Pos(a)
		sc[i] = s.Pos(a)
	}
	sp := make([]int, len(sPrivate))
	for i, a := range sPrivate {
		sp[i] = s.Pos(a)
	}

	// Build a hash index on s keyed by the common attrs; probe with r's rows
	// directly (no key tuple is materialized). Probing with r keeps the
	// output column order stable.
	buildIdx := newIndexOn(s, sc)
	outRow := make([]Value, out.width)
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		for _, si := range buildIdx.lookupRow(row, rc) {
			srow := s.Row(int(si))
			copy(outRow, row)
			for j, p := range sp {
				outRow[r.width+j] = srow[p]
			}
			out.Append(outRow...)
		}
	}
	return out
}

// Semijoin returns r ⋉ s: the tuples of r that join with at least one tuple
// of s on their common attributes. With no common attributes, it is r if s
// is nonempty and empty otherwise.
func Semijoin(r, s *Relation) *Relation {
	common := r.schema.Intersect(s.schema)
	if len(common) == 0 {
		if s.n > 0 {
			return r.Clone()
		}
		return New(r.schema)
	}
	set, rc := semijoinSet(r, s, common)
	out := New(r.schema)
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		if set.ContainsCols(row, rc) {
			out.Append(row...)
		}
	}
	return out
}

// SemijoinInPlace filters r to r ⋉ s in place and returns r. It is the
// operator behind repeated semijoin passes (the Yannakakis full reducer),
// where rebuilding a fresh relation per pass would double the tuple
// traffic.
func SemijoinInPlace(r, s *Relation) *Relation {
	common := r.schema.Intersect(s.schema)
	if len(common) == 0 {
		if s.n == 0 {
			r.rows = r.rows[:0]
			r.n = 0
		}
		return r
	}
	set, rc := semijoinSet(r, s, common)
	w := 0
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		if !set.ContainsCols(row, rc) {
			continue
		}
		if w != i {
			copy(r.rows[w*r.width:(w+1)*r.width], row)
		}
		w++
	}
	r.rows = r.rows[:w*r.width]
	r.n = w
	return r
}

// semijoinSet builds the set of s's key tuples over the common attributes
// and returns it with r's key column positions.
func semijoinSet(r, s *Relation, common Schema) (*TupleSet, []int) {
	rc := make([]int, len(common))
	sc := make([]int, len(common))
	for i, a := range common {
		rc[i] = r.Pos(a)
		sc[i] = s.Pos(a)
	}
	set := NewTupleSetSized(len(common), s.n)
	for i := 0; i < s.n; i++ {
		set.AddCols(s.Row(i), sc)
	}
	return set, rc
}

// Union returns r ∪ s, deduplicated. The schemas must contain the same
// attribute set; s's columns are reordered to r's layout.
func Union(r, s *Relation) *Relation {
	if !r.schema.SameSet(s.schema) {
		panic(fmt.Sprintf("relation: union of incompatible schemas %v and %v", r.schema, s.schema))
	}
	out := r.Clone()
	perm := make([]int, r.width)
	for i, a := range r.schema {
		perm[i] = s.Pos(a)
	}
	buf := make([]Value, r.width)
	for i := 0; i < s.n; i++ {
		row := s.Row(i)
		for c := range perm {
			buf[c] = row[perm[c]]
		}
		out.Append(buf...)
	}
	return out.Dedup()
}

// Difference returns r − s (set difference). The schemas must contain the
// same attribute set.
func Difference(r, s *Relation) *Relation {
	if !r.schema.SameSet(s.schema) {
		panic(fmt.Sprintf("relation: difference of incompatible schemas %v and %v", r.schema, s.schema))
	}
	if r.width == 0 {
		return NewBool(r.n > 0 && s.n == 0)
	}
	perm := make([]int, r.width)
	for i, a := range r.schema {
		perm[i] = s.Pos(a)
	}
	set := NewTupleSetSized(r.width, s.n)
	for i := 0; i < s.n; i++ {
		set.AddCols(s.Row(i), perm)
	}
	out := New(r.schema)
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		if !set.Contains(row) {
			out.Append(row...)
		}
	}
	return out.Dedup()
}

// CrossProduct returns r × s. The schemas must be disjoint.
func CrossProduct(r, s *Relation) *Relation {
	if len(r.schema.Intersect(s.schema)) != 0 {
		panic("relation: cross product of overlapping schemas")
	}
	return NaturalJoin(r, s)
}
