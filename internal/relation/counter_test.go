package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestTupleMapAgainstModel drives a TupleMap through random Set/Delete/Get
// churn mirrored in a Go map, across widths and hostile value pools.
func TestTupleMapAgainstModel(t *testing.T) {
	for _, width := range []int{0, 1, 2, 3} {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(width)))
			m := NewTupleMap(width)
			model := map[string]int32{}
			key := func(row []Value) string { return fmt.Sprint(row) }
			randRow := func() []Value {
				row := make([]Value, width)
				for i := range row {
					switch rnd.Intn(3) {
					case 0:
						row[i] = Value(rnd.Intn(4))
					case 1:
						row[i] = Value(rnd.Intn(4)) << 32
					default:
						row[i] = -Value(rnd.Intn(1000))
					}
				}
				return row
			}
			for step := 0; step < 4000; step++ {
				row := randRow()
				switch rnd.Intn(3) {
				case 0:
					v := int32(rnd.Intn(1000))
					_, existed := model[key(row)]
					if added := m.Set(row, v); added == existed {
						t.Fatalf("step %d: Set(%v) new=%v, model disagrees", step, row, added)
					}
					model[key(row)] = v
				case 1:
					_, existed := model[key(row)]
					if deleted := m.Delete(row); deleted != existed {
						t.Fatalf("step %d: Delete(%v) = %v, model says %v", step, row, deleted, existed)
					}
					delete(model, key(row))
				default:
					want, existed := model[key(row)]
					got, ok := m.Get(row)
					if ok != existed || (ok && got != want) {
						t.Fatalf("step %d: Get(%v) = (%d,%v), want (%d,%v)", step, row, got, ok, want, existed)
					}
				}
				if m.Len() != len(model) {
					t.Fatalf("step %d: Len = %d, model has %d", step, m.Len(), len(model))
				}
			}
		})
	}
}

// TestTupleMapSurvivesHeavyChurn deletes and reinserts the same band of
// tuples repeatedly so backward-shift compaction and arena swaps are
// exercised across grow boundaries.
func TestTupleMapSurvivesHeavyChurn(t *testing.T) {
	m := NewTupleMap(2)
	row := make([]Value, 2)
	for round := 0; round < 5; round++ {
		for i := 0; i < 500; i++ {
			row[0], row[1] = Value(i), Value(i*7)
			m.Set(row, int32(i))
		}
		if m.Len() != 500 {
			t.Fatalf("round %d: Len = %d after inserts", round, m.Len())
		}
		for i := 0; i < 500; i += 2 {
			row[0], row[1] = Value(i), Value(i*7)
			if !m.Delete(row) {
				t.Fatalf("round %d: lost tuple %d", round, i)
			}
		}
		for i := 0; i < 500; i++ {
			row[0], row[1] = Value(i), Value(i*7)
			v, ok := m.Get(row)
			if want := i%2 == 1; ok != want || (ok && v != int32(i)) {
				t.Fatalf("round %d: Get(%d) = (%d,%v)", round, i, v, ok)
			}
		}
		for i := 0; i < 500; i += 2 {
			row[0], row[1] = Value(i), Value(i*7)
			m.Set(row, int32(i))
		}
	}
}

// TestTupleCounterAlgebra checks the signed-count semantics, including
// counts crossing zero and width-0 (Boolean) tuples.
func TestTupleCounterAlgebra(t *testing.T) {
	c := NewTupleCounter(2)
	ab := []Value{1, 2}
	if n := c.Add(ab, 3); n != 3 {
		t.Fatalf("Add = %d, want 3", n)
	}
	if n := c.Add(ab, -3); n != 0 {
		t.Fatalf("Add to zero = %d", n)
	}
	if n := c.Count(ab); n != 0 {
		t.Fatalf("Count = %d, want 0", n)
	}
	if n := c.Add(ab, -1); n != -1 {
		t.Fatalf("negative counts must be representable, got %d", n)
	}
	c.Add([]Value{5, 6}, 1)
	got := map[string]int64{}
	c.Each(func(row []Value, n int64) bool {
		got[fmt.Sprint(row)] = n
		return true
	})
	if len(got) != 2 || got["[1 2]"] != -1 || got["[5 6]"] != 1 {
		t.Fatalf("Each saw %v", got)
	}

	b := NewTupleCounter(0)
	if n := b.Add(nil, 1); n != 1 {
		t.Fatalf("width-0 Add = %d", n)
	}
	if n := b.Add([]Value{}, 1); n != 2 {
		t.Fatalf("width-0 re-Add = %d (empty tuples must unify)", n)
	}
	if b.Len() != 1 {
		t.Fatalf("width-0 Len = %d", b.Len())
	}
}

// TestTupleCounterGrowth pushes the counter across several grow boundaries
// and verifies every count survives rehashing.
func TestTupleCounterGrowth(t *testing.T) {
	c := NewTupleCounter(1)
	row := make([]Value, 1)
	for i := 0; i < 3000; i++ {
		row[0] = Value(i)
		c.Add(row, int64(i%5)-2)
	}
	for i := 0; i < 3000; i++ {
		row[0] = Value(i)
		if got := c.Count(row); got != int64(i%5)-2 {
			t.Fatalf("Count(%d) = %d, want %d", i, got, int64(i%5)-2)
		}
	}
}

func TestSwapRemove(t *testing.T) {
	r := New(Schema{0, 1})
	r.Append(1, 2)
	r.Append(3, 4)
	r.Append(5, 6)
	r.SwapRemove(0)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains([]Value{5, 6}) || !r.Contains([]Value{3, 4}) || r.Contains([]Value{1, 2}) {
		t.Fatalf("unexpected rows after SwapRemove: %v", r)
	}
	r.SwapRemove(1)
	r.SwapRemove(0)
	if r.Len() != 0 {
		t.Fatalf("Len = %d after removing all", r.Len())
	}
}
