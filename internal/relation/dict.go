package relation

import "fmt"

// Dict interns strings as Values. The parser and the CSV loader use one
// dictionary per database so that symbolic constants ("alice", "cs101")
// become small integers before reaching the engines, which all operate on
// Values only.
type Dict struct {
	toID  map[string]Value
	toStr []string
	// max, when positive, bounds the id space: ID panics rather than hand
	// out an id ≥ max. Callers that embed interned ids into a wider value
	// space (the parser offsets them above its StringBase) set the band
	// width here so symbol ids can never silently collide with the plain
	// integer constants that share the space.
	max Value
}

// NewDict returns an empty dictionary with an unbounded id space.
func NewDict() *Dict {
	return &Dict{toID: make(map[string]Value)}
}

// SetMax bounds the id space to [0, max): interning a string that would
// receive an id ≥ max panics instead of silently colliding with the value
// band the caller reserved above the dictionary. max ≤ 0 removes the bound.
// Lowering max below Len does not affect already-interned strings.
func (d *Dict) SetMax(max Value) { d.max = max }

// ID interns s, returning its Value. Repeated calls with the same string
// return the same Value. When a band limit is set (SetMax), running out of
// id space panics — the caller's value-space partition would otherwise be
// violated silently.
func (d *Dict) ID(s string) Value {
	if v, ok := d.toID[s]; ok {
		return v
	}
	v := Value(len(d.toStr))
	if d.max > 0 && v >= d.max {
		panic(fmt.Sprintf("relation: dict id space exhausted: interning %q would assign id %d beyond the reserved band [0,%d)", s, v, d.max))
	}
	d.toID[s] = v
	d.toStr = append(d.toStr, s)
	return v
}

// Lookup returns the Value for s without interning, and whether it exists.
func (d *Dict) Lookup(s string) (Value, bool) {
	v, ok := d.toID[s]
	return v, ok
}

// String returns the string for v, or a numeric rendering if v was never
// interned (plain integer constants share the value space).
func (d *Dict) String(v Value) string {
	if v >= 0 && int(v) < len(d.toStr) {
		return d.toStr[v]
	}
	return itoa(int64(v))
}

// Len returns the number of interned strings.
func (d *Dict) Len() int { return len(d.toStr) }

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
