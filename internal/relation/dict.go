package relation

// Dict interns strings as Values. The parser and the CSV loader use one
// dictionary per database so that symbolic constants ("alice", "cs101")
// become small integers before reaching the engines, which all operate on
// Values only.
type Dict struct {
	toID  map[string]Value
	toStr []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{toID: make(map[string]Value)}
}

// ID interns s, returning its Value. Repeated calls with the same string
// return the same Value.
func (d *Dict) ID(s string) Value {
	if v, ok := d.toID[s]; ok {
		return v
	}
	v := Value(len(d.toStr))
	d.toID[s] = v
	d.toStr = append(d.toStr, s)
	return v
}

// Lookup returns the Value for s without interning, and whether it exists.
func (d *Dict) Lookup(s string) (Value, bool) {
	v, ok := d.toID[s]
	return v, ok
}

// String returns the string for v, or a numeric rendering if v was never
// interned (plain integer constants share the value space).
func (d *Dict) String(v Value) string {
	if v >= 0 && int(v) < len(d.toStr) {
		return d.toStr[v]
	}
	return itoa(int64(v))
}

// Len returns the number of interned strings.
func (d *Dict) Len() int { return len(d.toStr) }

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
