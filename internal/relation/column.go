package relation

// Column storage. Each relation column is stored independently as either a
// narrow []int32 code vector or a wide []Value vector. Narrow is the common
// case: Dict interns every string to a small dense id and most integer
// constants are tiny, so a 4-byte code per cell halves the resident bytes
// and doubles the cells per cache line on scans, probes, and gathers. A
// column starts narrow and widens permanently the first time a value
// outside int32 range is appended — widening is a one-way, O(n) conversion,
// so mixed-width columns never exist and every accessor is a single branch.
//
// The narrow/wide split is invisible outside the package: At/Row/Append
// operate on Value. ColNarrow/ColWide expose the raw backing for read-only
// zero-copy consumers (stats scans, trie builds).

// narrowEnabled gates the narrow encoding. When false (the E12 row-layout
// ablation), every new column starts wide and the substrate behaves like
// the pre-columnar 8-byte layout, keeping the old memory profile
// measurable. Toggling does not affect existing relations.
var narrowEnabled = true

// SetNarrowCodes enables or disables narrow int32 column codes for
// relations created afterwards, returning the previous setting. It exists
// for the benchmark ablation (E12) and is not safe to flip concurrently
// with relation construction.
func SetNarrowCodes(on bool) (prev bool) {
	prev = narrowEnabled
	narrowEnabled = on
	return prev
}

// fits32 reports whether v survives a round trip through int32.
func fits32(v Value) bool { return Value(int32(v)) == v }

// column is one column of a relation: narrow when wv is nil, wide
// otherwise. The zero value is a valid empty narrow column.
type column struct {
	nv []int32
	wv []Value
}

// newColumn returns an empty column honoring the narrow toggle.
func newColumn() column {
	if narrowEnabled {
		return column{}
	}
	return column{wv: make([]Value, 0)}
}

// at returns the i-th value.
func (c *column) at(i int) Value {
	if c.wv != nil {
		return c.wv[i]
	}
	return Value(c.nv[i])
}

// set overwrites the i-th value, widening if needed.
func (c *column) set(i int, v Value) {
	if c.wv != nil {
		c.wv[i] = v
		return
	}
	if !fits32(v) {
		c.widen()
		c.wv[i] = v
		return
	}
	c.nv[i] = int32(v)
}

// push appends one value, widening if needed.
func (c *column) push(v Value) {
	if c.wv != nil {
		c.wv = append(c.wv, v)
		return
	}
	if !fits32(v) {
		c.widen()
		c.wv = append(c.wv, v)
		return
	}
	c.nv = append(c.nv, int32(v))
}

// widen converts the column to wide storage permanently.
func (c *column) widen() {
	wv := make([]Value, len(c.nv), cap(c.nv))
	for i, v := range c.nv {
		wv[i] = Value(v)
	}
	c.nv = nil
	c.wv = wv
}

// truncate shrinks the column to n values.
func (c *column) truncate(n int) {
	if c.wv != nil {
		c.wv = c.wv[:n]
		return
	}
	c.nv = c.nv[:n]
}

// clone returns a deep copy.
func (c *column) clone() column {
	if c.wv != nil {
		return column{wv: append(make([]Value, 0, len(c.wv)), c.wv...)}
	}
	return column{nv: append(make([]int32, 0, len(c.nv)), c.nv...)}
}

// gather returns a fresh column holding c's values at the given row ids,
// preserving the narrow/wide representation (a gather cannot introduce a
// value that was not already present).
func (c *column) gather(sel []int32) column {
	if c.wv != nil {
		wv := make([]Value, len(sel))
		for k, i := range sel {
			wv[k] = c.wv[i]
		}
		return column{wv: wv}
	}
	nv := make([]int32, len(sel))
	for k, i := range sel {
		nv[k] = c.nv[i]
	}
	return column{nv: nv}
}

// compact keeps exactly the values at the (ascending) row ids of sel,
// in place.
func (c *column) compact(sel []int32) {
	if c.wv != nil {
		for k, i := range sel {
			c.wv[k] = c.wv[i]
		}
		c.wv = c.wv[:len(sel)]
		return
	}
	for k, i := range sel {
		c.nv[k] = c.nv[i]
	}
	c.nv = c.nv[:len(sel)]
}

// appendCol appends all of src's values to c, widening c if src is wide
// (or if some value demands it — impossible when src is narrow).
func (c *column) appendCol(src *column) {
	if src.wv == nil {
		if c.wv == nil {
			c.nv = append(c.nv, src.nv...)
			return
		}
		for _, v := range src.nv {
			c.wv = append(c.wv, Value(v))
		}
		return
	}
	if c.wv == nil {
		c.widen()
	}
	c.wv = append(c.wv, src.wv...)
}

// bytes returns the resident payload bytes of the column.
func (c *column) bytes() int64 {
	if c.wv != nil {
		return int64(len(c.wv)) * 8
	}
	return int64(len(c.nv)) * 4
}
