package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// identical reports byte-for-byte equality: same schema order, same tuple
// order. The partitioned operators promise exactly the serial output, not
// just set equality.
func identical(a, b *Relation) bool {
	if !a.Schema().Equal(b.Schema()) || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !rowsEqual(a.Row(i), b.Row(i)) {
			return false
		}
	}
	return true
}

// forceSharded lowers the row gate for the duration of a test so tiny
// randomized relations exercise the partitioned code path.
func forceSharded(t *testing.T) {
	t.Helper()
	old := parMinRows
	parMinRows = 0
	t.Cleanup(func() { parMinRows = old })
}

func TestQuickNaturalJoinParMatchesSerial(t *testing.T) {
	forceSharded(t)
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2}, 40, 5)
		s := randRelation(rnd, Schema{2, 3}, 40, 5)
		want := NaturalJoin(r, s)
		for _, w := range []int{2, 3, 8, 100} {
			if !identical(NaturalJoinPar(r, s, w), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(101)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNaturalJoinParWideKey(t *testing.T) {
	forceSharded(t)
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2, 3}, 40, 3)
		s := randRelation(rnd, Schema{2, 3, 4}, 40, 3)
		return identical(NaturalJoinPar(r, s, 4), NaturalJoin(r, s))
	}
	if err := quick.Check(f, qcfg(102)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSemijoinParMatchesSerial(t *testing.T) {
	forceSharded(t)
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2}, 40, 4)
		s := randRelation(rnd, Schema{2, 3}, 40, 4)
		want := Semijoin(r, s)
		for _, w := range []int{2, 4, 33} {
			if !identical(SemijoinPar(r, s, w), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(103)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSemijoinInPlaceParMatchesSerial(t *testing.T) {
	forceSharded(t)
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2}, 40, 4)
		s := randRelation(rnd, Schema{2, 3}, 40, 4)
		serial := SemijoinInPlace(r.Clone(), s)
		for _, w := range []int{2, 4, 33} {
			if !identical(SemijoinInPlacePar(r.Clone(), s, w), serial) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(104)); err != nil {
		t.Fatal(err)
	}
}

// Disjoint schemas and empty inputs must fall back to the serial semantics.
func TestParOpsEdgeCases(t *testing.T) {
	forceSharded(t)
	r := New(Schema{1, 2})
	r.Append(1, 2)
	r.Append(3, 4)
	s := New(Schema{3, 4})
	s.Append(7, 8)
	if got, want := NaturalJoinPar(r, s, 4), NaturalJoin(r, s); !identical(got, want) {
		t.Fatalf("cross product: got %v want %v", got, want)
	}
	if got := SemijoinPar(r, s, 4); !identical(got, Semijoin(r, s)) {
		t.Fatalf("disjoint semijoin: %v", got)
	}
	empty := New(Schema{2, 3})
	if got := NaturalJoinPar(r, empty, 4); got.Len() != 0 {
		t.Fatalf("join with empty build side: %v", got)
	}
	if got := SemijoinInPlacePar(r.Clone(), empty, 4); got.Len() != 0 {
		t.Fatalf("semijoin against empty: %v", got)
	}
}

// Above the gate (real sharding, width-1 fast path, skewed keys) the
// partitioned operators must still be byte-identical to serial.
func TestParOpsLargeSkewed(t *testing.T) {
	lhs := New(Schema{0, 1})
	rhs := New(Schema{1, 2})
	for i := 0; i < 20000; i++ {
		lhs.Append(Value(i%500), Value(i%1000))
		// Skew: half of rhs lands on key 0.
		k := i % 1000
		if i%2 == 0 {
			k = 0
		}
		rhs.Append(Value(k), Value(i%250))
	}
	for _, w := range []int{2, 4, 16} {
		if !identical(NaturalJoinPar(lhs, rhs, w), NaturalJoin(lhs, rhs)) {
			t.Fatalf("NaturalJoinPar workers=%d diverges", w)
		}
		if !identical(SemijoinPar(lhs, rhs, w), Semijoin(lhs, rhs)) {
			t.Fatalf("SemijoinPar workers=%d diverges", w)
		}
		if !identical(SemijoinInPlacePar(lhs.Clone(), rhs, w), SemijoinInPlace(lhs.Clone(), rhs)) {
			t.Fatalf("SemijoinInPlacePar workers=%d diverges", w)
		}
	}
}
