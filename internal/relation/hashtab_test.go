package relation

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// refKey is the retired string encoding, kept here as the reference
// semantics the hash containers must reproduce exactly.
func refKey(row []Value) string {
	b := make([]byte, 8*len(row))
	for i, v := range row {
		u := uint64(v)
		for j := 0; j < 8; j++ {
			b[8*i+j] = byte(u >> (8 * j))
		}
	}
	return string(b)
}

// goldenValue is the hash seed reinterpreted as a Value — a worst-plausible
// input for the mixer.
var goldenValue = Value(int64(-7046029254386353131)) // uint64(0x9e3779b97f4a7c15)

// valuePools are the generator alphabets, including collision-hostile
// patterns: dense small ints, values differing only in high bits (multiples
// of 2^32), int64 extremes, and mixed-sign near-zero values.
var valuePools = [][]Value{
	{0, 1, 2, 3},
	{-2, -1, 0, 1, 2},
	{0, 1 << 32, 2 << 32, 3 << 32, 1, (1 << 32) + 1},
	{math.MinInt64, math.MaxInt64, 0, -1, 1, math.MinInt64 + 1, math.MaxInt64 - 1},
	{0, goldenValue, -goldenValue, 1 << 62, -(1 << 62)},
}

func randRow(rng *rand.Rand, pool []Value, width int) []Value {
	row := make([]Value, width)
	for i := range row {
		if rng.Intn(4) == 0 {
			row[i] = Value(rng.Int63() - rng.Int63())
		} else {
			row[i] = pool[rng.Intn(len(pool))]
		}
	}
	return row
}

func TestTupleSetMatchesStringMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{0, 1, 2, 3, 5} {
		for pi, pool := range valuePools {
			t.Run(fmt.Sprintf("w=%d/pool=%d", width, pi), func(t *testing.T) {
				set := NewTupleSet(width)
				ref := make(map[string]bool)
				var rows [][]Value
				for i := 0; i < 600; i++ {
					row := randRow(rng, pool, width)
					rows = append(rows, row)
					k := refKey(row)
					added := set.Add(row)
					if added == ref[k] {
						t.Fatalf("Add(%v) = %v, reference says new=%v", row, added, !ref[k])
					}
					ref[k] = true
				}
				if set.Len() != len(ref) {
					t.Fatalf("Len = %d, reference has %d distinct tuples", set.Len(), len(ref))
				}
				// Membership agrees for inserted rows and fresh probes.
				for _, row := range rows {
					if !set.Contains(row) {
						t.Fatalf("Contains(%v) = false for inserted row", row)
					}
				}
				for i := 0; i < 200; i++ {
					row := randRow(rng, pool, width)
					if got, want := set.Contains(row), ref[refKey(row)]; got != want {
						t.Fatalf("Contains(%v) = %v, reference %v", row, got, want)
					}
				}
			})
		}
	}
}

func TestTupleSetCols(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := valuePools[2]
	// Project width-4 rows onto columns (3, 1) and check the set matches
	// inserting the materialized projections.
	cols := []int{3, 1}
	set := NewTupleSet(2)
	ref := make(map[string]bool)
	for i := 0; i < 500; i++ {
		row := randRow(rng, pool, 4)
		proj := []Value{row[3], row[1]}
		k := refKey(proj)
		if added := set.AddCols(row, cols); added == ref[k] {
			t.Fatalf("AddCols(%v) = %v, reference says new=%v", row, added, !ref[k])
		}
		ref[k] = true
		if !set.ContainsCols(row, cols) {
			t.Fatalf("ContainsCols false right after AddCols (%v)", row)
		}
		if !set.Contains(proj) {
			t.Fatalf("Contains(%v) false after AddCols of the same projection", proj)
		}
	}
	if set.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", set.Len(), len(ref))
	}
}

func TestTupleIndexMatchesStringMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, width := range []int{1, 2, 4} {
		for pi, pool := range valuePools {
			t.Run(fmt.Sprintf("w=%d/pool=%d", width, pi), func(t *testing.T) {
				ix := NewTupleIndex(width)
				ref := make(map[string][]int32)
				var keys [][]Value
				for id := int32(0); id < 500; id++ {
					key := randRow(rng, pool, width)
					keys = append(keys, key)
					ix.Add(key, id)
					ref[refKey(key)] = append(ref[refKey(key)], id)
				}
				if ix.Distinct() != len(ref) {
					t.Fatalf("Distinct = %d, reference %d", ix.Distinct(), len(ref))
				}
				if ix.Len() != 500 {
					t.Fatalf("Len = %d, want 500", ix.Len())
				}
				// Each (pre-freeze chain walk) agrees, including order.
				probe := keys[rng.Intn(len(keys))]
				var chain []int32
				ix.Each(probe, func(id int32) bool { chain = append(chain, id); return true })
				wantChain := ref[refKey(probe)]
				if !equalIDs(chain, wantChain) {
					t.Fatalf("Each(%v) = %v, reference %v", probe, chain, wantChain)
				}
				// IDs (frozen spans) agree with the reference lists, in
				// insertion order, for all keys plus misses.
				for _, key := range keys {
					if got, want := ix.IDs(key), ref[refKey(key)]; !equalIDs(got, want) {
						t.Fatalf("IDs(%v) = %v, reference %v", key, got, want)
					}
				}
				for i := 0; i < 100; i++ {
					key := randRow(rng, pool, width)
					if got, want := ix.IDs(key), ref[refKey(key)]; !equalIDs(got, want) {
						t.Fatalf("IDs(%v) = %v, reference %v", key, got, want)
					}
				}
			})
		}
	}
}

func TestTupleIndexFrozenEachAndAddPanics(t *testing.T) {
	ix := NewTupleIndex(2)
	ix.Add([]Value{1, 2}, 7)
	ix.Add([]Value{1, 2}, 9)
	if got := ix.IDs([]Value{1, 2}); len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("IDs = %v, want [7 9]", got)
	}
	if ix.Len() != 2 {
		t.Fatalf("frozen Len = %d, want 2", ix.Len())
	}
	var seen []int32
	ix.Each([]Value{1, 2}, func(id int32) bool { seen = append(seen, id); return true })
	if len(seen) != 2 || seen[0] != 7 || seen[1] != 9 {
		t.Fatalf("frozen Each = %v, want [7 9]", seen)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Freeze did not panic")
		}
	}()
	ix.Add([]Value{3, 4}, 1)
}

// TestIndexMatchesReference cross-checks the relation-level Index against a
// string-keyed reference built from the same relation.
func TestIndexMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for pi, pool := range valuePools {
		t.Run(fmt.Sprintf("pool=%d", pi), func(t *testing.T) {
			r := New(Schema{0, 1, 2})
			for i := 0; i < 400; i++ {
				r.Append(randRow(rng, pool, 3)...)
			}
			ix := NewIndex(r, Schema{2, 0})
			ref := make(map[string][]int32)
			for i := 0; i < r.Len(); i++ {
				row := r.Row(i)
				ref[refKey([]Value{row[2], row[0]})] = append(ref[refKey([]Value{row[2], row[0]})], int32(i))
			}
			if ix.Distinct() != len(ref) {
				t.Fatalf("Distinct = %d, reference %d", ix.Distinct(), len(ref))
			}
			for i := 0; i < 200; i++ {
				key := randRow(rng, pool, 2)
				if got, want := ix.Lookup(key), ref[refKey(key)]; !equalIDs(got, want) {
					t.Fatalf("Lookup(%v) = %v, reference %v", key, got, want)
				}
				n := 0
				ix.Each(key, func(row []Value) bool { n++; return true })
				if n != len(want(ref, key)) {
					t.Fatalf("Each(%v) visited %d rows, reference %d", key, n, len(want(ref, key)))
				}
			}
		})
	}
}

func want(ref map[string][]int32, key []Value) []int32 { return ref[refKey(key)] }

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
