package relation

import (
	"testing"
)

func TestSelect(t *testing.T) {
	r := rel(t, Schema{1, 2}, []Value{1, 1}, []Value{1, 2}, []Value{2, 2})
	got := Select(r, func(row []Value) bool { return row[0] == row[1] })
	if got.Len() != 2 {
		t.Fatalf("Select kept %d rows, want 2", got.Len())
	}
	if !got.Contains([]Value{1, 1}) || !got.Contains([]Value{2, 2}) {
		t.Fatalf("Select result wrong: %v", got)
	}
}

func TestProjectDeduplicates(t *testing.T) {
	r := rel(t, Schema{1, 2}, []Value{1, 10}, []Value{1, 20}, []Value{2, 30})
	got := Project(r, Schema{1})
	if got.Len() != 2 {
		t.Fatalf("Project kept %d rows, want 2", got.Len())
	}
	if !got.Schema().Equal(Schema{1}) {
		t.Fatalf("Project schema = %v", got.Schema())
	}
}

func TestProjectToZeroAry(t *testing.T) {
	r := rel(t, Schema{1}, []Value{5})
	got := Project(r, nil)
	if !got.Bool() || got.Len() != 1 {
		t.Fatalf("projection of nonempty to 0-ary should be true, got %v", got)
	}
	empty := New(Schema{1})
	got = Project(empty, nil)
	if got.Bool() {
		t.Fatal("projection of empty to 0-ary should be false")
	}
}

func TestProjectReorders(t *testing.T) {
	r := rel(t, Schema{1, 2}, []Value{7, 8})
	got := Project(r, Schema{2, 1})
	row := got.Row(0)
	if row[0] != 8 || row[1] != 7 {
		t.Fatalf("reordering projection gave %v", row)
	}
}

func TestNaturalJoinBasic(t *testing.T) {
	r := rel(t, Schema{1, 2}, []Value{1, 10}, []Value{2, 20})
	s := rel(t, Schema{2, 3}, []Value{10, 100}, []Value{10, 101}, []Value{30, 300})
	got := NaturalJoin(r, s)
	if !got.Schema().Equal(Schema{1, 2, 3}) {
		t.Fatalf("join schema = %v", got.Schema())
	}
	if got.Len() != 2 {
		t.Fatalf("join size = %d, want 2", got.Len())
	}
	if !got.Contains([]Value{1, 10, 100}) || !got.Contains([]Value{1, 10, 101}) {
		t.Fatalf("join rows wrong: %v", got)
	}
}

func TestNaturalJoinIsCrossProductWhenDisjoint(t *testing.T) {
	r := rel(t, Schema{1}, []Value{1}, []Value{2})
	s := rel(t, Schema{2}, []Value{10}, []Value{20}, []Value{30})
	got := NaturalJoin(r, s)
	if got.Len() != 6 {
		t.Fatalf("cross product size = %d, want 6", got.Len())
	}
}

func TestNaturalJoinWithBooleanOperand(t *testing.T) {
	r := rel(t, Schema{1}, []Value{1})
	tt := NewBool(true)
	if got := NaturalJoin(r, tt); got.Len() != 1 {
		t.Fatalf("join with true = %v", got)
	}
	ff := NewBool(false)
	if got := NaturalJoin(r, ff); got.Len() != 0 {
		t.Fatalf("join with false = %v", got)
	}
}

func TestSemijoin(t *testing.T) {
	r := rel(t, Schema{1, 2}, []Value{1, 10}, []Value{2, 20}, []Value{3, 30})
	s := rel(t, Schema{2, 3}, []Value{10, 0}, []Value{30, 0})
	got := Semijoin(r, s)
	if got.Len() != 2 {
		t.Fatalf("semijoin size = %d, want 2", got.Len())
	}
	if !got.Schema().Equal(r.Schema()) {
		t.Fatalf("semijoin schema changed: %v", got.Schema())
	}
	if !got.Contains([]Value{1, 10}) || !got.Contains([]Value{3, 30}) {
		t.Fatalf("semijoin rows wrong: %v", got)
	}
}

func TestSemijoinDisjointSchemas(t *testing.T) {
	r := rel(t, Schema{1}, []Value{1}, []Value{2})
	nonempty := rel(t, Schema{2}, []Value{9})
	if got := Semijoin(r, nonempty); got.Len() != 2 {
		t.Fatalf("semijoin with nonempty disjoint = %d rows, want 2", got.Len())
	}
	empty := New(Schema{2})
	if got := Semijoin(r, empty); got.Len() != 0 {
		t.Fatalf("semijoin with empty disjoint = %d rows, want 0", got.Len())
	}
}

func TestUnionAcrossColumnOrder(t *testing.T) {
	r := rel(t, Schema{1, 2}, []Value{1, 2})
	s := rel(t, Schema{2, 1}, []Value{2, 1}, []Value{4, 3})
	got := Union(r, s)
	if got.Len() != 2 {
		t.Fatalf("union size = %d, want 2 (dedup across order)", got.Len())
	}
	if !got.Contains([]Value{1, 2}) || !got.Contains([]Value{3, 4}) {
		t.Fatalf("union rows wrong: %v", got)
	}
}

func TestUnionIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Union(New(Schema{1}), New(Schema{2}))
}

func TestDifference(t *testing.T) {
	r := rel(t, Schema{1, 2}, []Value{1, 2}, []Value{3, 4}, []Value{5, 6})
	s := rel(t, Schema{2, 1}, []Value{4, 3})
	got := Difference(r, s)
	if got.Len() != 2 {
		t.Fatalf("difference size = %d, want 2", got.Len())
	}
	if got.Contains([]Value{3, 4}) {
		t.Fatal("difference kept removed tuple")
	}
}

func TestDifferenceZeroAry(t *testing.T) {
	if got := Difference(NewBool(true), NewBool(false)); !got.Bool() {
		t.Fatal("true - false should be true")
	}
	if got := Difference(NewBool(true), NewBool(true)); got.Bool() {
		t.Fatal("true - true should be false")
	}
	if got := Difference(NewBool(false), NewBool(false)); got.Bool() {
		t.Fatal("false - false should be false")
	}
}

func TestRename(t *testing.T) {
	r := rel(t, Schema{1, 2}, []Value{7, 8})
	got := Rename(r, map[Attr]Attr{1: 5})
	if !got.Schema().Equal(Schema{5, 2}) {
		t.Fatalf("rename schema = %v", got.Schema())
	}
	if row := got.Row(0); row[0] != 7 || row[1] != 8 {
		t.Fatalf("rename changed data: %v", row)
	}
}

func TestCrossProductOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossProduct(New(Schema{1}), New(Schema{1, 2}))
}

func TestIndexLookupAndEach(t *testing.T) {
	r := rel(t, Schema{1, 2}, []Value{1, 10}, []Value{1, 20}, []Value{2, 30})
	ix := NewIndex(r, Schema{1})
	if got := ix.Lookup([]Value{1}); len(got) != 2 {
		t.Fatalf("Lookup(1) = %v, want 2 rows", got)
	}
	if got := ix.Lookup([]Value{9}); len(got) != 0 {
		t.Fatalf("Lookup(9) = %v, want none", got)
	}
	if ix.Distinct() != 2 {
		t.Fatalf("Distinct = %d, want 2", ix.Distinct())
	}
	count := 0
	ix.Each([]Value{1}, func(row []Value) bool {
		count++
		return count < 1 // stop after first
	})
	if count != 1 {
		t.Fatalf("Each did not stop early: %d visits", count)
	}
}

func TestIndexOnMissingAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIndex(New(Schema{1}), Schema{9})
}

// TestJoinProjectAgainstNestedLoops cross-checks the hash join against a
// naive nested-loop join on a few handcrafted relations.
func TestJoinAgainstNestedLoops(t *testing.T) {
	r := rel(t, Schema{1, 2},
		[]Value{0, 0}, []Value{0, 1}, []Value{1, 1}, []Value{2, 0}, []Value{2, 2})
	s := rel(t, Schema{2, 3},
		[]Value{0, 0}, []Value{1, 0}, []Value{1, 2}, []Value{2, 2}, []Value{3, 3})
	got := NaturalJoin(r, s)

	want := New(Schema{1, 2, 3})
	for i := 0; i < r.Len(); i++ {
		for j := 0; j < s.Len(); j++ {
			a, b := r.Row(i), s.Row(j)
			if a[1] == b[0] {
				want.Append(a[0], a[1], b[1])
			}
		}
	}
	if !EqualSet(got, want) {
		t.Fatalf("hash join disagrees with nested loops:\n%v\nvs\n%v", got, want)
	}
}
