package relation

import "testing"

// Alloc budgets for the hot kernels, mirroring the root package's
// BenchmarkMicro_Semijoin / BenchmarkMicro_NaturalJoin workloads (20k-row
// inputs, interned-style small values). The budgets are the BENCH_8
// allocs/op ceilings: the columnar substrate must not exceed what the
// row-major implementation spent. Both operators allocate a constant
// number of times per call (containers, selection vector, output columns)
// — a per-row or per-probe allocation sneaking back in blows these bounds
// by orders of magnitude, which is exactly the regression these tests pin.

func microInputs(rhsMod int) (lhs, rhs *Relation) {
	lhs = New(Schema{0, 1})
	rhs = New(Schema{1, 2})
	for i := 0; i < 20000; i++ {
		lhs.Append(Value(i%500), Value(i%1000))
		rhs.Append(Value(i%rhsMod), Value(i%250))
	}
	return lhs, rhs
}

func TestAllocBudgetSemijoin(t *testing.T) {
	lhs, rhs := microInputs(300)
	const budget = 90 // BENCH_8 allocs/op for BenchmarkMicro_Semijoin
	got := testing.AllocsPerRun(10, func() { Semijoin(lhs, rhs) })
	if got > budget {
		t.Fatalf("Semijoin allocations: %.0f per op, budget %d", got, budget)
	}
}

func TestAllocBudgetNaturalJoin(t *testing.T) {
	lhs, rhs := microInputs(1000)
	const budget = 153 // BENCH_8 allocs/op for BenchmarkMicro_NaturalJoin
	got := testing.AllocsPerRun(10, func() { NaturalJoin(lhs, rhs) })
	if got > budget {
		t.Fatalf("NaturalJoin allocations: %.0f per op, budget %d", got, budget)
	}
}

// The per-probe containers must not allocate: a TupleSet membership probe
// and a frozen TupleIndex id-span lookup read the columns in place.
func TestAllocBudgetProbes(t *testing.T) {
	lhs, rhs := microInputs(300)
	set := NewTupleSetSized(1, rhs.Len())
	for i := 0; i < rhs.Len(); i++ {
		set.AddRel(rhs, i, []int{0})
	}
	cols := []int{1}
	if got := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			set.ContainsRel(lhs, i, cols)
		}
	}); got > 0 {
		t.Fatalf("TupleSet.ContainsRel allocates: %.2f per 64 probes", got)
	}
	idx := newIndexOn(rhs, []int{0})
	if got := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			idx.lookupRel(lhs, i, cols)
		}
	}); got > 0 {
		t.Fatalf("Index.lookupRel allocates: %.2f per 64 probes", got)
	}
}
