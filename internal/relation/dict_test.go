package relation

import (
	"strings"
	"testing"
)

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.ID("alice")
	b := d.ID("bob")
	if a == b {
		t.Fatal("distinct strings share an id")
	}
	if d.ID("alice") != a {
		t.Fatal("re-interning moved the id")
	}
	if got := d.String(a); got != "alice" {
		t.Fatalf("String(%d) = %q, want alice", a, got)
	}
	if v, ok := d.Lookup("bob"); !ok || v != b {
		t.Fatalf("Lookup(bob) = (%d,%v), want (%d,true)", v, ok, b)
	}
	if _, ok := d.Lookup("carol"); ok {
		t.Fatal("Lookup invented an entry")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

// String on values outside the interned range must fall back to a numeric
// rendering — negative values and never-interned ids are plain integers
// that merely share the value space.
func TestDictStringNeverInterned(t *testing.T) {
	d := NewDict()
	d.ID("alice")
	for v, want := range map[Value]string{
		-1:         "-1",
		-987654321: "-987654321",
		1:          "1", // beyond Len: never interned
		1 << 40:    "1099511627776",
	} {
		if got := d.String(v); got != want {
			t.Fatalf("String(%d) = %q, want %q", v, got, want)
		}
	}
	if got := d.String(0); got != "alice" {
		t.Fatalf("String(0) = %q, want alice", got)
	}
}

// A banded dictionary must refuse to intern past its reserved id space
// instead of silently colliding with the values above the band.
func TestDictBandGuard(t *testing.T) {
	d := NewDict()
	d.SetMax(2)
	d.ID("a")
	d.ID("b")
	if d.ID("a") != 0 {
		t.Fatal("re-interning within the band must not panic")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("interning beyond the band did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "id space exhausted") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	d.ID("c")
}
