package relation

import (
	"testing"
)

func rel(t *testing.T, schema Schema, rows ...[]Value) *Relation {
	t.Helper()
	r := New(schema)
	for _, row := range rows {
		r.Append(row...)
	}
	return r
}

func TestNewPanicsOnDuplicateAttr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate attribute")
		}
	}()
	New(Schema{1, 2, 1})
}

func TestAppendWidthMismatchPanics(t *testing.T) {
	r := New(Schema{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	r.Append(1)
}

func TestZeroAryRelation(t *testing.T) {
	f := NewBool(false)
	if f.Bool() || f.Len() != 0 || f.Width() != 0 {
		t.Fatalf("NewBool(false) = %v", f)
	}
	tr := NewBool(true)
	if !tr.Bool() || tr.Len() != 1 {
		t.Fatalf("NewBool(true) = %v", tr)
	}
	tr.Append()
	tr.Dedup()
	if tr.Len() != 1 {
		t.Fatalf("dedup of 0-ary relation: len=%d, want 1", tr.Len())
	}
	if !tr.Contains(nil) {
		t.Fatal("0-ary true relation should contain the empty tuple")
	}
}

func TestRowAndLen(t *testing.T) {
	r := rel(t, Schema{10, 20}, []Value{1, 2}, []Value{3, 4})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if got := r.Row(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("Row(1) = %v", got)
	}
}

func TestDedup(t *testing.T) {
	r := rel(t, Schema{1, 2},
		[]Value{1, 2}, []Value{1, 2}, []Value{3, 4}, []Value{1, 2}, []Value{3, 4})
	r.Dedup()
	if r.Len() != 2 {
		t.Fatalf("after dedup Len = %d, want 2", r.Len())
	}
	if !r.Contains([]Value{1, 2}) || !r.Contains([]Value{3, 4}) {
		t.Fatalf("dedup lost tuples: %v", r)
	}
}

func TestContains(t *testing.T) {
	r := rel(t, Schema{1}, []Value{5}, []Value{7})
	if !r.Contains([]Value{5}) {
		t.Fatal("missing 5")
	}
	if r.Contains([]Value{6}) {
		t.Fatal("spurious 6")
	}
	if r.Contains([]Value{5, 5}) {
		t.Fatal("wrong-width tuple should not be contained")
	}
}

func TestSortIsLexicographic(t *testing.T) {
	r := rel(t, Schema{1, 2}, []Value{2, 1}, []Value{1, 9}, []Value{1, 2}, []Value{2, 0})
	r.Sort()
	want := [][]Value{{1, 2}, {1, 9}, {2, 0}, {2, 1}}
	for i, w := range want {
		got := r.Row(i)
		if got[0] != w[0] || got[1] != w[1] {
			t.Fatalf("row %d = %v, want %v", i, got, w)
		}
	}
}

func TestEqualSetIgnoresColumnOrderAndDuplicates(t *testing.T) {
	a := rel(t, Schema{1, 2}, []Value{1, 2}, []Value{3, 4}, []Value{1, 2})
	b := rel(t, Schema{2, 1}, []Value{4, 3}, []Value{2, 1})
	if !EqualSet(a, b) {
		t.Fatal("EqualSet should hold across column order and duplicates")
	}
	c := rel(t, Schema{2, 1}, []Value{4, 3})
	if EqualSet(a, c) {
		t.Fatal("EqualSet should fail on missing tuple")
	}
	d := rel(t, Schema{1, 3}, []Value{1, 2})
	if EqualSet(a, d) {
		t.Fatal("EqualSet should fail on different attribute sets")
	}
}

func TestActiveDomain(t *testing.T) {
	a := rel(t, Schema{1}, []Value{3}, []Value{1})
	b := rel(t, Schema{2, 3}, []Value{1, 7})
	dom := ActiveDomain(a, b)
	want := []Value{1, 3, 7}
	if len(dom) != len(want) {
		t.Fatalf("domain = %v, want %v", dom, want)
	}
	for i := range want {
		if dom[i] != want[i] {
			t.Fatalf("domain = %v, want %v", dom, want)
		}
	}
}

func TestSchemaSetOps(t *testing.T) {
	s := Schema{1, 2, 3}
	u := Schema{3, 4}
	if got := s.Intersect(u); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Intersect = %v", got)
	}
	if got := s.Minus(u); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Minus = %v", got)
	}
	if got := s.Union(u); len(got) != 4 || got[3] != 4 {
		t.Fatalf("Union = %v", got)
	}
	if !s.SameSet(Schema{3, 1, 2}) {
		t.Fatal("SameSet failed on permutation")
	}
	if s.SameSet(Schema{1, 2, 4}) {
		t.Fatal("SameSet accepted different set")
	}
	if s.SameSet(Schema{1, 2}) {
		t.Fatal("SameSet accepted shorter set")
	}
}

func TestClone(t *testing.T) {
	a := rel(t, Schema{1}, []Value{1})
	b := a.Clone()
	b.Append(2)
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("clone aliasing: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.ID("alice")
	b := d.ID("bob")
	if a == b {
		t.Fatal("distinct strings interned to same value")
	}
	if d.ID("alice") != a {
		t.Fatal("re-interning changed value")
	}
	if d.String(a) != "alice" || d.String(b) != "bob" {
		t.Fatalf("round trip failed: %q %q", d.String(a), d.String(b))
	}
	if got := d.String(Value(999)); got != "999" {
		t.Fatalf("un-interned value renders as %q, want \"999\"", got)
	}
	if got := d.String(Value(-5)); got != "-5" {
		t.Fatalf("negative renders as %q", got)
	}
	if _, ok := d.Lookup("carol"); ok {
		t.Fatal("Lookup invented an entry")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestItoa(t *testing.T) {
	cases := map[int64]string{0: "0", 7: "7", -7: "-7", 1234567: "1234567"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}
