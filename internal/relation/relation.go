// Package relation implements the in-memory relational substrate used by
// every engine in this repository: values, schemas, column-major relations
// with per-column narrow codes, and the relational-algebra operators
// (selection, projection, natural join, semijoin, union, difference,
// rename) in the exact vocabulary of the paper's algorithms.
//
// Relations are stored column-major (see column.go): each column is an
// independent vector, narrow (4-byte int32 codes) while every value fits
// int32 — which, after Dict interning, is nearly always — and wide
// ([]Value) otherwise. Hot operators work directly on columns and exchange
// selection vectors ([]int32 row ids) instead of materialized rows; Row
// materializes a fresh tuple and is the cold-path/compatibility accessor.
//
// Relations are multiset-free: Append performs no deduplication, but every
// operator that can introduce duplicates (projection, union) deduplicates
// its output, and Dedup is available for callers that build relations row
// by row.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a single domain element. Domains are integers; strings entering
// through the parser or CSV loader are interned to Values by a Dict.
type Value int64

// Attr identifies a column. Attributes are plain integers so that engines
// can map query variables to attributes directly; the core engine reserves
// a disjoint range for hashed color columns.
type Attr int32

// Schema is an ordered list of attributes. Attribute order determines the
// physical column layout; set-wise equality of schemas is what matters for
// union/difference, and operators reorder columns as needed.
type Schema []Attr

// Clone returns a copy of s.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Pos returns the position of a in s, or -1 if absent.
func (s Schema) Pos(a Attr) int {
	for i, x := range s {
		if x == a {
			return i
		}
	}
	return -1
}

// Has reports whether a occurs in s.
func (s Schema) Has(a Attr) bool { return s.Pos(a) >= 0 }

// Equal reports whether s and t are identical as ordered lists.
func (s Schema) Equal(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SameSet reports whether s and t contain the same attributes, in any order.
func (s Schema) SameSet(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	seen := make(map[Attr]bool, len(s))
	for _, a := range s {
		seen[a] = true
	}
	for _, a := range t {
		if !seen[a] {
			return false
		}
	}
	return true
}

// Intersect returns the attributes common to s and t, in s's order.
func (s Schema) Intersect(t Schema) Schema {
	var out Schema
	for _, a := range s {
		if t.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Minus returns the attributes of s not in t, in s's order.
func (s Schema) Minus(t Schema) Schema {
	var out Schema
	for _, a := range s {
		if !t.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Union returns s followed by the attributes of t not already in s.
func (s Schema) Union(t Schema) Schema {
	out := s.Clone()
	for _, a := range t {
		if !s.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = fmt.Sprintf("a%d", a)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Relation is a set of tuples over a schema, stored column-major. The
// zero-width relation is valid and represents a Boolean: empty means false,
// one (empty) tuple means true.
type Relation struct {
	schema Schema
	width  int
	n      int // number of tuples; needed explicitly because width may be 0
	cols   []column
}

// New returns an empty relation over schema. The schema must not repeat
// attributes.
func New(schema Schema) *Relation {
	for i, a := range schema {
		for _, b := range schema[:i] {
			if a == b {
				panic(fmt.Sprintf("relation: duplicate attribute a%d in schema %v", a, schema))
			}
		}
	}
	r := &Relation{schema: schema.Clone(), width: len(schema)}
	r.cols = make([]column, r.width)
	for c := range r.cols {
		r.cols[c] = newColumn()
	}
	return r
}

// NewBool returns a zero-ary relation holding the given truth value.
func NewBool(truth bool) *Relation {
	r := New(nil)
	if truth {
		r.Append()
	}
	return r
}

// Schema returns the relation's schema. Callers must not modify it.
func (r *Relation) Schema() Schema { return r.schema }

// Width returns the number of columns.
func (r *Relation) Width() int { return r.width }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return r.n == 0 }

// Bool interprets a zero-ary relation as a truth value: nonempty is true.
// It is also meaningful for wider relations ("is the answer nonempty?").
func (r *Relation) Bool() bool { return r.n > 0 }

// At returns the value in column c of row i — the zero-allocation accessor
// hot loops read through.
func (r *Relation) At(c, i int) Value { return r.cols[c].at(i) }

// Row materializes the i-th tuple into a fresh slice. It is the
// compatibility accessor for cold paths; hot loops read At or RowTo
// instead. The result is the caller's to keep.
func (r *Relation) Row(i int) []Value {
	return r.RowTo(make([]Value, r.width), i)
}

// RowTo fills dst (reallocating if too small) with the i-th tuple and
// returns it, letting scanning callers reuse one buffer across rows.
func (r *Relation) RowTo(dst []Value, i int) []Value {
	if cap(dst) < r.width {
		dst = make([]Value, r.width)
	}
	dst = dst[:r.width]
	for c := range r.cols {
		dst[c] = r.cols[c].at(i)
	}
	return dst
}

// Append adds one tuple. The number of values must equal the width.
func (r *Relation) Append(tuple ...Value) {
	if len(tuple) != r.width {
		panic(fmt.Sprintf("relation: appended tuple has %d values, schema %v has width %d",
			len(tuple), r.schema, r.width))
	}
	for c := range r.cols {
		r.cols[c].push(tuple[c])
	}
	r.n++
}

// AppendRowOf appends row i of src, which must have the same width, by
// positional column copy — no intermediate tuple is materialized.
func (r *Relation) AppendRowOf(src *Relation, i int) {
	if src.width != r.width {
		panic(fmt.Sprintf("relation: AppendRowOf width %d into width %d", src.width, r.width))
	}
	for c := range r.cols {
		r.cols[c].push(src.cols[c].at(i))
	}
	r.n++
}

// Clear removes every tuple in place, retaining column capacity (and each
// column's narrow/wide representation), and returns r. It is the reuse hook
// for short-lived scratch relations — see internal/ivm's delta arena —
// where per-refresh relation.New calls would pay schema cloning and
// per-column slice construction for a handful of rows.
func (r *Relation) Clear() *Relation {
	for c := range r.cols {
		r.cols[c].truncate(0)
	}
	r.n = 0
	return r
}

// SwapRemove deletes the i-th tuple in O(width): the last tuple moves into
// position i (set semantics — row order is not meaningful) and the relation
// shrinks by one. Callers holding row ids into r (frozen indexes) must
// treat them as invalidated.
func (r *Relation) SwapRemove(i int) {
	last := r.n - 1
	for c := range r.cols {
		if i != last {
			r.cols[c].set(i, r.cols[c].at(last))
		}
		r.cols[c].truncate(last)
	}
	r.n--
}

// Pos returns the column position of a, or -1.
func (r *Relation) Pos(a Attr) int { return r.schema.Pos(a) }

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	out := New(r.schema)
	for c := range r.cols {
		out.cols[c] = r.cols[c].clone()
	}
	out.n = r.n
	return out
}

// Bytes returns the resident payload bytes of the relation's columns: 4 per
// narrow cell, 8 per wide cell. It is the actual-cost input to governor
// charging, replacing the width×8 estimate for materialized relations.
func (r *Relation) Bytes() int64 {
	var b int64
	for c := range r.cols {
		b += r.cols[c].bytes()
	}
	return b
}

// ColNarrow returns column c's narrow int32 backing, or nil if the column
// is stored wide. The slice is a read-only view — callers must not modify
// it or retain it across appends.
func (r *Relation) ColNarrow(c int) []int32 { return r.cols[c].nv }

// ColWide returns column c's wide []Value backing, or nil if the column is
// stored narrow. The slice is a read-only view — callers must not modify
// it or retain it across appends.
func (r *Relation) ColWide(c int) []Value { return r.cols[c].wv }

// Gather returns a new relation holding r's rows at the given row ids, in
// sel order, by per-column bulk copy. It is the materialization boundary of
// selection-vector execution: passes accumulate row-id vectors and Gather
// pays the copy once.
func (r *Relation) Gather(sel []int32) *Relation {
	out := New(r.schema)
	for c := range r.cols {
		out.cols[c] = r.cols[c].gather(sel)
	}
	out.n = len(sel)
	return out
}

// GatherCols returns a relation over schema whose j-th column is r's
// column cols[j] gathered at the sel row ids — a fused select-project for
// callers that compute their own selection vector and column mapping.
func (r *Relation) GatherCols(schema Schema, cols []int, sel []int32) *Relation {
	if len(schema) != len(cols) {
		panic("relation: GatherCols schema/cols length mismatch")
	}
	out := New(schema)
	for j, c := range cols {
		out.cols[j] = r.cols[c].gather(sel)
	}
	out.n = len(sel)
	return out
}

// Compact keeps exactly the rows at the (ascending) row ids of sel, in
// place, and returns r. It is the in-place counterpart of Gather.
func (r *Relation) Compact(sel []int32) *Relation {
	for c := range r.cols {
		r.cols[c].compact(sel)
	}
	r.n = len(sel)
	return r
}

// Dedup removes duplicate tuples in place and returns r.
func (r *Relation) Dedup() *Relation {
	if r.n <= 1 {
		return r
	}
	if r.width == 0 {
		r.n = 1
		return r
	}
	seen := NewTupleSetSized(r.width, r.n)
	sel := make([]int32, 0, r.n)
	for i := 0; i < r.n; i++ {
		if seen.AddRelRow(r, i) {
			sel = append(sel, int32(i))
		}
	}
	if len(sel) == r.n {
		return r
	}
	return r.Compact(sel)
}

// Contains reports whether tuple is present in r (linear scan; use an Index
// for repeated membership tests).
func (r *Relation) Contains(tuple []Value) bool {
	if len(tuple) != r.width {
		return false
	}
	if r.width == 0 {
		return r.n > 0
	}
	for i := 0; i < r.n; i++ {
		if relEqualRow(r, i, tuple) {
			return true
		}
	}
	return false
}

// Sort orders tuples lexicographically in place and returns r. Useful for
// canonical output and set comparison.
func (r *Relation) Sort() *Relation {
	if r.width == 0 || r.n <= 1 {
		return r
	}
	idx := make([]int32, r.n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := int(idx[a]), int(idx[b])
		for c := range r.cols {
			va, vb := r.cols[c].at(ia), r.cols[c].at(ib)
			if va != vb {
				return va < vb
			}
		}
		return false
	})
	for c := range r.cols {
		r.cols[c] = r.cols[c].gather(idx)
	}
	return r
}

// EqualSet reports whether r and s hold the same set of tuples over the same
// attribute set (column order may differ). Both are deduplicated conceptually:
// duplicates do not affect the answer.
func EqualSet(r, s *Relation) bool {
	if !r.schema.SameSet(s.schema) {
		return false
	}
	if r.width == 0 {
		return (r.n > 0) == (s.n > 0)
	}
	// Reorder s's columns to r's schema and compare key sets.
	perm := make([]int, r.width)
	for i, a := range r.schema {
		perm[i] = s.Pos(a)
	}
	rk := NewTupleSetSized(r.width, r.n)
	for i := 0; i < r.n; i++ {
		rk.AddRelRow(r, i)
	}
	sk := NewTupleSetSized(r.width, s.n)
	for i := 0; i < s.n; i++ {
		if !rk.ContainsRel(s, i, perm) {
			return false
		}
		sk.AddRel(s, i, perm)
	}
	return rk.Len() == sk.Len()
}

// ActiveDomain returns the sorted set of values appearing anywhere in the
// given relations.
func ActiveDomain(rels ...*Relation) []Value {
	seen := make(map[Value]bool)
	for _, r := range rels {
		for c := range r.cols {
			if wv := r.cols[c].wv; wv != nil {
				for _, v := range wv {
					seen[v] = true
				}
				continue
			}
			for _, v := range r.cols[c].nv {
				seen[Value(v)] = true
			}
		}
	}
	out := make([]Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the relation as a small table, for debugging and the CLIs.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v #%d\n", r.schema, r.n)
	limit := r.n
	if limit > 20 {
		limit = 20
	}
	for i := 0; i < limit; i++ {
		parts := make([]string, r.width)
		for j := range parts {
			parts[j] = fmt.Sprintf("%d", r.At(j, i))
		}
		b.WriteString("  [" + strings.Join(parts, " ") + "]\n")
	}
	if limit < r.n {
		fmt.Fprintf(&b, "  ... (%d more)\n", r.n-limit)
	}
	return b.String()
}
