// Package relation implements the in-memory relational substrate used by
// every engine in this repository: values, schemas, relations with flat
// tuple storage, and the relational-algebra operators (selection,
// projection, natural join, semijoin, union, difference, rename) in the
// exact vocabulary of the paper's algorithms.
//
// Relations are multiset-free: Append performs no deduplication, but every
// operator that can introduce duplicates (projection, union) deduplicates
// its output, and Dedup is available for callers that build relations row
// by row.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a single domain element. Domains are integers; strings entering
// through the parser or CSV loader are interned to Values by a Dict.
type Value int64

// Attr identifies a column. Attributes are plain integers so that engines
// can map query variables to attributes directly; the core engine reserves
// a disjoint range for hashed color columns.
type Attr int32

// Schema is an ordered list of attributes. Attribute order determines the
// physical column layout; set-wise equality of schemas is what matters for
// union/difference, and operators reorder columns as needed.
type Schema []Attr

// Clone returns a copy of s.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Pos returns the position of a in s, or -1 if absent.
func (s Schema) Pos(a Attr) int {
	for i, x := range s {
		if x == a {
			return i
		}
	}
	return -1
}

// Has reports whether a occurs in s.
func (s Schema) Has(a Attr) bool { return s.Pos(a) >= 0 }

// Equal reports whether s and t are identical as ordered lists.
func (s Schema) Equal(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SameSet reports whether s and t contain the same attributes, in any order.
func (s Schema) SameSet(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	seen := make(map[Attr]bool, len(s))
	for _, a := range s {
		seen[a] = true
	}
	for _, a := range t {
		if !seen[a] {
			return false
		}
	}
	return true
}

// Intersect returns the attributes common to s and t, in s's order.
func (s Schema) Intersect(t Schema) Schema {
	var out Schema
	for _, a := range s {
		if t.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Minus returns the attributes of s not in t, in s's order.
func (s Schema) Minus(t Schema) Schema {
	var out Schema
	for _, a := range s {
		if !t.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Union returns s followed by the attributes of t not already in s.
func (s Schema) Union(t Schema) Schema {
	out := s.Clone()
	for _, a := range t {
		if !s.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = fmt.Sprintf("a%d", a)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Relation is a set of tuples over a schema. Tuples are stored flattened in
// a single backing slice; the zero-width relation is valid and represents a
// Boolean: empty means false, one (empty) tuple means true.
type Relation struct {
	schema Schema
	width  int
	n      int // number of tuples; needed explicitly because width may be 0
	rows   []Value
}

// New returns an empty relation over schema. The schema must not repeat
// attributes.
func New(schema Schema) *Relation {
	seen := make(map[Attr]bool, len(schema))
	for _, a := range schema {
		if seen[a] {
			panic(fmt.Sprintf("relation: duplicate attribute a%d in schema %v", a, schema))
		}
		seen[a] = true
	}
	return &Relation{schema: schema.Clone(), width: len(schema)}
}

// NewBool returns a zero-ary relation holding the given truth value.
func NewBool(truth bool) *Relation {
	r := New(nil)
	if truth {
		r.Append()
	}
	return r
}

// Schema returns the relation's schema. Callers must not modify it.
func (r *Relation) Schema() Schema { return r.schema }

// Width returns the number of columns.
func (r *Relation) Width() int { return r.width }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return r.n == 0 }

// Bool interprets a zero-ary relation as a truth value: nonempty is true.
// It is also meaningful for wider relations ("is the answer nonempty?").
func (r *Relation) Bool() bool { return r.n > 0 }

// Row returns the i-th tuple as a view into the backing store. Callers must
// not modify or retain it across Appends.
func (r *Relation) Row(i int) []Value {
	return r.rows[i*r.width : (i+1)*r.width : (i+1)*r.width]
}

// Append adds one tuple. The number of values must equal the width.
func (r *Relation) Append(tuple ...Value) {
	if len(tuple) != r.width {
		panic(fmt.Sprintf("relation: appended tuple has %d values, schema %v has width %d",
			len(tuple), r.schema, r.width))
	}
	r.rows = append(r.rows, tuple...)
	r.n++
}

// SwapRemove deletes the i-th tuple in O(width): the last tuple moves into
// position i (set semantics — row order is not meaningful) and the relation
// shrinks by one. Callers holding row ids into r (frozen indexes) must
// treat them as invalidated.
func (r *Relation) SwapRemove(i int) {
	last := r.n - 1
	if i != last {
		copy(r.Row(i), r.Row(last))
	}
	r.rows = r.rows[:last*r.width]
	r.n--
}

// Pos returns the column position of a, or -1.
func (r *Relation) Pos(a Attr) int { return r.schema.Pos(a) }

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	out := New(r.schema)
	out.rows = append(out.rows, r.rows...)
	out.n = r.n
	return out
}

// Dedup removes duplicate tuples in place and returns r.
func (r *Relation) Dedup() *Relation {
	if r.n <= 1 {
		return r
	}
	if r.width == 0 {
		r.n = 1
		return r
	}
	seen := NewTupleSetSized(r.width, r.n)
	w := 0
	for i := 0; i < r.n; i++ {
		if !seen.Add(r.Row(i)) {
			continue
		}
		if w != i {
			copy(r.rows[w*r.width:(w+1)*r.width], r.Row(i))
		}
		w++
	}
	r.rows = r.rows[:w*r.width]
	r.n = w
	return r
}

// Contains reports whether tuple is present in r (linear scan; use an Index
// for repeated membership tests).
func (r *Relation) Contains(tuple []Value) bool {
	if len(tuple) != r.width {
		return false
	}
	if r.width == 0 {
		return r.n > 0
	}
	for i := 0; i < r.n; i++ {
		if rowsEqual(r.Row(i), tuple) {
			return true
		}
	}
	return false
}

// Sort orders tuples lexicographically in place and returns r. Useful for
// canonical output and set comparison.
func (r *Relation) Sort() *Relation {
	if r.width == 0 || r.n <= 1 {
		return r
	}
	idx := make([]int, r.n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := r.Row(idx[a]), r.Row(idx[b])
		for c := 0; c < r.width; c++ {
			if ra[c] != rb[c] {
				return ra[c] < rb[c]
			}
		}
		return false
	})
	out := make([]Value, 0, len(r.rows))
	for _, i := range idx {
		out = append(out, r.Row(i)...)
	}
	r.rows = out
	return r
}

// EqualSet reports whether r and s hold the same set of tuples over the same
// attribute set (column order may differ). Both are deduplicated conceptually:
// duplicates do not affect the answer.
func EqualSet(r, s *Relation) bool {
	if !r.schema.SameSet(s.schema) {
		return false
	}
	if r.width == 0 {
		return (r.n > 0) == (s.n > 0)
	}
	// Reorder s's columns to r's schema and compare key sets.
	perm := make([]int, r.width)
	for i, a := range r.schema {
		perm[i] = s.Pos(a)
	}
	rk := NewTupleSetSized(r.width, r.n)
	for i := 0; i < r.n; i++ {
		rk.Add(r.Row(i))
	}
	sk := NewTupleSetSized(r.width, s.n)
	for i := 0; i < s.n; i++ {
		row := s.Row(i)
		if !rk.ContainsCols(row, perm) {
			return false
		}
		sk.AddCols(row, perm)
	}
	return rk.Len() == sk.Len()
}

// ActiveDomain returns the sorted set of values appearing anywhere in the
// given relations.
func ActiveDomain(rels ...*Relation) []Value {
	seen := make(map[Value]bool)
	for _, r := range rels {
		for _, v := range r.rows {
			seen[v] = true
		}
	}
	out := make([]Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the relation as a small table, for debugging and the CLIs.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v #%d\n", r.schema, r.n)
	limit := r.n
	if limit > 20 {
		limit = 20
	}
	for i := 0; i < limit; i++ {
		row := r.Row(i)
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprintf("%d", v)
		}
		b.WriteString("  [" + strings.Join(parts, " ") + "]\n")
	}
	if limit < r.n {
		fmt.Fprintf(&b, "  ... (%d more)\n", r.n-limit)
	}
	return b.String()
}
