package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randRelation builds a random relation over the given schema with values
// drawn from a small domain, so joins and set operations hit collisions.
func randRelation(rnd *rand.Rand, schema Schema, maxRows int, domain int) *Relation {
	r := New(schema)
	n := rnd.Intn(maxRows + 1)
	row := make([]Value, len(schema))
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = Value(rnd.Intn(domain))
		}
		r.Append(row...)
	}
	return r
}

func qcfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(seed)),
		Values:   nil,
	}
}

// Property: dedup is idempotent and never changes the tuple set.
func TestQuickDedupIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2}, 30, 4)
		orig := r.Clone()
		r.Dedup()
		once := r.Clone()
		r.Dedup()
		return EqualSet(orig, r) && EqualSet(once, r)
	}
	if err := quick.Check(f, qcfg(1)); err != nil {
		t.Fatal(err)
	}
}

// Property: r ⋉ s == π_{schema(r)}(r ⋈ s) (semijoin law).
func TestQuickSemijoinIsProjectionOfJoin(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2}, 20, 3)
		s := randRelation(rnd, Schema{2, 3}, 20, 3)
		left := Semijoin(r, s)
		right := Project(NaturalJoin(r, s), r.Schema())
		return EqualSet(left, right)
	}
	if err := quick.Check(f, qcfg(2)); err != nil {
		t.Fatal(err)
	}
}

// Property: natural join is commutative as a set (modulo column order).
func TestQuickJoinCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2}, 15, 3)
		s := randRelation(rnd, Schema{2, 3}, 15, 3)
		return EqualSet(NaturalJoin(r, s), NaturalJoin(s, r))
	}
	if err := quick.Check(f, qcfg(3)); err != nil {
		t.Fatal(err)
	}
}

// Property: join is associative.
func TestQuickJoinAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2}, 10, 3)
		s := randRelation(rnd, Schema{2, 3}, 10, 3)
		u := randRelation(rnd, Schema{3, 4}, 10, 3)
		left := NaturalJoin(NaturalJoin(r, s), u)
		right := NaturalJoin(r, NaturalJoin(s, u))
		return EqualSet(left, right)
	}
	if err := quick.Check(f, qcfg(4)); err != nil {
		t.Fatal(err)
	}
}

// Property: union and difference behave like set algebra:
// (r ∪ s) − s ⊆ r  and  r ⊆ (r ∪ s).
func TestQuickUnionDifferenceLaws(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2}, 20, 3).Dedup()
		s := randRelation(rnd, Schema{1, 2}, 20, 3).Dedup()
		un := Union(r, s)
		diff := Difference(un, s)
		// diff ⊆ r
		for i := 0; i < diff.Len(); i++ {
			if !r.Contains(diff.Row(i)) {
				return false
			}
		}
		// r ⊆ un
		for i := 0; i < r.Len(); i++ {
			if !un.Contains(r.Row(i)) {
				return false
			}
		}
		// |un| = |r| + |s| - |r ∩ s| via difference both ways
		inter := Difference(r, Difference(r, s))
		return un.Len() == r.Len()+s.Len()-inter.Len()
	}
	if err := quick.Check(f, qcfg(5)); err != nil {
		t.Fatal(err)
	}
}

// Property: projection onto the full schema is the identity up to dedup.
func TestQuickProjectIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2, 3}, 25, 3)
		p := Project(r, r.Schema())
		return EqualSet(p, r)
	}
	if err := quick.Check(f, qcfg(6)); err != nil {
		t.Fatal(err)
	}
}

// Property: index lookups agree with scans.
func TestQuickIndexAgreesWithScan(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2}, 30, 4)
		ix := NewIndex(r, Schema{1})
		for key := Value(0); key < 4; key++ {
			want := 0
			for i := 0; i < r.Len(); i++ {
				if r.Row(i)[0] == key {
					want++
				}
			}
			if len(ix.Lookup([]Value{key})) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(7)); err != nil {
		t.Fatal(err)
	}
}

// Property: Sort then EqualSet with the original.
func TestQuickSortPreservesSet(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRelation(rnd, Schema{1, 2}, 30, 4)
		orig := r.Clone()
		r.Sort()
		return EqualSet(orig, r)
	}
	if err := quick.Check(f, qcfg(8)); err != nil {
		t.Fatal(err)
	}
}
