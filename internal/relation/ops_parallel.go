package relation

import "pyquery/internal/parallel"

// Partitioned (sharded) variants of the join/semijoin kernel. The build
// side is hash-partitioned by join key into per-shard TupleIndex/TupleSet
// containers built concurrently, and the probe side is scanned in
// contiguous per-worker chunks, each probing whichever shard its row's key
// hashes to (shards are frozen and read-only by then). Per-worker match
// vectors are concatenated in worker order, so every partitioned operator
// produces exactly the tuple order of its serial counterpart — callers can
// switch between them freely without perturbing downstream iteration
// order.
//
// The shard id is taken from the TOP bits of the same splitmix64 tuple hash
// (hash.go) the containers key on; the containers' open-addressed tables
// use the LOW bits for slots, so restricting a shard to one top-bit class
// leaves its slot distribution uniform.

// parMinRows gates the partitioned paths: below this many total rows the
// goroutine + partitioning overhead outweighs the win and the serial kernel
// is used. A variable so tests can force the sharded path on tiny inputs.
var parMinRows = 4096

// maxShards caps the partition count (shard ids are stored in a byte array
// during the build scan).
const maxShards = 64

// shardPlan returns the shard count (a power of two ≤ maxShards covering
// workers) and the right-shift that maps a 64-bit hash to a shard id.
func shardPlan(workers int) (shards int, shift uint) {
	shards = 1
	for shards < workers && shards < maxShards {
		shards <<= 1
	}
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	return shards, 64 - bits
}

// NaturalJoinPar is NaturalJoin evaluated with the given worker budget:
// the build side s is hash-partitioned by the common attributes into
// per-shard indexes built concurrently, and r's rows are probed in
// parallel chunks collecting per-worker (rID, sID) match vectors; the
// output is then materialized by one bulk gather per column. workers <= 1,
// small inputs, and attribute-disjoint schemas fall back to the serial
// kernel. The output is identical to NaturalJoin(r, s), including tuple
// order.
func NaturalJoinPar(r, s *Relation, workers int) *Relation {
	common := r.schema.Intersect(s.schema)
	if workers <= 1 || len(common) == 0 || r.n+s.n < parMinRows {
		return NaturalJoin(r, s)
	}
	rc, sc := keyCols(r, s, common)
	idx, shift := shardedIndexes(s, sc, workers)

	type pairs struct{ rIDs, sIDs []int32 }
	outs := make([]pairs, workers)
	parallel.Chunks(workers, r.n, func(w, lo, hi int) {
		var p pairs
		for i := lo; i < hi; i++ {
			sh := hashRelCols(r, i, rc) >> shift
			for _, si := range idx[sh].IDsRel(r, i, rc) {
				p.rIDs = append(p.rIDs, int32(i))
				p.sIDs = append(p.sIDs, si)
			}
		}
		outs[w] = p
	})
	total := 0
	for w := range outs {
		total += len(outs[w].rIDs)
	}
	rIDs := make([]int32, 0, total)
	sIDs := make([]int32, 0, total)
	for w := range outs {
		rIDs = append(rIDs, outs[w].rIDs...)
		sIDs = append(sIDs, outs[w].sIDs...)
	}
	return joinGather(r, s, rIDs, sIDs)
}

// SemijoinSelPar is SemijoinSel evaluated with the given worker budget:
// the s side is hash-partitioned into per-shard key sets built
// concurrently, and the r side is probed in parallel chunks. The result is
// identical to SemijoinSel(r, rsel, s, ssel), including order.
func SemijoinSelPar(r *Relation, rsel []int32, s *Relation, ssel []int32, workers int) []int32 {
	common := r.schema.Intersect(s.schema)
	rn, sn := selCount(r, rsel), selCount(s, ssel)
	if workers <= 1 || len(common) == 0 || rn+sn < parMinRows {
		return SemijoinSel(r, rsel, s, ssel)
	}
	rc, sc := keyCols(r, s, common)
	sets, shift := shardedKeySets(s, ssel, sc, workers)

	outs := make([][]int32, workers)
	parallel.Chunks(workers, rn, func(w, lo, hi int) {
		var local []int32
		for k := lo; k < hi; k++ {
			i := k
			if rsel != nil {
				i = int(rsel[k])
			}
			sh := hashRelCols(r, i, rc) >> shift
			if sets[sh].ContainsRel(r, i, rc) {
				local = append(local, int32(i))
			}
		}
		outs[w] = local
	})
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	sel := make([]int32, 0, total)
	for _, o := range outs {
		sel = append(sel, o...)
	}
	return sel
}

// SemijoinPar is Semijoin evaluated with the given worker budget. The
// output is identical to Semijoin(r, s), including tuple order.
func SemijoinPar(r, s *Relation, workers int) *Relation {
	return r.Gather(SemijoinSelPar(r, nil, s, nil, workers))
}

// SemijoinInPlacePar is SemijoinInPlace evaluated with the given worker
// budget: the survivor ids are computed in parallel chunks against
// per-shard key sets, then r's columns are compacted serially. The result
// is identical to SemijoinInPlace(r, s), including tuple order.
func SemijoinInPlacePar(r, s *Relation, workers int) *Relation {
	sel := SemijoinSelPar(r, nil, s, nil, workers)
	if len(sel) == r.n {
		return r
	}
	return r.Compact(sel)
}

// keyCols maps the shared key attributes onto each side's column
// positions, in the same attribute order, so hashing r's rows on rc and
// s's rows on sc produces identical key hashes.
func keyCols(r, s *Relation, common Schema) (rc, sc []int) {
	rc = make([]int, len(common))
	sc = make([]int, len(common))
	for i, a := range common {
		rc[i] = r.Pos(a)
		sc[i] = s.Pos(a)
	}
	return rc, sc
}

// shardedIndexes hash-partitions s by the key columns sc and builds one
// frozen TupleIndex per shard concurrently. Row ids stay ascending within
// each shard, so per-key insertion order matches a serial build.
func shardedIndexes(s *Relation, sc []int, workers int) ([]*TupleIndex, uint) {
	shards, shift := shardPlan(workers)
	byShard, off := shardRows(s, nil, sc, shards, shift, workers)
	idx := make([]*TupleIndex, shards)
	parallel.ForEach(workers, shards, func(sh int) {
		ids := byShard[off[sh]:off[sh+1]]
		ix := NewTupleIndexSized(len(sc), len(ids))
		for _, i := range ids {
			ix.AddRel(s, int(i), sc, i)
		}
		ix.Freeze()
		idx[sh] = ix
	})
	return idx, shift
}

// shardedKeySets hash-partitions s's key tuples (columns sc, restricted to
// ssel) into one TupleSet per shard, built concurrently.
func shardedKeySets(s *Relation, ssel []int32, sc []int, workers int) ([]*TupleSet, uint) {
	shards, shift := shardPlan(workers)
	byShard, off := shardRows(s, ssel, sc, shards, shift, workers)
	sets := make([]*TupleSet, shards)
	parallel.ForEach(workers, shards, func(sh int) {
		ids := byShard[off[sh]:off[sh+1]]
		set := NewTupleSetSized(len(sc), len(ids))
		for _, i := range ids {
			set.AddRel(s, int(i), sc)
		}
		sets[sh] = set
	})
	return sets, shift
}

// shardRows hash-partitions s's row ids (restricted to ssel; nil = all) by
// shard (top hash bits of the key columns): shard ids are computed in
// parallel chunks, then one serial counting pass groups the ids so that
// byShard[off[sh]:off[sh+1]] lists shard sh's rows in ascending selection
// order — each shard build touches only its own rows instead of rescanning
// all of s.
func shardRows(s *Relation, ssel []int32, sc []int, shards int, shift uint, workers int) (byShard, off []int32) {
	n := selCount(s, ssel)
	shardOf := make([]uint8, n)
	parallel.Chunks(workers, n, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			i := k
			if ssel != nil {
				i = int(ssel[k])
			}
			shardOf[k] = uint8(hashRelCols(s, i, sc) >> shift)
		}
	})
	off = make([]int32, shards+1)
	for _, sh := range shardOf {
		off[sh+1]++
	}
	for i := 0; i < shards; i++ {
		off[i+1] += off[i]
	}
	byShard = make([]int32, n)
	cursor := append([]int32(nil), off[:shards]...)
	for k, sh := range shardOf {
		i := int32(k)
		if ssel != nil {
			i = ssel[k]
		}
		byShard[cursor[sh]] = i
		cursor[sh]++
	}
	return byShard, off
}
