package relation

import "pyquery/internal/parallel"

// Partitioned (sharded) variants of the join/semijoin kernel. The build
// side is hash-partitioned by join key into per-shard TupleIndex/TupleSet
// containers built concurrently, and the probe side is scanned in
// contiguous per-worker chunks, each probing whichever shard its row's key
// hashes to (shards are frozen and read-only by then). Per-worker outputs
// are concatenated in worker order, so every partitioned operator produces
// exactly the tuple order of its serial counterpart — callers can switch
// between them freely without perturbing downstream iteration order.
//
// The shard id is taken from the TOP bits of the same splitmix64 tuple hash
// (hash.go) the containers key on; the containers' open-addressed tables
// use the LOW bits for slots, so restricting a shard to one top-bit class
// leaves its slot distribution uniform.

// parMinRows gates the partitioned paths: below this many total rows the
// goroutine + partitioning overhead outweighs the win and the serial kernel
// is used. A variable so tests can force the sharded path on tiny inputs.
var parMinRows = 4096

// maxShards caps the partition count (shard ids are stored in a byte array
// during the build scan).
const maxShards = 64

// shardPlan returns the shard count (a power of two ≤ maxShards covering
// workers) and the right-shift that maps a 64-bit hash to a shard id.
func shardPlan(workers int) (shards int, shift uint) {
	shards = 1
	for shards < workers && shards < maxShards {
		shards <<= 1
	}
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	return shards, 64 - bits
}

// NaturalJoinPar is NaturalJoin evaluated with the given worker budget:
// the build side s is hash-partitioned by the common attributes into
// per-shard indexes built concurrently, and r's rows are probed in
// parallel chunks. workers <= 1, small inputs, and attribute-disjoint
// schemas fall back to the serial kernel. The output is identical to
// NaturalJoin(r, s), including tuple order.
func NaturalJoinPar(r, s *Relation, workers int) *Relation {
	common := r.schema.Intersect(s.schema)
	if workers <= 1 || len(common) == 0 || r.n+s.n < parMinRows {
		return NaturalJoin(r, s)
	}
	sPrivate := s.schema.Minus(r.schema)
	out := New(r.schema.Union(s.schema))

	rc, sc := keyCols(r, s, common)
	sp := make([]int, len(sPrivate))
	for i, a := range sPrivate {
		sp[i] = s.Pos(a)
	}

	idx, shift := shardedIndexes(s, sc, workers)

	outs := make([]*Relation, workers)
	parallel.Chunks(workers, r.n, func(w, lo, hi int) {
		local := New(out.schema)
		outRow := make([]Value, out.width)
		for i := lo; i < hi; i++ {
			row := r.Row(i)
			sh := hashRowCols(row, rc) >> shift
			for _, si := range idx[sh].IDsCols(row, rc) {
				srow := s.Row(int(si))
				copy(outRow, row)
				for j, p := range sp {
					outRow[r.width+j] = srow[p]
				}
				local.Append(outRow...)
			}
		}
		outs[w] = local
	})
	concat(out, outs)
	return out
}

// SemijoinPar is Semijoin evaluated with the given worker budget. The
// output is identical to Semijoin(r, s), including tuple order.
func SemijoinPar(r, s *Relation, workers int) *Relation {
	common := r.schema.Intersect(s.schema)
	if workers <= 1 || len(common) == 0 || r.n+s.n < parMinRows {
		return Semijoin(r, s)
	}
	rc, sc := keyCols(r, s, common)
	sets, shift := shardedKeySets(s, sc, workers)

	out := New(r.schema)
	outs := make([]*Relation, workers)
	parallel.Chunks(workers, r.n, func(w, lo, hi int) {
		local := New(r.schema)
		for i := lo; i < hi; i++ {
			row := r.Row(i)
			sh := hashRowCols(row, rc) >> shift
			if sets[sh].ContainsCols(row, rc) {
				local.Append(row...)
			}
		}
		outs[w] = local
	})
	concat(out, outs)
	return out
}

// SemijoinInPlacePar is SemijoinInPlace evaluated with the given worker
// budget: the survivor test runs in parallel chunks against per-shard key
// sets, then r is compacted serially. The result is identical to
// SemijoinInPlace(r, s), including tuple order.
func SemijoinInPlacePar(r, s *Relation, workers int) *Relation {
	common := r.schema.Intersect(s.schema)
	if workers <= 1 || len(common) == 0 || r.n+s.n < parMinRows {
		return SemijoinInPlace(r, s)
	}
	rc, sc := keyCols(r, s, common)
	sets, shift := shardedKeySets(s, sc, workers)

	keep := make([]bool, r.n)
	parallel.Chunks(workers, r.n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := r.Row(i)
			sh := hashRowCols(row, rc) >> shift
			keep[i] = sets[sh].ContainsCols(row, rc)
		}
	})
	w := 0
	for i := 0; i < r.n; i++ {
		if !keep[i] {
			continue
		}
		if w != i {
			copy(r.rows[w*r.width:(w+1)*r.width], r.Row(i))
		}
		w++
	}
	r.rows = r.rows[:w*r.width]
	r.n = w
	return r
}

// keyCols maps the shared key attributes onto each side's column
// positions, in the same attribute order, so hashing r's rows on rc and
// s's rows on sc produces identical key hashes.
func keyCols(r, s *Relation, common Schema) (rc, sc []int) {
	rc = make([]int, len(common))
	sc = make([]int, len(common))
	for i, a := range common {
		rc[i] = r.Pos(a)
		sc[i] = s.Pos(a)
	}
	return rc, sc
}

// shardedIndexes hash-partitions s by the key columns sc and builds one
// frozen TupleIndex per shard concurrently. Row ids stay ascending within
// each shard, so per-key insertion order matches a serial build.
func shardedIndexes(s *Relation, sc []int, workers int) ([]*TupleIndex, uint) {
	shards, shift := shardPlan(workers)
	byShard, off := shardRows(s, sc, shards, shift, workers)
	idx := make([]*TupleIndex, shards)
	parallel.ForEach(workers, shards, func(sh int) {
		ids := byShard[off[sh]:off[sh+1]]
		ix := NewTupleIndexSized(len(sc), len(ids))
		buf := make([]Value, len(sc))
		for _, i := range ids {
			row := s.Row(int(i))
			for j, c := range sc {
				buf[j] = row[c]
			}
			ix.Add(buf, i)
		}
		ix.Freeze()
		idx[sh] = ix
	})
	return idx, shift
}

// shardedKeySets hash-partitions s's key tuples (columns sc) into one
// TupleSet per shard, built concurrently.
func shardedKeySets(s *Relation, sc []int, workers int) ([]*TupleSet, uint) {
	shards, shift := shardPlan(workers)
	byShard, off := shardRows(s, sc, shards, shift, workers)
	sets := make([]*TupleSet, shards)
	parallel.ForEach(workers, shards, func(sh int) {
		ids := byShard[off[sh]:off[sh+1]]
		set := NewTupleSetSized(len(sc), len(ids))
		for _, i := range ids {
			set.AddCols(s.Row(int(i)), sc)
		}
		sets[sh] = set
	})
	return sets, shift
}

// shardRows hash-partitions s's row ids by shard (top hash bits of the key
// columns): shard ids are computed in parallel chunks, then one serial
// counting pass groups the ids so that byShard[off[sh]:off[sh+1]] lists
// shard sh's rows in ascending order — each shard build touches only its
// own rows instead of rescanning all of s.
func shardRows(s *Relation, sc []int, shards int, shift uint, workers int) (byShard, off []int32) {
	shardOf := make([]uint8, s.n)
	parallel.Chunks(workers, s.n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			shardOf[i] = uint8(hashRowCols(s.Row(i), sc) >> shift)
		}
	})
	off = make([]int32, shards+1)
	for _, sh := range shardOf {
		off[sh+1]++
	}
	for i := 0; i < shards; i++ {
		off[i+1] += off[i]
	}
	byShard = make([]int32, s.n)
	cursor := append([]int32(nil), off[:shards]...)
	for i, sh := range shardOf {
		byShard[cursor[sh]] = int32(i)
		cursor[sh]++
	}
	return byShard, off
}

// concat appends the per-worker outputs to out in worker order (nil entries
// are workers that received no chunk).
func concat(out *Relation, outs []*Relation) {
	total := 0
	for _, o := range outs {
		if o != nil {
			total += len(o.rows)
		}
	}
	out.rows = make([]Value, 0, total)
	for _, o := range outs {
		if o == nil {
			continue
		}
		out.rows = append(out.rows, o.rows...)
		out.n += o.n
	}
}
