package relation

// Index is a hash index on a subset of a relation's columns, mapping each
// key to the row numbers holding it. It is the workhorse behind hash joins
// and the backtracking evaluator's per-atom lookups. Internally it is a
// frozen TupleIndex, so lookups return contiguous id spans without copying
// and probes never allocate.
type Index struct {
	rel  *Relation
	cols []int // column positions forming the key
	tix  *TupleIndex
}

// NewIndex builds an index of r on the given attributes (all must occur in
// r's schema).
func NewIndex(r *Relation, attrs Schema) *Index {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.Pos(a)
		if p < 0 {
			panic("relation: index attribute not in schema")
		}
		cols[i] = p
	}
	return newIndexOn(r, cols)
}

func newIndexOn(r *Relation, cols []int) *Index {
	tix := NewTupleIndexSized(len(cols), r.n)
	for i := 0; i < r.n; i++ {
		tix.AddRel(r, i, cols, int32(i))
	}
	tix.Freeze()
	return &Index{rel: r, cols: cols, tix: tix}
}

// Lookup returns the row numbers whose key columns equal key, in row
// order. The returned slice is a view into the index and must not be
// modified; no copy is made.
func (ix *Index) Lookup(key []Value) []int32 {
	return ix.tix.IDs(key)
}

// lookupRel returns the matching row numbers keyed by the projection of
// row i of another relation p onto the given column positions, without
// materializing the key tuple.
func (ix *Index) lookupRel(p *Relation, i int, cols []int) []int32 {
	return ix.tix.IDsRel(p, i, cols)
}

// Each calls fn with every row matching key, stopping early if fn returns
// false. The yielded slice is a shared buffer overwritten between calls —
// fn must not retain it. Probes after the first perform no allocation;
// callers in hot loops should prefer Lookup and direct At reads.
func (ix *Index) Each(key []Value, fn func(row []Value) bool) {
	ids := ix.tix.IDs(key)
	if len(ids) == 0 {
		return
	}
	buf := make([]Value, ix.rel.width)
	for _, ri := range ids {
		if !fn(ix.rel.RowTo(buf, int(ri))) {
			return
		}
	}
}

// Distinct returns the number of distinct keys in the index.
func (ix *Index) Distinct() int { return ix.tix.Distinct() }
