package relation

// Index is a hash index on a subset of a relation's columns, mapping each
// key to the row numbers holding it. It is the workhorse behind hash joins
// and the backtracking evaluator's per-atom lookups. Internally it is a
// frozen TupleIndex, so lookups return contiguous id spans without copying
// and probes never allocate.
type Index struct {
	rel  *Relation
	cols []int // column positions forming the key
	tix  *TupleIndex
}

// NewIndex builds an index of r on the given attributes (all must occur in
// r's schema).
func NewIndex(r *Relation, attrs Schema) *Index {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.Pos(a)
		if p < 0 {
			panic("relation: index attribute not in schema")
		}
		cols[i] = p
	}
	return newIndexOn(r, cols)
}

func newIndexOn(r *Relation, cols []int) *Index {
	tix := NewTupleIndexSized(len(cols), r.n)
	buf := make([]Value, len(cols))
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		for j, c := range cols {
			buf[j] = row[c]
		}
		tix.Add(buf, int32(i))
	}
	tix.Freeze()
	return &Index{rel: r, cols: cols, tix: tix}
}

// Lookup returns the row numbers whose key columns equal key, in row
// order. The returned slice is a view into the index and must not be
// modified; no copy is made.
func (ix *Index) Lookup(key []Value) []int32 {
	return ix.tix.IDs(key)
}

// lookupRow returns the matching row numbers keyed by the projection of a
// full row of another relation onto the given column positions, without
// materializing the key tuple.
func (ix *Index) lookupRow(row []Value, cols []int) []int32 {
	return ix.tix.IDsCols(row, cols)
}

// Each calls fn with the row view of every row matching key, stopping early
// if fn returns false. Like Lookup, it performs no allocation.
func (ix *Index) Each(key []Value, fn func(row []Value) bool) {
	for _, ri := range ix.tix.IDs(key) {
		if !fn(ix.rel.Row(int(ri))) {
			return
		}
	}
}

// Distinct returns the number of distinct keys in the index.
func (ix *Index) Distinct() int { return ix.tix.Distinct() }
