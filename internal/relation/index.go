package relation

// Index is a hash index on a subset of a relation's columns, mapping each
// key to the row numbers holding it. It is the workhorse behind hash joins
// and the backtracking evaluator's per-atom lookups.
type Index struct {
	rel  *Relation
	cols []int // column positions forming the key
	m    map[string][]int32
}

// NewIndex builds an index of r on the given attributes (all must occur in
// r's schema).
func NewIndex(r *Relation, attrs Schema) *Index {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.Pos(a)
		if p < 0 {
			panic("relation: index attribute not in schema")
		}
		cols[i] = p
	}
	return newIndexOn(r, cols)
}

func newIndexOn(r *Relation, cols []int) *Index {
	idx := &Index{rel: r, cols: cols, m: make(map[string][]int32, r.n)}
	buf := make([]Value, len(cols))
	for i := 0; i < r.n; i++ {
		row := r.Row(i)
		for j, c := range cols {
			buf[j] = row[c]
		}
		k := rowKeyFull(buf)
		idx.m[k] = append(idx.m[k], int32(i))
	}
	return idx
}

// Lookup returns the row numbers whose key columns equal key. The returned
// slice must not be modified.
func (ix *Index) Lookup(key []Value) []int {
	rows := ix.lookup(key)
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = int(r)
	}
	return out
}

func (ix *Index) lookup(key []Value) []int32 {
	return ix.m[rowKeyFull(key)]
}

// Each calls fn with the row view of every row matching key, stopping early
// if fn returns false. This is the allocation-free lookup path.
func (ix *Index) Each(key []Value, fn func(row []Value) bool) {
	for _, ri := range ix.m[rowKeyFull(key)] {
		if !fn(ix.rel.Row(int(ri))) {
			return
		}
	}
}

// Distinct returns the number of distinct keys in the index.
func (ix *Index) Distinct() int { return len(ix.m) }
