package relation

// Mutable tuple containers for the incremental-maintenance layer. TupleMap
// maps fixed-width tuples to int32 payloads (row positions) and — unlike
// TupleIndex — supports deletion, so the changelog can track a live
// relation's rows across inserts and swap-removes. TupleCounter maps
// fixed-width tuples to signed 64-bit counts, the derivation-count algebra
// of counting view maintenance: insertions add +1 per derivation, deletions
// add −1, and a tuple is in the view iff its count is positive.
//
// Both follow the hashtab.go contract: flat []Value arenas, mixing hashes,
// value-wise equality on collision, no string keys, no per-probe
// allocation. Deletion uses backward-shift compaction (no tombstones), so
// load factors stay honest under churn.

// TupleMap maps width-w tuples to int32 values with O(1) expected
// Get/Set/Delete and no per-operation allocation (amortized growth aside).
type TupleMap struct {
	width  int
	slots  []int32 // entry index or emptySlot
	hashes []uint64
	keys   []Value
	vals   []int32
	n      int
}

// NewTupleMap returns an empty map over width-w tuples.
func NewTupleMap(width int) *TupleMap { return NewTupleMapSized(width, 0) }

// NewTupleMapSized pre-sizes the map for about capHint tuples.
func NewTupleMapSized(width, capHint int) *TupleMap {
	return &TupleMap{
		width:  width,
		slots:  newSlots(nextPow2(capHint * 4 / 3)),
		hashes: make([]uint64, 0, capHint),
		keys:   make([]Value, 0, capHint*width),
		vals:   make([]int32, 0, capHint),
	}
}

// Width returns the tuple width.
func (m *TupleMap) Width() int { return m.width }

// Len returns the number of entries.
func (m *TupleMap) Len() int { return m.n }

func (m *TupleMap) key(e int) []Value {
	return m.keys[e*m.width : (e+1)*m.width]
}

// findSlot returns the slot index holding row's entry, or the first empty
// slot of its probe sequence (found=false).
func (m *TupleMap) findSlot(row []Value, h uint64) (slot uint64, found bool) {
	mask := uint64(len(m.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := m.slots[i]
		if e == emptySlot {
			return i, false
		}
		if m.hashes[e] == h && rowsEqual(row, m.key(int(e))) {
			return i, true
		}
	}
}

// Get returns the value stored under row.
func (m *TupleMap) Get(row []Value) (int32, bool) {
	slot, ok := m.findSlot(row, hashRow(row))
	if !ok {
		return 0, false
	}
	return m.vals[m.slots[slot]], true
}

// Set stores v under row, inserting or overwriting, and reports whether the
// entry was new. The tuple is copied; callers may reuse the slice.
func (m *TupleMap) Set(row []Value, v int32) bool {
	m.maybeGrow()
	h := hashRow(row)
	slot, ok := m.findSlot(row, h)
	if ok {
		m.vals[m.slots[slot]] = v
		return false
	}
	m.slots[slot] = int32(m.n)
	m.hashes = append(m.hashes, h)
	m.keys = append(m.keys, row...)
	m.vals = append(m.vals, v)
	m.n++
	return true
}

// Delete removes row's entry, reporting whether it existed. The slot is
// closed by backward-shift compaction and the entry arena hole is filled by
// the last entry, so no tombstones accumulate.
func (m *TupleMap) Delete(row []Value) bool {
	h := hashRow(row)
	slot, ok := m.findSlot(row, h)
	if !ok {
		return false
	}
	e := m.slots[slot]
	m.shiftOut(slot)
	last := int32(m.n - 1)
	if e != last {
		// Move the last entry into the hole and repoint its slot.
		lastKey := m.key(int(last))
		ls, _ := m.findSlot(lastKey, m.hashes[last])
		copy(m.key(int(e)), lastKey)
		m.hashes[e] = m.hashes[last]
		m.vals[e] = m.vals[last]
		m.slots[ls] = e
	}
	m.hashes = m.hashes[:last]
	m.keys = m.keys[:int(last)*m.width]
	m.vals = m.vals[:last]
	m.n--
	return true
}

// shiftOut empties slot i and backward-shifts the probe chain after it so
// every remaining entry stays reachable from its home slot.
func (m *TupleMap) shiftOut(i uint64) {
	mask := uint64(len(m.slots) - 1)
	for {
		m.slots[i] = emptySlot
		j := i
		for {
			j = (j + 1) & mask
			e := m.slots[j]
			if e == emptySlot {
				return
			}
			home := m.hashes[e] & mask
			// The entry at j may fill i iff i lies within [home, j]
			// cyclically — moving it cannot jump before its home slot.
			if (j-home)&mask >= (j-i)&mask {
				m.slots[i] = e
				i = j
				break
			}
		}
	}
}

func (m *TupleMap) maybeGrow() {
	if (m.n+1)*4 <= len(m.slots)*3 {
		return
	}
	slots := newSlots(len(m.slots) * 2)
	mask := uint64(len(slots) - 1)
	for e, h := range m.hashes {
		i := h & mask
		for slots[i] != emptySlot {
			i = (i + 1) & mask
		}
		slots[i] = int32(e)
	}
	m.slots = slots
}

// TupleCounter maps width-w tuples to signed counts. Adding a delta creates
// the entry on first touch; entries whose count returns to zero are kept
// (the arena is append-only) and skipped by Each's positive filter when the
// caller asks for the supported view.
type TupleCounter struct {
	width  int
	slots  []int32
	hashes []uint64
	keys   []Value
	counts []int64
	n      int
}

// NewTupleCounter returns an empty counter over width-w tuples.
func NewTupleCounter(width int) *TupleCounter { return NewTupleCounterSized(width, 0) }

// NewTupleCounterSized pre-sizes the counter for about capHint tuples.
func NewTupleCounterSized(width, capHint int) *TupleCounter {
	return &TupleCounter{
		width:  width,
		slots:  newSlots(nextPow2(capHint * 4 / 3)),
		hashes: make([]uint64, 0, capHint),
		keys:   make([]Value, 0, capHint*width),
		counts: make([]int64, 0, capHint),
	}
}

// Width returns the tuple width.
func (c *TupleCounter) Width() int { return c.width }

// Len returns the number of distinct tuples ever touched (including counts
// that have returned to zero).
func (c *TupleCounter) Len() int { return c.n }

func (c *TupleCounter) key(e int) []Value {
	return c.keys[e*c.width : (e+1)*c.width]
}

// Add adds d to row's count and returns the new count. The tuple is copied
// on first touch; callers may reuse the slice.
func (c *TupleCounter) Add(row []Value, d int64) int64 {
	c.maybeGrow()
	h := hashRow(row)
	mask := uint64(len(c.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := c.slots[i]
		if e == emptySlot {
			c.slots[i] = int32(c.n)
			c.hashes = append(c.hashes, h)
			c.keys = append(c.keys, row...)
			c.counts = append(c.counts, d)
			c.n++
			return d
		}
		if c.hashes[e] == h && rowsEqual(row, c.key(int(e))) {
			c.counts[e] += d
			return c.counts[e]
		}
	}
}

// Count returns row's current count (zero if never touched).
func (c *TupleCounter) Count(row []Value) int64 {
	h := hashRow(row)
	mask := uint64(len(c.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := c.slots[i]
		if e == emptySlot {
			return 0
		}
		if c.hashes[e] == h && rowsEqual(row, c.key(int(e))) {
			return c.counts[e]
		}
	}
}

// Clear removes every entry in place, retaining table and arena capacity,
// and returns c. It is the reuse hook for the short-lived scratch counters
// an IVM refresh builds per batch — see internal/ivm's delta arena.
func (c *TupleCounter) Clear() *TupleCounter {
	for i := range c.slots {
		c.slots[i] = emptySlot
	}
	c.hashes = c.hashes[:0]
	c.keys = c.keys[:0]
	c.counts = c.counts[:0]
	c.n = 0
	return c
}

// Each calls fn with every touched tuple and its current count (including
// zeros), in first-touch order, stopping early if fn returns false. The
// yielded slice is a view into the arena — copy it to retain it.
func (c *TupleCounter) Each(fn func(row []Value, n int64) bool) {
	for e := 0; e < c.n; e++ {
		if !fn(c.key(e), c.counts[e]) {
			return
		}
	}
}

func (c *TupleCounter) maybeGrow() {
	if (c.n+1)*4 <= len(c.slots)*3 {
		return
	}
	slots := newSlots(len(c.slots) * 2)
	mask := uint64(len(slots) - 1)
	for e, h := range c.hashes {
		i := h & mask
		for slots[i] != emptySlot {
			i = (i + 1) & mask
		}
		slots[i] = int32(e)
	}
	c.slots = slots
}
