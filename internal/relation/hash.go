package relation

// Tuple hashing. Every membership set and hash index in the engine keys
// tuples by a 64-bit mixing hash over []Value rows, compared value-wise on
// collision — no string keys, no per-probe allocation. The hot-path rule is:
// a tuple probe must not allocate.
//
// The mixer is the splitmix64 finalizer: cheap (three shifts, two
// multiplies), bijective, and empirically strong enough that adversarial
// Value patterns (dense small ints, multiples of 2^32, ±2^63 extremes)
// spread across the table; correctness never depends on hash quality
// because every probe confirms equality on the raw values.

const (
	hashSeed  uint64 = 0x9e3779b97f4a7c15 // golden-ratio increment
	hashMult  uint64 = 0x9ddfea08eb382d69 // from CityHash's Hash128to64
	emptySlot int32  = -1
)

// mix64 is the splitmix64 finalizer: a bijection on uint64 with good
// avalanche behaviour.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashRow hashes a full tuple. The combiner is sequence-sensitive, so
// (1,2) and (2,1) hash differently.
func hashRow(row []Value) uint64 {
	h := hashSeed ^ uint64(len(row))*hashMult
	for _, v := range row {
		h = mix64(h ^ (uint64(v) * hashMult))
	}
	return h
}

// hashRowCols hashes the projection of row onto the given column positions,
// without materializing the projected tuple.
func hashRowCols(row []Value, cols []int) uint64 {
	h := hashSeed ^ uint64(len(cols))*hashMult
	for _, c := range cols {
		h = mix64(h ^ (uint64(row[c]) * hashMult))
	}
	return h
}

// hashRelRow hashes row i of r — identical to hashRow(r.Row(i)) without
// materializing the row: the columns are read in place, narrow codes
// widened on the fly (the hash is over Values, so narrow and wide storage
// of the same tuple hash identically).
func hashRelRow(r *Relation, i int) uint64 {
	h := hashSeed ^ uint64(r.width)*hashMult
	for c := range r.cols {
		h = mix64(h ^ (uint64(r.cols[c].at(i)) * hashMult))
	}
	return h
}

// hashRelCols hashes the projection of row i of r onto the column
// positions cols — identical to hashRowCols(r.Row(i), cols).
func hashRelCols(r *Relation, i int, cols []int) uint64 {
	h := hashSeed ^ uint64(len(cols))*hashMult
	for _, c := range cols {
		h = mix64(h ^ (uint64(r.cols[c].at(i)) * hashMult))
	}
	return h
}

// rowsEqual reports element-wise equality of two same-width tuples.
func rowsEqual(a, b []Value) bool {
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// rowEqualCols reports whether the projection of row onto cols equals key.
func rowEqualCols(row []Value, cols []int, key []Value) bool {
	for i, c := range cols {
		if row[c] != key[i] {
			return false
		}
	}
	return true
}

// relEqualRow reports whether row i of r equals key element-wise.
func relEqualRow(r *Relation, i int, key []Value) bool {
	for c := range r.cols {
		if r.cols[c].at(i) != key[c] {
			return false
		}
	}
	return true
}

// relEqualCols reports whether the projection of row i of r onto cols
// equals key.
func relEqualCols(r *Relation, i int, cols []int, key []Value) bool {
	for k, c := range cols {
		if r.cols[c].at(i) != key[k] {
			return false
		}
	}
	return true
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 8).
func nextPow2(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}
