package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddHasEdge(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self-loop ignored
	g.AddEdge(0, 9) // out of range ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge missing")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degree wrong")
	}
}

func TestEdgesAndNeighbors(t *testing.T) {
	g := Path(4)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges = %v", es)
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("Neighbors(1) = %v", nb)
	}
}

func TestCompleteGraphCliques(t *testing.T) {
	g := Complete(6)
	for k := 0; k <= 6; k++ {
		c := g.FindClique(k)
		if c == nil {
			t.Fatalf("K6 must have a %d-clique", k)
		}
		if len(c) != k || !g.IsClique(c) {
			t.Fatalf("FindClique(%d) = %v not a clique", k, c)
		}
	}
	if g.HasClique(7) {
		t.Fatal("K6 cannot have a 7-clique")
	}
	if g.MaxClique() != 6 {
		t.Fatalf("MaxClique = %d, want 6", g.MaxClique())
	}
}

func TestPathGraphCliques(t *testing.T) {
	g := Path(10)
	if !g.HasClique(2) {
		t.Fatal("path has edges")
	}
	if g.HasClique(3) {
		t.Fatal("path has no triangle")
	}
	if g.MaxClique() != 2 {
		t.Fatalf("MaxClique = %d, want 2", g.MaxClique())
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	g := New(0)
	if c := g.FindClique(0); c == nil || len(c) != 0 {
		t.Fatal("empty clique always exists")
	}
	if g.HasClique(1) {
		t.Fatal("no vertices → no 1-clique")
	}
	g1 := New(1)
	if !g1.HasClique(1) || g1.HasClique(2) {
		t.Fatal("singleton clique logic")
	}
}

func TestPlantedClique(t *testing.T) {
	g, planted := PlantedClique(40, 0.1, 6, 7)
	if !g.IsClique(planted) {
		t.Fatal("planted set is not a clique")
	}
	if !g.HasClique(6) {
		t.Fatal("planted clique not found")
	}
	got := g.FindClique(6)
	if !g.IsClique(got) {
		t.Fatalf("found non-clique %v", got)
	}
}

func TestCliqueBoundary64(t *testing.T) {
	// Clique straddling the word boundary (vertices 62,63,64,65).
	g := New(70)
	vs := []int{62, 63, 64, 65}
	for i := range vs {
		for j := i + 1; j < len(vs); j++ {
			g.AddEdge(vs[i], vs[j])
		}
	}
	c := g.FindClique(4)
	if c == nil || !g.IsClique(c) || len(c) != 4 {
		t.Fatalf("word-boundary clique not found: %v", c)
	}
}

func TestHamiltonianPath(t *testing.T) {
	p, ok := Path(6).HamiltonianPath()
	if !ok || len(p) != 6 {
		t.Fatalf("path graph must have a Hamiltonian path, got %v %v", p, ok)
	}
	// Star K1,3 has no Hamiltonian path.
	star := New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	if _, ok := star.HamiltonianPath(); ok {
		t.Fatal("K1,3 has no Hamiltonian path")
	}
	// Complete graph has one.
	if _, ok := Complete(5).HamiltonianPath(); !ok {
		t.Fatal("K5 has a Hamiltonian path")
	}
	// Disconnected graph does not.
	disc := New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, ok := disc.HamiltonianPath(); ok {
		t.Fatal("disconnected graph cannot have a Hamiltonian path")
	}
	// Trivial sizes.
	if _, ok := New(0).HamiltonianPath(); !ok {
		t.Fatal("empty graph trivially has one")
	}
	if _, ok := New(1).HamiltonianPath(); !ok {
		t.Fatal("singleton trivially has one")
	}
}

func TestHamiltonianPathIsValid(t *testing.T) {
	g := Random(10, 0.5, 3)
	p, ok := g.HamiltonianPath()
	if !ok {
		t.Skip("random instance has no Hamiltonian path; seed-dependent")
	}
	seen := make(map[int]bool)
	for i, v := range p {
		if seen[v] {
			t.Fatalf("vertex %d repeated in %v", v, p)
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(p[i-1], v) {
			t.Fatalf("non-edge in path %v", p)
		}
	}
	if len(p) != g.N {
		t.Fatalf("path %v does not cover all vertices", p)
	}
}

// naiveHasClique checks all vertex subsets of size k.
func naiveHasClique(g *Graph, k int) bool {
	var rec func(start int, cur []int) bool
	rec = func(start int, cur []int) bool {
		if len(cur) == k {
			return true
		}
		for v := start; v < g.N; v++ {
			ok := true
			for _, u := range cur {
				if !g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok && rec(v+1, append(cur, v)) {
				return true
			}
		}
		return false
	}
	return rec(0, nil)
}

// Property: bitset clique search agrees with naive subset enumeration.
func TestQuickCliqueAgreesWithNaive(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 1 + rnd.Intn(12)
		g := Random(n, 0.4+0.3*rnd.Float64(), seed)
		for k := 1; k <= 5; k++ {
			if g.HasClique(k) != naiveHasClique(g, k) {
				t.Logf("disagreement n=%d k=%d seed=%d", n, k, seed)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: FindClique witnesses are always cliques of the right size.
func TestQuickCliqueWitness(t *testing.T) {
	f := func(seed int64) bool {
		g := Random(14, 0.6, seed)
		for k := 2; k <= 5; k++ {
			c := g.FindClique(k)
			if c == nil {
				continue
			}
			if len(c) != k || !g.IsClique(c) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHamPathTooBigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > 24")
		}
	}()
	New(25).HamiltonianPath()
}
