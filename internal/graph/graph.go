// Package graph provides the simple-graph substrate used by the paper's
// reductions and their validation oracles: exact k-clique search (the
// canonical W[1]-complete problem the lower bounds reduce from), maximum
// clique, Hamiltonian path (Held–Karp), and seeded random generators.
package graph

import (
	"fmt"
	"math/rand"
)

// Graph is an undirected simple graph on vertices 0…N−1, stored as bitset
// adjacency rows for fast candidate-set intersection during clique search.
type Graph struct {
	N    int
	rows [][]uint64 // rows[v] is the adjacency bitset of v
	m    int        // number of edges
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	words := (n + 63) / 64
	rows := make([][]uint64, n)
	backing := make([]uint64, n*words)
	for v := range rows {
		rows[v] = backing[v*words : (v+1)*words]
	}
	return &Graph{N: n, rows: rows}
}

// AddEdge inserts the undirected edge {u,v}. Self-loops and duplicates are
// ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.N || v >= g.N {
		return
	}
	if g.HasEdge(u, v) {
		return
	}
	g.rows[u][v/64] |= 1 << (v % 64)
	g.rows[v][u/64] |= 1 << (u % 64)
	g.m++
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N || v >= g.N {
		return false
	}
	return g.rows[u][v/64]&(1<<(v%64)) != 0
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	d := 0
	for _, w := range g.rows[v] {
		d += popcount(w)
	}
	return d
}

// Edges returns all edges as ordered pairs (u < v).
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if g.HasEdge(u, v) {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Neighbors returns the neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	var out []int
	for u := 0; u < g.N; u++ {
		if g.HasEdge(v, u) {
			out = append(out, u)
		}
	}
	return out
}

func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N, g.m)
}

// FindClique returns the vertices of some clique of size k, or nil if none
// exists. k ≤ 0 yields the empty clique. The search branches on the lowest
// candidate vertex and intersects candidate bitsets, pruning when the
// candidate set is too small — exact, worst case n^k (the point of the
// paper's Theorem 1).
func (g *Graph) FindClique(k int) []int {
	if k <= 0 {
		return []int{}
	}
	if k == 1 {
		if g.N == 0 {
			return nil
		}
		return []int{0}
	}
	words := (g.N + 63) / 64
	full := make([]uint64, words)
	for v := 0; v < g.N; v++ {
		full[v/64] |= 1 << (v % 64)
	}
	clique := make([]int, 0, k)
	var rec func(cand []uint64, need int) bool
	rec = func(cand []uint64, need int) bool {
		if need == 0 {
			return true
		}
		if bitCount(cand) < need {
			return false
		}
		buf := make([]uint64, words)
		for w := 0; w < words; w++ {
			bits := cand[w]
			for bits != 0 {
				b := bits & (-bits)
				bits ^= b
				v := w*64 + trailingZeros(b)
				// Candidates after v only (canonical ordering avoids
				// revisiting permutations).
				for x := 0; x < words; x++ {
					buf[x] = cand[x] & g.rows[v][x]
				}
				clearUpTo(buf, v)
				clique = append(clique, v)
				if rec(buf, need-1) {
					return true
				}
				clique = clique[:len(clique)-1]
				// Remove v from cand for subsequent branches.
				cand[w] &^= b
				if bitCount(cand) < need {
					return false
				}
			}
		}
		return false
	}
	cand := append([]uint64(nil), full...)
	if rec(cand, k) {
		out := append([]int(nil), clique...)
		return out
	}
	return nil
}

// HasClique reports whether the graph contains a clique of size k.
func (g *Graph) HasClique(k int) bool { return g.FindClique(k) != nil }

// IsClique reports whether vs are pairwise adjacent and distinct.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if vs[i] == vs[j] || !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// MaxClique returns the size of a maximum clique (exact branch and bound
// with a greedy bound). Intended for the modest sizes of the experiments.
func (g *Graph) MaxClique() int {
	best := 0
	for k := 1; k <= g.N; k++ {
		if !g.HasClique(k) {
			break
		}
		best = k
	}
	return best
}

// HamiltonianPath reports whether the graph has a Hamiltonian path, and
// returns one if so, via Held–Karp dynamic programming over subsets
// (O(2ⁿ·n²); n ≤ 24 enforced).
func (g *Graph) HamiltonianPath() ([]int, bool) {
	n := g.N
	if n == 0 {
		return []int{}, true
	}
	if n == 1 {
		return []int{0}, true
	}
	if n > 24 {
		panic("graph: HamiltonianPath limited to n ≤ 24")
	}
	size := 1 << n
	// reach[mask][v]: path visiting exactly mask, ending at v.
	reach := make([][]bool, size)
	prev := make([][]int8, size)
	for v := 0; v < n; v++ {
		m := 1 << v
		if reach[m] == nil {
			reach[m] = make([]bool, n)
			prev[m] = make([]int8, n)
		}
		reach[m][v] = true
		prev[m][v] = -1
	}
	for mask := 1; mask < size; mask++ {
		if reach[mask] == nil {
			continue
		}
		for v := 0; v < n; v++ {
			if !reach[mask][v] {
				continue
			}
			for u := 0; u < n; u++ {
				if mask&(1<<u) != 0 || !g.HasEdge(v, u) {
					continue
				}
				nm := mask | 1<<u
				if reach[nm] == nil {
					reach[nm] = make([]bool, n)
					prev[nm] = make([]int8, n)
				}
				if !reach[nm][u] {
					reach[nm][u] = true
					prev[nm][u] = int8(v)
				}
			}
		}
	}
	fullMask := size - 1
	if reach[fullMask] == nil {
		return nil, false
	}
	for v := 0; v < n; v++ {
		if !reach[fullMask][v] {
			continue
		}
		// Reconstruct.
		path := make([]int, 0, n)
		mask, cur := fullMask, v
		for cur >= 0 {
			path = append(path, cur)
			p := int(prev[mask][cur])
			mask &^= 1 << cur
			cur = p
		}
		// Reverse.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		return path, true
	}
	return nil, false
}

// Random returns a G(n,p) random graph with the given seed.
func Random(n int, p float64, seed int64) *Graph {
	rnd := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rnd.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// PlantedClique returns a G(n,p) graph with a clique planted on k random
// vertices, plus the planted vertex set.
func PlantedClique(n int, p float64, k int, seed int64) (*Graph, []int) {
	g := Random(n, p, seed)
	rnd := rand.New(rand.NewSource(seed + 1))
	perm := rnd.Perm(n)
	planted := perm[:k]
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(planted[i], planted[j])
		}
	}
	return g, planted
}

// Path returns the path graph 0−1−…−(n−1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Complete returns the complete graph Kₙ.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func bitCount(bs []uint64) int {
	n := 0
	for _, w := range bs {
		n += popcount(w)
	}
	return n
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// clearUpTo clears bits 0…v (inclusive) of bs.
func clearUpTo(bs []uint64, v int) {
	w := v / 64
	for i := 0; i < w; i++ {
		bs[i] = 0
	}
	if w < len(bs) {
		sh := uint(v%64) + 1
		var mask uint64
		if sh >= 64 {
			mask = ^uint64(0)
		} else {
			mask = uint64(1)<<sh - 1
		}
		bs[w] &^= mask
	}
}
