// Package yannakakis evaluates acyclic conjunctive queries by Yannakakis'
// algorithm ([18] in the paper): reduce each atom to S_j = π σ (R), build a
// join tree, run the full reducer (bottom-up then top-down semijoins) to
// eliminate dangling tuples, and finally join bottom-up while projecting
// onto the head variables — time polynomial in input + output. Theorem 2's
// engine (internal/core) generalizes this pass structure with hashed color
// columns; this package is both a standalone engine and the I₁ = ∅ fast
// path.
package yannakakis

import (
	"errors"
	"fmt"
	"sync/atomic"

	"pyquery/internal/eval"
	"pyquery/internal/hypergraph"
	"pyquery/internal/parallel"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// ErrCyclic is returned when the query hypergraph is not α-acyclic.
var ErrCyclic = errors.New("yannakakis: query hypergraph is cyclic")

// Options controls the evaluator.
type Options struct {
	// NoFullReducer skips the semijoin passes (ablation A2). Results are
	// identical; intermediate join sizes may blow up.
	NoFullReducer bool
	// Parallelism is the worker count. Each semijoin/join pass processes
	// the join tree level by level; the independent subtree reductions of a
	// level run across workers, and leftover budget flows into the
	// partitioned semijoin/join kernel. 0 means GOMAXPROCS; 1 is the serial
	// evaluator (byte-identical output to previous releases). Parallel runs
	// produce the same answer set; only row order may differ.
	Parallelism int
}

// IsAcyclic reports whether the hypergraph of the query's relational atoms
// is α-acyclic (≠/comparison atoms are ignored, per Section 5's definition
// of acyclic queries with inequalities).
func IsAcyclic(q *query.CQ) bool {
	h, _ := plan.AtomHypergraph(q)
	_, ok := h.JoinForest()
	return ok
}

// Evaluate computes Q(d) for an acyclic pure conjunctive query (no ≠, no
// comparisons — those belong to the Theorem 2 engine). The result uses the
// positional schema 0…len(head)−1.
func Evaluate(q *query.CQ, db *query.DB) (*relation.Relation, error) {
	return EvaluateOpts(q, db, Options{})
}

// EvaluateOpts is Evaluate with explicit options.
func EvaluateOpts(q *query.CQ, db *query.DB, opts Options) (*relation.Relation, error) {
	st, err := prepare(q, db)
	if err != nil {
		return nil, err
	}
	if st == nil { // trivially empty
		return query.NewTable(len(q.Head)), nil
	}
	st.workers = parallel.Workers(opts.Parallelism)
	if !opts.NoFullReducer {
		if empty := st.fullReduce(); empty {
			return query.NewTable(len(q.Head)), nil
		}
	}
	pstar := st.joinProject()
	return headTuples(q, pstar), nil
}

// EvaluateBool decides Q(d) ≠ ∅ for an acyclic pure conjunctive query using
// only the bottom-up semijoin pass — the O(n·q) decision procedure.
func EvaluateBool(q *query.CQ, db *query.DB) (bool, error) {
	return EvaluateBoolOpts(q, db, Options{})
}

// EvaluateBoolOpts is EvaluateBool with explicit options.
func EvaluateBoolOpts(q *query.CQ, db *query.DB, opts Options) (bool, error) {
	st, err := prepare(q, db)
	if err != nil {
		return false, err
	}
	if st == nil {
		return false, nil
	}
	st.workers = parallel.Workers(opts.Parallelism)
	return !st.bottomUpSemijoin(), nil
}

type state struct {
	q    *query.CQ
	tree *hypergraph.Forest
	// rels[j] is the current P_j relation of tree node j (schema keyed by
	// variable ids as attributes).
	rels []*relation.Relation
	// subtreeVars[j] is at(T[j]) as variable attributes.
	subtreeVars []map[query.Var]bool
	headVars    map[query.Var]bool
	// workers is the parallelism budget for the passes (1 = serial).
	workers int
}

// prepare validates, reduces atoms, and builds the join tree. It returns
// (nil, nil) when some atom reduces to the empty relation (the answer is
// trivially empty) and an error for cyclic or malformed queries.
func prepare(q *query.CQ, db *query.DB) (*state, error) {
	if len(q.Ineqs) > 0 || len(q.Cmps) > 0 {
		return nil, fmt.Errorf("yannakakis: query has ≠/comparison atoms; use the core engine")
	}
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	if len(q.Atoms) == 0 {
		// No atoms: the head is all constants; treat as single-node tree of
		// the 0-ary true relation.
		h := hypergraph.New(0, [][]int{{}})
		f, _ := h.JoinForest()
		st := &state{q: q, tree: f.JoinTree(),
			rels:        []*relation.Relation{relation.NewBool(true)},
			subtreeVars: []map[query.Var]bool{{}},
			headVars:    map[query.Var]bool{}}
		return st, nil
	}

	h, backTo := plan.AtomHypergraph(q)
	forest, ok := h.JoinForest()
	if !ok {
		return nil, ErrCyclic
	}

	rels := make([]*relation.Relation, len(q.Atoms))
	inputs := make([]plan.Input, len(q.Atoms))
	for i, a := range q.Atoms {
		s, vars := eval.ReduceAtom(a, db)
		if s.Empty() {
			return nil, nil
		}
		rels[i] = s
		inputs[i] = plan.Input{Label: a.Rel, Rows: s.Len(), Vars: vars}
	}

	// Weight the join tree by the reduced cardinalities: the planner roots
	// each component at its largest relation (so the full reducer shrinks it
	// and every merge probes rather than rebuilds it) and schedules the
	// semijoin/join passes most-selective-child-first.
	tree := plan.OrderForest(forest, inputs).JoinTree()

	// Subtree variable sets, translated back from vertex ids to Vars.
	subtreeVerts := h.SubtreeVertices(tree)
	subtreeVars := make([]map[query.Var]bool, len(subtreeVerts))
	for j, set := range subtreeVerts {
		m := make(map[query.Var]bool, len(set))
		for vert := range set {
			m[backTo[vert]] = true
		}
		subtreeVars[j] = m
	}

	headVars := make(map[query.Var]bool)
	for _, v := range q.HeadVars() {
		headVars[v] = true
	}
	return &state{q: q, tree: tree, rels: rels, subtreeVars: subtreeVars, headVars: headVars}, nil
}

// levels groups the tree's nodes by depth (roots at level 0), each level in
// ascending node order. Nodes at the same level root disjoint subtrees, so
// per-node pass work within a level is independent — the unit the parallel
// passes fan out over.
func (st *state) levels() [][]int {
	depth := make([]int, len(st.tree.Parent))
	maxd := 0
	// Reverse bottom-up order visits parents before children.
	for i := len(st.tree.Order) - 1; i >= 0; i-- {
		j := st.tree.Order[i]
		if u := st.tree.Parent[j]; u >= 0 {
			depth[j] = depth[u] + 1
		}
		if depth[j] > maxd {
			maxd = depth[j]
		}
	}
	lv := make([][]int, maxd+1)
	for j, d := range depth {
		lv[d] = append(lv[d], j)
	}
	return lv
}

// bottomUpSemijoin runs the upward semijoin pass (children filter parents);
// it returns true if some relation became empty (the query is false). The
// pass relations are private to the evaluation (built by ReduceAtom), so
// each semijoin filters in place instead of rebuilding a relation per pass.
// With workers > 1 the pass walks the tree level by level, deepest parents
// first: every parent of a level absorbs its children independently of the
// level's other parents, so they run across workers.
func (st *state) bottomUpSemijoin() bool {
	if st.workers <= 1 {
		for _, j := range st.tree.Order {
			u := st.tree.Parent[j]
			if u < 0 {
				continue
			}
			if relation.SemijoinInPlace(st.rels[u], st.rels[j]).Empty() {
				return true
			}
		}
		return false
	}
	lv := st.levels()
	var empty atomic.Bool
	for d := len(lv) - 2; d >= 0; d-- {
		var parents []int
		for _, u := range lv[d] {
			if len(st.tree.Children[u]) > 0 {
				parents = append(parents, u)
			}
		}
		if len(parents) == 0 {
			continue
		}
		outer, inner := parallel.Split(st.workers, len(parents))
		parallel.ForEach(outer, len(parents), func(i int) {
			u := parents[i]
			for _, c := range st.tree.Children[u] {
				if relation.SemijoinInPlacePar(st.rels[u], st.rels[c], inner).Empty() {
					empty.Store(true)
					return
				}
			}
		})
		if empty.Load() {
			return true
		}
	}
	return false
}

// fullReduce runs the full reducer: bottom-up semijoins, then top-down
// semijoins, leaving the relations globally consistent (every remaining
// tuple participates in some full join result).
func (st *state) fullReduce() bool {
	if st.bottomUpSemijoin() {
		return true
	}
	if st.workers <= 1 {
		// Top-down: parents filter children, in reverse bottom-up order.
		for i := len(st.tree.Order) - 1; i >= 0; i-- {
			j := st.tree.Order[i]
			u := st.tree.Parent[j]
			if u < 0 {
				continue
			}
			if relation.SemijoinInPlace(st.rels[j], st.rels[u]).Empty() {
				return true
			}
		}
		return false
	}
	// Top-down by levels: each node of a level is filtered by its (already
	// fully filtered) parent; the nodes mutate disjoint relations and only
	// read their parents, so a level runs across workers.
	lv := st.levels()
	var empty atomic.Bool
	for d := 1; d < len(lv); d++ {
		nodes := lv[d]
		outer, inner := parallel.Split(st.workers, len(nodes))
		parallel.ForEach(outer, len(nodes), func(i int) {
			j := nodes[i]
			if relation.SemijoinInPlacePar(st.rels[j], st.rels[st.tree.Parent[j]], inner).Empty() {
				empty.Store(true)
			}
		})
		if empty.Load() {
			return true
		}
	}
	return false
}

// projSchema returns Z_j = (vars(P_j) ∩ vars(P_u)) ∪ (head vars in the
// subtree of j) — the columns node j must hand its parent u.
func (st *state) projSchema(j, u int) relation.Schema {
	proj := st.rels[j].Schema().Intersect(st.rels[u].Schema())
	for v := range st.subtreeVars[j] {
		if st.headVars[v] {
			a := relation.Attr(v)
			if !proj.Has(a) && st.rels[j].Schema().Has(a) {
				proj = append(proj, a)
			}
		}
	}
	return proj
}

// joinProject performs the upward join pass, carrying only join attributes
// and head variables, and returns π_Z(⋈ all) over the head variables. With
// workers > 1 the independent parents of each level absorb their subtrees
// concurrently (same answer set; row order may differ from serial).
func (st *state) joinProject() *relation.Relation {
	if st.workers <= 1 {
		for _, j := range st.tree.Order {
			u := st.tree.Parent[j]
			if u < 0 {
				continue
			}
			st.rels[u] = relation.NaturalJoin(st.rels[u], relation.Project(st.rels[j], st.projSchema(j, u)))
		}
	} else {
		lv := st.levels()
		for d := len(lv) - 2; d >= 0; d-- {
			var parents []int
			for _, u := range lv[d] {
				if len(st.tree.Children[u]) > 0 {
					parents = append(parents, u)
				}
			}
			if len(parents) == 0 {
				continue
			}
			outer, inner := parallel.Split(st.workers, len(parents))
			parallel.ForEach(outer, len(parents), func(i int) {
				u := parents[i]
				for _, c := range st.tree.Children[u] {
					st.rels[u] = relation.NaturalJoinPar(st.rels[u], relation.Project(st.rels[c], st.projSchema(c, u)), inner)
				}
			})
		}
	}
	root := st.tree.Roots[0]
	zs := make(relation.Schema, 0, len(st.headVars))
	for v := range st.headVars {
		zs = append(zs, relation.Attr(v))
	}
	// Sort for determinism.
	for i := 0; i < len(zs); i++ {
		for j := i + 1; j < len(zs); j++ {
			if zs[j] < zs[i] {
				zs[i], zs[j] = zs[j], zs[i]
			}
		}
	}
	return relation.Project(st.rels[root], zs)
}

// headTuples maps the head-variable relation pstar onto the positional head
// tuple layout {τ(t₀) | τ ∈ P*}.
func headTuples(q *query.CQ, pstar *relation.Relation) *relation.Relation {
	out := query.NewTable(len(q.Head))
	if len(q.Head) == 0 {
		if pstar.Bool() {
			out.Append()
		}
		return out
	}
	pos := make([]int, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar {
			pos[i] = pstar.Pos(relation.Attr(t.Var))
		} else {
			pos[i] = -1
		}
	}
	tuple := make([]relation.Value, len(q.Head))
	for r := 0; r < pstar.Len(); r++ {
		row := pstar.Row(r)
		for i, t := range q.Head {
			if pos[i] >= 0 {
				tuple[i] = row[pos[i]]
			} else {
				tuple[i] = t.Const
			}
		}
		out.Append(tuple...)
	}
	return out.Dedup()
}
