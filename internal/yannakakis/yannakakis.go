// Package yannakakis evaluates acyclic conjunctive queries by Yannakakis'
// algorithm ([18] in the paper): reduce each atom to S_j = π σ (R), build a
// join tree, run the full reducer (bottom-up then top-down semijoins) to
// eliminate dangling tuples, and finally join bottom-up while projecting
// onto the head variables — time polynomial in input + output. Theorem 2's
// engine (internal/core) generalizes this pass structure with hashed color
// columns; this package is both a standalone engine and the I₁ = ∅ fast
// path.
//
// The tree-driven passes are exported as Tree, which runs over
// caller-supplied relations rather than query atoms: the decomposition
// engine (internal/decomp) hands it materialized bag relations on a bag
// tree, so the acyclic and bounded-width engines share one full-reducer and
// join-project implementation.
package yannakakis

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"pyquery/internal/eval"
	"pyquery/internal/governor"
	"pyquery/internal/hypergraph"
	"pyquery/internal/parallel"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// ErrCyclic is returned when the query hypergraph is not α-acyclic.
var ErrCyclic = errors.New("yannakakis: query hypergraph is cyclic")

// Options controls the evaluator.
type Options struct {
	// NoFullReducer skips the semijoin passes (ablation A2). Results are
	// identical; intermediate join sizes may blow up.
	NoFullReducer bool
	// Parallelism is the worker count. Each semijoin/join pass processes
	// the join tree level by level; the independent subtree reductions of a
	// level run across workers, and leftover budget flows into the
	// partitioned semijoin/join kernel. 0 means GOMAXPROCS; 1 is the serial
	// evaluator (byte-identical output to previous releases). Parallel runs
	// produce the same answer set; only row order may differ.
	Parallelism int
}

// IsAcyclic reports whether the hypergraph of the query's relational atoms
// is α-acyclic (≠/comparison atoms are ignored, per Section 5's definition
// of acyclic queries with inequalities).
func IsAcyclic(q *query.CQ) bool {
	h, _ := plan.AtomHypergraph(q)
	_, ok := h.JoinForest()
	return ok
}

// Evaluate computes Q(d) for an acyclic pure conjunctive query (no ≠, no
// comparisons — those belong to the Theorem 2 engine). The result uses the
// positional schema 0…len(head)−1.
func Evaluate(q *query.CQ, db *query.DB) (*relation.Relation, error) {
	return EvaluateOpts(q, db, Options{})
}

// EvaluateOpts is Evaluate with explicit options.
func EvaluateOpts(q *query.CQ, db *query.DB, opts Options) (*relation.Relation, error) {
	t, err := prepare(q, db)
	if err != nil {
		return nil, err
	}
	if t == nil { // trivially empty
		return query.NewTable(len(q.Head)), nil
	}
	t.Workers = parallel.Workers(opts.Parallelism)
	if !opts.NoFullReducer {
		if empty := t.FullReduce(); empty {
			return query.NewTable(len(q.Head)), nil
		}
	}
	pstar := t.JoinProject()
	return HeadTuples(q, pstar), nil
}

// EvaluateBool decides Q(d) ≠ ∅ for an acyclic pure conjunctive query using
// only the bottom-up semijoin pass — the O(n·q) decision procedure.
func EvaluateBool(q *query.CQ, db *query.DB) (bool, error) {
	return EvaluateBoolOpts(q, db, Options{})
}

// EvaluateBoolOpts is EvaluateBool with explicit options.
func EvaluateBoolOpts(q *query.CQ, db *query.DB, opts Options) (bool, error) {
	t, err := prepare(q, db)
	if err != nil {
		return false, err
	}
	if t == nil {
		return false, nil
	}
	t.Workers = parallel.Workers(opts.Parallelism)
	return !t.BottomUpSemijoin(), nil
}

// Tree is the shared pass state: relations arranged on a single-rooted join
// tree. The acyclic engine builds one from the query's reduced atoms; the
// decomposition engine (internal/decomp) builds one from materialized bag
// relations. The caller owns Rels for the duration of a run — the semijoin
// passes filter them in place.
type Tree struct {
	// Forest is the join tree (link a multi-component forest with
	// Forest.JoinTree first; the join pass starts at Roots[0]).
	Forest *hypergraph.Forest
	// Rels[j] is the current P_j relation of tree node j (schema keyed by
	// variable ids as attributes).
	Rels []*relation.Relation
	// SubtreeVars[j] is at(T[j]): the variables appearing in j's subtree.
	SubtreeVars []map[query.Var]bool
	// HeadVars are the variables the final projection keeps.
	HeadVars map[query.Var]bool
	// Workers is the parallelism budget for the passes (1 = serial).
	Workers int
	// Ctx, when cancelable, makes the passes bail out between semijoin/join
	// steps; a caller that set it must treat the result as garbage once
	// Ctx.Err() is non-nil (the facade's prepared layer does).
	Ctx context.Context
	// Meter, when non-nil, is the execution's resource governor: every pass
	// boundary that polls Ctx becomes a typed checkpoint, and each freshly
	// materialized pass relation is charged against the row/byte budget. A
	// trip makes the passes bail out like a cancellation; the caller reads
	// the typed error from Meter.Err and must then discard the result.
	Meter *governor.Meter
	// sels[j], once a pass has run, is node j's current selection vector:
	// the surviving row ids of Rels[j], in ascending order. nil means "all
	// rows". The semijoin passes only ever narrow sels — Rels is never
	// mutated — and JoinProject materializes each node at most once, so a
	// Fork of a frozen prepared template shares the template's relations
	// safely by construction.
	sels [][]int32
}

// Compile validates, reduces atoms, and freezes the planned join tree for
// repeated execution: the prepared layer forks the returned template per
// execution, so the reduction scans and the tree construction are paid
// once. trivial is true when some atom reduced to the empty relation (the
// answer is empty for every execution until the database changes) — the
// tree is nil in that case.
func Compile(q *query.CQ, db *query.DB) (t *Tree, trivial bool, err error) {
	t, err = prepare(q, db)
	if err != nil {
		return nil, false, err
	}
	if t == nil {
		return nil, true, nil
	}
	return t, false, nil
}

// Fork returns an execution view of a frozen template: the tree shape and
// relation pointers are shared, but every pass that would filter a relation
// in place builds a new one instead, leaving the template intact for the
// next execution (and for concurrent ones — a template is read-only, each
// Fork is owned by its execution).
func (t *Tree) Fork() *Tree {
	ft := *t
	ft.Rels = append([]*relation.Relation(nil), t.Rels...)
	ft.sels = nil
	return &ft
}

// canceled reports whether the tree's context has been canceled.
func (t *Tree) canceled() bool { return t.Ctx != nil && t.Ctx.Err() != nil }

// stopped is the pass-boundary checkpoint: the governed check (typed trips,
// fault hook, ctx classification) when a meter is threaded, the plain ctx
// poll otherwise. True means abandon the pass; the caller reads the typed
// error from the meter (or the context) afterwards.
func (t *Tree) stopped(step string) bool {
	if t.Meter != nil {
		return t.Meter.Check(step) != nil
	}
	return t.canceled()
}

// tripped is the cheap worker-side poll (one atomic load, no checkpoint
// accounting) used inside parallel levels.
func (t *Tree) tripped() bool {
	if t.Meter != nil && t.Meter.Tripped() {
		return true
	}
	return t.canceled()
}

// charge bills a freshly materialized pass relation to the meter at its
// actual encoded size (4 bytes per narrow cell, 8 per wide). A trip here
// flips the stop flag; the pass notices at its next checkpoint.
func (t *Tree) charge(r *relation.Relation, step string) {
	if t.Meter != nil {
		t.Meter.Charge(int64(r.Len()), r.Bytes(), step)
	}
}

// ensureSels sizes the per-node selection-vector state before a pass.
func (t *Tree) ensureSels() {
	if t.sels == nil {
		t.sels = make([][]int32, len(t.Rels))
	}
}

// semijoinNode filters node dst by node src with the given worker budget
// and reports whether dst became empty. Nothing is materialized: the
// result is dst's narrowed selection vector over its frozen relation, and
// the meter is charged the vector's actual bytes (4 per surviving row id).
func (t *Tree) semijoinNode(dst, src, workers int) bool {
	sel := relation.SemijoinSelPar(t.Rels[dst], t.sels[dst], t.Rels[src], t.sels[src], workers)
	t.sels[dst] = sel
	if t.Meter != nil {
		t.Meter.Charge(int64(len(sel)), 4*int64(len(sel)), "semijoin")
	}
	return len(sel) == 0
}

// cur returns node j's current relation — Rels[j] narrowed by its
// selection vector, materialized if a pass has filtered it. The
// materialization is recorded so it happens at most once per node.
func (t *Tree) cur(j int) *relation.Relation {
	if t.sels == nil || t.sels[j] == nil {
		return t.Rels[j]
	}
	if len(t.sels[j]) != t.Rels[j].Len() {
		t.Rels[j] = t.Rels[j].Gather(t.sels[j])
	}
	t.sels[j] = nil
	return t.Rels[j]
}

// prepare validates, reduces atoms, and builds the join tree. It returns
// (nil, nil) when some atom reduces to the empty relation (the answer is
// trivially empty) and an error for cyclic or malformed queries.
func prepare(q *query.CQ, db *query.DB) (*Tree, error) {
	if len(q.Ineqs) > 0 || len(q.Cmps) > 0 {
		return nil, fmt.Errorf("yannakakis: query has ≠/comparison atoms; use the core engine")
	}
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	if len(q.Atoms) == 0 {
		// No atoms: the head is all constants; treat as single-node tree of
		// the 0-ary true relation.
		h := hypergraph.New(0, [][]int{{}})
		f, _ := h.JoinForest()
		return &Tree{Forest: f.JoinTree(),
			Rels:        []*relation.Relation{relation.NewBool(true)},
			SubtreeVars: []map[query.Var]bool{{}},
			HeadVars:    map[query.Var]bool{}}, nil
	}

	h, backTo := plan.AtomHypergraph(q)
	forest, ok := h.JoinForest()
	if !ok {
		return nil, ErrCyclic
	}

	rels := make([]*relation.Relation, len(q.Atoms))
	inputs := make([]plan.Input, len(q.Atoms))
	for i, a := range q.Atoms {
		s, vars := eval.ReduceAtom(a, db)
		if s.Empty() {
			return nil, nil
		}
		rels[i] = s
		inputs[i] = plan.Input{Label: a.Rel, Rows: s.Len(), Vars: vars}
	}

	// Weight the join tree by the reduced cardinalities: the planner roots
	// each component at its largest relation (so the full reducer shrinks it
	// and every merge probes rather than rebuilds it) and schedules the
	// semijoin/join passes most-selective-child-first.
	tree := plan.OrderForest(forest, inputs).JoinTree()

	// Subtree variable sets, translated back from vertex ids to Vars.
	subtreeVerts := h.SubtreeVertices(tree)
	subtreeVars := make([]map[query.Var]bool, len(subtreeVerts))
	for j, set := range subtreeVerts {
		m := make(map[query.Var]bool, len(set))
		for vert := range set {
			m[backTo[vert]] = true
		}
		subtreeVars[j] = m
	}

	headVars := make(map[query.Var]bool)
	for _, v := range q.HeadVars() {
		headVars[v] = true
	}
	return &Tree{Forest: tree, Rels: rels, SubtreeVars: subtreeVars, HeadVars: headVars}, nil
}

// levels groups the tree's nodes by depth (roots at level 0), each level in
// ascending node order. Nodes at the same level root disjoint subtrees, so
// per-node pass work within a level is independent — the unit the parallel
// passes fan out over.
func (t *Tree) levels() [][]int {
	depth := make([]int, len(t.Forest.Parent))
	maxd := 0
	// Reverse bottom-up order visits parents before children.
	for i := len(t.Forest.Order) - 1; i >= 0; i-- {
		j := t.Forest.Order[i]
		if u := t.Forest.Parent[j]; u >= 0 {
			depth[j] = depth[u] + 1
		}
		if depth[j] > maxd {
			maxd = depth[j]
		}
	}
	lv := make([][]int, maxd+1)
	for j, d := range depth {
		lv[d] = append(lv[d], j)
	}
	return lv
}

// BottomUpSemijoin runs the upward semijoin pass (children filter parents);
// it returns true if some relation became empty (the query is false). The
// pass relations are private to the evaluation, so each semijoin filters in
// place instead of rebuilding a relation per pass. With Workers > 1 the
// pass walks the tree level by level, deepest parents first: every parent
// of a level absorbs its children independently of the level's other
// parents, so they run across workers.
func (t *Tree) BottomUpSemijoin() bool {
	t.ensureSels()
	if t.Workers <= 1 {
		for _, j := range t.Forest.Order {
			if t.stopped("bottomup-semijoin") {
				return false
			}
			u := t.Forest.Parent[j]
			if u < 0 {
				continue
			}
			if t.semijoinNode(u, j, 1) {
				return true
			}
		}
		return false
	}
	lv := t.levels()
	var empty atomic.Bool
	for d := len(lv) - 2; d >= 0; d-- {
		if t.stopped("bottomup-semijoin") {
			return false
		}
		var parents []int
		for _, u := range lv[d] {
			if len(t.Forest.Children[u]) > 0 {
				parents = append(parents, u)
			}
		}
		if len(parents) == 0 {
			continue
		}
		outer, inner := parallel.Split(t.Workers, len(parents))
		parallel.ForEach(outer, len(parents), func(i int) {
			u := parents[i]
			for _, c := range t.Forest.Children[u] {
				if t.tripped() {
					return
				}
				if t.semijoinNode(u, c, inner) {
					empty.Store(true)
					return
				}
			}
		})
		if empty.Load() {
			return true
		}
	}
	return false
}

// FullReduce runs the full reducer: bottom-up semijoins, then top-down
// semijoins, leaving the relations globally consistent (every remaining
// tuple participates in some full join result).
func (t *Tree) FullReduce() bool {
	if t.BottomUpSemijoin() {
		return true
	}
	if t.Workers <= 1 {
		// Top-down: parents filter children, in reverse bottom-up order.
		for i := len(t.Forest.Order) - 1; i >= 0; i-- {
			if t.stopped("topdown-semijoin") {
				return false
			}
			j := t.Forest.Order[i]
			u := t.Forest.Parent[j]
			if u < 0 {
				continue
			}
			if t.semijoinNode(j, u, 1) {
				return true
			}
		}
		return false
	}
	// Top-down by levels: each node of a level is filtered by its (already
	// fully filtered) parent; the nodes mutate disjoint relations and only
	// read their parents, so a level runs across workers.
	lv := t.levels()
	var empty atomic.Bool
	for d := 1; d < len(lv); d++ {
		if t.stopped("topdown-semijoin") {
			return false
		}
		nodes := lv[d]
		outer, inner := parallel.Split(t.Workers, len(nodes))
		parallel.ForEach(outer, len(nodes), func(i int) {
			j := nodes[i]
			if t.tripped() {
				return
			}
			if t.semijoinNode(j, t.Forest.Parent[j], inner) {
				empty.Store(true)
			}
		})
		if empty.Load() {
			return true
		}
	}
	return false
}

// projSchema returns Z_j = (vars(P_j) ∩ vars(P_u)) ∪ (head vars in the
// subtree of j) — the columns node j must hand its parent u.
func (t *Tree) projSchema(j, u int) relation.Schema {
	proj := t.Rels[j].Schema().Intersect(t.Rels[u].Schema())
	for v := range t.SubtreeVars[j] {
		if t.HeadVars[v] {
			a := relation.Attr(v)
			if !proj.Has(a) && t.Rels[j].Schema().Has(a) {
				proj = append(proj, a)
			}
		}
	}
	return proj
}

// JoinProject performs the upward join pass, carrying only join attributes
// and head variables, and returns π_Z(⋈ all) over the head variables. With
// Workers > 1 the independent parents of each level absorb their subtrees
// concurrently (same answer set; row order may differ from serial).
//
// A governed run that trips (or a canceled context) makes the pass bail
// between joins, leaving the tree partially joined — the root may not even
// carry the head attributes yet — so JoinProject returns nil in that case
// and the caller must read the typed error from the meter (or context)
// instead of using the result.
func (t *Tree) JoinProject() *relation.Relation {
	t.ensureSels()
	if t.Workers <= 1 {
		for _, j := range t.Forest.Order {
			if t.stopped("join-project") {
				break
			}
			u := t.Forest.Parent[j]
			if u < 0 {
				continue
			}
			t.Rels[u] = relation.NaturalJoin(t.cur(u), relation.Project(t.cur(j), t.projSchema(j, u)))
			t.sels[u] = nil
			t.charge(t.Rels[u], "join-project")
		}
	} else {
		lv := t.levels()
		for d := len(lv) - 2; d >= 0 && !t.stopped("join-project"); d-- {
			var parents []int
			for _, u := range lv[d] {
				if len(t.Forest.Children[u]) > 0 {
					parents = append(parents, u)
				}
			}
			if len(parents) == 0 {
				continue
			}
			outer, inner := parallel.Split(t.Workers, len(parents))
			parallel.ForEach(outer, len(parents), func(i int) {
				u := parents[i]
				for _, c := range t.Forest.Children[u] {
					if t.tripped() {
						return
					}
					t.Rels[u] = relation.NaturalJoinPar(t.cur(u), relation.Project(t.cur(c), t.projSchema(c, u)), inner)
					t.sels[u] = nil
					t.charge(t.Rels[u], "join-project")
				}
			})
		}
	}
	if t.tripped() {
		return nil
	}
	root := t.Forest.Roots[0]
	t.Rels[root] = t.cur(root)
	zs := make(relation.Schema, 0, len(t.HeadVars))
	for v := range t.HeadVars {
		zs = append(zs, relation.Attr(v))
	}
	// Sort for determinism.
	for i := 0; i < len(zs); i++ {
		for j := i + 1; j < len(zs); j++ {
			if zs[j] < zs[i] {
				zs[i], zs[j] = zs[j], zs[i]
			}
		}
	}
	return relation.Project(t.Rels[root], zs)
}

// HeadTuples maps the head-variable relation pstar onto the positional head
// tuple layout {τ(t₀) | τ ∈ P*}.
func HeadTuples(q *query.CQ, pstar *relation.Relation) *relation.Relation {
	out := query.NewTable(len(q.Head))
	if len(q.Head) == 0 {
		if pstar.Bool() {
			out.Append()
		}
		return out
	}
	pos := make([]int, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar {
			pos[i] = pstar.Pos(relation.Attr(t.Var))
		} else {
			pos[i] = -1
		}
	}
	tuple := make([]relation.Value, len(q.Head))
	for r := 0; r < pstar.Len(); r++ {
		for i, t := range q.Head {
			if pos[i] >= 0 {
				tuple[i] = pstar.At(pos[i], r)
			} else {
				tuple[i] = t.Const
			}
		}
		out.Append(tuple...)
	}
	return out.Dedup()
}
