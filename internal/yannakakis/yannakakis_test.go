package yannakakis

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pyquery/internal/eval"
	"pyquery/internal/governor"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

func pathDB() *query.DB {
	db := query.NewDB()
	db.Set("E", query.Table(2,
		[]relation.Value{0, 1}, []relation.Value{1, 2},
		[]relation.Value{2, 3}, []relation.Value{1, 4}))
	return db
}

func TestEvaluatePathQuery(t *testing.T) {
	q := &query.CQ{
		Head: []query.Term{query.V(0), query.V(2)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(2)),
		},
	}
	got, err := Evaluate(q, pathDB())
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.Conjunctive(q, pathDB())
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(got, want) {
		t.Fatalf("yannakakis %v != backtracking %v", got, want)
	}
	ok, err := EvaluateBool(q, pathDB())
	if err != nil || ok != want.Bool() {
		t.Fatalf("EvaluateBool = %v %v", ok, err)
	}
}

func TestCyclicQueryRejected(t *testing.T) {
	q := &query.CQ{
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(2)),
			query.NewAtom("E", query.V(2), query.V(0)),
		},
	}
	if IsAcyclic(q) {
		t.Fatal("triangle query is cyclic")
	}
	if _, err := Evaluate(q, pathDB()); !errors.Is(err, ErrCyclic) {
		t.Fatalf("want ErrCyclic, got %v", err)
	}
	if _, err := EvaluateBool(q, pathDB()); !errors.Is(err, ErrCyclic) {
		t.Fatalf("want ErrCyclic, got %v", err)
	}
}

func TestIneqAtomsRejected(t *testing.T) {
	q := &query.CQ{
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))},
		Ineqs: []query.Ineq{query.NeqVars(0, 1)},
	}
	if _, err := Evaluate(q, pathDB()); err == nil {
		t.Fatal("≠ atoms must be rejected here (core engine's job)")
	}
}

func TestNoAtomsQuery(t *testing.T) {
	q := &query.CQ{Head: []query.Term{query.C(9), query.C(8)}}
	got, err := Evaluate(q, pathDB())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Row(0)[0] != 9 || got.Row(0)[1] != 8 {
		t.Fatalf("constant head = %v", got)
	}
	ok, err := EvaluateBool(&query.CQ{}, pathDB())
	if err != nil || !ok {
		t.Fatalf("empty boolean query is true: %v %v", ok, err)
	}
}

func TestEmptyAtomShortCircuit(t *testing.T) {
	db := pathDB()
	db.Set("Z", query.NewTable(1))
	q := &query.CQ{
		Head:  []query.Term{query.V(0)},
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1)), query.NewAtom("Z", query.V(0))},
	}
	got, err := Evaluate(q, db)
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty atom must empty the answer: %v %v", got, err)
	}
}

func TestDisconnectedQueryCrossProduct(t *testing.T) {
	db := query.NewDB()
	db.Set("A", query.Table(1, []relation.Value{1}, []relation.Value{2}))
	db.Set("B", query.Table(1, []relation.Value{7}))
	q := &query.CQ{
		Head:  []query.Term{query.V(0), query.V(1)},
		Atoms: []query.Atom{query.NewAtom("A", query.V(0)), query.NewAtom("B", query.V(1))},
	}
	got, err := Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("cross product size = %d, want 2", got.Len())
	}
}

func TestBooleanHeadAndGroundAtoms(t *testing.T) {
	db := pathDB()
	q := &query.CQ{
		Atoms: []query.Atom{
			query.NewAtom("E", query.C(0), query.C(1)), // ground, true
			query.NewAtom("E", query.V(0), query.V(1)),
		},
	}
	got, err := Evaluate(q, db)
	if err != nil || !got.Bool() {
		t.Fatalf("boolean query with ground atom: %v %v", got, err)
	}
	qf := &query.CQ{Atoms: []query.Atom{query.NewAtom("E", query.C(3), query.C(0))}}
	got, err = Evaluate(qf, db)
	if err != nil || got.Bool() {
		t.Fatalf("false ground atom: %v %v", got, err)
	}
}

func TestStarQueryWithRepeatedRelation(t *testing.T) {
	db := pathDB()
	// G(x0) :- E(x0,x1), E(x0,x2), E(x0,x3): out-degree ≥ 1 center (star).
	q := &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(0), query.V(2)),
			query.NewAtom("E", query.V(0), query.V(3)),
		},
	}
	got, err := Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := eval.Conjunctive(q, db)
	if !relation.EqualSet(got, want) {
		t.Fatalf("star query: %v vs %v", got, want)
	}
}

// randAcyclicInstance builds an acyclic CQ by ear construction: each atom
// shares variables only with its parent atom, which keeps the hypergraph
// α-acyclic by construction.
func randAcyclicInstance(rnd *rand.Rand) (*query.CQ, *query.DB) {
	db := query.NewDB()
	domain := 2 + rnd.Intn(4)
	nAtoms := 1 + rnd.Intn(4)

	q := &query.CQ{}
	nextVar := query.Var(0)
	atomVars := make([][]query.Var, 0, nAtoms)
	for i := 0; i < nAtoms; i++ {
		var vars []query.Var
		if i > 0 {
			parent := atomVars[rnd.Intn(len(atomVars))]
			// Share a random subset of the parent's vars.
			for _, v := range parent {
				if rnd.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
		}
		fresh := 1 + rnd.Intn(2)
		for f := 0; f < fresh; f++ {
			vars = append(vars, nextVar)
			nextVar++
		}
		atomVars = append(atomVars, vars)
	}
	for i, vars := range atomVars {
		name := string(rune('A' + i))
		arity := len(vars)
		r := query.NewTable(arity)
		rows := 1 + rnd.Intn(10)
		row := make([]relation.Value, arity)
		for j := 0; j < rows; j++ {
			for c := range row {
				row[c] = relation.Value(rnd.Intn(domain))
			}
			r.Append(row...)
		}
		r.Dedup()
		db.Set(name, r)
		args := make([]query.Term, arity)
		for j, v := range vars {
			args[j] = query.V(v)
		}
		q.Atoms = append(q.Atoms, query.Atom{Rel: name, Args: args})
	}
	// Head: random subset of variables (possibly empty → boolean).
	all := q.BodyVars()
	for _, v := range all {
		if rnd.Intn(3) == 0 {
			q.Head = append(q.Head, query.V(v))
		}
	}
	return q, db
}

// Property: Yannakakis (with and without the full reducer) agrees with the
// brute-force oracle on random acyclic instances.
func TestQuickAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, db := randAcyclicInstance(rnd)
		if !IsAcyclic(q) {
			t.Logf("seed %d: generator produced cyclic query %v", seed, q)
			return false
		}
		want, err := eval.ConjunctiveBrute(q, db)
		if err != nil {
			return true
		}
		got, err := Evaluate(q, db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !relation.EqualSet(got, want) {
			t.Logf("seed %d: mismatch on %v:\n got %v\nwant %v", seed, q, got, want)
			return false
		}
		noRed, err := EvaluateOpts(q, db, Options{NoFullReducer: true})
		if err != nil || !relation.EqualSet(noRed, want) {
			t.Logf("seed %d: NoFullReducer mismatch", seed)
			return false
		}
		ok, err := EvaluateBool(q, db)
		if err != nil || ok != want.Bool() {
			t.Logf("seed %d: bool mismatch (%v vs %v)", seed, ok, want.Bool())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestJoinProjectNilBail pins the documented contract of the upward pass: a
// canceled context or a tripped meter makes JoinProject return nil (the tree
// is left partially joined, so any relation it could return would be
// garbage), in both the serial and the level-parallel variants, and the
// typed cause is readable from the context / meter afterwards.
func TestJoinProjectNilBail(t *testing.T) {
	q := &query.CQ{
		Head: []query.Term{query.V(0), query.V(2)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(2)),
		},
	}
	compile := func() *Tree {
		t.Helper()
		tr, trivial, err := Compile(q, pathDB())
		if err != nil || trivial {
			t.Fatalf("Compile: trivial=%v err=%v", trivial, err)
		}
		return tr.Fork()
	}

	// Control: an undisturbed pass returns the head-variable relation.
	ft := compile()
	ft.Workers = 1
	if pstar := ft.JoinProject(); pstar == nil || pstar.Empty() {
		t.Fatalf("control JoinProject = %v, want non-empty relation", pstar)
	}

	// Canceled context: both the serial walk and the level-parallel walk
	// must bail and return nil.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 3} {
		ft := compile()
		ft.Workers = workers
		ft.Ctx = canceled
		if pstar := ft.JoinProject(); pstar != nil {
			t.Fatalf("workers=%d: JoinProject under canceled ctx = %v, want nil", workers, pstar)
		}
		if ft.Ctx.Err() == nil {
			t.Fatalf("workers=%d: canceled ctx lost its error", workers)
		}
	}

	// Tripped meter: a 1-row budget trips on the first join-project charge;
	// the pass must return nil and the meter must carry the typed cause.
	for _, workers := range []int{1, 3} {
		ft := compile()
		ft.Workers = workers
		ft.Meter = governor.New(context.Background(), "yannakakis", 1, 1<<40)
		if pstar := ft.JoinProject(); pstar != nil {
			t.Fatalf("workers=%d: JoinProject under tripped meter = %v, want nil", workers, pstar)
		}
		if err := ft.Meter.Err(); !errors.Is(err, governor.ErrRowLimit) {
			t.Fatalf("workers=%d: meter error = %v, want ErrRowLimit", workers, err)
		}
	}
}
