package ivm

import "pyquery/internal/relation"

// The delta arena recycles the short-lived ± delta relations a refresh
// builds and drops: reduceDelta materializes one plus/minus pair per atom
// occurrence per Refresh, and since the columnar substrate (PR 9) each
// relation.New pays a schema clone plus per-column slice construction —
// which for the common single-row update costs more than the delta join
// itself (the BENCH_9 E11_Refresh note: ~0.80x, +13 allocs/op). Refreshes
// are serialized by the prepared layer and the pairs never escape one
// Refresh call (runRule reads them, fold copies out of them), so each atom
// occurrence can own a cleared, capacity-retaining scratch pair instead.
const (
	// arenaMaxWidth bounds which schemas the arena serves: delta relations
	// wider than this allocate fresh (reduced atoms that wide are rare and
	// their scratch would pin proportionally more capacity).
	arenaMaxWidth = 4
	// arenaMaxRows drops a scratch relation that just carried a large delta
	// so one bulk update cannot pin its capacity for the rest of the
	// maintainer's life.
	arenaMaxRows = 1024
)

// deltaArena hands out per-atom-occurrence scratch pairs. It is owned by
// one Maint and inherits its no-concurrent-use contract.
type deltaArena struct {
	pairs []deltaPair
}

type deltaPair struct{ plus, minus *relation.Relation }

// pair returns cleared plus/minus scratch relations for atom occurrence i
// over schema, recycling the previous refresh's pair when the width is
// arena-eligible and the schema still matches (a rebuild can change the
// reduced schema; mismatches simply reallocate).
func (a *deltaArena) pair(i int, schema relation.Schema) (plus, minus *relation.Relation) {
	if len(schema) > arenaMaxWidth {
		return relation.New(schema), relation.New(schema)
	}
	for len(a.pairs) <= i {
		a.pairs = append(a.pairs, deltaPair{})
	}
	p := &a.pairs[i]
	if p.plus == nil || !p.plus.Schema().Equal(schema) {
		p.plus = relation.New(schema)
		p.minus = relation.New(schema)
	}
	return p.plus.Clear(), p.minus.Clear()
}

// release retires scratch that just carried an oversized delta. Call after
// the refresh is done with occurrence i's pair.
func (a *deltaArena) release(i int) {
	if i >= len(a.pairs) {
		return
	}
	p := &a.pairs[i]
	if p.plus != nil && (p.plus.Len() > arenaMaxRows || p.minus.Len() > arenaMaxRows) {
		p.plus, p.minus = nil, nil
	}
}
