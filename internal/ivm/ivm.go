// Package ivm maintains the materialized result of a conjunctive query
// incrementally: instead of re-executing the join when base relations
// change, it consumes the database changelog (query.DeltasSince) and
// applies the classic counting delta rules. For a view R1 ⋈ … ⋈ Rk and a
// batch of per-relation deltas, one rule per atom occurrence i joins
// atom i's delta against the other k−1 atoms — occurrences before i
// already folded to their new state, occurrences from i on still old —
// which telescopes to the exact change of the join under ℤ-multiset
// semantics. A per-result-tuple derivation count turns multiset changes
// into set-level membership changes: a tuple enters the view when its
// count rises above zero and leaves when it returns to zero.
//
// The deltas the rules consume are exact at the reduced-atom level:
// ReduceAtom's projection is injective on the selected tuples (dropped
// columns are constants or copies of a kept column), so a base-tuple
// insert or delete maps to exactly one reduced-tuple insert or delete.
//
// Refreshes are priced with the planner's selectivity model
// (plan.Maintenance): when the accumulated delta volume times the
// per-tuple rule cost exceeds the estimated cost of re-executing from
// scratch — or when the changelog has a gap or a wholesale Set — the
// maintainer rebuilds and diffs against the last reported result, so
// callers always see correct deltas regardless of the path taken.
package ivm

import (
	"context"
	"errors"
	"sync/atomic"

	"pyquery/internal/eval"
	"pyquery/internal/governor"
	"pyquery/internal/parallel"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/stats"
)

// ErrNotMaintainable marks query shapes the delta rules cannot maintain —
// currently queries with no relational atoms (their result is constant)
// and queries with unbound parameters. Callers fall back to re-execution.
var ErrNotMaintainable = errors.New("ivm: query not incrementally maintainable")

// parallelThreshold is the delta size below which a rule runs serially —
// fan-out bookkeeping costs more than it saves on tiny deltas.
const parallelThreshold = 64

// chargeBatch matches the engines' batched governor accounting: workers
// charge the meter every chargeBatch enumerated assignments.
const chargeBatch = 64

// Maint incrementally maintains one query's materialized result against
// one database. It is not safe for concurrent use; the prepared layer
// serializes refreshes.
type Maint struct {
	q  *query.CQ
	db *query.DB

	names  map[string]bool
	slotOf map[query.Var]int
	nslots int
	width  int

	headSlots  []int // per head position: assignment slot, or −1 for a constant
	headConsts []relation.Value
	ineqs      []ineqCheck
	cmps       []cmpCheck

	atoms []*atomState
	arena deltaArena // recycled per-atom delta scratch (arena.go)

	// Per-refresh scratch recycled across calls (Maint is single-threaded):
	// net-delta counters keyed by relation, the touched set, the ± relation
	// pointer slices, the compiled rule steps (invalidated by rebuild), and
	// the serial rule-runner. All oversized pieces are dropped after a bulk
	// batch so one large delta cannot pin capacity (see arenaMaxRows).
	net      map[string]*relation.TupleCounter
	netBuf   []relation.Value
	touched  *relation.TupleCounter
	plusBuf  []*relation.Relation
	minusBuf []*relation.Relation
	steps    [][]ruleStep
	serial   *ruleRun

	counts *relation.TupleCounter // result tuple → derivation count
	result *relation.Relation     // last reported result (set)
	resPos *relation.TupleMap     // result tuple → row in result
	price  *plan.MaintPlan        // refresh pricing, recomputed on rebuild

	seq    uint64 // changelog watermark the state is current through
	inited bool
	broken bool // state corrupted by a failed refresh: rebuild next
}

type ineqCheck struct {
	xSlot, ySlot int
	c            relation.Value
	yIsVar       bool
}

type cmpCheck struct {
	lSlot, rSlot   int // −1 for constants
	lConst, rConst relation.Value
	strict         bool
}

// atomState is one atom occurrence's folded reduced relation: an
// append-only row arena with tombstones, a tuple→row map, and growable
// (unfrozen) probe indexes per column set. Rows never move between
// compactions, so index entries stay valid; probes skip tombstoned rows.
type atomState struct {
	atom  query.Atom
	vars  []query.Var
	slots []int // assignment slot per reduced column

	// Precompiled delta-reduction tables (pure functions of the atom,
	// built once at rebuild so reduceDelta allocates nothing per refresh):
	// firstArg[j] is the first arg position holding arg j's variable (−1
	// for constant args), varArg[k] the arg position reduced column k reads.
	firstArg []int
	varArg   []int
	redBuf   []relation.Value // reusable reduced-tuple buffer

	rel  *relation.Relation
	dead []bool
	live int
	loc  *relation.TupleMap
	idx  map[uint64]idxEntry
}

type idxEntry struct {
	ix   *relation.TupleIndex
	cols []int
}

// New builds a maintainer for q over db. The query must be parameter-free
// and have at least one relational atom; otherwise ErrNotMaintainable.
// No state is materialized until the first Refresh.
func New(q *query.CQ, db *query.DB) (*Maint, error) {
	if len(q.Atoms) == 0 {
		return nil, ErrNotMaintainable
	}
	if len(q.Params()) > 0 {
		return nil, ErrNotMaintainable
	}
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	m := &Maint{
		q: q, db: db,
		names:  make(map[string]bool, len(q.Atoms)),
		slotOf: make(map[query.Var]int),
		width:  len(q.Head),
	}
	for _, v := range q.BodyVars() {
		m.slotOf[v] = m.nslots
		m.nslots++
	}
	for _, a := range q.Atoms {
		m.names[a.Rel] = true
	}
	m.headSlots = make([]int, len(q.Head))
	m.headConsts = make([]relation.Value, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar {
			m.headSlots[i] = m.slotOf[t.Var]
		} else {
			m.headSlots[i] = -1
			m.headConsts[i] = t.Const
		}
	}
	for _, iq := range q.Ineqs {
		c := ineqCheck{xSlot: m.slotOf[iq.X], c: iq.C, yIsVar: iq.YIsVar}
		if iq.YIsVar {
			c.ySlot = m.slotOf[iq.Y]
		}
		m.ineqs = append(m.ineqs, c)
	}
	for _, cp := range q.Cmps {
		c := cmpCheck{lSlot: -1, rSlot: -1, strict: cp.Strict}
		if cp.Left.IsVar {
			c.lSlot = m.slotOf[cp.Left.Var]
		} else {
			c.lConst = cp.Left.Const
		}
		if cp.Right.IsVar {
			c.rSlot = m.slotOf[cp.Right.Var]
		} else {
			c.rConst = cp.Right.Const
		}
		m.cmps = append(m.cmps, c)
	}
	return m, nil
}

// Names returns the set of base relations the view depends on.
func (m *Maint) Names() map[string]bool { return m.names }

// Result returns the maintained result as of the last successful Refresh.
// The relation is owned by the maintainer; callers must not modify it.
func (m *Maint) Result() *relation.Relation { return m.result }

// Refresh brings the materialized result up to date with the database and
// returns the exact tuple-level change: tuples that entered and tuples
// that left since the previous successful Refresh. The first call
// materializes the view and returns it wholesale as added. When the
// changelog cannot serve the refresh (gap, wholesale Set) or the priced
// delta volume exceeds re-execution, it transparently rebuilds and diffs.
// workers bounds rule-level parallelism (≤1 means serial); meter may be
// nil for ungoverned refreshes.
func (m *Maint) Refresh(ctx context.Context, meter *governor.Meter, workers int) (added, removed *relation.Relation, err error) {
	if err := meter.Check("refresh"); err != nil {
		return nil, nil, err
	}
	if !m.inited || m.broken {
		return m.rebuild(ctx, meter, workers)
	}
	ds, ok := m.db.DeltasSince(m.seq, m.names)
	if !ok {
		return m.rebuild(ctx, meter, workers)
	}
	newSeq := m.db.Seq()
	if len(ds) == 0 {
		m.seq = newSeq
		return query.NewTable(m.width), query.NewTable(m.width), nil
	}

	// Consolidate the batch into one signed tuple counter per relation,
	// then push each net delta through every dependent atom's selection
	// and projection. Net counts are ±1 (the DB enforces set semantics).
	// The counters are recycled across refreshes; clearing every retained
	// entry up front keeps a previous batch's nets out of this one.
	if m.net == nil {
		m.net = make(map[string]*relation.TupleCounter, len(m.names))
	}
	for rel, c := range m.net {
		if c.Len() > arenaMaxRows {
			delete(m.net, rel)
			continue
		}
		c.Clear()
	}
	net := m.net
	for _, d := range ds {
		c := net[d.Rel]
		if c == nil {
			w := 0
			if d.Added != nil {
				w = d.Added.Width()
			} else {
				w = d.Removed.Width()
			}
			c = relation.NewTupleCounter(w)
			net[d.Rel] = c
		}
		if cap(m.netBuf) < c.Width() {
			m.netBuf = make([]relation.Value, c.Width())
		}
		buf := m.netBuf[:c.Width()]
		if d.Added != nil {
			for i := 0; i < d.Added.Len(); i++ {
				c.Add(d.Added.RowTo(buf, i), 1)
			}
		}
		if d.Removed != nil {
			for i := 0; i < d.Removed.Len(); i++ {
				c.Add(d.Removed.RowTo(buf, i), -1)
			}
		}
	}
	if cap(m.plusBuf) < len(m.atoms) {
		m.plusBuf = make([]*relation.Relation, len(m.atoms))
		m.minusBuf = make([]*relation.Relation, len(m.atoms))
	}
	plus := m.plusBuf[:len(m.atoms)]
	minus := m.minusBuf[:len(m.atoms)]
	deltaVolume := 0.0
	for i, st := range m.atoms {
		plus[i], minus[i] = m.arena.pair(i, st.rel.Schema())
		st.reduceDelta(net[st.atom.Rel], plus[i], minus[i])
		deltaVolume += float64(plus[i].Len()+minus[i].Len()) * m.price.RuleCost[i]
	}
	defer func() {
		for i := range m.atoms {
			m.arena.release(i)
		}
	}()
	if deltaVolume > m.price.ReexecCost {
		return m.rebuild(ctx, meter, workers)
	}

	if m.touched == nil || m.touched.Len() > arenaMaxRows {
		m.touched = relation.NewTupleCounter(m.width)
	} else {
		m.touched.Clear()
	}
	touched := m.touched
	for i := range m.atoms {
		if plus[i].Len() == 0 && minus[i].Len() == 0 {
			continue
		}
		if err := meter.Check("delta-pass"); err != nil {
			m.broken = true
			return nil, nil, err
		}
		steps := m.ruleSteps(i)
		if err := m.runRule(steps, m.atoms[i], minus[i], -1, touched, meter, workers); err != nil {
			m.broken = true
			return nil, nil, err
		}
		if err := m.runRule(steps, m.atoms[i], plus[i], +1, touched, meter, workers); err != nil {
			m.broken = true
			return nil, nil, err
		}
		// Fold the delta into atom i's state: rules for later atoms must
		// see occurrence i at its new contents (the telescoping product
		// rule), and the counts already reflect this delta.
		if !m.atoms[i].fold(plus[i], minus[i]) {
			m.broken = true
			return m.rebuild(ctx, meter, workers)
		}
	}
	if err := meter.Check("finish"); err != nil {
		m.broken = true
		return nil, nil, err
	}

	// Membership changes: a touched tuple is in the view iff its count is
	// positive; reconcile against the reported result.
	added = query.NewTable(m.width)
	removed = query.NewTable(m.width)
	lastBuf := make([]relation.Value, m.width)
	touched.Each(func(row []relation.Value, _ int64) bool {
		want := m.counts.Count(row) > 0
		p, have := m.resPos.Get(row)
		switch {
		case want && !have:
			m.resPos.Set(row, int32(m.result.Len()))
			m.result.Append(row...)
			added.Append(row...)
		case !want && have:
			last := m.result.Len() - 1
			if int(p) != last {
				m.resPos.Set(m.result.RowTo(lastBuf, last), p)
			}
			m.resPos.Delete(row)
			m.result.SwapRemove(int(p))
			removed.Append(row...)
		}
		return true
	})
	m.seq = newSeq
	return added, removed, nil
}

// rebuild rematerializes every atom state and the derivation counts from
// the current database, then diffs the fresh result against the last
// reported one. It is both the first-Refresh initializer and the fallback
// for unpriceable or unserviceable deltas.
func (m *Maint) rebuild(ctx context.Context, meter *governor.Meter, workers int) (added, removed *relation.Relation, err error) {
	m.broken = true // stays set unless the rebuild completes
	seq := m.db.Seq()
	atoms := make([]*atomState, len(m.q.Atoms))
	reduced := 0
	for i, a := range m.q.Atoms {
		rel, vars := eval.ReduceAtom(a, m.db)
		st := &atomState{atom: a, vars: vars, slots: make([]int, len(vars)), idx: make(map[uint64]idxEntry)}
		for k, v := range vars {
			st.slots[k] = m.slotOf[v]
		}
		first := make(map[query.Var]int, len(a.Args))
		st.firstArg = make([]int, len(a.Args))
		for j, t := range a.Args {
			st.firstArg[j] = -1
			if t.IsVar {
				if f, ok := first[t.Var]; ok {
					st.firstArg[j] = f
				} else {
					first[t.Var] = j
					st.firstArg[j] = j
				}
			}
		}
		st.varArg = make([]int, len(vars))
		for k, v := range vars {
			st.varArg[k] = first[v]
		}
		st.rel = rel
		st.live = rel.Len()
		st.dead = make([]bool, rel.Len())
		st.loc = relation.NewTupleMapSized(rel.Width(), rel.Len())
		rowBuf := make([]relation.Value, rel.Width())
		for r := 0; r < rel.Len(); r++ {
			st.loc.Set(rel.RowTo(rowBuf, r), int32(r))
		}
		atoms[i] = st
		reduced += rel.Len()
	}
	if err := meter.Charge(int64(reduced), governor.RelBytes(reduced, m.nslots), "reduce"); err != nil {
		return nil, nil, err
	}
	m.atoms = atoms
	m.steps = nil // compiled against the old atom states
	m.counts = relation.NewTupleCounter(m.width)
	m.price = plan.Maintenance(m.planInputs(), m.q.HeadVars())
	// Initialize the counts by running the last atom's delta rule with its
	// entire reduced relation as the inserted delta: occurrences before it
	// are fully folded and it never probes itself, so every satisfying
	// assignment is counted exactly once. On error the broken flag stays
	// set (the reported result is untouched) and the next Refresh retries
	// the rebuild from scratch.
	last := len(atoms) - 1
	if err := meter.Check("delta-pass"); err != nil {
		return nil, nil, err
	}
	touched := relation.NewTupleCounter(m.width)
	if err := m.runRule(m.ruleSteps(last), atoms[last], atoms[last].rel, +1, touched, meter, workers); err != nil {
		return nil, nil, err
	}
	if err := meter.Check("finish"); err != nil {
		return nil, nil, err
	}
	// Fresh result from the counts, then diff against the reported one.
	result := query.NewTable(m.width)
	pos := relation.NewTupleMap(m.width)
	m.counts.Each(func(row []relation.Value, n int64) bool {
		if n > 0 {
			pos.Set(row, int32(result.Len()))
			result.Append(row...)
		}
		return true
	})
	added = query.NewTable(m.width)
	removed = query.NewTable(m.width)
	diffBuf := make([]relation.Value, m.width)
	for i := 0; i < result.Len(); i++ {
		row := result.RowTo(diffBuf, i)
		if m.resPos == nil {
			added.Append(row...)
			continue
		}
		if _, ok := m.resPos.Get(row); !ok {
			added.Append(row...)
		}
	}
	if m.result != nil {
		for i := 0; i < m.result.Len(); i++ {
			row := m.result.RowTo(diffBuf, i)
			if _, ok := pos.Get(row); !ok {
				removed.Append(row...)
			}
		}
	}
	m.result, m.resPos = result, pos
	m.seq = seq
	m.inited = true
	m.broken = false
	return added, removed, nil
}

// matches applies the atom's selection (constant args agree, repeated
// variables agree) to one base tuple, through the tables precompiled at
// rebuild.
func (s *atomState) matches(row []relation.Value) bool {
	for j, t := range s.atom.Args {
		if fa := s.firstArg[j]; fa >= 0 {
			if row[fa] != row[j] {
				return false
			}
		} else if row[j] != t.Const {
			return false
		}
	}
	return true
}

// reduceDelta maps a signed base-relation delta through the atom's
// selection and projection into the caller's (arena-recycled) plus/minus
// relations. Because the projection is injective on the selected tuples,
// each base change yields at most one reduced change.
func (s *atomState) reduceDelta(net *relation.TupleCounter, plus, minus *relation.Relation) {
	if net == nil {
		return
	}
	if s.redBuf == nil {
		s.redBuf = make([]relation.Value, len(s.vars))
	}
	net.Each(func(row []relation.Value, n int64) bool {
		if n == 0 || !s.matches(row) {
			return true
		}
		for j, fa := range s.varArg {
			s.redBuf[j] = row[fa]
		}
		if n > 0 {
			plus.Append(s.redBuf...)
		} else {
			minus.Append(s.redBuf...)
		}
		return true
	})
}

// fold applies the atom's own delta to its state: removed tuples are
// tombstoned, added tuples appended to the arena and to every cached
// index. It reports false when the delta contradicts the state (a remove
// of an unknown tuple or an add of a present one) — the caller rebuilds.
func (s *atomState) fold(plus, minus *relation.Relation) bool {
	if s.redBuf == nil {
		s.redBuf = make([]relation.Value, s.rel.Width())
	}
	buf := s.redBuf
	for i := 0; i < minus.Len(); i++ {
		row := minus.RowTo(buf, i)
		id, ok := s.loc.Get(row)
		if !ok {
			return false
		}
		s.dead[id] = true
		s.live--
		s.loc.Delete(row)
	}
	for i := 0; i < plus.Len(); i++ {
		row := plus.RowTo(buf, i)
		if _, dup := s.loc.Get(row); dup {
			return false
		}
		id := int32(s.rel.Len())
		s.rel.AppendRowOf(plus, i)
		s.dead = append(s.dead, false)
		s.live++
		s.loc.Set(row, id)
		for _, e := range s.idx {
			e.ix.AddRel(plus, i, e.cols, id)
		}
	}
	s.maybeCompact()
	return true
}

// maybeCompact rebuilds the arena when tombstones dominate, dropping the
// cached indexes (they reference retired row ids).
func (s *atomState) maybeCompact() {
	deadCount := s.rel.Len() - s.live
	if deadCount <= 64 || deadCount <= s.live {
		return
	}
	sel := make([]int32, 0, s.live)
	for i := 0; i < s.rel.Len(); i++ {
		if !s.dead[i] {
			sel = append(sel, int32(i))
		}
	}
	fresh := s.rel.Gather(sel)
	loc := relation.NewTupleMapSized(s.rel.Width(), s.live)
	buf := make([]relation.Value, fresh.Width())
	for i := 0; i < fresh.Len(); i++ {
		loc.Set(fresh.RowTo(buf, i), int32(i))
	}
	s.rel, s.loc = fresh, loc
	s.dead = make([]bool, fresh.Len())
	s.idx = make(map[uint64]idxEntry)
}

// index returns (building if needed) the growable probe index over the
// given column set. Dead rows are skipped at probe time, so indexes never
// need entry removal.
func (s *atomState) index(cols []int) *relation.TupleIndex {
	var mask uint64
	for _, c := range cols {
		mask |= 1 << uint(c)
	}
	if e, ok := s.idx[mask]; ok {
		return e.ix
	}
	ix := relation.NewTupleIndexSized(len(cols), s.live)
	for i := 0; i < s.rel.Len(); i++ {
		if s.dead[i] {
			continue
		}
		ix.AddRel(s.rel, i, cols, int32(i))
	}
	s.idx[mask] = idxEntry{ix: ix, cols: cols}
	return ix
}

// ruleStep is one probe of rule i's join: against atom st, on the columns
// bound so far (keyCols, fed from keySlots), binding the rest. keyBuf is
// the serial path's recycled probe-key buffer; parallel workers allocate
// private ones (steps are shared read-only across workers).
type ruleStep struct {
	st        *atomState
	ix        *relation.TupleIndex
	keyCols   []int
	keySlots  []int
	bindCols  []int
	bindSlots []int
	keyBuf    []relation.Value
}

// ruleSteps compiles rule i: the join order over the other atoms comes
// from the maintenance pricing. The compiled steps are cached until the
// next rebuild (slot layouts and join orders are fixed in between); only
// each step's probe index is re-resolved here — eagerly and serially, so
// parallel workers only read — because folds and compactions can drop and
// rebuild indexes between refreshes.
func (m *Maint) ruleSteps(i int) []ruleStep {
	if m.steps == nil {
		m.steps = make([][]ruleStep, len(m.atoms))
	}
	steps := m.steps[i]
	if steps == nil {
		bound := make([]bool, m.nslots)
		for _, sl := range m.atoms[i].slots {
			bound[sl] = true
		}
		order := m.price.Orders[i]
		steps = make([]ruleStep, 0, len(order))
		for _, j := range order {
			st := m.atoms[j]
			var keyCols, keySlots, bindCols, bindSlots []int
			for c, sl := range st.slots {
				if bound[sl] {
					keyCols = append(keyCols, c)
					keySlots = append(keySlots, sl)
				} else {
					bindCols = append(bindCols, c)
					bindSlots = append(bindSlots, sl)
					bound[sl] = true
				}
			}
			steps = append(steps, ruleStep{
				st: st, keyCols: keyCols,
				keySlots: keySlots, bindCols: bindCols, bindSlots: bindSlots,
				keyBuf: make([]relation.Value, len(keySlots)),
			})
		}
		m.steps[i] = steps
	}
	for s := range steps {
		steps[s].ix = steps[s].st.index(steps[s].keyCols)
	}
	return steps
}

// runRule joins each delta tuple of atom i against the other atoms and
// accumulates signed derivation counts. Large deltas fan out across
// workers with private counters, merged serially into the maintainer's
// counts (and the touched set) afterwards.
func (m *Maint) runRule(steps []ruleStep, at *atomState, delta *relation.Relation, sign int64, touched *relation.TupleCounter, meter *governor.Meter, workers int) error {
	n := delta.Len()
	if n == 0 {
		return nil
	}
	workers = parallel.Workers(workers)
	if workers > n/parallelThreshold {
		workers = n/parallelThreshold + 1
	}
	if workers <= 1 {
		// Serial fast path: recycle the maintainer's worker state (the
		// assignment, head, and probe-key buffers plus the local counter)
		// across refreshes instead of rebuilding it per rule.
		r := m.serialRun(steps, sign, meter)
		r.scan(at, delta, 0, n)
		if r.err != nil {
			return r.err
		}
		m.merge(r.local, touched)
		return nil
	}
	locals := make([]*relation.TupleCounter, workers)
	var errSlot atomic.Pointer[error]
	run := func(w, lo, hi int) {
		r := &ruleRun{
			m: m, steps: steps, sign: sign, meter: meter,
			assign: make([]relation.Value, m.nslots),
			head:   make([]relation.Value, m.width),
			local:  relation.NewTupleCounter(m.width),
		}
		r.keys = make([][]relation.Value, len(steps))
		for s := range steps {
			r.keys[s] = make([]relation.Value, len(steps[s].keySlots))
		}
		r.scan(at, delta, lo, hi)
		if r.err != nil {
			errSlot.CompareAndSwap(nil, &r.err)
		}
		locals[w] = r.local
	}
	parallel.Chunks(workers, n, run)
	if ep := errSlot.Load(); ep != nil {
		return *ep
	}
	for _, local := range locals {
		if local == nil {
			continue
		}
		m.merge(local, touched)
	}
	return nil
}

// serialRun readies the maintainer's recycled single-worker rule state for
// one runRule call. The local counter is cleared (or dropped after an
// oversized delta) and the probe-key views point at the compiled steps'
// own buffers — safe because the serial path has no sharing.
func (m *Maint) serialRun(steps []ruleStep, sign int64, meter *governor.Meter) *ruleRun {
	r := m.serial
	if r == nil {
		r = &ruleRun{
			m:      m,
			assign: make([]relation.Value, m.nslots),
			head:   make([]relation.Value, m.width),
			local:  relation.NewTupleCounter(m.width),
		}
		m.serial = r
	}
	if r.local.Len() > arenaMaxRows {
		r.local = relation.NewTupleCounter(m.width)
	} else {
		r.local.Clear()
	}
	r.steps, r.sign, r.meter = steps, sign, meter
	r.pend, r.err = 0, nil
	if cap(r.keys) < len(steps) {
		r.keys = make([][]relation.Value, len(steps))
	}
	r.keys = r.keys[:len(steps)]
	for s := range steps {
		r.keys[s] = steps[s].keyBuf
	}
	return r
}

// scan binds each delta tuple of atom at into the assignment and
// enumerates the rule's remaining steps, settling any outstanding governor
// charge at the end.
func (r *ruleRun) scan(at *atomState, delta *relation.Relation, lo, hi int) {
	for i := lo; i < hi; i++ {
		for c, sl := range at.slots {
			r.assign[sl] = delta.At(c, i)
		}
		if !r.rec(0) {
			break
		}
	}
	if r.err == nil && r.pend > 0 {
		r.err = r.meter.Charge(r.pend, governor.RelBytes(int(r.pend), r.m.width), "delta-join")
	}
}

// merge folds one rule execution's signed derivation counts into the
// maintainer's counts and the refresh's touched set.
func (m *Maint) merge(local, touched *relation.TupleCounter) {
	local.Each(func(row []relation.Value, d int64) bool {
		if d != 0 {
			m.counts.Add(row, d)
			touched.Add(row, d)
		}
		return true
	})
}

// ruleRun is one worker's mutable state for one rule execution.
type ruleRun struct {
	m      *Maint
	steps  []ruleStep
	assign []relation.Value
	keys   [][]relation.Value
	head   []relation.Value
	local  *relation.TupleCounter
	sign   int64
	meter  *governor.Meter
	pend   int64
	err    error
}

// rec enumerates the remaining steps; false aborts the worker (meter trip).
func (r *ruleRun) rec(s int) bool {
	if s == len(r.steps) {
		return r.leaf()
	}
	st := &r.steps[s]
	key := r.keys[s]
	for k, sl := range st.keySlots {
		key[k] = r.assign[sl]
	}
	ok := true
	st.ix.Each(key, func(id int32) bool {
		if st.st.dead[id] {
			return true
		}
		for b, c := range st.bindCols {
			r.assign[st.bindSlots[b]] = st.st.rel.At(c, int(id))
		}
		if !r.rec(s + 1) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// leaf checks the query's (in)equality and comparison atoms on the full
// assignment and, when they hold, adds one signed derivation of the head
// tuple. Returns false only on a governor trip.
func (r *ruleRun) leaf() bool {
	for _, iq := range r.m.ineqs {
		x := r.assign[iq.xSlot]
		if iq.yIsVar {
			if x == r.assign[iq.ySlot] {
				return true
			}
		} else if x == iq.c {
			return true
		}
	}
	for _, c := range r.m.cmps {
		l, rt := c.lConst, c.rConst
		if c.lSlot >= 0 {
			l = r.assign[c.lSlot]
		}
		if c.rSlot >= 0 {
			rt = r.assign[c.rSlot]
		}
		if c.strict {
			if !(l < rt) {
				return true
			}
		} else if !(l <= rt) {
			return true
		}
	}
	for j, hs := range r.m.headSlots {
		if hs >= 0 {
			r.head[j] = r.assign[hs]
		} else {
			r.head[j] = r.m.headConsts[j]
		}
	}
	r.local.Add(r.head, r.sign)
	r.pend++
	if r.pend >= chargeBatch {
		if err := r.meter.Charge(r.pend, governor.RelBytes(int(r.pend), len(r.head)), "delta-join"); err != nil {
			r.err = err
			return false
		}
		r.pend = 0
	}
	return true
}

// planInputs assembles the pricing inputs from the current atom states:
// exact live cardinalities plus the base tables' cached column statistics,
// mirroring the planner inputs the engines use.
func (m *Maint) planInputs() []plan.Input {
	inputs := make([]plan.Input, len(m.atoms))
	for i, st := range m.atoms {
		a := st.atom
		base := stats.For(m.db, a.Rel)
		dist := make([]int, len(st.vars))
		freq := make([]int, len(st.vars))
		for k, v := range st.vars {
			for j, t := range a.Args {
				if t.IsVar && t.Var == v {
					dist[k] = base.Cols[j].Distinct
					freq[k] = base.Cols[j].MaxFreq
					break
				}
			}
		}
		inputs[i] = plan.Input{Label: a.Rel, Rows: st.live, Vars: st.vars, Distinct: dist, MaxFreq: freq}
	}
	return inputs
}
