package ivm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pyquery/internal/eval"
	"pyquery/internal/governor"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

func v(x query.Var) query.Term                  { return query.V(x) }
func c(x relation.Value) query.Term             { return query.C(x) }
func row(vs ...relation.Value) []relation.Value { return vs }

// mirror applies Refresh's deltas to an independent tuple set, asserting
// exactness: added tuples must be new, removed tuples must be present.
type mirror struct {
	t     *testing.T
	width int
	rows  map[string][]relation.Value
}

func newMirror(t *testing.T, width int) *mirror {
	return &mirror{t: t, width: width, rows: map[string][]relation.Value{}}
}

func (mr *mirror) apply(added, removed *relation.Relation) {
	mr.t.Helper()
	for i := 0; i < removed.Len(); i++ {
		k := fmt.Sprint(removed.Row(i))
		if _, ok := mr.rows[k]; !ok {
			mr.t.Fatalf("removed tuple %v was not in the view", removed.Row(i))
		}
		delete(mr.rows, k)
	}
	for i := 0; i < added.Len(); i++ {
		k := fmt.Sprint(added.Row(i))
		if _, ok := mr.rows[k]; ok {
			mr.t.Fatalf("added tuple %v already in the view", added.Row(i))
		}
		mr.rows[k] = append([]relation.Value(nil), added.Row(i)...)
	}
}

func (mr *mirror) check(q *query.CQ, db *query.DB) {
	mr.t.Helper()
	want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1})
	if err != nil {
		mr.t.Fatalf("fresh evaluation: %v", err)
	}
	if want.Len() != len(mr.rows) {
		mr.t.Fatalf("view has %d tuples, fresh evaluation %d", len(mr.rows), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if _, ok := mr.rows[fmt.Sprint(want.Row(i))]; !ok {
			mr.t.Fatalf("view missing tuple %v", want.Row(i))
		}
	}
}

func refresh(t *testing.T, m *Maint, workers int) (*relation.Relation, *relation.Relation) {
	t.Helper()
	added, removed, err := m.Refresh(context.Background(), nil, workers)
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	return added, removed
}

func pathQuery() *query.CQ {
	return &query.CQ{
		Head:  []query.Term{v(0), v(2)},
		Atoms: []query.Atom{query.NewAtom("E", v(0), v(1)), query.NewAtom("E", v(1), v(2))},
	}
}

func TestMaintPathInsertDelete(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2, row(1, 2), row(2, 3)))
	q := pathQuery()
	m, err := New(q, db)
	if err != nil {
		t.Fatal(err)
	}
	mr := newMirror(t, 2)
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)

	// One-row insert creating new paths through both atom occurrences.
	db.Insert("E", row(3, 4))
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)

	// Delete an edge shared by several derivations.
	db.Delete("E", row(2, 3))
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)

	// No-op refresh.
	added, removed := refresh(t, m, 1)
	if added.Len() != 0 || removed.Len() != 0 {
		t.Fatalf("idle refresh returned %d/%d deltas", added.Len(), removed.Len())
	}
}

// A tuple with two derivations must survive losing one of them — the
// counting semantics the delta rules exist for.
func TestMaintCountingSurvivesAlternateDerivation(t *testing.T) {
	db := query.NewDB()
	// Two paths 1→2→9 and 1→5→9.
	db.Set("E", query.Table(2, row(1, 2), row(2, 9), row(1, 5), row(5, 9)))
	q := pathQuery()
	m, _ := New(q, db)
	mr := newMirror(t, 2)
	mr.apply(refresh(t, m, 1))
	db.Delete("E", row(2, 9))
	added, removed := refresh(t, m, 1)
	if removed.Len() != 0 {
		t.Fatalf("tuple (1,9) still derivable via 1→5→9, but removed=%v", removed)
	}
	mr.apply(added, removed)
	mr.check(q, db)
	db.Delete("E", row(5, 9))
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)
}

func TestMaintConstantsIneqsCmps(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2, row(1, 2), row(1, 3), row(2, 3), row(3, 1)))
	q := &query.CQ{
		Head:  []query.Term{v(1), c(77)},
		Atoms: []query.Atom{query.NewAtom("E", c(1), v(1)), query.NewAtom("E", v(1), v(2))},
		Ineqs: []query.Ineq{query.NeqConst(1, 9)},
		Cmps:  []query.Cmp{query.Lt(v(1), v(2))},
	}
	m, err := New(q, db)
	if err != nil {
		t.Fatal(err)
	}
	mr := newMirror(t, 2)
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)
	db.Insert("E", row(1, 9), row(9, 50))
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)
	db.Delete("E", row(2, 3))
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)
}

func TestMaintBooleanQuery(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2, row(1, 2)))
	q := &query.CQ{Atoms: []query.Atom{query.NewAtom("E", v(0), v(0))}}
	m, _ := New(q, db)
	mr := newMirror(t, 0)
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)
	db.Insert("E", row(4, 4))
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)
	if m.Result().Len() != 1 {
		t.Fatalf("Boolean view true should hold one empty tuple, has %d", m.Result().Len())
	}
	db.Delete("E", row(4, 4))
	mr.apply(refresh(t, m, 1))
	if m.Result().Len() != 0 {
		t.Fatalf("Boolean view should be false, has %d tuples", m.Result().Len())
	}
}

// Set replaces a relation wholesale: the changelog has no tuple deltas, so
// Refresh must rebuild and still report the exact membership change.
func TestMaintSetFallsBackToRebuild(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2, row(1, 2), row(2, 3)))
	q := pathQuery()
	m, _ := New(q, db)
	mr := newMirror(t, 2)
	mr.apply(refresh(t, m, 1))
	db.Set("E", query.Table(2, row(2, 3), row(3, 4), row(4, 5)))
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)
}

func TestMaintNotMaintainable(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2))
	if _, err := New(&query.CQ{Head: []query.Term{c(1)}}, db); err != ErrNotMaintainable {
		t.Fatalf("zero-atom query: err = %v, want ErrNotMaintainable", err)
	}
	q := &query.CQ{Atoms: []query.Atom{query.NewAtom("E", query.P("p"), v(0))}}
	if _, err := New(q, db); err != ErrNotMaintainable {
		t.Fatalf("parameterized query: err = %v, want ErrNotMaintainable", err)
	}
}

// TestMaintRandomizedAgainstFreshEval is the package's model check: random
// mutation batches against a fresh evaluation every round, serial and
// parallel, across query shapes.
func TestMaintRandomizedAgainstFreshEval(t *testing.T) {
	shapes := []struct {
		name string
		q    *query.CQ
	}{
		{"path", pathQuery()},
		{"triangle", &query.CQ{
			Head: []query.Term{v(0), v(1), v(2)},
			Atoms: []query.Atom{
				query.NewAtom("E", v(0), v(1)),
				query.NewAtom("E", v(1), v(2)),
				query.NewAtom("E", v(2), v(0)),
			},
		}},
		{"two-rel-cmp", &query.CQ{
			Head: []query.Term{v(0), v(2)},
			Atoms: []query.Atom{
				query.NewAtom("E", v(0), v(1)),
				query.NewAtom("F", v(1), v(2)),
			},
			Cmps: []query.Cmp{query.Le(v(0), v(2))},
		}},
	}
	for _, sh := range shapes {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/par=%d", sh.name, workers), func(t *testing.T) {
				rnd := rand.New(rand.NewSource(42))
				db := query.NewDB()
				names := map[string]bool{}
				for _, a := range sh.q.Atoms {
					names[a.Rel] = true
				}
				for name := range names {
					db.Set(name, query.Table(2))
				}
				randRow := func() []relation.Value {
					return row(relation.Value(rnd.Intn(12)), relation.Value(rnd.Intn(12)))
				}
				name := func() string {
					for n := range names {
						if rnd.Intn(2) == 0 {
							return n
						}
					}
					for n := range names {
						return n
					}
					return ""
				}
				m, err := New(sh.q, db)
				if err != nil {
					t.Fatal(err)
				}
				mr := newMirror(t, len(sh.q.Head))
				for round := 0; round < 40; round++ {
					batch := 1 + rnd.Intn(4)
					for b := 0; b < batch; b++ {
						switch rnd.Intn(4) {
						case 0:
							db.Delete(name(), randRow())
						case 1:
							// occasional wholesale replacement
							if rnd.Intn(10) == 0 {
								nr := query.NewTable(2)
								for i := 0; i < rnd.Intn(20); i++ {
									nr.Append(randRow()...)
								}
								nr.Dedup()
								db.Set(name(), nr)
								continue
							}
							db.Insert(name(), randRow())
						default:
							db.Insert(name(), randRow())
						}
					}
					mr.apply(refresh(t, m, workers))
					mr.check(sh.q, db)
				}
			})
		}
	}
}

// A governor trip mid-refresh must surface the typed error, leave the
// reported result untouched, and let the next (clean) refresh recover.
func TestMaintGovernorTripAndRecover(t *testing.T) {
	db := query.NewDB()
	db.Set("E", query.Table(2, row(1, 2), row(2, 3), row(3, 4)))
	q := pathQuery()
	m, _ := New(q, db)
	mr := newMirror(t, 2)
	mr.apply(refresh(t, m, 1))

	db.Insert("E", row(4, 5))
	governor.SetTestHook(func(n int64, engine, step string) error {
		if step == "delta-pass" {
			return governor.ErrRowLimit
		}
		return nil
	})
	meter := governor.New(context.Background(), "ivm", 0, 0)
	_, _, err := m.Refresh(context.Background(), meter, 1)
	governor.SetTestHook(nil)
	if err == nil {
		t.Fatal("tripped refresh returned nil error")
	}
	var ge *governor.Error
	if !errors.As(err, &ge) {
		t.Fatalf("trip error not typed: %T %v", err, err)
	}
	// Recovery: the next ungoverned refresh rebuilds and reports the exact
	// deltas relative to the last successful result.
	mr.apply(refresh(t, m, 1))
	mr.check(q, db)
}
