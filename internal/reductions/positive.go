package reductions

import (
	"fmt"

	"pyquery/internal/graph"
	"pyquery/internal/query"
)

// PositiveToUCQ is the Theorem 1(2) upper bound for parameter q: a positive
// query is equivalent to a union of (up to exponentially many) conjunctive
// queries. Quantified variables are renamed apart so the implicit
// existential closure of each CQ body is correct; the head is preserved.
func PositiveToUCQ(q *query.FOQuery) ([]*query.CQ, error) {
	if !query.IsPositive(q.Body) {
		return nil, fmt.Errorf("reductions: query body is not positive")
	}
	next := maxVarIn(q.Body)
	for _, t := range q.Head {
		if t.IsVar && t.Var >= next {
			next = t.Var + 1
		}
	}
	fresh := func() query.Var {
		v := next
		next++
		return v
	}

	// disjuncts returns the DNF of the formula as lists of atoms, with
	// quantified variables renamed via env.
	var disjuncts func(f query.Formula, env map[query.Var]query.Var) [][]query.Atom
	disjuncts = func(f query.Formula, env map[query.Var]query.Var) [][]query.Atom {
		switch g := f.(type) {
		case query.FAtom:
			args := make([]query.Term, len(g.Atom.Args))
			for i, t := range g.Atom.Args {
				if t.IsVar {
					if r, ok := env[t.Var]; ok {
						args[i] = query.V(r)
						continue
					}
				}
				args[i] = t
			}
			return [][]query.Atom{{query.Atom{Rel: g.Atom.Rel, Args: args}}}
		case query.Or:
			var out [][]query.Atom
			for _, s := range g.Subs {
				out = append(out, disjuncts(s, env)...)
			}
			return out
		case query.And:
			// Cartesian product of the children's disjunct lists.
			acc := [][]query.Atom{nil}
			for _, s := range g.Subs {
				ds := disjuncts(s, env)
				var merged [][]query.Atom
				for _, left := range acc {
					for _, right := range ds {
						row := make([]query.Atom, 0, len(left)+len(right))
						row = append(row, left...)
						row = append(row, right...)
						merged = append(merged, row)
					}
				}
				acc = merged
			}
			return acc
		case query.Exists:
			saved, had := env[g.V]
			env[g.V] = fresh()
			out := disjuncts(g.Sub, env)
			if had {
				env[g.V] = saved
			} else {
				delete(env, g.V)
			}
			return out
		}
		panic(fmt.Sprintf("reductions: unexpected node %T in positive query", f))
	}

	var cqs []*query.CQ
	for _, atoms := range disjuncts(q.Body, map[query.Var]query.Var{}) {
		cqs = append(cqs, &query.CQ{
			Head:  append([]query.Term(nil), q.Head...),
			Atoms: atoms,
		})
	}
	return cqs, nil
}

func maxVarIn(f query.Formula) query.Var {
	var m query.Var
	for _, v := range query.AllVars(f) {
		if v >= m {
			m = v + 1
		}
	}
	return m
}

// PositiveToClique is the footnote-2 transformation: a Boolean positive
// query decision becomes a single clique question. Each CQ of the union
// turns into the compatibility graph of its 2-CNF construction — one vertex
// per (atom, consistent tuple) pair, edges between pairs that neither share
// an atom nor conflict on a shared variable — which has a clique of size kᵢ
// = #atoms iff the CQ is satisfiable. Graphs are padded to the common
// k = max kᵢ with universal vertices and unioned disjointly.
func PositiveToClique(q *query.FOQuery, db *query.DB) (*graph.Graph, int, error) {
	if len(q.Head) != 0 {
		return nil, 0, fmt.Errorf("reductions: Boolean positive query expected")
	}
	cqs, err := PositiveToUCQ(q)
	if err != nil {
		return nil, 0, err
	}
	if err := query.ValidateFormula(q.Body, db); err != nil {
		return nil, 0, err
	}

	// First pass: per-CQ 2-CNF reductions and the common k.
	reds := make([]*CQTo2CNF, len(cqs))
	k := 1
	for i, cq := range cqs {
		r, err := CQToWeighted2CNF(cq, db)
		if err != nil {
			return nil, 0, err
		}
		reds[i] = r
		if r.K > k {
			k = r.K
		}
	}

	// Count vertices: z-variables plus padding per CQ.
	total := 0
	for _, r := range reds {
		total += len(r.VarAtom) + (k - r.K)
	}
	g := graph.New(total)
	base := 0
	for _, r := range reds {
		nz := len(r.VarAtom)
		// Edges between compatible z-pairs: different atoms, no shared-
		// variable conflict — i.e. no 2-CNF clause between them.
		conflict := make(map[[2]int]bool)
		for _, c := range r.Formula.Clauses {
			if len(c) == 2 && !c[0].Positive() && !c[1].Positive() {
				a, b := c[0].Var(), c[1].Var()
				if a > b {
					a, b = b, a
				}
				conflict[[2]int{a, b}] = true
			}
		}
		for i := 0; i < nz; i++ {
			for j := i + 1; j < nz; j++ {
				if !conflict[[2]int{i, j}] {
					g.AddEdge(base+i, base+j)
				}
			}
		}
		// Padding vertices: adjacent to everything in this component.
		for p := 0; p < k-r.K; p++ {
			pv := base + nz + p
			for i := 0; i < nz+p; i++ {
				g.AddEdge(pv, base+i)
			}
		}
		base += nz + (k - r.K)
	}
	return g, k, nil
}
