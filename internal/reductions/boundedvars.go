package reductions

import (
	"fmt"
	"sort"
	"strings"

	"pyquery/internal/eval"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// BoundedVars is the Theorem 1(1) upper bound for parameter v: transform a
// conjunctive query over an arbitrary schema into an equivalent query with
// at most 2^v atoms over a new database. For each set S of variables
// carried by at least one atom, the new relation R_S is the intersection
// ⋂_{a ∈ A_S} P_a of the atoms' reduced relations, and the new query has
// the single atom R_S(S) per such set. Both query size and schema are now
// bounded by a function of v alone.
func BoundedVars(q *query.CQ, db *query.DB) (*query.CQ, *query.DB, error) {
	if len(q.Ineqs) > 0 || len(q.Cmps) > 0 {
		return nil, nil, fmt.Errorf("reductions: BoundedVars covers pure conjunctive queries")
	}
	if err := q.Validate(db); err != nil {
		return nil, nil, err
	}

	// Group atoms by their variable set.
	groups := make(map[string][]int) // canonical var-set key → atom indices
	keyVars := make(map[string][]query.Var)
	for i, a := range q.Atoms {
		vars := append([]query.Var(nil), a.Vars()...)
		sort.Slice(vars, func(x, y int) bool { return vars[x] < vars[y] })
		parts := make([]string, len(vars))
		for j, v := range vars {
			parts[j] = fmt.Sprintf("x%d", v)
		}
		key := strings.Join(parts, ",")
		groups[key] = append(groups[key], i)
		keyVars[key] = vars
	}

	out := &query.CQ{Head: append([]query.Term(nil), q.Head...), VarNames: q.VarNames}
	newDB := query.NewDB()
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for gi, key := range keys {
		vars := keyVars[key]
		name := fmt.Sprintf("RS%d", gi)
		schema := make(relation.Schema, len(vars))
		for i, v := range vars {
			schema[i] = relation.Attr(v)
		}
		var acc *relation.Relation
		for _, ai := range groups[key] {
			s, _ := eval.ReduceAtom(q.Atoms[ai], db)
			// Reorder columns of s to the canonical var order.
			s = relation.Project(s, schema)
			if acc == nil {
				acc = s
			} else {
				// Intersection = difference of differences.
				acc = relation.Difference(acc, relation.Difference(acc, s))
			}
		}
		// Store positionally like any base table.
		table := query.NewTable(len(vars))
		for i := 0; i < acc.Len(); i++ {
			table.AppendRowOf(acc, i)
		}
		newDB.Set(name, table)
		args := make([]query.Term, len(vars))
		for i, v := range vars {
			args[i] = query.V(v)
		}
		out.Atoms = append(out.Atoms, query.Atom{Rel: name, Args: args})
	}
	return out, newDB, nil
}
