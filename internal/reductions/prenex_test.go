package reductions

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pyquery/internal/boolcirc"
	"pyquery/internal/eval"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

func prenexDB() *query.DB {
	db := query.NewDB()
	db.Set("E", query.Table(2,
		[]relation.Value{0, 1}, []relation.Value{1, 2}, []relation.Value{2, 0}))
	return db
}

func TestPrenexDetection(t *testing.T) {
	good := &query.FOQuery{Body: query.Exists{V: 0, Sub: query.Exists{V: 1,
		Sub: query.Conj(query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(1))})}}}
	if !Prenex(good) {
		t.Fatal("prenex query rejected")
	}
	inner := &query.FOQuery{Body: query.Exists{V: 0,
		Sub: query.Conj(query.Exists{V: 1, Sub: query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(1))}})}}
	if Prenex(inner) {
		t.Fatal("inner quantifier accepted as prenex")
	}
	neg := &query.FOQuery{Body: query.Not{Sub: query.FAtom{Atom: query.NewAtom("E", query.C(0), query.C(1))}}}
	if Prenex(neg) {
		t.Fatal("negation accepted as positive prenex")
	}
	repeat := &query.FOQuery{Body: query.Exists{V: 0, Sub: query.Exists{V: 0,
		Sub: query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(0))}}}}
	if Prenex(repeat) {
		t.Fatal("repeated prefix variable accepted")
	}
}

func TestPrenexToWeightedFormulaKnown(t *testing.T) {
	db := prenexDB()
	// ∃y0∃y1 E(y0,y1): true (edges exist). k=2, domain {0,1,2}.
	q := &query.FOQuery{Body: query.Exists{V: 0, Sub: query.Exists{V: 1,
		Sub: query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(1))}}}}
	f, n, k, err := PrenexPositiveToWeightedFormula(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || k != 2 {
		t.Fatalf("n=%d k=%d, want 6/2", n, k)
	}
	if _, ok := boolcirc.WeightedSatFormula(f, n, k); !ok {
		t.Fatal("satisfiable query must give weight-k-satisfiable formula")
	}
	// ∃y0 E(y0,y0): false (no self-loops).
	q2 := &query.FOQuery{Body: query.Exists{V: 0,
		Sub: query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(0))}}}
	f2, n2, k2, err := PrenexPositiveToWeightedFormula(q2, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := boolcirc.WeightedSatFormula(f2, n2, k2); ok {
		t.Fatal("unsatisfiable query must give weight-unsat formula")
	}
}

func TestPrenexRejections(t *testing.T) {
	db := prenexDB()
	headed := &query.FOQuery{Head: []query.Term{query.V(0)},
		Body: query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(0))}}
	if _, _, _, err := PrenexPositiveToWeightedFormula(headed, db); err == nil {
		t.Fatal("non-Boolean accepted")
	}
	free := &query.FOQuery{Body: query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(1))}}
	if _, _, _, err := PrenexPositiveToWeightedFormula(free, db); err == nil {
		t.Fatal("free variable accepted")
	}
	notPrenex := &query.FOQuery{Body: query.Exists{V: 0,
		Sub: query.Exists{V: 1, Sub: query.Not{Sub: query.FAtom{Atom: query.NewAtom("E", query.V(0), query.V(1))}}}}}
	if _, _, _, err := PrenexPositiveToWeightedFormula(notPrenex, db); err == nil {
		t.Fatal("negation accepted")
	}
}

// Property: the prenex reduction agrees with direct positive evaluation —
// the converse (membership) direction of the W[SAT] classification.
func TestQuickPrenexMatchesEvaluation(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		db := query.NewDB()
		r := query.NewTable(2)
		for i := 0; i < rnd.Intn(8); i++ {
			r.Append(relation.Value(rnd.Intn(3)), relation.Value(rnd.Intn(3)))
		}
		r.Dedup()
		db.Set("E", r)

		// Random quantifier-free positive matrix over y0..y_{k-1}.
		k := 1 + rnd.Intn(3)
		var matrix func(depth int) query.Formula
		matrix = func(depth int) query.Formula {
			if depth == 0 || rnd.Intn(3) == 0 {
				return query.FAtom{Atom: query.NewAtom("E",
					query.V(query.Var(rnd.Intn(k))), query.V(query.Var(rnd.Intn(k))))}
			}
			if rnd.Intn(2) == 0 {
				return query.And{Subs: []query.Formula{matrix(depth - 1), matrix(depth - 1)}}
			}
			return query.Or{Subs: []query.Formula{matrix(depth - 1), matrix(depth - 1)}}
		}
		body := matrix(3)
		for i := k - 1; i >= 0; i-- {
			body = query.Exists{V: query.Var(i), Sub: body}
		}
		q := &query.FOQuery{Body: body}

		want, err := eval.PositiveBool(q, db)
		if err != nil {
			return true
		}
		f, n, kk, err := PrenexPositiveToWeightedFormula(q, db)
		if err != nil {
			// Empty database → no domain constants; the query is false and
			// the reduction yields k quantified vars over 0 constants.
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		_, got := boolcirc.WeightedSatFormula(f, n, kk)
		if got != want {
			t.Logf("seed %d: formula %v, query %v", seed, got, want)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(111))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
