// Package reductions implements every parametric reduction in the paper as
// executable code: the Theorem 1 lower and upper bounds for conjunctive,
// positive, and first-order queries (both parameters), the Theorem 3
// comparison-query hardness, the footnote-2 positive-query→clique
// transformation, and the Section 5 Hamiltonian-path NP-hardness device.
// Each reduction is validated end-to-end in tests against independent
// solvers for both sides.
package reductions

import (
	"pyquery/internal/graph"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// CliqueToCQ is the Theorem 1(1) lower bound: given (G, k), build a
// database holding the (symmetrized) edge relation and the Boolean
// conjunctive query
//
//	P ← ⋀_{1≤i<j≤k} G(x_i, x_j)
//
// which is true iff G has a k-clique. Query size is O(k²), variables k, and
// the schema is fixed (one binary relation) — so the reduction works for
// all four parameterizations of Figure 1.
func CliqueToCQ(g *graph.Graph, k int) (*query.CQ, *query.DB) {
	db := query.NewDB()
	e := query.NewTable(2)
	for _, edge := range g.Edges() {
		e.Append(relation.Value(edge[0]), relation.Value(edge[1]))
		e.Append(relation.Value(edge[1]), relation.Value(edge[0]))
	}
	db.Set("G", e)

	q := &query.CQ{}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			q.Atoms = append(q.Atoms, query.NewAtom("G", query.V(query.Var(i)), query.V(query.Var(j))))
		}
	}
	// For k ≤ 1 the conjunction is empty and the query trivially true; the
	// reduction is meaningful for k ≥ 2 (as in the paper).
	return q, db
}

// encodeTriple is Theorem 3's number encoding [i,j,b] = (i+j)n³+|i−j|n²+bn+i.
func encodeTriple(i, j, b, n int) relation.Value {
	d := i - j
	if d < 0 {
		d = -d
	}
	nn := int64(n)
	return relation.Value((int64(i+j)*nn*nn*nn + int64(d)*nn*nn + int64(b)*nn + int64(i)))
}

// CliqueToComparisons is the Theorem 3 reduction: clique reduces to an
// acyclic conjunctive query with strict comparisons. The database holds
//
//	P = {([i,j,0],[i,j,1]) : (i,j) an edge or i=j}   (ordered pairs)
//	R = {([i,j,1],[i,j′,0]) : all i, j, j′}
//
// and the Boolean query has k alternating P/R paths
// x_{i1},x′_{i1},…,x_{ik},x′_{ik} plus the comparisons
// x_{ij} < x_{ji} < x′_{ij} for i<j. The hypergraph (paths) is acyclic and
// the comparison graph is acyclic, yet deciding the query is exactly
// deciding k-clique.
func CliqueToComparisons(g *graph.Graph, k int) (*query.CQ, *query.DB) {
	n := g.N
	db := query.NewDB()
	p := query.NewTable(2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || g.HasEdge(i, j) {
				p.Append(encodeTriple(i, j, 0, n), encodeTriple(i, j, 1, n))
			}
		}
	}
	r := query.NewTable(2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for j2 := 0; j2 < n; j2++ {
				r.Append(encodeTriple(i, j, 1, n), encodeTriple(i, j2, 0, n))
			}
		}
	}
	db.Set("P", p)
	db.Set("R", r)

	// Variables: x_{ij} = i*k+j, x′_{ij} = k² + i*k + j (0-based i,j).
	x := func(i, j int) query.Var { return query.Var(i*k + j) }
	xp := func(i, j int) query.Var { return query.Var(k*k + i*k + j) }

	q := &query.CQ{}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			q.Atoms = append(q.Atoms, query.NewAtom("P", query.V(x(i, j)), query.V(xp(i, j))))
			if j+1 < k {
				q.Atoms = append(q.Atoms, query.NewAtom("R", query.V(xp(i, j)), query.V(x(i, j+1))))
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			q.Cmps = append(q.Cmps,
				query.Lt(query.V(x(i, j)), query.V(x(j, i))),
				query.Lt(query.V(x(j, i)), query.V(xp(i, j))))
		}
	}
	return q, db
}

// HamPathToIneqCQ is the Section 5 NP-hardness device: the Boolean query
//
//	G ← E(x₁,x₂), …, E(x_{n−1},x_n), x_i ≠ x_j (all i<j)
//
// over the symmetrized edge relation is true iff the graph has a
// Hamiltonian path. The query is acyclic with inequalities — but it is as
// large as the database, which is the paper's point about combined
// complexity.
func HamPathToIneqCQ(g *graph.Graph) (*query.CQ, *query.DB) {
	n := g.N
	db := query.NewDB()
	e := query.NewTable(2)
	for _, edge := range g.Edges() {
		e.Append(relation.Value(edge[0]), relation.Value(edge[1]))
		e.Append(relation.Value(edge[1]), relation.Value(edge[0]))
	}
	db.Set("E", e)

	q := &query.CQ{}
	for i := 0; i+1 < n; i++ {
		q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(query.Var(i)), query.V(query.Var(i+1))))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			q.Ineqs = append(q.Ineqs, query.NeqVars(query.Var(i), query.Var(j)))
		}
	}
	if n == 1 {
		// One vertex: a Hamiltonian path exists iff the graph has a vertex;
		// encode as a trivially true query over the (possibly empty) edge
		// relation is wrong, so use a unary view.
		v := query.NewTable(1)
		for i := 0; i < g.N; i++ {
			v.Append(relation.Value(i))
		}
		db.Set("V", v)
		q.Atoms = []query.Atom{query.NewAtom("V", query.V(0))}
		q.Ineqs = nil
	}
	return q, db
}
