package reductions

import (
	"fmt"

	"pyquery/internal/boolcirc"
	"pyquery/internal/cnf"
	"pyquery/internal/eval"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// CQTo2CNF is the result of the Theorem 1(1) upper-bound reduction for
// parameter q: a weighted 2-CNF instance equivalent to a Boolean
// conjunctive query decision, plus the bookkeeping to decode witnesses.
type CQTo2CNF struct {
	Formula *cnf.Formula
	// K is the target weight — the number of atoms of the query.
	K int
	// VarAtom and VarTuple identify each Boolean variable z_{as}: the atom
	// index a and the matching tuple (as values over the atom's distinct
	// variables, aligned with VarVars[a]).
	VarAtom  []int
	VarTuple [][]relation.Value
	// AtomVars lists each atom's distinct variables in schema order.
	AtomVars [][]query.Var
}

// CQToWeighted2CNF reduces the decision problem of a Boolean pure
// conjunctive query to weighted 2-CNF satisfiability: one variable z_{as}
// per atom a and consistent tuple s; clauses ¬z_{as} ∨ ¬z_{as′} force at
// most one tuple per atom, and ¬z_{as} ∨ ¬z_{a′s′} forbids pairs that
// disagree on a shared query variable. The query is true iff the formula
// has a satisfying assignment of weight exactly K = #atoms.
func CQToWeighted2CNF(q *query.CQ, db *query.DB) (*CQTo2CNF, error) {
	if len(q.Head) != 0 {
		return nil, fmt.Errorf("reductions: bind the head first (Boolean decision expected)")
	}
	if len(q.Ineqs) > 0 || len(q.Cmps) > 0 {
		return nil, fmt.Errorf("reductions: the 2-CNF reduction covers pure conjunctive queries")
	}
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	red := &CQTo2CNF{K: len(q.Atoms)}

	// Enumerate consistent tuples per atom (ReduceAtom already enforces the
	// constants and repeated variables of the atom).
	firstVar := make([]int, len(q.Atoms)) // first z-variable id of each atom
	for a, atom := range q.Atoms {
		s, vars := eval.ReduceAtom(atom, db)
		red.AtomVars = append(red.AtomVars, vars)
		firstVar[a] = len(red.VarAtom)
		for i := 0; i < s.Len(); i++ {
			red.VarAtom = append(red.VarAtom, a)
			red.VarTuple = append(red.VarTuple, append([]relation.Value(nil), s.Row(i)...))
		}
	}
	f := cnf.New(len(red.VarAtom))

	// At most one tuple per atom.
	for a := range q.Atoms {
		lo := firstVar[a]
		hi := len(red.VarAtom)
		if a+1 < len(q.Atoms) {
			hi = firstVar[a+1]
		}
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				f.AddClause(cnf.NegLit(i), cnf.NegLit(j))
			}
		}
	}

	// Conflicts across atoms sharing variables.
	varPos := make([]map[query.Var]int, len(q.Atoms))
	for a, vars := range red.AtomVars {
		varPos[a] = make(map[query.Var]int, len(vars))
		for p, v := range vars {
			varPos[a][v] = p
		}
	}
	for i := 0; i < len(red.VarAtom); i++ {
		for j := i + 1; j < len(red.VarAtom); j++ {
			a, b := red.VarAtom[i], red.VarAtom[j]
			if a == b {
				continue // covered by at-most-one clauses
			}
			conflict := false
			for v, pa := range varPos[a] {
				if pb, ok := varPos[b][v]; ok {
					if red.VarTuple[i][pa] != red.VarTuple[j][pb] {
						conflict = true
						break
					}
				}
			}
			if conflict {
				f.AddClause(cnf.NegLit(i), cnf.NegLit(j))
			}
		}
	}
	red.Formula = f
	return red, nil
}

// Decode maps a weight-K satisfying assignment back to a variable
// instantiation of the query (the homomorphism witness).
func (r *CQTo2CNF) Decode(assign []bool) map[query.Var]relation.Value {
	out := make(map[query.Var]relation.Value)
	for z, set := range assign {
		if !set {
			continue
		}
		a := r.VarAtom[z]
		for p, v := range r.AtomVars[a] {
			out[v] = r.VarTuple[z][p]
		}
	}
	return out
}

// WeightedFormulaToPositive is the Theorem 1(2) lower bound for parameter
// v: weighted satisfiability of a Boolean formula φ over n variables
// reduces to a Boolean positive query with k variables over the fixed
// database
//
//	EQ  = {(i,i)   : 0 ≤ i < n}
//	NEQ = {(i,j)   : 0 ≤ i ≠ j < n}
//
// The query is ∃y₁…y_k [⋀_{i<j} NEQ(y_i,y_j)] ∧ ψ, where ψ replaces each
// positive literal x_i by ⋁_j EQ(i, y_j) and each negative literal by
// ⋀_j NEQ(i, y_j). φ is converted to NNF first.
func WeightedFormulaToPositive(phi boolcirc.Formula, n, k int) (*query.FOQuery, *query.DB) {
	db := query.NewDB()
	eq := query.NewTable(2)
	neq := query.NewTable(2)
	for i := 0; i < n; i++ {
		eq.Append(relation.Value(i), relation.Value(i))
		for j := 0; j < n; j++ {
			if i != j {
				neq.Append(relation.Value(i), relation.Value(j))
			}
		}
	}
	db.Set("EQ", eq)
	db.Set("NEQ", neq)

	nnf := boolcirc.NNF(phi)
	var translate func(f boolcirc.Formula) query.Formula
	translate = func(f boolcirc.Formula) query.Formula {
		switch g := f.(type) {
		case boolcirc.FVar:
			subs := make([]query.Formula, k)
			rel := "EQ"
			if g.Neg {
				rel = "NEQ"
			}
			for j := 0; j < k; j++ {
				subs[j] = query.FAtom{Atom: query.NewAtom(rel, query.C(relation.Value(g.V)), query.V(query.Var(j)))}
			}
			if g.Neg {
				return query.And{Subs: subs}
			}
			return query.Or{Subs: subs}
		case boolcirc.FAnd:
			subs := make([]query.Formula, len(g.Subs))
			for i, s := range g.Subs {
				subs[i] = translate(s)
			}
			return query.And{Subs: subs}
		case boolcirc.FOr:
			subs := make([]query.Formula, len(g.Subs))
			for i, s := range g.Subs {
				subs[i] = translate(s)
			}
			return query.Or{Subs: subs}
		}
		panic(fmt.Sprintf("reductions: non-NNF node %T", f))
	}

	var conj []query.Formula
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			conj = append(conj, query.FAtom{Atom: query.NewAtom("NEQ", query.V(query.Var(i)), query.V(query.Var(j)))})
		}
	}
	conj = append(conj, translate(nnf))
	var body query.Formula = query.And{Subs: conj}
	for i := k - 1; i >= 0; i-- {
		body = query.Exists{V: query.Var(i), Sub: body}
	}
	return &query.FOQuery{Body: body}, db
}

// MonotoneCircuitToFO is the Theorem 1(3) reduction: weighted satisfiability
// of a monotone circuit reduces to a Boolean first-order query over the
// fixed schema {C(·,·)} — the circuit's wiring relation with self-loops on
// the inputs. The circuit is first normalized to alternating OR/AND levels
// with an OR output at level 2t (boolcirc.Alternate); the query is
//
//	Q = ∃x₁…∃x_k θ_{2t}(o)
//	θ₀(x)   = C(x,x₁) ∨ … ∨ C(x,x_k)
//	θ_{2i}(x) = ∃y[C(x,y) ∧ ∀x(¬C(y,x) ∨ θ_{2i−2}(x))]
//
// with the work variables x and y reused through shadowing, so the query
// has k+2 variables and size O(t+k). Requires k ≤ #inputs (the paper's
// monotone-augmentation step needs k distinct inputs to exist).
func MonotoneCircuitToFO(c *boolcirc.Circuit, k int) (*query.FOQuery, *query.DB, error) {
	if k > c.NumInputs {
		return nil, nil, fmt.Errorf("reductions: k=%d exceeds the %d circuit inputs", k, c.NumInputs)
	}
	lc := boolcirc.Alternate(c)
	if err := lc.Check(); err != nil {
		return nil, nil, fmt.Errorf("reductions: alternation failed: %w", err)
	}
	db := query.NewDB()
	wiring := query.NewTable(2)
	for g, gate := range lc.Circuit.Gates {
		if gate.Kind == boolcirc.Input {
			wiring.Append(relation.Value(g), relation.Value(g))
			continue
		}
		for _, in := range gate.In {
			wiring.Append(relation.Value(g), relation.Value(in))
		}
	}
	db.Set("C", wiring)

	// Work variables reused with shadowing.
	xVar := query.Var(k)
	yVar := query.Var(k + 1)

	// theta builds θ_level with the given term for the free position.
	var theta func(level int, x query.Term) query.Formula
	theta = func(level int, x query.Term) query.Formula {
		if level == 0 {
			subs := make([]query.Formula, k)
			for i := 0; i < k; i++ {
				subs[i] = query.FAtom{Atom: query.NewAtom("C", x, query.V(query.Var(i)))}
			}
			return query.Or{Subs: subs}
		}
		inner := query.Forall{V: xVar, Sub: query.Or{Subs: []query.Formula{
			query.Not{Sub: query.FAtom{Atom: query.NewAtom("C", query.V(yVar), query.V(xVar))}},
			theta(level-2, query.V(xVar)),
		}}}
		return query.Exists{V: yVar, Sub: query.And{Subs: []query.Formula{
			query.FAtom{Atom: query.NewAtom("C", x, query.V(yVar))},
			inner,
		}}}
	}

	o := query.C(relation.Value(lc.Circuit.Output))
	var body query.Formula = theta(lc.Top, o)
	for i := k - 1; i >= 0; i-- {
		body = query.Exists{V: query.Var(i), Sub: body}
	}
	return &query.FOQuery{Body: body}, db, nil
}
