package reductions

import (
	"fmt"

	"pyquery/internal/boolcirc"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// PrenexPositiveToWeightedFormula is the paper's converse upper bound for
// Theorem 1(2), parameter v: a Boolean positive query in prenex normal
// form, Q = ∃y₁…∃y_k ψ with ψ quantifier-free, reduces to weighted formula
// satisfiability — establishing W[SAT]-completeness for prenex positive
// queries under the variable-count parameter.
//
// One Boolean variable z_{ic} per quantified variable y_i and domain
// constant c encodes "y_i ↦ c". The output formula conjoins the pairwise
// exclusions ¬z_{ic} ∨ ¬z_{ic′} with ψ̂, where each atom a = R(τ) becomes
//
//	θ_a = ⋁_{s ∈ R, s matches τ's constants} ⋀_{j : τ[j] = y_i} z_{i, s[j]}
//
// Q is true on the database iff the formula has a satisfying assignment
// with exactly k true variables (one z per quantified variable).
//
// It returns the formula, the number of Boolean variables, and the weight k.
func PrenexPositiveToWeightedFormula(q *query.FOQuery, db *query.DB) (boolcirc.Formula, int, int, error) {
	if len(q.Head) != 0 {
		return nil, 0, 0, fmt.Errorf("reductions: Boolean prenex query expected (bind the head first)")
	}
	if err := query.ValidateFormula(q.Body, db); err != nil {
		return nil, 0, 0, err
	}

	// Peel the quantifier prefix.
	var ys []query.Var
	body := q.Body
	for {
		ex, ok := body.(query.Exists)
		if !ok {
			break
		}
		for _, y := range ys {
			if y == ex.V {
				return nil, 0, 0, fmt.Errorf("reductions: prenex prefix repeats variable x%d", ex.V)
			}
		}
		ys = append(ys, ex.V)
		body = ex.Sub
	}
	if err := checkQuantifierFreePositive(body); err != nil {
		return nil, 0, 0, err
	}
	yIndex := make(map[query.Var]int, len(ys))
	for i, y := range ys {
		yIndex[y] = i
	}

	domain := db.ActiveDomain()
	cIndex := make(map[relation.Value]int, len(domain))
	for i, c := range domain {
		cIndex[c] = i
	}
	k := len(ys)
	nBool := k * len(domain)
	z := func(i, c int) int { return i*len(domain) + c }

	// Pairwise exclusion: at most one constant per quantified variable.
	var conj []boolcirc.Formula
	for i := 0; i < k; i++ {
		for a := 0; a < len(domain); a++ {
			for b := a + 1; b < len(domain); b++ {
				conj = append(conj, boolcirc.FOr{Subs: []boolcirc.Formula{
					boolcirc.FVar{V: z(i, a), Neg: true},
					boolcirc.FVar{V: z(i, b), Neg: true},
				}})
			}
		}
	}

	var translate func(f query.Formula) (boolcirc.Formula, error)
	translate = func(f query.Formula) (boolcirc.Formula, error) {
		switch g := f.(type) {
		case query.FAtom:
			rel, ok := db.Rel(g.Atom.Rel)
			if !ok {
				return nil, fmt.Errorf("reductions: unknown relation %q", g.Atom.Rel)
			}
			var disj []boolcirc.Formula
			rowBuf := make([]relation.Value, rel.Width())
			for r := 0; r < rel.Len(); r++ {
				row := rel.RowTo(rowBuf, r)
				match := true
				var lits []boolcirc.Formula
				for j, t := range g.Atom.Args {
					if t.IsVar {
						i, bound := yIndex[t.Var]
						if !bound {
							return nil, fmt.Errorf("reductions: free variable x%d in prenex body", t.Var)
						}
						lits = append(lits, boolcirc.FVar{V: z(i, cIndex[row[j]])})
					} else if row[j] != t.Const {
						match = false
						break
					}
				}
				if match {
					disj = append(disj, boolcirc.FAnd{Subs: lits})
				}
			}
			return boolcirc.FOr{Subs: disj}, nil
		case query.And:
			subs := make([]boolcirc.Formula, len(g.Subs))
			for i, s := range g.Subs {
				t, err := translate(s)
				if err != nil {
					return nil, err
				}
				subs[i] = t
			}
			return boolcirc.FAnd{Subs: subs}, nil
		case query.Or:
			subs := make([]boolcirc.Formula, len(g.Subs))
			for i, s := range g.Subs {
				t, err := translate(s)
				if err != nil {
					return nil, err
				}
				subs[i] = t
			}
			return boolcirc.FOr{Subs: subs}, nil
		}
		return nil, fmt.Errorf("reductions: unexpected node %T in prenex body", f)
	}
	psi, err := translate(body)
	if err != nil {
		return nil, 0, 0, err
	}
	conj = append(conj, psi)
	return boolcirc.FAnd{Subs: conj}, nBool, k, nil
}

// checkQuantifierFreePositive rejects quantifiers and negation inside the
// matrix of a prenex positive query.
func checkQuantifierFreePositive(f query.Formula) error {
	switch g := f.(type) {
	case query.FAtom:
		return nil
	case query.And:
		for _, s := range g.Subs {
			if err := checkQuantifierFreePositive(s); err != nil {
				return err
			}
		}
		return nil
	case query.Or:
		for _, s := range g.Subs {
			if err := checkQuantifierFreePositive(s); err != nil {
				return err
			}
		}
		return nil
	case query.Exists, query.Forall:
		return fmt.Errorf("reductions: query is not in prenex normal form (inner quantifier)")
	case query.Not:
		return fmt.Errorf("reductions: query is not positive (negation)")
	}
	return fmt.Errorf("reductions: unknown node %T", f)
}

// Prenex reports whether a positive query is in prenex normal form
// (a quantifier prefix over a quantifier-free positive matrix).
func Prenex(q *query.FOQuery) bool {
	body := q.Body
	seen := map[query.Var]bool{}
	for {
		ex, ok := body.(query.Exists)
		if !ok {
			break
		}
		if seen[ex.V] {
			return false
		}
		seen[ex.V] = true
		body = ex.Sub
	}
	return checkQuantifierFreePositive(body) == nil
}
