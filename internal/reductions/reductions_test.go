package reductions

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pyquery/internal/boolcirc"
	"pyquery/internal/core"
	"pyquery/internal/eval"
	"pyquery/internal/graph"
	"pyquery/internal/order"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// --- Theorem 1(1) lower bound: clique → conjunctive query -----------------

func TestCliqueToCQKnownGraphs(t *testing.T) {
	q, db := CliqueToCQ(graph.Complete(5), 4)
	ok, err := eval.ConjunctiveBool(q, db)
	if err != nil || !ok {
		t.Fatalf("K5 has a 4-clique: %v %v", ok, err)
	}
	if q.NumVars() != 4 || len(q.Atoms) != 6 {
		t.Fatalf("query shape: v=%d atoms=%d", q.NumVars(), len(q.Atoms))
	}
	q, db = CliqueToCQ(graph.Path(6), 3)
	ok, err = eval.ConjunctiveBool(q, db)
	if err != nil || ok {
		t.Fatalf("path has no triangle: %v %v", ok, err)
	}
}

func TestQuickCliqueToCQ(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		g := graph.Random(5+rnd.Intn(8), 0.4+0.3*rnd.Float64(), seed)
		k := 2 + rnd.Intn(3)
		q, db := CliqueToCQ(g, k)
		got, err := eval.ConjunctiveBool(q, db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return got == g.HasClique(k)
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(101))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// --- Theorem 1(1) upper bound: CQ → weighted 2-CNF ------------------------

func TestCQToWeighted2CNFKnown(t *testing.T) {
	// Triangle query on K3 vs path graph.
	q, db := CliqueToCQ(graph.Complete(3), 3)
	red, err := CQToWeighted2CNF(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if red.Formula.MaxClauseWidth() > 2 {
		t.Fatalf("reduction must produce 2-CNF, got width %d", red.Formula.MaxClauseWidth())
	}
	assign, ok := red.Formula.WeightedSatisfiable(red.K)
	if !ok {
		t.Fatal("K3 triangle query must be satisfiable")
	}
	// Decode must give a genuine instantiation: all atoms matched.
	inst := red.Decode(assign)
	for _, a := range q.Atoms {
		row := make([]relation.Value, len(a.Args))
		for i, term := range a.Args {
			row[i] = inst[term.Var]
		}
		if !db.MustRel(a.Rel).Contains(row) {
			t.Fatalf("decoded instantiation %v misses atom %v", inst, a)
		}
	}

	q2, db2 := CliqueToCQ(graph.Path(5), 3)
	red2, err := CQToWeighted2CNF(q2, db2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := red2.Formula.WeightedSatisfiable(red2.K); ok {
		t.Fatal("path graph has no triangle; 2-CNF should be weight-unsat")
	}
}

func TestCQToWeighted2CNFRejects(t *testing.T) {
	db := query.NewDB()
	db.Set("R", query.Table(1, []relation.Value{1}))
	withHead := &query.CQ{Head: []query.Term{query.V(0)}, Atoms: []query.Atom{query.NewAtom("R", query.V(0))}}
	if _, err := CQToWeighted2CNF(withHead, db); err == nil {
		t.Fatal("non-Boolean query accepted")
	}
	withIneq := &query.CQ{Atoms: []query.Atom{query.NewAtom("R", query.V(0))},
		Ineqs: []query.Ineq{query.NeqConst(0, 5)}}
	if _, err := CQToWeighted2CNF(withIneq, db); err == nil {
		t.Fatal("≠ atoms accepted")
	}
}

func TestQuickCQToWeighted2CNF(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, db := randBoolCQ(rnd)
		want, err := eval.ConjunctiveBool(q, db)
		if err != nil {
			return true
		}
		red, err := CQToWeighted2CNF(q, db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		_, got := red.Formula.WeightedSatisfiable(red.K)
		if got != want {
			t.Logf("seed %d: 2CNF %v, query %v on %v", seed, got, want, q)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(102))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// randBoolCQ builds a small random Boolean pure CQ + database.
func randBoolCQ(rnd *rand.Rand) (*query.CQ, *query.DB) {
	db := query.NewDB()
	domain := 2 + rnd.Intn(3)
	names := []string{"R", "S"}
	arities := []int{1 + rnd.Intn(2), 2}
	for i, name := range names {
		r := query.NewTable(arities[i])
		row := make([]relation.Value, arities[i])
		for j := 0; j < rnd.Intn(8); j++ {
			for c := range row {
				row[c] = relation.Value(rnd.Intn(domain))
			}
			r.Append(row...)
		}
		r.Dedup()
		db.Set(name, r)
	}
	q := &query.CQ{}
	nvars := 1 + rnd.Intn(3)
	for i := 0; i < 1+rnd.Intn(3); i++ {
		ri := rnd.Intn(len(names))
		args := make([]query.Term, arities[ri])
		for j := range args {
			if rnd.Intn(6) == 0 {
				args[j] = query.C(relation.Value(rnd.Intn(domain)))
			} else {
				args[j] = query.V(query.Var(rnd.Intn(nvars)))
			}
		}
		q.Atoms = append(q.Atoms, query.Atom{Rel: names[ri], Args: args})
	}
	return q, db
}

// --- Theorem 1(1) upper bound, parameter v: BoundedVars -------------------

func TestBoundedVarsEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q, db := randBoolCQ(rnd)
		// Give it a head sometimes.
		if vars := q.BodyVars(); len(vars) > 0 && rnd.Intn(2) == 0 {
			q.Head = []query.Term{query.V(vars[rnd.Intn(len(vars))])}
		}
		want, err := eval.Conjunctive(q, db)
		if err != nil {
			return true
		}
		q2, db2, err := BoundedVars(q, db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(q2.Atoms) > 1<<uint(q.NumVars()) {
			t.Logf("seed %d: %d atoms exceeds 2^v", seed, len(q2.Atoms))
			return false
		}
		got, err := eval.Conjunctive(q2, db2)
		if err != nil {
			t.Logf("seed %d: transformed query error %v", seed, err)
			return false
		}
		if !relation.EqualSet(got, want) {
			t.Logf("seed %d: mismatch\n%v\n%v", seed, q, q2)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(103))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedVarsMergesSameVarSets(t *testing.T) {
	db := query.NewDB()
	db.Set("R", query.Table(2, []relation.Value{1, 2}, []relation.Value{2, 2}))
	db.Set("S", query.Table(2, []relation.Value{1, 2}, []relation.Value{1, 3}))
	// R(x0,x1) ∧ S(x0,x1) share the var set {x0,x1} → single intersected atom.
	q := &query.CQ{Atoms: []query.Atom{
		query.NewAtom("R", query.V(0), query.V(1)),
		query.NewAtom("S", query.V(0), query.V(1)),
	}}
	q2, db2, err := BoundedVars(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Atoms) != 1 {
		t.Fatalf("same-var-set atoms should merge: %v", q2)
	}
	rs := db2.MustRel(q2.Atoms[0].Rel)
	if rs.Len() != 1 || !rs.Contains([]relation.Value{1, 2}) {
		t.Fatalf("intersection wrong: %v", rs)
	}
}

// --- Theorem 1(2): positive queries ---------------------------------------

func randPositiveQuery(rnd *rand.Rand, nvars int) query.Formula {
	var build func(depth int) query.Formula
	build = func(depth int) query.Formula {
		if depth == 0 || rnd.Intn(3) == 0 {
			return query.FAtom{Atom: query.NewAtom("E",
				query.V(query.Var(rnd.Intn(nvars))), query.V(query.Var(rnd.Intn(nvars))))}
		}
		switch rnd.Intn(3) {
		case 0:
			return query.And{Subs: []query.Formula{build(depth - 1), build(depth - 1)}}
		case 1:
			return query.Or{Subs: []query.Formula{build(depth - 1), build(depth - 1)}}
		default:
			return query.Exists{V: query.Var(rnd.Intn(nvars)), Sub: build(depth - 1)}
		}
	}
	return build(3)
}

func TestQuickPositiveToUCQ(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		nvars := 2 + rnd.Intn(2)
		body := randPositiveQuery(rnd, nvars)
		// Close the query existentially.
		for _, v := range query.FreeVars(body) {
			body = query.Exists{V: v, Sub: body}
		}
		fo := &query.FOQuery{Body: body}
		db := query.NewDB()
		r := query.NewTable(2)
		for i := 0; i < rnd.Intn(8); i++ {
			r.Append(relation.Value(rnd.Intn(3)), relation.Value(rnd.Intn(3)))
		}
		r.Dedup()
		db.Set("E", r)
		want, err := eval.PositiveBool(fo, db)
		if err != nil {
			return true
		}
		cqs, err := PositiveToUCQ(fo)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		got := false
		for _, cq := range cqs {
			ok, err := eval.ConjunctiveBool(cq, db)
			if err != nil {
				t.Logf("seed %d: CQ error %v on %v", seed, err, cq)
				return false
			}
			if ok {
				got = true
				break
			}
		}
		if got != want {
			t.Logf("seed %d: UCQ %v, positive %v", seed, got, want)
			return false
		}
		// Footnote 2: single clique instance.
		g, k, err := PositiveToClique(fo, db)
		if err != nil {
			t.Logf("seed %d: clique reduction error %v", seed, err)
			return false
		}
		if g.HasClique(k) != want {
			t.Logf("seed %d: clique %v, positive %v (k=%d, n=%d)", seed, g.HasClique(k), want, k, g.N)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(104))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPositiveToUCQRejectsNegation(t *testing.T) {
	fo := &query.FOQuery{Body: query.Not{Sub: query.FAtom{Atom: query.NewAtom("E", query.C(0), query.C(0))}}}
	if _, err := PositiveToUCQ(fo); err == nil {
		t.Fatal("negation accepted")
	}
}

// --- Theorem 1(2) lower bound: weighted formula sat → positive query ------

func TestQuickWeightedFormulaToPositive(t *testing.T) {
	var build func(rnd *rand.Rand, depth, vars int) boolcirc.Formula
	build = func(rnd *rand.Rand, depth, vars int) boolcirc.Formula {
		if depth == 0 || rnd.Intn(3) == 0 {
			return boolcirc.FVar{V: rnd.Intn(vars), Neg: rnd.Intn(2) == 0}
		}
		switch rnd.Intn(3) {
		case 0:
			return boolcirc.FNot{Sub: build(rnd, depth-1, vars)}
		case 1:
			return boolcirc.FAnd{Subs: []boolcirc.Formula{build(rnd, depth-1, vars), build(rnd, depth-1, vars)}}
		default:
			return boolcirc.FOr{Subs: []boolcirc.Formula{build(rnd, depth-1, vars), build(rnd, depth-1, vars)}}
		}
	}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 2 + rnd.Intn(4)
		k := rnd.Intn(n + 1)
		phi := build(rnd, 3, n)
		_, want := boolcirc.WeightedSatFormula(phi, n, k)
		fo, db := WeightedFormulaToPositive(phi, n, k)
		got, err := eval.PositiveBool(fo, db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if got != want {
			t.Logf("seed %d: query %v, formula %v (n=%d k=%d, φ=%v)", seed, got, want, n, k, phi)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(105))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// --- Theorem 1(3): monotone circuit sat → first-order query ---------------

func TestMonotoneCircuitToFOKnown(t *testing.T) {
	// OR(AND(x0,x1), x2): weight-1 satisfiable (x2), weight-2 satisfiable.
	c := boolcirc.New(3)
	a := c.AddGate(boolcirc.And, 0, 1)
	c.SetOutput(c.AddGate(boolcirc.Or, a, 2))
	for k := 0; k <= 3; k++ {
		fo, db, err := MonotoneCircuitToFO(c, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		got, err := eval.FirstOrderBool(fo, db)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		_, want := c.WeightedSatisfiable(k)
		if got != want {
			t.Fatalf("k=%d: FO %v, circuit %v", k, got, want)
		}
	}
	if _, _, err := MonotoneCircuitToFO(c, 4); err == nil {
		t.Fatal("k beyond inputs must be rejected")
	}
}

func TestQuickMonotoneCircuitToFO(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		inputs := 2 + rnd.Intn(3)
		c := boolcirc.New(inputs)
		for i := 0; i < 1+rnd.Intn(4); i++ {
			kind := boolcirc.And
			if rnd.Intn(2) == 0 {
				kind = boolcirc.Or
			}
			fanin := 1 + rnd.Intn(2)
			in := make([]int, fanin)
			for j := range in {
				in[j] = rnd.Intn(len(c.Gates))
			}
			c.AddGate(kind, in...)
		}
		c.SetOutput(len(c.Gates) - 1)
		k := rnd.Intn(min(inputs, 2) + 1)
		fo, db, err := MonotoneCircuitToFO(c, k)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		got, err := eval.FirstOrderBool(fo, db)
		if err != nil {
			t.Logf("seed %d: eval %v", seed, err)
			return false
		}
		_, want := c.WeightedSatisfiable(k)
		if got != want {
			t.Logf("seed %d: FO %v, circuit %v (k=%d)", seed, got, want, k)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(106))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- Theorem 3: clique → acyclic CQ with comparisons ----------------------

func TestCliqueToComparisonsKnown(t *testing.T) {
	q, db := CliqueToComparisons(graph.Complete(4), 3)
	if !order.IsAcyclicWithComparisons(q) {
		t.Fatal("Theorem 3 query must be acyclic with comparisons")
	}
	ok, err := order.EvaluateBool(q, db)
	if err != nil || !ok {
		t.Fatalf("K4 has a triangle: %v %v", ok, err)
	}
	q2, db2 := CliqueToComparisons(graph.Path(5), 3)
	ok, err = order.EvaluateBool(q2, db2)
	if err != nil || ok {
		t.Fatalf("path has no triangle: %v %v", ok, err)
	}
}

func TestQuickCliqueToComparisons(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		g := graph.Random(4+rnd.Intn(4), 0.5+0.3*rnd.Float64(), seed)
		k := 2 + rnd.Intn(2)
		q, db := CliqueToComparisons(g, k)
		got, err := order.EvaluateBool(q, db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if got != g.HasClique(k) {
			t.Logf("seed %d: query %v, clique %v (n=%d k=%d)", seed, got, g.HasClique(k), g.N, k)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(107))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// --- Section 5: Hamiltonian path → acyclic CQ with inequalities -----------

func TestHamPathToIneqCQ(t *testing.T) {
	// Path graph: Hamiltonian. Star: not.
	q, db := HamPathToIneqCQ(graph.Path(5))
	ok, err := core.EvaluateBool(q, db)
	if err != nil || !ok {
		t.Fatalf("path graph is Hamiltonian: %v %v", ok, err)
	}
	star := graph.New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	q, db = HamPathToIneqCQ(star)
	ok, err = core.EvaluateBool(q, db)
	if err != nil || ok {
		t.Fatalf("star is not Hamiltonian: %v %v", ok, err)
	}
}

func TestQuickHamPath(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 2 + rnd.Intn(5)
		g := graph.Random(n, 0.3+0.5*rnd.Float64(), seed)
		q, db := HamPathToIneqCQ(g)
		got, err := core.EvaluateBool(q, db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		_, want := g.HamiltonianPath()
		if got != want {
			t.Logf("seed %d: query %v, DP %v (n=%d)", seed, got, want, n)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(108))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
