// Package cnf implements CNF formulas and the weighted satisfiability
// problem at the heart of the W hierarchy: does a formula have a satisfying
// assignment with exactly k variables set to true? The 2-CNF case is the
// target of the paper's Theorem 1(1) upper-bound reduction, and the 3-CNF
// case defines W[1].
package cnf

import "fmt"

// Lit is a literal: +(v+1) for variable v, −(v+1) for its negation.
// Variables are 0-based.
type Lit int32

// PosLit and NegLit build literals for variable v.
func PosLit(v int) Lit { return Lit(v + 1) }

// NegLit returns the negative literal of variable v.
func NegLit(v int) Lit { return Lit(-(v + 1)) }

// Var returns the 0-based variable of l.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l) - 1
	}
	return int(l) - 1
}

// Positive reports whether l is a positive literal.
func (l Lit) Positive() bool { return l > 0 }

func (l Lit) String() string {
	if l.Positive() {
		return fmt.Sprintf("z%d", l.Var())
	}
	return fmt.Sprintf("~z%d", l.Var())
}

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a conjunction of clauses over NumVars variables.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// New returns an empty formula over n variables.
func New(n int) *Formula { return &Formula{NumVars: n} }

// AddClause appends the clause with the given literals.
func (f *Formula) AddClause(lits ...Lit) {
	for _, l := range lits {
		v := l.Var()
		if v < 0 || v >= f.NumVars {
			panic(fmt.Sprintf("cnf: literal %v out of range (%d vars)", l, f.NumVars))
		}
	}
	f.Clauses = append(f.Clauses, append(Clause(nil), lits...))
}

// MaxClauseWidth returns the width of the widest clause.
func (f *Formula) MaxClauseWidth() int {
	w := 0
	for _, c := range f.Clauses {
		if len(c) > w {
			w = len(c)
		}
	}
	return w
}

// Eval evaluates the formula under a full assignment.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var()] == l.Positive() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Weight returns the number of true variables in assign.
func Weight(assign []bool) int {
	n := 0
	for _, b := range assign {
		if b {
			n++
		}
	}
	return n
}

const (
	unknown int8 = iota
	fTrue
	fFalse
)

// WeightedSatisfiable reports whether the formula has a satisfying
// assignment with exactly k true variables, returning one if so. It runs a
// DPLL search with unit propagation and weight-window pruning; this is an
// exact exponential solver — the whole point of the paper is that no
// f(k)·poly algorithm is expected.
func (f *Formula) WeightedSatisfiable(k int) ([]bool, bool) {
	if k < 0 || k > f.NumVars {
		return nil, false
	}
	s := &solver{f: f, assign: make([]int8, f.NumVars), want: k}
	if !s.search() {
		return nil, false
	}
	out := make([]bool, f.NumVars)
	for v, a := range s.assign {
		out[v] = a == fTrue
	}
	return out, true
}

type solver struct {
	f      *Formula
	assign []int8
	trues  int
	nset   int
	want   int
}

// propagate runs unit propagation and weight pruning to a fixpoint.
// It returns false on conflict and appends every assignment it makes to
// trail.
func (s *solver) propagate(trail *[]int) bool {
	for {
		if s.trues > s.want || s.trues+(s.f.NumVars-s.nset) < s.want {
			return false
		}
		// Weight forcing: if the window is closed, force the remainder.
		if s.trues == s.want {
			forced := false
			for v := range s.assign {
				if s.assign[v] == unknown {
					s.set(v, fFalse, trail)
					forced = true
				}
			}
			if forced {
				continue
			}
		}
		if s.trues+(s.f.NumVars-s.nset) == s.want {
			forced := false
			for v := range s.assign {
				if s.assign[v] == unknown {
					s.set(v, fTrue, trail)
					forced = true
				}
			}
			if forced {
				continue
			}
		}
		unitFound := false
		for _, c := range s.f.Clauses {
			sat := false
			unassigned := 0
			var unit Lit
			for _, l := range c {
				switch s.assign[l.Var()] {
				case unknown:
					unassigned++
					unit = l
				case fTrue:
					if l.Positive() {
						sat = true
					}
				case fFalse:
					if !l.Positive() {
						sat = true
					}
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				return false // falsified clause
			}
			if unassigned == 1 {
				val := fFalse
				if unit.Positive() {
					val = fTrue
				}
				s.set(unit.Var(), val, trail)
				unitFound = true
			}
		}
		if !unitFound {
			return true
		}
	}
}

func (s *solver) set(v int, val int8, trail *[]int) {
	s.assign[v] = val
	s.nset++
	if val == fTrue {
		s.trues++
	}
	*trail = append(*trail, v)
}

func (s *solver) unset(trail []int) {
	for _, v := range trail {
		if s.assign[v] == fTrue {
			s.trues--
		}
		s.assign[v] = unknown
		s.nset--
	}
}

func (s *solver) search() bool {
	var trail []int
	if !s.propagate(&trail) {
		s.unset(trail)
		return false
	}
	// Pick the first unassigned variable.
	branch := -1
	for v := range s.assign {
		if s.assign[v] == unknown {
			branch = v
			break
		}
	}
	if branch == -1 {
		if s.trues == s.want {
			return true
		}
		s.unset(trail)
		return false
	}
	for _, val := range []int8{fTrue, fFalse} {
		var sub []int
		s.set(branch, val, &sub)
		if s.search() {
			return true
		}
		s.unset(sub)
	}
	s.unset(trail)
	return false
}

// WeightedSatisfiableBrute enumerates all k-subsets of variables — the
// reference oracle for the DPLL solver in tests. Practical only for small
// formulas.
func (f *Formula) WeightedSatisfiableBrute(k int) ([]bool, bool) {
	if k < 0 || k > f.NumVars {
		return nil, false
	}
	assign := make([]bool, f.NumVars)
	idx := make([]int, k)
	var rec func(pos, start int) bool
	rec = func(pos, start int) bool {
		if pos == k {
			return f.Eval(assign)
		}
		for v := start; v <= f.NumVars-(k-pos); v++ {
			assign[v] = true
			idx[pos] = v
			if rec(pos+1, v+1) {
				return true
			}
			assign[v] = false
		}
		return false
	}
	if rec(0, 0) {
		return assign, true
	}
	return nil, false
}

func (f *Formula) String() string {
	s := fmt.Sprintf("cnf{%d vars, %d clauses}", f.NumVars, len(f.Clauses))
	return s
}
