package cnf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLit(t *testing.T) {
	p, n := PosLit(3), NegLit(3)
	if p.Var() != 3 || n.Var() != 3 {
		t.Fatalf("Var: %d %d", p.Var(), n.Var())
	}
	if !p.Positive() || n.Positive() {
		t.Fatal("sign wrong")
	}
	if p.String() != "z3" || n.String() != "~z3" {
		t.Fatalf("String: %q %q", p, n)
	}
}

func TestAddClauseRangePanics(t *testing.T) {
	f := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.AddClause(PosLit(5))
}

func TestEval(t *testing.T) {
	f := New(3)
	f.AddClause(PosLit(0), NegLit(1))
	f.AddClause(PosLit(2))
	if !f.Eval([]bool{true, true, true}) {
		t.Fatal("satisfying assignment rejected")
	}
	if f.Eval([]bool{false, true, true}) {
		t.Fatal("falsifying assignment accepted")
	}
	if f.Eval([]bool{true, true, false}) {
		t.Fatal("unit clause ignored")
	}
}

func TestWeightedSimple(t *testing.T) {
	// (z0 ∨ z1) ∧ (¬z0 ∨ ¬z1): exactly one of z0,z1. Solutions have weight 1.
	f := New(2)
	f.AddClause(PosLit(0), PosLit(1))
	f.AddClause(NegLit(0), NegLit(1))
	if _, ok := f.WeightedSatisfiable(0); ok {
		t.Fatal("weight 0 should fail")
	}
	a, ok := f.WeightedSatisfiable(1)
	if !ok || Weight(a) != 1 || !f.Eval(a) {
		t.Fatalf("weight 1 should succeed, got %v %v", a, ok)
	}
	if _, ok := f.WeightedSatisfiable(2); ok {
		t.Fatal("weight 2 should fail")
	}
}

func TestWeightedOutOfRange(t *testing.T) {
	f := New(2)
	if _, ok := f.WeightedSatisfiable(-1); ok {
		t.Fatal("negative weight")
	}
	if _, ok := f.WeightedSatisfiable(3); ok {
		t.Fatal("weight beyond variables")
	}
	if a, ok := f.WeightedSatisfiable(2); !ok || Weight(a) != 2 {
		t.Fatal("empty formula with full weight should succeed")
	}
}

func TestWeightedAtMostOneGroups(t *testing.T) {
	// Three groups of three variables, at most one true per group, and a
	// conflict: picking z0 forbids z3.
	f := New(9)
	for g := 0; g < 3; g++ {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				f.AddClause(NegLit(3*g+i), NegLit(3*g+j))
			}
		}
	}
	f.AddClause(NegLit(0), NegLit(3))
	a, ok := f.WeightedSatisfiable(3)
	if !ok {
		t.Fatal("should be satisfiable with one per group")
	}
	if Weight(a) != 3 || !f.Eval(a) {
		t.Fatalf("bad witness %v", a)
	}
	if _, ok := f.WeightedSatisfiable(4); ok {
		t.Fatal("weight 4 impossible with at-most-one groups")
	}
}

func TestMaxClauseWidth(t *testing.T) {
	f := New(4)
	f.AddClause(PosLit(0))
	f.AddClause(PosLit(0), NegLit(1), PosLit(2))
	if f.MaxClauseWidth() != 3 {
		t.Fatalf("width = %d", f.MaxClauseWidth())
	}
}

func randFormula(rnd *rand.Rand) *Formula {
	n := 3 + rnd.Intn(8)
	f := New(n)
	m := rnd.Intn(12)
	for i := 0; i < m; i++ {
		w := 1 + rnd.Intn(3)
		var c []Lit
		for j := 0; j < w; j++ {
			v := rnd.Intn(n)
			if rnd.Intn(2) == 0 {
				c = append(c, PosLit(v))
			} else {
				c = append(c, NegLit(v))
			}
		}
		f.AddClause(c...)
	}
	return f
}

// Property: the DPLL weighted solver agrees with brute-force subset
// enumeration, and its witnesses are valid.
func TestQuickDPLLAgreesWithBrute(t *testing.T) {
	fcheck := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		f := randFormula(rnd)
		for k := 0; k <= f.NumVars; k++ {
			a1, ok1 := f.WeightedSatisfiable(k)
			_, ok2 := f.WeightedSatisfiableBrute(k)
			if ok1 != ok2 {
				t.Logf("seed %d k %d: dpll=%v brute=%v (%v)", seed, k, ok1, ok2, f)
				return false
			}
			if ok1 && (Weight(a1) != k || !f.Eval(a1)) {
				t.Logf("seed %d k %d: invalid witness", seed, k)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(fcheck, cfg); err != nil {
		t.Fatal(err)
	}
}
