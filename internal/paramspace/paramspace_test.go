package paramspace

import (
	"testing"

	"pyquery/internal/query"
)

var all = []Parameterization{QFixed, QVar, VFixed, VVar}

func TestPartialOrderShape(t *testing.T) {
	// Reflexive.
	for _, p := range all {
		if !LessOrEqual(p, p) {
			t.Fatalf("%v not ≤ itself", p)
		}
	}
	// Bottom and top.
	for _, p := range all {
		if !LessOrEqual(QFixed, p) {
			t.Fatalf("QFixed must be the bottom (vs %v)", p)
		}
		if !LessOrEqual(p, VVar) {
			t.Fatalf("VVar must be the top (vs %v)", p)
		}
	}
	// The middle pair is incomparable.
	if LessOrEqual(QVar, VFixed) || LessOrEqual(VFixed, QVar) {
		t.Fatal("q/variable and v/fixed must be incomparable")
	}
	// Antisymmetry on distinct elements.
	for _, a := range all {
		for _, b := range all {
			if a != b && LessOrEqual(a, b) && LessOrEqual(b, a) {
				t.Fatalf("%v and %v mutually ≤", a, b)
			}
		}
	}
}

func TestAboveBelow(t *testing.T) {
	if got := Above(QFixed); len(got) != 4 {
		t.Fatalf("Above(bottom) = %v", got)
	}
	if got := Below(QFixed); len(got) != 1 {
		t.Fatalf("Below(bottom) = %v", got)
	}
	if got := Above(VVar); len(got) != 1 {
		t.Fatalf("Above(top) = %v", got)
	}
	if got := Below(VVar); len(got) != 4 {
		t.Fatalf("Below(top) = %v", got)
	}
	if got := Above(QVar); len(got) != 2 {
		t.Fatalf("Above(QVar) = %v", got)
	}
}

func TestParameterValues(t *testing.T) {
	q := &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(0)),
		},
	}
	if Parameter(q, QFixed) != q.Size() || Parameter(q, QVar) != q.Size() {
		t.Fatal("q parameterizations must use Size")
	}
	if Parameter(q, VFixed) != 2 || Parameter(q, VVar) != 2 {
		t.Fatal("v parameterizations must use NumVars")
	}
}

func TestIdentityReductionValid(t *testing.T) {
	q := &query.CQ{
		Atoms: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))},
	}
	// Along every arc the identity reduction must hold (v ≤ q).
	for _, arc := range Arcs {
		if !IdentityReductionValid(q, arc[0], arc[1]) {
			t.Fatalf("identity reduction fails on arc %v→%v", arc[0], arc[1])
		}
	}
	// Against the order it must be rejected.
	if IdentityReductionValid(q, VVar, QFixed) {
		t.Fatal("downward identity accepted")
	}
}

func TestStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range all {
		s := p.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("bad String %q", s)
		}
		seen[s] = true
	}
	if Parameterization(99).String() != "unknown" {
		t.Fatal("out-of-range String")
	}
}
