// Package paramspace encodes Figure 1 of the paper: the four
// parameterizations of the query evaluation problem — parameter q (query
// size) or v (number of variables), each with fixed or variable database
// schema — and Proposition 1's identity-map reductions between them.
// Hardness propagates up the partial order; membership propagates down.
package paramspace

import "pyquery/internal/query"

// Parameterization identifies one of the four parametric problems.
type Parameterization int

// The four parameterizations of Figure 1.
const (
	// QFixed: parameter q, fixed schema — the bottom of the order.
	QFixed Parameterization = iota
	// QVar: parameter q, variable schema.
	QVar
	// VFixed: parameter v, fixed schema.
	VFixed
	// VVar: parameter v, variable schema — the top of the order.
	VVar
)

func (p Parameterization) String() string {
	switch p {
	case QFixed:
		return "q/fixed-schema"
	case QVar:
		return "q/variable-schema"
	case VFixed:
		return "v/fixed-schema"
	case VVar:
		return "v/variable-schema"
	}
	return "unknown"
}

// Arcs are Figure 1's four identity-map reductions, each from the easier
// problem to the harder one. q-parameterized problems reduce to
// v-parameterized ones because v ≤ q on every query; fixed-schema problems
// reduce to variable-schema ones because a fixed-schema instance is a
// variable-schema instance.
var Arcs = [][2]Parameterization{
	{QFixed, QVar},
	{QFixed, VFixed},
	{QVar, VVar},
	{VFixed, VVar},
}

// LessOrEqual reports whether a reduces to b through the reflexive-
// transitive closure of Arcs (a is at most as hard as b).
func LessOrEqual(a, b Parameterization) bool {
	if a == b {
		return true
	}
	for _, arc := range Arcs {
		if arc[0] == a && LessOrEqual(arc[1], b) {
			return true
		}
	}
	return false
}

// Above returns every parameterization reachable from p (inclusive):
// hardness of p implies hardness of all of these.
func Above(p Parameterization) []Parameterization {
	var out []Parameterization
	for _, q := range []Parameterization{QFixed, QVar, VFixed, VVar} {
		if LessOrEqual(p, q) {
			out = append(out, q)
		}
	}
	return out
}

// Below returns every parameterization that reduces to p (inclusive):
// membership of p in a W class implies membership for all of these.
func Below(p Parameterization) []Parameterization {
	var out []Parameterization
	for _, q := range []Parameterization{QFixed, QVar, VFixed, VVar} {
		if LessOrEqual(q, p) {
			out = append(out, q)
		}
	}
	return out
}

// Parameter returns the parameter value of a query under p: its size proxy
// for the q parameterizations, its variable count for the v ones.
func Parameter(q *query.CQ, p Parameterization) int {
	switch p {
	case QFixed, QVar:
		return q.Size()
	default:
		return q.NumVars()
	}
}

// IdentityReductionValid checks Proposition 1 on a concrete instance: the
// identity map is a parametric reduction from `from` to `to` iff the target
// parameter is bounded by the source parameter (g = identity suffices,
// since v ≤ q for every query and fixed-schema instances are variable-
// schema instances).
func IdentityReductionValid(q *query.CQ, from, to Parameterization) bool {
	if !LessOrEqual(from, to) {
		return false
	}
	return Parameter(q, to) <= Parameter(q, from)
}
