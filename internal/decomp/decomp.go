// Package decomp evaluates cyclic conjunctive queries of bounded
// generalized hypertree width. Theorem 1 of the paper puts the query size
// in the exponent for general cyclic queries, but a width-k decomposition
// (internal/hypergraph.Decompose) reduces evaluation to an *acyclic*
// instance over materialized bags: each bag joins at most k atoms (so its
// size is at most n^k) and the bag tree is a join tree, so the shared
// Yannakakis passes (yannakakis.Tree) finish in time polynomial in input +
// output for fixed k — the bounded-width territory of Gottlob–Leone–
// Scarcello that Mengel's survey maps below the paper's lower bounds.
//
// The planner owns every width decision (ROADMAP standing rule): PlanFor
// estimates each bag with plan.BagCost from the shared statistics and
// compares the summed bag cost against the backtracker's plan.Build cost;
// pyquery routes to this engine only when the decomposition wins the
// estimate. Per-bag join orders come from plan.Build and the bag tree is
// rooted by plan.OrderForest on materialized cardinalities — this package
// never re-derives an ordering of its own.
package decomp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"pyquery/internal/eval"
	"pyquery/internal/governor"
	"pyquery/internal/hypergraph"
	"pyquery/internal/parallel"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/yannakakis"
)

// MaxWidth is the largest guard count per bag the engine accepts: bag
// materialization costs up to n^MaxWidth, so the bound keeps the "tractable
// cyclic" class honest. Queries without a width-≤ MaxWidth decomposition
// stay with the generic backtracker.
const MaxWidth = 3

// ErrNoDecomposition is returned when no width-≤ MaxWidth decomposition
// exists for the query's hypergraph.
var ErrNoDecomposition = errors.New("decomp: no width-≤3 hypertree decomposition")

// Options controls the evaluator.
type Options struct {
	// Parallelism is the worker count: bags materialize concurrently with
	// leftover budget flowing into the partitioned join kernel, and the
	// Yannakakis passes over the bag tree inherit the same budget. 0 means
	// GOMAXPROCS; 1 is the serial evaluator. The answer set is identical at
	// every level.
	Parallelism int
	// Route reuses a plan from PlanFor (the facade passes the one the cost
	// gate was decided on, so atoms are reduced exactly once). nil
	// recomputes.
	Route *Route
	// Ctx, when cancelable, aborts the evaluation between bag
	// materializations and between the Yannakakis pass steps; the engine
	// then returns Ctx.Err() instead of a result.
	Ctx context.Context
	// Meter, when non-nil, governs the evaluation: bag materializations and
	// pass steps become typed checkpoints, every materialized bag and pass
	// relation is charged against the row/byte budget, and a trip aborts
	// with the meter's typed error.
	Meter *governor.Meter
}

// check is the evaluation-boundary checkpoint: governed when a meter is
// threaded, the plain nil-tolerant ctx poll otherwise.
func (o Options) check(step string) error {
	if o.Meter != nil {
		return o.Meter.Check(step)
	}
	return parallel.CtxErr(o.Ctx)
}

// BagPlan is the planning view of one bag.
type BagPlan struct {
	// Guards and Covered index q.Atoms: guards are joined to materialize
	// the bag, covered atoms are enforced by semijoin afterwards.
	Guards, Covered []int
	// Vars is the bag's χ in ascending variable order — the materialized
	// schema.
	Vars []query.Var
	// Est is the estimated materialized cardinality (plan.BagCost); the
	// per-bag cost sums into Route.Cost.
	Est float64
}

// Route is the decomposition plan for one (query, database) pair: the bag
// tree, per-bag estimates, and the cost-gate verdict against the generic
// backtracker.
type Route struct {
	// Decomp is the chosen width-≤ MaxWidth decomposition.
	Decomp *hypergraph.Decomposition
	// Bags mirrors Decomp.Bags with estimates and variable schemas.
	Bags []BagPlan
	// Width is the decomposition's width (max guards per bag).
	Width int
	// Cost is Σ bag costs — the engine's estimated materialization work.
	Cost float64
	// BacktrackCost is the generic backtracker's plan.Build cost on the
	// same inputs, and Use the gate verdict Cost < BacktrackCost.
	BacktrackCost float64
	Use           bool
	// Root is the estimate-weighted bag-tree root (execution re-roots on
	// actual materialized cardinalities; see Evaluate).
	Root int

	vars   []query.Var // hypergraph vertex id → query variable
	inputs []plan.Input
	reds   []*relation.Relation
}

// Decomposable reports the structural half of the routing decision: the
// query is a pure conjunctive query (no ≠ atoms, no variable comparisons)
// whose hypergraph admits a width-≤ MaxWidth decomposition. The facade's
// Plan consults it for cyclic queries; the database-dependent cost gate
// lives in PlanFor.
func Decomposable(q *query.CQ) bool {
	if eligible(q) != nil {
		return false
	}
	h, _ := plan.AtomHypergraph(q)
	_, ok := h.Decompose(MaxWidth, nil)
	return ok
}

// eligible rejects query shapes the engine does not handle: ≠ atoms and
// variable comparisons belong to the backtracker (cyclic) or the Theorem
// 2/3 engines (acyclic). Ground comparisons are fine — Evaluate checks
// them up front.
func eligible(q *query.CQ) error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("decomp: query has no relational atoms")
	}
	if len(q.Ineqs) > 0 {
		return fmt.Errorf("decomp: query has ≠ atoms; use the generic engine")
	}
	for _, c := range q.Cmps {
		if c.Left.IsVar || c.Right.IsVar {
			return fmt.Errorf("decomp: query has variable comparisons; use the comparison engine")
		}
	}
	return nil
}

// PlanFor builds the decomposition plan: reduce the atoms once, estimate
// every candidate bag with plan.BagCost (the search minimizes the summed
// estimate), and compare against the backtracker's plan.Build cost. The
// returned Route carries the reduced relations so EvaluateOpts can reuse
// them via Options.Route.
func PlanFor(q *query.CQ, db *query.DB) (*Route, error) {
	if err := eligible(q); err != nil {
		return nil, err
	}
	inputs, reds, err := eval.PlanInputs(q, db)
	if err != nil {
		return nil, err
	}
	back := plan.Build(inputs, q.HeadVars())
	h, vars := plan.AtomHypergraph(q)
	chiVars := func(guards []int) []query.Var {
		seen := make(map[int]bool)
		var out []query.Var
		for _, g := range guards {
			for _, vert := range h.Edges[g] {
				if !seen[vert] {
					seen[vert] = true
					out = append(out, vars[vert])
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	// A bag costs its guard join (Σ intermediate cardinalities) plus one
	// probe per covered-atom row (the enforcement semijoins) — the same
	// number the search minimizes and the gate compares.
	bagCost := func(guards, covered []int, outVars []query.Var) (float64, float64) {
		est, cost := plan.BagCost(inputs, guards, outVars)
		for _, ci := range covered {
			cost += float64(inputs[ci].Rows)
		}
		return est, cost
	}
	d, ok := h.Decompose(MaxWidth, func(guards, covered []int) float64 {
		_, cost := bagCost(guards, covered, chiVars(guards))
		return cost
	})
	if !ok {
		return nil, ErrNoDecomposition
	}
	rt := &Route{Decomp: d, Width: d.Width, BacktrackCost: back.Cost, vars: vars, inputs: inputs, reds: reds}
	ests := make([]float64, len(d.Bags))
	for i, b := range d.Bags {
		bagVars := make([]query.Var, len(b.Vertices))
		for j, vert := range b.Vertices {
			bagVars[j] = vars[vert]
		}
		est, cost := bagCost(b.Guards, b.Covered, bagVars)
		rt.Bags = append(rt.Bags, BagPlan{Guards: b.Guards, Covered: b.Covered, Vars: bagVars, Est: est})
		rt.Cost += cost
		ests[i] = est
	}
	rt.Root = d.Forest.RerootedBy(ests).JoinTree().Roots[0]
	rt.Use = rt.Cost < back.Cost
	return rt, nil
}

// RunStats reports what an evaluation did: the decomposition width and each
// bag's actual materialized cardinality (in Route bag order), for the
// estimated-vs-actual line qeval -explain prints. A BagRows entry of −1
// marks a bag never materialized because an earlier bag came up empty.
type RunStats struct {
	Width   int
	BagRows []int
	Route   *Route
}

// Evaluate computes Q(d) through bag materialization + the shared
// Yannakakis passes. The query must be a pure conjunctive query with a
// width-≤ MaxWidth decomposition.
func Evaluate(q *query.CQ, db *query.DB) (*relation.Relation, error) {
	return EvaluateOpts(q, db, Options{})
}

// EvaluateOpts is Evaluate with explicit options.
func EvaluateOpts(q *query.CQ, db *query.DB, opts Options) (*relation.Relation, error) {
	res, _, err := EvaluateStats(q, db, opts)
	return res, err
}

// EvaluateStats is EvaluateOpts returning per-bag statistics.
func EvaluateStats(q *query.CQ, db *query.DB, opts Options) (*relation.Relation, RunStats, error) {
	rt, workers, err := route(q, db, opts)
	if err != nil {
		return nil, RunStats{}, err
	}
	st := RunStats{Width: rt.Width, Route: rt}
	if err := opts.check("start"); err != nil {
		return nil, st, err
	}
	if groundFalse(q) || anyEmpty(rt.reds) {
		return query.NewTable(len(q.Head)), st, nil
	}
	t, rows, empty := Materialize(q, rt, workers, opts.Ctx, opts.Meter)
	st.BagRows = rows
	if err := opts.check("materialize"); err != nil {
		return nil, st, err
	}
	if empty || t.FullReduce() {
		if err := opts.check("reduce"); err != nil {
			return nil, st, err
		}
		return query.NewTable(len(q.Head)), st, nil
	}
	pstar := t.JoinProject()
	if err := opts.check("finish"); err != nil {
		return nil, st, err
	}
	return yannakakis.HeadTuples(q, pstar), st, nil
}

// EvaluateBool decides Q(d) ≠ ∅ with bag materialization plus the bottom-up
// semijoin pass only.
func EvaluateBool(q *query.CQ, db *query.DB) (bool, error) {
	return EvaluateBoolOpts(q, db, Options{})
}

// EvaluateBoolOpts is EvaluateBool with explicit options.
func EvaluateBoolOpts(q *query.CQ, db *query.DB, opts Options) (bool, error) {
	rt, workers, err := route(q, db, opts)
	if err != nil {
		return false, err
	}
	if err := opts.check("start"); err != nil {
		return false, err
	}
	if groundFalse(q) || anyEmpty(rt.reds) {
		return false, nil
	}
	t, _, empty := Materialize(q, rt, workers, opts.Ctx, opts.Meter)
	if err := opts.check("materialize"); err != nil {
		return false, err
	}
	if empty {
		return false, nil
	}
	ok := !t.BottomUpSemijoin()
	if err := opts.check("finish"); err != nil {
		return false, err
	}
	return ok, nil
}

// route resolves the Options into a Route and worker budget.
func route(q *query.CQ, db *query.DB, opts Options) (*Route, int, error) {
	rt := opts.Route
	if rt == nil {
		var err error
		rt, err = PlanFor(q, db)
		if err != nil {
			return nil, 0, err
		}
	}
	return rt, parallel.Workers(opts.Parallelism), nil
}

// groundFalse reports whether a ground comparison already falsifies the
// query (markers from head substitution, or user-written constants).
func groundFalse(q *query.CQ) bool {
	for _, c := range q.Cmps {
		if !c.Left.IsVar && !c.Right.IsVar && !c.Holds(c.Left.Const, c.Right.Const) {
			return true
		}
	}
	return false
}

func anyEmpty(rels []*relation.Relation) bool {
	for _, r := range rels {
		if r.Empty() {
			return true
		}
	}
	return false
}

// Materialize joins each bag's guard atoms (plan.Build order, partitioned
// kernel), projects onto χ, and semijoin-enforces the bag's covered atoms;
// bags run across workers with the leftover budget inside each join. The
// bag tree is then re-rooted by plan.OrderForest on the *actual*
// materialized cardinalities and wrapped as a yannakakis.Tree. empty means
// some bag materialized to ∅ (the answer is empty).
//
// The facade's prepared layer calls this once at Prepare time and freezes
// the returned tree as a template (yannakakis.Tree.Fork per execution):
// for a fixed database epoch the materialized bags are as immutable as the
// plan, so serving workloads pay the O(n^width) bag joins once and each
// execution runs only the acyclic passes.
func Materialize(q *query.CQ, rt *Route, workers int, ctx context.Context, m *governor.Meter) (t *yannakakis.Tree, bagRows []int, empty bool) {
	nb := len(rt.Bags)
	rels := make([]*relation.Relation, nb)
	var sawEmpty atomic.Bool
	outer, inner := parallel.Split(workers, nb)
	if err := parallel.ForEachCtx(ctx, outer, nb, func(u int) {
		if sawEmpty.Load() || m.Tripped() {
			return // rels[u] stays nil: skipped, BagRows reports −1
		}
		if m.Check("bag") != nil {
			return
		}
		r := rt.materializeBag(u, inner)
		if m.Charge(int64(r.Len()), r.Bytes(), "bag") != nil {
			// Over budget on this bag: leave the slot nil so the caller
			// (which must consult the meter before trusting empty) can
			// release exactly the rows/bytes that were charged.
			return
		}
		rels[u] = r
		if r.Empty() {
			sawEmpty.Store(true)
		}
	}); err != nil {
		// Canceled between bags: report what materialized; the caller
		// surfaces ctx.Err() and discards the partial tree.
		sawEmpty.Store(true)
	}
	if m.Tripped() {
		// A trip mid-materialization leaves a partial bag set; the caller
		// reads the typed error from the meter and discards the result.
		sawEmpty.Store(true)
	}
	bagRows = make([]int, nb)
	for u, r := range rels {
		if r == nil {
			bagRows[u] = -1
		} else {
			bagRows[u] = r.Len()
		}
	}
	if sawEmpty.Load() {
		return nil, bagRows, true
	}

	bagInputs := make([]plan.Input, nb)
	for u := range rels {
		bagInputs[u] = plan.Input{Label: fmt.Sprintf("bag%d", u), Rows: rels[u].Len(), Vars: rt.Bags[u].Vars}
	}
	tree := plan.OrderForest(rt.Decomp.Forest, bagInputs).JoinTree()

	// Subtree variable sets over the bag hypergraph (vertices shared with
	// the atom hypergraph), translated back to query variables.
	bagEdges := make([][]int, nb)
	for u := range rt.Bags {
		bagEdges[u] = rt.Decomp.Bags[u].Vertices
	}
	hb := hypergraph.New(len(rt.vars), bagEdges)
	subtreeVerts := hb.SubtreeVertices(tree)
	subtreeVars := make([]map[query.Var]bool, nb)
	for u, set := range subtreeVerts {
		m := make(map[query.Var]bool, len(set))
		for vert := range set {
			m[rt.vars[vert]] = true
		}
		subtreeVars[u] = m
	}
	headVars := make(map[query.Var]bool)
	for _, v := range q.HeadVars() {
		headVars[v] = true
	}
	return &yannakakis.Tree{Forest: tree, Rels: rels, SubtreeVars: subtreeVars,
		HeadVars: headVars, Workers: workers, Ctx: ctx, Meter: m}, bagRows, false
}

// materializeBag builds one bag relation: guard joins in plan.Build order
// (over the same statistics-bearing inputs the bag estimate used),
// projection onto χ (always a fresh relation, so the in-place semijoin
// passes never touch a shared reduced atom), then covered-atom semijoins.
func (rt *Route) materializeBag(u, workers int) *relation.Relation {
	bag := rt.Bags[u]
	sub := make([]plan.Input, len(bag.Guards))
	for i, g := range bag.Guards {
		sub[i] = rt.inputs[g]
	}
	order := plan.Build(sub, bag.Vars).Order()
	cur := rt.reds[bag.Guards[order[0]]]
	for _, oi := range order[1:] {
		cur = relation.NaturalJoinPar(cur, rt.reds[bag.Guards[oi]], workers)
	}
	schema := make(relation.Schema, len(bag.Vars))
	for i, v := range bag.Vars {
		schema[i] = relation.Attr(v)
	}
	cur = relation.Project(cur, schema)
	for _, ci := range bag.Covered {
		cur = relation.SemijoinInPlacePar(cur, rt.reds[ci], workers)
		if cur.Empty() {
			break
		}
	}
	return cur
}
