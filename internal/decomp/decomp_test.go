package decomp

import (
	"fmt"
	"math/rand"
	"testing"

	"pyquery/internal/eval"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

// randGraphDB builds {E(·,·)} with the given density.
func randGraphDB(rnd *rand.Rand, rows, domain int) *query.DB {
	db := query.NewDB()
	e := query.NewTable(2)
	for i := 0; i < rows; i++ {
		e.Append(relation.Value(rnd.Intn(domain)), relation.Value(rnd.Intn(domain)))
	}
	db.Set("E", e.Dedup())
	return db
}

// cycleCQ is the canonical n-cycle query (one construction for the whole
// repo — the E8/A6 benchmarks use the same family).
func cycleCQ(n int) *query.CQ { return workload.CycleQuery(n) }

// randCyclicCQ builds a random low-width cyclic query: a 3–6 cycle,
// sometimes with a chord atom, a constant argument, or a repeated
// variable, plus occasionally a Boolean or constant-bearing head.
func randCyclicCQ(rnd *rand.Rand) *query.CQ {
	n := 3 + rnd.Intn(4)
	q := cycleCQ(n)
	if rnd.Intn(3) == 0 { // chord
		a, b := rnd.Intn(n), rnd.Intn(n)
		if a != b {
			q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(query.Var(a)), query.V(query.Var(b))))
		}
	}
	if rnd.Intn(4) == 0 { // constant argument
		i := rnd.Intn(len(q.Atoms))
		q.Atoms[i].Args[rnd.Intn(2)] = query.C(relation.Value(rnd.Intn(6)))
	}
	if rnd.Intn(5) == 0 { // repeated variable (self-loop atom)
		v := query.Var(rnd.Intn(n))
		q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(v), query.V(v)))
	}
	switch rnd.Intn(4) {
	case 0:
		q.Head = nil // Boolean
	case 1:
		q.Head = append(q.Head, query.C(7)) // constant head column
	}
	return q
}

// TestMatchesBacktracker pins answer-set equality between the
// decomposition engine and the generic backtracker (written order — no
// shared planning code) on randomized cyclic instances, at several
// parallelism levels.
func TestMatchesBacktracker(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := randGraphDB(rnd, 20+rnd.Intn(60), 5+rnd.Intn(6))
		q := randCyclicCQ(rnd)
		tag := fmt.Sprintf("seed=%d q=%v", seed, q)
		want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true})
		if err != nil {
			t.Fatalf("%s baseline: %v", tag, err)
		}
		for _, par := range []int{1, 3} {
			got, err := EvaluateOpts(q, db, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s decomp par=%d: %v", tag, par, err)
			}
			if !relation.EqualSet(got, want) {
				t.Fatalf("%s: decomp par=%d disagrees\nwant %v\ngot %v", tag, par, want, got)
			}
			ok, err := EvaluateBoolOpts(q, db, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s decomp bool par=%d: %v", tag, par, err)
			}
			if ok != want.Bool() {
				t.Fatalf("%s: decomp bool par=%d = %v, want %v", tag, par, ok, want.Bool())
			}
		}
	}
}

// TestRouteReuse pins that passing a PlanFor route through Options changes
// nothing (the facade's single-reduction path).
func TestRouteReuse(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	db := randGraphDB(rnd, 60, 8)
	q := cycleCQ(4)
	rt, err := PlanFor(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Width != 2 {
		t.Fatalf("4-cycle width = %d, want 2", rt.Width)
	}
	want, err := EvaluateOpts(q, db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateOpts(q, db, Options{Parallelism: 1, Route: rt})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(got, want) {
		t.Fatalf("route reuse changed the answer")
	}
}

// TestStatsReportBagRows pins the per-bag actual cardinalities surfaced to
// qeval -explain.
func TestStatsReportBagRows(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	db := randGraphDB(rnd, 50, 7)
	q := cycleCQ(4)
	_, st, err := EvaluateStats(q, db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Width != 2 || len(st.BagRows) != len(st.Route.Bags) {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRejectsIneqAndVarCmp: shapes outside the engine's class error out.
func TestRejectsIneqAndVarCmp(t *testing.T) {
	db := randGraphDB(rand.New(rand.NewSource(1)), 10, 4)
	q := cycleCQ(3)
	q.Ineqs = []query.Ineq{query.NeqVars(0, 1)}
	if _, err := EvaluateOpts(q, db, Options{}); err == nil {
		t.Fatal("≠ atoms must be rejected")
	}
	q2 := cycleCQ(3)
	q2.Cmps = []query.Cmp{query.Lt(query.V(0), query.V(1))}
	if _, err := EvaluateOpts(q2, db, Options{}); err == nil {
		t.Fatal("variable comparisons must be rejected")
	}
}

// TestGroundCmpAndEmptyAtom: falsifying ground comparisons (head-binding
// markers) and empty reduced atoms short-circuit to the empty answer.
func TestGroundCmpAndEmptyAtom(t *testing.T) {
	db := randGraphDB(rand.New(rand.NewSource(2)), 12, 4)
	q := cycleCQ(3)
	q.Cmps = []query.Cmp{query.Lt(query.C(1), query.C(0))} // false
	res, err := EvaluateOpts(q, db, Options{})
	if err != nil || !res.Empty() {
		t.Fatalf("ground-false: %v %v", res, err)
	}
	q2 := cycleCQ(3)
	q2.Atoms[0].Args[0] = query.C(999_999) // matches nothing
	res, err = EvaluateOpts(q2, db, Options{})
	if err != nil || !res.Empty() {
		t.Fatalf("empty atom: %v %v", res, err)
	}
	ok, err := EvaluateBoolOpts(q2, db, Options{})
	if err != nil || ok {
		t.Fatalf("empty atom bool: %v %v", ok, err)
	}
}

// TestDecomposable pins the structural routing predicate.
func TestDecomposable(t *testing.T) {
	if !Decomposable(cycleCQ(4)) {
		t.Fatal("4-cycle must be decomposable")
	}
	// K8 as a query: 28 atoms, ghw 4 — beyond MaxWidth.
	k8 := &query.CQ{}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			k8.Atoms = append(k8.Atoms, query.NewAtom("E", query.V(query.Var(i)), query.V(query.Var(j))))
		}
	}
	if Decomposable(k8) {
		t.Fatal("K8 must not be decomposable at width ≤ 3")
	}
	withIneq := cycleCQ(4)
	withIneq.Ineqs = []query.Ineq{query.NeqVars(0, 2)}
	if Decomposable(withIneq) {
		t.Fatal("≠ atoms are outside the engine's class")
	}
}
