// Package datalog implements positive Datalog with naive and semi-naive
// bottom-up evaluation. It supports two of the paper's Section 4 points:
// with all EDB and IDB arities bounded, each bottom-up stage is a bounded
// conjunctive query, placing fixed-arity Datalog in W[1]; and Vardi's
// observation that an IDB of arity k inherently materializes Θ(nᵏ) tuples —
// the parameter provably in the exponent (experiment E7).
package datalog

import (
	"context"
	"fmt"

	"pyquery/internal/eval"
	"pyquery/internal/parallel"
	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// Rule is a positive Datalog rule Head ← Body.
type Rule struct {
	Head query.Atom
	Body []query.Atom
}

func (r Rule) String() string {
	s := r.Head.String() + " :- "
	for i, a := range r.Body {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s
}

// Program is a set of rules with a distinguished goal (output) relation.
type Program struct {
	Rules []Rule
	Goal  string
}

// IDB returns the intensional relations (those appearing in rule heads)
// with their arities.
func (p *Program) IDB() map[string]int {
	out := make(map[string]int)
	for _, r := range p.Rules {
		out[r.Head.Rel] = len(r.Head.Args)
	}
	return out
}

// MaxArity returns the largest arity over the program's IDB and the given
// database's EDB — the quantity that must stay bounded for the W[1]
// membership argument of Section 4.
func (p *Program) MaxArity(db *query.DB) int {
	m := 0
	for _, ar := range p.IDB() {
		if ar > m {
			m = ar
		}
	}
	for _, name := range db.Names() {
		if w := db.MustRel(name).Width(); w > m {
			m = w
		}
	}
	return m
}

// Validate checks the program against the database: IDB names must not
// collide with EDB names, arities must be consistent, every body atom must
// reference a known relation, head variables must occur in the body, and
// head terms must be variables or constants (no arithmetic).
func (p *Program) Validate(db *query.DB) error {
	idb := p.IDB()
	for name := range idb {
		if _, ok := db.Rel(name); ok {
			return fmt.Errorf("datalog: IDB relation %q collides with an EDB relation", name)
		}
	}
	if _, ok := idb[p.Goal]; !ok {
		return fmt.Errorf("datalog: goal %q is not defined by any rule", p.Goal)
	}
	for _, r := range p.Rules {
		if len(r.Head.Args) != idb[r.Head.Rel] {
			return fmt.Errorf("datalog: relation %q used with inconsistent arities", r.Head.Rel)
		}
		headVars := make(map[query.Var]bool)
		for _, t := range r.Head.Args {
			if t.IsVar {
				headVars[t.Var] = true
			}
		}
		bodyVars := make(map[query.Var]bool)
		for _, a := range r.Body {
			if ar, ok := idb[a.Rel]; ok {
				if len(a.Args) != ar {
					return fmt.Errorf("datalog: IDB atom %v has wrong arity", a)
				}
			} else if rel, ok := db.Rel(a.Rel); ok {
				if len(a.Args) != rel.Width() {
					return fmt.Errorf("datalog: EDB atom %v has wrong arity", a)
				}
			} else {
				return fmt.Errorf("datalog: unknown relation %q in rule body", a.Rel)
			}
			for _, t := range a.Args {
				if t.IsVar {
					bodyVars[t.Var] = true
				}
			}
		}
		for v := range headVars {
			if !bodyVars[v] {
				return fmt.Errorf("datalog: unsafe rule %v: head variable x%d not in body", r, v)
			}
		}
	}
	return nil
}

// Stats reports evaluation work.
type Stats struct {
	Rounds  int
	Derived int // total tuples across all IDB relations at fixpoint
}

// Options selects the evaluation strategy.
type Options struct {
	// Naive re-fires every rule on the full relations each round
	// (the textbook fixpoint); the default is semi-naive with deltas.
	Naive bool
	// Parallelism is the worker count: the independent rule firings of
	// each round run across workers (each pre-filtering its derivations
	// against the current IDB into a per-firing buffer, merged serially
	// into the round's delta). 0 means GOMAXPROCS; 1 is the serial
	// evaluator. The fixpoint is identical at every setting; under Naive
	// the round count may differ (serial naive rounds see earlier rules'
	// derivations within the same round, parallel rounds do not).
	Parallelism int
	// Ctx, when cancelable, aborts the fixpoint between rounds (and
	// between a round's rule firings); Eval then returns Ctx.Err().
	Ctx context.Context
}

// Eval computes the fixpoint and returns every IDB relation (keyed by name)
// plus statistics. The database is not modified.
func Eval(p *Program, db *query.DB, opts Options) (map[string]*relation.Relation, Stats, error) {
	if err := p.Validate(db); err != nil {
		return nil, Stats{}, err
	}
	idb := p.IDB()

	// Working database: EDB + current IDB (+ delta names for semi-naive).
	work := query.NewDB()
	for _, name := range db.Names() {
		work.Set(name, db.MustRel(name))
	}
	cur := make(map[string]*table, len(idb))
	for name, ar := range idb {
		cur[name] = newTable(ar)
		work.Set(name, cur[name].rel)
	}

	workers := parallel.Workers(opts.Parallelism)
	var stats Stats
	if opts.Naive {
		if err := evalNaive(opts.Ctx, p, work, cur, workers, &stats); err != nil {
			return nil, stats, err
		}
	} else if err := evalSemiNaive(opts.Ctx, p, idb, work, cur, workers, &stats); err != nil {
		return nil, stats, err
	}
	out := make(map[string]*relation.Relation, len(cur))
	for name, t := range cur {
		out[name] = t.rel
		stats.Derived += t.rel.Len()
	}
	return out, stats, nil
}

// firing is one rule evaluation of a round: the rule's head plus the body
// to run (for semi-naive, one IDB position substituted with its delta).
type firing struct {
	head query.Atom
	body []query.Atom
}

// fireAll evaluates the round's firings across the worker budget. The
// firings of a round are independent: they read the working database and
// the current IDB membership sets, both of which only change between
// rounds. Each firing pre-filters its derivations against cur into a
// per-firing buffer, so the serial merge that follows only touches novel
// rows. outs[i] belongs to firings[i]; merging in index order keeps the
// result reproducible regardless of scheduling.
func fireAll(ctx context.Context, firings []firing, work *query.DB, cur map[string]*table, workers int) ([]*relation.Relation, error) {
	outer, inner := parallel.Split(workers, len(firings))
	outs := make([]*relation.Relation, len(firings))
	errs := make([]error, len(firings))
	ctxFailed := parallel.ForEachCtx(ctx, outer, len(firings), func(i int) {
		f := firings[i]
		out, err := fireRule(f.head, f.body, work, inner)
		if err != nil {
			errs[i] = err
			return
		}
		dst := cur[f.head.Rel]
		if out.Empty() || dst.set.Len() == 0 {
			// Nothing to filter (or against): hand the firing's output over.
			outs[i] = out
			return
		}
		sel := make([]int32, 0, out.Len())
		for r := 0; r < out.Len(); r++ {
			if !dst.set.ContainsRelRow(out, r) {
				sel = append(sel, int32(r))
			}
		}
		outs[i] = out.Gather(sel)
	})
	if ctxFailed != nil {
		return nil, ctxFailed
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// evalNaive iterates every rule to fixpoint on the full relations. In
// serial mode rules fire sequentially and each sees the derivations of the
// rules before it in the same round (the historical behaviour); in parallel
// mode a round's firings run concurrently against the round-start state, so
// the round count can differ but the fixpoint cannot.
func evalNaive(ctx context.Context, p *Program, work *query.DB, cur map[string]*table, workers int, stats *Stats) error {
	if workers <= 1 {
		for {
			if err := parallel.CtxErr(ctx); err != nil {
				return err
			}
			stats.Rounds++
			grew := false
			for _, r := range p.Rules {
				out, err := fireRule(r.Head, r.Body, work, workers)
				if err != nil {
					return err
				}
				dst := cur[r.Head.Rel]
				for i := 0; i < out.Len(); i++ {
					if dst.addRel(out, i) {
						grew = true
					}
				}
			}
			if !grew {
				return nil
			}
		}
	}
	firings := make([]firing, len(p.Rules))
	for i, r := range p.Rules {
		firings[i] = firing{head: r.Head, body: r.Body}
	}
	for {
		if err := parallel.CtxErr(ctx); err != nil {
			return err
		}
		stats.Rounds++
		outs, err := fireAll(ctx, firings, work, cur, workers)
		if err != nil {
			return err
		}
		added := make(map[string]*relation.Relation)
		for i, out := range outs {
			name := firings[i].head.Rel
			dst := cur[name]
			for r := 0; r < out.Len(); r++ {
				if dst.addRel(out, r) {
					if added[name] == nil {
						added[name] = query.NewTable(dst.rel.Width())
					}
					added[name].AppendRowOf(out, r)
				}
			}
		}
		if len(added) == 0 {
			return nil
		}
		// The tables grew in place; record the inserted tuples so the
		// changelog and per-relation generations stay truthful.
		for name, a := range added {
			work.GrewInPlace(name, a)
		}
	}
}

// evalSemiNaive runs the delta-driven fixpoint. Every round fires the
// rules' delta-substituted bodies — concurrently when workers > 1 — and
// merges the per-firing buffers into the next delta serially.
func evalSemiNaive(ctx context.Context, p *Program, idb map[string]int, work *query.DB, cur map[string]*table, workers int, stats *Stats) error {
	delta := make(map[string]*relation.Relation, len(idb))
	for name, ar := range idb {
		delta[name] = query.NewTable(ar)
		work.Set(deltaName(name), delta[name])
	}

	// Round 0: rules with no IDB body atoms seed the deltas.
	var seeds []firing
	for _, r := range p.Rules {
		if countIDBAtoms(r, idb) == 0 {
			seeds = append(seeds, firing{head: r.Head, body: r.Body})
		}
	}
	stats.Rounds++
	outs, err := fireAll(ctx, seeds, work, cur, workers)
	if err != nil {
		return err
	}
	for i, out := range outs {
		name := seeds[i].head.Rel
		for r := 0; r < out.Len(); r++ {
			if cur[name].addRel(out, r) {
				delta[name].AppendRowOf(out, r)
			}
		}
	}
	for name, d := range delta {
		work.GrewInPlace(name, d)
	}

	// Recursive firings: one per IDB body position per rule, substituting
	// the delta relation there (the standard semi-naive rewriting). Each
	// round re-installs the next delta under the same Δ-name via work.Set
	// (which also invalidates the statistics memo), so the firing list is
	// built once and resolves the current delta by name.
	var recs []firing
	for _, r := range p.Rules {
		if countIDBAtoms(r, idb) == 0 {
			continue
		}
		for pos, a := range r.Body {
			if _, ok := idb[a.Rel]; !ok {
				continue
			}
			body := make([]query.Atom, len(r.Body))
			copy(body, r.Body)
			body[pos] = query.Atom{Rel: deltaName(a.Rel), Args: a.Args}
			recs = append(recs, firing{head: r.Head, body: body})
		}
	}
	for {
		total := 0
		for _, d := range delta {
			total += d.Len()
		}
		if total == 0 {
			return nil
		}
		if err := parallel.CtxErr(ctx); err != nil {
			return err
		}
		stats.Rounds++
		next := make(map[string]*table, len(idb))
		for name, ar := range idb {
			next[name] = newTable(ar)
		}
		outs, err := fireAll(ctx, recs, work, cur, workers)
		if err != nil {
			return err
		}
		// The firings already filtered against cur (stable within the
		// round); next.add removes duplicates across firings.
		for i, out := range outs {
			dst := next[recs[i].head.Rel]
			for r := 0; r < out.Len(); r++ {
				dst.addRel(out, r)
			}
		}
		for name := range idb {
			// Promote: cur += next; delta := next. The new delta is
			// installed via Set (not swapped in place) so the statistics
			// memo is invalidated even when consecutive rounds' deltas have
			// equal cardinality but different contents — the per-round
			// re-planning contract depends on it.
			nd := query.NewTable(next[name].rel.Width())
			for i := 0; i < next[name].rel.Len(); i++ {
				cur[name].addRel(next[name].rel, i)
				nd.AppendRowOf(next[name].rel, i)
			}
			delta[name] = nd
			work.Set(deltaName(name), nd)
			work.GrewInPlace(name, nd)
		}
	}
}

// table is a relation with a keyed membership set for O(1) dedup.
type table struct {
	rel *relation.Relation
	set *relation.TupleSet
}

func newTable(arity int) *table {
	return &table{rel: query.NewTable(arity), set: relation.NewTupleSet(arity)}
}

// addRel inserts row i of r if new, reading the columns in place, with no
// row materialization.
func (t *table) addRel(r *relation.Relation, i int) bool {
	if !t.set.AddRelRow(r, i) {
		return false
	}
	t.rel.AppendRowOf(r, i)
	return true
}

// EvalGoal evaluates the program and returns just the goal relation.
func EvalGoal(p *Program, db *query.DB, opts Options) (*relation.Relation, Stats, error) {
	rels, stats, err := Eval(p, db, opts)
	if err != nil {
		return nil, stats, err
	}
	return rels[p.Goal], stats, nil
}

func deltaName(name string) string { return "Δ" + name }

func countIDBAtoms(r Rule, idb map[string]int) int {
	n := 0
	for _, a := range r.Body {
		if _, ok := idb[a.Rel]; ok {
			n++
		}
	}
	return n
}

// fireRule evaluates one rule firing — the body as a conjunctive query
// with the head as output — over the working database, threading the
// caller's worker budget into the inner evaluation. It backs both the
// sequential fixpoint rounds (workers ≤ 1 there, so no goroutines spawn)
// and fireAll's concurrent firings, where the leftover per-firing budget
// from parallel.Split lets a lone firing spend the whole budget in the
// backtracker's fan-out.
func fireRule(head query.Atom, body []query.Atom, work *query.DB, workers int) (*relation.Relation, error) {
	q := &query.CQ{Head: head.Args, Atoms: body}
	return eval.ConjunctiveOpts(q, work, eval.Options{Parallelism: workers})
}

// VardiFamily returns the arity-k Datalog program of experiment E7:
//
//	T(x₁,…,x_k) ← E(x₁,x₂), …, E(x_{k−1},x_k)
//	T(x₂,…,x_k,y) ← T(x₁,…,x_k), E(x_k,y)
//
// On the complete digraph with self-loops the IDB holds exactly nᵏ tuples,
// exhibiting Vardi's point that arity-k recursion puts k in the exponent of
// the data complexity. k = 1 degenerates to T(x) ← E(x,x) plus the slide.
func VardiFamily(k int) *Program {
	if k < 1 {
		panic("datalog: VardiFamily needs k ≥ 1")
	}
	head := make([]query.Term, k)
	for i := range head {
		head[i] = query.V(query.Var(i))
	}
	var base []query.Atom
	if k == 1 {
		base = []query.Atom{query.NewAtom("E", query.V(0), query.V(0))}
	} else {
		for i := 0; i+1 < k; i++ {
			base = append(base, query.NewAtom("E", query.V(query.Var(i)), query.V(query.Var(i+1))))
		}
	}
	slideHead := make([]query.Term, k)
	for i := 1; i < k; i++ {
		slideHead[i-1] = query.V(query.Var(i))
	}
	slideHead[k-1] = query.V(query.Var(k))
	slideBody := []query.Atom{
		{Rel: "T", Args: head},
		query.NewAtom("E", query.V(query.Var(k-1)), query.V(query.Var(k))),
	}
	return &Program{
		Rules: []Rule{
			{Head: query.Atom{Rel: "T", Args: head}, Body: base},
			{Head: query.Atom{Rel: "T", Args: slideHead}, Body: slideBody},
		},
		Goal: "T",
	}
}

// Reachability returns the textbook transitive-closure program over EDB E.
func Reachability() *Program {
	return &Program{
		Rules: []Rule{
			{Head: query.NewAtom("Reach", query.V(0), query.V(1)),
				Body: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))}},
			{Head: query.NewAtom("Reach", query.V(0), query.V(2)),
				Body: []query.Atom{
					query.NewAtom("Reach", query.V(0), query.V(1)),
					query.NewAtom("E", query.V(1), query.V(2))}},
		},
		Goal: "Reach",
	}
}

// SameGeneration returns the classic same-generation program over EDB Par.
func SameGeneration() *Program {
	return &Program{
		Rules: []Rule{
			// Every person mentioned (as child or parent) is in their own
			// generation.
			{Head: query.NewAtom("SG", query.V(0), query.V(0)),
				Body: []query.Atom{query.NewAtom("Par", query.V(0), query.V(1))}},
			{Head: query.NewAtom("SG", query.V(1), query.V(1)),
				Body: []query.Atom{query.NewAtom("Par", query.V(0), query.V(1))}},
			{Head: query.NewAtom("SG", query.V(0), query.V(1)),
				Body: []query.Atom{
					query.NewAtom("Par", query.V(0), query.V(2)),
					query.NewAtom("SG", query.V(2), query.V(3)),
					query.NewAtom("Par", query.V(1), query.V(3))}},
		},
		Goal: "SG",
	}
}
