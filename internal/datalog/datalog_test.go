package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

func edgeDB(edges ...[2]int) *query.DB {
	db := query.NewDB()
	r := query.NewTable(2)
	for _, e := range edges {
		r.Append(relation.Value(e[0]), relation.Value(e[1]))
	}
	db.Set("E", r)
	return db
}

func TestReachabilityPath(t *testing.T) {
	db := edgeDB([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	p := Reachability()
	goal, stats, err := EvalGoal(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reach = all pairs (i,j) with i<j on the path: 6 pairs.
	if goal.Len() != 6 {
		t.Fatalf("reach size = %d, want 6\n%v", goal.Len(), goal)
	}
	if !goal.Contains([]relation.Value{0, 3}) {
		t.Fatal("0 should reach 3")
	}
	if goal.Contains([]relation.Value{3, 0}) {
		t.Fatal("3 must not reach 0")
	}
	if stats.Rounds < 3 {
		t.Fatalf("a 3-hop chain needs ≥3 rounds, got %d", stats.Rounds)
	}
}

func TestReachabilityCycle(t *testing.T) {
	db := edgeDB([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0})
	goal, _, err := EvalGoal(Reachability(), db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if goal.Len() != 9 {
		t.Fatalf("cycle closure = %d pairs, want 9", goal.Len())
	}
}

func TestNaiveMatchesSemiNaive(t *testing.T) {
	db := edgeDB([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 1})
	p := Reachability()
	semi, _, err := EvalGoal(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, _, err := EvalGoal(p, db, Options{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(semi, naive) {
		t.Fatalf("strategies disagree:\n%v\nvs\n%v", semi, naive)
	}
}

func TestSameGeneration(t *testing.T) {
	// Par(child, parent): two siblings under a common root, and a grandchild.
	db := query.NewDB()
	db.Set("Par", query.Table(2,
		[]relation.Value{1, 0}, // 1's parent is 0
		[]relation.Value{2, 0}, // 2's parent is 0
		[]relation.Value{3, 1}, // 3's parent is 1
		[]relation.Value{4, 2}, // 4's parent is 2
	))
	goal, _, err := EvalGoal(SameGeneration(), db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !goal.Contains([]relation.Value{1, 2}) {
		t.Fatal("siblings 1,2 are same generation")
	}
	if !goal.Contains([]relation.Value{3, 4}) {
		t.Fatal("cousins 3,4 are same generation")
	}
	if goal.Contains([]relation.Value{1, 3}) {
		t.Fatal("parent/child are not same generation")
	}
}

func TestValidate(t *testing.T) {
	db := edgeDB([2]int{0, 1})
	// Goal not defined.
	bad := &Program{Rules: Reachability().Rules, Goal: "Nope"}
	if err := bad.Validate(db); err == nil {
		t.Fatal("undefined goal accepted")
	}
	// IDB colliding with EDB.
	coll := &Program{Rules: []Rule{{Head: query.NewAtom("E", query.V(0), query.V(1)),
		Body: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))}}}, Goal: "E"}
	if err := coll.Validate(db); err == nil {
		t.Fatal("IDB/EDB collision accepted")
	}
	// Unsafe head variable.
	unsafe := &Program{Rules: []Rule{{Head: query.NewAtom("T", query.V(9)),
		Body: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))}}}, Goal: "T"}
	if err := unsafe.Validate(db); err == nil {
		t.Fatal("unsafe rule accepted")
	}
	// Unknown body relation.
	unk := &Program{Rules: []Rule{{Head: query.NewAtom("T", query.V(0)),
		Body: []query.Atom{query.NewAtom("Z", query.V(0))}}}, Goal: "T"}
	if err := unk.Validate(db); err == nil {
		t.Fatal("unknown body relation accepted")
	}
	// Inconsistent IDB arity.
	inc := &Program{Rules: []Rule{
		{Head: query.NewAtom("T", query.V(0)), Body: []query.Atom{query.NewAtom("E", query.V(0), query.V(1))}},
		{Head: query.NewAtom("T", query.V(0), query.V(1)), Body: []query.Atom{query.NewAtom("T", query.V(0)), query.NewAtom("E", query.V(0), query.V(1))}},
	}, Goal: "T"}
	if err := inc.Validate(db); err == nil {
		t.Fatal("inconsistent arity accepted")
	}
	// EDB atom arity mismatch.
	arity := &Program{Rules: []Rule{{Head: query.NewAtom("T", query.V(0)),
		Body: []query.Atom{query.NewAtom("E", query.V(0))}}}, Goal: "T"}
	if err := arity.Validate(db); err == nil {
		t.Fatal("EDB arity mismatch accepted")
	}
}

// completeDigraph returns the complete digraph with self-loops on n nodes.
func completeDigraph(n int) *query.DB {
	db := query.NewDB()
	r := query.NewTable(2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r.Append(relation.Value(i), relation.Value(j))
		}
	}
	db.Set("E", r)
	return db
}

func TestVardiFamilyCounts(t *testing.T) {
	// On the complete digraph with loops, |T| = n^k exactly (E7's claim).
	for _, tc := range []struct{ n, k int }{
		{2, 1}, {3, 1}, {2, 2}, {3, 2}, {4, 2}, {2, 3}, {3, 3},
	} {
		p := VardiFamily(tc.k)
		db := completeDigraph(tc.n)
		goal, _, err := EvalGoal(p, db, Options{})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		want := 1
		for i := 0; i < tc.k; i++ {
			want *= tc.n
		}
		if goal.Len() != want {
			t.Fatalf("n=%d k=%d: |T| = %d, want n^k = %d", tc.n, tc.k, goal.Len(), want)
		}
	}
}

func TestVardiFamilyValidatesAndMaxArity(t *testing.T) {
	p := VardiFamily(3)
	db := completeDigraph(2)
	if err := p.Validate(db); err != nil {
		t.Fatalf("VardiFamily(3) invalid: %v", err)
	}
	if got := p.MaxArity(db); got != 3 {
		t.Fatalf("MaxArity = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("VardiFamily(0) should panic")
		}
	}()
	VardiFamily(0)
}

// bfsReach computes reachability pairs by BFS — the oracle.
func bfsReach(n int, edges [][2]int) map[[2]int]bool {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	out := make(map[[2]int]bool)
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		queue := append([]int(nil), adj[s]...)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if seen[v] {
				continue
			}
			seen[v] = true
			out[[2]int{s, v}] = true
			queue = append(queue, adj[v]...)
		}
	}
	return out
}

// Property: Datalog transitive closure equals BFS closure, and semi-naive
// equals naive, on random digraphs.
func TestQuickReachabilityAgainstBFS(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 2 + rnd.Intn(6)
		var edges [][2]int
		for i := 0; i < rnd.Intn(12); i++ {
			edges = append(edges, [2]int{rnd.Intn(n), rnd.Intn(n)})
		}
		db := edgeDB(edges...)
		semi, _, err := EvalGoal(Reachability(), db, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		naive, _, err := EvalGoal(Reachability(), db, Options{Naive: true})
		if err != nil || !relation.EqualSet(semi, naive) {
			t.Logf("seed %d: naive/semi-naive disagree", seed)
			return false
		}
		want := bfsReach(n, edges)
		if semi.Len() != len(want) {
			t.Logf("seed %d: closure size %d, bfs %d", seed, semi.Len(), len(want))
			return false
		}
		for pair := range want {
			if !semi.Contains([]relation.Value{relation.Value(pair[0]), relation.Value(pair[1])}) {
				t.Logf("seed %d: missing pair %v", seed, pair)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(91))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
