// Package colorcoding provides the hash families behind Theorem 2's
// evaluation algorithm: functions h: D → {0,…,k−1} used to check the I₁
// inequalities on hashed color columns. Three constructions are offered:
//
//   - Trials: the paper's Monte-Carlo driver — ⌈c·eᵏ⌉ independent random
//     functions; if a satisfying instantiation exists, some trial is
//     consistent with it with probability ≥ 1 − e^{−c}.
//   - ExactPerfect: a certified k-perfect family built by covering every
//     k-subset of the (small) domain — the fully deterministic option, used
//     when (|D| choose k) is enumerable.
//   - WHPPerfect: a seeded family of the size shape 2^{O(k)}·log|D| the
//     paper cites from Alon–Yuster–Zwick [3]; it is k-perfect except with
//     probability ≤ δ over the fixed seed (union bound). This replaces the
//     explicit Schmidt–Siegel construction; see DESIGN.md (substitutions).
package colorcoding

import (
	"fmt"
	"math"
	"math/rand"

	"pyquery/internal/relation"
)

// Func is a hash function from domain values to colors {0,…,K−1}.
type Func interface {
	K() int
	Color(v relation.Value) int
}

// seededFunc hashes through a 64-bit mixer.
type seededFunc struct {
	seed uint64
	k    int
}

func (f seededFunc) K() int { return f.k }

func (f seededFunc) Color(v relation.Value) int {
	return int(mix64(uint64(v)+f.seed) % uint64(f.k))
}

// tableFunc is an explicit lookup table (values outside the table get
// color 0; the engine only ever hashes active-domain values).
type tableFunc struct {
	m map[relation.Value]int
	k int
}

func (f tableFunc) K() int { return f.k }

func (f tableFunc) Color(v relation.Value) int { return f.m[v] }

// constFunc colors everything 0 — the trivial k ≤ 1 family.
type constFunc struct{ k int }

func (f constFunc) K() int                     { return f.k }
func (f constFunc) Color(v relation.Value) int { return 0 }

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Seeded returns a single seeded hash function with k colors.
func Seeded(k int, seed int64) Func {
	if k <= 1 {
		return constFunc{k: max(1, k)}
	}
	return seededFunc{seed: mix64(uint64(seed)), k: k}
}

// Trials returns the paper's Monte-Carlo family: ⌈c·eᵏ⌉ independent seeded
// functions. A fixed k-subset of the domain is hashed injectively by one
// trial with probability > e^{−k}, so the family misses it with probability
// at most (1−e^{−k})^{c·eᵏ} ≤ e^{−c}.
func Trials(k int, c float64, seed int64) []Func {
	if k <= 1 {
		return []Func{constFunc{k: max(1, k)}}
	}
	n := int(math.Ceil(c * math.Exp(float64(k))))
	if n < 1 {
		n = 1
	}
	rnd := rand.New(rand.NewSource(seed))
	fam := make([]Func, n)
	for i := range fam {
		fam[i] = seededFunc{seed: rnd.Uint64(), k: k}
	}
	return fam
}

// WHPPerfect returns a seeded family of ⌈eᵏ·(k·ln|D| + ln(1/δ))⌉ functions.
// For any fixed k-subset S, Pr[no member is injective on S] ≤
// (1−e^{−k})^T ≤ exp(−T·e^{−k}) ≤ δ·|D|^{−k}; a union bound over the at
// most |D|ᵏ subsets makes the whole family k-perfect except with
// probability ≤ δ over the seed. Size shape matches the explicit
// 2^{O(k)}·log|D| construction the paper cites.
func WHPPerfect(domainSize, k int, delta float64, seed int64) []Func {
	if k <= 1 {
		return []Func{constFunc{k: max(1, k)}}
	}
	if domainSize < 2 {
		domainSize = 2
	}
	if delta <= 0 {
		delta = 1e-9
	}
	t := int(math.Ceil(math.Exp(float64(k)) *
		(float64(k)*math.Log(float64(domainSize)) + math.Log(1/delta))))
	if t < 1 {
		t = 1
	}
	rnd := rand.New(rand.NewSource(seed))
	fam := make([]Func, t)
	for i := range fam {
		fam[i] = seededFunc{seed: rnd.Uint64(), k: k}
	}
	return fam
}

// ExactPerfect builds a certified k-perfect family on the given domain by
// explicitly covering every k-subset: candidate seeded functions are drawn
// and kept whenever they hash some still-uncovered subset injectively;
// construction ends when no subset remains. Requires (|domain| choose k)
// ≤ MaxSubsets and k ≤ MaxK.
func ExactPerfect(domain []relation.Value, k int) ([]Func, error) {
	if k <= 1 {
		return []Func{constFunc{k: max(1, k)}}, nil
	}
	if len(domain) <= k {
		// Rank coloring is injective on the whole domain.
		m := make(map[relation.Value]int, len(domain))
		for i, v := range domain {
			m[v] = i % k
		}
		// If |domain| ≤ k the ranks are all distinct.
		return []Func{tableFunc{m: m, k: k}}, nil
	}
	if k > MaxK {
		return nil, fmt.Errorf("colorcoding: ExactPerfect supports k ≤ %d (got %d); use WHPPerfect", MaxK, k)
	}
	nsub := binomial(len(domain), k)
	if nsub < 0 || nsub > MaxSubsets {
		return nil, fmt.Errorf("colorcoding: (%d choose %d) k-subsets exceed the enumeration budget %d",
			len(domain), k, MaxSubsets)
	}

	// uncovered holds the still-uncovered subsets; each accepted candidate
	// compacts it, so the total scan work is O(Σ remaining) rather than
	// O(subsets × candidates).
	uncovered := combinations(len(domain), k)
	var fam []Func
	rnd := rand.New(rand.NewSource(0x1e3779b97f4a7c15))
	tries := 0
	for len(uncovered) > 0 {
		tries++
		if tries > maxCandidateTries {
			return nil, fmt.Errorf("colorcoding: gave up after %d candidate functions (%d subsets uncovered)",
				tries, len(uncovered))
		}
		f := seededFunc{seed: rnd.Uint64(), k: k}
		next := uncovered[:0]
		for _, sub := range uncovered {
			var mask uint64
			inj := true
			for _, di := range sub {
				c := f.Color(domain[di])
				if mask&(1<<uint(c)) != 0 {
					inj = false
					break
				}
				mask |= 1 << uint(c)
			}
			if !inj {
				next = append(next, sub)
			}
		}
		if len(next) < len(uncovered) {
			fam = append(fam, f)
		}
		uncovered = next
	}
	return fam, nil
}

// Budgets for ExactPerfect.
const (
	MaxK              = 8
	MaxSubsets        = 2_000_000
	maxCandidateTries = 5_000_000
)

// ExactFeasible reports whether ExactPerfect would fit within the given
// subset-enumeration budget (use MaxSubsets for the hard limit; smaller
// budgets make sensible Auto-strategy thresholds).
func ExactFeasible(domainSize, k, budget int) bool {
	if k <= 1 || domainSize <= k {
		return true
	}
	if k > MaxK {
		return false
	}
	n := binomial(domainSize, k)
	return n >= 0 && n <= budget
}

// InjectiveOn reports whether f assigns pairwise distinct colors to vals.
func InjectiveOn(f Func, vals []relation.Value) bool {
	seen := make(map[int]bool, len(vals))
	for _, v := range vals {
		c := f.Color(v)
		if seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// IsPerfect verifies by enumeration that the family hashes every k-subset
// of domain injectively for some member. Exponential; for tests.
func IsPerfect(fam []Func, domain []relation.Value, k int) bool {
	if k <= 1 {
		return len(fam) > 0
	}
	if len(domain) <= k {
		vals := append([]relation.Value(nil), domain...)
		for _, f := range fam {
			if InjectiveOn(f, vals) {
				return true
			}
		}
		return false
	}
	for _, sub := range combinations(len(domain), k) {
		vals := make([]relation.Value, k)
		for i, di := range sub {
			vals[i] = domain[di]
		}
		ok := false
		for _, f := range fam {
			if InjectiveOn(f, vals) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// combinations enumerates all k-subsets of {0,…,n−1}.
func combinations(n, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := start; i <= n-(k-pos); i++ {
			idx[pos] = i
			rec(pos+1, i+1)
		}
	}
	rec(0, 0)
	return out
}

// binomial returns C(n,k), or −1 on overflow past MaxSubsets·8.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
		if res > MaxSubsets*8 {
			return -1
		}
	}
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
