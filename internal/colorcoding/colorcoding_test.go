package colorcoding

import (
	"math"
	"math/rand"
	"testing"

	"pyquery/internal/relation"
)

func domainOf(n int) []relation.Value {
	d := make([]relation.Value, n)
	for i := range d {
		d[i] = relation.Value(i * 7) // non-contiguous values
	}
	return d
}

func TestSeededDeterministicAndInRange(t *testing.T) {
	f := Seeded(5, 42)
	for v := relation.Value(0); v < 100; v++ {
		c := f.Color(v)
		if c < 0 || c >= 5 {
			t.Fatalf("color %d out of range", c)
		}
		if c != f.Color(v) {
			t.Fatal("hash not deterministic")
		}
	}
	if Seeded(5, 1).Color(17) == Seeded(5, 2).Color(17) &&
		Seeded(5, 1).Color(18) == Seeded(5, 2).Color(18) &&
		Seeded(5, 1).Color(19) == Seeded(5, 2).Color(19) {
		t.Fatal("different seeds look identical on three points (suspicious)")
	}
}

func TestTrivialKFamilies(t *testing.T) {
	for _, k := range []int{0, 1} {
		for _, fam := range [][]Func{
			Trials(k, 2, 1),
			WHPPerfect(100, k, 1e-6, 1),
		} {
			if len(fam) != 1 {
				t.Fatalf("k=%d: family size %d, want 1", k, len(fam))
			}
			if fam[0].Color(33) != 0 {
				t.Fatal("trivial family must color 0")
			}
		}
		fam, err := ExactPerfect(domainOf(10), k)
		if err != nil || len(fam) != 1 {
			t.Fatalf("k=%d exact: %v %v", k, fam, err)
		}
	}
}

func TestTrialsSize(t *testing.T) {
	k, c := 4, 2.0
	fam := Trials(k, c, 7)
	want := int(math.Ceil(c * math.Exp(float64(k))))
	if len(fam) != want {
		t.Fatalf("Trials size = %d, want %d", len(fam), want)
	}
}

func TestTrialsHitRate(t *testing.T) {
	// For a fixed k-subset, the fraction of random functions injective on it
	// must exceed e^{-k} substantially (the paper uses l!/l^k > e^{-k}).
	k := 4
	vals := []relation.Value{3, 17, 91, 204}
	fam := Trials(k, 20, 99) // plenty of functions to estimate the rate
	hits := 0
	for _, f := range fam {
		if InjectiveOn(f, vals) {
			hits++
		}
	}
	rate := float64(hits) / float64(len(fam))
	if rate < math.Exp(-float64(k))/2 {
		t.Fatalf("injective rate %.4f far below e^-k = %.4f", rate, math.Exp(-float64(k)))
	}
}

func TestExactPerfectSmall(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{6, 2}, {8, 3}, {10, 3}, {7, 4}, {12, 2},
	} {
		dom := domainOf(tc.n)
		fam, err := ExactPerfect(dom, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if !IsPerfect(fam, dom, tc.k) {
			t.Fatalf("n=%d k=%d: family of size %d is not perfect", tc.n, tc.k, len(fam))
		}
	}
}

func TestExactPerfectTinyDomain(t *testing.T) {
	// |domain| ≤ k: single injective table function.
	dom := domainOf(3)
	fam, err := ExactPerfect(dom, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) != 1 || !InjectiveOn(fam[0], dom) {
		t.Fatalf("tiny domain family broken: %v", fam)
	}
	if !IsPerfect(fam, dom, 5) {
		t.Fatal("tiny-domain family not perfect")
	}
}

func TestExactPerfectBudgets(t *testing.T) {
	if _, err := ExactPerfect(domainOf(100), MaxK+1); err == nil {
		t.Fatal("k beyond MaxK accepted")
	}
	// (200 choose 8) is astronomically beyond MaxSubsets.
	if _, err := ExactPerfect(domainOf(200), 8); err == nil {
		t.Fatal("oversized enumeration accepted")
	}
}

func TestWHPPerfectCoversRandomSubsets(t *testing.T) {
	dom := domainOf(60)
	k := 4
	fam := WHPPerfect(len(dom), k, 1e-9, 5)
	rnd := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		perm := rnd.Perm(len(dom))
		vals := make([]relation.Value, k)
		for i := 0; i < k; i++ {
			vals[i] = dom[perm[i]]
		}
		ok := false
		for _, f := range fam {
			if InjectiveOn(f, vals) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("whp family missed subset %v", vals)
		}
	}
}

func TestWHPPerfectSizeShape(t *testing.T) {
	// Size must grow linearly in log|D| and exponentially in k.
	s1 := len(WHPPerfect(100, 3, 1e-9, 1))
	s2 := len(WHPPerfect(10000, 3, 1e-9, 1))
	if s2 <= s1 {
		t.Fatalf("size must grow with |D|: %d vs %d", s1, s2)
	}
	s3 := len(WHPPerfect(100, 5, 1e-9, 1))
	if float64(s3) < float64(s1)*math.E {
		t.Fatalf("size must grow ~e^k: k=3→%d k=5→%d", s1, s3)
	}
}

func TestInjectiveOn(t *testing.T) {
	f := Seeded(3, 3)
	if !InjectiveOn(f, nil) {
		t.Fatal("empty set is injective")
	}
	// Same value twice can never be injective (same color).
	if InjectiveOn(f, []relation.Value{5, 5}) {
		t.Fatal("duplicate values cannot be injectively colored")
	}
}

func TestIsPerfectRejectsBadFamily(t *testing.T) {
	dom := domainOf(8)
	// A single function cannot be 3-perfect on 8 values (pigeonhole across
	// subsets — some subset must collide).
	fam := []Func{Seeded(3, 1)}
	if IsPerfect(fam, dom, 3) {
		t.Fatal("single hash function reported perfect")
	}
}

func TestCombinationsAndBinomial(t *testing.T) {
	combos := combinations(5, 3)
	if len(combos) != 10 || binomial(5, 3) != 10 {
		t.Fatalf("C(5,3): %d combos, binom %d", len(combos), binomial(5, 3))
	}
	if binomial(10, 0) != 1 || binomial(3, 5) != 0 {
		t.Fatal("binomial edge cases")
	}
}
