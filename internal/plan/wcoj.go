package plan

// This file is the worst-case-optimal-join cost policy: the AGM
// fractional-cover output bound, the skew-aware worst-case bound on the
// backtracker's search, and the global variable order the leapfrog engine
// intersects along. Both bounds price the *worst case*, so the routing gate
// in pyquery.PlanDB compares like against like — comparing the AGM bound
// against Build's uniform-average estimate would essentially never fire.

import (
	"math"

	"pyquery/internal/query"
)

// agmMaxAtoms bounds the half-integral cover enumeration (3^n covers); at
// most agmMaxVars variables fit the coverage bitmask. Queries beyond either
// limit get an +Inf AGM bound, so the gate conservatively keeps the
// backtracker.
const (
	agmMaxAtoms = 12
	agmMaxVars  = 62
)

// AGM returns the AGM output bound of joining inputs: min Π Rows_j^{w_j}
// over fractional edge covers w of the variables, minimized here over
// half-integral weights w_j ∈ {0, ½, 1}. Half-integral covers are optimal
// for graph-shaped queries (all arities ≤ 2, the LP's half-integrality);
// for wider atoms the result is still a feasible cover and hence a valid
// upper bound on the join's output, just possibly not the LP minimum.
// Inputs with no variables are skipped; any empty input makes the join
// empty and the bound 0. Returns +Inf when no cover exists (a variable
// appears in no input) or the query exceeds the enumeration caps.
func AGM(inputs []Input) float64 {
	var active []Input
	for _, in := range inputs {
		if in.Rows == 0 {
			return 0
		}
		if len(in.Vars) > 0 {
			active = append(active, in)
		}
	}
	if len(active) == 0 {
		return 1
	}
	if len(active) > agmMaxAtoms {
		return math.Inf(1)
	}
	id := make(map[query.Var]int)
	for _, in := range active {
		for _, v := range in.Vars {
			if _, ok := id[v]; !ok {
				id[v] = len(id)
			}
		}
	}
	nv := len(id)
	if nv > agmMaxVars {
		return math.Inf(1)
	}
	logRows := make([]float64, len(active))
	varsOf := make([][]int, len(active))
	for j, in := range active {
		logRows[j] = math.Log2(float64(in.Rows))
		seen := make(map[int]bool, len(in.Vars))
		for _, v := range in.Vars {
			i := id[v]
			if !seen[i] {
				seen[i] = true
				varsOf[j] = append(varsOf[j], i)
			}
		}
	}
	// DFS over half-integral weights, coverage tracked in half-units per
	// variable (covered when ≥ 2), pruned against the best log-cost so far.
	best := math.Inf(1)
	halves := make([]int, nv)
	var dfs func(j int, cost float64)
	dfs = func(j int, cost float64) {
		if cost >= best {
			return
		}
		if j == len(active) {
			for _, h := range halves {
				if h < 2 {
					return
				}
			}
			best = cost
			return
		}
		for _, w := range [3]int{0, 1, 2} { // weight in half-units
			for _, i := range varsOf[j] {
				halves[i] += w
			}
			dfs(j+1, cost+float64(w)/2*logRows[j])
			for _, i := range varsOf[j] {
				halves[i] -= w
			}
		}
	}
	dfs(0, 0)
	if math.IsInf(best, 1) {
		return best
	}
	return math.Exp2(best)
}

// WorstCost bounds the partial assignments a backtracking join over inputs
// can touch when executed in the given atom order, using per-column
// max-frequency statistics instead of distinct counts: extending an
// intermediate through an input multiplies by the input's worst probe
// fanout — 1 when every column is already bound (a membership check), the
// smallest MaxFreq over the bound shared columns when it can be probed, the
// full Rows when it shares nothing. The sum of the running products is the
// worst-case analogue of Build's Cost, and the number the WCOJ gate weighs
// against the AGM bound.
func WorstCost(inputs []Input, order []int) float64 {
	bound := make(map[query.Var]bool)
	card, cost := 1.0, 0.0
	for _, j := range order {
		in := inputs[j]
		factor := math.Inf(1)
		unbound := false
		for i, v := range in.Vars {
			if bound[v] {
				if f := in.maxFreq(i); f < factor {
					factor = f
				}
			} else {
				unbound = true
			}
		}
		switch {
		case !unbound:
			factor = 1 // fully bound: one membership check per assignment
		case math.IsInf(factor, 1):
			factor = float64(in.Rows) // no shared bound column: full scan
		}
		for _, v := range in.Vars {
			bound[v] = true
		}
		card *= factor
		cost += card
	}
	return cost
}

// VarOrder picks the leapfrog engine's global variable order: greedily the
// variable with the smallest minimum distinct-count over the inputs
// containing it, restricted (once started) to variables sharing an input
// with one already chosen so each new level is constrained by earlier
// bindings. Ties break toward the smaller variable, so orders are
// deterministic. Covers every variable of every input.
func VarOrder(inputs []Input) []query.Var {
	dmin := make(map[query.Var]float64)
	touches := make(map[query.Var][]int)
	for j, in := range inputs {
		for i, v := range in.Vars {
			d := in.distinct(i)
			if old, ok := dmin[v]; !ok || d < old {
				dmin[v] = d
			}
			touches[v] = append(touches[v], j)
		}
	}
	chosenInput := make([]bool, len(inputs))
	done := make(map[query.Var]bool, len(dmin))
	order := make([]query.Var, 0, len(dmin))
	for len(order) < len(dmin) {
		best, bestD, connected := query.Var(-1), 0.0, false
		for v, d := range dmin {
			if done[v] {
				continue
			}
			conn := false
			for _, j := range touches[v] {
				if chosenInput[j] {
					conn = true
					break
				}
			}
			if len(order) > 0 && connected && !conn {
				continue
			}
			better := best == -1 || (conn && !connected) ||
				(conn == connected && (d < bestD || (d == bestD && v < best)))
			if better {
				best, bestD, connected = v, d, conn
			}
		}
		done[best] = true
		order = append(order, best)
		for _, j := range touches[best] {
			chosenInput[j] = true
		}
	}
	return order
}
