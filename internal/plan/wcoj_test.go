package plan

import (
	"math"
	"testing"

	"pyquery/internal/query"
)

// AGM on the triangle is |E|^{3/2} — the half-integral cover (½,½,½) is
// optimal for graph-shaped queries.
func TestAGMTriangle(t *testing.T) {
	e := func(x, y query.Var) Input {
		return Input{Label: "E", Rows: 64, Vars: []query.Var{x, y}}
	}
	got := AGM([]Input{e(0, 1), e(1, 2), e(2, 0)})
	if want := math.Pow(64, 1.5); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("AGM(triangle) = %g, want %g", got, want)
	}
}

// On an acyclic path the optimal cover is integral: both edges at weight 1.
func TestAGMPath(t *testing.T) {
	in := []Input{
		{Label: "E", Rows: 10, Vars: []query.Var{0, 1}},
		{Label: "F", Rows: 20, Vars: []query.Var{1, 2}},
	}
	if got := AGM(in); math.Abs(got-200) > 1e-6*200 {
		t.Fatalf("AGM(path) = %g, want 200", got)
	}
}

// Degenerate cases: an empty input empties the join; a variable no input
// covers (impossible from real queries, but the guard must hold) and
// over-cap queries return +Inf; a fully ground query costs 1.
func TestAGMDegenerate(t *testing.T) {
	if got := AGM([]Input{{Rows: 0, Vars: []query.Var{0}}}); got != 0 {
		t.Fatalf("empty input: AGM = %g, want 0", got)
	}
	if got := AGM(nil); got != 1 {
		t.Fatalf("no inputs: AGM = %g, want 1", got)
	}
	big := make([]Input, agmMaxAtoms+1)
	for i := range big {
		big[i] = Input{Rows: 2, Vars: []query.Var{query.Var(i)}}
	}
	if got := AGM(big); !math.IsInf(got, 1) {
		t.Fatalf("over atom cap: AGM = %g, want +Inf", got)
	}
}

// WorstCost prices the skewed probe chain: scan × min-MaxFreq fanout per
// shared-variable step, ×1 for fully bound membership checks.
func TestWorstCostTriangle(t *testing.T) {
	e := func(x, y query.Var) Input {
		return Input{
			Label: "E", Rows: 4,
			Vars:    []query.Var{x, y},
			MaxFreq: []int{2, 2},
		}
	}
	in := []Input{e(0, 1), e(1, 2), e(2, 0)}
	// Order 0,1,2: scan 4 (cost 4) → probe fanout 2 (card 8, cost 12) →
	// fully bound ×1 (card 8, cost 20).
	if got := WorstCost(in, []int{0, 1, 2}); got != 20 {
		t.Fatalf("WorstCost = %g, want 20", got)
	}
}

// nil MaxFreq is the conservative worst case: every probe may fan out to
// the whole input.
func TestWorstCostNilMaxFreq(t *testing.T) {
	in := []Input{
		{Label: "R", Rows: 10, Vars: []query.Var{0, 1}},
		{Label: "S", Rows: 10, Vars: []query.Var{1, 2}},
	}
	// scan 10 (cost 10) → fanout 10 (card 100, cost 110).
	if got := WorstCost(in, []int{0, 1}); got != 110 {
		t.Fatalf("WorstCost = %g, want 110", got)
	}
}

// VarOrder starts at the smallest min-distinct variable, stays connected,
// covers every variable, and is deterministic.
func TestVarOrder(t *testing.T) {
	in := []Input{
		{Label: "R", Rows: 100, Vars: []query.Var{0, 1}, Distinct: []int{100, 5}},
		{Label: "S", Rows: 100, Vars: []query.Var{1, 2}, Distinct: []int{100, 80}},
		{Label: "T", Rows: 100, Vars: []query.Var{2, 3}, Distinct: []int{80, 90}},
	}
	got := VarOrder(in)
	if len(got) != 4 {
		t.Fatalf("order %v must cover 4 variables", got)
	}
	if got[0] != 1 {
		t.Fatalf("order %v must start at the min-distinct variable x1", got)
	}
	seen := map[query.Var]bool{got[0]: true}
	for i := 1; i < len(got); i++ {
		if seen[got[i]] {
			t.Fatalf("order %v repeats %v", got, got[i])
		}
		seen[got[i]] = true
	}
	// Connectivity: x3 (only in T) must come after x2 links T in.
	pos := map[query.Var]int{}
	for i, v := range got {
		pos[v] = i
	}
	if pos[3] < pos[2] {
		t.Fatalf("order %v visits x3 before its only link x2", got)
	}
	for i := 0; i < 5; i++ {
		if again := VarOrder(in); len(again) != len(got) || again[0] != got[0] || again[3] != got[3] {
			t.Fatalf("VarOrder must be deterministic: %v vs %v", got, again)
		}
	}
}
