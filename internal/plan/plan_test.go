package plan

import (
	"testing"

	"pyquery/internal/query"
)

// The model must start from the smallest input and prefer selective joins
// over the written order: a huge unary atom written first loses to a tiny
// binary atom it shares a variable with.
func TestBuildPrefersSelectiveOrder(t *testing.T) {
	inputs := []Input{
		{Label: "H", Rows: 100_000, Vars: []query.Var{0}, Distinct: []int{100_000}},
		{Label: "K", Rows: 32, Vars: []query.Var{0, 1}, Distinct: []int{32, 32}},
	}
	p := Build(inputs, []query.Var{0, 1})
	if got := p.Order(); got[0] != 1 || got[1] != 0 {
		t.Fatalf("order = %v, want [1 0] (K first)", got)
	}
	// Joining H over the shared variable keeps the cardinality at |K|.
	if p.Steps[1].Est != 32 {
		t.Fatalf("est after H join = %v, want 32", p.Steps[1].Est)
	}
	if p.EstRows != 32 {
		t.Fatalf("EstRows = %v, want 32", p.EstRows)
	}
}

// The legacy failure mode: fewest-unbound-variables would pick the unary
// atom first; the cost model must not (its estimate is the whole table).
func TestBuildTracksDistinctTightening(t *testing.T) {
	// R(x,y) with few distinct y; S(y,z) large. After R, d(y) is small, so
	// S joins selectively.
	inputs := []Input{
		{Label: "R", Rows: 10, Vars: []query.Var{0, 1}, Distinct: []int{10, 2}},
		{Label: "S", Rows: 1000, Vars: []query.Var{1, 2}, Distinct: []int{1000, 1000}},
	}
	p := Build(inputs, nil)
	if got := p.Order(); got[0] != 0 {
		t.Fatalf("order = %v, want R first", got)
	}
	// est = 10 * 1000 / max(d(y)=2, d_S(y)=1000) = 10.
	if p.Steps[1].Est != 10 {
		t.Fatalf("est after S = %v, want 10", p.Steps[1].Est)
	}
	// Boolean head: estimate collapses to at most one tuple.
	if p.EstRows != 1 {
		t.Fatalf("Boolean EstRows = %v, want 1", p.EstRows)
	}
}

func TestBuildDeterministicTieBreak(t *testing.T) {
	inputs := []Input{
		{Label: "A", Rows: 5, Vars: []query.Var{0}},
		{Label: "B", Rows: 5, Vars: []query.Var{0}},
	}
	for i := 0; i < 10; i++ {
		if got := Build(inputs, nil).Order(); got[0] != 0 || got[1] != 1 {
			t.Fatalf("tie-break not deterministic: %v", got)
		}
	}
}

func TestBuildEmptyInputDrivesEstimateToZero(t *testing.T) {
	inputs := []Input{
		{Label: "A", Rows: 50, Vars: []query.Var{0}},
		{Label: "B", Rows: 0, Vars: []query.Var{0}},
	}
	p := Build(inputs, []query.Var{0})
	if p.Steps[0].Atom != 1 || p.EstRows != 0 {
		t.Fatalf("empty input must be planned first and zero the estimate: %+v", p)
	}
}

func TestAtomHypergraph(t *testing.T) {
	q := &query.CQ{
		Atoms: []query.Atom{
			query.NewAtom("R", query.V(3), query.V(1)),
			query.NewAtom("S", query.V(1), query.C(7)),
		},
	}
	h, vars := AtomHypergraph(q)
	if len(vars) != 2 || vars[0] != 1 || vars[1] != 3 {
		t.Fatalf("vars = %v, want [1 3]", vars)
	}
	if len(h.Edges) != 2 || len(h.Edges[0]) != 2 || len(h.Edges[1]) != 1 {
		t.Fatalf("edges = %v", h.Edges)
	}
}
