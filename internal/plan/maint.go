package plan

import "pyquery/internal/query"

// Maintenance prices the delta-join rules of incremental view maintenance
// (internal/ivm) with the same distinct-count selectivity model every
// engine plans with. The view R1 ⋈ … ⋈ Rk is maintained by one rule per
// atom occurrence: rule i joins the delta of atom i against the other k−1
// frozen atoms, with atom i's variables pre-bound (each delta tuple fixes
// them to single values, exactly like a parameter probe). The returned
// RuleCost[i] is therefore the model's per-delta-tuple work for rule i,
// and ReexecCost is the full re-execution alternative (Build's join cost
// plus rescanning every input) — the refresh layer falls back to full
// re-execution when Σᵢ |δᵢ|·RuleCost[i] exceeds it.
type MaintPlan struct {
	// Orders[i] is the join order of rule i over the OTHER atoms: a
	// permutation of the input indices excluding i (empty for single-atom
	// views).
	Orders [][]int
	// RuleCost[i] estimates the intermediate tuples one delta tuple of
	// atom i generates under rule i (at least 1 — the delta tuple itself
	// must be inspected).
	RuleCost []float64
	// ReexecCost estimates discarding the view and re-executing: the full
	// join's Build cost plus one scan of every input.
	ReexecCost float64
}

// Maintenance builds the maintenance pricing for the given inputs (one per
// atom occurrence, as handed to Build) and head variables.
func Maintenance(inputs []Input, headVars []query.Var) *MaintPlan {
	m := &MaintPlan{
		Orders:   make([][]int, len(inputs)),
		RuleCost: make([]float64, len(inputs)),
	}
	full := Build(inputs, headVars)
	m.ReexecCost = full.Cost
	for _, in := range inputs {
		m.ReexecCost += float64(in.Rows)
	}
	for i, in := range inputs {
		others := make([]Input, 0, len(inputs)-1)
		idx := make([]int, 0, len(inputs)-1)
		for j, o := range inputs {
			if j != i {
				others = append(others, o)
				idx = append(idx, j)
			}
		}
		p := BuildBound(others, headVars, in.Vars)
		m.Orders[i] = make([]int, len(p.Steps))
		for s, st := range p.Steps {
			m.Orders[i][s] = idx[st.Atom]
		}
		m.RuleCost[i] = p.Cost
		if m.RuleCost[i] < 1 {
			m.RuleCost[i] = 1
		}
	}
	return m
}
