package plan

import (
	"testing"

	"pyquery/internal/query"
)

// A path join E(x,y) ⋈ E(y,z): each delta rule pre-binds one atom's
// variables, so the other atom joins as a selective probe — per-tuple cost
// far below the re-execution cost.
func TestMaintenancePricesDeltaRules(t *testing.T) {
	e := func(vs ...query.Var) Input {
		return Input{Label: "E", Rows: 10_000, Vars: vs, Distinct: []int{100, 100}}
	}
	inputs := []Input{e(0, 1), e(1, 2)}
	m := Maintenance(inputs, []query.Var{0, 2})
	if len(m.Orders) != 2 || len(m.RuleCost) != 2 {
		t.Fatalf("want one rule per atom, got %d/%d", len(m.Orders), len(m.RuleCost))
	}
	for i := range inputs {
		if len(m.Orders[i]) != 1 || m.Orders[i][0] == i {
			t.Fatalf("rule %d order = %v, want the other atom", i, m.Orders[i])
		}
		// Probing 10k rows through a pre-bound shared variable with 100
		// distinct values estimates ~100 tuples per delta tuple.
		if m.RuleCost[i] < 1 || m.RuleCost[i] > 1000 {
			t.Fatalf("rule %d cost = %v, want a selective probe estimate", i, m.RuleCost[i])
		}
		if m.RuleCost[i]*10 >= m.ReexecCost {
			t.Fatalf("rule %d cost %v not clearly below reexec %v", i, m.RuleCost[i], m.ReexecCost)
		}
	}
	// ReexecCost includes rescanning the inputs.
	if m.ReexecCost < 20_000 {
		t.Fatalf("ReexecCost = %v, must include input scans", m.ReexecCost)
	}
}

// Single-atom views have empty rule orders and unit rule cost.
func TestMaintenanceSingleAtom(t *testing.T) {
	m := Maintenance([]Input{{Label: "R", Rows: 50, Vars: []query.Var{0}}}, []query.Var{0})
	if len(m.Orders[0]) != 0 {
		t.Fatalf("single-atom order = %v, want empty", m.Orders[0])
	}
	if m.RuleCost[0] != 1 {
		t.Fatalf("single-atom rule cost = %v, want 1", m.RuleCost[0])
	}
}
