// Package plan is the shared logical planning layer: a plan IR (ordered
// atom steps with estimated cardinalities), the distinct-count selectivity
// model that produces it, and the weighted join-forest policy the acyclic
// engines use to pick a root and a semijoin pass order.
//
// Every engine consumes this package (ROADMAP standing rule): the generic
// backtracker orders its steps by Build, Yannakakis and the Theorem 2
// color-coding engine root their join trees through OrderForest, the
// comparison engine inherits Build through its generic fallback, and
// Datalog re-plans each rule body per semi-naive round because the
// backtracker replans against the working database's current IDB sizes on
// every firing. The legacy per-engine heuristics survive only behind the
// explicit ablation flags (eval.Options.LegacyGreedy, NoReorder).
package plan

import (
	"pyquery/internal/hypergraph"
	"pyquery/internal/query"
)

// Input describes one join input — typically an atom's reduced relation
// S_j = π σ R_j — to the cost model.
type Input struct {
	// Label names the input in reports (usually the atom's rule notation).
	Label string
	// Rows is the input's (exact) cardinality.
	Rows int
	// Vars are the input's columns as query variables.
	Vars []query.Var
	// Distinct estimates the distinct values per Vars entry (from
	// internal/stats). nil means unknown: every column is assumed fully
	// distinct (Rows), the conservative choice.
	Distinct []int
	// MaxFreq estimates the multiplicity of the most frequent value per Vars
	// entry (from internal/stats) — the worst-case fanout of probing this
	// input on that column alone. nil means unknown: every column may be
	// fully skewed (Rows), the conservative choice. Consumed by WorstCost.
	MaxFreq []int
}

// distinct returns the clamped distinct estimate of Vars[i]: at least 1, at
// most Rows.
func (in Input) distinct(i int) float64 {
	d := in.Rows
	if in.Distinct != nil {
		d = in.Distinct[i]
	}
	if d > in.Rows {
		d = in.Rows
	}
	if d < 1 {
		d = 1
	}
	return float64(d)
}

// maxFreq returns the clamped max-frequency estimate of Vars[i]: at least
// 1, at most Rows (for nonempty inputs).
func (in Input) maxFreq(i int) float64 {
	m := in.Rows
	if in.MaxFreq != nil {
		m = in.MaxFreq[i]
	}
	if m > in.Rows {
		m = in.Rows
	}
	if m < 1 {
		m = 1
	}
	return float64(m)
}

// Step is one ordered join step of a logical plan.
type Step struct {
	// Atom indexes the chosen Input (the caller's atom index).
	Atom int
	// Label repeats the input's label for rendering.
	Label string
	// Rows is the input's cardinality.
	Rows int
	// NewVars counts the variables first bound by this step.
	NewVars int
	// Est is the estimated cumulative cardinality of the intermediate
	// result after this step joins in.
	Est float64
}

// Plan is the shared logical plan IR: the cost-based join order with its
// estimates.
type Plan struct {
	// Inputs are the planner inputs, in the caller's atom order.
	Inputs []Input
	// Steps is the chosen order.
	Steps []Step
	// Cost is the sum of estimated intermediate cardinalities — a proxy for
	// the tuples a backtracking join enumerates.
	Cost float64
	// EstRows is the estimated answer cardinality after the head
	// projection.
	EstRows float64
}

// Order returns the atom indices in execution order.
func (p *Plan) Order() []int {
	out := make([]int, len(p.Steps))
	for i, st := range p.Steps {
		out[i] = st.Atom
	}
	return out
}

// Build greedily orders the inputs by estimated intermediate cardinality
// under the textbook distinct-count selectivity model: joining input j into
// an intermediate of estimated cardinality C multiplies by Rows_j and, for
// every already-bound variable v the input shares, divides by
// max(d(v), d_j(v)) — each side keeps at most that many distinct values of
// v, so at most a 1/max fraction of the cross product matches. After the
// join, d(v) tightens to the minimum of the sides, capped by C. Ties break
// toward the smaller input, then the lower atom index, so plans are
// deterministic. headVars (the distinct head variables) bound the final
// answer estimate by the product of their distinct counts.
func Build(inputs []Input, headVars []query.Var) *Plan {
	return BuildBound(inputs, headVars, nil)
}

// BuildBound is Build for a query executed with preBound variables already
// fixed to single values from outside — the compiled backtracker's
// parameter slots and the prepared Decide path's head bindings. Each
// pre-bound variable enters the model with one distinct value, so inputs
// sharing it are priced as highly selective probes and the greedy order
// starts from the parameter-touching atoms, exactly how the engine will
// execute them.
func BuildBound(inputs []Input, headVars []query.Var, preBound []query.Var) *Plan {
	p := &Plan{Inputs: inputs}
	n := len(inputs)
	used := make([]bool, n)
	bound := make(map[query.Var]float64, 8)
	for _, v := range preBound {
		bound[v] = 1
	}
	card := 1.0
	estOf := func(in Input) float64 {
		est := card * float64(in.Rows)
		for i, v := range in.Vars {
			if dv, ok := bound[v]; ok {
				m := in.distinct(i)
				if dv > m {
					m = dv
				}
				est /= m
			}
		}
		return est
	}
	for len(p.Steps) < n {
		best, bestEst, bestRows := -1, 0.0, 0
		for j, in := range inputs {
			if used[j] {
				continue
			}
			e := estOf(in)
			if best == -1 || e < bestEst || (e == bestEst && in.Rows < bestRows) {
				best, bestEst, bestRows = j, e, in.Rows
			}
		}
		used[best] = true
		in := inputs[best]
		newVars := 0
		for i, v := range in.Vars {
			d := in.distinct(i)
			if old, ok := bound[v]; ok {
				if old < d {
					d = old
				}
			} else {
				newVars++
			}
			if bestEst >= 1 && d > bestEst {
				d = bestEst // distinct values cannot exceed the row estimate
			}
			bound[v] = d
		}
		card = bestEst
		p.Steps = append(p.Steps, Step{
			Atom: best, Label: in.Label, Rows: in.Rows, NewVars: newVars, Est: card,
		})
		p.Cost += card
	}
	p.EstRows = card
	if len(headVars) > 0 {
		prod := 1.0
		for _, v := range headVars {
			if d, ok := bound[v]; ok {
				prod *= d
			}
		}
		if prod < p.EstRows {
			p.EstRows = prod
		}
	} else if n > 0 && p.EstRows > 1 {
		p.EstRows = 1 // Boolean query: zero or one (empty) answer tuple
	}
	return p
}

// BagCost estimates one decomposition bag under the same distinct-count
// selectivity model as Build: the guard inputs are joined in Build's order
// and outVars (the bag's χ) cap the materialized estimate the way head
// variables cap an answer estimate. It returns the estimated materialized
// cardinality and the bag's cost (Σ intermediate cardinalities of the
// guard join) — the numbers the decomposition gate in pyquery.PlanDB and
// internal/decomp weighs against the backtracker's Build cost.
func BagCost(inputs []Input, guards []int, outVars []query.Var) (est, cost float64) {
	sub := make([]Input, len(guards))
	for i, g := range guards {
		sub[i] = inputs[g]
	}
	p := Build(sub, outVars)
	return p.EstRows, p.Cost
}

// AtomHypergraph builds the hypergraph of the query's relational atoms:
// vertex i is vars[i] (the sorted body variables), one edge per atom. This
// is the single construction shared by the acyclicity tests and the
// engines.
func AtomHypergraph(q *query.CQ) (*hypergraph.Hypergraph, []query.Var) {
	vars := q.BodyVars()
	id := make(map[query.Var]int, len(vars))
	for i, v := range vars {
		id[v] = i
	}
	edges := make([][]int, len(q.Atoms))
	for i, a := range q.Atoms {
		for _, v := range a.Vars() {
			edges[i] = append(edges[i], id[v])
		}
	}
	return hypergraph.New(len(vars), edges), vars
}

// OrderForest applies the planner's weighting policy to an acyclic join
// forest: each component is re-rooted at its heaviest input — the relation
// that benefits most from being semijoin-reduced and the cheaper probe (vs
// build) side of every merge against it — and children are visited
// lightest-first, so the most selective semijoin shrinks each parent before
// the rest scan it. The underlying undirected forest is unchanged, so the
// join-forest property (and thus every engine's correctness argument) is
// preserved; only constant factors move.
func OrderForest(f *hypergraph.Forest, inputs []Input) *hypergraph.Forest {
	w := make([]float64, len(inputs))
	for i := range inputs {
		w[i] = float64(inputs[i].Rows)
	}
	return f.RerootedBy(w)
}
