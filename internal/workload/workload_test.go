package workload

import (
	"math/rand"
	"testing"

	"pyquery/internal/core"
	"pyquery/internal/decomp"
	"pyquery/internal/eval"
	"pyquery/internal/relation"
	"pyquery/internal/yannakakis"
)

func TestOrgChartShape(t *testing.T) {
	db := OrgChart(50, 10, 3, 1)
	ep := db.MustRel("EP")
	if ep.Len() < 50 {
		t.Fatalf("each employee needs ≥1 assignment: %d rows", ep.Len())
	}
	q := MultiProjectQuery()
	if err := q.Validate(db); err != nil {
		t.Fatal(err)
	}
	if !core.IsAcyclicWithIneqs(q) {
		t.Fatal("org-chart query must be acyclic with inequalities")
	}
	res, err := core.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.Conjunctive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(res, want) {
		t.Fatal("engines disagree on org-chart")
	}
}

func TestRegistrarShape(t *testing.T) {
	db := Registrar(40, 12, 4, 3, 2)
	for _, name := range []string{"SD", "SC", "CD"} {
		if db.MustRel(name).Len() == 0 {
			t.Fatalf("relation %s empty", name)
		}
	}
	q := OutsideDeptQuery()
	if err := q.Validate(db); err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.Conjunctive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(res, want) {
		t.Fatal("engines disagree on registrar")
	}
}

func TestPathQueries(t *testing.T) {
	db := LayeredPathDB(6, 5, 2, 3)
	for k := 1; k <= 4; k++ {
		q := PathQuery(k)
		if !yannakakis.IsAcyclic(q) {
			t.Fatalf("path query k=%d must be acyclic", k)
		}
		ok, err := yannakakis.EvaluateBool(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("layered graph has a %d-path", k)
		}
	}
	// Longer than the layer count: no path.
	q := PathQuery(7)
	ok, err := yannakakis.EvaluateBool(q, db)
	if err != nil || ok {
		t.Fatalf("7-path in 6 layers: %v %v", ok, err)
	}
}

func TestSimplePathQueryPartition(t *testing.T) {
	q := SimplePathQuery(3)
	i1, i2, v1, ok := core.Partition(q)
	if !ok {
		t.Fatal("partition failed")
	}
	// Adjacent pairs co-occur (I2): (0,1),(1,2),(2,3); rest I1: (0,2),(0,3),(1,3).
	if len(i2) != 3 || len(i1) != 3 {
		t.Fatalf("partition: i1=%d i2=%d", len(i1), len(i2))
	}
	if len(v1) != 4 {
		t.Fatalf("V1 = %v", v1)
	}
	e := EndpointsDistinctPathQuery(3)
	i1, _, v1, _ = core.Partition(e)
	if len(i1) != 1 || len(v1) != 2 {
		t.Fatalf("endpoint query partition: %v %v", i1, v1)
	}
}

func TestStarQuery(t *testing.T) {
	q := StarQuery(3)
	if len(q.Atoms) != 3 || len(q.Ineqs) != 3 {
		t.Fatalf("star shape: %v", q)
	}
	db := GraphDB(20, 60, 4)
	got, err := core.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.Conjunctive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(got, want) {
		t.Fatal("star query engines disagree")
	}
}

func TestRandomAcyclicCQIsAcyclic(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		q, db := RandomAcyclicCQ(rnd, AcyclicSpec{
			MaxAtoms: 4, MaxFresh: 2, Domain: 4, MaxRows: 8,
			IneqPairs: 2, IneqConsts: 1, HeadVars: true,
		})
		if !core.IsAcyclicWithIneqs(q) {
			t.Fatalf("iteration %d: cyclic query generated: %v", i, q)
		}
		if err := q.Validate(db); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestCyclicLowWidthShapes(t *testing.T) {
	// Every shape of the family must be cyclic (the backtracker's class)
	// yet inside the decomposition engine's structural class, and both
	// engines must agree on the answer.
	specs := []CyclicLowWidthSpec{
		{CycleLen: 4, Nodes: 12, Degree: 4, Seed: 1},
		{CycleLen: 6, Nodes: 12, Degree: 4, Seed: 2},
		{CycleLen: 5, Chords: 1, Nodes: 10, Degree: 4, Seed: 3},
		{Paths: 2, PathLen: 2, Nodes: 12, Degree: 4, Seed: 4},
		{Paths: 3, PathLen: 3, Nodes: 10, Degree: 4, Seed: 5},
	}
	for i, spec := range specs {
		q, db := CyclicLowWidth(spec)
		if core.IsAcyclicWithIneqs(q) {
			t.Fatalf("spec %d: query is acyclic: %v", i, q)
		}
		if !decomp.Decomposable(q) {
			t.Fatalf("spec %d: not decomposable: %v", i, q)
		}
		want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true})
		if err != nil {
			t.Fatalf("spec %d backtracker: %v", i, err)
		}
		got, err := decomp.EvaluateOpts(q, db, decomp.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("spec %d decomp: %v", i, err)
		}
		if !relation.EqualSet(got, want) {
			t.Fatalf("spec %d: engines disagree on %v", i, q)
		}
	}
}

func TestCompleteDigraphDB(t *testing.T) {
	db := CompleteDigraphDB(4)
	if db.MustRel("E").Len() != 16 {
		t.Fatalf("complete digraph with loops: %d", db.MustRel("E").Len())
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a := OrgChart(20, 5, 3, 7)
	b := OrgChart(20, 5, 3, 7)
	if !relation.EqualSet(a.MustRel("EP"), b.MustRel("EP")) {
		t.Fatal("OrgChart not deterministic for fixed seed")
	}
	c := OrgChart(20, 5, 3, 8)
	if relation.EqualSet(a.MustRel("EP"), c.MustRel("EP")) {
		t.Fatal("different seeds should differ (overwhelmingly)")
	}
}
