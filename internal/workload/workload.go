// Package workload generates the synthetic databases and query families
// used by the experiments: the paper's Section 5 org-chart and registrar
// examples at controllable scale, random graph databases, path/star query
// families with controllable inequality load, and random acyclic queries
// (ear construction). All generators are seeded and deterministic.
package workload

import (
	"math/rand"

	"pyquery/internal/query"
	"pyquery/internal/relation"
)

// OrgChart builds the employee–project database of the paper's first
// Section 5 example: EP(employee, project), each employee assigned to
// 1…maxAssign random projects. Employees are 0…nEmp−1; projects are
// 10⁶…10⁶+nProj−1 (disjoint value ranges keep hashes honest).
func OrgChart(nEmp, nProj, maxAssign int, seed int64) *query.DB {
	rnd := rand.New(rand.NewSource(seed))
	db := query.NewDB()
	ep := query.NewTable(2)
	for e := 0; e < nEmp; e++ {
		k := 1 + rnd.Intn(maxAssign)
		for i := 0; i < k; i++ {
			p := 1_000_000 + rnd.Intn(nProj)
			ep.Append(relation.Value(e), relation.Value(p))
		}
	}
	ep.Dedup()
	db.Set("EP", ep)
	return db
}

// MultiProjectQuery is the paper's query "find the employees that work on
// more than one project": G(e) ← EP(e,p), EP(e,p′), p ≠ p′.
func MultiProjectQuery() *query.CQ {
	return &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("EP", query.V(0), query.V(1)),
			query.NewAtom("EP", query.V(0), query.V(2)),
		},
		Ineqs:    []query.Ineq{query.NeqVars(1, 2)},
		VarNames: []string{"e", "p", "p2"},
	}
}

// Registrar builds the student–course–department database of the paper's
// second example: SD(student, dept), SC(student, course), CD(course, dept).
// Students 0…, courses 10⁶…, departments 2·10⁶….
func Registrar(nStud, nCourse, nDept, coursesPer int, seed int64) *query.DB {
	rnd := rand.New(rand.NewSource(seed))
	db := query.NewDB()
	sd := query.NewTable(2)
	sc := query.NewTable(2)
	cd := query.NewTable(2)
	dept := func(i int) relation.Value { return relation.Value(2_000_000 + i) }
	course := func(i int) relation.Value { return relation.Value(1_000_000 + i) }
	for c := 0; c < nCourse; c++ {
		cd.Append(course(c), dept(rnd.Intn(nDept)))
	}
	for s := 0; s < nStud; s++ {
		sd.Append(relation.Value(s), dept(rnd.Intn(nDept)))
		for i := 0; i < 1+rnd.Intn(coursesPer); i++ {
			sc.Append(relation.Value(s), course(rnd.Intn(nCourse)))
		}
	}
	sd.Dedup()
	sc.Dedup()
	cd.Dedup()
	db.Set("SD", sd)
	db.Set("SC", sc)
	db.Set("CD", cd)
	return db
}

// OutsideDeptQuery is "find the students that take courses outside their
// department": G(s) ← SD(s,d), SC(s,c), CD(c,d′), d ≠ d′.
func OutsideDeptQuery() *query.CQ {
	return &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("SD", query.V(0), query.V(1)),
			query.NewAtom("SC", query.V(0), query.V(2)),
			query.NewAtom("CD", query.V(2), query.V(3)),
		},
		Ineqs:    []query.Ineq{query.NeqVars(1, 3)},
		VarNames: []string{"s", "d", "c", "d2"},
	}
}

// GraphDB wraps a directed edge set as a database {E(·,·)}.
func GraphDB(nNodes, nEdges int, seed int64) *query.DB {
	rnd := rand.New(rand.NewSource(seed))
	db := query.NewDB()
	e := query.NewTable(2)
	for i := 0; i < nEdges; i++ {
		e.Append(relation.Value(rnd.Intn(nNodes)), relation.Value(rnd.Intn(nNodes)))
	}
	e.Dedup()
	db.Set("E", e)
	return db
}

// PathQuery is the Boolean k-path query G() ← E(x₀,x₁), …, E(x_{k−1},x_k):
// acyclic, k+1 variables.
func PathQuery(k int) *query.CQ {
	q := &query.CQ{}
	for i := 0; i < k; i++ {
		q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(query.Var(i)), query.V(query.Var(i+1))))
	}
	return q
}

// SimplePathQuery is PathQuery plus all-pairs inequalities — the k-simple-
// path query whose tractability is the Monien/color-coding special case the
// paper cites. All non-adjacent pairs land in I₁.
func SimplePathQuery(k int) *query.CQ {
	q := PathQuery(k)
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			q.Ineqs = append(q.Ineqs, query.NeqVars(query.Var(i), query.Var(j)))
		}
	}
	return q
}

// EndpointsDistinctPathQuery is PathQuery plus the single inequality
// x₀ ≠ x_k — the minimal I₁ load (k = 2 hash colors).
func EndpointsDistinctPathQuery(k int) *query.CQ {
	q := PathQuery(k)
	q.Ineqs = []query.Ineq{query.NeqVars(0, query.Var(k))}
	return q
}

// StarQuery returns G(x₀) ← E(x₀,x₁), …, E(x₀,x_k) with pairwise-distinct
// leaves: leaves never co-occur, so all (k choose 2) inequalities are I₁.
func StarQuery(k int) *query.CQ {
	q := &query.CQ{Head: []query.Term{query.V(0)}}
	for i := 1; i <= k; i++ {
		q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(0), query.V(query.Var(i))))
	}
	for i := 1; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			q.Ineqs = append(q.Ineqs, query.NeqVars(query.Var(i), query.Var(j)))
		}
	}
	return q
}

// RandomAcyclicCQ builds a random acyclic conjunctive query by ear
// construction (every atom shares variables with one earlier atom) plus a
// matching database; optionally with random inequalities. Relations are
// named A, B, C, … in atom order.
type AcyclicSpec struct {
	MaxAtoms   int // ≥ 1
	MaxFresh   int // fresh vars per atom, ≥ 1
	Domain     int
	MaxRows    int
	IneqPairs  int  // random x≠y atoms
	IneqConsts int  // random x≠c atoms
	HeadVars   bool // project a random subset of vars
}

// RandomAcyclicCQ generates (query, database) from the spec.
func RandomAcyclicCQ(rnd *rand.Rand, spec AcyclicSpec) (*query.CQ, *query.DB) {
	db := query.NewDB()
	nAtoms := 1 + rnd.Intn(spec.MaxAtoms)
	q := &query.CQ{}
	nextVar := query.Var(0)
	atomVars := make([][]query.Var, 0, nAtoms)
	for i := 0; i < nAtoms; i++ {
		var vars []query.Var
		if i > 0 {
			parent := atomVars[rnd.Intn(len(atomVars))]
			for _, v := range parent {
				if rnd.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
		}
		for f := 0; f < 1+rnd.Intn(spec.MaxFresh); f++ {
			vars = append(vars, nextVar)
			nextVar++
		}
		atomVars = append(atomVars, vars)
	}
	for i, vars := range atomVars {
		name := string(rune('A' + i))
		r := query.NewTable(len(vars))
		row := make([]relation.Value, len(vars))
		for j := 0; j < 1+rnd.Intn(spec.MaxRows); j++ {
			for c := range row {
				row[c] = relation.Value(rnd.Intn(spec.Domain))
			}
			r.Append(row...)
		}
		r.Dedup()
		db.Set(name, r)
		args := make([]query.Term, len(vars))
		for j, v := range vars {
			args[j] = query.V(v)
		}
		q.Atoms = append(q.Atoms, query.Atom{Rel: name, Args: args})
	}
	all := q.BodyVars()
	if spec.HeadVars {
		for _, v := range all {
			if rnd.Intn(3) == 0 {
				q.Head = append(q.Head, query.V(v))
			}
		}
	}
	for i := 0; i < spec.IneqPairs && len(all) >= 2; i++ {
		x, y := all[rnd.Intn(len(all))], all[rnd.Intn(len(all))]
		if x != y {
			q.Ineqs = append(q.Ineqs, query.NeqVars(x, y))
		}
	}
	for i := 0; i < spec.IneqConsts && len(all) >= 1; i++ {
		q.Ineqs = append(q.Ineqs,
			query.NeqConst(all[rnd.Intn(len(all))], relation.Value(rnd.Intn(spec.Domain))))
	}
	return q, db
}

// CycleQuery is the n-cycle join G(x0, x_{n/2}) ← E(x0,x1), …, E(x_{n−1},x0):
// cyclic for n ≥ 3 but generalized hypertree width 2 (opposite arcs pair
// into bags), so it routes to the decomposition engine while the
// backtracker pays the n^O(q) cycle exponent. The two-variable head forces
// full enumeration (no early exit).
func CycleQuery(n int) *query.CQ {
	q := &query.CQ{Head: []query.Term{query.V(0), query.V(query.Var(n / 2))}}
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(query.Var(i)), query.V(query.Var((i+1)%n))))
	}
	return q
}

// ThetaQuery joins p internally-disjoint directed s→t paths of length ℓ
// through E (the "theta" multigraph): G(s,t) ← p·ℓ atoms. Cyclic for
// p ≥ 2 yet width 2 at every size — each path becomes a chain of bags
// hanging off one (s,…,t) bag — so it is the tunable-size axis of the
// cyclic low-width family (CycleQuery's length, or chords, tune width).
func ThetaQuery(paths, pathLen int) *query.CQ {
	s, t := query.Var(0), query.Var(1)
	q := &query.CQ{Head: []query.Term{query.V(s), query.V(t)}}
	next := query.Var(2)
	for p := 0; p < paths; p++ {
		prev := s
		for step := 0; step < pathLen-1; step++ {
			q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(prev), query.V(next)))
			prev = next
			next++
		}
		q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(prev), query.V(t)))
	}
	return q
}

// CyclicLowWidthSpec configures the CyclicLowWidth generator: either an
// n-cycle (CycleLen ≥ 3, optionally Chords extra atoms x_i→x_{i+2} raising
// the effective width) or a theta join (Paths ≥ 2 s→t paths of PathLen
// atoms), over a random digraph with Nodes vertices and average out-degree
// Degree. Degree ≫ 1 is the regime where bag materialization (≈|E|·Degree
// tuples per width-2 bag) beats the backtracker's ≈|E|·Degree^(q−2)
// enumeration.
type CyclicLowWidthSpec struct {
	CycleLen, Chords int
	Paths, PathLen   int
	Nodes, Degree    int
	Seed             int64
}

// CyclicLowWidth generates (query, database) from the spec — the E8/A6
// workload for the decomposition engine's routing class.
func CyclicLowWidth(spec CyclicLowWidthSpec) (*query.CQ, *query.DB) {
	var q *query.CQ
	if spec.CycleLen >= 3 {
		q = CycleQuery(spec.CycleLen)
		for c := 0; c < spec.Chords; c++ {
			i := (2 * c) % spec.CycleLen
			q.Atoms = append(q.Atoms, query.NewAtom("E",
				query.V(query.Var(i)), query.V(query.Var((i+2)%spec.CycleLen))))
		}
	} else {
		q = ThetaQuery(spec.Paths, spec.PathLen)
	}
	return q, GraphDB(spec.Nodes, spec.Nodes*spec.Degree, spec.Seed)
}

// TriangleQuery is the directed-triangle join with full-variable head
// G(x,y,z) ← E(x,y), E(y,z), E(z,x): the smallest cyclic query, and the
// canonical worst-case-optimal-join workload (AGM bound |E|^{3/2} vs the
// backtracker's quadratic blowup on skewed graphs).
func TriangleQuery() *query.CQ {
	return &query.CQ{
		Head: []query.Term{query.V(0), query.V(1), query.V(2)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(2)),
			query.NewAtom("E", query.V(2), query.V(0)),
		},
	}
}

// CliqueQuery is the k-clique join with full-variable head: one E(x_i,x_j)
// atom per ordered pair i < j. Cyclic for k ≥ 3 with (k choose 2) atoms —
// the high-width end of the E10 worst-case-optimal family.
func CliqueQuery(k int) *query.CQ {
	q := &query.CQ{}
	for i := 0; i < k; i++ {
		q.Head = append(q.Head, query.V(query.Var(i)))
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			q.Atoms = append(q.Atoms, query.NewAtom("E", query.V(query.Var(i)), query.V(query.Var(j))))
		}
	}
	return q
}

// HubGraphDB is the skewed instance of the E10 family: one hub wired to
// leaves bidirectionally (maximal degree skew — the hub's frequency is
// ~half the edge list) plus a small bidirectional clique so triangle and
// k-clique queries have nonempty answers. A backtracker binding an edge
// into the hub then scans the hub's whole neighborhood per candidate
// (Θ(leaves²) over the query), while the leapfrog intersection meets each
// neighborhood list with a binary search. Deterministic, no seed.
func HubGraphDB(leaves, clique int) *query.DB {
	db := query.NewDB()
	e := query.NewTable(2)
	for i := 1; i <= leaves; i++ {
		e.Append(relation.Value(0), relation.Value(i))
		e.Append(relation.Value(i), relation.Value(0))
	}
	cnode := func(i int) relation.Value { return relation.Value(1_000_000 + i) }
	for i := 0; i < clique; i++ {
		for j := 0; j < clique; j++ {
			if i != j {
				e.Append(cnode(i), cnode(j))
			}
		}
	}
	db.Set("E", e)
	return db
}

// CompleteDigraphDB returns the complete digraph with self-loops — the
// worst case for the Vardi family (E7).
func CompleteDigraphDB(n int) *query.DB {
	db := query.NewDB()
	e := query.NewTable(2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			e.Append(relation.Value(i), relation.Value(j))
		}
	}
	db.Set("E", e)
	return db
}

// DeadEndPathDB is the adversarial instance for generic evaluation of the
// simple k-path query: k dense layers of the given width (complete
// bipartite between consecutive layers) whose last layer has no outgoing
// edges, plus one isolated edge so the final atom is nonempty. Backtracking
// must enumerate ~width^(k-1) prefixes before concluding "no k-path", while
// the Theorem 2 engine's joins stay linear in the database.
func DeadEndPathDB(width, k int) *query.DB {
	db := query.NewDB()
	e := query.NewTable(2)
	node := func(layer, i int) relation.Value { return relation.Value(layer*width + i) }
	for l := 0; l+1 < k; l++ { // layers 0..k-1; no edges leave layer k-1
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				e.Append(node(l, i), node(l+1, j))
			}
		}
	}
	// The isolated edge keeps every atom satisfiable in isolation.
	e.Append(relation.Value(1_000_000), relation.Value(1_000_001))
	db.Set("E", e)
	return db
}

// LayeredPathDB builds an ℓ-layered digraph (w nodes per layer, every node
// wired to d random nodes of the next layer) — path queries over it have
// answers but no short cycles, which keeps the k-path family honest.
func LayeredPathDB(layers, width, outDeg int, seed int64) *query.DB {
	rnd := rand.New(rand.NewSource(seed))
	db := query.NewDB()
	e := query.NewTable(2)
	node := func(layer, i int) relation.Value { return relation.Value(layer*width + i) }
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for d := 0; d < outDeg; d++ {
				e.Append(node(l, i), node(l+1, rnd.Intn(width)))
			}
		}
	}
	e.Dedup()
	db.Set("E", e)
	return db
}

// PlannerTrap builds the A5 ablation instance — the legacy join-order
// heuristic's failure mode. Start(s) holds the group keys; FanA(s,a) and
// FanB(s,b) each multiply a group by the fan-out; Sel(a,b) holds three
// valid (a,b) pairs per group plus enough non-joining decoy pairs to be
// larger than FanB. After (s,a) bind, FanB and Sel both have one unbound
// variable, so the fewest-unbound/size tie-break picks the smaller FanB and
// enumerates groups·fan² partial assignments, while the distinct-count
// selectivity model sees Sel keep the intermediate flat and schedules it
// first. The query is G(s) ← Start(s), FanA(s,a), FanB(s,b), Sel(a,b);
// deterministic, no seed needed.
func PlannerTrap(groups, fan int) (*query.DB, *query.CQ) {
	db := query.NewDB()
	start := query.NewTable(1)
	fanA := query.NewTable(2)
	fanB := query.NewTable(2)
	sel := query.NewTable(2)
	aVal := func(s, i int) relation.Value { return relation.Value(s*fan + i) }
	bVal := func(s, i int) relation.Value { return relation.Value(1_000_000 + s*fan + i) }
	for s := 0; s < groups; s++ {
		start.Append(relation.Value(s))
		for i := 0; i < fan; i++ {
			fanA.Append(relation.Value(s), aVal(s, i))
			fanB.Append(relation.Value(s), bVal(s, i))
		}
		for i := 0; i < 3 && i < fan; i++ {
			sel.Append(aVal(s, i), bVal(s, i))
		}
	}
	for d := 0; d < groups*fan+fan; d++ {
		sel.Append(relation.Value(10_000_000+d), relation.Value(20_000_000+d))
	}
	db.Set("Start", start)
	db.Set("FanA", fanA)
	db.Set("FanB", fanB)
	db.Set("Sel", sel)
	q := &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("Start", query.V(0)),
			query.NewAtom("FanA", query.V(0), query.V(1)),
			query.NewAtom("FanB", query.V(0), query.V(2)),
			query.NewAtom("Sel", query.V(1), query.V(2)),
		},
		VarNames: []string{"s", "a", "b"},
	}
	return db, q
}
