package pyquery_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pyquery"
	"pyquery/internal/eval"
	"pyquery/internal/relation"
	"pyquery/internal/wcoj"
	"pyquery/internal/workload"
)

// Randomized differential suite across the whole engine surface: every case
// builds a random (query, database) instance, takes the NoReorder generic
// backtracker as ground truth, and pins set-equality through the facade at
// Parallelism {1,3}, prepared vs one-shot (NoCache), the routing ablations
// (NoDecomp, NoWCOJ, both), and — for eligible pure queries — the leapfrog
// engine forced past its cost gate. The shape generator is biased so every
// one of the six engine classes is exercised many times per run; the test
// asserts that coverage at the end, so routing drift cannot silently shrink
// the suite. Run under -race in CI, the concurrent shards double as a data-
// race probe.

// fuzzShape enumerates the query shapes the generator rotates through, each
// targeting one routing class (the free-form shape lands anywhere).
const (
	shapeAcyclicPath = iota // yannakakis
	shapeColorCoding        // acyclic + I₁ inequality
	shapeComparisons        // acyclic + variable comparison
	shapeCyclicPure         // decomp candidate (sparse → generic)
	shapeCyclicIneq         // generic backtracker
	shapeHubTriangle        // dense skewed hub → wcoj
	shapeFreeForm           // anything
	numFuzzShapes
)

// fuzzInstance builds one random (query, db) pair of the given shape.
func fuzzInstance(rnd *rand.Rand, shape int) (*pyquery.CQ, *pyquery.DB) {
	db := pyquery.NewDB()
	for i := 0; i < 2; i++ {
		db.Set(fmt.Sprintf("E%d", i), randEdges(rnd, 15+rnd.Intn(45), 5+rnd.Intn(5)))
	}
	u := pyquery.NewTable(1)
	for i := 0; i < 1+rnd.Intn(5); i++ {
		u.Append(pyquery.Value(rnd.Intn(6)))
	}
	db.Set("U", u.Dedup())
	rel := func() string { return fmt.Sprintf("E%d", rnd.Intn(2)) }

	q := &pyquery.CQ{}
	switch shape {
	case shapeAcyclicPath, shapeColorCoding, shapeComparisons:
		n := 2 + rnd.Intn(3)
		for i := 0; i < n; i++ {
			q.Atoms = append(q.Atoms, pyquery.NewAtom(rel(),
				pyquery.V(pyquery.Var(i)), pyquery.V(pyquery.Var(i+1))))
		}
		q.Head = []pyquery.Term{pyquery.V(0), pyquery.V(pyquery.Var(n))}
		if shape == shapeColorCoding {
			// Endpoints never share an atom for n ≥ 2, so the ≠ lands in I₁.
			q.Ineqs = []pyquery.Ineq{pyquery.NeqVars(0, pyquery.Var(n))}
		}
		if shape == shapeComparisons {
			q.Cmps = []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.V(pyquery.Var(n)))}
		}
	case shapeCyclicPure, shapeCyclicIneq:
		n := 3 + rnd.Intn(4)
		for i := 0; i < n; i++ {
			q.Atoms = append(q.Atoms, pyquery.NewAtom(rel(),
				pyquery.V(pyquery.Var(i)), pyquery.V(pyquery.Var((i+1)%n))))
		}
		if rnd.Intn(3) == 0 { // chord
			a, b := rnd.Intn(n), rnd.Intn(n)
			if a != b {
				q.Atoms = append(q.Atoms, pyquery.NewAtom(rel(), pyquery.V(pyquery.Var(a)), pyquery.V(pyquery.Var(b))))
			}
		}
		q.Head = []pyquery.Term{pyquery.V(pyquery.Var(rnd.Intn(n)))}
		if shape == shapeCyclicIneq {
			q.Ineqs = []pyquery.Ineq{pyquery.NeqVars(0, pyquery.Var(1+rnd.Intn(n-1)))}
		}
	case shapeHubTriangle:
		db = workload.HubGraphDB(60+rnd.Intn(120), 4+rnd.Intn(4))
		if rnd.Intn(2) == 0 {
			q = workload.TriangleQuery()
		} else {
			q = workload.CliqueQuery(4)
		}
	default: // free-form
		nAtoms := 2 + rnd.Intn(3)
		randTerm := func() pyquery.Term {
			if rnd.Intn(8) == 0 {
				return pyquery.C(pyquery.Value(rnd.Intn(6)))
			}
			return pyquery.V(pyquery.Var(rnd.Intn(5)))
		}
		for i := 0; i < nAtoms; i++ {
			if rnd.Intn(4) == 0 {
				q.Atoms = append(q.Atoms, pyquery.NewAtom("U", randTerm()))
			} else {
				q.Atoms = append(q.Atoms, pyquery.NewAtom(rel(), randTerm(), randTerm()))
			}
		}
		body := q.BodyVars()
		if len(body) == 0 {
			q.Atoms = append(q.Atoms, pyquery.NewAtom("U", pyquery.V(0)))
			body = q.BodyVars()
		}
		switch rnd.Intn(4) {
		case 0: // Boolean head
		case 1:
			q.Head = []pyquery.Term{pyquery.C(7), pyquery.V(body[rnd.Intn(len(body))])}
		default:
			for i := 0; i < 1+rnd.Intn(2); i++ {
				q.Head = append(q.Head, pyquery.V(body[rnd.Intn(len(body))]))
			}
		}
		if len(body) >= 2 && rnd.Intn(3) == 0 {
			q.Ineqs = append(q.Ineqs, pyquery.NeqVars(body[0], body[len(body)-1]))
		}
		if len(body) >= 2 && rnd.Intn(4) == 0 {
			q.Cmps = append(q.Cmps, pyquery.Lt(pyquery.V(body[0]), pyquery.V(body[len(body)-1])))
		}
	}
	return q, db
}

// wcojEligible mirrors the leapfrog engine's structural class: pure
// conjunctive, at least one atom, no parameters.
func wcojEligible(q *pyquery.CQ) bool {
	return len(q.Atoms) > 0 && len(q.Ineqs) == 0 && len(q.Cmps) == 0 && len(q.Params()) == 0
}

func TestEngineDifferentialFuzz(t *testing.T) {
	cases := 560
	if testing.Short() {
		cases = 120
	}
	seenEngine := map[pyquery.Engine]int{}
	for seed := 0; seed < cases; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))
		q, db := fuzzInstance(rnd, seed%numFuzzShapes)
		tag := fmt.Sprintf("seed=%d q=%v", seed, q)

		want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true})
		if err != nil {
			t.Fatalf("%s baseline: %v", tag, err)
		}
		r, err := pyquery.PlanDB(q, db)
		if err != nil {
			t.Fatalf("%s plan: %v", tag, err)
		}
		seenEngine[r.Engine]++

		for _, par := range []int{1, 3} {
			for _, opts := range []pyquery.Options{
				{Parallelism: par},                // prepared (plan-cache) path
				{Parallelism: par, NoCache: true}, // one-shot path
				{Parallelism: par, NoDecomp: true},
				{Parallelism: par, NoWCOJ: true},
				{Parallelism: par, NoDecomp: true, NoWCOJ: true},
			} {
				got, err := pyquery.EvaluateOpts(q, db, opts)
				if err != nil {
					t.Fatalf("%s opts=%+v: %v", tag, opts, err)
				}
				if !relation.EqualSet(got, want) {
					t.Fatalf("%s opts=%+v: answer drift\nwant %v\ngot %v", tag, opts, want, got)
				}
				ok, err := pyquery.EvaluateBoolOpts(q, db, opts)
				if err != nil || ok != want.Bool() {
					t.Fatalf("%s opts=%+v bool: got (%v,%v), want %v", tag, opts, ok, err, want.Bool())
				}
			}
			if wcojEligible(q) {
				lf, err := wcoj.Evaluate(q, db, par)
				if err != nil {
					t.Fatalf("%s wcoj par=%d: %v", tag, par, err)
				}
				if !relation.EqualSet(lf, want) {
					t.Fatalf("%s: forced wcoj par=%d drifts\nwant %v\ngot %v", tag, par, want, lf)
				}
			}
		}
	}
	for _, e := range []pyquery.Engine{
		pyquery.EngineYannakakis, pyquery.EngineColorCoding, pyquery.EngineComparisons,
		pyquery.EngineGeneric, pyquery.EngineDecomp, pyquery.EngineWCOJ,
	} {
		if seenEngine[e] == 0 {
			t.Fatalf("differential fuzz never routed to %v — generator coverage drifted (%v)", e, seenEngine)
		}
	}
	t.Logf("engine coverage over %d cases: %v", cases, seenEngine)
}

// TestRefreshEquivalenceFuzz is the update-equivalence dimension of the
// differential suite: the same shape generator, but each instance now
// lives through random Insert/Delete/Set sequences with Prepared.Refresh
// interleaved. The incrementally maintained view (the folded Refresh
// deltas) must stay set-equal to a fresh prepare-and-execute after every
// batch, at Parallelism 1 and 3, and the deltas themselves must be exact —
// added tuples new, removed tuples present. Engine-class coverage is
// asserted like the one-shot suite so routing drift cannot shrink it.
func TestRefreshEquivalenceFuzz(t *testing.T) {
	cases := 84
	rounds := 6
	if testing.Short() {
		cases, rounds = 28, 4
	}
	seenEngine := map[pyquery.Engine]int{}
	for seed := 0; seed < cases; seed++ {
		rnd := rand.New(rand.NewSource(int64(1000 + seed)))
		q, db := fuzzInstance(rnd, seed%numFuzzShapes)
		tag := fmt.Sprintf("seed=%d q=%v", seed, q)
		r, err := pyquery.PlanDB(q, db)
		if err != nil {
			t.Fatalf("%s plan: %v", tag, err)
		}
		seenEngine[r.Engine]++

		// The relations the query reads, for targeted mutations.
		var rels []string
		seen := map[string]bool{}
		for _, a := range q.Atoms {
			if !seen[a.Rel] {
				seen[a.Rel] = true
				rels = append(rels, a.Rel)
			}
		}
		mutate := func() {
			name := rels[rnd.Intn(len(rels))]
			rel, _ := db.Rel(name)
			w := rel.Width()
			randRow := func() []pyquery.Value {
				row := make([]pyquery.Value, w)
				for i := range row {
					row[i] = pyquery.Value(rnd.Intn(12))
				}
				return row
			}
			switch rnd.Intn(5) {
			case 0: // delete an existing tuple, so deletions actually land
				if rel.Len() > 0 {
					row := append([]pyquery.Value(nil), rel.Row(rnd.Intn(rel.Len()))...)
					db.Delete(name, row)
				}
			case 1:
				db.Delete(name, randRow())
			case 2: // wholesale replacement: forces the rebuild-and-diff path
				nr := pyquery.NewTable(w)
				for i := 0; i < 5+rnd.Intn(20); i++ {
					nr.Append(randRow()...)
				}
				db.Set(name, nr.Dedup())
			default:
				db.Insert(name, randRow(), randRow())
			}
		}

		for _, par := range []int{1, 3} {
			p, err := pyquery.Prepare(q, db, pyquery.Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s prepare: %v", tag, err)
			}
			view := relation.NewTupleSet(len(q.Head))
			viewRows := pyquery.NewTable(len(q.Head))
			for round := 0; round <= rounds; round++ {
				if round > 0 {
					for n := 1 + rnd.Intn(3); n > 0; n-- {
						mutate()
					}
				}
				added, removed, err := p.Refresh(context.Background())
				if err != nil {
					t.Fatalf("%s par=%d round=%d refresh: %v", tag, par, round, err)
				}
				for i := 0; i < removed.Len(); i++ {
					if !view.Contains(removed.Row(i)) {
						t.Fatalf("%s par=%d round=%d: removed %v not in view", tag, par, round, removed.Row(i))
					}
				}
				for i := 0; i < added.Len(); i++ {
					if view.Contains(added.Row(i)) {
						t.Fatalf("%s par=%d round=%d: added %v already in view", tag, par, round, added.Row(i))
					}
				}
				next := pyquery.NewTable(len(q.Head))
				rebuilt := relation.NewTupleSet(len(q.Head))
				for i := 0; i < viewRows.Len(); i++ {
					if !removed.Contains(viewRows.Row(i)) {
						next.Append(viewRows.Row(i)...)
						rebuilt.Add(viewRows.Row(i))
					}
				}
				for i := 0; i < added.Len(); i++ {
					next.Append(added.Row(i)...)
					rebuilt.Add(added.Row(i))
				}
				viewRows, view = next, rebuilt

				want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true})
				if err != nil {
					t.Fatalf("%s round=%d baseline: %v", tag, round, err)
				}
				if !relation.EqualSet(viewRows.Sort(), want.Sort()) {
					t.Fatalf("%s par=%d round=%d: maintained view drifts\nwant %v\ngot %v",
						tag, par, round, want, viewRows)
				}
				// The prepared one-shot path must agree too (it shares the
				// database the refresh just consumed the changelog of).
				got, err := p.Exec(context.Background())
				if err != nil {
					t.Fatalf("%s par=%d round=%d exec: %v", tag, par, round, err)
				}
				if !relation.EqualSet(got.Sort(), want.Sort()) {
					t.Fatalf("%s par=%d round=%d: exec drifts after refresh", tag, par, round)
				}
			}
		}
	}
	for _, e := range []pyquery.Engine{
		pyquery.EngineYannakakis, pyquery.EngineColorCoding, pyquery.EngineComparisons,
		pyquery.EngineGeneric, pyquery.EngineDecomp, pyquery.EngineWCOJ,
	} {
		if seenEngine[e] == 0 {
			t.Fatalf("refresh fuzz never routed to %v — generator coverage drifted (%v)", e, seenEngine)
		}
	}
	t.Logf("engine coverage over %d cases: %v", cases, seenEngine)
}
