package pyquery_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"pyquery"
	"pyquery/internal/decomp"
	"pyquery/internal/faults"
	"pyquery/internal/governor"
	"pyquery/internal/leakcheck"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

// Fault-injection harness for the resource governor: every engine class is
// driven through a full Prepare+Exec with an injector that forces a typed
// trip (or a panic) at the Nth governor checkpoint, for N swept over the
// checkpoints the operation actually crosses. The contract under test:
// a trip at ANY checkpoint surfaces as a typed, errors.Is-able failure
// carrying the engine label, no goroutines leak, and the same query runs
// clean immediately afterwards.

type faultCase struct {
	name   string
	engine pyquery.Engine
	q      *pyquery.CQ
	db     *pyquery.DB
}

// faultCases covers all six engine classes, mirroring the routing in
// TestPreparedCanceledContext: an acyclic path (yannakakis), the same path
// with an inequality (colorcoding) and with a comparison (comparisons), a
// triangle with an inequality (generic backtracker), a 4-cycle (hypertree
// decomposition), and a pure triangle on a skewed hub graph (worst-case-
// optimal leapfrog).
func faultCases() []faultCase {
	rnd := rand.New(rand.NewSource(42))
	db := pathDB(rnd)
	tridb := pyquery.NewDB()
	tridb.Set("E", randEdges(rnd, 200, 20))

	ineq := pathQuery()
	ineq.Ineqs = []pyquery.Ineq{pyquery.NeqVars(0, 3)}
	cmp := pathQuery()
	cmp.Cmps = []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.V(3))}
	tri := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 1)},
	}
	return []faultCase{
		{"yannakakis", pyquery.EngineYannakakis, pathQuery(), db},
		{"colorcoding", pyquery.EngineColorCoding, ineq, db},
		{"comparisons", pyquery.EngineComparisons, cmp, db},
		{"generic", pyquery.EngineGeneric, tri, tridb},
		{"decomp", pyquery.EngineDecomp, workload.CycleQuery(4), tridb},
		{"wcoj", pyquery.EngineWCOJ, workload.TriangleQuery(), workload.HubGraphDB(200, 5)},
	}
}

// prepareExec is one full governed operation: a fresh Prepare (compile-time
// checkpoints included — decomp materializes its bags under a compile
// meter) followed by one Exec.
func prepareExec(tc faultCase, opts pyquery.Options) (*pyquery.Relation, error) {
	p, err := pyquery.Prepare(tc.q, tc.db, opts)
	if err != nil {
		return nil, err
	}
	return p.Exec(context.Background())
}

// sweepPoints picks the checkpoint ordinals to inject at: all of 1..total
// when few, otherwise an even sample that always includes the first and
// last checkpoint.
func sweepPoints(total int64, max int) []int64 {
	if total <= int64(max) {
		ks := make([]int64, 0, total)
		for k := int64(1); k <= total; k++ {
			ks = append(ks, k)
		}
		return ks
	}
	stride := total / int64(max)
	ks := []int64{}
	for k := int64(1); k <= total; k += stride {
		ks = append(ks, k)
	}
	if ks[len(ks)-1] != total {
		ks = append(ks, total)
	}
	return ks
}

// TestFaultSweepAllEngines is the harness proper: engine × checkpoint ×
// parallelism {1,N}. Each (engine, par) first runs clean for the expected
// answer, then runs under a counting-only injector to learn how many
// checkpoints the operation crosses, then re-runs with a forced ErrRowLimit
// trip at each sampled checkpoint — asserting the typed failure — and
// finally runs clean again to prove the trip left no broken state behind.
func TestFaultSweepAllEngines(t *testing.T) {
	leakcheck.Check(t)
	defer faults.Uninstall()
	for _, tc := range faultCases() {
		for _, par := range []int{1, 3} {
			opts := pyquery.Options{Parallelism: par}
			faults.Uninstall()
			want, err := prepareExec(tc, opts)
			if err != nil {
				t.Fatalf("%s par=%d baseline: %v", tc.name, par, err)
			}

			counter := &faults.Injector{}
			counter.Install()
			if _, err := prepareExec(tc, opts); err != nil {
				t.Fatalf("%s par=%d counting run: %v", tc.name, par, err)
			}
			faults.Uninstall()
			total := counter.Count()
			if total == 0 {
				t.Fatalf("%s par=%d crossed no governor checkpoints — engine loop without a checkpoint", tc.name, par)
			}

			for _, k := range sweepPoints(total, 24) {
				inj := &faults.Injector{Kind: governor.ErrRowLimit, At: k}
				inj.Install()
				_, err := prepareExec(tc, opts)
				faults.Uninstall()
				if inj.Count() < k {
					// Concurrent schedules may cross marginally fewer
					// checkpoints (e.g. a worker observing another's trip);
					// a sweep point that never fired asserts nothing.
					continue
				}
				if err == nil {
					t.Fatalf("%s par=%d: injected trip at checkpoint %d/%d was swallowed", tc.name, par, k, total)
				}
				if !errors.Is(err, pyquery.ErrRowLimit) {
					t.Fatalf("%s par=%d checkpoint %d/%d: got %v, want ErrRowLimit", tc.name, par, k, total, err)
				}
				var le *pyquery.LimitError
				if !errors.As(err, &le) {
					t.Fatalf("%s par=%d checkpoint %d/%d: not a *LimitError: %v", tc.name, par, k, total, err)
				}
				if le.Engine == "" {
					t.Fatalf("%s par=%d checkpoint %d/%d: LimitError without engine label: %+v", tc.name, par, k, total, le)
				}
			}

			got, err := prepareExec(tc, opts)
			if err != nil {
				t.Fatalf("%s par=%d clean run after sweep: %v", tc.name, par, err)
			}
			if !relation.EqualSet(got, want) {
				t.Fatalf("%s par=%d: answer differs after fault sweep\nwant %v\ngot  %v", tc.name, par, want, got)
			}
		}
	}
}

// TestFaultPanicRecovery injects a panic at a governor checkpoint and
// asserts the facade boundary converts it to *pyquery.InternalError — and
// that the same Prepared keeps answering correctly afterwards, i.e. the
// panic corrupted neither the statement nor the shared plan state.
func TestFaultPanicRecovery(t *testing.T) {
	leakcheck.Check(t)
	defer faults.Uninstall()
	for _, tc := range faultCases() {
		for _, par := range []int{1, 3} {
			opts := pyquery.Options{Parallelism: par}
			faults.Uninstall()
			p, err := pyquery.Prepare(tc.q, tc.db, opts)
			if err != nil {
				t.Fatalf("%s par=%d prepare: %v", tc.name, par, err)
			}
			want, err := p.Exec(context.Background())
			if err != nil {
				t.Fatalf("%s par=%d baseline: %v", tc.name, par, err)
			}

			inj := &faults.Injector{PanicAt: 2}
			inj.Install()
			_, err = p.Exec(context.Background())
			faults.Uninstall()
			if err == nil {
				t.Fatalf("%s par=%d: injected panic was swallowed", tc.name, par)
			}
			var ie *pyquery.InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("%s par=%d: panic surfaced as %T %v, want *InternalError", tc.name, par, err, err)
			}
			if ie.Engine == "" {
				t.Fatalf("%s par=%d: InternalError without engine label", tc.name, par)
			}

			got, err := p.Exec(context.Background())
			if err != nil {
				t.Fatalf("%s par=%d exec after panic: %v", tc.name, par, err)
			}
			if !relation.EqualSet(got, want) {
				t.Fatalf("%s par=%d: answer differs after recovered panic\nwant %v\ngot  %v", tc.name, par, want, got)
			}
		}
	}
}

// TestGovernorRowLimitTyped: MaxRows=1 must trip every engine with a typed
// ErrRowLimit carrying the limit detail (every case materializes more than
// one row somewhere — final answer or intermediate).
func TestGovernorRowLimitTyped(t *testing.T) {
	leakcheck.Check(t)
	for _, tc := range faultCases() {
		for _, par := range []int{1, 3} {
			_, err := prepareExec(tc, pyquery.Options{Parallelism: par, MaxRows: 1})
			if !errors.Is(err, pyquery.ErrRowLimit) {
				t.Fatalf("%s par=%d: got %v, want ErrRowLimit", tc.name, par, err)
			}
			var le *pyquery.LimitError
			if !errors.As(err, &le) || le.Limit != 1 || le.Engine == "" || le.Step == "" {
				t.Fatalf("%s par=%d: trip detail incomplete: %+v", tc.name, par, err)
			}
		}
	}
}

// TestGovernorMemoryLimitTyped: a budget far below any materialization
// (64 bytes) must trip every engine with a typed ErrMemoryLimit.
func TestGovernorMemoryLimitTyped(t *testing.T) {
	leakcheck.Check(t)
	for _, tc := range faultCases() {
		_, err := prepareExec(tc, pyquery.Options{Parallelism: 1, MemoryLimit: 64})
		if !errors.Is(err, pyquery.ErrMemoryLimit) {
			t.Fatalf("%s: got %v, want ErrMemoryLimit", tc.name, err)
		}
	}
}

// TestGovernorTimeoutTyped: Options.Timeout applies per execution and
// classifies as ErrTimeout — which still matches context.DeadlineExceeded
// for callers using the stdlib sentinel.
func TestGovernorTimeoutTyped(t *testing.T) {
	leakcheck.Check(t)
	for _, tc := range faultCases() {
		p, err := pyquery.Prepare(tc.q, tc.db, pyquery.Options{Timeout: time.Nanosecond})
		if err != nil {
			t.Fatalf("%s prepare: %v", tc.name, err)
		}
		_, err = p.Exec(context.Background())
		if !errors.Is(err, pyquery.ErrTimeout) {
			t.Fatalf("%s: got %v, want ErrTimeout", tc.name, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: ErrTimeout does not match context.DeadlineExceeded: %v", tc.name, err)
		}
	}
}

// TestDecompDegradeFallsBack: when bag materialization blows the row budget
// at prepare time, Degrade must fall back to the backtracker and still
// produce the exact answer; without Degrade the Prepare fails typed.
func TestDecompDegradeFallsBack(t *testing.T) {
	leakcheck.Check(t)
	// A sparse graph keeps the backtracker's emission count (one emit per
	// satisfying assignment, pre-dedup) below the decomposition's bag
	// materialization, so a budget exists that the fallback fits in but the
	// bags do not.
	rnd := rand.New(rand.NewSource(42))
	db := pyquery.NewDB()
	db.Set("E", randEdges(rnd, 60, 20))
	cyc := workload.CycleQuery(4)

	p, err := pyquery.Prepare(cyc, db, pyquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine() != pyquery.EngineDecomp {
		t.Fatalf("ungoverned prepare routed to %v, want EngineDecomp", p.Engine())
	}
	want, err := p.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("degradation test needs a non-empty answer")
	}

	// Calibrate the budget from the data: strictly between the number of
	// satisfying assignments (what the degraded backtracker charges) and
	// the cumulative bag rows (what the decomp compile charges).
	_, st, err := decomp.EvaluateStats(cyc, db, decomp.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cumBags := int64(0)
	for _, r := range st.BagRows {
		if r > 0 {
			cumBags += int64(r)
		}
	}
	walkQ := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(1), pyquery.V(2), pyquery.V(3)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("E", pyquery.V(2), pyquery.V(3)),
			pyquery.NewAtom("E", pyquery.V(3), pyquery.V(0)),
		},
	}
	walksRel, err := pyquery.EvaluateOpts(walkQ, db, pyquery.Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	walks := int64(walksRel.Len())
	if walks >= cumBags {
		t.Fatalf("dataset gives no degradation window: %d assignments vs %d bag rows", walks, cumBags)
	}
	budget := (walks + cumBags) / 2

	_, err = pyquery.Prepare(cyc, db, pyquery.Options{MaxRows: budget})
	if !errors.Is(err, pyquery.ErrRowLimit) {
		t.Fatalf("without Degrade: Prepare returned %v, want ErrRowLimit", err)
	}
	var le *pyquery.LimitError
	if !errors.As(err, &le) || le.Engine != "decomp" {
		t.Fatalf("without Degrade: trip not attributed to decomp compile: %+v", err)
	}

	dp, err := pyquery.Prepare(cyc, db, pyquery.Options{MaxRows: budget, Degrade: true})
	if err != nil {
		t.Fatalf("with Degrade: %v", err)
	}
	if dp.Engine() != pyquery.EngineGeneric {
		t.Fatalf("with Degrade: routed to %v, want EngineGeneric fallback", dp.Engine())
	}
	got, err := dp.Exec(context.Background())
	if err != nil {
		t.Fatalf("degraded exec: %v", err)
	}
	if !relation.EqualSet(got, want) {
		t.Fatalf("degraded answer differs\nwant %v\ngot  %v", want, got)
	}
}

// ivmCase is a maintainable standing query with a deterministic base state
// and a mutation batch whose delta the maintenance refresh processes.
type ivmCase struct {
	name   string
	q      *pyquery.CQ
	setup  func() *pyquery.DB
	mutate func(db *pyquery.DB)
}

// ivmCases covers the maintainable shapes: the acyclic path, the same path
// with a comparison filter, and a triangle with a repeated relation (three
// occurrences of E — the self-join case the telescoped delta rules handle).
func ivmCases() []ivmCase {
	cmp := pathQuery()
	cmp.Cmps = []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.V(3))}
	pathSetup := func() *pyquery.DB {
		db := pathDB(rand.New(rand.NewSource(9)))
		db.Insert("R1", []pyquery.Value{0, 1})
		return db
	}
	pathMutate := func(db *pyquery.DB) {
		db.Delete("R1", []pyquery.Value{0, 1})
		db.Insert("R0", []pyquery.Value{2, 3})
		db.Insert("R2", []pyquery.Value{4, 5})
	}
	triSetup := func() *pyquery.DB {
		db := pyquery.NewDB()
		db.Set("E", randEdges(rand.New(rand.NewSource(11)), 200, 20))
		db.Insert("E", []pyquery.Value{0, 1})
		return db
	}
	triMutate := func(db *pyquery.DB) {
		db.Delete("E", []pyquery.Value{0, 1})
		db.Insert("E", []pyquery.Value{3, 17})
	}
	return []ivmCase{
		{"path", pathQuery(), pathSetup, pathMutate},
		{"cmp", cmp, pathSetup, pathMutate},
		{"triangle", workload.TriangleQuery(), triSetup, triMutate},
	}
}

// ivmOp is one full standing-query maintenance cycle from scratch: a fresh
// database and Prepare, the initializing Refresh (rebuild), a mutation
// batch, the delta Refresh, and a final Exec for the answer.
func ivmOp(tc ivmCase, par int) (*pyquery.Relation, error) {
	db := tc.setup()
	p, err := pyquery.Prepare(tc.q, db, pyquery.Options{Parallelism: par})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if _, _, err := p.Refresh(ctx); err != nil {
		return nil, err
	}
	tc.mutate(db)
	if _, _, err := p.Refresh(ctx); err != nil {
		return nil, err
	}
	return p.Exec(ctx)
}

// TestFaultSweepIVMRefresh extends the sweep to incremental maintenance:
// a forced ErrRowLimit trip at each governor checkpoint a full maintenance
// cycle crosses — the rebuild's reduce charges, every per-atom delta pass,
// the batched delta-join charges, and the finish barrier. Each trip must
// surface typed with an engine label, and a clean cycle afterwards still
// produces the exact answer. The sweep must visit at least one "delta-pass"
// checkpoint under the "ivm" engine label — the contract ISSUE 8 names.
func TestFaultSweepIVMRefresh(t *testing.T) {
	leakcheck.Check(t)
	defer faults.Uninstall()
	stepsSeen := map[string]bool{}
	enginesSeen := map[string]bool{}
	for _, tc := range ivmCases() {
		for _, par := range []int{1, 3} {
			faults.Uninstall()
			want, err := ivmOp(tc, par)
			if err != nil {
				t.Fatalf("%s par=%d baseline: %v", tc.name, par, err)
			}

			counter := &faults.Injector{}
			counter.Install()
			if _, err := ivmOp(tc, par); err != nil {
				t.Fatalf("%s par=%d counting run: %v", tc.name, par, err)
			}
			faults.Uninstall()
			total := counter.Count()
			if total == 0 {
				t.Fatalf("%s par=%d maintenance cycle crossed no governor checkpoints", tc.name, par)
			}

			for _, k := range sweepPoints(total, 24) {
				inj := &faults.Injector{Kind: governor.ErrRowLimit, At: k}
				inj.Install()
				_, err := ivmOp(tc, par)
				faults.Uninstall()
				if inj.Count() < k {
					continue
				}
				if err == nil {
					t.Fatalf("%s par=%d: injected trip at checkpoint %d/%d was swallowed", tc.name, par, k, total)
				}
				if !errors.Is(err, pyquery.ErrRowLimit) {
					t.Fatalf("%s par=%d checkpoint %d/%d: got %v, want ErrRowLimit", tc.name, par, k, total, err)
				}
				var le *pyquery.LimitError
				if !errors.As(err, &le) {
					t.Fatalf("%s par=%d checkpoint %d/%d: not a *LimitError: %v", tc.name, par, k, total, err)
				}
				if le.Engine == "" {
					t.Fatalf("%s par=%d checkpoint %d/%d: LimitError without engine label: %+v", tc.name, par, k, total, le)
				}
				stepsSeen[le.Step] = true
				enginesSeen[le.Engine] = true
			}

			got, err := ivmOp(tc, par)
			if err != nil {
				t.Fatalf("%s par=%d clean run after sweep: %v", tc.name, par, err)
			}
			if !relation.EqualSet(got, want) {
				t.Fatalf("%s par=%d: answer differs after fault sweep\nwant %v\ngot  %v", tc.name, par, want, got)
			}
		}
	}
	if !enginesSeen["ivm"] {
		t.Fatalf("sweep never tripped a maintenance meter: engines %v", enginesSeen)
	}
	if !stepsSeen["delta-pass"] {
		t.Fatalf("sweep never tripped a delta-pass checkpoint: steps %v", stepsSeen)
	}
}

// TestFaultIVMRefreshRecovers: a trip mid-refresh must not poison the
// statement — the SAME Prepared's next clean Refresh reports deltas
// relative to the last successfully reported result, and folding them into
// the subscriber's view reconverges with a fresh execution.
func TestFaultIVMRefreshRecovers(t *testing.T) {
	leakcheck.Check(t)
	defer faults.Uninstall()
	tc := ivmCases()[0]
	db := tc.setup()
	p, err := pyquery.Prepare(tc.q, db, pyquery.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	view := pyquery.NewTable(len(tc.q.Head))
	fold := func() {
		t.Helper()
		added, removed, err := p.Refresh(ctx)
		if err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		next := pyquery.NewTable(len(tc.q.Head))
		for i := 0; i < view.Len(); i++ {
			if !removed.Contains(view.Row(i)) {
				next.Append(view.Row(i)...)
			}
		}
		for i := 0; i < added.Len(); i++ {
			next.Append(added.Row(i)...)
		}
		view = next
	}
	fold()
	tc.mutate(db)

	// Checkpoint 2 from here lands inside the delta refresh (1 is the
	// "refresh" entry check, 2 the first per-atom delta pass).
	inj := &faults.Injector{Kind: governor.ErrMemoryLimit, At: 2}
	inj.Install()
	_, _, err = p.Refresh(ctx)
	faults.Uninstall()
	if !errors.Is(err, pyquery.ErrMemoryLimit) {
		t.Fatalf("tripped refresh: got %v, want ErrMemoryLimit", err)
	}

	fold()
	want, err := pyquery.EvaluateOpts(tc.q, db, pyquery.Options{Parallelism: 1, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(view.Sort(), want.Sort()) {
		t.Fatalf("view diverged after recovered trip\nwant %v\ngot  %v", want, view)
	}
}

// TestPlanStateValidAfterTrip: a governed statement that trips must not
// poison later statements for the same query — a fresh ungoverned Prepare
// against the same database still answers correctly, and re-executing the
// tripped statement trips again with the same kind (per-execution meters).
func TestPlanStateValidAfterTrip(t *testing.T) {
	leakcheck.Check(t)
	rnd := rand.New(rand.NewSource(42))
	db := pathDB(rnd)
	q := pathQuery()

	base, err := pyquery.Prepare(q, db, pyquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	tripped, err := pyquery.Prepare(q, db, pyquery.Options{MaxRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		if _, err := tripped.Exec(context.Background()); !errors.Is(err, pyquery.ErrRowLimit) {
			t.Fatalf("rep %d: got %v, want ErrRowLimit", rep, err)
		}
	}

	fresh, err := pyquery.Prepare(q, db, pyquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualSet(got, want) {
		t.Fatalf("answer differs after a tripped statement\nwant %v\ngot  %v", want, got)
	}
}
