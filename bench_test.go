// Benchmarks, one per experiment of EXPERIMENTS.md (E1–E13, A1–A6) plus
// engine micro-benchmarks. cmd/benchrunner produces the full sweep tables;
// these targets pin each experiment's workload into `go test -bench`.
package pyquery_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pyquery"
	"pyquery/internal/core"
	"pyquery/internal/datalog"
	"pyquery/internal/eval"
	"pyquery/internal/governor"
	"pyquery/internal/graph"
	"pyquery/internal/order"
	"pyquery/internal/parser"
	"pyquery/internal/query"
	"pyquery/internal/reductions"
	"pyquery/internal/relation"
	"pyquery/internal/server"
	"pyquery/internal/stats"
	"pyquery/internal/workload"
	"pyquery/internal/yannakakis"
)

// Serial pins: the legacy experiment benchmarks measure the serial engines
// so captures stay comparable with BENCH_1.json and across hosts with
// different core counts; the *Par benchmarks below own the scaling sweeps.
var (
	serialEval = eval.Options{Parallelism: 1}
	serialCore = core.Options{Parallelism: 1}
	serialYan  = yannakakis.Options{Parallelism: 1}
)

// turan builds the Turán graph T(n,r) (no (r+1)-clique).
func turan(n, r int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u%r != v%r {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// --- E1: generic evaluation of the k-clique query (parameter in exponent) -

func BenchmarkE1_CliqueQuery(b *testing.B) {
	for _, tc := range []struct{ k, n int }{{3, 45}, {4, 24}, {5, 14}} {
		q, db := reductions.CliqueToCQ(turan(tc.n, tc.k-1), tc.k)
		b.Run(fmt.Sprintf("k=%d/n=%d", tc.k, tc.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ok, err := eval.ConjunctiveBoolOpts(q, db, serialEval)
				if err != nil || ok {
					b.Fatal("negative instance expected")
				}
			}
		})
	}
}

// --- E1 upper bound: the CQ → weighted 2-CNF pipeline ---------------------

func BenchmarkE1_CQTo2CNF(b *testing.B) {
	q, db := reductions.CliqueToCQ(graph.Random(16, 0.5, 3), 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		red, err := reductions.CQToWeighted2CNF(q, db)
		if err != nil {
			b.Fatal(err)
		}
		red.Formula.WeightedSatisfiable(red.K)
	}
}

// --- E2: the four parameterizations on one decision -----------------------

func BenchmarkE2_Parameterizations(b *testing.B) {
	// The identity reduction means all four parameterizations share the
	// same instance; this pins the shared decision cost.
	q, db := reductions.CliqueToCQ(turan(30, 2), 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, err := eval.ConjunctiveBoolOpts(q, db, serialEval); err != nil || ok {
			b.Fatal("negative instance expected")
		}
	}
}

// --- E3: the Theorem 2 engine ----------------------------------------------

func BenchmarkE3_OrgChart(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		db := workload.OrgChart(n, 50, 3, 11)
		q := workload.MultiProjectQuery()
		b.Run(fmt.Sprintf("core/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.EvaluateOpts(q, db, serialCore); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("generic/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eval.ConjunctiveOpts(q, db, serialEval); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE3_SimplePathByK(b *testing.B) {
	db := workload.LayeredPathDB(10, 40, 3, 13)
	for k := 2; k <= 5; k++ {
		q := workload.SimplePathQuery(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.EvaluateBoolOpts(q, db, serialCore); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE3_Registrar(b *testing.B) {
	db := workload.Registrar(4000, 80, 8, 3, 12)
	q := workload.OutsideDeptQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateOpts(q, db, serialCore); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: Theorem 3 comparison queries --------------------------------------

func BenchmarkE4_Comparisons(b *testing.B) {
	for _, tc := range []struct{ k, n int }{{2, 12}, {3, 8}} {
		q, db := reductions.CliqueToComparisons(turan(tc.n, tc.k-1), tc.k)
		b.Run(fmt.Sprintf("k=%d/n=%d", tc.k, tc.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ok, err := order.EvaluateBoolOpts(q, db, serialEval)
				if err != nil || ok {
					b.Fatal("negative instance expected")
				}
			}
		})
	}
}

// --- E5: Section 5 example queries -----------------------------------------

func BenchmarkE5_Examples(b *testing.B) {
	org := workload.OrgChart(2000, 40, 3, 21)
	qOrg := workload.MultiProjectQuery()
	reg := workload.Registrar(2000, 60, 8, 3, 22)
	qReg := workload.OutsideDeptQuery()
	b.Run("orgchart/core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EvaluateOpts(qOrg, org, serialCore); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("orgchart/generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.ConjunctiveOpts(qOrg, org, serialEval); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("registrar/core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EvaluateOpts(qReg, reg, serialCore); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("registrar/generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.ConjunctiveOpts(qReg, reg, serialEval); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E6: Hamiltonian path as a query ---------------------------------------

func BenchmarkE6_HamPath(b *testing.B) {
	for _, n := range []int{5, 6, 7} {
		g := graph.Random(n, 0.5, int64(100+n))
		q, db := reductions.HamPathToIneqCQ(g)
		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.EvaluateBoolOpts(q, db, serialCore); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("heldkarp/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.HamiltonianPath()
			}
		})
	}
}

// --- E7: Vardi's n^k Datalog family -----------------------------------------

func BenchmarkE7_Vardi(b *testing.B) {
	for _, tc := range []struct{ k, n int }{{1, 40}, {2, 16}, {3, 8}} {
		p := datalog.VardiFamily(tc.k)
		db := workload.CompleteDigraphDB(tc.n)
		b.Run(fmt.Sprintf("k=%d/n=%d", tc.k, tc.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := datalog.EvalGoal(p, db, datalog.Options{Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: cyclic low-width queries via the decomposition engine -------------

func BenchmarkE8_CyclicLowWidth(b *testing.B) {
	for _, tc := range []struct {
		name string
		spec workload.CyclicLowWidthSpec
	}{
		{"cycle4", workload.CyclicLowWidthSpec{CycleLen: 4, Nodes: 150, Degree: 15, Seed: 81}},
		{"cycle6", workload.CyclicLowWidthSpec{CycleLen: 6, Nodes: 60, Degree: 6, Seed: 82}},
	} {
		q, db := workload.CyclicLowWidth(tc.spec)
		b.Run(tc.name+"/decomp", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/nodecomp", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1, NoDecomp: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: prepared statements vs one-shot planning --------------------------

func BenchmarkE9_Prepared(b *testing.B) {
	db := workload.GraphDB(400, 4800, 90)
	lookup := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(1)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.C(7), pyquery.V(0)),
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
		},
	}
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pyquery.EvaluateOpts(lookup, db, pyquery.Options{Parallelism: 1, NoCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		p, err := pyquery.Prepare(lookup, db, pyquery.Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Exec(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared/param", func(b *testing.B) {
		tmpl := &pyquery.CQ{
			Head: []pyquery.Term{pyquery.V(1)},
			Atoms: []pyquery.Atom{
				pyquery.NewAtom("E", pyquery.P("src"), pyquery.V(0)),
				pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			},
		}
		p, err := pyquery.Prepare(tmpl, db, pyquery.Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Exec(ctx, pyquery.Bind("src", pyquery.Value(i%400))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E10: worst-case-optimal join on dense cyclic workloads ----------------

func BenchmarkE10_WCOJ(b *testing.B) {
	for _, tc := range []struct {
		name string
		q    *pyquery.CQ
		db   *pyquery.DB
	}{
		{"triangle-hub", workload.TriangleQuery(), workload.HubGraphDB(400, 6)},
		{"k4-hub", workload.CliqueQuery(4), workload.HubGraphDB(400, 6)},
	} {
		r, err := pyquery.PlanDB(tc.q, tc.db)
		if err != nil {
			b.Fatal(err)
		}
		if r.Engine != pyquery.EngineWCOJ {
			b.Fatalf("%s routed to %v, want wcoj", tc.name, r.Engine)
		}
		b.Run(tc.name+"/wcoj", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pyquery.EvaluateOpts(tc.q, tc.db, pyquery.Options{Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/nowcoj", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pyquery.EvaluateOpts(tc.q, tc.db, pyquery.Options{Parallelism: 1, NoWCOJ: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E11: incremental view maintenance, 1-row update -----------------------

// BenchmarkE11_Refresh prices one 1-row update (alternating insert/delete of
// the same edge, so the database size is pinned) plus bringing a standing
// query's answer current: delta Refresh vs. full re-execution of the same
// prepared statement. cmd/benchrunner -exp E11 produces the full table.
func BenchmarkE11_Refresh(b *testing.B) {
	q := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(2)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
		},
	}
	extra := []pyquery.Value{9001, 9002}
	ctx := context.Background()
	for _, mode := range []string{"refresh", "reexec"} {
		b.Run(mode, func(b *testing.B) {
			db := workload.GraphDB(400, 400*12, 93)
			p, err := pyquery.Prepare(q, db, pyquery.Options{Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := p.Refresh(ctx); err != nil {
				b.Fatal(err)
			}
			flip := false
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if flip {
					db.Delete("E", extra)
				} else {
					db.Insert("E", extra)
				}
				flip = !flip
				if mode == "refresh" {
					if _, _, err := p.Refresh(ctx); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := p.Exec(ctx); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkE12_Columnar prices the columnar substrate's narrow-code
// representation on an interned workload: each sub-benchmark runs a hot
// kernel (stats scan, semijoin, natural join) under both arms of the
// relation.SetNarrowCodes ablation — narrow 4-byte codes vs wide 8-byte
// cells — and reports the resident input bytes per arm. The relations are
// rebuilt under each setting (the toggle only affects new columns).
// cmd/benchrunner -exp E12 produces the full A/B table.
func BenchmarkE12_Columnar(b *testing.B) {
	const n = 100000
	build := func() (lhs, rhs *relation.Relation) {
		lhs = relation.New(relation.Schema{0, 1})
		rhs = relation.New(relation.Schema{1, 2})
		for i := 0; i < n; i++ {
			lhs.Append(relation.Value(i%(n/40)), relation.Value(i%(n/20)))
			rhs.Append(relation.Value(i%(n/80)), relation.Value(i%250))
		}
		return lhs, rhs
	}
	for _, arm := range []struct {
		name   string
		narrow bool
	}{{"narrow", true}, {"wide", false}} {
		b.Run(arm.name, func(b *testing.B) {
			prev := relation.SetNarrowCodes(arm.narrow)
			defer relation.SetNarrowCodes(prev)
			lhs, rhs := build()
			// Reported per sub-benchmark: a parent with sub-benchmarks
			// emits no result line of its own.
			inputBytes := float64(lhs.Bytes() + rhs.Bytes())
			b.Run("scan", func(b *testing.B) {
				b.ReportAllocs()
				b.ReportMetric(inputBytes, "input-bytes")
				for i := 0; i < b.N; i++ {
					stats.Of(lhs)
				}
			})
			b.Run("semijoin", func(b *testing.B) {
				b.ReportAllocs()
				b.ReportMetric(inputBytes, "input-bytes")
				for i := 0; i < b.N; i++ {
					relation.Semijoin(lhs, rhs)
				}
			})
			b.Run("join", func(b *testing.B) {
				b.ReportAllocs()
				b.ReportMetric(inputBytes, "input-bytes")
				for i := 0; i < b.N; i++ {
					relation.NaturalJoin(lhs, rhs)
				}
			})
		})
	}
}

// --- E13: service layer, registry exec and batching ------------------------

// BenchmarkE13_Server prices one registry execution through the service
// layer — admission, fingerprint lookup, frozen-plan exec — against the
// same prepared statement called directly, and the batched path under a
// small hot-key fan-in. cmd/benchrunner -exp E13 produces the sustained
// HTTP load and full batching A/B.
func BenchmarkE13_Server(b *testing.B) {
	db := workload.GraphDB(150, 150*10, 131)
	src := "Q(y) :- E($src, x), E(x, y)."
	params := map[string]pyquery.Value{"src": 7}
	ctx := context.Background()
	b.Run("registry", func(b *testing.B) {
		s := server.New(db, server.Config{Parallelism: 1, NoBatch: true})
		if _, err := s.Register("adj", src); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Exec(ctx, "adj", params, server.ExecOpts{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		q, err := parser.New().ParseCQ(src)
		if err != nil {
			b.Fatal(err)
		}
		p, err := pyquery.Prepare(q, db, pyquery.Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Exec(ctx, pyquery.Bind("src", 7)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched-fanin", func(b *testing.B) {
		s := server.New(db, server.Config{Parallelism: 1, BatchWindow: 50 * time.Microsecond})
		if _, err := s.Register("adj", src); err != nil {
			b.Fatal(err)
		}
		const fanin = 4
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for c := 0; c < fanin; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, _, err := s.Exec(ctx, "adj", params, server.ExecOpts{}); err != nil {
						panic(err)
					}
				}()
			}
			wg.Wait()
		}
	})
}

// --- Ablations ---------------------------------------------------------------

func BenchmarkA1_Pushdown(b *testing.B) {
	db := workload.LayeredPathDB(8, 25, 3, 31)
	q := workload.SimplePathQuery(4)
	b.Run("pushdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EvaluateBoolOpts(q, db, serialCore); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("allhashed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EvaluateBoolOpts(q, db, core.Options{Parallelism: 1, NoPushdown: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkA2_FullReducer(b *testing.B) {
	// Multiplier branch merges before selective branch (see cmd/benchrunner).
	m, fanOut := 150, 25
	db := a2DB(m, fanOut)
	q := a2Query()
	b.Run("reducer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := yannakakis.EvaluateOpts(q, db, serialYan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("noreducer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := yannakakis.EvaluateOpts(q, db, yannakakis.Options{Parallelism: 1, NoFullReducer: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkA3_JoinOrder(b *testing.B) {
	db := workload.GraphDB(2000, 8000, 33)
	l := workload.GraphDB(2, 1, 1).MustRel("E") // tiny relation
	db.Set("L", relation.Project(l, relation.Schema{0}))
	q := a3Query()
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.ConjunctiveBoolOpts(q, db, eval.Options{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("written", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.ConjunctiveBoolOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkA5_PlannerOrder(b *testing.B) {
	db, q := workload.PlannerTrap(200, 30)
	b.Run("stats", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eval.ConjunctiveOpts(q, db, serialEval); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, LegacyGreedy: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkA4_FamilySize(b *testing.B) {
	db := workload.LayeredPathDB(8, 25, 3, 34)
	q := workload.SimplePathQuery(3)
	for _, c := range []float64{1, 4} {
		b.Run(fmt.Sprintf("mc/c=%v", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.EvaluateBoolOpts(q, db,
					core.Options{Parallelism: 1, Strategy: core.MonteCarlo, C: c, Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The relevant domain here is too large for the exact family's subset
	// enumeration; the whp-perfect family is the deterministic option.
	b.Run("whp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EvaluateBoolOpts(q, db, core.Options{Parallelism: 1, Strategy: core.WHP, Seed: 7}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- micro: relational substrate ------------------------------------------

func BenchmarkMicro_NaturalJoin(b *testing.B) {
	lhs := relation.New(relation.Schema{0, 1})
	rhs := relation.New(relation.Schema{1, 2})
	for i := 0; i < 20000; i++ {
		lhs.Append(relation.Value(i%500), relation.Value(i%1000))
		rhs.Append(relation.Value(i%1000), relation.Value(i%250))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relation.NaturalJoin(lhs, rhs)
	}
}

func BenchmarkMicro_Semijoin(b *testing.B) {
	lhs := relation.New(relation.Schema{0, 1})
	rhs := relation.New(relation.Schema{1, 2})
	for i := 0; i < 20000; i++ {
		lhs.Append(relation.Value(i%500), relation.Value(i%1000))
		rhs.Append(relation.Value(i%300), relation.Value(i%250))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relation.Semijoin(lhs, rhs)
	}
}

func BenchmarkMicro_YannakakisPath(b *testing.B) {
	db := workload.LayeredPathDB(8, 60, 3, 35)
	q := workload.PathQuery(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := yannakakis.EvaluateBoolOpts(q, db, serialYan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_GovernorCheckpoint prices the PR 6 resource-governor
// checkpoints every engine loop now passes through: the nil-meter fast
// path (what ungoverned executions pay — must stay a pointer test), a
// live checkpoint poll, and a live accounting charge.
func BenchmarkMicro_GovernorCheckpoint(b *testing.B) {
	b.Run("nil-meter", func(b *testing.B) {
		var m *governor.Meter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := m.Check("emit"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("check", func(b *testing.B) {
		m := governor.New(nil, "generic", 1<<40, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := m.Check("emit"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("charge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := governor.New(nil, "generic", 1<<40, 1<<50)
			if err := m.Charge(64, 64*16, "emit"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- parallel scaling: the partitioned kernel and per-engine fan-outs ------

// parLevels is the Parallelism sweep of every *Par benchmark; p=1 is the
// serial path (the baseline the ≥2x scaling targets compare against on
// multi-core hosts).
var parLevels = []int{1, 2, 4}

func BenchmarkMicro_NaturalJoinPar(b *testing.B) {
	lhs := relation.New(relation.Schema{0, 1})
	rhs := relation.New(relation.Schema{1, 2})
	for i := 0; i < 20000; i++ {
		lhs.Append(relation.Value(i%500), relation.Value(i%1000))
		rhs.Append(relation.Value(i%1000), relation.Value(i%250))
	}
	for _, p := range parLevels {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				relation.NaturalJoinPar(lhs, rhs, p)
			}
		})
	}
}

func BenchmarkMicro_SemijoinPar(b *testing.B) {
	lhs := relation.New(relation.Schema{0, 1})
	rhs := relation.New(relation.Schema{1, 2})
	for i := 0; i < 20000; i++ {
		lhs.Append(relation.Value(i%500), relation.Value(i%1000))
		rhs.Append(relation.Value(i%300), relation.Value(i%250))
	}
	for _, p := range parLevels {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				relation.SemijoinPar(lhs, rhs, p)
			}
		})
	}
}

func BenchmarkE1_CliqueQueryPar(b *testing.B) {
	q, db := reductions.CliqueToCQ(turan(24, 3), 4)
	for _, p := range parLevels {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ok, err := eval.ConjunctiveBoolOpts(q, db, eval.Options{Parallelism: p})
				if err != nil || ok {
					b.Fatal("negative instance expected")
				}
			}
		})
	}
}

func BenchmarkE3_OrgChartPar(b *testing.B) {
	db := workload.OrgChart(2000, 50, 3, 11)
	q := workload.MultiProjectQuery()
	for _, p := range parLevels {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.EvaluateOpts(q, db, core.Options{Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE7_VardiPar(b *testing.B) {
	prog := datalog.VardiFamily(2)
	db := workload.CompleteDigraphDB(16)
	for _, p := range parLevels {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := datalog.EvalGoal(prog, db, datalog.Options{Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMicro_YannakakisPar(b *testing.B) {
	db := workload.LayeredPathDB(8, 60, 3, 35)
	q := workload.PathQuery(5)
	for _, p := range parLevels {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := yannakakis.EvaluateOpts(q, db, yannakakis.Options{Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- shared fixtures ---------------------------------------------------------

// a2DB builds the A2 instance: an m×m core R, a multiplying branch M
// (fanOut x0 values per x1), and a selective branch S (only x2 = 0
// survives).
func a2DB(m, fanOut int) *query.DB {
	db := query.NewDB()
	r := query.NewTable(2)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			r.Append(relation.Value(i), relation.Value(j))
		}
	}
	mul := query.NewTable(2)
	for i := 0; i < m; i++ {
		for a := 0; a < fanOut; a++ {
			mul.Append(relation.Value(i), relation.Value(10_000+a))
		}
	}
	sel := query.NewTable(2)
	sel.Append(relation.Value(0), relation.Value(99_999))
	db.Set("R", r)
	db.Set("M", mul)
	db.Set("S", sel)
	return db
}

func a2Query() *query.CQ {
	return &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("R", query.V(1), query.V(2)),
			query.NewAtom("M", query.V(1), query.V(0)),
			query.NewAtom("S", query.V(2), query.V(3)),
		},
	}
}

// a3Query writes the selective atom last, so the written order is
// adversarial and the greedy reorder pays off.
func a3Query() *query.CQ {
	return &query.CQ{
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(2)),
			query.NewAtom("L", query.V(0)),
		},
	}
}
