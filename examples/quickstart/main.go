// Quickstart: build a database, parse a query with inequalities, let the
// planner pick the Theorem 2 engine, and read the answer.
package main

import (
	"context"
	"fmt"
	"log"

	"pyquery"
)

func main() {
	// A tiny project database: EP(employee, project).
	db := pyquery.NewDB()
	db.Set("EP", pyquery.Table(2,
		[]pyquery.Value{1, 100}, // alice → kernel
		[]pyquery.Value{1, 101}, // alice → compiler
		[]pyquery.Value{2, 100}, // bob   → kernel
		[]pyquery.Value{3, 102}, // carol → docs
	))

	// "Employees that work on more than one project" — the paper's own
	// Section 5 example of an acyclic conjunctive query with ≠.
	p := pyquery.NewParser()
	q, err := p.ParseCQ(`G(e) :- EP(e, p1), EP(e, p2), p1 != p2.`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(pyquery.Explain(q))

	res, err := pyquery.Evaluate(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanswers (%d):\n", res.Len())
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("  employee %d\n", res.Row(i)[0])
	}

	// The decision problem t ∈ Q(d).
	for _, emp := range []pyquery.Value{1, 2} {
		ok, err := pyquery.Decide(q, db, []pyquery.Value{emp})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("employee %d on >1 project: %v\n", emp, ok)
	}

	// Serving workloads prepare a parameterized template once and bind it
	// per request: planning (classification, ordering, reduction, indexes)
	// runs at Prepare, each Exec is index probes against the frozen plan.
	colleagues := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(1)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("EP", pyquery.P("emp"), pyquery.V(0)),
			pyquery.NewAtom("EP", pyquery.V(1), pyquery.V(0)),
		},
	}
	prep, err := pyquery.Prepare(colleagues, db, pyquery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, emp := range []pyquery.Value{1, 3} {
		res, err := prep.Exec(context.Background(), pyquery.Bind("emp", emp))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("employee %d shares a project with %d employee(s)\n", emp, res.Len())
	}
}
