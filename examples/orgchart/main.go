// Orgchart evaluates the paper's "more than one project" query on a
// generated org chart at increasing scale, comparing the Theorem 2
// color-coding engine against the generic n^O(q) backtracking baseline —
// experiment E5 in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"pyquery"
	"pyquery/internal/bench"
	"pyquery/internal/core"
	"pyquery/internal/eval"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

func main() {
	q := workload.MultiProjectQuery()
	fmt.Println(pyquery.Explain(q))
	fmt.Println()

	var rows [][]string
	for _, n := range []int{500, 1000, 2000, 4000} {
		db := workload.OrgChart(n, 40, 3, 42)

		var coreRes *relation.Relation
		tCore := bench.Seconds(10*time.Millisecond, func() {
			var err error
			coreRes, err = core.Evaluate(q, db)
			if err != nil {
				log.Fatal(err)
			}
		})
		var genRes *relation.Relation
		tGen := bench.Seconds(10*time.Millisecond, func() {
			var err error
			genRes, err = eval.Conjunctive(q, db)
			if err != nil {
				log.Fatal(err)
			}
		})
		if !relation.EqualSet(coreRes, genRes) {
			log.Fatal("engines disagree")
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", db.Size()),
			fmt.Sprintf("%d", coreRes.Len()),
			bench.FmtSeconds(tCore), bench.FmtSeconds(tGen),
		})
	}
	fmt.Print(bench.Table(
		[]string{"employees", "|db|", "|answer|", "color-coding", "generic"}, rows))
}
