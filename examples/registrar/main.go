// Registrar runs the paper's second Section 5 example — students taking
// courses outside their department — and shows what the Theorem 2 engine
// does under the hood: the I₁/I₂ partition, the hash range k, and the
// family it chose.
package main

import (
	"fmt"
	"log"

	"pyquery"
	"pyquery/internal/core"
	"pyquery/internal/workload"
)

func main() {
	db := workload.Registrar(2000, 60, 8, 3, 7)
	q := workload.OutsideDeptQuery()

	fmt.Println("query:", q)
	fmt.Println()
	fmt.Println(pyquery.Explain(q))

	res, stats, err := pyquery.EvaluateStats(q, db, pyquery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d students take courses outside their department (of %d)\n",
		res.Len(), 2000)
	fmt.Printf("engine stats: k=%d, |I1|=%d, |I2|=%d, hash family size=%d, nonempty runs=%d\n",
		stats.K, stats.I1, stats.I2, stats.FamilySize, stats.Successes)

	// Force the Monte-Carlo family and verify agreement.
	mc, mcStats, err := core.EvaluateStats(q, db, core.Options{
		Strategy: core.MonteCarlo, C: 3, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monte-carlo (c=3): %d answers with %d trials — %s\n",
		mc.Len(), mcStats.FamilySize,
		map[bool]string{true: "matches the exact family", false: "MISSED tuples (rerun with higher c)"}[mc.Len() == res.Len()])
}
