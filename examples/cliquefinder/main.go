// Cliquefinder demonstrates the Theorem 1 and Theorem 3 reductions as an
// application: finding cliques by asking database queries. It plants a
// clique in a random graph, encodes k-clique as (a) a conjunctive query and
// (b) an acyclic query with comparisons, evaluates both, and decodes a
// witness from the weighted 2-CNF side of the reduction.
package main

import (
	"fmt"
	"log"

	"pyquery/internal/eval"
	"pyquery/internal/graph"
	"pyquery/internal/order"
	"pyquery/internal/reductions"
)

func main() {
	const n, k = 30, 4
	g, planted := graph.PlantedClique(n, 0.25, k, 2024)
	fmt.Printf("graph: %v with a planted %d-clique at %v\n\n", g, k, planted)

	// (a) Theorem 1: the clique query P ← ⋀ G(xi,xj).
	q, db := reductions.CliqueToCQ(g, k)
	fmt.Printf("conjunctive query (%d atoms, %d vars): %v\n", len(q.Atoms), q.NumVars(), q)
	ok, err := eval.ConjunctiveBool(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query says %d-clique exists: %v (oracle: %v)\n\n", k, ok, g.HasClique(k))

	// Upper-bound direction: the same question as weighted 2-CNF, with a
	// decoded witness.
	red, err := reductions.CQToWeighted2CNF(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("as weighted 2-CNF: %d vars, %d clauses, weight %d\n",
		red.Formula.NumVars, len(red.Formula.Clauses), red.K)
	if assign, sat := red.Formula.WeightedSatisfiable(red.K); sat {
		inst := red.Decode(assign)
		clique := make([]int, 0, k)
		seen := map[int]bool{}
		for _, v := range inst {
			if !seen[int(v)] {
				seen[int(v)] = true
				clique = append(clique, int(v))
			}
		}
		fmt.Printf("decoded clique: %v (valid: %v)\n\n", clique, g.IsClique(clique))
	}

	// (b) Theorem 3: k-clique as an acyclic query with < comparisons.
	qc, dbc := reductions.CliqueToComparisons(g, k)
	fmt.Printf("comparison query: %d atoms, %d comparisons, acyclic=%v, |db|=%d\n",
		len(qc.Atoms), len(qc.Cmps), order.IsAcyclicWithComparisons(qc), dbc.Size())
	ok, err = order.EvaluateBool(qc, dbc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("comparison query says %d-clique exists: %v\n", k, ok)
	fmt.Println("\n(the point of Theorem 3: even acyclic queries become W[1]-hard")
	fmt.Println("once order comparisons are allowed — contrast with ≠, Theorem 2)")
}
