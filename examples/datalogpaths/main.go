// Datalogpaths exercises the Datalog substrate: parses a reachability
// program from text, evaluates it semi-naively, cross-checks against the
// naive fixpoint, and then demonstrates Vardi's point (Section 4 of the
// paper) — an arity-k IDB materializes n^k tuples, so the parameter is
// provably in the exponent for Datalog data complexity.
package main

import (
	"fmt"
	"log"

	"pyquery/internal/datalog"
	"pyquery/internal/parser"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

func main() {
	p := parser.New()
	prog, db, err := p.ParseProgram(`
		% ring with a chord
		E(0,1). E(1,2). E(2,3). E(3,0). E(1,3).
		Reach(x,y) :- E(x,y).
		Reach(x,z) :- Reach(x,y), E(y,z).
	`)
	if err != nil {
		log.Fatal(err)
	}
	goal, stats, err := datalog.EvalGoal(prog, db, datalog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reachability: %d pairs in %d semi-naive rounds\n", goal.Len(), stats.Rounds)

	naive, _, err := datalog.EvalGoal(prog, db, datalog.Options{Naive: true})
	if err != nil {
		log.Fatal(err)
	}
	if !relation.EqualSet(goal, naive) {
		log.Fatal("naive and semi-naive disagree")
	}
	fmt.Println("naive fixpoint agrees")

	// Vardi's n^k family.
	fmt.Println("\nVardi family T (arity-k IDB) on the complete digraph with loops:")
	for k := 1; k <= 3; k++ {
		prog := datalog.VardiFamily(k)
		for _, n := range []int{4, 8} {
			db := workload.CompleteDigraphDB(n)
			goal, stats, err := datalog.EvalGoal(prog, db, datalog.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  k=%d n=%d: |T| = %d = n^k (rounds %d, derived %d)\n",
				k, n, goal.Len(), stats.Rounds, stats.Derived)
		}
	}
}
