package pyquery_test

import (
	"context"
	"fmt"

	"pyquery"
)

// Prepare compiles a query template once — classification, decomposition
// search, join ordering, atom reduction, index construction — and Exec
// runs it per request. Named parameters (pyquery.P) are bound at execution
// time, so one template serves many lookups; a context provides real
// cancellation and deadlines.
func ExamplePrepare() {
	db := pyquery.NewDB()
	db.Set("Follows", pyquery.Table(2, // follower → followee
		[]pyquery.Value{1, 2},
		[]pyquery.Value{2, 3},
		[]pyquery.Value{1, 3},
		[]pyquery.Value{3, 4},
	))

	// Who does $user reach in two hops? One prepared template, bound per
	// request.
	twoHop := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(1)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("Follows", pyquery.P("user"), pyquery.V(0)),
			pyquery.NewAtom("Follows", pyquery.V(0), pyquery.V(1)),
		},
	}
	p, err := pyquery.Prepare(twoHop, db, pyquery.Options{Parallelism: 1})
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	for _, user := range []pyquery.Value{1, 2} {
		res, err := p.Exec(ctx, pyquery.Bind("user", user))
		if err != nil {
			panic(err)
		}
		fmt.Printf("user %d reaches %d node(s) in two hops\n", user, res.Len())
	}
	// Membership tests share the same frozen plan.
	ok, err := p.Decide(ctx, []pyquery.Value{3}, pyquery.Bind("user", 1))
	if err != nil {
		panic(err)
	}
	fmt.Println("1 -> 3 in two hops:", ok)
	// Output:
	// user 1 reaches 2 node(s) in two hops
	// user 2 reaches 1 node(s) in two hops
	// 1 -> 3 in two hops: true
}

// Evaluate dispatches each query to the engine its class calls for and
// returns the answer relation over the positional head schema.
func ExampleEvaluate() {
	db := pyquery.NewDB()
	db.Set("EP", pyquery.Table(2, // employee → project
		[]pyquery.Value{1, 100},
		[]pyquery.Value{1, 101},
		[]pyquery.Value{2, 100},
	))

	// Employees on at least two distinct projects — an acyclic conjunctive
	// query with one ≠ atom, evaluated by the Theorem 2 color-coding engine.
	q, err := pyquery.NewParser().ParseCQ(`G(e) :- EP(e, p1), EP(e, p2), p1 != p2.`)
	if err != nil {
		panic(err)
	}
	res, err := pyquery.Evaluate(q, db)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Sort())
	// Output:
	// (a0) #1
	//   [1]
}

// Plan reports which of the five engines a query is routed to, without
// evaluating anything.
func ExamplePlan() {
	atom := func(args ...pyquery.Term) pyquery.Atom { return pyquery.NewAtom("E", args...) }

	pure := &pyquery.CQ{Atoms: []pyquery.Atom{atom(pyquery.V(0), pyquery.V(1))}}
	fmt.Println(pyquery.Plan(pure))

	ineq := &pyquery.CQ{
		Atoms: []pyquery.Atom{atom(pyquery.V(0), pyquery.V(1)), atom(pyquery.V(0), pyquery.V(2))},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(1, 2)},
	}
	fmt.Println(pyquery.Plan(ineq))

	// Cyclic but width-2: a triangle decomposes into bags of ≤2 atoms, so
	// the decomposition engine applies.
	cyclic := &pyquery.CQ{Atoms: []pyquery.Atom{
		atom(pyquery.V(0), pyquery.V(1)),
		atom(pyquery.V(1), pyquery.V(2)),
		atom(pyquery.V(2), pyquery.V(0)),
	}}
	fmt.Println(pyquery.Plan(cyclic))

	// Cyclic with a ≠ atom: constraints stay with the generic backtracker.
	cyclicIneq := &pyquery.CQ{Atoms: cyclic.Atoms, Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 1)}}
	fmt.Println(pyquery.Plan(cyclicIneq))
	// Output:
	// yannakakis (acyclic, poly input+output)
	// color-coding (Theorem 2, f(k)·n log n)
	// hypertree decomposition (bag join + Yannakakis, width ≤ 3)
	// generic backtracking join (n^O(q))
}

// EvaluateOpts exposes the Parallelism option: 1 is the serial engine,
// 0 (the default) means GOMAXPROCS workers. The answer set is identical at
// every level — parallelism changes wall-clock time, never the answer.
func ExampleEvaluateOpts() {
	db := pyquery.NewDB()
	edges := pyquery.NewTable(2)
	for i := 0; i < 600; i++ {
		edges.Append(pyquery.Value(i), pyquery.Value((i+1)%600))
	}
	db.Set("E", edges)

	// Directed triangles — cyclic, so the generic backtracker runs and fans
	// its first plan step out over the worker pool.
	tri := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
		},
	}
	serial, _ := pyquery.EvaluateOpts(tri, db, pyquery.Options{Parallelism: 1})
	par, _ := pyquery.EvaluateOpts(tri, db, pyquery.Options{Parallelism: 4})
	fmt.Println(serial.Len(), par.Len())
	// Output:
	// 0 0
}

// Explain narrates the dispatch decision, including the Theorem 2
// parameter split for queries with inequalities.
func ExampleExplain() {
	q := &pyquery.CQ{
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(2)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(1, 2)},
	}
	fmt.Println(pyquery.Explain(q))
	// Output:
	// engine: color-coding (Theorem 2, f(k)·n log n)
	// query size q=9, variables v=3
	// I1 (hashed) inequalities: 1, I2 (pushed-down): 0, |V1|=k=2
}

// ExplainDB adds the database-dependent plan; for a cyclic low-width query
// it renders the hypertree decomposition the engine will execute — the
// same report qeval -explain prints.
func ExampleExplainDB() {
	db := pyquery.NewDB()
	edges := pyquery.NewTable(2)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				edges.Append(pyquery.Value(i), pyquery.Value(j))
			}
		}
	}
	db.Set("E", edges)
	// The 4-cycle join: cyclic, generalized hypertree width 2.
	cyc := &pyquery.CQ{Head: []pyquery.Term{pyquery.V(0), pyquery.V(2)}}
	for i := 0; i < 4; i++ {
		cyc.Atoms = append(cyc.Atoms,
			pyquery.NewAtom("E", pyquery.V(pyquery.Var(i)), pyquery.V(pyquery.Var((i+1)%4))))
	}
	s, err := pyquery.ExplainDB(cyc, db)
	if err != nil {
		panic(err)
	}
	fmt.Println(s)
	// Output:
	// engine: hypertree decomposition (bag join + Yannakakis, width ≤ 3)
	// query size q=14, variables v=4
	// plan (stats-driven join order):
	//   1. E(x0,x1) rows=56 binds=2 est=56
	//   2. E(x1,x2) rows=56 binds=1 est=392
	//   3. E(x2,x3) rows=56 binds=1 est=2744
	//   4. E(x3,x0) rows=56 binds=0 est=2401
	// estimated search cost: 5593 (Σ intermediate cardinalities)
	// decomposition (width 2, est cost 896):
	//   bag 1. {E(x0,x1), E(x1,x2)} vars=(x0,x1,x2) est=392
	//   bag 2. {E(x2,x3), E(x3,x0)} vars=(x0,x2,x3) est=392
	// bag-tree root: bag 1
	// estimated answer rows: 64
}
