package pyquery_test

import (
	"fmt"

	"pyquery"
)

// Evaluate dispatches each query to the engine its class calls for and
// returns the answer relation over the positional head schema.
func ExampleEvaluate() {
	db := pyquery.NewDB()
	db.Set("EP", pyquery.Table(2, // employee → project
		[]pyquery.Value{1, 100},
		[]pyquery.Value{1, 101},
		[]pyquery.Value{2, 100},
	))

	// Employees on at least two distinct projects — an acyclic conjunctive
	// query with one ≠ atom, evaluated by the Theorem 2 color-coding engine.
	q, err := pyquery.NewParser().ParseCQ(`G(e) :- EP(e, p1), EP(e, p2), p1 != p2.`)
	if err != nil {
		panic(err)
	}
	res, err := pyquery.Evaluate(q, db)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Sort())
	// Output:
	// (a0) #1
	//   [1]
}

// Plan reports which of the four engines a query is routed to, without
// evaluating anything.
func ExamplePlan() {
	atom := func(args ...pyquery.Term) pyquery.Atom { return pyquery.NewAtom("E", args...) }

	pure := &pyquery.CQ{Atoms: []pyquery.Atom{atom(pyquery.V(0), pyquery.V(1))}}
	fmt.Println(pyquery.Plan(pure))

	ineq := &pyquery.CQ{
		Atoms: []pyquery.Atom{atom(pyquery.V(0), pyquery.V(1)), atom(pyquery.V(0), pyquery.V(2))},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(1, 2)},
	}
	fmt.Println(pyquery.Plan(ineq))

	cyclic := &pyquery.CQ{Atoms: []pyquery.Atom{
		atom(pyquery.V(0), pyquery.V(1)),
		atom(pyquery.V(1), pyquery.V(2)),
		atom(pyquery.V(2), pyquery.V(0)),
	}}
	fmt.Println(pyquery.Plan(cyclic))
	// Output:
	// yannakakis (acyclic, poly input+output)
	// color-coding (Theorem 2, f(k)·n log n)
	// generic backtracking join (n^O(q))
}

// EvaluateOpts exposes the Parallelism option: 1 is the serial engine,
// 0 (the default) means GOMAXPROCS workers. The answer set is identical at
// every level — parallelism changes wall-clock time, never the answer.
func ExampleEvaluateOpts() {
	db := pyquery.NewDB()
	edges := pyquery.NewTable(2)
	for i := 0; i < 600; i++ {
		edges.Append(pyquery.Value(i), pyquery.Value((i+1)%600))
	}
	db.Set("E", edges)

	// Directed triangles — cyclic, so the generic backtracker runs and fans
	// its first plan step out over the worker pool.
	tri := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
		},
	}
	serial, _ := pyquery.EvaluateOpts(tri, db, pyquery.Options{Parallelism: 1})
	par, _ := pyquery.EvaluateOpts(tri, db, pyquery.Options{Parallelism: 4})
	fmt.Println(serial.Len(), par.Len())
	// Output:
	// 0 0
}

// Explain narrates the dispatch decision, including the Theorem 2
// parameter split for queries with inequalities.
func ExampleExplain() {
	q := &pyquery.CQ{
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(2)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(1, 2)},
	}
	fmt.Println(pyquery.Explain(q))
	// Output:
	// engine: color-coding (Theorem 2, f(k)·n log n)
	// query size q=9, variables v=3
	// I1 (hashed) inequalities: 1, I2 (pushed-down): 0, |V1|=k=2
}
