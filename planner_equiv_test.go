package pyquery_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pyquery"
	"pyquery/internal/decomp"
	"pyquery/internal/eval"
	"pyquery/internal/relation"
	"pyquery/internal/wcoj"
)

// Planner equivalence (the A3/A5 ablation contract): on randomized
// instances, the stats-driven join order, the legacy greedy heuristic, and
// NoReorder must all be answer-set-equal — both through the generic
// evaluator directly and through the facade's engine routing (which also
// exercises the weighted join trees of the acyclic engines against the
// generic baseline).

// randPlannerCQ builds a random conjunctive query over E0/E1 (binary) and
// U (unary): 2–4 atoms with random variables and occasional constants,
// sometimes an inequality or a comparison. Heads use the body variables.
func randPlannerCQ(rnd *rand.Rand) *pyquery.CQ {
	nAtoms := 2 + rnd.Intn(3)
	randTerm := func() pyquery.Term {
		if rnd.Intn(8) == 0 {
			return pyquery.C(pyquery.Value(rnd.Intn(6)))
		}
		return pyquery.V(pyquery.Var(rnd.Intn(5)))
	}
	q := &pyquery.CQ{}
	for i := 0; i < nAtoms; i++ {
		if rnd.Intn(4) == 0 {
			q.Atoms = append(q.Atoms, pyquery.NewAtom("U", randTerm()))
		} else {
			q.Atoms = append(q.Atoms, pyquery.NewAtom(fmt.Sprintf("E%d", rnd.Intn(2)), randTerm(), randTerm()))
		}
	}
	body := q.BodyVars()
	if len(body) == 0 {
		q.Atoms = append(q.Atoms, pyquery.NewAtom("U", pyquery.V(0)))
		body = q.BodyVars()
	}
	for i := 0; i < 1+rnd.Intn(2); i++ {
		q.Head = append(q.Head, pyquery.V(body[rnd.Intn(len(body))]))
	}
	if len(body) >= 2 && rnd.Intn(3) == 0 {
		q.Ineqs = append(q.Ineqs, pyquery.NeqVars(body[0], body[len(body)-1]))
	}
	if len(body) >= 2 && rnd.Intn(4) == 0 {
		q.Cmps = append(q.Cmps, pyquery.Lt(pyquery.V(body[0]), pyquery.V(body[len(body)-1])))
	}
	return q
}

func TestPlannerOrderingEquivalence(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := pyquery.NewDB()
		for i := 0; i < 2; i++ {
			db.Set(fmt.Sprintf("E%d", i), randEdges(rnd, 15+rnd.Intn(40), 6))
		}
		u := pyquery.NewTable(1)
		for i := 0; i < 1+rnd.Intn(5); i++ {
			u.Append(pyquery.Value(rnd.Intn(6)))
		}
		db.Set("U", u.Dedup())
		q := randPlannerCQ(rnd)
		tag := fmt.Sprintf("seed=%d q=%v", seed, q)

		want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true})
		if err != nil {
			t.Fatalf("%s noreorder: %v", tag, err)
		}
		stats, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s stats: %v", tag, err)
		}
		if !relation.EqualSet(stats, want) {
			t.Fatalf("%s: stats-driven order changed the answer\nwant %v\ngot %v", tag, want, stats)
		}
		legacy, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, LegacyGreedy: true})
		if err != nil {
			t.Fatalf("%s legacy: %v", tag, err)
		}
		if !relation.EqualSet(legacy, want) {
			t.Fatalf("%s: legacy greedy order changed the answer", tag)
		}
		// Facade routing: whichever engine Plan picks (weighted join trees
		// for the acyclic classes, bag trees for the decomposition class)
		// must agree with the generic baseline, at more than one
		// parallelism level.
		for _, par := range []int{1, 3} {
			auto, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s auto par=%d (%v): %v", tag, par, pyquery.Plan(q), err)
			}
			if !relation.EqualSet(auto, want) {
				t.Fatalf("%s: engine %v par=%d disagrees with generic baseline\nwant %v\ngot %v",
					tag, pyquery.Plan(q), par, want, auto)
			}
		}
	}
}

// randCyclicCQ builds a random cyclic low-width query over E0/E1: a 3–6
// cycle with mixed relation names, sometimes a chord, a constant argument,
// or a projection-heavy head. Always in the decomposition engine's
// structural class.
func randCyclicCQ(rnd *rand.Rand) *pyquery.CQ {
	n := 3 + rnd.Intn(4)
	q := &pyquery.CQ{}
	rel := func() string { return fmt.Sprintf("E%d", rnd.Intn(2)) }
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms,
			pyquery.NewAtom(rel(), pyquery.V(pyquery.Var(i)), pyquery.V(pyquery.Var((i+1)%n))))
	}
	if rnd.Intn(3) == 0 {
		a, b := rnd.Intn(n), rnd.Intn(n)
		if a != b {
			q.Atoms = append(q.Atoms, pyquery.NewAtom(rel(), pyquery.V(pyquery.Var(a)), pyquery.V(pyquery.Var(b))))
		}
	}
	if rnd.Intn(4) == 0 {
		i := rnd.Intn(len(q.Atoms))
		q.Atoms[i].Args[rnd.Intn(2)] = pyquery.C(pyquery.Value(rnd.Intn(6)))
	}
	for i := 0; i < 1+rnd.Intn(2); i++ {
		q.Head = append(q.Head, pyquery.V(pyquery.Var(rnd.Intn(n))))
	}
	return q
}

// TestPlannerCyclicDecompEquivalence pins the decomposition contract on
// randomized cyclic instances: the decomposition engine (driven directly,
// so the cost gate cannot route around it), the cost-ordered backtracker,
// the NoReorder backtracker, and the facade (gate included, plus the
// NoDecomp ablation) all return the same answer set.
func TestPlannerCyclicDecompEquivalence(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := pyquery.NewDB()
		for i := 0; i < 2; i++ {
			db.Set(fmt.Sprintf("E%d", i), randEdges(rnd, 20+rnd.Intn(50), 6+rnd.Intn(4)))
		}
		q := randCyclicCQ(rnd)
		tag := fmt.Sprintf("seed=%d q=%v", seed, q)
		// A constant argument can collapse the cycle (→ Yannakakis); every
		// still-cyclic instance must land in the decomposition class.
		if got := pyquery.Plan(q); got != pyquery.EngineDecomp && got != pyquery.EngineYannakakis {
			t.Fatalf("%s: planned %v, want decomp (or yannakakis if collapsed)", tag, got)
		}

		want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true})
		if err != nil {
			t.Fatalf("%s noreorder: %v", tag, err)
		}
		stats, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s stats: %v", tag, err)
		}
		if !relation.EqualSet(stats, want) {
			t.Fatalf("%s: stats-driven backtracker disagrees", tag)
		}
		direct, err := decomp.EvaluateOpts(q, db, decomp.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s decomp: %v", tag, err)
		}
		if !relation.EqualSet(direct, want) {
			t.Fatalf("%s: decomp engine disagrees\nwant %v\ngot %v", tag, want, direct)
		}
		// The leapfrog engine, forced past its cost gate (these instances are
		// pure, so they are always in its eligibility class).
		lf, err := wcoj.Evaluate(q, db, 1)
		if err != nil {
			t.Fatalf("%s wcoj: %v", tag, err)
		}
		if !relation.EqualSet(lf, want) {
			t.Fatalf("%s: wcoj engine disagrees\nwant %v\ngot %v", tag, want, lf)
		}
		for _, opts := range []pyquery.Options{
			{Parallelism: 1}, {Parallelism: 3},
			{Parallelism: 1, NoDecomp: true}, {Parallelism: 3, NoDecomp: true},
			{Parallelism: 1, NoWCOJ: true}, {Parallelism: 1, NoDecomp: true, NoWCOJ: true},
		} {
			auto, err := pyquery.EvaluateOpts(q, db, opts)
			if err != nil {
				t.Fatalf("%s facade %+v: %v", tag, opts, err)
			}
			if !relation.EqualSet(auto, want) {
				t.Fatalf("%s: facade %+v disagrees with baseline", tag, opts)
			}
			ok, err := pyquery.EvaluateBoolOpts(q, db, opts)
			if err != nil || ok != want.Bool() {
				t.Fatalf("%s: facade bool %+v = %v (%v), want %v", tag, opts, ok, err, want.Bool())
			}
		}
		// Decision problem: head binding (constant substitution + ground
		// markers) through the decomposition route.
		if want.Len() > 0 && len(q.Head) > 0 {
			ok, err := pyquery.Decide(q, db, want.Row(0))
			if err != nil || !ok {
				t.Fatalf("%s: Decide(answer tuple) = %v (%v), want true", tag, ok, err)
			}
		}
	}
}
