package pyquery_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pyquery"
	"pyquery/internal/eval"
	"pyquery/internal/relation"
)

// Planner equivalence (the A3/A5 ablation contract): on randomized
// instances, the stats-driven join order, the legacy greedy heuristic, and
// NoReorder must all be answer-set-equal — both through the generic
// evaluator directly and through the facade's engine routing (which also
// exercises the weighted join trees of the acyclic engines against the
// generic baseline).

// randPlannerCQ builds a random conjunctive query over E0/E1 (binary) and
// U (unary): 2–4 atoms with random variables and occasional constants,
// sometimes an inequality or a comparison. Heads use the body variables.
func randPlannerCQ(rnd *rand.Rand) *pyquery.CQ {
	nAtoms := 2 + rnd.Intn(3)
	randTerm := func() pyquery.Term {
		if rnd.Intn(8) == 0 {
			return pyquery.C(pyquery.Value(rnd.Intn(6)))
		}
		return pyquery.V(pyquery.Var(rnd.Intn(5)))
	}
	q := &pyquery.CQ{}
	for i := 0; i < nAtoms; i++ {
		if rnd.Intn(4) == 0 {
			q.Atoms = append(q.Atoms, pyquery.NewAtom("U", randTerm()))
		} else {
			q.Atoms = append(q.Atoms, pyquery.NewAtom(fmt.Sprintf("E%d", rnd.Intn(2)), randTerm(), randTerm()))
		}
	}
	body := q.BodyVars()
	if len(body) == 0 {
		q.Atoms = append(q.Atoms, pyquery.NewAtom("U", pyquery.V(0)))
		body = q.BodyVars()
	}
	for i := 0; i < 1+rnd.Intn(2); i++ {
		q.Head = append(q.Head, pyquery.V(body[rnd.Intn(len(body))]))
	}
	if len(body) >= 2 && rnd.Intn(3) == 0 {
		q.Ineqs = append(q.Ineqs, pyquery.NeqVars(body[0], body[len(body)-1]))
	}
	if len(body) >= 2 && rnd.Intn(4) == 0 {
		q.Cmps = append(q.Cmps, pyquery.Lt(pyquery.V(body[0]), pyquery.V(body[len(body)-1])))
	}
	return q
}

func TestPlannerOrderingEquivalence(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := pyquery.NewDB()
		for i := 0; i < 2; i++ {
			db.Set(fmt.Sprintf("E%d", i), randEdges(rnd, 15+rnd.Intn(40), 6))
		}
		u := pyquery.NewTable(1)
		for i := 0; i < 1+rnd.Intn(5); i++ {
			u.Append(pyquery.Value(rnd.Intn(6)))
		}
		db.Set("U", u.Dedup())
		q := randPlannerCQ(rnd)
		tag := fmt.Sprintf("seed=%d q=%v", seed, q)

		want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true})
		if err != nil {
			t.Fatalf("%s noreorder: %v", tag, err)
		}
		stats, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s stats: %v", tag, err)
		}
		if !relation.EqualSet(stats, want) {
			t.Fatalf("%s: stats-driven order changed the answer\nwant %v\ngot %v", tag, want, stats)
		}
		legacy, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, LegacyGreedy: true})
		if err != nil {
			t.Fatalf("%s legacy: %v", tag, err)
		}
		if !relation.EqualSet(legacy, want) {
			t.Fatalf("%s: legacy greedy order changed the answer", tag)
		}
		// Facade routing: whichever engine Plan picks (weighted join trees
		// for the acyclic classes) must agree with the generic baseline, at
		// more than one parallelism level.
		for _, par := range []int{1, 3} {
			auto, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: par})
			if err != nil {
				t.Fatalf("%s auto par=%d (%v): %v", tag, par, pyquery.Plan(q), err)
			}
			if !relation.EqualSet(auto, want) {
				t.Fatalf("%s: engine %v par=%d disagrees with generic baseline\nwant %v\ngot %v",
					tag, pyquery.Plan(q), par, want, auto)
			}
		}
	}
}
