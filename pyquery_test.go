package pyquery_test

import (
	"strings"
	"testing"

	"pyquery"
	"pyquery/internal/relation"
)

func orgDB() *pyquery.DB {
	db := pyquery.NewDB()
	db.Set("EP", pyquery.Table(2,
		[]pyquery.Value{1, 100}, []pyquery.Value{1, 101},
		[]pyquery.Value{2, 100}))
	return db
}

func TestPlanDispatch(t *testing.T) {
	pure := &pyquery.CQ{Atoms: []pyquery.Atom{pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1))}}
	if pyquery.Plan(pure) != pyquery.EngineYannakakis {
		t.Fatalf("pure acyclic → yannakakis, got %v", pyquery.Plan(pure))
	}
	ineq := &pyquery.CQ{
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(2)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(1, 2)},
	}
	if pyquery.Plan(ineq) != pyquery.EngineColorCoding {
		t.Fatalf("acyclic+≠ → color coding, got %v", pyquery.Plan(ineq))
	}
	cmp := &pyquery.CQ{
		Atoms: []pyquery.Atom{pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1))},
		Cmps:  []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.V(1))},
	}
	if pyquery.Plan(cmp) != pyquery.EngineComparisons {
		t.Fatalf("comparisons → comparisons engine, got %v", pyquery.Plan(cmp))
	}
	cyc := &pyquery.CQ{Atoms: []pyquery.Atom{
		pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1)),
		pyquery.NewAtom("EP", pyquery.V(1), pyquery.V(2)),
		pyquery.NewAtom("EP", pyquery.V(2), pyquery.V(0)),
	}}
	if pyquery.Plan(cyc) != pyquery.EngineDecomp {
		t.Fatalf("cyclic low-width → decomp, got %v", pyquery.Plan(cyc))
	}
	cycIneq := &pyquery.CQ{Atoms: cyc.Atoms, Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 1)}}
	if pyquery.Plan(cycIneq) != pyquery.EngineGeneric {
		t.Fatalf("cyclic+≠ → generic, got %v", pyquery.Plan(cycIneq))
	}
	// K8 as a query: ghw 4, beyond the decomposition engine's bound.
	k8 := &pyquery.CQ{}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			k8.Atoms = append(k8.Atoms, pyquery.NewAtom("EP", pyquery.V(pyquery.Var(i)), pyquery.V(pyquery.Var(j))))
		}
	}
	if pyquery.Plan(k8) != pyquery.EngineGeneric {
		t.Fatalf("high-width cyclic → generic, got %v", pyquery.Plan(k8))
	}
}

func TestEvaluateThroughFacade(t *testing.T) {
	db := orgDB()
	p := pyquery.NewParser()
	q, err := p.ParseCQ(`G(e) :- EP(e, p1), EP(e, p2), p1 != p2.`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pyquery.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Row(0)[0] != 1 {
		t.Fatalf("employee on two projects: %v", res)
	}
	ok, err := pyquery.EvaluateBool(q, db)
	if err != nil || !ok {
		t.Fatalf("bool: %v %v", ok, err)
	}
	ok, err = pyquery.Decide(q, db, []pyquery.Value{1})
	if err != nil || !ok {
		t.Fatalf("decide(1): %v %v", ok, err)
	}
	ok, err = pyquery.Decide(q, db, []pyquery.Value{2})
	if err != nil || ok {
		t.Fatalf("decide(2): %v %v", ok, err)
	}
}

func TestEvaluateAllEnginesAgree(t *testing.T) {
	db := orgDB()
	// A query every engine can answer: pure single atom.
	q := &pyquery.CQ{
		Head:  []pyquery.Term{pyquery.V(0)},
		Atoms: []pyquery.Atom{pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1))},
	}
	res, err := pyquery.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := pyquery.Table(1, []pyquery.Value{1}, []pyquery.Value{2})
	if !relation.EqualSet(res, want) {
		t.Fatalf("projection: %v", res)
	}
}

func TestComparisonsAndGenericPaths(t *testing.T) {
	db := pyquery.NewDB()
	db.Set("E", pyquery.Table(2,
		[]pyquery.Value{1, 2}, []pyquery.Value{2, 3}, []pyquery.Value{3, 1}))
	// Comparisons path.
	inc := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(1)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
		},
		Cmps: []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.V(1))},
	}
	res, err := pyquery.Evaluate(inc, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("increasing edges: %v", res)
	}
	// Generic path: triangle query.
	tri := &pyquery.CQ{Atoms: []pyquery.Atom{
		pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
		pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
		pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
	}}
	ok, err := pyquery.EvaluateBool(tri, db)
	if err != nil || !ok {
		t.Fatalf("directed triangle exists: %v %v", ok, err)
	}
}

func TestExplain(t *testing.T) {
	q := &pyquery.CQ{
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(2)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(1, 2)},
	}
	s := pyquery.Explain(q)
	for _, want := range []string{"color-coding", "I1", "k=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Explain = %q missing %q", s, want)
		}
	}
	bad := &pyquery.CQ{
		Atoms: []pyquery.Atom{pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1))},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 0)},
	}
	if !strings.Contains(pyquery.Explain(bad), "unsatisfiable") {
		t.Fatal("Explain must flag x≠x")
	}
}

func TestEvaluateFO(t *testing.T) {
	db := orgDB()
	p := pyquery.NewParser()
	q, err := p.ParseFOQuery(`{ (e) | exists p EP(e, p) }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pyquery.EvaluateFO(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("FO projection: %v", res)
	}
}

func TestEvaluateIneqFormulaFacade(t *testing.T) {
	db := orgDB()
	q := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(2)),
		},
	}
	phi := pyquery.IneqOr{Subs: []pyquery.IneqFormula{
		pyquery.IneqAtom{Ineq: pyquery.NeqVars(1, 2)},
		pyquery.IneqAtom{Ineq: pyquery.NeqConst(0, 1)},
	}}
	res, err := pyquery.EvaluateIneqFormula(q, phi, db, pyquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Employee 1 qualifies via two projects; employee 2 via e≠1.
	want := pyquery.Table(1, []pyquery.Value{1}, []pyquery.Value{2})
	if !relation.EqualSet(res, want) {
		t.Fatalf("formula facade = %v, want %v", res, want)
	}
}

func TestEvaluateStatsFacade(t *testing.T) {
	db := orgDB()
	q := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("EP", pyquery.V(0), pyquery.V(2)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(1, 2)},
	}
	res, stats, err := pyquery.EvaluateStats(q, db, pyquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || stats.K != 2 {
		t.Fatalf("stats facade: %v %+v", res, stats)
	}
}
