package pyquery_test

import (
	"testing"

	"pyquery"
	"pyquery/internal/workload"
)

// goldenDB is the fixed instance behind the PlanReport golden tests.
func goldenDB() *pyquery.DB {
	db := pyquery.NewDB()
	db.Set("R0", pyquery.Table(2,
		[]pyquery.Value{1, 2}, []pyquery.Value{2, 3},
		[]pyquery.Value{3, 4}, []pyquery.Value{1, 3}))
	db.Set("R1", pyquery.Table(2,
		[]pyquery.Value{2, 5}, []pyquery.Value{3, 5}, []pyquery.Value{4, 6}))
	db.Set("R2", pyquery.Table(2,
		[]pyquery.Value{5, 7}, []pyquery.Value{6, 8}))
	db.Set("E", pyquery.Table(2,
		[]pyquery.Value{1, 2}, []pyquery.Value{2, 3}, []pyquery.Value{3, 1},
		[]pyquery.Value{2, 1}))
	return db
}

func goldenPath() *pyquery.CQ {
	return &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(3)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("R0", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("R1", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("R2", pyquery.V(2), pyquery.V(3)),
		},
	}
}

// The rendered PlanReport is the contract behind qeval -explain: one golden
// per routing class so the format (and the estimates) cannot drift
// silently.
func TestPlanReportGolden(t *testing.T) {
	db := goldenDB()
	tri := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
		},
	}
	// Cyclic + ≠: constraints keep the backtracker, no decomposition is
	// considered.
	triIneq := &pyquery.CQ{Head: tri.Head, Atoms: tri.Atoms,
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 1)}}
	// The 4-cycle decomposes into two width-2 bags whose estimated cost
	// beats the backtracker even on the tiny golden instance.
	cyc4 := workload.CycleQuery(4)
	ineq := goldenPath()
	ineq.Ineqs = []pyquery.Ineq{pyquery.NeqVars(0, 3)}
	cmp := goldenPath()
	cmp.Cmps = []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.V(3))}
	unsat := goldenPath()
	unsat.Ineqs = []pyquery.Ineq{pyquery.NeqVars(1, 1)}

	cases := []struct {
		name string
		q    *pyquery.CQ
		want string
	}{
		{"yannakakis", goldenPath(), "engine: yannakakis (acyclic, poly input+output)\nquery size q=11, variables v=4\nplan (stats-driven join order):\n  1. R2(x2,x3) rows=2 binds=2 est=2\n  2. R1(x1,x2) rows=3 binds=1 est=3\n  3. R0(x0,x1) rows=4 binds=1 est=4\nestimated search cost: 9 (Σ intermediate cardinalities)\njoin-tree root: R0(x0,x1) (atom 0)\nestimated answer rows: 4"},
		{"colorcoding", ineq, "engine: color-coding (Theorem 2, f(k)·n log n)\nquery size q=14, variables v=4\nI1 (hashed) inequalities: 1, I2 (pushed-down): 0, |V1|=k=2\nplan (stats-driven join order):\n  1. R2(x2,x3) rows=2 binds=2 est=2\n  2. R1(x1,x2) rows=3 binds=1 est=3\n  3. R0(x0,x1) rows=4 binds=1 est=4\nestimated search cost: 9 (Σ intermediate cardinalities)\njoin-tree root: R0(x0,x1) (atom 0)\nestimated answer rows: 4"},
		{"comparisons", cmp, "engine: comparisons (Theorem 3 territory, generic join)\nquery size q=14, variables v=4\nplan (stats-driven join order):\n  1. R2(x2,x3) rows=2 binds=2 est=2\n  2. R1(x1,x2) rows=3 binds=1 est=3\n  3. R0(x0,x1) rows=4 binds=1 est=4\nestimated search cost: 9 (Σ intermediate cardinalities)\nestimated answer rows: 4"},
		{"generic", triIneq, "engine: generic backtracking join (n^O(q))\nquery size q=13, variables v=3\nplan (stats-driven join order):\n  1. E(x0,x1) rows=4 binds=2 est=4\n  2. E(x1,x2) rows=4 binds=1 est=5.333\n  3. E(x2,x0) rows=4 binds=0 est=2.37\nestimated search cost: 11.7 (Σ intermediate cardinalities)\nestimated answer rows: 2.37"},
		{"decomp", cyc4, "engine: hypertree decomposition (bag join + Yannakakis, width ≤ 3)\nquery size q=14, variables v=4\nplan (stats-driven join order):\n  1. E(x0,x1) rows=4 binds=2 est=4\n  2. E(x1,x2) rows=4 binds=1 est=5.333\n  3. E(x2,x3) rows=4 binds=1 est=7.111\n  4. E(x3,x0) rows=4 binds=0 est=3.16\nestimated search cost: 19.6 (Σ intermediate cardinalities)\ndecomposition (width 2, est cost 18.67):\n  bag 1. {E(x0,x1), E(x1,x2)} vars=(x0,x1,x2) est=5.333\n  bag 2. {E(x2,x3), E(x3,x0)} vars=(x0,x2,x3) est=5.333\nbag-tree root: bag 1\nestimated answer rows: 3.16"},
		// The triangle loses the decomposition gate but wins the wcoj gate:
		// AGM bound 4^1.5 = 8 beats the skew-aware backtracker bound 20
		// (scan 4, then a probe chain whose max fanout is 2 per column).
		{"wcoj", tri, "engine: worst-case-optimal join (leapfrog triejoin, Õ(AGM bound))\nquery size q=10, variables v=3\nplan (stats-driven join order):\n  1. E(x0,x1) rows=4 binds=2 est=4\n  2. E(x1,x2) rows=4 binds=1 est=5.333\n  3. E(x2,x0) rows=4 binds=0 est=2.37\nestimated search cost: 11.7 (Σ intermediate cardinalities)\ndecomposition (width 3) rejected: est cost 11.7 ≥ backtracker 11.7\nworst-case-optimal join: order (x0,x1,x2), AGM bound 8 < worst-case backtracker 20\nestimated answer rows: 2.37"},
		{"unsatisfiable", unsat, "engine: color-coding (Theorem 2, f(k)·n log n)\nquery size q=14, variables v=4\nunsatisfiable constraints: empty answer"},
	}
	// On a sparse uniform graph the AGM bound loses to the backtracker
	// bound — the report must say so (and keep the generic engine).
	sparse := workload.GraphDB(400, 800, 7)
	cases = append(cases, struct {
		name string
		q    *pyquery.CQ
		want string
	}{"wcoj-rejected", workload.TriangleQuery(), "engine: generic backtracking join (n^O(q))\nquery size q=12, variables v=3\nplan (stats-driven join order):\n  1. E(x0,x1) rows=798 binds=2 est=798\n  2. E(x1,x2) rows=798 binds=1 est=1840\n  3. E(x2,x0) rows=798 binds=0 est=12.27\nestimated search cost: 2651 (Σ intermediate cardinalities)\ndecomposition (width 3) rejected: est cost 2651 ≥ backtracker 2651\nworst-case-optimal join rejected: AGM bound 2.254e+04 ≥ worst-case backtracker 1.676e+04\nestimated answer rows: 12.27"})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tdb := db
			if tc.name == "wcoj-rejected" {
				tdb = sparse
			}
			r, err := pyquery.PlanDB(tc.q, tdb)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.String(); got != tc.want {
				t.Errorf("PlanReport drifted.\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}
