package pyquery

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"

	"pyquery/internal/core"
	"pyquery/internal/decomp"
	"pyquery/internal/eval"
	"pyquery/internal/governor"
	"pyquery/internal/ivm"
	"pyquery/internal/order"
	"pyquery/internal/parallel"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/wcoj"
	"pyquery/internal/yannakakis"
)

// P builds a named parameter placeholder term $name for use in atom
// arguments, head positions, and comparison sides of a query template.
// Parameters are bound to constants at execution time (Prepared.Exec), so
// one prepared template — a point lookup, a path, a triangle — serves many
// requests without re-planning. Inequality (≠) atoms do not take
// parameters; write the constraint as two comparisons or inline the
// constant.
var P = query.P

// Arg binds one named parameter for an execution.
type Arg struct {
	Name  string
	Value Value
}

// Bind pairs a parameter name with its value for Prepared.Exec.
func Bind(name string, v Value) Arg { return Arg{Name: name, Value: v} }

// Prepared is a compiled query: Prepare runs everything that depends only
// on the query and the database snapshot — classification, the
// decomposition search and cost gate, statistics-driven join ordering,
// atom reduction, index construction — exactly once, and Exec/ExecBool/
// Rows execute the frozen plan. The paper's point is that this split
// matches the complexity structure: the query-dependent work (exponential
// in q in the worst case) is paid at Prepare, the per-execution work is
// data complexity only.
//
// Staleness: the compiled state records the database generation (bumped by
// DB.Set) and the row counts of the relations it froze; every execution
// revalidates both cheaply and replans transparently when either moved. A
// Prepared is safe for concurrent executions.
type Prepared struct {
	q      *CQ
	db     *DB
	opts   Options
	params []string

	mu    sync.Mutex // guards recompilation; state is read lock-free
	state atomic.Pointer[prepState]

	// Standing-query state (Refresh/Subscribe), guarded by refMu: the
	// incremental maintainer when the shape supports it (maintTried marks
	// the one-time ivm.New attempt), and the last reported result for the
	// re-execute-and-diff fallback when it does not.
	refMu       sync.Mutex
	maint       *ivm.Maint
	maintTried  bool
	reported    *relation.Relation
	reportedPos *relation.TupleMap
}

// prepState is one frozen compilation: the routing decision plus exactly
// one engine-specific compiled artifact. It is immutable after compile
// (the lazily added decide program is the one atomic exception) and shared
// by concurrent executions.
type prepState struct {
	engine Engine
	epochs []relEpoch

	// unsat marks queries whose comparison constraints alone are
	// inconsistent (the collapse preprocessing failed): every execution
	// answers empty/false.
	unsat bool
	// trivial marks acyclic queries with an atom that reduced to ∅ at
	// compile time: empty until the database changes.
	trivial bool

	bt *eval.Compiled // generic class, collapsed comparisons, and every parameterized template
	// tree is the frozen acyclic template, forked per execution: the
	// reduced atoms on their join tree (EngineYannakakis), or the
	// materialized bags on their bag tree (EngineDecomp — the O(n^width)
	// bag joins are paid at Prepare, per the compile/execute split).
	tree *yannakakis.Tree
	prog *core.Program // Theorem 2 color-coding program
	// wc is the frozen leapfrog-triejoin plan (EngineWCOJ): the per-atom
	// sorted tries are built at Prepare, executions only run the
	// intersection search.
	wc *wcoj.Compiled

	// govRows/govBytes are the rows/bytes the governed compile step already
	// materialized into the frozen template (decomposition bags). Every
	// governed execution pre-charges them, so a per-execution budget
	// accounts for the frozen state it joins against.
	govRows, govBytes int64

	decide atomic.Pointer[decideState] // lazy Decide program (head-bound membership)
}

// relEpoch pins one frozen relation: the stable per-relation generation
// counter (resolved once at compile, so revalidation is an atomic load —
// no lock, no map lookup), the generation value the plan was built at, the
// relation pointer, and its row count. The pointer is safe to cache
// because replacing the relation (DB.Set) always bumps the generation,
// which is checked first; the length check additionally catches rows
// appended in place by callers that bypass the changelog.
type relEpoch struct {
	name string
	gen  *atomic.Uint64
	at   uint64
	rel  *relation.Relation
	n    int
}

// groundFalseCmps reports whether a ground comparison already falsifies the
// query (markers from head substitution, or user-written constants) — the
// check the decomposition engine runs up front, hoisted to compile time.
func groundFalseCmps(q *CQ) bool {
	for _, c := range q.Cmps {
		if !c.Left.IsVar && !c.Right.IsVar && !c.Holds(c.Left.Const, c.Right.Const) {
			return true
		}
	}
	return false
}

// Prepare compiles q against db under opts (Parallelism is frozen into the
// plan; 0 = GOMAXPROCS, 1 = serial). The template may contain parameter
// placeholders (query.P / pyquery.P); their values are supplied per
// execution. The query is cloned — later mutations of q do not affect the
// prepared statement.
func Prepare(q *CQ, db *DB, opts Options) (p *Prepared, err error) {
	defer recoverInternal("prepare", &err)
	p = &Prepared{q: q.Clone(), db: db, opts: opts, params: q.Params()}
	st, err := p.compile()
	if err != nil {
		return nil, err
	}
	p.state.Store(st)
	return p, nil
}

// Engine reports the frozen routing decision. Parameterized templates
// always execute through the compiled backtracking plan (parameters become
// pre-bound search slots, so index probes start from them); Engine reports
// EngineGeneric for them.
func (p *Prepared) Engine() Engine { return p.state.Load().engine }

// Params returns the template's parameter names in binding order.
func (p *Prepared) Params() []string { return append([]string(nil), p.params...) }

// Fingerprint returns the canonical text of the compiled template — the
// same string the plan cache keys on. Two Prepared statements with equal
// fingerprints (and equal Options) share a frozen plan, which is what lets
// a service layer coalesce same-statement requests onto one execution.
func (p *Prepared) Fingerprint() string { return p.q.String() }

// compile builds a fresh prepState from the current database snapshot.
func (p *Prepared) compile() (*prepState, error) {
	q, db, opts := p.q, p.db, p.opts
	st := &prepState{}
	evalOpts := eval.Options{Parallelism: opts.Parallelism}

	if len(p.params) > 0 {
		st.engine = EngineGeneric
		bt, err := eval.Compile(q, db, evalOpts, nil)
		if err != nil {
			return nil, err
		}
		st.bt = bt
		return p.snapshotLens(st), nil
	}

	st.engine = classify(q)
	switch st.engine {
	case EngineYannakakis:
		tree, trivial, err := yannakakis.Compile(q, db)
		if err != nil {
			return nil, err
		}
		st.tree, st.trivial = tree, trivial
	case EngineColorCoding:
		prog, err := core.Compile(q, db, opts)
		if err != nil {
			return nil, err
		}
		st.prog = prog
	case EngineComparisons:
		qc, err := order.Collapse(q)
		if errors.Is(err, order.ErrInconsistent) {
			st.unsat = true
			break
		}
		if err != nil {
			return nil, err
		}
		bt, err := eval.Compile(qc, db, evalOpts, nil)
		if err != nil {
			return nil, err
		}
		st.bt = bt
	case EngineDecomp:
		// Resolve the database-dependent half of the class in one PlanFor
		// call: existence of a width-≤3 decomposition and the cost gate
		// against the backtracker. A winning decomposition is materialized
		// right here — the bags are immutable for the epoch, so executions
		// only run the acyclic passes over the frozen bag tree. Gate losses
		// (and Options.NoDecomp, ablation A6) freeze the generic plan
		// instead.
		if groundFalseCmps(q) {
			st.unsat = true
			break
		}
		degraded := false
		if !opts.NoDecomp {
			if rt, err := decomp.PlanFor(q, db); err == nil && rt.Use {
				// The bag joins are the one compile step that materializes
				// O(n^width) state, so they run under their own meter with
				// the execution budget. On a trip: without Degrade the limit
				// error surfaces from Prepare; with Degrade the partial bags
				// are dropped (nothing retains them — GC reclaims) and the
				// query falls through to the backtracker, which runs under
				// the full per-execution budget instead.
				cm := governor.New(nil, "decomp", opts.MaxRows, opts.MemoryLimit)
				tree, _, empty := decomp.Materialize(q, rt, parallel.Workers(opts.Parallelism), nil, cm)
				if gerr := cm.Err(); gerr != nil {
					if !opts.Degrade {
						return nil, gerr
					}
					degraded = true
				} else {
					if tree != nil {
						// Detach the compile meter: each execution forks the
						// template under its own meter.
						tree.Meter = nil
					}
					st.tree, st.trivial = tree, empty
					st.govRows, st.govBytes = cm.Rows(), cm.Bytes()
					break
				}
			}
		}
		// Second gate: a cyclic pure query the decomposition passed over may
		// still beat the backtracker worst-case-optimally — weigh the AGM
		// bound against the skew-aware backtracker bound and freeze the
		// leapfrog plan (tries sorted here, at Prepare) when it wins. A
		// degraded decomposition skips this: the budget already tripped once,
		// and trie building materializes comparable state up front.
		// Options.NoWCOJ (ablation A7) forces the generic fallback.
		if !degraded && !opts.NoWCOJ {
			if wr, err := wcoj.PlanFor(q, db); err == nil && wr.Use {
				wc, err := wcoj.Compile(q, wr)
				if err != nil {
					return nil, err
				}
				st.engine = EngineWCOJ
				st.wc = wc
				break
			}
		}
		st.engine = EngineGeneric
		fallthrough
	default:
		bt, err := eval.Compile(q, db, evalOpts, nil)
		if err != nil {
			return nil, err
		}
		st.bt = bt
	}
	return p.snapshotLens(st), nil
}

// snapshotLens records, for every relation the plan froze, its stable
// generation counter, the value it holds now, and its row count — the
// per-relation staleness epoch. Writes to relations the query does not
// mention leave the epoch intact, so unrelated mutations no longer force a
// recompile.
func (p *Prepared) snapshotLens(st *prepState) *prepState {
	seen := make(map[string]bool, len(p.q.Atoms))
	for _, a := range p.q.Atoms {
		if seen[a.Rel] {
			continue
		}
		seen[a.Rel] = true
		if r, ok := p.db.Rel(a.Rel); ok {
			g := p.db.RelGen(a.Rel)
			st.epochs = append(st.epochs, relEpoch{name: a.Rel, gen: g, at: g.Load(), rel: r, n: r.Len()})
		}
	}
	return st
}

// fresh reports whether the compiled state still matches the database:
// every frozen relation's generation must not have moved and it must still
// hold the row count it was reduced at (relations grown in place by
// callers that bypass the changelog change length without bumping any
// generation). Only the query's own relations are consulted — k atomic
// loads and k length checks, no locks.
func (p *Prepared) fresh(st *prepState) bool {
	for _, e := range st.epochs {
		if e.gen.Load() != e.at || e.rel.Len() != e.n {
			return false
		}
	}
	return true
}

// current returns a fresh compiled state, replanning under the mutex when
// the epoch moved. The double-check keeps concurrent executions from
// compiling the same plan twice.
func (p *Prepared) current() (*prepState, error) {
	if st := p.state.Load(); p.fresh(st) {
		return st, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if st := p.state.Load(); p.fresh(st) {
		return st, nil
	}
	st, err := p.compile()
	if err != nil {
		return nil, err
	}
	p.state.Store(st)
	return st, nil
}

// argVals resolves the named arguments into the template's parameter order.
func (p *Prepared) argVals(args []Arg) ([]relation.Value, error) {
	if len(p.params) == 0 && len(args) == 0 {
		return nil, nil
	}
	byName := make(map[string]relation.Value, len(args))
	for _, a := range args {
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("pyquery: parameter $%s bound twice", a.Name)
		}
		byName[a.Name] = a.Value
	}
	vals := make([]relation.Value, len(p.params))
	for i, name := range p.params {
		v, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("pyquery: parameter $%s is unbound", name)
		}
		vals[i] = v
		delete(byName, name)
	}
	for name := range byName {
		return nil, fmt.Errorf("pyquery: unknown parameter $%s", name)
	}
	return vals, nil
}

// Exec runs the prepared query and returns the answer relation over the
// positional head schema. args bind the template's parameters (all of
// them, by name); ctx cancels the evaluation at the engine's natural
// boundaries — search nodes for the backtracker, pass steps for the tree
// engines, trial batches for color coding.
func (p *Prepared) Exec(ctx context.Context, args ...Arg) (res *Relation, err error) {
	st, vals, ectx, m, done, err := p.begin(ctx, args)
	defer done()
	if err != nil {
		return nil, err
	}
	defer recoverInternal(engineLabel(st.engine), &err)
	return p.execWith(ectx, st, vals, m)
}

// govErr is the end-of-execution checkpoint: the governed check when a
// meter is live, the plain ctx poll otherwise.
func govErr(ctx context.Context, m *governor.Meter) error {
	if m != nil {
		return m.Check("finish")
	}
	return parallel.CtxErr(ctx)
}

// classifyCtx wraps a finished context's error into the typed taxonomy at
// a boundary that runs before any meter exists. The result matches both
// the sentinel (ErrTimeout/ErrCanceled) and the underlying context error.
func classifyCtx(engine, step string, cerr error) error {
	kind := governor.ErrCanceled
	if errors.Is(cerr, context.DeadlineExceeded) {
		kind = governor.ErrTimeout
	}
	return &governor.Error{Kind: kind, Engine: engine, Step: step, Cause: cerr}
}

// execWith dispatches an execution on an already revalidated state with
// already resolved argument values, under the execution's meter (nil when
// nothing is governed).
func (p *Prepared) execWith(ctx context.Context, st *prepState, vals []relation.Value, m *governor.Meter) (*Relation, error) {
	switch {
	case st.unsat || st.trivial:
		return query.NewTable(len(p.q.Head)), nil
	case st.bt != nil:
		return st.bt.Exec(ctx, vals, m)
	case st.wc != nil:
		return st.wc.Exec(ctx, parallel.Workers(p.opts.Parallelism), m)
	case st.prog != nil:
		if m != nil {
			return st.prog.ExecMeter(ctx, m)
		}
		return st.prog.Exec(ctx)
	default:
		t := st.tree.Fork()
		t.Workers = parallel.Workers(p.opts.Parallelism)
		t.Ctx = ctx
		t.Meter = m
		if t.FullReduce() {
			if err := govErr(ctx, m); err != nil {
				return nil, err
			}
			return query.NewTable(len(p.q.Head)), nil
		}
		pstar := t.JoinProject()
		if err := govErr(ctx, m); err != nil {
			return nil, err
		}
		return yannakakis.HeadTuples(p.q, pstar), nil
	}
}

// ExecBool decides Q(d) ≠ ∅ with the frozen plan, stopping at the first
// witness where the engine supports it.
func (p *Prepared) ExecBool(ctx context.Context, args ...Arg) (ok bool, err error) {
	st, vals, ectx, m, done, err := p.begin(ctx, args)
	defer done()
	if err != nil {
		return false, err
	}
	defer recoverInternal(engineLabel(st.engine), &err)
	switch {
	case st.unsat || st.trivial:
		return false, nil
	case st.bt != nil:
		return st.bt.ExecBool(ectx, vals, m)
	case st.wc != nil:
		return st.wc.ExecBool(ectx, m)
	case st.prog != nil:
		if m != nil {
			return st.prog.ExecBoolMeter(ectx, m)
		}
		return st.prog.ExecBool(ectx)
	default:
		t := st.tree.Fork()
		t.Workers = parallel.Workers(p.opts.Parallelism)
		t.Ctx = ectx
		t.Meter = m
		empty := t.BottomUpSemijoin()
		if err := govErr(ectx, m); err != nil {
			return false, err
		}
		return !empty, nil
	}
}

// begin revalidates the epoch, resolves arguments, applies Options.Timeout
// to the context, and builds the execution's meter. done must be called
// (deferred) by every caller — it releases the timeout's timer; m is nil
// when nothing is governed (no limits, no cancelable context, no fault
// hook), which keeps ungoverned executions at their pre-governor cost.
func (p *Prepared) begin(ctx context.Context, args []Arg) (st *prepState, vals []relation.Value, ectx context.Context, m *governor.Meter, done func(), err error) {
	done = func() {}
	ectx = ctx
	if p.opts.Timeout > 0 {
		if ectx == nil {
			ectx = context.Background()
		}
		var cancel context.CancelFunc
		ectx, cancel = context.WithTimeout(ectx, p.opts.Timeout)
		done = cancel
	}
	if cerr := parallel.CtxErr(ectx); cerr != nil {
		err = classifyCtx("prepare", "begin", cerr)
		return nil, nil, ectx, nil, done, err
	}
	if st, err = p.current(); err != nil {
		return nil, nil, ectx, nil, done, err
	}
	if vals, err = p.argVals(args); err != nil {
		return nil, nil, ectx, nil, done, err
	}
	if m = governor.New(ectx, engineLabel(st.engine), p.opts.MaxRows, p.opts.MemoryLimit); m != nil {
		// The frozen decomposition bags this execution joins against count
		// toward its budget; a trip here surfaces at the first checkpoint.
		if st.govRows > 0 || st.govBytes > 0 {
			m.Charge(st.govRows, st.govBytes, "frozen-bags")
		}
	}
	return st, vals, ectx, m, done, nil
}

// ForEach streams the answer tuples to fn, stopping early when fn returns
// false. For the compiled backtracking plans (the generic class and every
// parameterized template) the tuples stream directly out of the search
// without materializing the answer; the tree engines materialize first.
// The tuple slice is reused between calls — copy it to retain it.
func (p *Prepared) ForEach(ctx context.Context, fn func(tuple []Value) bool, args ...Arg) (err error) {
	st, vals, ectx, m, done, err := p.begin(ctx, args)
	defer done()
	if err != nil {
		return err
	}
	defer recoverInternal(engineLabel(st.engine), &err)
	if st.unsat || st.trivial {
		return nil
	}
	if st.bt != nil {
		return st.bt.ForEach(ectx, vals, m, fn)
	}
	res, err := p.execWith(ectx, st, vals, m)
	if err != nil {
		return err
	}
	buf := make([]Value, res.Width())
	for i := 0; i < res.Len(); i++ {
		if err := parallel.CtxErr(ectx); err != nil {
			return err
		}
		if !fn(res.RowTo(buf, i)) {
			return nil
		}
	}
	return nil
}

// Rows returns the answers as an iterator over (tuple, error) pairs: a
// non-nil error (context cancellation, staleness recompilation failure)
// ends the sequence. The yielded tuple slice is only valid until the next
// iteration — copy it to retain it.
func (p *Prepared) Rows(ctx context.Context, args ...Arg) iter.Seq2[[]Value, error] {
	return func(yield func([]Value, error) bool) {
		stopped := false
		err := p.ForEach(ctx, func(tuple []Value) bool {
			if !yield(tuple, nil) {
				stopped = true
				return false
			}
			return true
		}, args...)
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}

// Decide answers the membership problem t ∈ Q(d) with the prepared plan:
// the head variables become pre-bound search slots (compiled lazily, once,
// alongside the main plan), so repeated membership tests amortize exactly
// like repeated executions — no per-call BindHead re-planning. args bind
// the template's parameters as in Exec.
func (p *Prepared) Decide(ctx context.Context, t []Value, args ...Arg) (ok bool, err error) {
	defer recoverInternal("decide", &err)
	ectx := ctx
	done := func() {}
	if p.opts.Timeout > 0 {
		if ectx == nil {
			ectx = context.Background()
		}
		var cancel context.CancelFunc
		ectx, cancel = context.WithTimeout(ectx, p.opts.Timeout)
		done = cancel
	}
	defer done()
	if cerr := parallel.CtxErr(ectx); cerr != nil {
		return false, classifyCtx("decide", "begin", cerr)
	}
	if len(t) != len(p.q.Head) {
		return false, fmt.Errorf("pyquery: tuple arity %d does not match head arity %d", len(t), len(p.q.Head))
	}
	st, err := p.current()
	if err != nil {
		return false, err
	}
	vals, err := p.argVals(args)
	if err != nil {
		return false, err
	}
	ds, err := p.decideProg(st)
	if err != nil {
		return false, err
	}
	// Match t against the frozen head plan: constants must agree,
	// parameter positions must agree with the bound value, repeated
	// variables must receive equal values.
	headVals := make([]relation.Value, ds.numHeadVars)
	seen := make([]bool, ds.numHeadVars)
	for i, hp := range ds.head {
		switch hp.kind {
		case headVar:
			if seen[hp.idx] {
				if headVals[hp.idx] != t[i] {
					return false, nil
				}
			} else {
				seen[hp.idx] = true
				headVals[hp.idx] = t[i]
			}
		case headParam:
			if vals[hp.idx] != t[i] {
				return false, nil
			}
		default:
			if hp.c != t[i] {
				return false, nil
			}
		}
	}
	// The head-stripped program binds its own (possibly reordered, possibly
	// smaller) parameter list first, then the head variables.
	dvals := make([]relation.Value, 0, len(ds.paramPos)+len(headVals))
	for _, pi := range ds.paramPos {
		dvals = append(dvals, vals[pi])
	}
	dvals = append(dvals, headVals...)
	return ds.prog.ExecBool(ectx, dvals, governor.New(ectx, "decide", p.opts.MaxRows, p.opts.MemoryLimit))
}

// headKind classifies one head position of the frozen decide plan.
type headKind int

const (
	headVar headKind = iota
	headParam
	headConst
)

// headPos is the compiled matcher for one head position: a variable (idx
// indexes the headVals slots), a parameter (idx indexes Prepared.params),
// or a constant.
type headPos struct {
	kind headKind
	idx  int
	c    Value
}

// decideState is the lazily compiled membership plan plus the frozen
// head-matching tables — pure functions of the template, built once per
// compiled epoch.
type decideState struct {
	prog *eval.Compiled
	// paramPos maps the head-stripped query's parameter order (what prog
	// binds first) back into Prepared.params indices: stripping the head
	// can drop head-only parameters and reorder the rest.
	paramPos    []int
	head        []headPos
	numHeadVars int
}

// decideProg returns the compiled head-bound membership plan, building it
// on first use (per compiled epoch — staleness recompiles the main state,
// which starts with an empty decide slot).
func (p *Prepared) decideProg(st *prepState) (*decideState, error) {
	if ds := st.decide.Load(); ds != nil {
		return ds, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ds := st.decide.Load(); ds != nil {
		return ds, nil
	}
	dq := p.q.Clone()
	dq.Head = nil
	headVars := p.q.HeadVars()
	prog, err := eval.Compile(dq, p.db, eval.Options{Parallelism: p.opts.Parallelism}, headVars)
	if err != nil {
		return nil, err
	}
	ds := &decideState{prog: prog, numHeadVars: len(headVars)}
	tmplIdx := make(map[string]int, len(p.params))
	for i, name := range p.params {
		tmplIdx[name] = i
	}
	for _, name := range prog.Params() {
		ds.paramPos = append(ds.paramPos, tmplIdx[name])
	}
	slotOf := make(map[Var]int, len(headVars))
	for i, v := range headVars {
		slotOf[v] = i
	}
	ds.head = make([]headPos, len(p.q.Head))
	for i, term := range p.q.Head {
		switch {
		case term.IsVar:
			ds.head[i] = headPos{kind: headVar, idx: slotOf[term.Var]}
		case term.ParamName != "":
			ds.head[i] = headPos{kind: headParam, idx: tmplIdx[term.ParamName]}
		default:
			ds.head[i] = headPos{kind: headConst, c: term.Const}
		}
	}
	st.decide.Store(ds)
	return ds, nil
}

// ErrNotMaintainable is returned by Refresh and Subscribe for templates
// whose materialized result is not well defined without per-call input —
// currently parameterized templates (bind the parameters and prepare the
// bound query instead).
var ErrNotMaintainable = ivm.ErrNotMaintainable

// Change is one batch of standing-query output: the tuples that entered
// and left the result since the previous batch. Both relations use the
// positional head schema; either may be empty, never nil.
type Change struct {
	Added, Removed *Relation
}

// Refresh brings the query's materialized result up to date and returns
// the exact membership change since the previous successful Refresh. The
// first call materializes the result and returns it wholesale as added.
//
// When the query shape is maintainable, the refresh applies the counting
// delta rules to the database changelog — O(Δ) work for small updates
// instead of re-execution — and transparently falls back to re-executing
// (and diffing) when the accumulated delta volume prices above a full run,
// when a relation was wholesale replaced, or when the changelog has been
// evicted past the last watermark. Unmaintainable shapes always take the
// re-execute-and-diff path, so Refresh is correct for every template.
//
// Refresh honors Options.Timeout, MaxRows, and MemoryLimit like Exec; a
// governed trip surfaces as a *governor.Error and leaves the previously
// reported result intact (the next Refresh recovers by rebuilding).
// Parameterized templates return ErrNotMaintainable. Calls are serialized
// internally; Refresh must not run concurrently with database writes.
func (p *Prepared) Refresh(ctx context.Context) (added, removed *Relation, err error) {
	if len(p.params) > 0 {
		return nil, nil, ErrNotMaintainable
	}
	defer recoverInternal("ivm", &err)
	ectx := ctx
	done := func() {}
	if p.opts.Timeout > 0 {
		if ectx == nil {
			ectx = context.Background()
		}
		var cancel context.CancelFunc
		ectx, cancel = context.WithTimeout(ectx, p.opts.Timeout)
		done = cancel
	}
	defer done()
	if cerr := parallel.CtxErr(ectx); cerr != nil {
		return nil, nil, classifyCtx("ivm", "begin", cerr)
	}
	p.refMu.Lock()
	defer p.refMu.Unlock()
	if !p.maintTried {
		p.maintTried = true
		mt, merr := ivm.New(p.q, p.db)
		if merr == nil {
			p.maint = mt
		} else if !errors.Is(merr, ivm.ErrNotMaintainable) {
			p.maintTried = false
			return nil, nil, merr
		}
	}
	if p.maint != nil {
		m := governor.New(ectx, "ivm", p.opts.MaxRows, p.opts.MemoryLimit)
		return p.maint.Refresh(ectx, m, p.opts.Parallelism)
	}
	// Unmaintainable shape: re-execute and diff against the last report.
	res, err := p.Exec(ectx)
	if err != nil {
		return nil, nil, err
	}
	w := len(p.q.Head)
	pos := relation.NewTupleMapSized(w, res.Len())
	added = query.NewTable(w)
	removed = query.NewTable(w)
	diffBuf := make([]Value, w)
	for i := 0; i < res.Len(); i++ {
		row := res.RowTo(diffBuf, i)
		pos.Set(row, int32(i))
		if p.reportedPos == nil {
			added.Append(row...)
		} else if _, ok := p.reportedPos.Get(row); !ok {
			added.Append(row...)
		}
	}
	if p.reported != nil {
		for i := 0; i < p.reported.Len(); i++ {
			row := p.reported.RowTo(diffBuf, i)
			if _, ok := pos.Get(row); !ok {
				removed.Append(row...)
			}
		}
	}
	p.reported, p.reportedPos = res, pos
	return added, removed, nil
}

// Subscribe turns the prepared query into a standing query: an iterator
// that yields the initial result as its first Change and then one Change
// per database mutation batch that actually moves the result (empty
// refreshes are skipped). Iteration blocks between yields waiting for
// writes; cancel ctx to end the sequence (the cancellation itself is
// silent — it does not surface as an error). Any other refresh failure is
// yielded once and ends the sequence. The watcher is unregistered when the
// iterator returns, whether by break, cancellation, or error; no goroutine
// is spawned.
func (p *Prepared) Subscribe(ctx context.Context) iter.Seq2[Change, error] {
	return func(yield func(Change, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		ch, stop := p.db.Watch()
		defer stop()
		first := true
		for {
			added, removed, err := p.Refresh(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				yield(Change{}, err)
				return
			}
			if first || added.Len() > 0 || removed.Len() > 0 {
				if !yield(Change{Added: added, Removed: removed}, nil) {
					return
				}
				first = false
			}
			select {
			case <-ch:
			case <-ctx.Done():
				return
			}
		}
	}
}

// planKey fingerprints a (query, options) pair for the per-database plan
// cache: the rendered rule text is canonical for a query value, and the
// options are comparable, so the struct is a map key.
type planKey struct {
	fp   string
	opts Options
}

// prepared returns the compiled statement for a one-shot facade call:
// cached per database and keyed by fingerprint, so repeated Evaluate calls
// silently amortize planning. Options.NoCache compiles fresh instead.
func prepared(q *CQ, db *DB, opts Options) (*Prepared, error) {
	if opts.NoCache {
		return Prepare(q, db, opts)
	}
	key := planKey{fp: q.String(), opts: opts}
	cache := db.Plans()
	if v, ok := cache.Get(key); ok {
		if p, ok := v.(*Prepared); ok {
			return p, nil
		}
	}
	p, err := Prepare(q, db, opts)
	if err != nil {
		return nil, err
	}
	cache.Add(key, p)
	return p, nil
}
